package vertigo_test

import (
	"fmt"
	"time"

	"vertigo"
)

// ExampleRun shows a minimal simulation: the Vertigo scheme under DCTCP on
// a small leaf-spine with background plus incast traffic. Runs are
// deterministic per (Config, Seed).
func ExampleRun() {
	cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
	cfg.Duration = 10 * time.Millisecond
	cfg.BackgroundLoad = 0.2
	cfg.IncastScale = 8
	cfg.IncastFlowKB = 20
	cfg.IncastLoad = 0.2

	rep, err := vertigo.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rep.QueriesStarted > 0 && rep.QueriesCompleted > 0)
	// Output: true
}

// ExampleNewMarker shows the TX-path marking component on wire frames: the
// flowinfo header carries the remaining flow size, so switches can schedule
// and deflect by it.
func ExampleNewMarker() {
	m := vertigo.NewMarker(vertigo.MarkerOptions{BoostFactor: 2})
	m.StartFlow(1, 4000) // 4000-byte flow under key 1

	var hdr [vertigo.ShimHeaderLen]byte
	info, _ := m.Mark(1, 0, 1460, hdr[:], 0x0800) // first segment
	fmt.Println(info.RFS, info.First)

	info, _ = m.Mark(1, 1460, 1460, hdr[:], 0x0800) // second segment
	fmt.Println(info.RFS, info.First)
	// Output:
	// 4000 true
	// 2540 false
}

// ExampleNewOrderer shows the RX-path ordering component re-sequencing an
// out-of-order arrival before the transport sees it.
func ExampleNewOrderer() {
	m := vertigo.NewMarker(vertigo.MarkerOptions{})
	m.StartFlow(7, 2920) // two segments
	first, _ := m.Mark(7, 0, 1460, nil, 0)
	second, _ := m.Mark(7, 1460, 1460, nil, 0)

	o := vertigo.NewOrderer(vertigo.OrdererOptions{Timeout: 360 * time.Microsecond})
	now := time.Unix(0, 0)

	// The second segment arrives first (deflected past the first): held.
	early := o.Receive(now, vertigo.Segment{Key: 7, Info: second, Len: 1460, Last: true})
	fmt.Println("released on early arrival:", len(early))

	// The first segment arrives: both come out, in order.
	rest := o.Receive(now, vertigo.Segment{Key: 7, Info: first, Len: 1460})
	fmt.Println("released on gap fill:", len(rest))
	fmt.Println("in order:", rest[0].Info.RFS > rest[1].Info.RFS)
	// Output:
	// released on early arrival: 0
	// released on gap fill: 2
	// in order: true
}

// ExampleDecodeShim shows parsing the 7-byte layer-3 shim header off the
// wire (paper Fig. 3).
func ExampleDecodeShim() {
	var buf [vertigo.ShimHeaderLen]byte
	fi := vertigo.FlowInfo{RFS: 123456, RetCnt: 2, FlowID: 5, First: true}
	vertigo.EncodeShim(buf[:], fi, 0x0800)

	decoded, inner, _ := vertigo.DecodeShim(buf[:])
	fmt.Printf("rfs=%d retcnt=%d flowid=%d first=%v inner=%#x\n",
		decoded.RFS, decoded.RetCnt, decoded.FlowID, decoded.First, inner)
	// Output: rfs=123456 retcnt=2 flowid=5 first=true inner=0x800
}
