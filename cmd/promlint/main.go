// Command promlint validates Prometheus text exposition format (0.0.4) read
// from stdin or the files given as arguments. It is the CI gate behind the
// introspection smoke job: a malformed /metrics scrape — missing HELP/TYPE,
// non-cumulative histogram buckets, a bucket stream without le="+Inf" —
// exits non-zero with one line per violation.
//
// Usage:
//
//	curl -s localhost:9464/metrics | promlint
//	promlint scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"vertigo/internal/obs"
)

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		os.Exit(lint("<stdin>", os.Stdin))
	}
	code := 0
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			code = 1
			continue
		}
		if lint(path, f) != 0 {
			code = 1
		}
		f.Close()
	}
	os.Exit(code)
}

func lint(name string, r io.Reader) int {
	errs := obs.LintProm(r)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
	}
	if len(errs) > 0 {
		return 1
	}
	return 0
}
