// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_*.json perf-trajectory blobs: per-benchmark ns/op, B/op,
// allocs/op and custom metrics, plus headline comparisons — the event
// core against its frozen pre-rewrite baseline, and whole-run simulated
// packets/sec against the recorded pre-optimization baseline.
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem . | benchjson -out BENCH_core.json
//	go test -run '^$' -bench BenchmarkRunThroughput . | benchjson -prev BENCH_run.json -out BENCH_run.json
//
// With -merge it instead combines the per-suite blobs into one BENCH.json
// history keyed by git revision:
//
//	benchjson -merge -rev $(git rev-parse --short HEAD) -out BENCH.json BENCH_core.json BENCH_obs.json BENCH_run.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string   `json:"name"`
	N           int64    `json:"n"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Custom b.ReportMetric units, e.g. "events/s", "speedup_vs_j1".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// CancelChurn compares BenchmarkEngineCancelChurn against its frozen
	// pre-rewrite twin: the standing ≥20% events/sec acceptance gate for
	// the lazy-cancellation heap.
	CancelChurn *Comparison `json:"cancel_churn,omitempty"`
	// RunThroughput tracks BenchmarkRunThroughput, the whole-run simulated
	// packets/sec gauge. The baseline is sticky: regenerating the report
	// with -prev carries the recorded pre-optimization number forward, so
	// improvement_pct always reads against the same reference run.
	RunThroughput *RunThroughput `json:"run_throughput,omitempty"`
	// ScaleRun tracks BenchmarkRunThroughputHuge, the million-flow
	// scale=huge gauge: pkts/s with the same sticky-baseline discipline as
	// RunThroughput, plus the run's peak RSS for the memory-envelope gate.
	ScaleRun *ScaleRun `json:"scale_run,omitempty"`
	// ParallelRun compares the sharded scale=huge run
	// (BenchmarkRunThroughputHugeParallel) against the serial
	// BenchmarkRunThroughputHuge from the same bench pass: the multi-core
	// speedup the sharded engine delivers on this machine.
	ParallelRun *ParallelRun `json:"parallel_run,omitempty"`
}

// RunThroughput is the whole-run packets/sec comparison.
type RunThroughput struct {
	BaselinePktsPerSec float64 `json:"baseline_pkts_per_sec"`
	PktsPerSec         float64 `json:"pkts_per_sec"`
	PktsPerRun         float64 `json:"pkts_per_run"`
	// ImprovementPct is (pkts_per_sec/baseline - 1) * 100.
	ImprovementPct float64 `json:"improvement_pct"`
}

// ScaleRun is the scale=huge (million-flow) comparison.
type ScaleRun struct {
	BaselinePktsPerSec float64 `json:"baseline_pkts_per_sec"`
	PktsPerSec         float64 `json:"pkts_per_sec"`
	FlowsPerRun        float64 `json:"flows_per_run"`
	PeakRSSMB          float64 `json:"peak_rss_mb"`
	// ImprovementPct is (pkts_per_sec/baseline - 1) * 100.
	ImprovementPct float64 `json:"improvement_pct"`
}

// ParallelRun is the serial-vs-sharded scale=huge comparison. Both numbers
// come from the same bench pass on the same machine, so the speedup is a
// like-for-like wall-clock ratio; Cores records GOMAXPROCS at bench time
// because the gate only applies on machines with enough cores to show one.
type ParallelRun struct {
	SerialPktsPerSec  float64 `json:"serial_pkts_per_sec"`
	ShardedPktsPerSec float64 `json:"sharded_pkts_per_sec"`
	// Speedup is sharded/serial pkts/s.
	Speedup float64 `json:"speedup"`
	Shards  float64 `json:"shards"`
	Cores   float64 `json:"cores"`
}

// Comparison is a new-vs-baseline delta derived from two benchmarks.
type Comparison struct {
	EngineNsPerOp   float64 `json:"engine_ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	// ImprovementPct is the events/sec gain of the rewrite over the
	// baseline on the same op stream: (baseline/engine - 1) * 100.
	ImprovementPct float64 `json:"improvement_pct"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	prev := flag.String("prev", "", "carry the run-throughput baseline forward from this existing report")
	baseline := flag.Float64("baseline", 0, "explicit run-throughput baseline in pkts/s (overrides -prev)")
	merge := flag.Bool("merge", false, "merge the report files given as arguments into a revision-keyed history")
	rev := flag.String("rev", "", "git revision key for -merge entries")
	flag.Parse()

	if *merge {
		if err := mergeReports(*out, *rev, flag.Args()); err != nil {
			fatal(err)
		}
		return
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if eng, base := find(rep.Benchmarks, "BenchmarkEngineCancelChurn"),
		find(rep.Benchmarks, "BenchmarkEngineCancelChurnBaseline"); eng != nil && base != nil {
		rep.CancelChurn = &Comparison{
			EngineNsPerOp:   eng.NsPerOp,
			BaselineNsPerOp: base.NsPerOp,
			ImprovementPct:  (base.NsPerOp/eng.NsPerOp - 1) * 100,
		}
	}
	if rt := find(rep.Benchmarks, "BenchmarkRunThroughput"); rt != nil && rt.Metrics["pkts/s"] > 0 {
		cur := rt.Metrics["pkts/s"]
		base := *baseline
		if base == 0 && *prev != "" {
			base = prevBaseline(*prev)
		}
		if base == 0 {
			base = cur // bootstrap: first report is its own reference
		}
		rep.RunThroughput = &RunThroughput{
			BaselinePktsPerSec: base,
			PktsPerSec:         cur,
			PktsPerRun:         rt.Metrics["pkts/run"],
			ImprovementPct:     (cur/base - 1) * 100,
		}
	}
	if sr := find(rep.Benchmarks, "BenchmarkRunThroughputHuge"); sr != nil && sr.Metrics["pkts/s"] > 0 {
		cur := sr.Metrics["pkts/s"]
		base := 0.0
		if *prev != "" {
			base = prevScaleBaseline(*prev)
		}
		if base == 0 {
			base = cur // bootstrap: first report is its own reference
		}
		rep.ScaleRun = &ScaleRun{
			BaselinePktsPerSec: base,
			PktsPerSec:         cur,
			FlowsPerRun:        sr.Metrics["flows/run"],
			PeakRSSMB:          sr.Metrics["peak_rss_mb"],
			ImprovementPct:     (cur/base - 1) * 100,
		}
	}

	if ser, par := find(rep.Benchmarks, "BenchmarkRunThroughputHuge"),
		find(rep.Benchmarks, "BenchmarkRunThroughputHugeParallel"); ser != nil && par != nil &&
		ser.Metrics["pkts/s"] > 0 && par.Metrics["pkts/s"] > 0 {
		rep.ParallelRun = &ParallelRun{
			SerialPktsPerSec:  ser.Metrics["pkts/s"],
			ShardedPktsPerSec: par.Metrics["pkts/s"],
			Speedup:           par.Metrics["pkts/s"] / ser.Metrics["pkts/s"],
			Shards:            par.Metrics["shards"],
			Cores:             par.Metrics["cores"],
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line:
//
//	BenchmarkEngine-4   72765992   18.51 ns/op   123 events/s   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped (absent on single-CPU runners);
// sub-benchmarks keep their /slash path. Everything after the iteration
// count is "value unit" pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, N: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

// prevBaseline reads the sticky run-throughput baseline out of an existing
// report. A missing or malformed file yields 0 (caller bootstraps), so the
// first generation works without special-casing.
func prevBaseline(path string) float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var rep Report
	if json.Unmarshal(data, &rep) != nil || rep.RunThroughput == nil {
		return 0
	}
	return rep.RunThroughput.BaselinePktsPerSec
}

// prevScaleBaseline is prevBaseline for the scale=huge comparison.
func prevScaleBaseline(path string) float64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	var rep Report
	if json.Unmarshal(data, &rep) != nil || rep.ScaleRun == nil {
		return 0
	}
	return rep.ScaleRun.BaselinePktsPerSec
}

// mergeReports folds the given BENCH_*.json files into one revision-keyed
// history: {"<rev>": {"core": {...}, "obs": {...}, "run": {...}}}. The
// suite key is derived from the file name (BENCH_core.json -> "core").
// Existing entries for other revisions are preserved; the entry for rev is
// rebuilt from the files present, and absent files are skipped.
func mergeReports(out, rev string, files []string) error {
	if rev == "" {
		return fmt.Errorf("-merge requires -rev")
	}
	if out == "" {
		return fmt.Errorf("-merge requires -out")
	}
	history := make(map[string]map[string]json.RawMessage)
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			return fmt.Errorf("existing %s: %w", out, err)
		}
	}
	entry := make(map[string]json.RawMessage)
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %s: %v\n", f, err)
			continue
		}
		if !json.Valid(data) {
			return fmt.Errorf("%s: not valid JSON", f)
		}
		entry[suiteKey(f)] = json.RawMessage(data)
	}
	if len(entry) == 0 {
		return fmt.Errorf("no report files readable")
	}
	history[rev] = entry
	enc, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(enc, '\n'), 0o644)
}

// suiteKey maps a report file name to its history key: BENCH_core.json ->
// "core", BENCH_obs.json -> "obs". Unrecognized names keep their stem.
func suiteKey(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	base = strings.TrimSuffix(base, ".json")
	base = strings.TrimPrefix(base, "BENCH_")
	return base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
