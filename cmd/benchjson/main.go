// Command benchjson converts `go test -bench` output on stdin into the
// BENCH_core.json perf-trajectory blob: per-benchmark ns/op, B/op,
// allocs/op and custom metrics, plus the headline comparison between the
// event core and its frozen pre-rewrite baseline.
//
//	go test -run '^$' -bench BenchmarkEngine -benchmem . | benchjson -out BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	N           int64              `json:"n"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	// Custom b.ReportMetric units, e.g. "events/s", "speedup_vs_j1".
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_core.json schema.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// CancelChurn compares BenchmarkEngineCancelChurn against its frozen
	// pre-rewrite twin: the standing ≥20% events/sec acceptance gate for
	// the lazy-cancellation heap.
	CancelChurn *Comparison `json:"cancel_churn,omitempty"`
}

// Comparison is a new-vs-baseline delta derived from two benchmarks.
type Comparison struct {
	EngineNsPerOp   float64 `json:"engine_ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	// ImprovementPct is the events/sec gain of the rewrite over the
	// baseline on the same op stream: (baseline/engine - 1) * 100.
	ImprovementPct float64 `json:"improvement_pct"`
}

func main() {
	out := flag.String("out", "", "write JSON here instead of stdout")
	flag.Parse()

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if eng, base := find(rep.Benchmarks, "BenchmarkEngineCancelChurn"),
		find(rep.Benchmarks, "BenchmarkEngineCancelChurnBaseline"); eng != nil && base != nil {
		rep.CancelChurn = &Comparison{
			EngineNsPerOp:   eng.NsPerOp,
			BaselineNsPerOp: base.NsPerOp,
			ImprovementPct:  (base.NsPerOp/eng.NsPerOp - 1) * 100,
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line:
//
//	BenchmarkEngine-4   72765992   18.51 ns/op   123 events/s   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped (absent on single-CPU runners);
// sub-benchmarks keep their /slash path. Everything after the iteration
// count is "value unit" pairs.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, N: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}

func find(bs []Benchmark, name string) *Benchmark {
	for i := range bs {
		if bs[i].Name == name {
			return &bs[i]
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
