// Command vertigo-topo inspects the simulated topologies: prints the node
// and link inventory, FIB statistics, and optionally a Graphviz DOT graph.
//
//	vertigo-topo -topology leafspine -spines 4 -leaves 8 -hosts-per-leaf 40
//	vertigo-topo -topology fattree -k 8 -dot | dot -Tsvg > fabric.svg
package main

import (
	"flag"
	"fmt"
	"os"

	"vertigo/internal/topo"
	"vertigo/internal/units"
)

func main() {
	var (
		kind   = flag.String("topology", "leafspine", "leafspine|fattree")
		spines = flag.Int("spines", 4, "leaf-spine: spine switches")
		leaves = flag.Int("leaves", 8, "leaf-spine: leaf switches")
		hpl    = flag.Int("hosts-per-leaf", 40, "leaf-spine: hosts per leaf")
		k      = flag.Int("k", 8, "fat-tree: k (even)")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of the summary")
	)
	flag.Parse()

	var (
		t   *topo.Topology
		err error
	)
	switch *kind {
	case "leafspine":
		t, err = topo.NewLeafSpine(topo.LeafSpineConfig{
			Spines: *spines, Leaves: *leaves, HostsPerLeaf: *hpl,
			HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
			LinkDelay: 500 * units.Nanosecond,
		})
	case "fattree":
		t, err = topo.NewFatTree(topo.FatTreeConfig{
			K: *k, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond,
		})
	default:
		err = fmt.Errorf("unknown topology %q", *kind)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertigo-topo:", err)
		os.Exit(1)
	}

	if *dot {
		writeDOT(t)
		return
	}
	summarize(t)
}

func summarize(t *topo.Topology) {
	fmt.Printf("topology  %s\n", t.Name)
	fmt.Printf("hosts     %d\n", t.NumHosts)
	fmt.Printf("switches  %d\n", t.NumSwitches)
	fmt.Printf("links     %d\n", len(t.Links))

	// Bisection-ish capacity: total fabric (switch-switch) link rate.
	var hostCap, fabricCap units.BitRate
	for _, l := range t.Links {
		if l.A.Host || l.B.Host {
			hostCap += l.Rate
		} else {
			fabricCap += l.Rate
		}
	}
	fmt.Printf("capacity  %v at the hosts, %v switch-to-switch (oversubscription %.2f:1)\n",
		hostCap, fabricCap, float64(hostCap)/float64(fabricCap))

	// Path diversity and distance distribution.
	minP, maxP := 1<<30, 0
	var sumDist, pairs int
	maxDist := 0
	for sw := 0; sw < t.NumSwitches; sw++ {
		for dst := 0; dst < t.NumHosts; dst++ {
			if n := len(t.FIB[sw][dst]); n > 0 {
				if n < minP {
					minP = n
				}
				if n > maxP {
					maxP = n
				}
			}
		}
	}
	for h := 0; h < t.NumHosts; h++ {
		tor := t.HostToR[h]
		for dst := 0; dst < t.NumHosts; dst++ {
			if dst == h {
				continue
			}
			d := t.Dist[tor][dst]
			sumDist += d
			pairs++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("fib       %d–%d next-hop choices per (switch,dst)\n", minP, maxP)
	fmt.Printf("paths     mean %.2f switch hops host-to-host, diameter %d\n",
		float64(sumDist)/float64(pairs), maxDist)
	for sw := 0; sw < t.NumSwitches; sw++ {
		if sw < 3 || sw >= t.NumSwitches-2 {
			fmt.Printf("  s%-3d %d ports (%d fabric)\n", sw, t.Ports(sw), len(t.FabricPorts[sw]))
		} else if sw == 3 {
			fmt.Println("  ...")
		}
	}
}

func writeDOT(t *topo.Topology) {
	fmt.Println("graph fabric {")
	fmt.Println("  layout=dot; rankdir=BT; node [fontsize=10];")
	for sw := 0; sw < t.NumSwitches; sw++ {
		fmt.Printf("  s%d [shape=box, style=filled, fillcolor=lightsteelblue];\n", sw)
	}
	for h := 0; h < t.NumHosts; h++ {
		fmt.Printf("  h%d [shape=circle, width=0.25, fixedsize=true, fontsize=7];\n", h)
	}
	name := func(e topo.Endpoint) string {
		if e.Host {
			return fmt.Sprintf("h%d", e.Node)
		}
		return fmt.Sprintf("s%d", e.Node)
	}
	for _, l := range t.Links {
		attr := ""
		if !l.A.Host && !l.B.Host {
			attr = " [penwidth=2]"
		}
		fmt.Printf("  %s -- %s%s;\n", name(l.A), name(l.B), attr)
	}
	fmt.Println("}")
}
