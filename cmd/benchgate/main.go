// Command benchgate is the CI performance gate over the BENCH_*.json
// reports that benchjson emits. It prints a benchstat-style old-vs-new
// table for the headline comparison in the report and exits non-zero
// when a bound is violated, replacing ad-hoc jq threshold checks:
//
//	benchgate -max-regress 10 -zero-alloc BenchmarkDatapath BENCH_run.json
//	benchgate -min-improve 20 -zero-alloc BenchmarkEngine BENCH_core.json
//	benchgate -max-regress 10 -max-rss-mb 2048 BENCH_scale.json
//	benchgate -min-parallel-speedup 2.0 BENCH_parallel.json
//
// -max-regress bounds how far the headline metric (pkts/s for the run
// report, events/s for the core report) may fall below its recorded
// baseline; -min-improve demands it stay at least that far above.
// -zero-alloc requires every benchmark whose name starts with the given
// prefix to report exactly 0 allocs/op; it may be repeated. -max-rss-mb
// bounds the scale run's recorded process peak RSS. -min-parallel-speedup
// requires the sharded scale=huge run to beat the serial one by the given
// factor when the bench machine has at least 4 cores.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors the subset of the benchjson schema the gate reads.
// Unknown fields are ignored so the two tools can evolve independently.
type report struct {
	Benchmarks    []benchmark    `json:"benchmarks"`
	CancelChurn   *comparison    `json:"cancel_churn"`
	RunThroughput *runThroughput `json:"run_throughput"`
	ScaleRun      *scaleRun      `json:"scale_run"`
	ParallelRun   *parallelRun   `json:"parallel_run"`
}

type benchmark struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

type comparison struct {
	EngineNsPerOp   float64 `json:"engine_ns_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op"`
	ImprovementPct  float64 `json:"improvement_pct"`
}

type runThroughput struct {
	BaselinePktsPerSec float64 `json:"baseline_pkts_per_sec"`
	PktsPerSec         float64 `json:"pkts_per_sec"`
	ImprovementPct     float64 `json:"improvement_pct"`
}

type scaleRun struct {
	BaselinePktsPerSec float64 `json:"baseline_pkts_per_sec"`
	PktsPerSec         float64 `json:"pkts_per_sec"`
	FlowsPerRun        float64 `json:"flows_per_run"`
	PeakRSSMB          float64 `json:"peak_rss_mb"`
	ImprovementPct     float64 `json:"improvement_pct"`
}

type parallelRun struct {
	SerialPktsPerSec  float64 `json:"serial_pkts_per_sec"`
	ShardedPktsPerSec float64 `json:"sharded_pkts_per_sec"`
	Speedup           float64 `json:"speedup"`
	Shards            float64 `json:"shards"`
	Cores             float64 `json:"cores"`
}

// prefixList collects repeated -zero-alloc flags.
type prefixList []string

func (p *prefixList) String() string     { return strings.Join(*p, ",") }
func (p *prefixList) Set(s string) error { *p = append(*p, s); return nil }

func main() {
	maxRegress := flag.Float64("max-regress", -1,
		"fail if the headline metric regresses more than this percent below baseline")
	minImprove := flag.Float64("min-improve", -1,
		"fail if the headline metric improves less than this percent over baseline")
	maxRSS := flag.Float64("max-rss-mb", -1,
		"fail if the scale run's peak RSS exceeds this many MiB")
	minSpeedup := flag.Float64("min-parallel-speedup", -1,
		"fail if the sharded run's speedup over serial is below this factor (skipped with a warning when the bench machine had < 4 cores)")
	var zeroAlloc prefixList
	flag.Var(&zeroAlloc, "zero-alloc",
		"require 0 allocs/op for benchmarks with this name prefix (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate [flags] BENCH_<suite>.json")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	// Headline comparison: whichever of the two benchjson headline blocks
	// the report carries. The benchstat-style table shows old (baseline),
	// new, and delta so the CI log reads like a perf diff, not a boolean.
	headline := ""
	var oldV, newV, deltaPct float64
	switch {
	case rep.ScaleRun != nil:
		headline = "pkts/s (scale=huge)"
		oldV = rep.ScaleRun.BaselinePktsPerSec
		newV = rep.ScaleRun.PktsPerSec
		deltaPct = rep.ScaleRun.ImprovementPct
	case rep.RunThroughput != nil:
		headline = "pkts/s"
		oldV = rep.RunThroughput.BaselinePktsPerSec
		newV = rep.RunThroughput.PktsPerSec
		deltaPct = rep.RunThroughput.ImprovementPct
	case rep.CancelChurn != nil:
		headline = "ns/op (cancel churn)"
		oldV = rep.CancelChurn.BaselineNsPerOp
		newV = rep.CancelChurn.EngineNsPerOp
		deltaPct = rep.CancelChurn.ImprovementPct
	}
	if headline != "" {
		fmt.Printf("%-24s %14s %14s %9s\n", "metric", "old", "new", "delta")
		fmt.Printf("%-24s %14.1f %14.1f %+8.2f%%\n", headline, oldV, newV, deltaPct)
		if *maxRegress >= 0 && deltaPct < -*maxRegress {
			fail("%s regressed %.2f%% against baseline (limit %.0f%%)",
				headline, -deltaPct, *maxRegress)
		}
		if *minImprove >= 0 && deltaPct < *minImprove {
			fail("%s improved only %.2f%% over baseline (need >= %.0f%%)",
				headline, deltaPct, *minImprove)
		}
	} else if *maxRegress >= 0 || *minImprove >= 0 {
		fail("report carries no headline comparison to gate on")
	}

	// Memory-envelope gate: the scale run's process peak RSS must fit the
	// CI budget — the sublinear-memory claim turned into a hard bound.
	if *maxRSS >= 0 {
		switch {
		case rep.ScaleRun == nil:
			fail("report carries no scale_run block to gate peak RSS on")
		case rep.ScaleRun.PeakRSSMB <= 0:
			fail("scale run recorded no peak RSS")
		case rep.ScaleRun.PeakRSSMB > *maxRSS:
			fail("scale run peak RSS %.0f MiB exceeds the %.0f MiB envelope",
				rep.ScaleRun.PeakRSSMB, *maxRSS)
		default:
			fmt.Printf("%-48s %.0f MiB peak RSS (envelope %.0f MiB)  ok\n",
				"scale=huge", rep.ScaleRun.PeakRSSMB, *maxRSS)
		}
	}

	// Multi-core gate: the sharded scale=huge run must beat the serial one
	// by the required factor. A speedup needs cores to show up on, so on a
	// bench machine with fewer than 4 the gate degrades to a warning — the
	// recorded numbers still land in the report for machines that can tell.
	if *minSpeedup >= 0 {
		switch {
		case rep.ParallelRun == nil:
			fail("report carries no parallel_run block to gate speedup on")
		case rep.ParallelRun.Cores < 4:
			fmt.Printf("%-48s %.2fx speedup (%.0f shards, %.0f cores)  skipped: needs >= 4 cores\n",
				"parallel scale=huge", rep.ParallelRun.Speedup,
				rep.ParallelRun.Shards, rep.ParallelRun.Cores)
		case rep.ParallelRun.Speedup < *minSpeedup:
			fail("sharded run speedup %.2fx below the %.2fx floor (%.0f shards, %.0f cores)",
				rep.ParallelRun.Speedup, *minSpeedup,
				rep.ParallelRun.Shards, rep.ParallelRun.Cores)
		default:
			fmt.Printf("%-48s %.2fx speedup (%.0f shards, %.0f cores)  ok\n",
				"parallel scale=huge", rep.ParallelRun.Speedup,
				rep.ParallelRun.Shards, rep.ParallelRun.Cores)
		}
	}

	// Alloc gates: every matching benchmark must exist and be alloc-free.
	for _, prefix := range zeroAlloc {
		matched := 0
		for _, b := range rep.Benchmarks {
			if !strings.HasPrefix(b.Name, prefix) {
				continue
			}
			matched++
			switch {
			case b.AllocsPerOp == nil:
				fail("%s: no allocs/op recorded (run with -benchmem)", b.Name)
			case *b.AllocsPerOp != 0:
				fail("%s: %.0f allocs/op on a zero-alloc path", b.Name, *b.AllocsPerOp)
			default:
				fmt.Printf("%-48s 0 allocs/op  ok\n", b.Name)
			}
		}
		if matched == 0 {
			fail("no benchmarks match -zero-alloc prefix %q", prefix)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: all gates passed")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
