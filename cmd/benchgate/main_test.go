package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// TestMain lets the test binary double as the benchgate binary: when
// re-exec'd with BENCHGATE_CHILD set it runs main() instead of the tests,
// so the exit-code contract is tested without a separate build step.
func TestMain(m *testing.M) {
	if os.Getenv("BENCHGATE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// gate re-execs the test binary as benchgate against a report written to a
// temp file and returns the exit code.
func gate(t *testing.T, report string, args ...string) int {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_run.json")
	if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], append(args, path)...)
	cmd.Env = append(os.Environ(), "BENCHGATE_CHILD=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("re-exec failed: %v\n%s", err, out)
	}
	return ee.ExitCode()
}

const passingRun = `{
  "benchmarks": [
    {"name": "BenchmarkDatapathMarker", "ns_per_op": 10, "allocs_per_op": 0},
    {"name": "BenchmarkDatapathOrderer", "ns_per_op": 12, "allocs_per_op": 0}
  ],
  "run_throughput": {
    "baseline_pkts_per_sec": 100000,
    "pkts_per_sec": 130000,
    "improvement_pct": 30
  }
}`

func TestGatePasses(t *testing.T) {
	if code := gate(t, passingRun, "-max-regress", "10", "-zero-alloc", "BenchmarkDatapath"); code != 0 {
		t.Errorf("healthy report rejected with exit %d", code)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	rep := `{
	  "benchmarks": [],
	  "run_throughput": {
	    "baseline_pkts_per_sec": 100000, "pkts_per_sec": 80000, "improvement_pct": -20
	  }
	}`
	if code := gate(t, rep, "-max-regress", "10"); code != 1 {
		t.Errorf("20%% regression passed the 10%% gate (exit %d)", code)
	}
	// The same report clears a looser bound.
	if code := gate(t, rep, "-max-regress", "25"); code != 0 {
		t.Errorf("20%% regression failed the 25%% gate (exit %d)", code)
	}
}

func TestGateFailsOnAllocs(t *testing.T) {
	rep := `{
	  "benchmarks": [
	    {"name": "BenchmarkDatapathMarker", "ns_per_op": 10, "allocs_per_op": 2}
	  ]
	}`
	if code := gate(t, rep, "-zero-alloc", "BenchmarkDatapath"); code != 1 {
		t.Errorf("2 allocs/op passed the zero-alloc gate (exit %d)", code)
	}
}

func TestGateFailsOnMissingBenchmarks(t *testing.T) {
	// An empty match set must fail loudly: a renamed benchmark silently
	// vacuously passing is exactly the bug class the gate exists to stop.
	if code := gate(t, `{"benchmarks": []}`, "-zero-alloc", "BenchmarkDatapath"); code != 1 {
		t.Errorf("empty match set passed the zero-alloc gate (exit %d)", code)
	}
}

func TestGateMinImprove(t *testing.T) {
	if code := gate(t, passingRun, "-min-improve", "20"); code != 0 {
		t.Errorf("30%% improvement failed the 20%% floor (exit %d)", code)
	}
	if code := gate(t, passingRun, "-min-improve", "40"); code != 1 {
		t.Errorf("30%% improvement passed the 40%% floor (exit %d)", code)
	}
}

// parallelReport builds a parallel_run report with the given speedup and
// core count.
func parallelReport(speedup, cores float64) string {
	return `{
	  "benchmarks": [],
	  "parallel_run": {
	    "serial_pkts_per_sec": 100000,
	    "sharded_pkts_per_sec": ` + fmtF(100000*speedup) + `,
	    "speedup": ` + fmtF(speedup) + `,
	    "shards": 4,
	    "cores": ` + fmtF(cores) + `
	  }
	}`
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

func TestGateParallelSpeedup(t *testing.T) {
	// Enough cores, enough speedup: pass.
	if code := gate(t, parallelReport(2.6, 4), "-min-parallel-speedup", "2.0"); code != 0 {
		t.Errorf("2.6x on 4 cores failed the 2.0x floor (exit %d)", code)
	}
	// Enough cores, too slow: fail.
	if code := gate(t, parallelReport(1.4, 4), "-min-parallel-speedup", "2.0"); code != 1 {
		t.Errorf("1.4x on 4 cores passed the 2.0x floor (exit %d)", code)
	}
	// Too few cores: the gate degrades to a warning — a 1-core bench
	// machine cannot demonstrate a speedup, and must not fail CI for it.
	if code := gate(t, parallelReport(1.0, 1), "-min-parallel-speedup", "2.0"); code != 0 {
		t.Errorf("1-core report failed the speedup gate instead of skipping (exit %d)", code)
	}
	// No parallel_run block at all: fail loudly, same rationale as the
	// empty zero-alloc match set.
	if code := gate(t, `{"benchmarks": []}`, "-min-parallel-speedup", "2.0"); code != 1 {
		t.Errorf("missing parallel_run block passed the speedup gate (exit %d)", code)
	}
}
