// Command vertigo-serve is the long-running simulation daemon: an
// HTTP/JSON control plane in front of the crash-safe experiment runner.
// Tenants POST experiment specs; the daemon admission-controls them onto a
// bounded worker pool, journals every accepted job (restart resumes
// unfinished work), streams progress over SSE, and writes per-job artifact
// directories. SIGTERM drains gracefully up to -drain.
//
// Quickstart:
//
//	vertigo-serve -data /tmp/vertigo &
//	curl -s localhost:8080/api/v1/jobs -d '{"experiment":"incast-burst","scale":"tiny"}'
//	curl -N localhost:8080/api/v1/jobs/j1/events   # SSE progress
//	curl -s localhost:8080/metrics | grep vertigo_serve
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vertigo/internal/obs"
	"vertigo/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "HTTP listen address for the control plane")
		data       = flag.String("data", "vertigo-data", "data directory (journal + per-job artifacts)")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS/2)")
		queue      = flag.Int("queue", 64, "max queued jobs before 429")
		tenantMax  = flag.Int("tenant-max", 8, "max in-flight jobs per tenant before 429")
		retries    = flag.Int("retries", 3, "default retry budget for transient job failures")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline on SIGTERM")
		memSoft    = flag.Uint64("mem-soft", 0, "heap soft limit in bytes; above it queued jobs are shed (0 = off)")
		runTimeout = flag.Duration("run-timeout", 2*time.Minute, "default wall-clock budget per simulation run")
		maxEvents  = flag.Uint64("max-events", 0, "default event budget per run (0 = unlimited)")
		debugAddr  = flag.String("debug-addr", "", "separate debug listener for /metrics and /statusz (default: served on -addr)")
	)
	flag.Parse()

	srv, err := serve.New(serve.Config{
		DataDir:           *data,
		Workers:           *workers,
		QueueDepth:        *queue,
		TenantMax:         *tenantMax,
		MaxRetries:        *retries,
		MemSoftLimit:      *memSoft,
		DefaultRunTimeout: *runTimeout,
		DefaultMaxEvents:  *maxEvents,
	})
	if err != nil {
		log.Fatalf("vertigo-serve: %v", err)
	}
	srv.Start()

	mux := http.NewServeMux()
	mux.Handle("/api/", srv.Handler())
	mux.Handle("/healthz", srv.Handler())
	var dbgClose io.Closer
	if *debugAddr != "" {
		// Debug plane on its own listener, shut down explicitly with the
		// daemon (unlike vertigo-exp's run-to-exit default).
		dbg, closer, err := obs.Serve(*debugAddr, obs.Default, srv.Status)
		if err != nil {
			log.Fatalf("vertigo-serve: debug listener: %v", err)
		}
		dbgClose = closer
		log.Printf("debug plane on http://%s", dbg)
	} else {
		mux.Handle("/", obs.Handler(obs.Default, srv.Status))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("vertigo-serve: %v", err)
	}
	hs := &http.Server{Handler: mux}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatalf("vertigo-serve: %v", err)
		}
	}()
	log.Printf("vertigo-serve on http://%s (data %s, %s)", ln.Addr(), *data, describe(*workers, *queue))

	// SIGTERM/SIGINT: stop admission, drain running jobs up to -drain, then
	// exit. Jobs still queued (or killed mid-run) stay in the journal and
	// resume on the next start.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	log.Printf("draining (up to %v)...", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v (journal will resume unfinished jobs)", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx)
	if dbgClose != nil {
		_ = dbgClose.Close()
	}
	log.Print("bye")
}

func describe(workers, queue int) string {
	w := "GOMAXPROCS/2 workers"
	if workers > 0 {
		w = fmt.Sprintf("%d workers", workers)
	}
	return fmt.Sprintf("%s, queue %d", w, queue)
}
