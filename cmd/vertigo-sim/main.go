// Command vertigo-sim runs one simulation scenario and prints its metrics.
//
// Examples:
//
//	vertigo-sim -scheme vertigo -transport dctcp -duration 100ms
//	vertigo-sim -scheme dibs -bg-load 0.5 -incast-load 0.35 -json
//	vertigo-sim -topology fattree -fattree-k 4 -scheme vertigo -transport swift
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"vertigo"
	"vertigo/internal/obs"
)

func main() {
	var (
		scheme    = flag.String("scheme", "vertigo", "forwarding scheme: ecmp|drill|dibs|vertigo")
		transport = flag.String("transport", "dctcp", "congestion control: tcp|dctcp|swift")
		topology  = flag.String("topology", "leafspine", "fabric: leafspine|fattree")
		duration  = flag.Duration("duration", 100*time.Millisecond, "simulated time (also the completion deadline)")
		seed      = flag.Int64("seed", 1, "simulation seed (same seed => identical run)")

		spines   = flag.Int("spines", 2, "leaf-spine: spine switches")
		leaves   = flag.Int("leaves", 4, "leaf-spine: leaf (ToR) switches")
		hpl      = flag.Int("hosts-per-leaf", 4, "leaf-spine: hosts per leaf")
		fatTreeK = flag.Int("fattree-k", 4, "fat-tree: k (even)")

		bgLoad     = flag.Float64("bg-load", 0.25, "background load fraction of host capacity")
		bgWorkload = flag.String("bg-workload", "cachefollower", "cachefollower|datamining|websearch")
		tracePath  = flag.String("trace", "", "CSV flow trace to replay (start_us,src,dst,bytes)")

		incastLoad  = flag.Float64("incast-load", 0.25, "incast offered load fraction (overrides -incast-qps)")
		incastQPS   = flag.Float64("incast-qps", 0, "incast queries per second (used when -incast-load is 0)")
		incastScale = flag.Int("incast-scale", 8, "servers per incast query")
		incastKB    = flag.Int("incast-flow-kb", 40, "incast response size in KB")

		tau       = flag.Duration("ordering-timeout", 360*time.Microsecond, "Vertigo ordering timeout τ")
		boost     = flag.Int("boost-factor", 2, "Vertigo boosting factor (power of two; 1 disables)")
		las       = flag.Bool("las", false, "use flow-aging (LAS) marking instead of SRPT")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
		telemetry = flag.Bool("telemetry", false, "print the per-port monitoring report (§5)")
		pktTrace  = flag.String("packet-trace", "", "write a per-event dataplane trace to this file")
		traceFlow = flag.Uint64("packet-trace-flow", 0, "flow ID to trace (0 = all flows)")
		shards    = flag.Int("shards", 0, "shard the run across this many topology domains on separate cores (deterministic per shard count; <=1 = serial engine)")
		debugAddr = flag.String("debug-addr", "", "serve the introspection plane on this address, e.g. localhost:9464 (/metrics, /statusz, /healthz, /debug/pprof)")
	)
	flag.Parse()

	if *debugAddr != "" {
		status := func() any {
			return map[string]any{
				"scheme": *scheme, "transport": *transport, "topology": *topology,
				"duration": duration.String(), "seed": *seed,
			}
		}
		// Closer unused: -debug-addr serves until process exit by design.
		addr, _, err := obs.Serve(*debugAddr, obs.Default, status)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vertigo-sim: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "introspection plane on http://%s/ (metrics, statusz, healthz, pprof)\n", addr)
	}

	cfg := vertigo.Defaults(vertigo.Scheme(*scheme), vertigo.Transport(*transport))
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.Topology = vertigo.Topology(*topology)
	cfg.Spines = *spines
	cfg.Leaves = *leaves
	cfg.HostsPerLeaf = *hpl
	cfg.FatTreeK = *fatTreeK
	cfg.BackgroundLoad = *bgLoad
	cfg.BackgroundWorkload = *bgWorkload
	cfg.TracePath = *tracePath
	cfg.IncastScale = *incastScale
	cfg.IncastFlowKB = *incastKB
	cfg.IncastQPS = *incastQPS
	cfg.IncastLoad = *incastLoad
	cfg.OrderTimeout = *tau
	cfg.BoostFactor = *boost
	cfg.DisableBoost = *boost == 1
	cfg.LAS = *las

	cfg.Telemetry = *telemetry
	cfg.PacketTracePath = *pktTrace
	cfg.PacketTraceFlow = *traceFlow
	cfg.Shards = *shards
	rep, err := vertigo.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vertigo-sim:", err)
		os.Exit(1)
	}

	if *jsonOut {
		rep.FCTs, rep.QCTs = nil, nil // keep the JSON digestible
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "vertigo-sim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scheme=%s transport=%s topology=%s duration=%v seed=%d\n\n",
		*scheme, *transport, *topology, *duration, *seed)
	fmt.Printf("flows     %d started, %d completed (%.1f%%)\n",
		rep.FlowsStarted, rep.FlowsCompleted, rep.FlowCompletionPct)
	fmt.Printf("FCT       mean %v  p99 %v  (mice mean %v)\n",
		rep.MeanFCT, rep.P99FCT, rep.MeanMiceFCT)
	fmt.Printf("queries   %d started, %d completed (%.1f%%)\n",
		rep.QueriesStarted, rep.QueriesCompleted, rep.QueryCompletionPct)
	fmt.Printf("QCT       mean %v  p50 %v  p99 %v\n",
		rep.MeanQCT, rep.QCTPercentile(50), rep.P99QCT)
	fmt.Printf("packets   %d sent, %d delivered, %d dropped (%.4f%%)\n",
		rep.PacketsSent, rep.PacketsDelivered, rep.Drops, rep.DropRatePct)
	fmt.Printf("network   %d deflections, mean hops %.2f, %d reordered\n",
		rep.Deflections, rep.MeanHops, rep.ReorderedPackets)
	fmt.Printf("recovery  %d retransmits (%d RTO, %d fast)\n",
		rep.Retransmits, rep.RTOs, rep.FastRetx)
	fmt.Printf("goodput   %.2f Gbps overall, %.1f Mbps per elephant\n",
		rep.OverallGoodputGbps, rep.ElephantGoodputMbps)
	fmt.Printf("engine    %d events\n", rep.Events)
	if rep.TelemetryText != "" {
		fmt.Printf("\n%s", rep.TelemetryText)
	}
}
