// Command vertigo-servectl is a small client for the vertigo-serve daemon:
//
//	vertigo-servectl submit spec.json     # or: -f - to read stdin
//	vertigo-servectl submit -watch spec.json
//	vertigo-servectl list
//	vertigo-servectl get j3
//	vertigo-servectl watch j3             # tail the SSE event stream
//	vertigo-servectl health
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"
)

func main() {
	log.SetFlags(0)
	addr := flag.String("addr", "http://localhost:8080", "vertigo-serve base URL")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: vertigo-servectl [-addr URL] {submit [-watch] FILE | list | get ID | watch ID | health}")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: *addr}
	switch args[0] {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		watch := fs.Bool("watch", false, "follow the job's event stream after submitting")
		_ = fs.Parse(args[1:])
		if fs.NArg() != 1 {
			log.Fatal("submit: want exactly one spec file (or - for stdin)")
		}
		id := c.submit(fs.Arg(0))
		if *watch {
			c.watch(id)
		}
	case "list":
		c.get("/api/v1/jobs")
	case "get":
		if len(args) != 2 {
			log.Fatal("get: want a job ID")
		}
		c.get("/api/v1/jobs/" + args[1])
	case "watch":
		if len(args) != 2 {
			log.Fatal("watch: want a job ID")
		}
		c.watch(args[1])
	case "health":
		c.get("/healthz")
	default:
		flag.Usage()
		os.Exit(2)
	}
}

type client struct{ base string }

// submit POSTs a spec file (or stdin for "-") and prints the accepted job;
// it exits nonzero on any rejection, echoing Retry-After when present.
func (c *client) submit(path string) string {
	var spec []byte
	var err error
	if path == "-" {
		spec, err = io.ReadAll(os.Stdin)
	} else {
		spec, err = os.ReadFile(path)
	}
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	resp, err := http.Post(c.base+"/api/v1/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		log.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			log.Printf("rejected (%s), Retry-After: %ss", resp.Status, ra)
		} else {
			log.Printf("rejected (%s)", resp.Status)
		}
		os.Stderr.Write(body)
		os.Exit(1)
	}
	os.Stdout.Write(body)
	var v struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &v); err != nil || v.ID == "" {
		log.Fatal("submit: response had no job ID")
	}
	return v.ID
}

// get prints one API response body.
func (c *client) get(path string) {
	resp, err := http.Get(c.base + path)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	os.Stdout.Write(body)
	if resp.StatusCode != http.StatusOK {
		os.Exit(1)
	}
}

// watch tails a job's SSE stream until it ends (job terminal or server
// gone), printing "event: data" lines.
func (c *client) watch(id string) {
	cl := &http.Client{Timeout: 0} // SSE: no overall deadline
	resp, err := cl.Get(c.base + "/api/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("watch: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	sc := bufio.NewScanner(resp.Body)
	var ev string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case bytes.HasPrefix([]byte(line), []byte("event: ")):
			ev = line[len("event: "):]
		case bytes.HasPrefix([]byte(line), []byte("data: ")):
			fmt.Printf("%s  %-9s %s\n", time.Now().Format("15:04:05"), ev+":", line[len("data: "):])
		}
	}
}
