// Command vertigo-hostdemo drives the deployable host components (the wire
// Marker and Orderer) over an adversarial in-process channel that reorders,
// delays and drops frames — a miniature of the paper's §4.4 host prototype.
// It prints what the channel did to the stream and what the ordering layer
// delivered to the "transport".
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"vertigo"
)

func main() {
	var (
		flows    = flag.Int("flows", 4, "concurrent flows")
		flowKB   = flag.Int("flow-kb", 64, "bytes per flow (KB)")
		lossPct  = flag.Float64("loss", 2, "percent of frames dropped by the channel")
		jitterUS = flag.Int("jitter-us", 200, "max per-frame channel delay (µs)")
		seed     = flag.Int64("seed", 1, "rng seed")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	marker := vertigo.NewMarker(vertigo.MarkerOptions{})
	orderer := vertigo.NewOrderer(vertigo.OrdererOptions{Timeout: 360 * time.Microsecond})

	// Build the marked segment stream for every flow.
	type timed struct {
		at  time.Time
		seg vertigo.Segment
	}
	start := time.Unix(0, 0)
	var wire []timed
	sent, dropped := 0, 0
	for f := 0; f < *flows; f++ {
		key := uint64(f + 1)
		size := int64(*flowKB) * 1000
		marker.StartFlow(key, size)
		for off := int64(0); off < size; off += vertigo.MSS {
			n := vertigo.MSS
			if size-off < int64(n) {
				n = int(size - off)
			}
			var hdr [vertigo.ShimHeaderLen]byte
			fi, err := marker.Mark(key, off, n, hdr[:], 0x0800)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hostdemo:", err)
				os.Exit(1)
			}
			sent++
			if rng.Float64()*100 < *lossPct {
				dropped++
				continue
			}
			// Adversarial channel: uniform random delay per frame, so frames
			// arrive heavily reordered (like SRPT queues + deflection).
			delay := time.Duration(rng.Intn(*jitterUS+1)) * time.Microsecond
			wire = append(wire, timed{
				at: start.Add(delay),
				seg: vertigo.Segment{
					Key: key, Info: fi, Len: n, Last: off+int64(n) == size,
				},
			})
		}
		marker.EndFlow(key)
	}
	sort.Slice(wire, func(i, j int) bool { return wire[i].at.Before(wire[j].at) })

	// Receive loop: feed arrivals and fire deadlines, exactly as a poll-mode
	// driver would integrate the sans-IO Orderer.
	inOrder := make(map[uint64]uint32) // per flow: last delivered position
	delivered, misordered := 0, 0
	deliver := func(segs []vertigo.Segment) {
		for _, s := range segs {
			delivered++
			pos := s.Info.RFS // unboosted already: no retransmissions here
			if last, ok := inOrder[s.Key]; ok && pos >= last {
				misordered++
			}
			inOrder[s.Key] = pos
		}
	}
	for _, ev := range wire {
		if dl, ok := orderer.NextDeadline(); ok && !ev.at.Before(dl) {
			deliver(orderer.Expire(ev.at))
		}
		deliver(orderer.Receive(ev.at, ev.seg))
	}
	// Drain remaining deadlines.
	end := start.Add(time.Second)
	deliver(orderer.Expire(end))

	fmt.Printf("flows              %d x %dKB\n", *flows, *flowKB)
	fmt.Printf("frames             %d sent, %d dropped by channel (%.1f%%)\n",
		sent, dropped, 100*float64(dropped)/float64(sent))
	fmt.Printf("held by orderer    %d frames buffered, %d timeouts\n",
		orderer.Held, orderer.Timeouts)
	fmt.Printf("delivered          %d frames\n", delivered)
	fmt.Printf("out of order       %d frames reached the transport misordered\n", misordered)
	if dropped == 0 && misordered > 0 {
		fmt.Println("BUG: misordering without loss")
		os.Exit(1)
	}
	fmt.Println("\nwith loss, misordering is bounded by the gaps the channel created;")
	fmt.Println("re-run with -loss 0 to see the orderer absorb all reordering.")
}
