// Command vertigo-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	vertigo-exp [-scale tiny|small|medium|paper] [-v] [-out DIR] <experiment>...
//	vertigo-exp -list
//	vertigo-exp all
//
// Experiments map one-to-one to the paper's evaluation artifacts: fig1,
// fig5–fig13, table2, table3, sec2, plus the extra "defset" ablation.
// Absolute numbers depend on the scale; the orderings and trends are the
// reproduction targets (see EXPERIMENTS.md).
//
// With -out, every invocation writes a self-describing artifact directory:
// manifest.json (what ran, toolchain, throughput), results.json (tables plus
// every run's summary and engine/pool counters), and — when -sample-tick or
// -trace-flow are set — samples.csv and trace.jsonl.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"sync"
	"time"

	"vertigo/internal/exp"
	"vertigo/internal/faults"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/units"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "vertigo-exp:", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		scale   = flag.String("scale", "small", "scale preset: tiny|small|medium|paper")
		verbose = flag.Bool("v", false, "print one progress line per simulation run (label, metrics, wall time, events/sec)")
		list    = flag.Bool("list", false, "list experiments and exit")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		par     = flag.Int("parallel", 1, "experiments to run concurrently (tables still print in order)")
		jobs    = flag.Int("j", exp.Concurrency,
			"simulations to run concurrently within each experiment (1 = sequential; tables are identical at any setting)")

		outDir     = flag.String("out", "", "write run artifacts (manifest.json, results.json, samples.csv, trace.jsonl) into this directory")
		sampleTick = flag.Duration("sample-tick", 0, "per-port queue/utilization sampling tick, e.g. 100us (0 = off; series lands in -out samples.csv)")
		traceFlow  = flag.Uint64("trace-flow", 0, "JSONL packet trace for this flow ID (0 = off; trace lands in -out trace.jsonl)")

		faultSpec = flag.String("fault", "",
			`fault schedule injected into every run, e.g. "flap@10ms:link=64,down=1ms,period=4ms,count=3" (see internal/faults)`)
		healDelay  = flag.Duration("heal-delay", 0, "control-plane healing delay after each -fault topology change (0 = healing off)")
		runTimeout = flag.Duration("run-timeout", 0, "wall-clock budget per simulation run; an over-budget run fails its row (0 = unlimited)")
		trainLen   = flag.Int("train", -1, "dataplane packet-train length override: 0 = per-packet engine, >=2 = coalesce; -1 keeps the default (results are identical at any value)")
		shards     = flag.Int("shards", 0, "shard every simulation across this many topology domains on separate cores (tables are deterministic per shard count; <=1 = serial engine)")

		debugAddr = flag.String("debug-addr", "", "serve the introspection plane on this address, e.g. localhost:9464 (/metrics, /statusz, /healthz, /debug/pprof)")
		rawSeries = flag.String("raw-series", "auto", "raw FCT/QCT series retention: auto (drop past 200k flows/run), keep, drop (histograms still carry the distributions)")
		flightLen = flag.Int("flight", 4096, "crash flight recorder ring size per run; a crashed or watchdog-killed run dumps it to -out flight.jsonl (0 = off)")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace to this file")
	)
	flag.Parse()
	exp.Concurrency = max(1, *jobs)

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.ByID(id)
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	if *verbose {
		exp.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			return err
		}
		defer trace.Stop()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vertigo-exp: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "vertigo-exp: memprofile:", err)
			}
		}()
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vertigo-exp [-scale S] [-j N] [-parallel N] [-csv DIR] [-out DIR] [-v] <experiment>... | all | -list")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		ids = exp.IDs()
	} else {
		ids = args
	}

	fmt.Printf("scale=%s (%d hosts leaf-spine, fat-tree k=%d, %v simulated)\n\n",
		sc.Name, sc.Hosts(), sc.FatTreeK, sc.SimTime)

	// Resolve everything up front so typos fail before hours of simulation.
	exps := make([]*exp.Experiment, len(ids))
	for i, id := range ids {
		e, err := exp.ByID(strings.ToLower(id))
		if err != nil {
			return err
		}
		exps[i] = e
		ids[i] = e.ID
	}

	exp.SampleTick = units.FromDuration(*sampleTick)
	exp.TraceFlow = *traceFlow
	if *faultSpec != "" {
		sched, err := faults.Parse(*faultSpec)
		if err != nil {
			return err
		}
		exp.FaultSchedule = sched
	}
	exp.HealDelay = units.FromDuration(*healDelay)
	exp.RunTimeout = *runTimeout
	exp.TrainLen = *trainLen
	exp.Shards = *shards
	exp.FlightLen = *flightLen
	rm, err := metrics.ParseRawMode(*rawSeries)
	if err != nil {
		return err
	}
	exp.RawMode = rm
	var rec *exp.Recorder
	if *outDir != "" {
		rec = exp.NewRecorder()
		exp.OnRun = rec.Record
	}
	start := time.Now()

	if *debugAddr != "" {
		status := func() any {
			return map[string]any{
				"experiments": ids,
				"scale":       sc.Name,
				"concurrency": exp.Concurrency,
				"start_time":  start.UTC().Format(time.RFC3339),
			}
		}
		// The returned closer is deliberately unused: the -debug-addr plane
		// runs until process exit so the last scrape still sees final counts.
		addr, _, err := obs.Serve(*debugAddr, obs.Default, status)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "introspection plane on http://%s/ (metrics, statusz, healthz, pprof)\n", addr)
	}

	// Experiments are independent deterministic simulations: run up to
	// -parallel of them concurrently, but print results in request order.
	type outcome struct {
		tables []*exp.Table
		err    error
	}
	results := make([]outcome, len(exps))
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tables, err := e.Run(sc, nil)
			results[i] = outcome{tables, err}
		}()
	}
	wg.Wait()

	// Failures no longer void an invocation: each experiment's surviving
	// tables still print and land in the artifacts, and the errors come back
	// aggregated at the end.
	var allTables []*exp.Table
	var runErrs []error
	for i, r := range results {
		if r.err != nil {
			runErrs = append(runErrs, fmt.Errorf("%s: %w", exps[i].ID, r.err))
		}
		tables := r.tables
		allTables = append(allTables, tables...)
		for i, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				name := fmt.Sprintf("%s-%d.csv", t.ID, i)
				if len(tables) == 1 {
					name = t.ID + ".csv"
				}
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					return err
				}
				if err := t.WriteCSV(f); err != nil {
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
		}
	}

	if rec != nil {
		m := exp.BuildManifest(ids, sc, exp.Concurrency, rec, start, time.Since(start))
		if err := exp.WriteArtifacts(*outDir, m, allTables, rec); err != nil {
			return fmt.Errorf("writing artifacts: %w", err)
		}
		fmt.Printf("artifacts: %s (%d runs, %d failed, %.2fs wall, %.2fM events/s)\n",
			*outDir, m.Runs, m.FailedRuns, m.WallSeconds, m.EventsPerSec/1e6)
	}
	return errors.Join(runErrs...)
}
