// Command vertigo-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	vertigo-exp [-scale tiny|small|medium|paper] [-v] <experiment>...
//	vertigo-exp -list
//	vertigo-exp all
//
// Experiments map one-to-one to the paper's evaluation artifacts: fig1,
// fig5–fig13, table2, table3, sec2, plus the extra "defset" ablation.
// Absolute numbers depend on the scale; the orderings and trends are the
// reproduction targets (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"vertigo/internal/exp"
)

func main() {
	var (
		scale   = flag.String("scale", "small", "scale preset: tiny|small|medium|paper")
		verbose = flag.Bool("v", false, "print one progress line per simulation run")
		list    = flag.Bool("list", false, "list experiments and exit")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		par     = flag.Int("parallel", 1, "experiments to run concurrently (tables still print in order)")
		jobs    = flag.Int("j", exp.Concurrency,
			"simulations to run concurrently within each experiment (1 = sequential; tables are identical at any setting)")
	)
	flag.Parse()
	exp.Concurrency = max(1, *jobs)

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.ByID(id)
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	sc, err := exp.ScaleByName(*scale)
	if err != nil {
		fatal(err)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *verbose {
		exp.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vertigo-exp [-scale S] [-j N] [-parallel N] [-csv DIR] [-v] <experiment>... | all | -list")
		os.Exit(2)
	}
	var ids []string
	if len(args) == 1 && args[0] == "all" {
		ids = exp.IDs()
	} else {
		ids = args
	}

	fmt.Printf("scale=%s (%d hosts leaf-spine, fat-tree k=%d, %v simulated)\n\n",
		sc.Name, sc.Hosts(), sc.FatTreeK, sc.SimTime)

	// Resolve everything up front so typos fail before hours of simulation.
	exps := make([]*exp.Experiment, len(ids))
	for i, id := range ids {
		e, err := exp.ByID(strings.ToLower(id))
		if err != nil {
			fatal(err)
		}
		exps[i] = e
	}

	// Experiments are independent deterministic simulations: run up to
	// -parallel of them concurrently, but print results in request order.
	type outcome struct {
		tables []*exp.Table
		err    error
	}
	results := make([]outcome, len(exps))
	sem := make(chan struct{}, max(1, *par))
	var wg sync.WaitGroup
	for i, e := range exps {
		i, e := i, e
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tables, err := e.Run(sc)
			results[i] = outcome{tables, err}
		}()
	}
	wg.Wait()

	for _, r := range results {
		if r.err != nil {
			fatal(r.err)
		}
		tables := r.tables
		for i, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
			if *csvDir != "" {
				name := fmt.Sprintf("%s-%d.csv", t.ID, i)
				if len(tables) == 1 {
					name = t.ID + ".csv"
				}
				f, err := os.Create(filepath.Join(*csvDir, name))
				if err != nil {
					fatal(err)
				}
				if err := t.WriteCSV(f); err != nil {
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vertigo-exp:", err)
	os.Exit(1)
}
