//go:build linux

package vertigo_test

// Million-flow memory-scaling checks. These take minutes, so they hide
// behind VERTIGO_SCALE_TEST=1; the bench-scale CI job runs them alongside
// BenchmarkRunThroughputHuge.

import (
	"os"
	"runtime"
	"syscall"
	"testing"

	"vertigo/internal/core"
	"vertigo/internal/units"
)

// TestScaleSublinearRSS pins the tentpole memory claim: growing a run from
// ~130k to ~1.3M flows (10x) must grow peak RSS far less than linearly,
// because steady-state heap tracks *active* flows — identical between the
// two runs, which share the same arrival rate — not total flows started.
// Slab recycling, the streaming metrics store and the arenas are what make
// this hold; before them, sender/receiver/record state accreted per flow.
//
// Both runs execute in this process and getrusage's high-water mark is
// monotone, so the measurement order (small first) is load-bearing.
func TestScaleSublinearRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow RSS check takes minutes")
	}
	if os.Getenv("VERTIGO_SCALE_TEST") == "" {
		t.Skip("set VERTIGO_SCALE_TEST=1 to run the million-flow RSS check (minutes)")
	}
	run := func(sim units.Time) (flows int, rssMB float64) {
		cfg := runHugeConfig()
		cfg.SimTime = sim
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var ru syscall.Rusage
		if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
			t.Fatal(err)
		}
		return res.Summary.FlowsStarted, float64(ru.Maxrss) / 1024
	}

	smallFlows, smallRSS := run(units.Millisecond)
	bigFlows, bigRSS := run(10 * units.Millisecond)
	t.Logf("small: %d flows, peak RSS %.0f MB; big: %d flows, peak RSS %.0f MB (%.2fx)",
		smallFlows, smallRSS, bigFlows, bigRSS, bigRSS/smallRSS)

	if bigFlows < 1_000_000 {
		t.Fatalf("big run started %d flows, want >= 1M", bigFlows)
	}
	if ratio := float64(bigFlows) / float64(smallFlows); ratio < 8 {
		t.Fatalf("flow ratio %.1fx, want ~10x — scenario drifted", ratio)
	}
	// 10x the flows must cost well under 10x the memory; 3x is generous
	// headroom over the expected near-flat growth.
	if bigRSS > 3*smallRSS {
		t.Errorf("peak RSS grew %.2fx across a 10x flow increase — per-flow state is accreting",
			bigRSS/smallRSS)
	}
}
