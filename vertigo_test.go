package vertigo_test

import (
	"testing"
	"time"

	"vertigo"
)

func tinyConfig(s vertigo.Scheme, tr vertigo.Transport) vertigo.Config {
	cfg := vertigo.Defaults(s, tr)
	cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf = 2, 4, 4
	cfg.Duration = 20 * time.Millisecond
	cfg.BackgroundLoad = 0.25
	cfg.IncastScale = 8
	cfg.IncastFlowKB = 20
	cfg.IncastLoad = 0.20
	return cfg
}

func TestPublicRun(t *testing.T) {
	rep, err := vertigo.Run(tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP))
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowsCompleted == 0 || rep.QueriesCompleted == 0 {
		t.Fatalf("nothing completed: %+v", rep)
	}
	if rep.MeanQCT <= 0 || rep.P99QCT < rep.MeanQCT/10 {
		t.Fatalf("implausible QCTs: mean %v p99 %v", rep.MeanQCT, rep.P99QCT)
	}
	if len(rep.QCTs) != rep.QueriesCompleted {
		t.Fatalf("QCT series %d entries, want %d", len(rep.QCTs), rep.QueriesCompleted)
	}
	if p50, p99 := rep.QCTPercentile(50), rep.QCTPercentile(99); p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

func TestPublicRunDeterministic(t *testing.T) {
	cfg := tinyConfig(vertigo.SchemeDIBS, vertigo.TransportSwift)
	a, err := vertigo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vertigo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events || a.MeanFCT != b.MeanFCT {
		t.Fatalf("same config diverged: %d/%v vs %d/%v", a.Events, a.MeanFCT, b.Events, b.MeanFCT)
	}
	cfg.Seed = 99
	c, err := vertigo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Events == a.Events {
		t.Fatal("different seed produced identical run (suspicious)")
	}
}

func TestPublicConfigValidation(t *testing.T) {
	bad := tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	bad.Scheme = "hotpotato"
	if _, err := vertigo.Run(bad); err == nil {
		t.Error("unknown scheme accepted")
	}
	bad = tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	bad.Transport = "carrier-pigeon"
	if _, err := vertigo.Run(bad); err == nil {
		t.Error("unknown transport accepted")
	}
	bad = tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	bad.Topology = "torus"
	if _, err := vertigo.Run(bad); err == nil {
		t.Error("unknown topology accepted")
	}
	bad = tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	bad.BackgroundWorkload = "nope"
	if _, err := vertigo.Run(bad); err == nil {
		t.Error("unknown workload accepted")
	}
	bad = tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	bad.BoostFactor = 3
	if _, err := vertigo.Run(bad); err == nil {
		t.Error("non-power-of-two boost factor accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	if cfg.Spines != 4 || cfg.Leaves != 8 || cfg.HostsPerLeaf != 40 {
		t.Errorf("topology defaults drifted: %+v", cfg)
	}
	if cfg.BufferKB != 300 || cfg.ECNThresholdPk != 65 {
		t.Errorf("fabric defaults drifted: %+v", cfg)
	}
	if cfg.IncastQPS != 4000 || cfg.IncastScale != 100 || cfg.IncastFlowKB != 40 {
		t.Errorf("incast defaults drifted (paper Table 1): %+v", cfg)
	}
	if cfg.OrderTimeout != 360*time.Microsecond || cfg.BoostFactor != 2 {
		t.Errorf("vertigo defaults drifted: %+v", cfg)
	}
	if cfg.Duration != 5*time.Second {
		t.Errorf("duration default drifted: %v", cfg.Duration)
	}
}

func TestFatTreePublicRun(t *testing.T) {
	cfg := tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	cfg.Topology = vertigo.TopologyFatTree
	cfg.FatTreeK = 4
	rep, err := vertigo.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlowsCompleted == 0 {
		t.Fatal("no flows completed on fat-tree")
	}
}

func TestAblationFlagsWire(t *testing.T) {
	// Each ablation flag must change the run (events differ from baseline).
	base := tinyConfig(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
	ref, err := vertigo.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*vertigo.Config){
		"DisableSched":   func(c *vertigo.Config) { c.DisableSched = true },
		"DisableDeflect": func(c *vertigo.Config) { c.DisableDeflect = true },
		"DisableOrder":   func(c *vertigo.Config) { c.DisableOrder = true },
		"LAS":            func(c *vertigo.Config) { c.LAS = true },
		"Tau":            func(c *vertigo.Config) { c.OrderTimeout = 120 * time.Microsecond },
	} {
		cfg := base
		mut(&cfg)
		rep, err := vertigo.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Events == ref.Events {
			t.Errorf("%s: flag had no observable effect", name)
		}
	}
}
