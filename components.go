package vertigo

import (
	"time"

	"vertigo/internal/host"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// This file re-exports the deployable end-host components and wire formats,
// so downstream users get the Vertigo stack pieces without touching the
// simulator: the TX marking component, the RX ordering component, and the
// two flowinfo header encodings of paper Fig. 3.

// FlowInfo is Vertigo's per-packet auxiliary header (paper Fig. 3).
type FlowInfo = packet.FlowInfo

// Segment is a frame handed to or released by the Orderer.
type Segment = host.WireSegment

// Wire encoding sizes and identifiers (paper Fig. 3).
const (
	ShimHeaderLen = packet.ShimHeaderLen // layer-3 shim: 7 bytes
	OptionLen     = packet.OptionLen     // IPv4 option: 8 bytes
	ShimEtherType = packet.ShimEtherType
	MSS           = packet.MSS
)

// EncodeShim writes the shim layer-3 encoding of f into b.
func EncodeShim(b []byte, f FlowInfo, innerEtherType uint16) (int, error) {
	return packet.EncodeShim(b, f, innerEtherType)
}

// DecodeShim parses a shim header, returning the flowinfo fields and the
// encapsulated EtherType.
func DecodeShim(b []byte) (FlowInfo, uint16, error) {
	return packet.DecodeShim(b)
}

// EncodeOption writes the IPv4-option encoding of f into b.
func EncodeOption(b []byte, f FlowInfo) (int, error) {
	return packet.EncodeOption(b, f)
}

// DecodeOption parses the IPv4-option encoding.
func DecodeOption(b []byte) (FlowInfo, error) {
	return packet.DecodeOption(b)
}

// Marker is the TX-path marking component (paper §3.1): it tracks outgoing
// flows, tags every segment with the flow's remaining bytes, detects
// retransmissions with a cuckoo filter, and boosts their priority.
type Marker = host.WireMarker

// Orderer is the RX-path ordering component (paper §3.3): it re-sequences
// out-of-order (deflected) segments before the transport sees them, holding
// early segments for at most the ordering timeout τ.
type Orderer = host.WireOrderer

// MarkerOptions configures a Marker.
type MarkerOptions struct {
	// LAS switches to flow-aging marking for when flow sizes are unknown
	// (paper §4.3); default is SRPT remaining-size marking.
	LAS bool
	// BoostFactor is the power-of-two priority boost per retransmission
	// (paper default 2). Zero selects 2; 1 disables boosting.
	BoostFactor int
	// FlowCapacity hints the expected number of concurrent in-flight
	// segments for sizing the duplicate-detection filter.
	FlowCapacity int
}

// NewMarker returns a TX-path marking component.
func NewMarker(opts MarkerOptions) *Marker {
	cfg := host.DefaultMarkerConfig()
	if opts.LAS {
		cfg.Discipline = host.LAS
	}
	switch {
	case opts.BoostFactor == 1:
		cfg.Boosting = false
	case opts.BoostFactor > 1:
		log2 := uint(0)
		for f := opts.BoostFactor; f > 1; f >>= 1 {
			log2++
		}
		cfg.BoostFactorLog2 = log2
	}
	cfg.FilterCapacity = opts.FlowCapacity
	return host.NewWireMarker(cfg)
}

// OrdererOptions configures an Orderer.
type OrdererOptions struct {
	// Timeout is τ, the longest an early segment is held while waiting for
	// a delayed one (paper default 360µs).
	Timeout time.Duration
	// LAS and BoostFactor must match the sender's MarkerOptions.
	LAS         bool
	BoostFactor int
}

// NewOrderer returns an RX-path ordering component.
func NewOrderer(opts OrdererOptions) *Orderer {
	cfg := host.DefaultOrdererConfig()
	if opts.Timeout > 0 {
		cfg.Timeout = units.FromDuration(opts.Timeout)
	}
	if opts.LAS {
		cfg.Discipline = host.LAS
	}
	if opts.BoostFactor > 1 {
		log2 := uint(0)
		for f := opts.BoostFactor; f > 1; f >>= 1 {
			log2++
		}
		cfg.BoostFactorLog2 = log2
	}
	return host.NewWireOrderer(cfg)
}
