package vertigo_test

// Whole-run throughput benchmarks: where BenchmarkEngine* time the event
// core in isolation, these run a fixed end-to-end scenario and report
// simulated packets per wall second — the number a user actually waits on.
// `make bench-run` records BenchmarkRunThroughput in BENCH_run.json and CI
// gates regressions, the same way BENCH_core.json tracks events/sec.

import (
	"runtime"
	"syscall"
	"testing"

	"vertigo/internal/core"
	"vertigo/internal/exp"
	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// runThroughputConfig is the frozen BenchmarkRunThroughput scenario: the
// Tiny leaf-spine fabric under the paper's headline-style mix (25%
// background + 60% incast, Vertigo + DCTCP), heavy enough to exercise the
// marker, orderer, host demux and metrics per-packet paths at realistic
// flow churn. Changing it invalidates the BENCH_run.json trajectory.
func runThroughputConfig() core.Config {
	sc := exp.Tiny
	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.Seed = 1
	cfg.SimTime = 60 * units.Millisecond
	cfg.Kind = core.LeafSpine
	cfg.LeafSpineCfg.Spines = sc.Spines
	cfg.LeafSpineCfg.Leaves = sc.Leaves
	cfg.LeafSpineCfg.HostsPerLeaf = sc.HostsPerLeaf
	cfg.IncastScale = sc.IncastScale
	cfg.IncastFlowSize = int64(sc.IncastFlowKB) * 1000
	cfg.BGLoad = 0.25
	cfg.SetIncastLoad(0.60)
	return cfg
}

// BenchmarkRunThroughput runs the frozen leaf-spine incast scenario
// end-to-end once per iteration and reports simulated data packets
// transmitted per wall second ("pkts/s"), the standing whole-run
// throughput gauge gated by the bench-run CI job.
func BenchmarkRunThroughput(b *testing.B) {
	cfg := runThroughputConfig()
	var pkts int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pkts = res.Summary.PacketsSent
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		b.ReportMetric(float64(pkts), "pkts/run")
	}
}

// runHugeConfig is the frozen scale=huge scenario: the Huge preset's k=16
// fat-tree (1024 hosts) under a 40% incast-only load of 4 KB flows —
// over a million flows in 10 simulated milliseconds. Flow churn, not byte
// volume, is the stressor: it exercises sender/receiver slab recycling,
// streaming-only metrics past the raw-series cutover, and the
// allocation-lean FIB build.
func runHugeConfig() core.Config {
	sc := exp.Huge
	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.Seed = sc.Seed
	cfg.SimTime = sc.SimTime
	cfg.Kind = core.FatTree
	cfg.FatTreeCfg = topo.FatTreeConfig{
		K:         sc.FatTreeK,
		Rate:      10 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.IncastScale = sc.IncastScale
	cfg.IncastFlowSize = int64(sc.IncastFlowKB) * 1000
	cfg.BGLoad = 0
	cfg.SetIncastLoad(0.40)
	return cfg
}

// BenchmarkRunThroughputHuge runs the scale=huge scenario end-to-end and
// reports pkts/s, flows/run and the process peak RSS ("peak_rss_mb"). The
// RSS figure is the process high-water mark, so run this benchmark alone
// (as `make bench-scale` does) when gating on it. An iteration simulates a
// million-plus flows (~2 minutes), so -short skips it; see README for the
// full-vs-short test split.
func BenchmarkRunThroughputHuge(b *testing.B) {
	if testing.Short() {
		b.Skip("an iteration runs a million-flow simulation (minutes)")
	}
	cfg := runHugeConfig()
	var pkts, flows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pkts = res.Summary.PacketsSent
		flows = int64(res.Summary.FlowsStarted)
	}
	b.StopTimer()
	if flows < 1_000_000 {
		b.Fatalf("scale=huge started %d flows, want >= 1M", flows)
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		b.ReportMetric(float64(flows), "flows/run")
	}
	if rss := peakRSSMB(); rss > 0 {
		b.ReportMetric(rss, "peak_rss_mb")
	}
}

// BenchmarkRunThroughputHugeParallel runs the same frozen scale=huge
// scenario sharded across 4 topology domains (core.Config.Shards) and
// reports pkts/s plus the shard and core counts. The bench-parallel CI job
// records it next to the serial BenchmarkRunThroughputHuge in BENCH.json's
// parallel_run block and gates the speedup (>= 2.0x on machines with >= 4
// cores; benchgate only warns below that). A sharded run is a distinct
// deterministic universe, so pkts/run differs slightly from serial — the
// gauge is wall-clock packets per second, not the packet count.
func BenchmarkRunThroughputHugeParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("an iteration runs a million-flow simulation (minutes)")
	}
	cfg := runHugeConfig()
	cfg.Shards = 4
	var pkts, flows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pkts = res.Summary.PacketsSent
		flows = int64(res.Summary.FlowsStarted)
	}
	b.StopTimer()
	if flows < 1_000_000 {
		b.Fatalf("scale=huge started %d flows, want >= 1M", flows)
	}
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(pkts)*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
		b.ReportMetric(float64(flows), "flows/run")
	}
	b.ReportMetric(float64(cfg.Shards), "shards")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
}

// peakRSSMB returns the process's peak resident set size in MiB, or 0 when
// unavailable.
func peakRSSMB() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	// Linux reports ru_maxrss in KiB.
	return float64(ru.Maxrss) / 1024
}

// --- datapath steady-state allocation benchmarks -----------------------------
//
// The per-packet fast paths the flow tables sit on must not allocate in
// steady state; CI fails if any of these reports >0 allocs/op.

// BenchmarkDatapathMarkerAllocs measures the simulator marker's per-packet
// cost on a warm flow: flow-table hit, duplicate-filter probe, header stamp.
func BenchmarkDatapathMarkerAllocs(b *testing.B) {
	m := host.NewMarker(host.DefaultMarkerConfig())
	const segs = 1 << 12
	const size = int64(segs) * packet.MSS
	m.StartFlow(1, 0, size)
	p := &packet.Packet{Flow: 1, Kind: packet.Data, PayloadLen: packet.MSS}
	for i := 0; i < segs; i++ { // warm: every segment marked once
		p.Seq = int64(i) * packet.MSS
		m.Mark(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seq = int64(i%segs) * packet.MSS
		m.Mark(p)
	}
}

// BenchmarkDatapathOrdererAllocs measures the simulator orderer's
// per-packet cost on an in-order warm stream (the overwhelmingly common
// case): flow-table hit, position compare, direct delivery.
func BenchmarkDatapathOrdererAllocs(b *testing.B) {
	eng := sim.NewEngine(1)
	deliver := func(p *packet.Packet) {}
	o := host.NewOrderer(eng, host.DefaultOrdererConfig(), deliver)
	const segs = 1 << 12
	const size = uint32(segs) * packet.MSS
	mk := func(flow uint64, i int) *packet.Packet {
		return &packet.Packet{
			Flow: flow, Kind: packet.Data, PayloadLen: packet.MSS, Marked: true,
			Info: packet.FlowInfo{RFS: size - uint32(i)*packet.MSS, First: i == 0},
		}
	}
	pkts := make([]*packet.Packet, segs)
	for i := range pkts {
		pkts[i] = mk(1, i)
	}
	flow := uint64(1)
	o.Receive(pkts[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg := (i + 1) % segs
		if seg == 0 { // flow finished last iteration: start the next one
			flow++
			for j := range pkts {
				pkts[j].Flow = flow
			}
		}
		o.Receive(pkts[seg])
	}
}

// BenchmarkDatapathDRILLAllocs measures DRILL's per-packet routing cost —
// two random queue samples plus the per-group least-loaded memory — through
// a real switch, including enqueue/dequeue.
func BenchmarkDatapathDRILLAllocs(b *testing.B) {
	net, eng := benchFabric(b, fabric.DRILL)
	var ids packet.IDGen
	sw := net.Switch(4) // a leaf switch: has spine uplinks to balance over
	// The destination host consumes each delivered packet with Pool().Put,
	// so every injected packet must come from the pool: Get and Put balance
	// and the free list stays flat. Injecting one stack packet repeatedly
	// would grow the free list by one frame per iteration.
	inject := func() {
		p := net.Pool().Get()
		*p = packet.Packet{ID: ids.Next(), Kind: packet.Data, Src: 0, Dst: 15,
			Flow: 7, PayloadLen: packet.MSS}
		sw.Receive(p)
	}
	inject()
	eng.Run(eng.Now() + units.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject()
		eng.Run(eng.Now() + 50*units.Microsecond) // drain so queues stay shallow
	}
}

// benchFabric builds a Tiny leaf-spine fabric for datapath benchmarks.
func benchFabric(b *testing.B, policy fabric.Policy) (*fabric.Network, *sim.Engine) {
	b.Helper()
	cfg := runThroughputConfig()
	tp, err := topo.NewLeafSpine(cfg.LeafSpineCfg)
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := fabric.New(eng, tp, met, fabric.DefaultConfig(policy))
	for h := 0; h < tp.NumHosts; h++ {
		host.NewHost(h, eng, net, met,
			host.DefaultMarkerConfig(), host.DefaultOrdererConfig(), false)
	}
	return net, eng
}
