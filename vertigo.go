// Package vertigo is a reproduction of "Burst-tolerant Datacenter Networks
// with Vertigo" (Abdous, Sharafzadeh, Ghorbani — CoNEXT 2021).
//
// It provides two things:
//
//   - A deterministic packet-level datacenter simulator (Run) covering the
//     paper's full evaluation space: leaf-spine and fat-tree fabrics; ECMP,
//     DRILL, DIBS and Vertigo forwarding; TCP Reno, DCTCP and Swift
//     transports; background workloads drawn from published flow-size
//     distributions; and the incast query application that generates
//     microbursts.
//
//   - The deployable Vertigo end-host components (Marker, Orderer): the
//     TX-path remaining-flow-size marking component with retransmission
//     boosting, the RX-path re-sequencing component, and the wire encodings
//     of the flowinfo header (paper Fig. 3).
//
// A minimal simulation:
//
//	cfg := vertigo.Defaults(vertigo.SchemeVertigo, vertigo.TransportDCTCP)
//	cfg.Duration = 100 * time.Millisecond
//	rep, err := vertigo.Run(cfg)
package vertigo

import (
	"fmt"
	"os"
	"strings"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

// Scheme selects the in-network forwarding scheme.
type Scheme string

// Forwarding schemes (paper §4.1 "Alternative approaches").
const (
	SchemeECMP    Scheme = "ecmp"
	SchemeDRILL   Scheme = "drill"
	SchemeDIBS    Scheme = "dibs"
	SchemeVertigo Scheme = "vertigo"
)

// Transport selects the congestion control protocol.
type Transport string

// Transports (paper §4.1).
const (
	TransportTCP   Transport = "tcp"
	TransportDCTCP Transport = "dctcp"
	TransportSwift Transport = "swift"
)

// Topology selects the fabric shape.
type Topology string

// Topologies (paper §4.1).
const (
	TopologyLeafSpine Topology = "leafspine"
	TopologyFatTree   Topology = "fattree"
)

// Config describes one simulation. The zero value is not runnable; start
// from Defaults and override.
type Config struct {
	Seed     int64
	Duration time.Duration // simulated time (also the completion deadline)

	Scheme    Scheme
	Transport Transport

	// Topology. LeafSpine fields apply to TopologyLeafSpine; FatTreeK to
	// TopologyFatTree.
	Topology     Topology
	Spines       int
	Leaves       int
	HostsPerLeaf int
	FatTreeK     int
	HostGbps     int // access link rate
	FabricGbps   int // switch-switch rate (leaf-spine only)

	// Fabric parameters (paper Table 1 / §4.1).
	BufferKB       int           // per-port buffer
	ECNThresholdPk int           // DCTCP marking threshold in packets
	FwdChoices     int           // Vertigo power-of-n forwarding (Fig. 12)
	DeflChoices    int           // Vertigo power-of-n deflection (Fig. 12)
	MaxDeflections int           // per-packet deflection budget (0 = policy default)
	DisableSched   bool          // Fig. 11a "No Scheduling"
	DisableDeflect bool          // Fig. 11a "No Deflection"
	DisableOrder   bool          // Fig. 11a "No Ordering"
	DisableBoost   bool          // Fig. 11b "No Boosting"
	BoostFactor    int           // power of two; paper default 2
	OrderTimeout   time.Duration // τ; paper default 360µs
	LAS            bool          // flow-aging marking instead of SRPT (Table 3)

	// Background workload.
	BackgroundLoad     float64 // fraction of aggregate host capacity
	BackgroundWorkload string  // cachefollower | datamining | websearch
	// TracePath, when set, replays a CSV flow trace (start_us,src,dst,bytes
	// per line) in addition to the synthetic workloads.
	TracePath string

	// Incast application (paper Table 1).
	IncastQPS    float64
	IncastScale  int
	IncastFlowKB int
	// IncastLoad, when positive, overrides IncastQPS so incast traffic
	// offers this load fraction.
	IncastLoad float64

	// Telemetry enables the per-port monitoring report (§5): utilization,
	// queue high-water marks, congestion episodes and microburst counts,
	// and the deflections-per-packet histogram.
	Telemetry bool

	// PacketTracePath, when set, writes one line per dataplane event of the
	// traced flow to this file (PacketTraceFlow; 0 traces everything).
	PacketTracePath string
	PacketTraceFlow uint64

	// Shards, when > 1, partitions the fabric into that many topology
	// domains and runs them on separate cores under a conservative
	// time-window protocol. A sharded run is deterministic for a given
	// shard count but statistically — not bitwise — comparable to a serial
	// run; scenarios a shard cannot carry (Telemetry, text packet traces)
	// degrade to the serial engine.
	Shards int
}

// Defaults returns the paper's default settings (Table 1, §4.1) for a
// scheme/transport pair on the paper's 320-host leaf-spine fabric.
func Defaults(s Scheme, tp Transport) Config {
	return Config{
		Seed:               1,
		Duration:           5 * time.Second,
		Scheme:             s,
		Transport:          tp,
		Topology:           TopologyLeafSpine,
		Spines:             4,
		Leaves:             8,
		HostsPerLeaf:       40,
		FatTreeK:           8,
		HostGbps:           10,
		FabricGbps:         40,
		BufferKB:           300,
		ECNThresholdPk:     65,
		FwdChoices:         2,
		DeflChoices:        2,
		BoostFactor:        2,
		OrderTimeout:       360 * time.Microsecond,
		BackgroundLoad:     0.5,
		BackgroundWorkload: "cachefollower",
		IncastQPS:          4000,
		IncastScale:        100,
		IncastFlowKB:       40,
	}
}

// Report is the digest of one run.
type Report struct {
	// Flows.
	FlowsStarted, FlowsCompleted int
	FlowCompletionPct            float64
	MeanFCT, P99FCT              time.Duration
	MeanMiceFCT                  time.Duration

	// Incast queries.
	QueriesStarted, QueriesCompleted int
	QueryCompletionPct               float64
	MeanQCT, P99QCT                  time.Duration

	// Network.
	PacketsSent, PacketsDelivered int64
	Drops                         int64
	DropRatePct                   float64
	Deflections                   int64
	MeanHops                      float64
	Retransmits, RTOs, FastRetx   int64
	ReorderedPackets              int64
	OverallGoodputGbps            float64
	ElephantGoodputMbps           float64

	// Raw series for CDF plots.
	FCTs, QCTs []time.Duration

	// Events is the number of simulator events executed (throughput gauge).
	Events uint64

	// TelemetryText is the rendered monitoring report (empty unless
	// Config.Telemetry was set).
	TelemetryText string

	// Microbursts counts sub-millisecond congestion episodes observed by
	// the monitor (0 unless Config.Telemetry was set).
	Microbursts int
}

// Run executes the scenario described by cfg.
func Run(cfg Config) (*Report, error) {
	cc, err := cfg.lower()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cc)
	if err != nil {
		return nil, err
	}
	rep := report(res)
	if res.Telemetry != nil {
		var sb strings.Builder
		res.Telemetry.WriteReport(&sb, res.Summary.Duration, 10)
		rep.TelemetryText = sb.String()
		rep.Microbursts = len(res.Telemetry.Microbursts())
	}
	return rep, nil
}

// lower translates the public Config into the internal scenario config.
func (cfg Config) lower() (core.Config, error) {
	var policy fabric.Policy
	switch cfg.Scheme {
	case SchemeECMP:
		policy = fabric.ECMP
	case SchemeDRILL:
		policy = fabric.DRILL
	case SchemeDIBS:
		policy = fabric.DIBS
	case SchemeVertigo, "":
		policy = fabric.Vertigo
	default:
		return core.Config{}, fmt.Errorf("vertigo: unknown scheme %q", cfg.Scheme)
	}
	var proto transport.Protocol
	switch cfg.Transport {
	case TransportTCP:
		proto = transport.Reno
	case TransportDCTCP, "":
		proto = transport.DCTCP
	case TransportSwift:
		proto = transport.Swift
	default:
		return core.Config{}, fmt.Errorf("vertigo: unknown transport %q", cfg.Transport)
	}

	cc := core.DefaultConfig(policy, proto)
	cc.Seed = cfg.Seed
	cc.SimTime = units.FromDuration(cfg.Duration)

	switch cfg.Topology {
	case TopologyLeafSpine, "":
		cc.Kind = core.LeafSpine
		cc.LeafSpineCfg = topo.LeafSpineConfig{
			Spines:       cfg.Spines,
			Leaves:       cfg.Leaves,
			HostsPerLeaf: cfg.HostsPerLeaf,
			HostRate:     units.BitRate(cfg.HostGbps) * units.Gbps,
			FabricRate:   units.BitRate(cfg.FabricGbps) * units.Gbps,
			LinkDelay:    500 * units.Nanosecond,
		}
	case TopologyFatTree:
		cc.Kind = core.FatTree
		cc.FatTreeCfg = topo.FatTreeConfig{
			K:         cfg.FatTreeK,
			Rate:      units.BitRate(cfg.HostGbps) * units.Gbps,
			LinkDelay: 500 * units.Nanosecond,
		}
	default:
		return core.Config{}, fmt.Errorf("vertigo: unknown topology %q", cfg.Topology)
	}

	cc.Fabric.BufferBytes = units.ByteSize(cfg.BufferKB) * units.KB
	cc.Fabric.ECNThreshold = cfg.ECNThresholdPk
	cc.Fabric.FwdChoices = cfg.FwdChoices
	cc.Fabric.DeflChoices = cfg.DeflChoices
	cc.Fabric.MaxDeflections = cfg.MaxDeflections
	cc.Fabric.Scheduling = !cfg.DisableSched
	cc.Fabric.Deflection = !cfg.DisableDeflect

	if cfg.BoostFactor > 0 {
		log2 := uint(0)
		for f := cfg.BoostFactor; f > 1; f >>= 1 {
			if f%2 != 0 {
				return core.Config{}, fmt.Errorf("vertigo: boost factor %d is not a power of two", cfg.BoostFactor)
			}
			log2++
		}
		cc.Marker.BoostFactorLog2 = log2
	}
	cc.Marker.Boosting = !cfg.DisableBoost
	if cfg.LAS {
		cc.Marker.Discipline = host.LAS
	}
	if cfg.OrderTimeout > 0 {
		cc.Orderer.Timeout = units.FromDuration(cfg.OrderTimeout)
	}
	if cfg.DisableOrder {
		// An effectively-zero hold: packets flush immediately, exposing raw
		// reordering to the transport (Fig. 11a "No Ordering").
		cc.Orderer.Timeout = 1
	}

	cc.BGLoad = cfg.BackgroundLoad
	if cfg.BackgroundWorkload != "" {
		dist, err := workload.DistByName(cfg.BackgroundWorkload)
		if err != nil {
			return core.Config{}, err
		}
		cc.BGDist = dist
	}
	if cfg.TracePath != "" {
		f, err := os.Open(cfg.TracePath)
		if err != nil {
			return core.Config{}, err
		}
		defer f.Close()
		tr, err := workload.ParseTrace(f)
		if err != nil {
			return core.Config{}, err
		}
		cc.Trace = tr
	}
	cc.IncastQPS = cfg.IncastQPS
	cc.IncastScale = cfg.IncastScale
	cc.IncastFlowSize = int64(cfg.IncastFlowKB) * 1000
	if cfg.IncastLoad > 0 {
		cc.SetIncastLoad(cfg.IncastLoad)
	}
	cc.Telemetry = cfg.Telemetry
	cc.Shards = cfg.Shards
	if cfg.PacketTracePath != "" {
		f, err := os.Create(cfg.PacketTracePath)
		if err != nil {
			return core.Config{}, err
		}
		cc.PacketTrace = f
		cc.PacketTraceFlow = cfg.PacketTraceFlow
	}
	return cc, nil
}

func report(res *core.Result) *Report {
	s := res.Summary
	r := &Report{
		FlowsStarted:        s.FlowsStarted,
		FlowsCompleted:      s.FlowsCompleted,
		FlowCompletionPct:   s.FlowCompletionP,
		MeanFCT:             s.MeanFCT.Duration(),
		P99FCT:              s.P99FCT.Duration(),
		MeanMiceFCT:         s.MeanMiceFCT.Duration(),
		QueriesStarted:      s.QueriesStarted,
		QueriesCompleted:    s.QueriesCompleted,
		QueryCompletionPct:  s.QueryCompletionP,
		MeanQCT:             s.MeanQCT.Duration(),
		P99QCT:              s.P99QCT.Duration(),
		PacketsSent:         s.PacketsSent,
		PacketsDelivered:    s.PacketsRecv,
		Drops:               s.Drops,
		DropRatePct:         100 * s.DropRate,
		Deflections:         s.Deflections,
		MeanHops:            s.MeanHops,
		Retransmits:         s.Retransmits,
		RTOs:                s.RTOs,
		FastRetx:            s.FastRetx,
		ReorderedPackets:    s.ReorderPkts,
		OverallGoodputGbps:  float64(s.OverallGoodput) / float64(units.Gbps),
		ElephantGoodputMbps: float64(s.ElephantGoodput) / float64(units.Mbps),
		Events:              res.Events,
	}
	for _, t := range s.FCTs {
		r.FCTs = append(r.FCTs, t.Duration())
	}
	for _, t := range s.QCTs {
		r.QCTs = append(r.QCTs, t.Duration())
	}
	return r
}

// QCTPercentile returns the p-th percentile of completed query completion
// times.
func (r *Report) QCTPercentile(p float64) time.Duration {
	return percentileDur(r.QCTs, p)
}

// FCTPercentile returns the p-th percentile of completed flow completion
// times.
func (r *Report) FCTPercentile(p float64) time.Duration {
	return percentileDur(r.FCTs, p)
}

func percentileDur(ds []time.Duration, p float64) time.Duration {
	ts := make([]units.Time, len(ds))
	for i, d := range ds {
		ts[i] = units.FromDuration(d)
	}
	return metrics.Percentile(ts, p).Duration()
}
