module vertigo

go 1.22
