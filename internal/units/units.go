// Package units provides the time, size and rate arithmetic used throughout
// the simulator. Simulated time is an integer nanosecond count so that runs
// are exactly reproducible; rates are bits per second.
package units

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp or duration in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// FromDuration converts a wall-clock duration to simulated Time.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// ByteSize is a byte count.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1000 * Byte
	MB   ByteSize = 1000 * KB
	GB   ByteSize = 1000 * MB
	KiB  ByteSize = 1024 * Byte
	MiB  ByteSize = 1024 * KiB
)

// String formats b with an adaptive unit.
func (b ByteSize) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// BitRate is a link or flow rate in bits per second.
type BitRate int64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps         BitRate = 1000 * BitPerSecond
	Mbps         BitRate = 1000 * Kbps
	Gbps         BitRate = 1000 * Mbps
)

// String formats r with an adaptive unit.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	}
	return fmt.Sprintf("%dbps", int64(r))
}

// TxTime returns the serialization delay of n bytes at rate r.
// It rounds up to a whole nanosecond so a transmission never takes zero time.
func (r BitRate) TxTime(n ByteSize) Time {
	if r <= 0 {
		panic("units: non-positive bit rate")
	}
	if n <= 0 {
		return 0
	}
	bits := int64(n) * 8
	t := (bits*int64(Second) + int64(r) - 1) / int64(r)
	return Time(t)
}

// BytesIn returns how many whole bytes rate r delivers in duration d.
func (r BitRate) BytesIn(d Time) ByteSize {
	if d <= 0 {
		return 0
	}
	return ByteSize(int64(r) * int64(d) / (8 * int64(Second)))
}
