package units

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTxTime(t *testing.T) {
	cases := []struct {
		rate BitRate
		n    ByteSize
		want Time
	}{
		{10 * Gbps, 1500, 1200},
		{40 * Gbps, 1500, 300},
		{10 * Gbps, 0, 0},
		{10 * Gbps, 1, 1}, // 0.8ns rounds up
		{1 * Gbps, 1500, 12000},
		{100 * Gbps, 1500, 120},
	}
	for _, c := range cases {
		if got := c.rate.TxTime(c.n); got != c.want {
			t.Errorf("TxTime(%v, %v) = %v, want %v", c.rate, c.n, got, c.want)
		}
	}
}

func TestTxTimeNeverZeroForPositiveBytes(t *testing.T) {
	f := func(nRaw uint16, rateRaw uint8) bool {
		n := ByteSize(nRaw) + 1
		rate := BitRate(int(rateRaw)+1) * Gbps
		return rate.TxTime(n) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTxTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TxTime with zero rate did not panic")
		}
	}()
	BitRate(0).TxTime(100)
}

func TestBytesIn(t *testing.T) {
	if got := (10 * Gbps).BytesIn(Microsecond); got != 1250 {
		t.Fatalf("10Gbps over 1µs = %v bytes, want 1250", got)
	}
	if got := (10 * Gbps).BytesIn(-5); got != 0 {
		t.Fatalf("negative duration yields %v, want 0", got)
	}
}

func TestBytesInTxTimeRoundTrip(t *testing.T) {
	// TxTime rounds up, so transmitting for TxTime(n) always moves >= n bytes.
	f := func(nRaw uint16, rateRaw uint8) bool {
		n := ByteSize(nRaw) + 1
		rate := BitRate(int(rateRaw)+1) * Gbps
		return rate.BytesIn(rate.TxTime(n)) >= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{5 * Second, "5s"},
		{1500 * Microsecond, "1.500ms"},
		{250 * Microsecond, "250.000µs"},
		{42, "42ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeSecondsAndDuration(t *testing.T) {
	if s := (2500 * Millisecond).Seconds(); s != 2.5 {
		t.Fatalf("Seconds() = %v, want 2.5", s)
	}
	if d := (3 * Microsecond).Duration(); d != 3*time.Microsecond {
		t.Fatalf("Duration() = %v, want 3µs", d)
	}
	if ft := FromDuration(time.Millisecond); ft != Millisecond {
		t.Fatalf("FromDuration = %v, want 1ms", ft)
	}
}

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{500, "500B"},
		{1500, "1.50KB"},
		{3 * MB, "3.00MB"},
		{2 * GB, "2.00GB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		in   BitRate
		want string
	}{
		{500, "500bps"},
		{10 * Gbps, "10.00Gbps"},
		{25 * Mbps, "25.00Mbps"},
		{3 * Kbps, "3.00Kbps"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}
