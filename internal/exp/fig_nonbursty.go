package exp

import (
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/workload"
)

func init() {
	register(&Experiment{
		ID: "nonbursty",
		Title: "Non-bursty traffic: background-only sweep over the three " +
			"published workloads (§4.2 'Vertigo favors short flows')",
		Run: runNonBursty,
	})
}

// runNonBursty reproduces the paper's §4.2 non-incast comparison: no incast
// application at all, background load rising from 25% to 90%, across the
// cache-follower, data-mining and web-search distributions. The paper finds
// Vertigo's SRPT forwarding cuts overall FCTs substantially on the
// mice-dominated cache-follower workload and costs at most a few percent on
// the elephant-dominated ones.
func runNonBursty(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:    "nonbursty",
		Title: "Background-only workloads (no incast)",
		Columns: []string{"workload", "system", "load", "mean_FCT", "mice_FCT",
			"p99_FCT", "drop_rate"},
		Notes: []string{
			"paper §4.2: cache-follower (mice-dominated) FCT improves up to 116% under",
			"Vertigo; large-flow workloads see at most a marginal FCT increase",
		},
	}
	sw := newSweep(opt)
	for _, dist := range []*workload.SizeDist{
		workload.CacheFollower, workload.DataMining, workload.WebSearch,
	} {
		for _, sys := range []struct {
			policy fabric.Policy
			proto  transport.Protocol
		}{
			{fabric.ECMP, transport.DCTCP},
			{fabric.Vertigo, transport.DCTCP},
		} {
			for _, load := range []float64{0.25, 0.60, 0.90} {
				cfg := baseConfig(sc, sys.policy, sys.proto)
				cfg.BGLoad = load
				cfg.BGDist = dist
				cfg.IncastQPS = 0
				label := "nonbursty/" + dist.Name + "/" + sys.policy.String() + "/" + pct(load*100)
				sw.add(label, cfg, func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(dist.Name, schemeName(sys.policy, sys.proto), pct(load*100),
						s.MeanFCT, s.MeanMiceFCT, s.P99FCT, pct(100*s.DropRate))
				})
			}
		}
	}
	return []*Table{t}, sw.run()
}
