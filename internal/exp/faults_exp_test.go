package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

// TestFaultSweepDeterminism pins the acceptance criterion for the fault
// subsystem: a fault schedule produces byte-identical tables at any -j,
// because injection is driven entirely by engine events.
func TestFaultSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(old int) { Concurrency = old }(Concurrency)
	for _, id := range []string{"failheal", "flapstorm"} {
		Concurrency = 1
		seq := renderAll(t, id)
		Concurrency = 8
		par := renderAll(t, id)
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: parallel render differs from sequential:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
				id, seq, par)
		}
	}
}

// TestSweepSurvivesPanic pins the crash-safety guarantee: a panicking run
// fails its own row while the rest of the sweep completes and renders.
func TestSweepSurvivesPanic(t *testing.T) {
	defer func(old func(*Options, string, core.Config) (*metrics.Summary, *metrics.Collector, error)) {
		runFn = old
	}(runFn)
	runFn = func(o *Options, label string, cfg core.Config) (*metrics.Summary, *metrics.Collector, error) {
		if strings.Contains(label, "boom") {
			panic("synthetic crash")
		}
		return &metrics.Summary{}, metrics.NewCollector(), nil
	}

	for _, conc := range []int{1, 4} {
		defer func(old int) { Concurrency = old }(Concurrency)
		Concurrency = conc

		var rendered []string
		sw := newSweep(nil)
		for _, label := range []string{"a", "boom", "c"} {
			label := label
			sw.add(label, core.Config{}, func(*metrics.Summary, *metrics.Collector) {
				rendered = append(rendered, label)
			})
		}
		err := sw.run()
		var serr *SweepError
		if !errors.As(err, &serr) {
			t.Fatalf("conc=%d: sweep error = %v, want *SweepError", conc, err)
		}
		if len(serr.Failed) != 1 || serr.Failed[0].Label != "boom" || serr.Total != 3 {
			t.Fatalf("conc=%d: SweepError = %+v", conc, serr)
		}
		if !strings.Contains(serr.Failed[0].Err.Error(), "synthetic crash") {
			t.Errorf("conc=%d: panic message lost: %v", conc, serr.Failed[0].Err)
		}
		if len(rendered) != 2 || rendered[0] != "a" || rendered[1] != "c" {
			t.Fatalf("conc=%d: rendered %v, want surviving rows [a c] in order", conc, rendered)
		}
	}
}

// TestSweepCollectsAllErrors pins the batch bugfix: failures no longer abort
// the sweep, and every failure is reported, not just the first.
func TestSweepCollectsAllErrors(t *testing.T) {
	defer func(old func(*Options, string, core.Config) (*metrics.Summary, *metrics.Collector, error)) {
		runFn = old
	}(runFn)
	runFn = func(o *Options, label string, cfg core.Config) (*metrics.Summary, *metrics.Collector, error) {
		if strings.HasPrefix(label, "bad") {
			return nil, nil, errors.New(label + " failed")
		}
		return &metrics.Summary{}, metrics.NewCollector(), nil
	}
	defer func(old int) { Concurrency = old }(Concurrency)
	Concurrency = 1

	var rendered int
	sw := newSweep(nil)
	for _, label := range []string{"bad1", "ok1", "bad2", "ok2"} {
		sw.add(label, core.Config{}, func(*metrics.Summary, *metrics.Collector) { rendered++ })
	}
	err := sw.run()
	var serr *SweepError
	if !errors.As(err, &serr) {
		t.Fatalf("sweep error = %v, want *SweepError", err)
	}
	if len(serr.Failed) != 2 {
		t.Fatalf("collected %d failures, want 2: %+v", len(serr.Failed), serr.Failed)
	}
	if serr.Failed[0].Label != "bad1" || serr.Failed[1].Label != "bad2" {
		t.Errorf("failures out of submission order: %+v", serr.Failed)
	}
	if rendered != 2 {
		t.Errorf("rendered %d successful rows, want 2", rendered)
	}
}

// TestPartialArtifactsOnFailure pins that a sweep with failures still writes
// a well-formed results.json with the failures in the errors section.
func TestPartialArtifactsOnFailure(t *testing.T) {
	defer func(old func(*Options, string, core.Config) (*metrics.Summary, *metrics.Collector, error)) {
		runFn = old
	}(runFn)
	runFn = func(o *Options, label string, cfg core.Config) (*metrics.Summary, *metrics.Collector, error) {
		if label == "doomed" {
			panic("artifact test crash")
		}
		return o.run(label, cfg)
	}
	defer func(old func(RunInfo)) { OnRun = old }(OnRun)
	rec := NewRecorder()
	OnRun = rec.Record
	defer func(old int) { Concurrency = old }(Concurrency)
	Concurrency = 2

	sw := newSweep(nil)
	tbl := &Table{ID: "x", Title: "partial", Columns: []string{"label"}}
	good := baseConfig(Tiny, fabric.ECMP, transport.DCTCP)
	good.SimTime = Tiny.SimTime / 8
	good = withLoads(good, 0.1, 0.1)
	sw.add("survivor", good, func(*metrics.Summary, *metrics.Collector) { tbl.Add("survivor") })
	sw.add("doomed", good, nil)
	if err := sw.run(); err == nil {
		t.Fatal("sweep with a panicking run returned nil error")
	}

	dir := t.TempDir()
	m := BuildManifest([]string{"x"}, Tiny, Concurrency, rec, time.Now(), time.Second)
	if m.Runs != 1 || m.FailedRuns != 1 {
		t.Fatalf("manifest runs=%d failed=%d, want 1/1", m.Runs, m.FailedRuns)
	}
	if err := WriteArtifacts(dir, m, []*Table{tbl}, rec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tables []*Table    `json:"tables"`
		Runs   []RunRecord `json:"runs"`
		Errors []RunRecord `json:"errors"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("results.json is not valid JSON: %v", err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Label != "survivor" {
		t.Fatalf("runs = %+v, want the one survivor", doc.Runs)
	}
	if len(doc.Errors) != 1 || doc.Errors[0].Label != "doomed" ||
		!strings.Contains(doc.Errors[0].Error, "artifact test crash") {
		t.Fatalf("errors section = %+v", doc.Errors)
	}
	if len(doc.Tables) != 1 || len(doc.Tables[0].Rows) != 1 {
		t.Fatalf("partial table missing: %+v", doc.Tables)
	}
}
