package exp

import (
	"sync"
	"testing"
)

// TestParallelExperimentsRace runs two experiments concurrently (as
// `vertigo-exp -parallel` does), each with a parallel inner sweep, under the
// race detector: simulations must share no mutable state.
func TestParallelExperimentsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(old int) { Concurrency = old }(Concurrency)
	Concurrency = 4
	Progress = func(string, ...any) {} // exercise the progress path too
	defer func() { Progress = nil }()
	var wg sync.WaitGroup
	for _, id := range []string{"fig13", "defset"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Run(Tiny, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
