package exp

import (
	"sync"
	"testing"
)

// TestParallelExperimentsRace runs two experiments concurrently (as
// `vertigo-exp -parallel` does) under the race detector: simulations must
// share no mutable state.
func TestParallelExperimentsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var wg sync.WaitGroup
	for _, id := range []string{"fig13", "defset"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Run(Tiny); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
