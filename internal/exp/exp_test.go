package exp

import (
	"strings"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/transport"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must have a driver.
	want := []string{
		"fig1", "sec2", "fig5", "fig6", "fig7", "table2",
		"fig8", "fig9", "fig10", "fig11a", "fig11b", "fig12", "table3", "fig13",
		"defset", "failover", "nonbursty",
		"flapstorm", "switchdeath", "corrupt", "healdelay", "failheal",
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("experiment %q not registered: %v", id, err)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", "paper"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
		if sc.Hosts() <= 0 || sc.SimTime <= 0 {
			t.Errorf("scale %q not runnable: %+v", name, sc)
		}
	}
	if _, err := ScaleByName("galactic"); err == nil {
		t.Error("unknown scale accepted")
	}
	if sc, err := ScaleByName(""); err != nil || sc.Name != "small" {
		t.Error("empty scale should default to small")
	}
}

func TestPaperScaleMatchesPaper(t *testing.T) {
	if Paper.Hosts() != 320 || Paper.IncastScale != 100 || Paper.IncastFlowKB != 40 {
		t.Errorf("paper scale drifted from the paper: %+v", Paper)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "longcolumn"},
		Notes:   []string{"hello"},
	}
	tab.Add("v1", 3.14159)
	tab.Add("value-wider-than-column", 2)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "longcolumn", "3.14", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestBaseConfigRespectsScale(t *testing.T) {
	cfg := baseConfig(Tiny, fabric.Vertigo, transport.DCTCP)
	if cfg.NumHosts() != Tiny.Hosts() {
		t.Errorf("hosts %d, want %d", cfg.NumHosts(), Tiny.Hosts())
	}
	if cfg.IncastScale != Tiny.IncastScale {
		t.Errorf("incast scale %d, want %d", cfg.IncastScale, Tiny.IncastScale)
	}
	ft := fatTreeConfig(Tiny, fabric.Vertigo, transport.DCTCP)
	if ft.Kind.String() != "fattree" {
		t.Error("fatTreeConfig did not switch topology")
	}
}

func TestWithLoads(t *testing.T) {
	cfg := baseConfig(Tiny, fabric.ECMP, transport.DCTCP)
	cfg = withLoads(cfg, 0.25, 0.60)
	if cfg.BGLoad != 0.25 {
		t.Errorf("bg load %v", cfg.BGLoad)
	}
	ic := cfg.IncastQPS * float64(cfg.IncastScale) * float64(cfg.IncastFlowSize) * 8 /
		(10e9 * float64(cfg.NumHosts()))
	if ic < 0.34 || ic > 0.36 {
		t.Errorf("incast load %.3f, want 0.35", ic)
	}
	cfg = withLoads(cfg, 0.5, 0.5)
	if cfg.IncastQPS != 0 {
		t.Error("total==bg should disable incast")
	}
}

func TestExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	e, err := ByID("table2")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Tiny, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables, want 1", len(tables))
	}
	if got := len(tables[0].Rows); got != 6 {
		t.Fatalf("%d rows, want 6 (3 schemes x 2 transports)", got)
	}
	var sb strings.Builder
	tables[0].Fprint(&sb)
	t.Log("\n" + sb.String())
}
