package exp

import (
	"fmt"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

func init() {
	register(&Experiment{
		ID:    "fig8",
		Title: "Query completion under rising incast scale (fan-in sweep)",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Mean QCT under rising incast flow size (1KB → 180KB)",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Mean QCT under rising burstiness at fixed 80% offered load",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Fat-tree validation: FCT/QCT distributions under DCTCP and Swift",
		Run:   runFig7,
	})
}

// fig8Policies are the systems compared in the incast-parameter sweeps.
var fig8Policies = []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo}

// runFig8 reproduces Figure 8: incast scale sweep at fixed rate and flow
// size over 50% background. The paper sweeps 50..450 servers of 320 hosts
// (some queries exceed the cluster); we sweep the same fractions of the
// scaled cluster.
func runFig8(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Rising incast scale (50% background)",
		Columns: []string{"system", "scale", "query_compl", "mean_QCT", "mean_FCT", "p99_FCT"},
		Notes: []string{
			"paper Fig. 8: only Vertigo keeps completing queries as the fan-in grows",
		},
	}
	hosts := sc.Hosts()
	fractions := []float64{0.15, 0.30, 0.60, 1.0} // of the cluster, paper: 50..450 of 320
	sw := newSweep(opt)
	for _, p := range fig8Policies {
		for _, f := range fractions {
			scale := int(f * float64(hosts))
			if scale < 2 {
				scale = 2
			}
			cfg := baseConfig(sc, p, transport.DCTCP)
			cfg.BGLoad = 0.50
			cfg.IncastScale = scale
			cfg.IncastFlowSize = 40 * 1000
			// Fixed query rate scaled from the paper's 4000 QPS on 320 hosts.
			cfg.IncastQPS = 4000 * float64(hosts) / 320
			sw.add(fmt.Sprintf("fig8/%s/scale=%d", p, scale), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(p, transport.DCTCP), scale, pct(s.QueryCompletionP),
						s.MeanQCT, s.MeanFCT, s.P99FCT)
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig9 reproduces Figure 9: incast flow size sweep at fixed scale and
// rate over 50% background, including the TCP+ECMP baseline the figure shows.
func runFig9(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Rising incast flow size (50% background)",
		Columns: []string{"system", "flowKB", "mean_QCT", "query_compl", "drop_rate"},
		Notes: []string{
			"paper Fig. 9: schemes without flow-size information misclassify large incast flows",
		},
	}
	systems := []struct {
		policy fabric.Policy
		proto  transport.Protocol
	}{
		{fabric.ECMP, transport.Reno},
		{fabric.ECMP, transport.DCTCP},
		{fabric.DRILL, transport.DCTCP},
		{fabric.DIBS, transport.DCTCP},
		{fabric.Vertigo, transport.DCTCP},
	}
	hosts := sc.Hosts()
	sw := newSweep(opt)
	for _, sys := range systems {
		for _, kb := range []int{1, 40, 100, 180} {
			cfg := baseConfig(sc, sys.policy, sys.proto)
			cfg.BGLoad = 0.50
			cfg.IncastFlowSize = int64(kb) * 1000
			cfg.IncastQPS = 4000 * float64(hosts) / 320
			sw.add(fmt.Sprintf("fig9/%s/%dKB", schemeName(sys.policy, sys.proto), kb), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(sys.policy, sys.proto), kb, s.MeanQCT,
						pct(s.QueryCompletionP), pct(100*s.DropRate))
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig10 reproduces Figure 10: fixed 80% offered load with the incast
// share (burstiness) rising as background shrinks.
func runFig10(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Rising burstiness at fixed 80% offered load",
		Columns: []string{"system", "incast_share", "mean_QCT", "p99_FCT", "drop_rate"},
		Notes: []string{
			"paper Fig. 10: QCT rises with burstiness for all systems; Vertigo stays lowest",
		},
	}
	const total = 0.80
	sw := newSweep(opt)
	for _, p := range fig8Policies {
		for _, incast := range []float64{0.15, 0.35, 0.55} {
			cfg := withLoads(baseConfig(sc, p, transport.DCTCP), total-incast, total)
			sw.add(fmt.Sprintf("fig10/%s/incast=%.0f%%", p, incast*100), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(p, transport.DCTCP), pct(100*incast/total),
						s.MeanQCT, s.P99FCT, pct(100*s.DropRate))
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig7 reproduces Figure 7: the fat-tree validation with three load
// mixes under DCTCP and Swift, reporting FCT/QCT distribution points.
func runFig7(sc Scale, opt *Options) ([]*Table, error) {
	mixes := []struct{ bg, incast float64 }{
		{0.25, 0.10},
		{0.50, 0.25},
		{0.25, 0.60},
	}
	var tables []*Table
	sw := newSweep(opt)
	for _, proto := range []transport.Protocol{transport.DCTCP, transport.Swift} {
		t := &Table{
			ID:    "fig7",
			Title: "Fat-tree k=" + fmt.Sprint(sc.FatTreeK) + ", transport " + proto.String(),
			Columns: []string{"system", "bg+incast", "FCT_p50", "FCT_p99",
				"QCT_p50", "QCT_p99", "query_compl"},
			Notes: []string{"paper Fig. 7: Vertigo cuts ECMP and DIBS tails on fat-tree too"},
		}
		for _, mix := range mixes {
			for _, p := range []fabric.Policy{fabric.ECMP, fabric.DIBS, fabric.Vertigo} {
				cfg := withLoads(fatTreeConfig(sc, p, proto), mix.bg, mix.bg+mix.incast)
				label := fmt.Sprintf("fig7/%s/%s/%.0f+%.0f", proto, p, mix.bg*100, mix.incast*100)
				sw.add(label, cfg, func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(p, proto),
						fmt.Sprintf("%.0f%%+%.0f%%", mix.bg*100, mix.incast*100),
						pFCT(s, 50), pFCT(s, 99), pTime(s, 50), pTime(s, 99),
						pct(s.QueryCompletionP))
				})
			}
		}
		tables = append(tables, t)
	}
	return tables, sw.run()
}
