package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// TestArtifactPipeline drives the real path end to end: a tiny simulation
// through run() with the instrumentation knobs on, the Recorder installed as
// OnRun, and WriteArtifacts producing the directory the CLI would.
func TestArtifactPipeline(t *testing.T) {
	defer func(tick units.Time, fl uint64, on func(RunInfo)) {
		SampleTick, TraceFlow, OnRun = tick, fl, on
	}(SampleTick, TraceFlow, OnRun)
	SampleTick = 100 * units.Microsecond
	TraceFlow = 1
	rec := NewRecorder()
	OnRun = rec.Record

	cfg := withLoads(baseConfig(Tiny, fabric.Vertigo, transport.DCTCP), 0.2, 0.5)
	cfg.SimTime = 5 * units.Millisecond
	if _, _, err := DefaultOptions().run("figX/vertigo", cfg); err != nil {
		t.Fatal(err)
	}
	cfg2 := withLoads(baseConfig(Tiny, fabric.ECMP, transport.DCTCP), 0.2, 0.5)
	cfg2.SimTime = 5 * units.Millisecond
	if _, _, err := DefaultOptions().run("figX/ecmp", cfg2); err != nil {
		t.Fatal(err)
	}

	if len(rec.runs) != 2 {
		t.Fatalf("recorded %d runs, want 2", len(rec.runs))
	}
	for _, r := range rec.Runs() {
		if r.Summary == nil || r.Summary.FCTs != nil {
			t.Fatalf("%s: summary missing or not compacted", r.Label)
		}
		if r.Engine.Events == 0 || r.WallSeconds <= 0 || r.EventsPerSec <= 0 {
			t.Fatalf("%s: instrumentation empty: %+v", r.Label, r)
		}
	}

	start := time.Now()
	m := BuildManifest([]string{"figX"}, Tiny, Concurrency, rec, start, 3*time.Second)
	if m.Runs != 2 || m.Events == 0 || m.EventsPerSec == 0 {
		t.Fatalf("manifest totals wrong: %+v", m)
	}
	if m.GoVersion == "" || m.GitRev == "" || m.StartTime == "" {
		t.Fatalf("manifest provenance empty: %+v", m)
	}

	dir := t.TempDir()
	tables := []*Table{{ID: "figX", Title: "test", Columns: []string{"a"}, Rows: [][]string{{"1"}}}}
	if err := WriteArtifacts(dir, m, tables, rec); err != nil {
		t.Fatal(err)
	}

	// manifest.json round-trips and keeps its snake_case schema.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m2 Manifest
	if err := json.Unmarshal(raw, &m2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m2, m) || !bytes.Contains(raw, []byte(`"events_per_sec"`)) {
		t.Fatalf("manifest round-trip mismatch:\n%s", raw)
	}

	// results.json: tables plus label-sorted runs whose summaries decode
	// through the canonical metrics.Summary schema.
	raw, err = os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res results
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || res.Tables[0].ID != "figX" {
		t.Fatalf("tables lost: %+v", res.Tables)
	}
	if len(res.Runs) != 2 || res.Runs[0].Label != "figX/ecmp" || res.Runs[1].Label != "figX/vertigo" {
		t.Fatalf("runs not label-sorted: %v %v", res.Runs[0].Label, res.Runs[1].Label)
	}
	var probe struct {
		Runs []struct {
			Summary json.RawMessage `json:"summary"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		t.Fatal(err)
	}
	sum, err := metrics.DecodeSummary(bytes.NewReader(probe.Runs[1].Summary))
	if err != nil {
		t.Fatalf("results.json summary does not decode via metrics.DecodeSummary: %v", err)
	}
	if sum.PacketsSent == 0 {
		t.Fatal("decoded summary empty")
	}

	// samples.csv: single header, every row attributed to a run label.
	raw, err = os.ReadFile(filepath.Join(dir, "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if !strings.HasPrefix(lines[0], "run,time_ns,") {
		t.Fatalf("samples.csv header %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "figX/") {
			t.Fatalf("sample row missing run label: %q", l)
		}
	}

	// trace.jsonl: run_start boundary lines, every line valid JSON.
	f, err := os.Open(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	starts, events := 0, 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		if _, ok := obj["run_start"]; ok {
			starts++
		} else {
			events++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if starts != 2 || events == 0 {
		t.Fatalf("trace.jsonl has %d run_start lines and %d events, want 2 and >0", starts, events)
	}
}

func TestRecorderEmptyWritesNoOptionalFiles(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder()
	if err := WriteArtifacts(dir, Manifest{}, nil, rec); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"samples.csv", "trace.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s written despite no data", name)
		}
	}
	for _, name := range []string{"manifest.json", "results.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}
