package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

// TestMixedFailureSweep pins the whole failure-aggregation surface at once:
// a single -j8 sweep mixing a deliberate panic, a wall-clock watchdog kill,
// and healthy runs must (1) render every healthy row, (2) aggregate both
// failures into one SweepError whose Unwrap tree classifies each with
// errors.Is, and (3) dump a non-empty flight recording for each failed run.
func TestMixedFailureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	opt := NewOptions()
	opt.Concurrency = 8
	opt.FlightLen = 1024
	opt.RunTimeout = time.Minute
	rec := NewRecorder()
	opt.OnRun = rec.Record

	short := func() core.Config {
		cfg := baseConfig(Tiny, fabric.Vertigo, transport.DCTCP)
		cfg.SimTime = Tiny.SimTime / 8
		return cfg
	}

	var rendered []string
	tbl := &Table{ID: "mixed", Title: "mixed", Columns: []string{"label"}}
	sw := newSweep(opt)
	for _, label := range []string{"healthy-a", "healthy-b", "healthy-c"} {
		label := label
		sw.add(label, short(), func(*metrics.Summary, *metrics.Collector) {
			rendered = append(rendered, label)
			tbl.Add(label)
		})
	}
	panicky := short()
	panicky.ChaosPanicAt = panicky.SimTime / 4
	sw.add("panics", panicky, nil)
	wedged := short()
	wedged.WallTimeout = time.Nanosecond
	sw.add("timesout", wedged, nil)

	err := sw.run()
	var serr *SweepError
	if !errors.As(err, &serr) {
		t.Fatalf("sweep error = %v, want *SweepError", err)
	}
	if serr.Total != 5 || len(serr.Failed) != 2 {
		t.Fatalf("SweepError total=%d failed=%d, want 5 and 2", serr.Total, len(serr.Failed))
	}
	if len(rendered) != 3 {
		t.Fatalf("rendered %v, want all three healthy rows", rendered)
	}

	// The multi-error Unwrap tree classifies each failure without string
	// matching: the whole aggregate contains both classes...
	if !errors.Is(err, ErrPanic) || !errors.Is(err, core.ErrWallBudget) {
		t.Fatalf("aggregate error misses a class: Is(ErrPanic)=%v Is(ErrWallBudget)=%v",
			errors.Is(err, ErrPanic), errors.Is(err, core.ErrWallBudget))
	}
	// ...and each RunError carries exactly its own.
	for i := range serr.Failed {
		re := &serr.Failed[i]
		switch re.Label {
		case "panics":
			if !errors.Is(re, ErrPanic) || errors.Is(re, core.ErrWallBudget) {
				t.Errorf("panics: wrong class: %v", re)
			}
			if !strings.Contains(re.Err.Error(), "chaos panic") {
				t.Errorf("panics: message lost the panic value: %v", re.Err)
			}
		case "timesout":
			if !errors.Is(re, core.ErrWallBudget) || errors.Is(re, ErrPanic) {
				t.Errorf("timesout: wrong class: %v", re)
			}
		default:
			t.Errorf("unexpected failed label %q", re.Label)
		}
	}

	// Partial artifacts: healthy rows in the table, both failures in the
	// errors section, and a flight dump for each failed run.
	dir := t.TempDir()
	m := BuildManifest([]string{"mixed"}, Tiny, opt.Concurrency, rec, time.Now(), time.Second)
	if m.Runs != 3 || m.FailedRuns != 2 {
		t.Fatalf("manifest runs=%d failed=%d, want 3/2", m.Runs, m.FailedRuns)
	}
	if err := WriteArtifacts(dir, m, []*Table{tbl}, rec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Tables []*Table    `json:"tables"`
		Errors []RunRecord `json:"errors"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tables) != 1 || len(doc.Tables[0].Rows) != 3 {
		t.Fatalf("partial table = %+v, want the three healthy rows", doc.Tables)
	}
	if len(doc.Errors) != 2 {
		t.Fatalf("errors section = %+v, want both failures", doc.Errors)
	}
	fl, err := os.ReadFile(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatalf("flight.jsonl missing: %v", err)
	}
	for _, label := range []string{"panics", "timesout"} {
		if !bytes.Contains(fl, []byte(label)) {
			t.Errorf("flight.jsonl has no section for %q", label)
		}
	}
	if lines := bytes.Count(bytes.TrimSpace(fl), []byte("\n")); lines < 2 {
		t.Errorf("flight.jsonl suspiciously short (%d lines)", lines+1)
	}
}
