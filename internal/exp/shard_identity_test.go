package exp

import (
	"bytes"
	"testing"
)

// These tests pin the acceptance criteria for sharded multi-core execution
// (core.Config.Shards). The contract has two halves:
//
//   - -shards=1 is the untouched serial engine: artifacts are byte-identical
//     to a run that never heard of sharding.
//   - -shards=N (N>1) is a deterministic universe of its own: for a fixed N
//     the artifacts are byte-identical across repeated runs and any sweep
//     worker count. Different N are NOT byte-comparable to each other or to
//     serial — same-instant event ordering is partition-dependent — and
//     DESIGN.md documents why; only statistical agreement holds across N.

// renderShards renders an experiment's tables at Tiny scale with the given
// shard count and sweep concurrency.
func renderShards(t *testing.T, id string, shards, conc int) []byte {
	t.Helper()
	defer func(oldShards, oldConc int) {
		Shards, Concurrency = oldShards, oldConc
	}(Shards, Concurrency)
	Shards, Concurrency = shards, conc
	return renderAll(t, id)
}

// TestShardIdentitySerial compares -shards=1 (and the explicit zero value)
// against the plain serial baseline at -j1 and -j8: the dispatch gate must
// not perturb a single byte. fig1 is the standard burst suite; flapstorm
// carries a fault schedule (fault replication must not double-count when
// there is only one domain); corrupt sweeps per-link BER.
func TestShardIdentitySerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, id := range []string{"fig1", "flapstorm", "corrupt"} {
		want := renderShards(t, id, 0, 1)
		for _, shards := range []int{0, 1} {
			for _, conc := range []int{1, 8} {
				if shards == 0 && conc == 1 {
					continue // the baseline itself
				}
				got := renderShards(t, id, shards, conc)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: tables differ at shards=%d j=%d from shards=0 j=1:\n--- baseline ---\n%s\n--- got ---\n%s",
						id, shards, conc, want, got)
				}
			}
		}
	}
}

// TestShardIdentityPerCount pins per-count determinism: for each shard
// count the rendered tables are byte-identical across repeated runs and
// across sweep worker counts. This is the reproducibility promise a
// sharded artifact ships with — rerunning with the same -shards reproduces
// it exactly, on any machine, at any -j.
func TestShardIdentityPerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, id := range []string{"fig1", "flapstorm", "corrupt"} {
		for _, shards := range []int{2, 4} {
			want := renderShards(t, id, shards, 1)
			if len(want) == 0 {
				t.Fatalf("%s: empty render at shards=%d", id, shards)
			}
			for _, conc := range []int{1, 8} {
				if conc == 1 {
					got := renderShards(t, id, shards, 1)
					if !bytes.Equal(got, want) {
						t.Errorf("%s: tables differ between repeated runs at shards=%d", id, shards)
					}
					continue
				}
				got := renderShards(t, id, shards, conc)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: tables differ at shards=%d j=%d from j=1:\n--- baseline ---\n%s\n--- got ---\n%s",
						id, shards, conc, want, got)
				}
			}
		}
	}
}
