package exp

import (
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

// Loads swept by the load-dependent experiments. The paper sweeps 25–95% in
// 10-point steps; four points capture the shape (pre-knee, knee, post-knee).
var sweepLoads = []float64{0.35, 0.55, 0.75, 0.90}

func init() {
	register(&Experiment{
		ID:    "fig1",
		Title: "Random deflection breaks past ~65% load (completion %, QCT, FCT, goodput)",
		Run:   runFig1,
	})
	register(&Experiment{
		ID:    "sec2",
		Title: "§2 deflection pathologies: hops, mice FCT, reordering, random-vs-po2 loss",
		Run:   runSec2,
	})
	register(&Experiment{
		ID:    "fig5",
		Title: "QCT/FCT mean and p99 vs load under 25/50/75% background, DCTCP",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Mean QCT across TCP/DCTCP/Swift for ECMP/DIBS/Vertigo, plus QCT CDF",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Flow and query completion ratios at 75% load (50% BG + 25% incast)",
		Run:   runTable2,
	})
}

// runFig1 reproduces Figure 1: TCP+ECMP, DCTCP+ECMP and random
// deflection (DIBS+DCTCP) under rising incast load over 15% background.
func runFig1(sc Scale, opt *Options) ([]*Table, error) {
	systems := []struct {
		label  string
		policy fabric.Policy
		proto  transport.Protocol
	}{
		{"tcp+ecmp", fabric.ECMP, transport.Reno},
		{"dctcp+ecmp", fabric.ECMP, transport.DCTCP},
		{"randdefl+dctcp", fabric.DIBS, transport.DCTCP},
	}
	t := &Table{
		ID:    "fig1",
		Title: "Random packet deflection under rising load (15% background + incast)",
		Columns: []string{"system", "load", "query_compl", "mean_QCT", "flow_compl",
			"mean_FCT", "goodput_Gbps", "elephant_Mbps", "mean_hops"},
		Notes: []string{
			"paper Fig. 1: deflection's completions and goodput collapse past ~65% load",
			"mean_hops shows deflection's path stretch (paper §2: +20% at 50% load)",
		},
	}
	sw := newSweep(opt)
	for _, sys := range systems {
		for _, load := range sweepLoads {
			cfg := withLoads(baseConfig(sc, sys.policy, sys.proto), 0.15, load)
			sw.add("fig1/"+sys.label+"/"+pct(load*100), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(sys.label, pct(load*100), pct(s.QueryCompletionP), s.MeanQCT,
						pct(s.FlowCompletionP), s.MeanFCT,
						float64(s.OverallGoodput)/1e9, float64(s.ElephantGoodput)/1e6, s.MeanHops)
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runSec2 quantifies the §2 pathology claims with counters.
func runSec2(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:    "sec2",
		Title: "Deflection pathologies vs ECMP baseline (35% and 75% load)",
		Columns: []string{"system", "load", "mean_hops", "mice_FCT", "reorder_rate",
			"drop_rate", "deflections"},
		Notes: []string{
			"paper §2: at 35% load random deflection raises reordering ~10x and loss +57%",
			"pow-2 deflection choice vs random shows the power-of-two-choices win",
		},
	}
	sw := newSweep(opt)
	mk := func(label string, policy fabric.Policy, deflChoices int, load float64) {
		cfg := withLoads(baseConfig(sc, policy, transport.DCTCP), 0.15, load)
		if deflChoices > 0 {
			cfg.Fabric.DeflChoices = deflChoices
		}
		sw.add("sec2/"+label+"/"+pct(load*100), cfg,
			func(s *metrics.Summary, _ *metrics.Collector) {
				t.Add(label, pct(load*100), s.MeanHops, s.MeanMiceFCT,
					pct(100*s.ReorderRate), pct(100*s.DropRate), s.Deflections)
			})
	}
	for _, load := range []float64{0.35, 0.75} {
		mk("ecmp", fabric.ECMP, 0, load)
		mk("rand-deflect", fabric.DIBS, 0, load)
		mk("vertigo-defl^1", fabric.Vertigo, 1, load)
		mk("vertigo-defl^2", fabric.Vertigo, 2, load)
	}
	return []*Table{t}, sw.run()
}

// runFig5 reproduces Figure 5: the four schemes under DCTCP across three
// background loads with rising incast.
func runFig5(sc Scale, opt *Options) ([]*Table, error) {
	policies := []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo}
	var tables []*Table
	sw := newSweep(opt)
	for _, bg := range []float64{0.25, 0.50, 0.75} {
		t := &Table{
			ID:      "fig5",
			Title:   "Schemes under DCTCP, background load " + pct(bg*100),
			Columns: []string{"system", "load", "mean_QCT", "mean_FCT", "p99_QCT", "p99_FCT", "query_compl"},
		}
		for _, p := range policies {
			for _, extra := range []float64{0.10, 0.20, 0.35} {
				total := bg + extra
				if total > 0.97 {
					continue
				}
				cfg := withLoads(baseConfig(sc, p, transport.DCTCP), bg, total)
				sw.add("fig5/"+p.String()+"/"+pct(total*100), cfg,
					func(s *metrics.Summary, _ *metrics.Collector) {
						t.Add(schemeName(p, transport.DCTCP), pct(total*100),
							s.MeanQCT, s.MeanFCT, s.P99QCT, s.P99FCT, pct(s.QueryCompletionP))
					})
			}
		}
		tables = append(tables, t)
	}
	return tables, sw.run()
}

// runFig6 reproduces Figure 6: mean QCT for DIBS and Vertigo under all three
// transports (plus ECMP+Swift), and the QCT CDF at high load.
func runFig6(sc Scale, opt *Options) ([]*Table, error) {
	systems := []struct {
		policy fabric.Policy
		proto  transport.Protocol
	}{
		{fabric.DIBS, transport.Reno},
		{fabric.DIBS, transport.DCTCP},
		{fabric.DIBS, transport.Swift},
		{fabric.ECMP, transport.Swift},
		{fabric.Vertigo, transport.Reno},
		{fabric.Vertigo, transport.DCTCP},
		{fabric.Vertigo, transport.Swift},
	}
	t := &Table{
		ID:      "fig6",
		Title:   "Mean QCT with TCP, DCTCP and Swift (25% background + incast)",
		Columns: []string{"system", "load", "mean_QCT", "query_compl", "drop_rate"},
		Notes: []string{
			"paper Fig. 6a: Vertigo stays efficient under plain TCP; DIBS needs DCTCP",
			"paper §4.2: Vertigo+Swift drop rates are orders of magnitude below ECMP+Swift",
		},
	}
	cdf := &Table{
		ID:      "fig6b",
		Title:   "QCT CDF at high load",
		Columns: []string{"system", "p25", "p50", "p75", "p95", "p99"},
	}
	sw := newSweep(opt)
	for _, sys := range systems {
		for _, load := range []float64{0.45, 0.65, 0.85} {
			cfg := withLoads(baseConfig(sc, sys.policy, sys.proto), 0.25, load)
			sw.add("fig6/"+schemeName(sys.policy, sys.proto)+"/"+pct(load*100), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(sys.policy, sys.proto), pct(load*100),
						s.MeanQCT, pct(s.QueryCompletionP), pct(100*s.DropRate))
					if load == 0.85 {
						cdf.Add(schemeName(sys.policy, sys.proto),
							pTime(s, 25), pTime(s, 50), pTime(s, 75), pTime(s, 95), pTime(s, 99))
					}
				})
		}
	}
	return []*Table{t, cdf}, sw.run()
}

// runTable2 reproduces Table 2: completion ratios at 75% load.
func runTable2(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "table2",
		Title:   "Flow and query completion at 75% load (50% BG + 25% incast)",
		Columns: []string{"cc/system", "flow_compl", "query_compl"},
		Notes:   []string{"paper Table 2: Vertigo > DIBS > ECMP for both transports"},
	}
	sw := newSweep(opt)
	for _, proto := range []transport.Protocol{transport.DCTCP, transport.Swift} {
		for _, p := range []fabric.Policy{fabric.ECMP, fabric.DIBS, fabric.Vertigo} {
			cfg := withLoads(baseConfig(sc, p, proto), 0.50, 0.75)
			sw.add("table2/"+schemeName(p, proto), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(schemeName(p, proto), pct(s.FlowCompletionP), pct(s.QueryCompletionP))
				})
		}
	}
	return []*Table{t}, sw.run()
}
