package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// fig1Artifacts runs fig1 at Tiny with sampling and tracing on and returns
// every deterministic artifact: rendered tables, samples.csv, trace.jsonl.
// (results.json is excluded deliberately — it carries wall-clock timings.)
func fig1Artifacts(t *testing.T) (tables, samples, trace []byte) {
	t.Helper()
	rec := NewRecorder()
	defer func(on func(RunInfo)) { OnRun = on }(OnRun)
	OnRun = rec.Record
	tables = renderAll(t, "fig1")
	return tables, rec.SamplesCSV(), rec.TraceJSONL()
}

// TestScrapeDoesNotPerturb pins the introspection plane's core guarantee: a
// live /metrics scraper hammering the registry mid-sweep never changes a
// single artifact byte, sequentially or on the worker pool. Registry reads
// are snapshots, never drains — nothing flows back into the model.
func TestScrapeDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(tick units.Time, fl uint64, conc int) {
		SampleTick, TraceFlow, Concurrency = tick, fl, conc
	}(SampleTick, TraceFlow, Concurrency)
	SampleTick = 100 * units.Microsecond
	TraceFlow = 1

	Concurrency = 1
	baseTables, baseSamples, baseTrace := fig1Artifacts(t)
	if len(baseSamples) == 0 || len(baseTrace) == 0 {
		t.Fatal("baseline run produced no samples/trace; test would prove nothing")
	}

	srv := httptest.NewServer(obs.Handler(obs.Default, func() any { return "scrape-test" }))
	defer srv.Close()
	stop := make(chan struct{})
	scraped := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			for _, path := range []string{"/metrics", "/statusz"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				n++
			}
		}
	}()

	for _, conc := range []int{1, 8} {
		Concurrency = conc
		tables, samples, trace := fig1Artifacts(t)
		if !bytes.Equal(tables, baseTables) {
			t.Errorf("j=%d: tables perturbed by live scraping:\n--- quiet ---\n%s\n--- scraped ---\n%s",
				conc, baseTables, tables)
		}
		if !bytes.Equal(samples, baseSamples) {
			t.Errorf("j=%d: samples.csv perturbed by live scraping", conc)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("j=%d: trace.jsonl perturbed by live scraping", conc)
		}
	}
	close(stop)
	if n := <-scraped; n == 0 {
		t.Error("scraper completed zero requests; test proved nothing")
	}

	// And the scrape itself must be well-formed while the registry is hot.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if errs := obs.LintProm(resp.Body); len(errs) != 0 {
		t.Errorf("live /metrics fails lint: %v", errs)
	}
}

// TestWatchdogKillDumpsFlight: a sweep whose every run is killed by the
// wall-clock watchdog still fails cleanly AND leaves a non-empty
// flight.jsonl naming what each run was doing when it died.
func TestWatchdogKillDumpsFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(rt time.Duration, conc int, on func(RunInfo)) {
		RunTimeout, Concurrency, OnRun = rt, conc, on
	}(RunTimeout, Concurrency, OnRun)
	RunTimeout = time.Nanosecond // no run can finish: first watchdog check kills it
	Concurrency = 2
	rec := NewRecorder()
	OnRun = rec.Record

	e, err := ByID("fig1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Tiny, nil); err == nil {
		t.Fatal("1ns wall budget should fail every run")
	}
	if len(rec.Failed()) == 0 {
		t.Fatal("no failures recorded")
	}

	fl := rec.FlightJSONL()
	if len(fl) == 0 {
		t.Fatal("watchdog-killed sweep left an empty flight recorder")
	}
	sc := bufio.NewScanner(bytes.NewReader(fl))
	starts, watchdogs := 0, 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("invalid flight line %q: %v", sc.Text(), err)
		}
		if _, ok := obj["run_start"]; ok {
			starts++
		}
		if obj["kind"] == "watchdog" {
			watchdogs++
		}
	}
	if starts != len(rec.Failed()) {
		t.Errorf("%d run_start boundaries for %d failed runs", starts, len(rec.Failed()))
	}
	if watchdogs == 0 {
		t.Error("no watchdog record in flight dump")
	}

	dir := t.TempDir()
	if err := WriteArtifacts(dir, Manifest{}, nil, rec); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, "flight.jsonl"))
	if err != nil || st.Size() == 0 {
		t.Fatalf("flight.jsonl missing or empty: %v", err)
	}
	// results.json still names every failure.
	raw, err := os.ReadFile(filepath.Join(dir, "results.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "wall-clock") && !strings.Contains(string(raw), "deadline") {
		t.Errorf("results.json errors do not mention the watchdog:\n%s", raw)
	}
}

// TestHistogramQuantilesMatchRawFig1: on a real fig1-style workload the
// histogram quantiles agree with the exact raw percentiles to within bucket
// resolution (a factor of two), never below. This is the fidelity contract
// that lets RawDrop summaries stand in for raw series at scale.
func TestHistogramQuantilesMatchRawFig1(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := withLoads(baseConfig(Tiny, fabric.Vertigo, transport.DCTCP), 0.2, 0.5)
	cfg.RawSeries = metrics.RawKeep
	sum, _, err := DefaultOptions().run("quantile-fidelity", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.FCTs) == 0 || sum.FCTHist == nil {
		t.Fatalf("run kept %d raw FCTs, hist=%v; need both for the comparison",
			len(sum.FCTs), sum.FCTHist != nil)
	}
	if got, want := sum.FCTHist.Count(), uint64(len(sum.FCTs)); got != want {
		t.Errorf("histogram count %d != %d raw FCTs", got, want)
	}
	for _, p := range []float64{10, 50, 90, 99, 99.9} {
		raw := metrics.Percentile(sum.FCTs, p)
		approx := units.Time(sum.FCTHist.Quantile(p / 100))
		if approx < raw || approx > 2*raw {
			t.Errorf("FCT p%g: histogram %v outside [%v, %v] around raw", p, approx, raw, 2*raw)
		}
	}
	for _, p := range []float64{50, 99} {
		raw := metrics.Percentile(sum.QCTs, p)
		approx := units.Time(sum.QCTHist.Quantile(p / 100))
		if approx < raw || approx > 2*raw {
			t.Errorf("QCT p%g: histogram %v outside [%v, %v] around raw", p, approx, raw, 2*raw)
		}
	}
}
