package exp

import (
	"fmt"

	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

func init() {
	register(&Experiment{
		ID:    "fig11a",
		Title: "Component ablation: deflection, SRPT scheduling, ordering",
		Run:   runFig11a,
	})
	register(&Experiment{
		ID:    "fig11b",
		Title: "Retransmission boosting: off / 2x / 4x / 8x",
		Run:   runFig11b,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Random vs power-of-two choices for forwarding and deflection",
		Run:   runFig12,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "SRPT vs LAS (flow aging) marking vs baselines",
		Run:   runTable3,
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Ordering timeout sweep (τ = 120µs → 1.08ms)",
		Run:   runFig13,
	})
	register(&Experiment{
		ID:    "defset",
		Title: "Extra ablation: per-packet deflection budget",
		Run:   runDefSet,
	})
}

// runFig11a reproduces Figure 11a: Vertigo with each component disabled.
func runFig11a(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig11a",
		Title:   "Vertigo component ablation (DCTCP)",
		Columns: []string{"variant", "load", "mean_QCT", "mean_FCT", "drop_rate", "query_compl"},
		Notes: []string{
			"paper Fig. 11a: no-scheduling degrades Vertigo to random deflection;",
			"no-deflection multiplies drops; no-ordering costs FCT/goodput, not QCT",
		},
	}
	type variant struct {
		label                 string
		sched, deflect, order bool
	}
	sw := newSweep(opt)
	for _, v := range []variant{
		{"vertigo", true, true, true},
		{"no-deflection", true, false, true},
		{"no-scheduling", false, true, true},
		{"no-ordering", true, true, false},
	} {
		for _, load := range []float64{0.45, 0.70, 0.90} {
			cfg := withLoads(baseConfig(sc, fabric.Vertigo, transport.DCTCP), 0.25, load)
			cfg.Fabric.Scheduling = v.sched
			cfg.Fabric.Deflection = v.deflect
			if !v.order {
				cfg.Orderer.Timeout = 1 // flush immediately: ordering disabled
			}
			sw.add("fig11a/"+v.label+"/"+pct(load*100), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(v.label, pct(load*100), s.MeanQCT, s.MeanFCT,
						pct(100*s.DropRate), pct(s.QueryCompletionP))
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig11b reproduces Figure 11b: boosting factors at two background loads.
func runFig11b(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig11b",
		Title:   "Retransmission boosting (Vertigo + DCTCP)",
		Columns: []string{"boosting", "bg_load", "query_compl", "mean_QCT", "retransmits"},
		Notes: []string{
			"paper Fig. 11b: boosting is essential; factors above 2x add little",
		},
	}
	type variant struct {
		label    string
		boosting bool
		log2     uint
	}
	sw := newSweep(opt)
	for _, v := range []variant{
		{"off", false, 1},
		{"2x", true, 1},
		{"4x", true, 2},
		{"8x", true, 3},
	} {
		for _, bg := range []float64{0.25, 0.75} {
			cfg := withLoads(baseConfig(sc, fabric.Vertigo, transport.DCTCP), bg, bg+0.20)
			cfg.Marker.Boosting = v.boosting
			cfg.Marker.BoostFactorLog2 = v.log2
			sw.add("fig11b/"+v.label+"/bg="+pct(bg*100), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					t.Add(v.label, pct(bg*100), pct(s.QueryCompletionP), s.MeanQCT, s.Retransmits)
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig12 reproduces Figure 12: the four forwarding/deflection choice
// combinations on both topologies.
func runFig12(sc Scale, opt *Options) ([]*Table, error) {
	var tables []*Table
	sw := newSweep(opt)
	for _, ft := range []bool{false, true} {
		name := "two-tier leaf-spine"
		if ft {
			name = fmt.Sprintf("fat-tree k=%d", sc.FatTreeK)
		}
		t := &Table{
			ID:      "fig12",
			Title:   "Random vs power-of-two choices, " + name,
			Columns: []string{"variant", "load", "mean_QCT", "drop_rate"},
			Notes: []string{
				"paper Fig. 12: ^2 deflection cuts drops/QCT at low-mid load; gap fades at high load",
			},
		}
		type variant struct {
			label    string
			fw, defl int
		}
		for _, v := range []variant{
			{"^1FW ^1DEF", 1, 1},
			{"^1FW ^2DEF", 1, 2},
			{"^2FW ^1DEF", 2, 1},
			{"vertigo (^2FW ^2DEF)", 2, 2},
		} {
			for _, load := range []float64{0.35, 0.55, 0.75, 0.95} {
				var cfg = baseConfig(sc, fabric.Vertigo, transport.DCTCP)
				if ft {
					cfg = fatTreeConfig(sc, fabric.Vertigo, transport.DCTCP)
				}
				cfg = withLoads(cfg, 0.25, load)
				cfg.Fabric.FwdChoices = v.fw
				cfg.Fabric.DeflChoices = v.defl
				sw.add(fmt.Sprintf("fig12/%s/%s/%s", name, v.label, pct(load*100)), cfg,
					func(s *metrics.Summary, _ *metrics.Collector) {
						t.Add(v.label, pct(load*100), s.MeanQCT, pct(100*s.DropRate))
					})
			}
		}
		tables = append(tables, t)
	}
	return tables, sw.run()
}

// runTable3 reproduces Table 3: SRPT vs LAS marking against baselines.
func runTable3(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Mean FCT: flow aging (LAS) vs SRPT vs baselines",
		Columns: []string{"load", "dctcp+ecmp", "dctcp+dibs", "vertigo SRPT", "vertigo LAS"},
		Notes: []string{
			"paper Table 3: LAS trails SRPT but still beats ECMP and DIBS",
		},
	}
	cols := []struct {
		policy fabric.Policy
		las    bool
	}{
		{fabric.ECMP, false},
		{fabric.DIBS, false},
		{fabric.Vertigo, false},
		{fabric.Vertigo, true},
	}
	sw := newSweep(opt)
	for _, load := range []float64{0.55, 0.75, 0.95} {
		// One table row spans four sweep points; renders fire in submission
		// order, so the last column's callback sees the completed row.
		row := []any{pct(load * 100)}
		for ci, col := range cols {
			cfg := withLoads(baseConfig(sc, col.policy, transport.DCTCP), 0.25, load)
			if col.las {
				cfg.Marker.Discipline = host.LAS
			}
			label := fmt.Sprintf("table3/%s(las=%v)/%s", col.policy, col.las, pct(load*100))
			last := ci == len(cols)-1
			sw.add(label, cfg, func(s *metrics.Summary, _ *metrics.Collector) {
				row = append(row, s.MeanFCT)
				if last {
					t.Add(row...)
				}
			})
		}
	}
	return []*Table{t}, sw.run()
}

// runFig13 reproduces Figure 13: ordering timeout sweep.
func runFig13(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Ordering timeout τ sweep (Vertigo + DCTCP, incast)",
		Columns: []string{"tau", "mean_FCT", "p99_FCT", "mean_QCT", "reordered"},
		Notes: []string{
			"paper Fig. 13: τ has a bounded effect on completion times",
		},
	}
	sw := newSweep(opt)
	for _, tau := range []units.Time{
		120 * units.Microsecond, 360 * units.Microsecond,
		720 * units.Microsecond, 1080 * units.Microsecond,
	} {
		cfg := withLoads(baseConfig(sc, fabric.Vertigo, transport.DCTCP), 0.25, 0.75)
		cfg.Orderer.Timeout = tau
		sw.add(fmt.Sprintf("fig13/tau=%v", tau), cfg,
			func(s *metrics.Summary, _ *metrics.Collector) {
				t.Add(tau, s.MeanFCT, s.P99FCT, s.MeanQCT, s.ReorderPkts)
			})
	}
	return []*Table{t}, sw.run()
}

// runDefSet is an extra ablation beyond the paper: the per-packet deflection
// budget that converts starvation into boosted retransmission.
func runDefSet(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "defset",
		Title:   "Deflection budget ablation (Vertigo + DCTCP, 75% load)",
		Columns: []string{"budget", "mean_QCT", "query_compl", "drop_rate", "deflections"},
	}
	sw := newSweep(opt)
	for _, budget := range []int{1, 4, 8, 16, -1} {
		cfg := withLoads(baseConfig(sc, fabric.Vertigo, transport.DCTCP), 0.25, 0.75)
		cfg.Fabric.MaxDeflections = budget
		label := fmt.Sprintf("defset/budget=%d", budget)
		name := fmt.Sprint(budget)
		if budget < 0 {
			name = "unlimited"
		}
		sw.add(label, cfg, func(s *metrics.Summary, _ *metrics.Collector) {
			t.Add(name, s.MeanQCT, pct(s.QueryCompletionP), pct(100*s.DropRate), s.Deflections)
		})
	}
	return []*Table{t}, sw.run()
}
