package exp

import (
	"vertigo/internal/metrics"
	"vertigo/internal/units"
)

// pTime returns the p-th percentile of a summary's query completion times.
// Exact when the raw series was kept, histogram-resolution otherwise (see
// metrics.RawMode).
func pTime(s *metrics.Summary, p float64) units.Time {
	return s.QCTPercentile(p)
}

// pFCT returns the p-th percentile of a summary's flow completion times.
func pFCT(s *metrics.Summary, p float64) units.Time {
	return s.FCTPercentile(p)
}
