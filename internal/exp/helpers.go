package exp

import (
	"vertigo/internal/metrics"
	"vertigo/internal/units"
)

// pTime returns the p-th percentile of a summary's query completion times.
func pTime(s *metrics.Summary, p float64) units.Time {
	return metrics.Percentile(s.QCTs, p)
}

// pFCT returns the p-th percentile of a summary's flow completion times.
func pFCT(s *metrics.Summary, p float64) units.Time {
	return metrics.Percentile(s.FCTs, p)
}
