package exp

import (
	"runtime"
	"sync"
	"sync/atomic"

	"vertigo/internal/core"
	"vertigo/internal/metrics"
)

// Concurrency is the number of simulations experiment drivers run at once.
// Each sweep point is one single-threaded deterministic simulation, so the
// sweep is embarrassingly parallel; 1 restores fully sequential execution.
// The default uses every available CPU.
var Concurrency = runtime.GOMAXPROCS(0)

// sweepJob is one scenario of a sweep: a label and config submitted up
// front, the simulation outcome filled in by a worker, and a render callback
// that folds the outcome into the driver's tables.
type sweepJob struct {
	label  string
	cfg    core.Config
	render func(s *metrics.Summary, col *metrics.Collector)
	sum    *metrics.Summary
	col    *metrics.Collector
	err    error
}

// sweep collects scenarios and runs them on a worker pool. Drivers enqueue
// every point first (add), then execute (run): workers complete jobs in
// whatever order the scheduler picks, but render callbacks fire in
// submission order after all simulations finish, so rendered tables are
// byte-identical to a sequential run regardless of Concurrency.
type sweep struct {
	jobs []*sweepJob
}

func newSweep() *sweep { return &sweep{} }

// add enqueues one scenario. render (optional) is invoked with the
// simulation outcome during run, in submission order.
func (sw *sweep) add(label string, cfg core.Config, render func(*metrics.Summary, *metrics.Collector)) {
	sw.jobs = append(sw.jobs, &sweepJob{label: label, cfg: cfg, render: render})
}

// run executes all enqueued jobs and fires their render callbacks in
// submission order. The returned error is the earliest-submitted failure.
func (sw *sweep) run() error {
	workers := Concurrency
	if workers > len(sw.jobs) {
		workers = len(sw.jobs)
	}
	if workers <= 1 {
		// Sequential: identical behavior to the historical drivers,
		// including stopping at the first failure.
		for _, j := range sw.jobs {
			j.sum, j.col, j.err = run(j.label, j.cfg)
			if j.err != nil {
				return j.err
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sw.jobs) {
						return
					}
					j := sw.jobs[i]
					j.sum, j.col, j.err = run(j.label, j.cfg)
				}
			}()
		}
		wg.Wait()
		for _, j := range sw.jobs {
			if j.err != nil {
				return j.err
			}
		}
	}
	for _, j := range sw.jobs {
		if j.render != nil {
			j.render(j.sum, j.col)
		}
	}
	return nil
}
