package exp

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"vertigo/internal/core"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
)

// Concurrency is the number of simulations experiment drivers run at once.
// Each sweep point is one single-threaded deterministic simulation, so the
// sweep is embarrassingly parallel; 1 restores fully sequential execution.
// The default uses every available CPU.
var Concurrency = runtime.GOMAXPROCS(0)

// runFn is the scenario executor used by sweeps; a package variable so the
// crash-recovery tests can substitute a misbehaving implementation.
var runFn = run

// sweepJob is one scenario of a sweep: a label and config submitted up
// front, the simulation outcome filled in by a worker, and a render callback
// that folds the outcome into the driver's tables.
type sweepJob struct {
	label  string
	cfg    core.Config
	render func(s *metrics.Summary, col *metrics.Collector)
	sum    *metrics.Summary
	col    *metrics.Collector
	err    error
}

// sweep collects scenarios and runs them on a worker pool. Drivers enqueue
// every point first (add), then execute (run): workers complete jobs in
// whatever order the scheduler picks, but render callbacks fire in
// submission order after all simulations finish, so rendered tables are
// byte-identical to a sequential run regardless of Concurrency.
type sweep struct {
	jobs []*sweepJob
}

func newSweep() *sweep { return &sweep{} }

// add enqueues one scenario. render (optional) is invoked with the
// simulation outcome during run, in submission order.
func (sw *sweep) add(label string, cfg core.Config, render func(*metrics.Summary, *metrics.Collector)) {
	sw.jobs = append(sw.jobs, &sweepJob{label: label, cfg: cfg, render: render})
}

// safeRun executes one scenario, converting a panic into an ordinary error
// so a crashing run fails its own row instead of killing the worker pool
// (or, sequentially, the whole batch). It pre-attaches the crash flight
// recorder: created here, outside the run, so its ring survives the panic
// unwinding out of core.Run and the failure report can dump what the dying
// run was doing.
func safeRun(label string, cfg core.Config) (sum *metrics.Summary, col *metrics.Collector, err error) {
	if cfg.Flight == nil && FlightLen > 0 {
		cfg.Flight = obs.NewFlightRecorder(FlightLen)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exp: %s: panic: %v\n%s", label, r, debug.Stack())
			reportFailure(label, err, cfg.Flight)
		}
	}()
	return runFn(label, cfg)
}

// run executes all enqueued jobs and fires the render callbacks of the
// successful ones in submission order. Failures — errors and panics alike —
// do not stop the sweep: the remaining jobs still run, partial tables still
// render, and the failures come back aggregated in a *SweepError.
func (sw *sweep) run() error {
	workers := Concurrency
	if workers > len(sw.jobs) {
		workers = len(sw.jobs)
	}
	if workers <= 1 {
		for _, j := range sw.jobs {
			j.sum, j.col, j.err = safeRun(j.label, j.cfg)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sw.jobs) {
						return
					}
					j := sw.jobs[i]
					j.sum, j.col, j.err = safeRun(j.label, j.cfg)
				}
			}()
		}
		wg.Wait()
	}
	var failed []RunError
	for _, j := range sw.jobs {
		if j.err != nil {
			failed = append(failed, RunError{Label: j.label, Err: j.err})
			continue
		}
		if j.render != nil {
			j.render(j.sum, j.col)
		}
	}
	if len(failed) > 0 {
		return &SweepError{Failed: failed, Total: len(sw.jobs)}
	}
	return nil
}

// RunError is one failed run of a sweep.
type RunError struct {
	Label string
	Err   error
}

// SweepError aggregates every failure of a sweep whose surviving runs still
// rendered. Drivers return it alongside their partial tables.
type SweepError struct {
	Failed []RunError
	Total  int
}

func (e *SweepError) Error() string {
	first := fmt.Sprintf("%s: %s", e.Failed[0].Label, firstLine(e.Failed[0].Err.Error()))
	if len(e.Failed) == 1 {
		return fmt.Sprintf("exp: 1 of %d runs failed: %s", e.Total, first)
	}
	return fmt.Sprintf("exp: %d of %d runs failed; first: %s", len(e.Failed), e.Total, first)
}

// firstLine truncates multi-line error text (panic stacks) for one-line use.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " [...]"
	}
	return s
}
