package exp

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/faults"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/units"
)

// Concurrency is the number of simulations experiment drivers run at once
// when no per-call Options override it (see DefaultOptions). Each sweep
// point is one single-threaded deterministic simulation, so the sweep is
// embarrassingly parallel; 1 restores fully sequential execution. The
// default uses every available CPU.
var Concurrency = runtime.GOMAXPROCS(0)

// ErrPanic marks a run that died by panicking (as opposed to returning an
// error). Crash-safe sweeps wrap the recovered panic into an error chain
// containing this sentinel, so callers classify with errors.Is instead of
// string-matching stack traces. A panic is deterministic for a deterministic
// scenario: the same config panics the same way on every machine.
var ErrPanic = errors.New("run panicked")

// Options carries one sweep invocation's settings. The package-level
// variables (Concurrency, RunTimeout, FlightLen, ...) remain the defaults
// for the CLI drivers — DefaultOptions snapshots them — but concurrent
// callers with different budgets (the vertigo-serve daemon runs many
// tenants' sweeps at once) pass their own Options instead of mutating
// shared globals.
type Options struct {
	// Concurrency is the worker count for this sweep (<=0: sequential).
	Concurrency int
	// RunTimeout, when positive, bounds each run's wall-clock time; an
	// over-budget run fails its row (wrapping core.ErrWallBudget) instead
	// of stalling the sweep.
	RunTimeout time.Duration
	// MaxEvents, when positive, bounds each run's event count; a capped
	// run fails its row wrapping core.ErrMaxEvents (deterministic, so not
	// worth retrying).
	MaxEvents uint64
	// FlightLen is the per-run crash flight recorder's ring size; failed
	// runs dump it to flight.jsonl. 0 disables the recorder.
	FlightLen int
	// SampleTick, when positive, attaches a telemetry.Sampler with this
	// tick to every run; the series is delivered through OnRun.
	SampleTick units.Time
	// TraceFlow, when nonzero, attaches a JSONL packet tracer filtered to
	// this flow ID on every run.
	TraceFlow uint64
	// FaultSchedule, when non-empty, is injected into every run that does
	// not carry a schedule of its own.
	FaultSchedule *faults.Schedule
	// HealDelay, when positive, enables control-plane healing with this
	// convergence delay on every run that does not set its own.
	HealDelay units.Time
	// TrainLen, when non-negative, overrides the dataplane packet-train
	// length on every run; -1 leaves each run's configured value alone.
	TrainLen int
	// RawMode, when not RawAuto, overrides every run's raw-series
	// retention.
	RawMode metrics.RawMode
	// Shards, when > 1, runs every scenario sharded across that many
	// topology domains (core.Config.Shards); configurations or topologies
	// a shard cannot carry degrade to serial per run.
	Shards int
	// ChaosPanicAt, when positive, sets core.Config.ChaosPanicAt on every
	// run that does not set its own: a deterministic crash drill for the
	// recover/flight-dump machinery.
	ChaosPanicAt units.Time
	// Progress, when non-nil, receives one line per completed run. Calls
	// are serialized under the Options' progress lock, so the function
	// need not be thread-safe itself.
	Progress func(format string, args ...any)
	// OnRun, when non-nil, receives every completed run's instrumentation,
	// serialized under the same lock as Progress; runs arrive in
	// completion order (use RunInfo.Label to regroup).
	OnRun func(RunInfo)

	// mu serializes Progress+OnRun. nil falls back to the package-level
	// lock, so every DefaultOptions sweep in the process serializes
	// against the others — exactly the old global behavior, which the CLI
	// relies on when -parallel runs experiments concurrently against one
	// shared Recorder.
	mu *sync.Mutex
}

// NewOptions returns an Options with the zero-value defaults (TrainLen -1 =
// leave configured values alone) and a private progress lock, suitable for
// concurrent independent sweeps.
func NewOptions() *Options {
	return &Options{Concurrency: 1, TrainLen: -1, mu: new(sync.Mutex)}
}

// DefaultOptions snapshots the package-level variables — the CLI drivers'
// configuration surface — into an Options. Sweeps run with a nil *Options
// use this, so existing flag-driven behavior is unchanged.
func DefaultOptions() *Options {
	return &Options{
		Concurrency:   Concurrency,
		RunTimeout:    RunTimeout,
		MaxEvents:     MaxEvents,
		FlightLen:     FlightLen,
		SampleTick:    SampleTick,
		TraceFlow:     TraceFlow,
		FaultSchedule: FaultSchedule,
		HealDelay:     HealDelay,
		TrainLen:      TrainLen,
		RawMode:       RawMode,
		Shards:        Shards,
		ChaosPanicAt:  ChaosPanicAt,
		Progress:      Progress,
		OnRun:         OnRun,
	}
}

// lock returns the Options' progress lock, falling back to the package
// lock for default/zero Options.
func (o *Options) lock() *sync.Mutex {
	if o.mu != nil {
		return o.mu
	}
	return &progressMu
}

// runFn is the scenario executor used by sweeps; a package variable so the
// crash-recovery tests can substitute a misbehaving implementation.
var runFn = (*Options).run

// sweepJob is one scenario of a sweep: a label and config submitted up
// front, the simulation outcome filled in by a worker, and a render callback
// that folds the outcome into the driver's tables.
type sweepJob struct {
	label  string
	cfg    core.Config
	render func(s *metrics.Summary, col *metrics.Collector)
	sum    *metrics.Summary
	col    *metrics.Collector
	err    error
}

// sweep collects scenarios and runs them on a worker pool. Drivers enqueue
// every point first (add), then execute (run): workers complete jobs in
// whatever order the scheduler picks, but render callbacks fire in
// submission order after all simulations finish, so rendered tables are
// byte-identical to a sequential run regardless of concurrency.
type sweep struct {
	opt  *Options
	jobs []*sweepJob
}

// newSweep returns an empty sweep running under opt; nil opt snapshots the
// package-level defaults.
func newSweep(opt *Options) *sweep {
	if opt == nil {
		opt = DefaultOptions()
	}
	return &sweep{opt: opt}
}

// add enqueues one scenario. render (optional) is invoked with the
// simulation outcome during run, in submission order.
func (sw *sweep) add(label string, cfg core.Config, render func(*metrics.Summary, *metrics.Collector)) {
	sw.jobs = append(sw.jobs, &sweepJob{label: label, cfg: cfg, render: render})
}

// safeRun executes one scenario, converting a panic into an ordinary error
// (wrapping ErrPanic) so a crashing run fails its own row instead of killing
// the worker pool (or, sequentially, the whole batch). It pre-attaches the
// crash flight recorder: created here, outside the run, so its ring survives
// the panic unwinding out of core.Run and the failure report can dump what
// the dying run was doing.
func (o *Options) safeRun(label string, cfg core.Config) (sum *metrics.Summary, col *metrics.Collector, err error) {
	if cfg.Flight == nil && o.FlightLen > 0 {
		cfg.Flight = obs.NewFlightRecorder(o.FlightLen)
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("exp: %s: %w: %v\n%s", label, ErrPanic, r, debug.Stack())
			o.reportFailure(label, err, cfg.Flight)
		}
	}()
	return runFn(o, label, cfg)
}

// run executes all enqueued jobs and fires the render callbacks of the
// successful ones in submission order. Failures — errors and panics alike —
// do not stop the sweep: the remaining jobs still run, partial tables still
// render, and the failures come back aggregated in a *SweepError.
func (sw *sweep) run() error {
	o := sw.opt
	workers := o.Concurrency
	if workers > len(sw.jobs) {
		workers = len(sw.jobs)
	}
	if workers <= 1 {
		for _, j := range sw.jobs {
			j.sum, j.col, j.err = o.safeRun(j.label, j.cfg)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(sw.jobs) {
						return
					}
					j := sw.jobs[i]
					j.sum, j.col, j.err = o.safeRun(j.label, j.cfg)
				}
			}()
		}
		wg.Wait()
	}
	var failed []RunError
	for _, j := range sw.jobs {
		if j.err != nil {
			failed = append(failed, RunError{Label: j.label, Err: j.err})
			continue
		}
		if j.render != nil {
			j.render(j.sum, j.col)
		}
	}
	if len(failed) > 0 {
		return &SweepError{Failed: failed, Total: len(sw.jobs)}
	}
	return nil
}

// RunError is one failed run of a sweep.
type RunError struct {
	Label string
	Err   error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("exp: run %s failed: %s", e.Label, e.Err)
}

// Unwrap exposes the underlying failure so callers can classify it with
// errors.Is/errors.As (core.ErrWallBudget, core.ErrMaxEvents, ErrPanic)
// instead of string matching.
func (e *RunError) Unwrap() error { return e.Err }

// SweepError aggregates every failure of a sweep whose surviving runs still
// rendered. Drivers return it alongside their partial tables.
type SweepError struct {
	Failed []RunError
	Total  int
}

func (e *SweepError) Error() string {
	first := fmt.Sprintf("%s: %s", e.Failed[0].Label, firstLine(e.Failed[0].Err.Error()))
	if len(e.Failed) == 1 {
		return fmt.Sprintf("exp: 1 of %d runs failed: %s", e.Total, first)
	}
	return fmt.Sprintf("exp: %d of %d runs failed; first: %s", len(e.Failed), e.Total, first)
}

// Unwrap exposes every failed run as an error, so errors.Is/errors.As walk
// into a sweep's failures (each RunError unwraps further to its cause).
func (e *SweepError) Unwrap() []error {
	errs := make([]error, len(e.Failed))
	for i := range e.Failed {
		errs[i] = &e.Failed[i]
	}
	return errs
}

// firstLine truncates multi-line error text (panic stacks) for one-line use.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " [...]"
	}
	return s
}
