package exp

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/units"
)

// Manifest records one vertigo-exp invocation: what was asked for, the
// toolchain that produced it, and how much work it took. Written to
// manifest.json so every artifact directory is self-describing.
type Manifest struct {
	Experiments []string   `json:"experiments"`
	Scale       string     `json:"scale"`
	Seed        int64      `json:"seed"`
	Hosts       int        `json:"hosts"`
	FatTreeK    int        `json:"fattree_k"`
	SimTime     units.Time `json:"sim_time_ns"`
	Concurrency int        `json:"concurrency"`

	GoVersion string `json:"go_version"`
	GitRev    string `json:"git_rev"`

	StartTime    string  `json:"start_time"`
	WallSeconds  float64 `json:"wall_seconds"`
	Runs         int     `json:"runs"`
	FailedRuns   int     `json:"failed_runs,omitempty"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// RunRecord is one simulation run's entry in results.json: the compacted
// metrics summary plus the runtime self-instrumentation. A failed run
// carries only its label and error.
type RunRecord struct {
	Label        string           `json:"label"`
	WallSeconds  float64          `json:"wall_seconds"`
	EventsPerSec float64          `json:"events_per_sec"`
	Engine       sim.EngineStats  `json:"engine"`
	Pool         packet.PoolStats `json:"pool"`
	Summary      *metrics.Summary `json:"summary,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// results is the results.json document: the rendered tables, every
// successful run sorted by label, and a separate section naming the
// failures, so partial sweeps still produce a well-formed artifact.
type results struct {
	Tables []*Table    `json:"tables"`
	Runs   []RunRecord `json:"runs"`
	Errors []RunRecord `json:"errors,omitempty"`
}

// Recorder accumulates per-run artifacts. Install its Record method as
// OnRun; OnRun calls are already serialized, so Recorder needs no lock of
// its own.
type Recorder struct {
	runs    []RunRecord
	failed  []RunRecord
	samples []labeledBytes
	trace   []labeledBytes
	flight  []labeledBytes
}

// labeledBytes is one run's slice of a shared artifact file. Runs complete
// in worker order, so artifact sections are keyed by label and reassembled
// sorted — samples.csv and trace.jsonl come out byte-identical at any -j.
type labeledBytes struct {
	label string
	data  []byte
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record folds one run's instrumentation into the recorder. Summaries are
// compacted (raw FCT/QCT series dropped, histograms kept) so results.json
// stays proportional to the number of runs, not the number of flows.
// Failed runs (info.Err non-empty) are collected into the errors section.
func (r *Recorder) Record(info RunInfo) {
	if info.Err != "" {
		r.failed = append(r.failed, RunRecord{Label: info.Label, Error: info.Err})
		if len(info.Flight) > 0 {
			var b bytes.Buffer
			fmt.Fprintf(&b, "{\"run_start\":%q}\n", info.Label)
			b.Write(info.Flight)
			r.flight = append(r.flight, labeledBytes{info.Label, b.Bytes()})
		}
		return
	}
	r.runs = append(r.runs, RunRecord{
		Label:        info.Label,
		WallSeconds:  info.Wall.Seconds(),
		EventsPerSec: info.EventsPerSec(),
		Engine:       info.Engine,
		Pool:         info.Pool,
		Summary:      info.Summary.Compact(),
	})
	if info.Sampler != nil && len(info.Sampler.Samples()) > 0 {
		var b bytes.Buffer
		// bytes.Buffer writes never fail, so the CSV render cannot either.
		_ = info.Sampler.WriteCSV(&b, info.Label, false)
		r.samples = append(r.samples, labeledBytes{info.Label, b.Bytes()})
	}
	if len(info.Trace) > 0 {
		var b bytes.Buffer
		fmt.Fprintf(&b, "{\"run_start\":%q}\n", info.Label)
		b.Write(info.Trace)
		r.trace = append(r.trace, labeledBytes{info.Label, b.Bytes()})
	}
}

// SamplesCSV assembles the samples.csv artifact: one header line, then every
// run's series in label order. Empty when no run sampled.
func (r *Recorder) SamplesCSV() []byte {
	if len(r.samples) == 0 {
		return nil
	}
	var b bytes.Buffer
	cw := csv.NewWriter(&b)
	_ = cw.Write(telemetry.SamplesCSVHeader())
	cw.Flush()
	for _, s := range sortedSections(r.samples) {
		b.Write(s.data)
	}
	return b.Bytes()
}

// TraceJSONL assembles the trace.jsonl artifact: each run's packet trace
// behind its run_start boundary line, in label order. Empty when no run
// traced.
func (r *Recorder) TraceJSONL() []byte {
	if len(r.trace) == 0 {
		return nil
	}
	var b bytes.Buffer
	for _, s := range sortedSections(r.trace) {
		b.Write(s.data)
	}
	return b.Bytes()
}

// FlightJSONL assembles the flight.jsonl artifact: each failed run's crash
// flight-recorder dump behind its run_start boundary line, in label order.
// Empty when every run succeeded (or the recorder was disabled).
func (r *Recorder) FlightJSONL() []byte {
	if len(r.flight) == 0 {
		return nil
	}
	var b bytes.Buffer
	for _, s := range sortedSections(r.flight) {
		b.Write(s.data)
	}
	return b.Bytes()
}

func sortedSections(in []labeledBytes) []labeledBytes {
	out := make([]labeledBytes, len(in))
	copy(out, in)
	sort.SliceStable(out, func(i, j int) bool { return out[i].label < out[j].label })
	return out
}

// Runs returns the recorded runs sorted by label, so results.json is
// deterministic regardless of worker completion order.
func (r *Recorder) Runs() []RunRecord {
	return sortedByLabel(r.runs)
}

// Failed returns the failed runs sorted by label.
func (r *Recorder) Failed() []RunRecord {
	return sortedByLabel(r.failed)
}

func sortedByLabel(recs []RunRecord) []RunRecord {
	out := make([]RunRecord, len(recs))
	copy(out, recs)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// BuildManifest assembles the invocation manifest from the requested
// experiments, the scale, the sweep concurrency used, and the recorded
// runs.
func BuildManifest(ids []string, sc Scale, conc int, rec *Recorder, start time.Time, wall time.Duration) Manifest {
	m := Manifest{
		Experiments: ids,
		Scale:       sc.Name,
		Seed:        sc.Seed,
		Hosts:       sc.Hosts(),
		FatTreeK:    sc.FatTreeK,
		SimTime:     sc.SimTime,
		Concurrency: conc,
		GoVersion:   runtime.Version(),
		GitRev:      gitRev(),
		StartTime:   start.UTC().Format(time.RFC3339),
		WallSeconds: wall.Seconds(),
		Runs:        len(rec.runs),
		FailedRuns:  len(rec.failed),
	}
	for _, r := range rec.runs {
		m.Events += r.Engine.Events
	}
	if s := wall.Seconds(); s > 0 {
		m.EventsPerSec = float64(m.Events) / s
	}
	return m
}

// gitRev reports the VCS revision stamped into the binary by the go tool,
// or "unknown" for non-VCS builds (go test, detached source trees).
func gitRev() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// WriteArtifacts writes the run artifact directory: manifest.json and
// results.json always, samples.csv and trace.jsonl only when the recorder
// captured any.
func WriteArtifacts(dir string, m Manifest, tables []*Table, rec *Recorder) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "manifest.json"), m); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, "results.json"), results{
		Tables: tables,
		Runs:   rec.Runs(),
		Errors: rec.Failed(),
	}); err != nil {
		return err
	}
	if s := rec.SamplesCSV(); len(s) > 0 {
		if err := os.WriteFile(filepath.Join(dir, "samples.csv"), s, 0o644); err != nil {
			return err
		}
	}
	if tr := rec.TraceJSONL(); len(tr) > 0 {
		if err := os.WriteFile(filepath.Join(dir, "trace.jsonl"), tr, 0o644); err != nil {
			return err
		}
	}
	if fl := rec.FlightJSONL(); len(fl) > 0 {
		if err := os.WriteFile(filepath.Join(dir, "flight.jsonl"), fl, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("encoding %s: %w", filepath.Base(path), err)
	}
	return f.Close()
}
