package exp

import (
	"bytes"
	"testing"

	"vertigo/internal/units"
)

// These tests pin the acceptance criterion for dataplane packet-train
// coalescing: it is an event-engine optimization, not a model change, so
// every experiment must produce byte-identical artifacts at any train
// length and any worker count.

// renderTrain renders an experiment's tables at Tiny scale with the given
// train-length override and sweep concurrency.
func renderTrain(t *testing.T, id string, train, conc int) []byte {
	t.Helper()
	defer func(oldTrain, oldConc int) {
		TrainLen, Concurrency = oldTrain, oldConc
	}(TrainLen, Concurrency)
	TrainLen, Concurrency = train, conc
	return renderAll(t, id)
}

// TestTrainIdentitySweeps compares rendered tables across TrainLen 0 (the
// per-packet engine), 16, and 64 at -j1 and -j8. fig1 is the standard burst
// suite where trains are active; flapstorm exercises the fault stand-down
// (carrier flaps latch faultsSeen, so trains must disable without changing
// results); corrupt sweeps per-link BER, where only the corrupting port
// must fall back to per-packet sends.
func TestTrainIdentitySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, id := range []string{"fig1", "flapstorm", "corrupt"} {
		want := renderTrain(t, id, 0, 1)
		for _, train := range []int{0, 16, 64} {
			for _, conc := range []int{1, 8} {
				if train == 0 && conc == 1 {
					continue // the baseline itself
				}
				got := renderTrain(t, id, train, conc)
				if !bytes.Equal(got, want) {
					t.Errorf("%s: tables differ at train=%d j=%d from train=0 j=1:\n--- baseline ---\n%s\n--- got ---\n%s",
						id, train, conc, want, got)
				}
			}
		}
	}
}

// artifactsTrain runs one experiment at Tiny with sampling and packet
// tracing attached, returning the assembled samples.csv and trace.jsonl
// artifacts.
func artifactsTrain(t *testing.T, id string, train, conc int) (samples, trace []byte) {
	t.Helper()
	defer func(oldTrain, oldConc int) {
		TrainLen, Concurrency = oldTrain, oldConc
	}(TrainLen, Concurrency)
	defer func(tick units.Time, flow uint64, onRun func(RunInfo)) {
		SampleTick, TraceFlow, OnRun = tick, flow, onRun
	}(SampleTick, TraceFlow, OnRun)
	TrainLen, Concurrency = train, conc
	SampleTick = 200 * units.Microsecond
	TraceFlow = 1
	rec := NewRecorder()
	OnRun = rec.Record
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(Tiny, nil); err != nil {
		t.Fatal(err)
	}
	return rec.SamplesCSV(), rec.TraceJSONL()
}

// TestTrainIdentityArtifacts compares the time-series artifacts. Attaching
// the sampler and tracer installs a fabric observer, which stands trains
// down entirely — identity here proves the guard rail leaves the model
// untouched, and that the recorder's label-keyed reassembly keeps the
// shared files byte-stable regardless of worker completion order.
func TestTrainIdentityArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	const id = "fig1"
	wantSamples, wantTrace := artifactsTrain(t, id, 0, 1)
	if len(wantSamples) == 0 || len(wantTrace) == 0 {
		t.Fatalf("baseline produced empty artifacts: samples=%d trace=%d bytes",
			len(wantSamples), len(wantTrace))
	}
	for _, c := range []struct{ train, conc int }{{64, 1}, {0, 8}, {64, 8}} {
		samples, trace := artifactsTrain(t, id, c.train, c.conc)
		if !bytes.Equal(samples, wantSamples) {
			t.Errorf("samples.csv differs at train=%d j=%d (%d vs %d bytes)",
				c.train, c.conc, len(samples), len(wantSamples))
		}
		if !bytes.Equal(trace, wantTrace) {
			t.Errorf("trace.jsonl differs at train=%d j=%d (%d vs %d bytes)",
				c.train, c.conc, len(trace), len(wantTrace))
		}
	}
}
