package exp

import (
	"fmt"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

func init() {
	register(&Experiment{
		ID: "failover",
		Title: "Extension: link failure mid-run — deflection routes around " +
			"carrier loss before the control plane heals",
		Run: runFailover,
	})
}

// runFailover is an extension beyond the paper: kill one leaf uplink halfway
// through the run, with no routing reconvergence. ECMP and DRILL keep
// hashing flows onto the dead port and blackhole them; DIBS and Vertigo
// treat the dead port as a full queue and deflect around it in place.
func runFailover(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "failover",
		Title:   "One leaf uplink fails at T/2 (DCTCP, 50% load)",
		Columns: []string{"system", "flow_compl", "mean_FCT", "drops", "link_down_drops"},
		Notes: []string{
			"extension beyond the paper: dead ports behave as full queues, so",
			"deflection-capable schemes (DIBS, Vertigo) reroute in the dataplane",
		},
	}
	sw := newSweep(opt)
	for _, p := range []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo} {
		cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
		// The first leaf-spine link follows the host access links.
		firstUplink := sc.Hosts()
		cfg.LinkFailures = []core.LinkFailure{{Link: firstUplink, At: sc.SimTime / 2}}
		sw.add(fmt.Sprintf("failover/%s", p), cfg,
			func(s *metrics.Summary, col *metrics.Collector) {
				t.Add(schemeName(p, transport.DCTCP), pct(s.FlowCompletionP), s.MeanFCT,
					s.Drops, col.Drops[metrics.DropLinkDown])
			})
	}
	return []*Table{t}, sw.run()
}
