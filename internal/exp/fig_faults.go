package exp

import (
	"fmt"

	"vertigo/internal/fabric"
	"vertigo/internal/faults"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// The faults experiment family exercises internal/faults: transient faults
// (flaps, switch death, corruption, brownouts) and control-plane healing,
// across all four forwarding schemes. All are extensions beyond the paper;
// they quantify the claim that deflection-capable schemes ride out faults in
// the dataplane while ECMP/DRILL wait for routing to reconverge.

func init() {
	register(&Experiment{
		ID: "flapstorm",
		Title: "Extension: link flap storm — repeated carrier loss and recovery " +
			"on a leaf uplink",
		Run: runFlapStorm,
	})
	register(&Experiment{
		ID:    "switchdeath",
		Title: "Extension: spine switch dies mid-run and later recovers",
		Run:   runSwitchDeath,
	})
	register(&Experiment{
		ID:    "corrupt",
		Title: "Extension: bit-error corruption sweep on a leaf uplink",
		Run:   runCorrupt,
	})
	register(&Experiment{
		ID: "healdelay",
		Title: "Extension: control-plane healing delay sweep after a permanent " +
			"link failure",
		Run: runHealDelay,
	})
	register(&Experiment{
		ID: "failheal",
		Title: "Extension: fail, heal, recover — transient link failure with " +
			"control-plane healing",
		Run: runFailHeal,
	})
}

// faultPolicies is the scheme lineup every faults experiment compares.
var faultPolicies = []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo}

// runFlapStorm flaps the first leaf uplink three times. Each cycle holds the
// link down T/16 out of every T/8 starting at T/4, so the fabric sees
// repeated carrier loss with barely enough air to drain between flaps.
func runFlapStorm(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "flapstorm",
		Title:   "First leaf uplink flaps 3x (down T/16, period T/8; DCTCP, 50% load)",
		Columns: []string{"system", "flow_compl", "mean_FCT", "drops", "linkdown_drops", "mean_TTR", "post_recovery_tx"},
		Notes: []string{
			"mean_TTR is the mean carrier-loss duration seen by the fabric;",
			"post_recovery_tx counts data packets the revived link carried",
		},
	}
	sw := newSweep(opt)
	firstUplink := sc.Hosts()
	for _, p := range faultPolicies {
		p := p
		cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
		cfg.Faults = (&faults.Schedule{}).Add(
			faults.Flap(firstUplink, sc.SimTime/4, sc.SimTime/16, sc.SimTime/8, 3)...)
		sw.add(fmt.Sprintf("flapstorm/%s", p), cfg,
			func(s *metrics.Summary, col *metrics.Collector) {
				t.Add(schemeName(p, transport.DCTCP), pct(s.FlowCompletionP), s.MeanFCT,
					s.Drops, col.Drops[metrics.DropLinkDown], s.MTTR, s.PostRecoveryTx)
			})
	}
	return []*Table{t}, sw.run()
}

// runSwitchDeath kills the first spine at T/3 and revives it at 2T/3: every
// uplink into it goes dark at once — the worst case for hash-based schemes,
// since a quarter of the fabric capacity (at the default scales) vanishes.
func runSwitchDeath(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "switchdeath",
		Title:   "Spine 0 dies at T/3, recovers at 2T/3 (DCTCP, 50% load)",
		Columns: []string{"system", "flow_compl", "mean_FCT", "drops", "linkdown_drops", "post_recovery_tx"},
	}
	sw := newSweep(opt)
	spine0 := sc.Leaves // switch IDs: leaves first, then spines
	for _, p := range faultPolicies {
		p := p
		cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
		cfg.Faults = (&faults.Schedule{}).Add(
			faults.Event{At: sc.SimTime / 3, Kind: faults.SwitchDown, Switch: spine0},
			faults.Event{At: 2 * sc.SimTime / 3, Kind: faults.SwitchUp, Switch: spine0},
		)
		sw.add(fmt.Sprintf("switchdeath/%s", p), cfg,
			func(s *metrics.Summary, col *metrics.Collector) {
				t.Add(schemeName(p, transport.DCTCP), pct(s.FlowCompletionP), s.MeanFCT,
					s.Drops, col.Drops[metrics.DropLinkDown], s.PostRecoveryTx)
			})
	}
	return []*Table{t}, sw.run()
}

// runCorrupt sweeps the bit-error rate of the first leaf uplink. Corruption
// is invisible to routing — no scheme can route around it — so this isolates
// how each transport's loss recovery copes with non-congestive loss.
func runCorrupt(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "corrupt",
		Title:   "First leaf uplink drops packets with probability BER (DCTCP, 50% load)",
		Columns: []string{"system", "ber", "flow_compl", "mean_FCT", "corrupt_drops", "total_drops"},
	}
	sw := newSweep(opt)
	firstUplink := sc.Hosts()
	for _, p := range []fabric.Policy{fabric.ECMP, fabric.Vertigo} {
		for _, ber := range []float64{0, 1e-4, 1e-3, 1e-2} {
			p, ber := p, ber
			cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
			if ber > 0 {
				cfg.Faults = (&faults.Schedule{}).Add(
					faults.Event{Kind: faults.Corrupt, Link: firstUplink, BER: ber})
			}
			sw.add(fmt.Sprintf("corrupt/%s/ber=%g", p, ber), cfg,
				func(s *metrics.Summary, col *metrics.Collector) {
					t.Add(schemeName(p, transport.DCTCP), fmt.Sprintf("%g", ber),
						pct(s.FlowCompletionP), s.MeanFCT,
						col.Drops[metrics.DropCorrupt], s.Drops)
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runHealDelay fails one uplink permanently at T/4 and sweeps the
// control-plane convergence delay. ECMP recovers only once the FIBs heal, so
// its completion tracks the delay; Vertigo deflects around the failure
// immediately and the delay barely registers.
func runHealDelay(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "healdelay",
		Title:   "First leaf uplink fails for good at T/4; FIBs heal after a delay (DCTCP, 50% load)",
		Columns: []string{"system", "heal_delay", "flow_compl", "mean_FCT", "linkdown_drops", "fib_installs"},
		Notes: []string{
			"heal_delay 'off' leaves the static FIBs installed for the whole run",
		},
	}
	sw := newSweep(opt)
	firstUplink := sc.Hosts()
	delays := []units.Time{0, sc.SimTime / 32, sc.SimTime / 8}
	for _, p := range []fabric.Policy{fabric.ECMP, fabric.Vertigo} {
		for _, hd := range delays {
			p, hd := p, hd
			cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
			cfg.Faults = (&faults.Schedule{}).Add(
				faults.Event{At: sc.SimTime / 4, Kind: faults.LinkDown, Link: firstUplink})
			cfg.HealDelay = hd
			label := "off"
			if hd > 0 {
				label = hd.String()
			}
			sw.add(fmt.Sprintf("healdelay/%s/%s", p, label), cfg,
				func(s *metrics.Summary, col *metrics.Collector) {
					t.Add(schemeName(p, transport.DCTCP), label, pct(s.FlowCompletionP),
						s.MeanFCT, col.Drops[metrics.DropLinkDown], s.FIBInstalls)
				})
		}
	}
	return []*Table{t}, sw.run()
}

// runFailHeal is the full fault lifecycle on every scheme: the uplink fails
// at T/3, the control plane heals around it T/16 later, the carrier returns
// at 2T/3, and a second heal folds the link back in. post_recovery_tx > 0
// shows the recovered link carrying traffic again.
func runFailHeal(sc Scale, opt *Options) ([]*Table, error) {
	t := &Table{
		ID:      "failheal",
		Title:   "First leaf uplink down T/3..2T/3, healing delay T/16 (DCTCP, 50% load)",
		Columns: []string{"system", "flow_compl", "mean_FCT", "linkdown_drops", "mean_TTR", "post_recovery_tx", "fib_installs"},
	}
	sw := newSweep(opt)
	firstUplink := sc.Hosts()
	for _, p := range faultPolicies {
		p := p
		cfg := withLoads(baseConfig(sc, p, transport.DCTCP), 0.30, 0.50)
		cfg.Faults = (&faults.Schedule{}).Add(
			faults.Event{At: sc.SimTime / 3, Kind: faults.LinkDown, Link: firstUplink},
			faults.Event{At: 2 * sc.SimTime / 3, Kind: faults.LinkUp, Link: firstUplink},
		)
		cfg.HealDelay = sc.SimTime / 16
		sw.add(fmt.Sprintf("failheal/%s", p), cfg,
			func(s *metrics.Summary, col *metrics.Collector) {
				t.Add(schemeName(p, transport.DCTCP), pct(s.FlowCompletionP), s.MeanFCT,
					col.Drops[metrics.DropLinkDown], s.MTTR, s.PostRecoveryTx, s.FIBInstalls)
			})
	}
	return []*Table{t}, sw.run()
}
