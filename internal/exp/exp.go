// Package exp defines the reproduction experiments: one driver per table
// and figure in the paper's evaluation (§2 and §4). Each driver runs the
// required simulation sweep and renders the same rows/series the paper
// reports, at a configurable scale.
package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/faults"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// Scale sizes an experiment run. The paper's full scale (320 hosts, 5 s) is
// hours of CPU per sweep; the smaller presets preserve the oversubscription
// ratio and burst-to-buffer ratio so orderings and crossover shapes hold.
type Scale struct {
	Name         string
	Spines       int
	Leaves       int
	HostsPerLeaf int
	FatTreeK     int
	SimTime      units.Time
	IncastScale  int // servers per query
	IncastFlowKB int
	Seed         int64
}

// Predefined scales.
var (
	// Tiny is for unit tests and testing.B benchmarks.
	Tiny = Scale{
		Name: "tiny", Spines: 2, Leaves: 4, HostsPerLeaf: 4, FatTreeK: 4,
		SimTime: 30 * units.Millisecond, IncastScale: 8, IncastFlowKB: 20, Seed: 1,
	}
	// Small is the default for the CLI: minutes per sweep.
	Small = Scale{
		Name: "small", Spines: 2, Leaves: 4, HostsPerLeaf: 4, FatTreeK: 4,
		SimTime: 80 * units.Millisecond, IncastScale: 8, IncastFlowKB: 40, Seed: 1,
	}
	// Medium approaches the paper's oversubscription at 64 hosts.
	Medium = Scale{
		Name: "medium", Spines: 4, Leaves: 8, HostsPerLeaf: 8, FatTreeK: 6,
		SimTime: 200 * units.Millisecond, IncastScale: 24, IncastFlowKB: 40, Seed: 1,
	}
	// Paper is the paper's full parameterization (320 hosts, 5 s): use for
	// overnight runs only.
	Paper = Scale{
		Name: "paper", Spines: 4, Leaves: 8, HostsPerLeaf: 40, FatTreeK: 8,
		SimTime: 5 * units.Second, IncastScale: 100, IncastFlowKB: 40, Seed: 1,
	}
	// Huge is the million-flow scale exercise: 1024 hosts (k=16 fat-tree /
	// 16x64 leaf-spine) under an incast-dominated mix of small flows, so ten
	// simulated milliseconds start over a million flows while keeping byte
	// volume CI-sized. It stresses slab recycling, the streaming metrics
	// store and topology build cost rather than per-flow dynamics; used by
	// BenchmarkRunThroughputHuge and the bench-scale CI job.
	Huge = Scale{
		Name: "huge", Spines: 8, Leaves: 16, HostsPerLeaf: 64, FatTreeK: 16,
		SimTime: 10 * units.Millisecond, IncastScale: 32, IncastFlowKB: 4, Seed: 1,
	}
)

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	case "huge":
		return Huge, nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (tiny|small|medium|paper|huge)", name)
}

// Hosts returns the host count of the leaf-spine variant of the scale.
func (sc Scale) Hosts() int { return sc.Leaves * sc.HostsPerLeaf }

// Table is a rendered experiment result.
type Table struct {
	ID      string     `json:"id"` // e.g. "fig5"
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case units.Time:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV renders the table as CSV (columns header plus rows).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// The package-level variables below are the CLI drivers' configuration
// surface: flags set them once before any sweep starts, and sweeps run with
// a nil *Options snapshot them (see DefaultOptions). Callers that run
// concurrent sweeps with different budgets — the vertigo-serve daemon —
// must pass explicit Options instead; mutating these globals mid-flight is
// a data race.

// Progress, when non-nil, receives one line per completed simulation run.
// Sweep workers report concurrently; calls are serialized by progressMu, so
// the installed function need not be thread-safe itself.
var Progress func(format string, args ...any)

// OnRun, when non-nil, receives every completed run's instrumentation:
// summary, engine/pool counters, sampler series and packet trace. Calls are
// serialized under the same lock as Progress, so the installed function need
// not be thread-safe; runs arrive in completion order (use RunInfo.Label to
// regroup).
var OnRun func(RunInfo)

// SampleTick, when positive, attaches a telemetry.Sampler with this tick to
// every experiment run; the series is delivered through OnRun.
var SampleTick units.Time

// TraceFlow, when nonzero, attaches a JSONL packet tracer filtered to this
// flow ID on every experiment run; the trace is delivered through OnRun.
var TraceFlow uint64

// FaultSchedule, when non-empty, is injected into every experiment run that
// does not carry a schedule of its own (the -fault CLI flag).
var FaultSchedule *faults.Schedule

// HealDelay, when positive, enables control-plane healing with this
// convergence delay on every run that does not set its own.
var HealDelay units.Time

// RunTimeout, when positive, bounds each run's wall-clock time; a run that
// exceeds it fails its row instead of stalling the sweep (-run-timeout).
var RunTimeout time.Duration

// MaxEvents, when positive, bounds each run's event count; a capped run
// fails its row with an error wrapping core.ErrMaxEvents.
var MaxEvents uint64

// ChaosPanicAt, when positive, panics every run deliberately at this
// simulated time — a crash drill for the recover/flight-dump machinery.
var ChaosPanicAt units.Time

// TrainLen, when non-negative, overrides the dataplane packet-train length
// on every run (the -train CLI flag). 0 forces the per-packet engine; the
// default -1 leaves each run's configured value alone. Because coalescing
// is exact, every value must render byte-identical tables — pinned by the
// train identity tests.
var TrainLen = -1

// RawMode, when not RawAuto, overrides every run's raw-series retention (the
// -raw-series CLI flag): keep forces exact percentiles at any scale, drop
// exercises the histogram fallback everywhere.
var RawMode metrics.RawMode

// Shards, when > 1, runs every scenario sharded across that many topology
// domains (the -shards CLI flag). Results are deterministic per shard count
// — byte-identical tables for a given -shards at any -j — but -shards=N
// follows different random interleavings than the serial engine, so it is
// statistically, not bitwise, comparable to -shards=1.
var Shards int

// FlightLen is the per-run crash flight recorder's ring size: the last
// FlightLen dataplane records (events, drops, faults) are dumped to
// flight.jsonl when a run panics or the wall-clock watchdog kills it
// (-flight). 0 disables the recorder.
var FlightLen = 4096

// Process-global sweep metrics: scrape-visible run progress.
var (
	obsRunsStarted   = obs.NewCounter("vertigo_exp_runs_started_total", "experiment runs started")
	obsRunsCompleted = obs.NewCounter("vertigo_exp_runs_completed_total", "experiment runs completed")
	obsRunsFailed    = obs.NewCounter("vertigo_exp_runs_failed_total", "experiment runs failed (error or panic)")
)

// RunInfo is the per-run instrumentation handed to OnRun. A failed run
// (error or panic) delivers only Label and Err; everything else is zero.
type RunInfo struct {
	Label   string
	Summary *metrics.Summary
	Engine  sim.EngineStats
	Pool    packet.PoolStats
	Sampler *telemetry.Sampler // nil unless SampleTick > 0
	Trace   []byte             // JSONL packet trace; empty unless TraceFlow > 0
	Wall    time.Duration
	Err     string // non-empty when the run failed
	// Flight is the crash flight recorder's JSONL dump: what the run was
	// doing when it died. Only failed runs carry one.
	Flight []byte
}

// EventsPerSec is the run's simulation throughput in events per wall second.
func (ri *RunInfo) EventsPerSec() float64 {
	if ri.Wall <= 0 {
		return 0
	}
	return float64(ri.Engine.Events) / ri.Wall.Seconds()
}

// progressMu is the package-level progress lock: every sweep whose Options
// carry no private lock (DefaultOptions, zero Options) serializes its
// Progress/OnRun calls here, so concurrent CLI experiments sharing one
// Recorder never interleave.
var progressMu sync.Mutex

// Experiment is a named table/figure driver. Run executes the sweep under
// opt; a nil opt snapshots the package-level defaults (DefaultOptions), so
// flag-driven CLI invocations pass nil.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale, opt *Options) ([]*Table, error)
}

// registry holds all experiments, keyed by ID.
var registry = map[string]*Experiment{}

func register(e *Experiment) { registry[e.ID] = e }

// ByID returns the experiment with the given ID.
func ByID(id string) (*Experiment, error) {
	if e, ok := registry[id]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (try: %s)", id, strings.Join(IDs(), " "))
}

// IDs lists all experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// baseConfig builds the scenario shared by most experiments: the scale's
// leaf-spine fabric, the given scheme/transport, and the scale's incast
// parameters.
func baseConfig(sc Scale, policy fabric.Policy, proto transport.Protocol) core.Config {
	cfg := core.DefaultConfig(policy, proto)
	cfg.Seed = sc.Seed
	cfg.SimTime = sc.SimTime
	cfg.Kind = core.LeafSpine
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines:       sc.Spines,
		Leaves:       sc.Leaves,
		HostsPerLeaf: sc.HostsPerLeaf,
		HostRate:     10 * units.Gbps,
		FabricRate:   40 * units.Gbps,
		LinkDelay:    500 * units.Nanosecond,
	}
	cfg.IncastScale = sc.IncastScale
	cfg.IncastFlowSize = int64(sc.IncastFlowKB) * 1000
	return cfg
}

// fatTreeConfig is baseConfig on the scale's fat-tree.
func fatTreeConfig(sc Scale, policy fabric.Policy, proto transport.Protocol) core.Config {
	cfg := baseConfig(sc, policy, proto)
	cfg.Kind = core.FatTree
	cfg.FatTreeCfg = topo.FatTreeConfig{
		K:         sc.FatTreeK,
		Rate:      10 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	return cfg
}

// withLoads sets background load and tops up with incast to reach total.
func withLoads(cfg core.Config, bg, total float64) core.Config {
	cfg.BGLoad = bg
	if total > bg {
		cfg.SetIncastLoad(total - bg)
	} else {
		cfg.IncastQPS = 0
	}
	return cfg
}

// reportFailure emits a failed run's progress line and OnRun record — with
// the flight recorder's dump attached — under the same lock as successful
// runs so lines never interleave.
func (o *Options) reportFailure(label string, err error, fr *obs.FlightRecorder) {
	obsRunsFailed.Inc()
	mu := o.lock()
	mu.Lock()
	defer mu.Unlock()
	if o.Progress != nil {
		o.Progress("%-40s FAILED: %s", label, firstLine(err.Error()))
	}
	if o.OnRun != nil {
		o.OnRun(RunInfo{Label: label, Err: err.Error(), Flight: flightDump(fr)})
	}
}

// flightDump renders a flight recorder's ring as JSONL, or nil when nothing
// was recorded (runs that die before their first event still carry the
// watchdog or panic context their recorder captured).
func flightDump(fr *obs.FlightRecorder) []byte {
	if fr == nil || fr.Len() == 0 {
		return nil
	}
	var b bytes.Buffer
	_ = fr.DumpJSONL(&b) // bytes.Buffer writes cannot fail
	return b.Bytes()
}

// applyTo folds the option overrides into one run's config. Config-level
// settings only; per-run attachments (tracer buffers, flight recorders)
// stay in run.
func (o *Options) applyTo(cfg core.Config) core.Config {
	if o.SampleTick > 0 && cfg.SampleTick == 0 {
		cfg.SampleTick = o.SampleTick
	}
	if !o.FaultSchedule.Empty() && cfg.Faults.Empty() {
		cfg.Faults = o.FaultSchedule
	}
	if o.HealDelay > 0 && cfg.HealDelay == 0 {
		cfg.HealDelay = o.HealDelay
	}
	if o.RunTimeout > 0 && cfg.WallTimeout == 0 {
		cfg.WallTimeout = o.RunTimeout
	}
	if o.MaxEvents > 0 && cfg.MaxEvents == 0 {
		cfg.MaxEvents = o.MaxEvents
	}
	if o.ChaosPanicAt > 0 && cfg.ChaosPanicAt == 0 {
		cfg.ChaosPanicAt = o.ChaosPanicAt
	}
	if o.TrainLen >= 0 {
		cfg.Fabric.TrainLen = o.TrainLen
	}
	if o.Shards > 1 && cfg.Shards == 0 {
		cfg.Shards = o.Shards
	}
	if o.RawMode != metrics.RawAuto && cfg.RawSeries == metrics.RawAuto {
		cfg.RawSeries = o.RawMode
	}
	return cfg
}

// ProbeConfig builds the representative scenario a sweep at this scale
// runs — the shared leaf-spine base with the options applied — so services
// can validate a submission (core.Config.Validate) before committing a
// worker to it. The probe uses the Vertigo+DCTCP combination every
// experiment includes; option-level errors (fault schedules outside the
// simulated window, train lengths out of range, chaos panics past the
// deadline) surface here exactly as they would mid-sweep.
func ProbeConfig(sc Scale, opt *Options) core.Config {
	if opt == nil {
		opt = DefaultOptions()
	}
	return opt.applyTo(baseConfig(sc, fabric.Vertigo, transport.DCTCP))
}

// run executes one scenario, reporting progress and instrumentation.
func (o *Options) run(label string, cfg core.Config) (*metrics.Summary, *metrics.Collector, error) {
	cfg = o.applyTo(cfg)
	if cfg.Flight == nil && o.FlightLen > 0 {
		// safeRun normally pre-attaches the recorder (so panics can dump
		// it); this covers direct callers, where only the error path needs
		// one.
		cfg.Flight = obs.NewFlightRecorder(o.FlightLen)
	}
	var traceBuf *bytes.Buffer
	if o.TraceFlow > 0 && cfg.PacketTrace == nil {
		traceBuf = &bytes.Buffer{}
		cfg.PacketTrace = traceBuf
		cfg.PacketTraceFlow = o.TraceFlow
		cfg.PacketTraceJSON = true
	}
	obsRunsStarted.Inc()
	start := time.Now()
	res, err := core.Run(cfg)
	if err != nil {
		err = fmt.Errorf("exp: %s: %w", label, err)
		o.reportFailure(label, err, cfg.Flight)
		return nil, nil, err
	}
	obsRunsCompleted.Inc()
	info := RunInfo{
		Label:   label,
		Summary: res.Summary,
		Engine:  res.Engine,
		Pool:    res.Pool,
		Sampler: res.Sampler,
		Wall:    time.Since(start),
	}
	if traceBuf != nil {
		info.Trace = traceBuf.Bytes()
	}
	// One critical section for both hooks, so a run's progress line and its
	// OnRun record can never interleave with another worker's.
	mu := o.lock()
	mu.Lock()
	if o.Progress != nil {
		o.Progress("%-40s q=%4d/%4d QCT=%-10v FCT=%-10v drops=%d wall=%.2fs ev/s=%.2fM",
			label, res.Summary.QueriesCompleted, res.Summary.QueriesStarted,
			res.Summary.MeanQCT, res.Summary.MeanFCT, res.Summary.Drops,
			info.Wall.Seconds(), info.EventsPerSec()/1e6)
	}
	if o.OnRun != nil {
		o.OnRun(info)
	}
	mu.Unlock()
	return res.Summary, res.Collector, nil
}

// pct renders a percentage cell.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// schemeName renders the "system" cell used across tables.
func schemeName(p fabric.Policy, t transport.Protocol) string {
	return p.String() + "+" + t.String()
}
