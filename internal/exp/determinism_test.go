package exp

import (
	"bytes"
	"testing"
)

// renderAll runs the experiment at Tiny scale and returns every table
// rendered as text.
func renderAll(t *testing.T, id string) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Tiny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Fprint(&buf)
	}
	return buf.Bytes()
}

// TestParallelSweepDeterminism pins the runner's core guarantee: rendered
// tables are byte-identical whether the sweep ran sequentially or on a
// worker pool, because render callbacks fire in submission order.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(old int) { Concurrency = old }(Concurrency)
	for _, id := range []string{"fig1", "fig8"} {
		Concurrency = 1
		seq := renderAll(t, id)
		Concurrency = 8
		par := renderAll(t, id)
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: parallel render differs from sequential:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
				id, seq, par)
		}
	}
}
