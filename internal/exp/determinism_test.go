package exp

import (
	"bytes"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// renderAll runs the experiment at Tiny scale and returns every table
// rendered as text.
func renderAll(t *testing.T, id string) []byte {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(Tiny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Fprint(&buf)
	}
	return buf.Bytes()
}

// TestParallelSweepDeterminism pins the runner's core guarantee: rendered
// tables are byte-identical whether the sweep ran sequentially or on a
// worker pool, because render callbacks fire in submission order.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	defer func(old int) { Concurrency = old }(Concurrency)
	for _, id := range []string{"fig1", "fig8"} {
		Concurrency = 1
		seq := renderAll(t, id)
		Concurrency = 8
		par := renderAll(t, id)
		if !bytes.Equal(seq, par) {
			t.Errorf("%s: parallel render differs from sequential:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
				id, seq, par)
		}
	}
}

// TestFatTreeK16SweepDeterminism extends the -j1/-j8 byte-identity guarantee
// to the scale=huge topology class: a short sweep on the k=16 fat-tree
// (1024 hosts) renders identical tables sequentially and on 8 workers. The
// horizon is sub-millisecond so the test stays unit-test sized while still
// exercising the allocation-lean k=16 build and per-run state recycling
// under concurrent sweeps.
func TestFatTreeK16SweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	sc := Scale{
		Name: "k16det", Spines: 8, Leaves: 16, HostsPerLeaf: 64, FatTreeK: 16,
		SimTime: 200 * units.Microsecond, IncastScale: 16, IncastFlowKB: 4, Seed: 1,
	}
	render := func(workers int) []byte {
		opt := DefaultOptions()
		opt.Concurrency = workers
		tbl := &Table{
			ID:      "k16det",
			Title:   "fat-tree k=16 determinism probe",
			Columns: []string{"system", "flows", "pkts", "drops", "FCT_p99", "QCT_mean"},
		}
		sw := newSweep(opt)
		for _, p := range []fabric.Policy{fabric.ECMP, fabric.DIBS, fabric.Vertigo} {
			p := p
			cfg := withLoads(fatTreeConfig(sc, p, transport.DCTCP), 0.10, 0.40)
			sw.add("k16det/"+p.String(), cfg,
				func(s *metrics.Summary, _ *metrics.Collector) {
					tbl.Add(schemeName(p, transport.DCTCP), s.FlowsStarted,
						s.PacketsSent, s.Drops, s.P99FCT, s.MeanQCT)
				})
		}
		if err := sw.run(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tbl.Fprint(&buf)
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Errorf("k=16 parallel render differs from sequential:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
			seq, par)
	}
}
