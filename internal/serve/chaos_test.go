package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosBurst is the acceptance drill: 50 concurrent submissions where
// ~20% panic deliberately mid-simulation and ~20% die to the wall-clock
// watchdog, against a deliberately small queue. The daemon must complete
// every healthy job with artifacts byte-identical to direct batch runs,
// reject overload with 429 + Retry-After, keep /healthz serving throughout,
// and never crash.
func TestChaosBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("runs ~50 real simulations")
	}
	cfg := Config{
		DataDir:           t.TempDir(),
		Workers:           4,
		QueueDepth:        10, // << 50 submissions: forces 429s
		TenantMax:         100,
		MaxRetries:        1, // bounds watchdog-job attempts to 2
		RetryBase:         20 * time.Millisecond,
		RetryMax:          100 * time.Millisecond,
		DefaultRunTimeout: time.Minute,
	}
	s := newTestServer(t, cfg, nil) // real execution
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const total = 50
	healthySeeds := []int64{101, 102, 103}
	spec := func(i int) Spec {
		tenant := fmt.Sprintf("t%d", i%4)
		switch i % 5 {
		case 0: // ~20%: deliberate panic inside the event loop
			return Spec{Tenant: tenant, Experiment: "failover", Scale: "tiny",
				SimTime: "4ms", ChaosPanicAt: "1ms", Seed: int64(200 + i)}
		case 1: // ~20%: wall-clock watchdog kill (transient class)
			return Spec{Tenant: tenant, Experiment: "failover", Scale: "tiny",
				RunTimeout: "1ms", Seed: int64(300 + i)}
		default: // 60%: healthy short-sim jobs over three distinct specs
			return Spec{Tenant: tenant, Experiment: "failover", Scale: "tiny",
				SimTime: "4ms", Seed: healthySeeds[i%len(healthySeeds)]}
		}
	}

	// Fire all 50 concurrently; clients back off briefly on 429 and
	// resubmit, counting every rejection they absorb.
	var rejected429, healthzFails atomic.Int32
	ids := make([]string, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(spec(i))
			for try := 0; try < 500; try++ {
				resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					rejected429.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("submit %d: 429 without Retry-After", i)
					}
					resp.Body.Close()
					time.Sleep(25 * time.Millisecond)
					continue
				}
				var v JobView
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted || err != nil || v.ID == "" {
					t.Errorf("submit %d: status %d err %v", i, resp.StatusCode, err)
					return
				}
				ids[i] = v.ID
				return
			}
			t.Errorf("submit %d: never accepted", i)
		}(i)
	}
	// Liveness probe riding along with the burst.
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		for j := 0; j < 20; j++ {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil || resp.StatusCode != http.StatusOK {
				healthzFails.Add(1)
			}
			if resp != nil {
				resp.Body.Close()
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-probeDone
	if t.Failed() {
		t.FailNow()
	}
	if rejected429.Load() == 0 {
		t.Error("50 submissions against a queue of 10 produced zero 429s")
	}
	if healthzFails.Load() != 0 {
		t.Errorf("healthz failed %d times during the burst", healthzFails.Load())
	}

	views := make([]JobView, total)
	for i, id := range ids {
		views[i] = waitState(t, s, id)
	}

	// Reference tables: the same three healthy specs run directly through
	// the batch API. Daemon jobs must match them byte-for-byte.
	ref := make(map[int64][]byte, len(healthySeeds))
	for _, seed := range healthySeeds {
		sp := Spec{Experiment: "failover", Scale: "tiny", SimTime: "4ms", Seed: seed}
		res, err := sp.resolve(cfg.withDefaults())
		if err != nil {
			t.Fatal(err)
		}
		tables, err := res.exp.Run(res.scale, res.opt)
		if err != nil {
			t.Fatalf("reference run seed %d: %v", seed, err)
		}
		raw, err := json.Marshal(tables)
		if err != nil {
			t.Fatal(err)
		}
		ref[seed] = canonical(t, raw)
	}

	for i, v := range views {
		sp := spec(i)
		switch i % 5 {
		case 0: // panic jobs: permanent after exactly one retry, flight dumped
			if v.State != StateFailed || v.Attempt != 2 {
				t.Errorf("panic job %s = %+v, want failed after 2 attempts", v.ID, v)
				continue
			}
			if !strings.Contains(v.Error, "chaos panic") {
				t.Errorf("panic job %s error %q lost the panic", v.ID, v.Error)
			}
			checkFlightDump(t, v)
		case 1: // watchdog jobs: transient, retried to budget, flight dumped
			if v.State != StateFailed || v.Attempt != 2 {
				t.Errorf("watchdog job %s = %+v, want failed after 1+1 attempts", v.ID, v)
				continue
			}
			if !strings.Contains(v.Error, "wall-clock") {
				t.Errorf("watchdog job %s error %q lost the watchdog", v.ID, v.Error)
			}
			checkFlightDump(t, v)
		default: // healthy jobs: completed, byte-identical to the batch run
			if v.State != StateCompleted || v.Attempt != 1 {
				t.Errorf("healthy job %s = %+v, want completed first try", v.ID, v)
				continue
			}
			raw, err := os.ReadFile(filepath.Join(v.ArtifactDir, "results.json"))
			if err != nil {
				t.Errorf("healthy job %s: %v", v.ID, err)
				continue
			}
			var doc struct {
				Tables json.RawMessage `json:"tables"`
			}
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Errorf("healthy job %s: results.json: %v", v.ID, err)
				continue
			}
			if got := canonical(t, doc.Tables); !bytes.Equal(got, ref[sp.Seed]) {
				t.Errorf("healthy job %s (seed %d): tables differ from batch run:\ndaemon: %s\nbatch:  %s",
					v.ID, sp.Seed, got, ref[sp.Seed])
			}
		}
	}
}

// checkFlightDump asserts a failed job wrote a non-empty flight.jsonl.
func checkFlightDump(t *testing.T, v JobView) {
	t.Helper()
	fl, err := os.ReadFile(filepath.Join(v.ArtifactDir, "flight.jsonl"))
	if err != nil {
		t.Errorf("failed job %s has no flight dump: %v", v.ID, err)
		return
	}
	if len(bytes.TrimSpace(fl)) == 0 {
		t.Errorf("failed job %s: flight.jsonl is empty", v.ID)
	}
}

// canonical re-marshals raw JSON so formatting differences can't mask (or
// fake) a content difference.
func canonical(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("canonicalizing: %v", err)
	}
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestChaosKillResume extends the drill across a process boundary: a
// server accepts a mixed burst and dies without running any of it; the
// restarted server resumes the journal and drives every job to the same
// terminal states real execution dictates.
func TestChaosKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := Config{
		DataDir:           t.TempDir(),
		Workers:           2,
		QueueDepth:        20,
		TenantMax:         20,
		MaxRetries:        1,
		RetryBase:         20 * time.Millisecond,
		RetryMax:          100 * time.Millisecond,
		DefaultRunTimeout: time.Minute,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{Experiment: "failover", Scale: "tiny", SimTime: "4ms", Seed: 11},
		{Experiment: "failover", Scale: "tiny", SimTime: "4ms", Seed: 12},
		{Experiment: "failover", Scale: "tiny", SimTime: "4ms", ChaosPanicAt: "1ms", Seed: 13},
		{Experiment: "failover", Scale: "tiny", SimTime: "4ms", Seed: 14},
	}
	var ids []string
	for _, sp := range specs {
		v, err := a.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	abandon(a) // SIGKILL stand-in: accepted, journaled, never started

	b := newTestServer(t, cfg, nil) // real execution
	for i, id := range ids {
		v := waitState(t, b, id)
		if i == 2 {
			if v.State != StateFailed || !strings.Contains(v.Error, "chaos panic") {
				t.Fatalf("resumed panic job = %+v, want deterministic failure", v)
			}
			continue
		}
		if v.State != StateCompleted {
			t.Fatalf("resumed job %s = %+v, want completed", id, v)
		}
		if _, err := os.Stat(filepath.Join(v.ArtifactDir, "results.json")); err != nil {
			t.Fatalf("resumed job %s missing artifacts: %v", id, err)
		}
	}
}
