package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/exp"
	"vertigo/internal/obs"
)

// Config parameterizes the daemon. Zero values select the documented
// defaults.
type Config struct {
	// DataDir roots the journal and the per-job artifact directories.
	DataDir string
	// Workers is the job worker pool size (default: GOMAXPROCS/2, min 1).
	// Each job may itself run Spec.Jobs simulations concurrently.
	Workers int
	// QueueDepth bounds the number of queued-but-not-started jobs;
	// submissions past it are rejected with 429 (default 64).
	QueueDepth int
	// TenantMax caps one tenant's in-flight (queued+running+backoff) jobs;
	// submissions past it are rejected with 429 (default 8).
	TenantMax int
	// MaxRetries is the default per-job retry budget for transient
	// failures (default 3; Spec.Retries overrides per job).
	MaxRetries int
	// RetryBase and RetryMax bound the capped exponential retry backoff
	// (defaults 250ms and 15s). Each delay gets ±50% jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	// MemSoftLimit, when nonzero, arms load shedding: while the heap sits
	// above this many bytes, queued-but-not-started jobs are shed (newest
	// first) and re-admitted through the retry path once pressure clears.
	MemSoftLimit uint64
	// MemCheckEvery is the shedding poll interval (default 1s).
	MemCheckEvery time.Duration
	// DefaultRunTimeout bounds each simulation run's wall-clock time when
	// the spec doesn't set one (default 2m; 0 disables).
	DefaultRunTimeout time.Duration
	// DefaultMaxEvents bounds each run's event count when the spec doesn't
	// set one (0 disables).
	DefaultMaxEvents uint64
	// FlightLen is the per-run crash flight recorder ring size
	// (default 4096).
	FlightLen int

	// memStats reads the current heap size; tests substitute it. nil uses
	// runtime.ReadMemStats.
	memStats func() uint64
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Workers <= 0 {
		d.Workers = max(1, runtime.GOMAXPROCS(0)/2)
	}
	if d.QueueDepth <= 0 {
		d.QueueDepth = 64
	}
	if d.TenantMax <= 0 {
		d.TenantMax = 8
	}
	if d.MaxRetries < 0 {
		d.MaxRetries = 0
	} else if d.MaxRetries == 0 {
		d.MaxRetries = 3
	}
	if d.RetryBase <= 0 {
		d.RetryBase = 250 * time.Millisecond
	}
	if d.RetryMax <= 0 {
		d.RetryMax = 15 * time.Second
	}
	if d.MemCheckEvery <= 0 {
		d.MemCheckEvery = time.Second
	}
	if d.DefaultRunTimeout == 0 {
		d.DefaultRunTimeout = 2 * time.Minute
	}
	if d.FlightLen == 0 {
		d.FlightLen = 4096
	}
	if d.memStats == nil {
		d.memStats = heapInUse
	}
	return d
}

func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// RejectError is an admission rejection with its HTTP mapping: 400 for
// invalid specs, 429 (with a Retry-After hint) for overload, 503 while
// draining. Rejection is always explicit — the daemon never queues
// unboundedly.
type RejectError struct {
	Code       int
	RetryAfter time.Duration
	Reason     string // metrics label: invalid | queue_full | tenant_cap | draining
	Err        error
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: rejected (%s): %v", e.Reason, e.Err)
}

func (e *RejectError) Unwrap() error { return e.Err }

// Server is the simulation daemon: admission control in front of a bounded
// worker pool wrapping the crash-safe sweep runner, with a journal for
// crash recovery.
type Server struct {
	cfg     Config
	journal *journal
	start   time.Time

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string // job IDs in acceptance order, for listing
	queue       []*Job   // FIFO of runnable jobs
	cond        *sync.Cond
	seq         int
	running     int
	draining    bool
	panicHashes map[string]int         // spec hash → observed panic count
	hashDone    map[string]*Job        // spec hash → completed job (idempotency)
	backoffs    map[string]*time.Timer // job ID → pending retry timer

	workersWg sync.WaitGroup
	stopMem   chan struct{}
	memOnce   sync.Once

	// execute runs one job attempt; tests substitute it. Defaults to
	// (*Server).executeJob.
	execute func(*Job) error
}

// New opens (or creates) the data dir, replays the journal, and returns a
// server with every unfinished job re-enqueued. Call Start to launch the
// worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	recs, err := replayJournal(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	jl, err := openJournal(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:         cfg,
		journal:     jl,
		start:       time.Now(),
		jobs:        make(map[string]*Job),
		panicHashes: make(map[string]int),
		hashDone:    make(map[string]*Job),
		backoffs:    make(map[string]*time.Timer),
		stopMem:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.execute = s.executeJob
	s.resume(recs)
	return s, nil
}

// resume reconstructs jobs from replayed journal records: jobs with a
// terminal record are kept for listing/idempotency; accepted jobs without
// one were in flight when the process died and are re-enqueued. Recovery is
// idempotent by spec hash — an unfinished job whose hash already completed
// reuses the completed artifacts instead of re-running.
func (s *Server) resume(recs []journalRec) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rec := range recs {
		switch rec.Ev {
		case "accept":
			if rec.Spec == nil {
				continue
			}
			j := &Job{
				ID:    rec.ID,
				Spec:  *rec.Spec,
				Hash:  rec.Hash,
				State: StateQueued,
				Dir:   filepath.Join(s.cfg.DataDir, "jobs", rec.ID),
				hub:   newHub(),
			}
			if t, err := time.Parse(time.RFC3339Nano, rec.Time); err == nil {
				j.Accepted = t
			}
			s.jobs[j.ID] = j
			s.order = append(s.order, j.ID)
			var n int
			if _, err := fmt.Sscanf(rec.ID, "j%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
		case "done":
			j := s.jobs[rec.ID]
			if j == nil {
				continue
			}
			j.State = rec.State
			j.Error = rec.Error
			if t, err := time.Parse(time.RFC3339Nano, rec.Time); err == nil {
				j.Finished = t
			}
			j.hub.close()
			if rec.State == StateCompleted {
				s.hashDone[j.Hash] = j
			}
		}
	}
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State.Terminal() {
			continue
		}
		if done := s.hashDone[j.Hash]; done != nil {
			// Same spec already completed: adopt its artifacts.
			j.Dir = done.Dir
			s.finishLocked(j, StateCompleted, "")
			continue
		}
		res, err := j.Spec.resolve(s.cfg)
		if err != nil {
			s.finishLocked(j, StateFailed, err.Error())
			continue
		}
		j.res = res
		s.enqueueLocked(j, "resumed from journal")
	}
}

// Start launches the worker pool and (when configured) the memory-pressure
// shedder.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.workersWg.Add(1)
		go s.worker()
	}
	if s.cfg.MemSoftLimit > 0 {
		go s.memWatch()
	}
}

// Submit validates and admits one spec. On success the job is journaled,
// queued and its view returned; on failure the *RejectError carries the
// HTTP mapping.
func (s *Server) Submit(spec Spec) (JobView, error) {
	res, err := spec.resolve(s.cfg)
	if err != nil {
		mJobsRejected.At(rejInvalid).Inc()
		return JobView{}, &RejectError{Code: 400, Reason: "invalid", Err: err}
	}
	hash := spec.Hash()

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		mJobsRejected.At(rejDraining).Inc()
		return JobView{}, &RejectError{Code: 503, Reason: "draining", Err: errors.New("server is draining")}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		hint := s.retryAfterHint()
		s.mu.Unlock()
		mJobsRejected.At(rejQueueFull).Inc()
		return JobView{}, &RejectError{
			Code: 429, RetryAfter: hint, Reason: "queue_full",
			Err: fmt.Errorf("queue full (%d jobs)", s.cfg.QueueDepth),
		}
	}
	if n := s.tenantInFlightLocked(spec.Tenant); n >= s.cfg.TenantMax {
		hint := s.retryAfterHint()
		s.mu.Unlock()
		mJobsRejected.At(rejTenantCap).Inc()
		return JobView{}, &RejectError{
			Code: 429, RetryAfter: hint, Reason: "tenant_cap",
			Err: fmt.Errorf("tenant %q has %d jobs in flight (cap %d)", spec.Tenant, n, s.cfg.TenantMax),
		}
	}
	s.seq++
	j := &Job{
		ID:       fmt.Sprintf("j%d", s.seq),
		Spec:     spec,
		Hash:     hash,
		State:    StateQueued,
		Dir:      filepath.Join(s.cfg.DataDir, "jobs", fmt.Sprintf("j%d", s.seq)),
		Accepted: time.Now(),
		res:      res,
		hub:      newHub(),
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if err := s.journal.append(journalRec{Ev: "accept", ID: j.ID, Hash: j.Hash, Spec: &j.Spec}); err != nil {
		// An unjournaled job would vanish on restart; refuse it instead.
		delete(s.jobs, j.ID)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		mJobsRejected.At(rejJournal).Inc()
		return JobView{}, &RejectError{Code: 500, Reason: "journal", Err: err}
	}
	mJobsAccepted.Inc()
	s.enqueueLocked(j, "accepted")
	v := j.view()
	s.mu.Unlock()
	return v, nil
}

// retryAfterHint estimates (coarsely) when capacity frees up: one second
// per queued job ahead, per worker, clamped to [1s, 60s]. Callers hold mu.
func (s *Server) retryAfterHint() time.Duration {
	d := time.Duration(1+len(s.queue)/s.cfg.Workers) * time.Second
	return min(max(d, time.Second), time.Minute)
}

// tenantInFlightLocked counts a tenant's non-terminal jobs.
func (s *Server) tenantInFlightLocked(tenant string) int {
	n := 0
	for _, j := range s.jobs {
		if j.Spec.Tenant == tenant && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// enqueueLocked appends to the run queue and wakes a worker. Callers hold
// mu and have already journaled the accept.
func (s *Server) enqueueLocked(j *Job, why string) {
	j.State = StateQueued
	s.queue = append(s.queue, j)
	mQueueDepth.Set(int64(len(s.queue)))
	j.hub.publish(Event{"state", fmt.Sprintf("queued (%s)", why)})
	s.cond.Signal()
}

// worker pulls jobs until drain.
func (s *Server) worker() {
	defer s.workersWg.Done()
	for {
		s.mu.Lock()
		for !s.draining && len(s.queue) == 0 {
			s.cond.Wait()
		}
		if s.draining && len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		mQueueDepth.Set(int64(len(s.queue)))
		if s.draining {
			// Queued jobs are not started during a drain: they stay
			// accepted-but-unfinished in the journal for the next process.
			s.mu.Unlock()
			continue
		}
		j.State = StateRunning
		s.running++
		mJobsRunning.Set(int64(s.running))
		s.mu.Unlock()

		j.hub.publish(Event{"state", fmt.Sprintf("running (attempt %d)", j.Attempt+1)})
		err := s.execute(j)

		s.mu.Lock()
		s.running--
		mJobsRunning.Set(int64(s.running))
		j.Attempt++
		switch {
		case err == nil:
			s.finishLocked(j, StateCompleted, "")
		case s.retryable(j, err) && j.Attempt <= j.res.retries:
			if s.draining {
				// No time to back off: leave the job unfinished in the
				// journal so the next process retries it.
				j.State = StateQueued
				j.Error = err.Error()
				j.hub.publish(Event{"state", "deferred to restart (draining)"})
			} else {
				s.scheduleRetryLocked(j, err)
			}
		default:
			s.finishLocked(j, StateFailed, err.Error())
		}
		s.mu.Unlock()
	}
}

// executeJob runs one attempt of a job's sweep, isolated: a panic that
// escapes the sweep runner (driver code, render callbacks) is recovered
// here and converted into an error wrapping exp.ErrPanic, so no job can
// take the daemon down. Artifacts — including partial tables and the
// failed runs' flight dumps — are written even when the attempt fails.
func (s *Server) executeJob(j *Job) error {
	rec := exp.NewRecorder()
	opt := *j.res.opt
	opt.Progress = func(format string, args ...any) {
		j.hub.publish(Event{"progress", fmt.Sprintf(format, args...)})
	}
	opt.OnRun = rec.Record
	start := time.Now()
	tables, err := func() (tables []*exp.Table, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: job %s: %w: %v\n%s", j.ID, exp.ErrPanic, r, debug.Stack())
			}
		}()
		return j.res.exp.Run(j.res.scale, &opt)
	}()
	m := exp.BuildManifest([]string{j.res.exp.ID}, j.res.scale, opt.Concurrency, rec, start, time.Since(start))
	if werr := exp.WriteArtifacts(j.Dir, m, tables, rec); werr != nil && err == nil {
		err = fmt.Errorf("serve: job %s: writing artifacts: %w", j.ID, werr)
	}
	return err
}

// retryable classifies a failed attempt. Transient — watchdog kills under
// load, shed jobs — is retried with backoff; permanent — invalid configs,
// deterministic event-budget kills, and panics that repeat for the same
// spec hash — is not.
func (s *Server) retryable(j *Job, err error) bool {
	if errors.Is(err, exp.ErrPanic) {
		// A panic is deterministic for a deterministic scenario, but give
		// one retry to rule out environmental flukes: the same spec hash
		// panicking twice is permanent.
		s.panicHashes[j.Hash]++
		return s.panicHashes[j.Hash] < 2
	}
	if errors.Is(err, errShed) {
		return true
	}
	var serr *exp.SweepError
	if errors.As(err, &serr) {
		// Retry only when every failed run died of wall-clock pressure.
		for i := range serr.Failed {
			if !errors.Is(&serr.Failed[i], core.ErrWallBudget) {
				return false
			}
		}
		return true
	}
	return errors.Is(err, core.ErrWallBudget)
}

// scheduleRetryLocked parks a job in backoff: capped exponential delay with
// ±50% jitter, then back onto the queue. Callers hold mu.
func (s *Server) scheduleRetryLocked(j *Job, err error) {
	mJobsRetried.Inc()
	j.State = StateBackoff
	j.Error = err.Error()
	delay := s.backoffDelay(j.Attempt)
	j.hub.publish(Event{"state", fmt.Sprintf("backoff %v (attempt %d failed: %s)",
		delay.Round(time.Millisecond), j.Attempt, firstLine(err.Error()))})
	s.backoffs[j.ID] = time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.backoffs, j.ID)
		if s.draining || j.State != StateBackoff {
			return
		}
		s.enqueueLocked(j, fmt.Sprintf("retry %d", j.Attempt))
	})
}

// backoffDelay is the capped exponential schedule: base<<attempt with ±50%
// jitter, clamped to RetryMax.
func (s *Server) backoffDelay(attempt int) time.Duration {
	d := s.cfg.RetryBase << min(uint(attempt), 16)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	// Jitter in [0.5d, 1.5d) desynchronizes retry herds after a shed burst.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// finishLocked records a job's terminal state: journal, metrics, SSE.
// Callers hold mu.
func (s *Server) finishLocked(j *Job, st State, errMsg string) {
	j.State = st
	j.Error = errMsg
	j.Finished = time.Now()
	if st == StateCompleted {
		mJobsCompleted.Inc()
		s.hashDone[j.Hash] = j
	} else {
		mJobsFailed.Inc()
	}
	if !j.Accepted.IsZero() {
		mJobLatency.Observe(int64(j.Finished.Sub(j.Accepted)))
	}
	_ = s.journal.append(journalRec{Ev: "done", ID: j.ID, Hash: j.Hash, State: st, Error: errMsg})
	j.hub.publish(Event{"state", string(st)})
	j.hub.close()
}

// errShed marks a queued job removed by the memory-pressure shedder; it is
// transient — the job re-enters through the retry path.
var errShed = errors.New("serve: shed under memory pressure")

// memWatch polls the heap and sheds while above the soft limit.
func (s *Server) memWatch() {
	t := time.NewTicker(s.cfg.MemCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopMem:
			return
		case <-t.C:
			if s.cfg.memStats() > s.cfg.MemSoftLimit {
				s.shed()
			}
		}
	}
}

// shed removes the newest half of the queued-but-not-started jobs (at
// least one) and routes them through the transient-failure retry path, so
// a memory spike degrades to added latency instead of an OOM kill. Running
// jobs are never interrupted.
func (s *Server) shed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := (len(s.queue) + 1) / 2
	for i := 0; i < n; i++ {
		j := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		mJobsShed.Inc()
		j.Attempt++
		if j.Attempt <= j.res.retries {
			s.scheduleRetryLocked(j, errShed)
		} else {
			s.finishLocked(j, StateFailed, errShed.Error())
		}
	}
	mQueueDepth.Set(int64(len(s.queue)))
}

// Job returns a job's view by ID.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs lists every job in acceptance order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].view())
	}
	return out
}

// Subscribe returns a job's event history and live stream (nil channel when
// the job is already terminal).
func (s *Server) Subscribe(id string) ([]Event, chan Event, func(), bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, nil, nil, false
	}
	hist, ch, cancel := j.hub.subscribe()
	return hist, ch, cancel, true
}

// Status summarizes the daemon for /statusz.
func (s *Server) Status() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	byState := map[State]int{}
	for _, j := range s.jobs {
		byState[j.State]++
	}
	return map[string]any{
		"workers":     s.cfg.Workers,
		"queue_depth": len(s.queue),
		"queue_cap":   s.cfg.QueueDepth,
		"running":     s.running,
		"draining":    s.draining,
		"jobs":        byState,
		"uptime":      time.Since(s.start).Round(time.Millisecond).String(),
	}
}

// Drain stops admission and new job starts, lets running jobs finish until
// ctx expires, cancels pending backoff timers (their jobs stay journaled as
// unfinished, so a restart resumes them), and closes the journal. It
// returns nil when every worker drained in time, or the context error when
// the deadline passed with jobs still running — the caller exits anyway and
// the journal replay recovers the stragglers.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for id, t := range s.backoffs {
		t.Stop()
		delete(s.backoffs, id)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.memOnce.Do(func() { close(s.stopMem) })

	done := make(chan struct{})
	go func() {
		s.workersWg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	return err
}

// firstLine truncates multi-line error text for one-line SSE use.
func firstLine(str string) string {
	for i := 0; i < len(str); i++ {
		if str[i] == '\n' {
			return str[:i] + " [...]"
		}
	}
	return str
}

// Process-global daemon metrics (the issue's serve_jobs_* family).
const (
	rejInvalid = iota
	rejQueueFull
	rejTenantCap
	rejDraining
	rejJournal
)

var (
	mJobsAccepted = obs.NewCounter("vertigo_serve_jobs_accepted_total",
		"jobs admitted past validation and admission control")
	mJobsRejected = obs.NewCounterVec("vertigo_serve_jobs_rejected_total",
		"jobs rejected at admission", "reason",
		"invalid", "queue_full", "tenant_cap", "draining", "journal")
	mJobsRetried = obs.NewCounter("vertigo_serve_jobs_retried_total",
		"transient job failures scheduled for a backoff retry")
	mJobsFailed = obs.NewCounter("vertigo_serve_jobs_failed_total",
		"jobs that reached the failed state")
	mJobsCompleted = obs.NewCounter("vertigo_serve_jobs_completed_total",
		"jobs that completed successfully")
	mJobsShed = obs.NewCounter("vertigo_serve_jobs_shed_total",
		"queued jobs shed under memory pressure")
	mQueueDepth = obs.NewGauge("vertigo_serve_queue_depth",
		"jobs queued but not started")
	mJobsRunning = obs.NewGauge("vertigo_serve_jobs_running",
		"jobs currently executing")
	mJobLatency = obs.NewHistogram("vertigo_serve_job_latency_ns",
		"accept-to-terminal job latency in nanoseconds")
)
