// Package serve is the vertigo-serve daemon: a crash-isolated,
// admission-controlled simulation service. Tenants submit experiment specs
// over HTTP/JSON; the daemon validates them up front, runs them on a
// bounded worker pool wrapping the crash-safe sweep runner (internal/exp),
// streams progress over SSE, persists per-job artifact directories, and
// journals every accepted job so a restart resumes unfinished work. A
// panicking or watchdog-killed job fails alone — dumping its flight
// recorder into the job's artifacts — instead of taking the process down.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"vertigo/internal/exp"
	"vertigo/internal/faults"
	"vertigo/internal/metrics"
	"vertigo/internal/units"
)

// Spec is one tenant's experiment submission: which experiment at which
// scale, plus the per-job knobs the vertigo-exp CLI exposes as flags.
// Durations are strings in Go syntax ("250ms", "1h"). The zero value of
// every optional field means "daemon default".
type Spec struct {
	// Tenant names the submitting tenant; admission control caps each
	// tenant's in-flight jobs independently. Empty = "anon".
	Tenant string `json:"tenant,omitempty"`
	// Experiment is the experiment ID to run (see vertigo-exp -list).
	Experiment string `json:"experiment"`
	// Scale is the scale preset: tiny|small|medium|paper (default small).
	Scale string `json:"scale,omitempty"`
	// Seed overrides the scale's RNG seed when nonzero.
	Seed int64 `json:"seed,omitempty"`
	// SimTime overrides the scale's simulated duration ("4ms"). Shorter
	// windows cost proportionally less worker time.
	SimTime string `json:"sim_time,omitempty"`
	// Jobs is the intra-sweep concurrency (default 1; tables are identical
	// at any setting).
	Jobs int `json:"jobs,omitempty"`
	// Fault is a fault schedule in the internal/faults DSL, injected into
	// every run of the sweep.
	Fault string `json:"fault,omitempty"`
	// HealDelay enables control-plane healing with this convergence delay.
	HealDelay string `json:"heal_delay,omitempty"`
	// RunTimeout bounds each run's wall-clock time; empty uses the daemon
	// default. Over-budget runs are transient failures (retried).
	RunTimeout string `json:"run_timeout,omitempty"`
	// MaxEvents bounds each run's event count; 0 uses the daemon default.
	// Capped runs are deterministic, hence permanent failures.
	MaxEvents uint64 `json:"max_events,omitempty"`
	// Train overrides the dataplane packet-train length (nil = default).
	Train *int `json:"train,omitempty"`
	// Shards, when > 1, runs every simulation sharded across that many
	// topology domains on separate cores. Tables are deterministic per
	// shard count; scenarios a shard cannot carry degrade to serial.
	Shards int `json:"shards,omitempty"`
	// SampleTick attaches the per-port sampler with this tick.
	SampleTick string `json:"sample_tick,omitempty"`
	// TraceFlow attaches a JSONL packet trace for this flow ID.
	TraceFlow uint64 `json:"trace_flow,omitempty"`
	// RawSeries sets raw FCT/QCT retention: auto|keep|drop.
	RawSeries string `json:"raw_series,omitempty"`
	// ChaosPanicAt, when set, makes every run panic deliberately at this
	// simulated time — a crash drill proving the daemon's isolation: the
	// job fails with a flight dump, the process stays healthy.
	ChaosPanicAt string `json:"chaos_panic_at,omitempty"`
	// Retries overrides the daemon's per-job retry budget (nil = default).
	Retries *int `json:"retries,omitempty"`
}

// normalize fills defaulted fields in place so equivalent submissions hash
// identically.
func (s *Spec) normalize() {
	if s.Tenant == "" {
		s.Tenant = "anon"
	}
	if s.Scale == "" {
		s.Scale = "small"
	}
	if s.Jobs <= 0 {
		s.Jobs = 1
	}
}

// Hash returns the spec's identity: a hex digest of the normalized
// submission. The journal dedupes and resumes by this hash, and the retry
// classifier uses it to recognize "the same spec panicked before" —
// deterministic crashes are not retried twice.
func (s *Spec) Hash() string {
	n := *s
	n.normalize()
	// Field order in a struct marshal is declaration order, so the digest
	// is stable for a given binary and spec.
	b, err := json.Marshal(&n)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshaling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// resolved is a validated, executable spec: the experiment driver, scale
// and per-sweep options it denotes.
type resolved struct {
	exp     *exp.Experiment
	scale   exp.Scale
	opt     *exp.Options // template; per-attempt hooks are filled at run time
	retries int          // per-job retry budget
}

// parseDur parses an optional duration field ("" = 0).
func parseDur(field, v string) (time.Duration, error) {
	if v == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(v)
	if err != nil {
		return 0, fmt.Errorf("serve: bad %s %q: %w", field, v, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("serve: negative %s %q", field, v)
	}
	return d, nil
}

// resolve validates the spec against the experiment registry, the scale
// presets, the fault DSL, and core.Config.Validate, returning the
// executable form. Every error here is a permanent, admission-time
// rejection (HTTP 400): the job never reaches a worker.
func (s *Spec) resolve(d Config) (*resolved, error) {
	s.normalize()
	e, err := exp.ByID(s.Experiment)
	if err != nil {
		return nil, err
	}
	sc, err := exp.ScaleByName(s.Scale)
	if err != nil {
		return nil, err
	}
	if s.Seed != 0 {
		sc.Seed = s.Seed
	}
	if st, err := parseDur("sim_time", s.SimTime); err != nil {
		return nil, err
	} else if st > 0 {
		sc.SimTime = units.FromDuration(st)
	}

	opt := exp.NewOptions()
	opt.Concurrency = s.Jobs
	opt.FlightLen = d.FlightLen
	opt.RunTimeout = d.DefaultRunTimeout
	if rt, err := parseDur("run_timeout", s.RunTimeout); err != nil {
		return nil, err
	} else if rt > 0 {
		opt.RunTimeout = rt
	}
	opt.MaxEvents = d.DefaultMaxEvents
	if s.MaxEvents > 0 {
		opt.MaxEvents = s.MaxEvents
	}
	if s.Fault != "" {
		sched, err := faults.Parse(s.Fault)
		if err != nil {
			return nil, err
		}
		opt.FaultSchedule = sched
	}
	hd, err := parseDur("heal_delay", s.HealDelay)
	if err != nil {
		return nil, err
	}
	opt.HealDelay = units.FromDuration(hd)
	st, err := parseDur("sample_tick", s.SampleTick)
	if err != nil {
		return nil, err
	}
	opt.SampleTick = units.FromDuration(st)
	opt.TraceFlow = s.TraceFlow
	if s.Train != nil {
		opt.TrainLen = *s.Train
	}
	if s.Shards < 0 {
		return nil, fmt.Errorf("serve: negative shards %d", s.Shards)
	}
	opt.Shards = s.Shards
	if s.RawSeries != "" {
		rm, err := metrics.ParseRawMode(s.RawSeries)
		if err != nil {
			return nil, err
		}
		opt.RawMode = rm
	}
	cp, err := parseDur("chaos_panic_at", s.ChaosPanicAt)
	if err != nil {
		return nil, err
	}
	opt.ChaosPanicAt = units.FromDuration(cp)

	// Fail bad configurations at admission, not after a worker committed:
	// fault events outside the simulated window, train lengths out of
	// range, chaos panics past the deadline all surface here.
	probe := exp.ProbeConfig(sc, opt)
	if err := probe.Validate(); err != nil {
		return nil, err
	}

	retries := d.MaxRetries
	if s.Retries != nil {
		if *s.Retries < 0 {
			return nil, fmt.Errorf("serve: negative retries %d", *s.Retries)
		}
		retries = *s.Retries
	}
	return &resolved{exp: e, scale: sc, opt: opt, retries: retries}, nil
}
