package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler returns the daemon's HTTP API:
//
//	POST /api/v1/jobs            submit a spec (202, or 400/429/503)
//	GET  /api/v1/jobs            list jobs
//	GET  /api/v1/jobs/{id}       one job's state
//	GET  /api/v1/jobs/{id}/events  SSE stream (history replay + live)
//	GET  /healthz                liveness
//
// Mount it next to obs.Handler to expose /metrics and /statusz on the same
// listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		mJobsRejected.At(rejInvalid).Inc()
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	v, err := s.Submit(spec)
	if err != nil {
		rej, ok := err.(*RejectError)
		if !ok {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		if rej.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(rej.RetryAfter/time.Second)))
		}
		writeJSON(w, rej.Code, map[string]string{"error": rej.Err.Error(), "reason": rej.Reason})
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleEvents streams a job's events as SSE: full history first (late
// subscribers replay the whole story), then live until the job reaches a
// terminal state or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	hist, live, cancel, ok := s.Subscribe(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, ev := range hist {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
	}
	fl.Flush()
	if live == nil {
		return // job already terminal: history was the whole story
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
			fl.Flush()
		}
	}
}
