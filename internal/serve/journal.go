package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalRec is one line of the job journal. "accept" carries the full
// spec; "done" carries the terminal state. A job that has an accept but no
// done was in flight (queued or running) when the process died — restart
// re-enqueues it, so SIGKILL mid-burst loses no accepted work.
type journalRec struct {
	Ev    string `json:"ev"` // "accept" | "done"
	ID    string `json:"id"`
	Hash  string `json:"hash"`
	Time  string `json:"t"`
	State State  `json:"state,omitempty"` // done only
	Error string `json:"error,omitempty"` // done+failed only
	Spec  *Spec  `json:"spec,omitempty"`  // accept only
}

// journal is the append-only JSONL job log. Every record is flushed to the
// OS before the append returns, so an accepted job survives a SIGKILL that
// lands immediately after the 202 response.
type journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// journalPath returns the journal file under a data dir.
func journalPath(dataDir string) string { return filepath.Join(dataDir, "journal.jsonl") }

// openJournal opens (creating if needed) the journal for appending.
func openJournal(dataDir string) (*journal, error) {
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(journalPath(dataDir), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	return &journal{f: f, w: bufio.NewWriter(f)}, nil
}

// append writes one record and flushes it through to the OS.
func (j *journal) append(rec journalRec) error {
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("serve: journal closed")
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// Close flushes and closes the journal file.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// replayJournal reads an existing journal and reconstructs every job's last
// known state: accepted jobs in ID order, with terminal records folded in.
// Unreadable lines are skipped (a SIGKILL can truncate the final line);
// everything before them replays fine.
func replayJournal(dataDir string) ([]journalRec, error) {
	f, err := os.Open(journalPath(dataDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []journalRec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var rec journalRec
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // torn final write
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
