package serve

import (
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

// Job states. queued → running → {completed, failed}; transient failures
// loop through backoff back to queued until the retry budget is spent.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateBackoff   State = "backoff" // waiting out a retry delay
	StateCompleted State = "completed"
	StateFailed    State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateCompleted || s == StateFailed }

// Job is one accepted submission. Mutable fields are guarded by the
// server's lock; the JSON view (view) is what the API returns.
type Job struct {
	ID       string
	Spec     Spec
	Hash     string
	State    State
	Attempt  int // completed attempts (0 while the first is in flight)
	Error    string
	Dir      string // artifact directory
	Accepted time.Time
	Finished time.Time

	res *resolved
	hub *hub
}

// JobView is the API representation of a job.
type JobView struct {
	ID          string `json:"id"`
	Hash        string `json:"hash"`
	Tenant      string `json:"tenant"`
	Experiment  string `json:"experiment"`
	Scale       string `json:"scale"`
	State       State  `json:"state"`
	Attempt     int    `json:"attempt,omitempty"`
	Error       string `json:"error,omitempty"`
	ArtifactDir string `json:"artifact_dir,omitempty"`
	Accepted    string `json:"accepted,omitempty"`
	Finished    string `json:"finished,omitempty"`
}

// view renders the job for the API; callers hold the server lock.
func (j *Job) view() JobView {
	v := JobView{
		ID:          j.ID,
		Hash:        j.Hash,
		Tenant:      j.Spec.Tenant,
		Experiment:  j.Spec.Experiment,
		Scale:       j.Spec.Scale,
		State:       j.State,
		Attempt:     j.Attempt,
		Error:       j.Error,
		ArtifactDir: j.Dir,
	}
	if !j.Accepted.IsZero() {
		v.Accepted = j.Accepted.UTC().Format(time.RFC3339)
	}
	if !j.Finished.IsZero() {
		v.Finished = j.Finished.UTC().Format(time.RFC3339)
	}
	return v
}

// Event is one SSE record of a job's stream: a type ("state" or "progress")
// and a data line.
type Event struct {
	Type string
	Data string
}

// hub fans a job's events out to its SSE subscribers. History is kept (the
// stream is low-rate: state changes plus one line per simulation run), so
// a late subscriber replays the whole story before going live.
type hub struct {
	mu      sync.Mutex
	history []Event
	subs    map[chan Event]struct{}
	closed  bool
}

const hubHistoryCap = 1024

func newHub() *hub {
	return &hub{subs: make(map[chan Event]struct{})}
}

// publish appends to history and forwards to every subscriber. A slow
// subscriber (full channel) drops events rather than blocking a worker;
// the history replay on reconnect recovers the gap.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if len(h.history) < hubHistoryCap {
		h.history = append(h.history, ev)
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// close ends the stream: subscribers' channels are closed after history.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		close(ch)
		delete(h.subs, ch)
	}
}

// subscribe returns the history so far and, unless the stream has ended, a
// live channel (nil when closed) plus an unsubscribe func.
func (h *hub) subscribe() ([]Event, chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := make([]Event, len(h.history))
	copy(hist, h.history)
	if h.closed {
		return hist, nil, func() {}
	}
	ch := make(chan Event, 64)
	h.subs[ch] = struct{}{}
	return hist, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
}
