package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vertigo/internal/core"
	"vertigo/internal/exp"
)

// testConfig is a fast daemon config over a temp dir: tight backoff so
// retry tests finish in milliseconds.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		DataDir:           t.TempDir(),
		Workers:           2,
		QueueDepth:        8,
		TenantMax:         4,
		MaxRetries:        3,
		RetryBase:         2 * time.Millisecond,
		RetryMax:          10 * time.Millisecond,
		DefaultRunTimeout: time.Minute,
	}
}

// newTestServer builds a started server whose job execution is the given
// stub — admission, retry and journal machinery run for real.
func newTestServer(t *testing.T, cfg Config, exec func(*Job) error) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec != nil {
		s.execute = exec
	}
	s.Start()
	t.Cleanup(func() {
		c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Drain(c)
	})
	return s
}

// waitState polls until the job reaches a terminal state.
func waitState(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	// Generous: real-simulation jobs under -race on a small box are slow.
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	v, _ := s.Job(id)
	t.Fatalf("job %s never reached a terminal state (now %s)", id, v.State)
	return JobView{}
}

func submitOK(t *testing.T, s *Server, spec Spec) JobView {
	t.Helper()
	v, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %+v: %v", spec, err)
	}
	return v
}

func TestSubmitHappyPath(t *testing.T) {
	var ran atomic.Int32
	s := newTestServer(t, testConfig(t), func(j *Job) error {
		ran.Add(1)
		return nil
	})
	v := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	if v.State != StateQueued || v.ID == "" || v.Hash == "" {
		t.Fatalf("accepted view = %+v", v)
	}
	v = waitState(t, s, v.ID)
	if v.State != StateCompleted || v.Attempt != 1 {
		t.Fatalf("terminal view = %+v, want completed on first attempt", v)
	}
	if ran.Load() != 1 {
		t.Fatalf("execute ran %d times, want 1", ran.Load())
	}
}

func TestSubmitRejectsInvalid(t *testing.T) {
	s := newTestServer(t, testConfig(t), func(*Job) error { return nil })
	for name, spec := range map[string]Spec{
		"unknown experiment": {Experiment: "no-such-figure"},
		"unknown scale":      {Experiment: "failover", Scale: "galactic"},
		"bad fault DSL":      {Experiment: "failover", Fault: "exploding-teapot"},
		"bad duration":       {Experiment: "failover", RunTimeout: "five minutes"},
		"chaos past end":     {Experiment: "failover", Scale: "tiny", ChaosPanicAt: "1h"},
		"negative retries":   {Experiment: "failover", Retries: intp(-1)},
	} {
		_, err := s.Submit(spec)
		var rej *RejectError
		if !errors.As(err, &rej) || rej.Code != 400 {
			t.Errorf("%s: err = %v, want 400 RejectError", name, err)
		}
	}
}

func intp(v int) *int { return &v }

// TestAdmissionQueueFull pins the bounded-queue contract: with all workers
// wedged and the queue full, the next submission is a 429 with Retry-After.
func TestAdmissionQueueFull(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 2
	cfg.TenantMax = 100
	block := make(chan struct{})
	s := newTestServer(t, cfg, func(*Job) error { <-block; return nil })
	defer close(block)

	// One running + two queued fills the queue. Wait for the worker to pop
	// the first job before filling, or it would count against the queue.
	ids := make([]string, 0, 3)
	ids = append(ids, submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny", Seed: 1}).ID)
	waitRunning(t, s, 1)
	for i := 1; i < 3; i++ {
		ids = append(ids, submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)}).ID)
	}

	_, err := s.Submit(Spec{Experiment: "failover", Scale: "tiny", Seed: 99})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != 429 || rej.Reason != "queue_full" {
		t.Fatalf("overload submit: err = %v, want 429 queue_full", err)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want a real hint", rej.RetryAfter)
	}
	_ = ids
}

// waitRunning polls until n jobs are running.
func waitRunning(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		r := s.running
		s.mu.Unlock()
		if r >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d running jobs", n)
}

// TestAdmissionTenantCap pins per-tenant isolation: one tenant at its cap
// gets 429s while another tenant is still admitted.
func TestAdmissionTenantCap(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.TenantMax = 2
	cfg.QueueDepth = 100
	block := make(chan struct{})
	s := newTestServer(t, cfg, func(*Job) error { <-block; return nil })
	defer close(block)

	for i := 0; i < 2; i++ {
		submitOK(t, s, Spec{Tenant: "greedy", Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)})
	}
	_, err := s.Submit(Spec{Tenant: "greedy", Experiment: "failover", Scale: "tiny", Seed: 3})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != 429 || rej.Reason != "tenant_cap" {
		t.Fatalf("capped tenant: err = %v, want 429 tenant_cap", err)
	}
	if _, err := s.Submit(Spec{Tenant: "modest", Experiment: "failover", Scale: "tiny"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestRetryTransientThenSucceed pins the backoff path: wall-budget failures
// are transient and retried until the attempt succeeds.
func TestRetryTransientThenSucceed(t *testing.T) {
	var calls atomic.Int32
	s := newTestServer(t, testConfig(t), func(j *Job) error {
		if calls.Add(1) < 3 {
			return fmt.Errorf("run wedged: %w", core.ErrWallBudget)
		}
		return nil
	})
	v := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	v = waitState(t, s, v.ID)
	if v.State != StateCompleted || v.Attempt != 3 {
		t.Fatalf("job = %+v, want completed on attempt 3", v)
	}
}

// TestRetryBudgetExhausted pins that transient failures still terminate:
// the retry budget bounds the loop.
func TestRetryBudgetExhausted(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxRetries = 2
	var calls atomic.Int32
	s := newTestServer(t, cfg, func(*Job) error {
		calls.Add(1)
		return fmt.Errorf("always wedged: %w", core.ErrWallBudget)
	})
	v := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	v = waitState(t, s, v.ID)
	if v.State != StateFailed || v.Attempt != 3 {
		t.Fatalf("job = %+v, want failed after 1+2 attempts", v)
	}
	if calls.Load() != 3 {
		t.Fatalf("execute ran %d times, want 3", calls.Load())
	}
}

// TestPanicRetriedOncePerHash pins the deterministic-crash rule: the first
// panic gets one retry (environmental benefit of the doubt); the same spec
// hash panicking again is permanent, regardless of remaining retry budget.
func TestPanicRetriedOncePerHash(t *testing.T) {
	var calls atomic.Int32
	s := newTestServer(t, testConfig(t), func(j *Job) error {
		calls.Add(1)
		return fmt.Errorf("serve: job %s: %w: boom", j.ID, exp.ErrPanic)
	})
	v := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	v = waitState(t, s, v.ID)
	if v.State != StateFailed || v.Attempt != 2 {
		t.Fatalf("job = %+v, want failed after exactly 2 attempts", v)
	}

	// A second job with the same spec (same hash) is now known-deterministic:
	// no retry at all.
	calls.Store(0)
	v2 := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	v2 = waitState(t, s, v2.ID)
	if v2.State != StateFailed || v2.Attempt != 1 {
		t.Fatalf("repeat job = %+v, want failed after 1 attempt", v2)
	}
}

// TestMaxEventsPermanent pins that event-budget kills — deterministic by
// construction — are never retried.
func TestMaxEventsPermanent(t *testing.T) {
	var calls atomic.Int32
	s := newTestServer(t, testConfig(t), func(*Job) error {
		calls.Add(1)
		return fmt.Errorf("run capped: %w", core.ErrMaxEvents)
	})
	v := submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny"})
	v = waitState(t, s, v.ID)
	if v.State != StateFailed || calls.Load() != 1 {
		t.Fatalf("job = %+v after %d calls, want failed after 1", v, calls.Load())
	}
}

// TestRetryableClassification pins the error-tree walk over the new
// SweepError/RunError Unwrap methods: all-transient sweeps retry, anything
// permanent in the mix pins the job down.
func TestRetryableClassification(t *testing.T) {
	s, err := New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	defer s.journal.Close()
	j := &Job{Hash: "h"}
	sweep := func(errs ...error) error {
		se := &exp.SweepError{Total: len(errs)}
		for i, e := range errs {
			se.Failed = append(se.Failed, exp.RunError{Label: fmt.Sprintf("r%d", i), Err: e})
		}
		return fmt.Errorf("sweep: %w", se)
	}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"all wall-budget", sweep(fmt.Errorf("x: %w", core.ErrWallBudget), fmt.Errorf("y: %w", core.ErrWallBudget)), true},
		{"mixed wall+events", sweep(fmt.Errorf("x: %w", core.ErrWallBudget), fmt.Errorf("y: %w", core.ErrMaxEvents)), false},
		{"plain failure", sweep(errors.New("bad route")), false},
		{"bare wall-budget", fmt.Errorf("x: %w", core.ErrWallBudget), true},
		{"shed", fmt.Errorf("x: %w", errShed), true},
		{"unknown", errors.New("mystery"), false},
	}
	for _, tc := range cases {
		if got := s.retryable(j, tc.err); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestShedRoutesThroughRetry pins load shedding: queued jobs are shed
// newest-first into the backoff path and finish once pressure clears.
func TestShedRoutesThroughRetry(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 10
	cfg.TenantMax = 10
	block := make(chan struct{})
	var calls atomic.Int32
	s := newTestServer(t, cfg, func(*Job) error {
		calls.Add(1)
		<-block
		return nil
	})

	// One running, three queued.
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		ids = append(ids, submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)}).ID)
	}
	waitRunning(t, s, 1)
	s.shed() // sheds ceil(3/2)=2 newest queued jobs into backoff

	s.mu.Lock()
	qlen := len(s.queue)
	backoff := 0
	for _, id := range ids {
		if s.jobs[id].State == StateBackoff {
			backoff++
		}
	}
	s.mu.Unlock()
	if qlen != 1 || backoff != 2 {
		t.Fatalf("after shed: queue=%d backoff=%d, want 1 and 2", qlen, backoff)
	}

	close(block)
	for _, id := range ids {
		if v := waitState(t, s, id); v.State != StateCompleted {
			t.Fatalf("job %s = %+v, want completed after pressure cleared", id, v)
		}
	}
}

// TestMemWatchSheds pins the polling path end to end with a fake heap
// reading: pressure on → shed; pressure off → recovery.
func TestMemWatchSheds(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 10
	cfg.TenantMax = 10
	cfg.MemSoftLimit = 1 << 30
	cfg.MemCheckEvery = time.Millisecond
	var pressured atomic.Bool
	cfg.memStats = func() uint64 {
		if pressured.Load() {
			return 2 << 30
		}
		return 1 << 20
	}
	block := make(chan struct{})
	s := newTestServer(t, cfg, func(*Job) error { <-block; return nil })
	defer close(block)

	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, submitOK(t, s, Spec{Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)}).ID)
	}
	waitRunning(t, s, 1)
	pressured.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		shed := s.jobs[ids[2]].State == StateBackoff
		s.mu.Unlock()
		if shed {
			pressured.Store(false)
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("memory watcher never shed the newest queued job")
}

// TestHTTPAPI drives the full HTTP surface: submit, list, get, SSE events,
// healthz, and the rejection mappings.
func TestHTTPAPI(t *testing.T) {
	cfg := testConfig(t)
	s := newTestServer(t, cfg, func(*Job) error { return nil })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Invalid JSON and unknown fields are 400s.
	for _, body := range []string{"{not json", `{"experiment":"failover","bogus_field":1}`} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("bad body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"failover","scale":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 202 || v.ID == "" {
		t.Fatalf("submit: status %d view %+v, want 202 with ID", resp.StatusCode, v)
	}
	waitState(t, s, v.ID)

	// Get and list see the job.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobView
	_ = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != StateCompleted {
		t.Fatalf("GET job = %+v, want completed", got)
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("GET missing job: status %d, want 404", resp.StatusCode)
	}

	// SSE: a terminal job's stream replays its history and ends.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sse := readAll(t, resp)
	if !strings.Contains(sse, "event: state") || !strings.Contains(sse, "data: completed") {
		t.Fatalf("SSE stream missing terminal state:\n%s", sse)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestDrainRejectsNewWork pins the 503 during shutdown.
func TestDrainRejectsNewWork(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(c); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
	_, err = s.Submit(Spec{Experiment: "failover", Scale: "tiny"})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != 503 {
		t.Fatalf("submit while draining: %v, want 503", err)
	}
}

// TestSpecHashNormalization pins hash identity: equivalent specs (defaults
// spelled out or omitted) share a hash; different specs don't.
func TestSpecHashNormalization(t *testing.T) {
	a := Spec{Experiment: "failover"}
	b := Spec{Experiment: "failover", Tenant: "anon", Scale: "small", Jobs: 1}
	if a.Hash() != b.Hash() {
		t.Fatalf("equivalent specs hash differently: %s vs %s", a.Hash(), b.Hash())
	}
	c := Spec{Experiment: "failover", Seed: 7}
	if a.Hash() == c.Hash() {
		t.Fatal("different specs share a hash")
	}
}
