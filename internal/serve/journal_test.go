package serve

import (
	"context"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// abandon simulates a SIGKILL: the journal file handle is dropped without a
// drain, leaving accepted-but-unfinished records behind. (A real kill is
// exercised in CI's serve-smoke job; in-process we can't stop goroutines
// abruptly, so these tests never Start the doomed server.)
func abandon(s *Server) { _ = s.journal.Close() }

// TestJournalResume pins crash recovery: jobs accepted before a kill are
// re-enqueued on restart, complete, and the ID sequence continues.
func TestJournalResume(t *testing.T) {
	cfg := testConfig(t)

	// First process: accept three jobs, die before any work happens.
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := a.Submit(Spec{Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	abandon(a)

	// Second process: the journal resurrects all three.
	var ran atomic.Int32
	b := newTestServer(t, cfg, func(*Job) error { ran.Add(1); return nil })
	for _, id := range ids {
		if v := waitState(t, b, id); v.State != StateCompleted {
			t.Fatalf("resumed job %s = %+v, want completed", id, v)
		}
	}
	if ran.Load() != 3 {
		t.Fatalf("resumed executions = %d, want 3", ran.Load())
	}
	// New submissions continue the ID sequence past the resumed ones.
	v, err := b.Submit(Spec{Experiment: "failover", Scale: "tiny", Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "j4" {
		t.Fatalf("post-resume ID = %s, want j4", v.ID)
	}
}

// TestResumeIdempotentByHash pins dedupe across restarts: an unfinished job
// whose spec hash already completed adopts the completed run's artifacts
// instead of re-executing.
func TestResumeIdempotentByHash(t *testing.T) {
	cfg := testConfig(t)
	spec := Spec{Experiment: "failover", Scale: "tiny", Seed: 7}

	// First process: complete the spec once, then accept a duplicate and die
	// before it runs.
	a := newTestServer(t, cfg, func(*Job) error { return nil })
	v1, err := a.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, a, v1.ID)
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Drain(c); err != nil {
		t.Fatal(err)
	}
	// Append the duplicate accept by hand — the drained server rejects new
	// work, which is exactly the window a crash-before-run leaves behind.
	jl, err := openJournal(cfg.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRec{Ev: "accept", ID: "j2", Hash: spec.Hash(), Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	// Second process: the duplicate completes instantly, pointing at the
	// original artifacts, without executing anything.
	var ran atomic.Int32
	b := newTestServer(t, cfg, func(*Job) error { ran.Add(1); return nil })
	v2 := waitState(t, b, "j2")
	if v2.State != StateCompleted || v2.ArtifactDir != done.ArtifactDir {
		t.Fatalf("duplicate = %+v, want completed with artifacts %s", v2, done.ArtifactDir)
	}
	if ran.Load() != 0 {
		t.Fatalf("duplicate executed %d times, want 0", ran.Load())
	}
}

// TestResumeSkipsTerminalAndTornRecords pins replay robustness: done jobs
// are not re-run, and a torn final line (half-written during the kill) is
// skipped without poisoning the rest.
func TestResumeSkipsTerminalAndTornRecords(t *testing.T) {
	cfg := testConfig(t)
	a := newTestServer(t, cfg, func(*Job) error { return nil })
	v, err := a.Submit(Spec{Experiment: "failover", Scale: "tiny", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, a, v.ID)
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Drain(c); err != nil {
		t.Fatal(err)
	}
	// Tear the journal the way a mid-write SIGKILL would.
	f, err := os.OpenFile(journalPath(cfg.DataDir), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":"accept","id":"j9","ha`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var ran atomic.Int32
	b := newTestServer(t, cfg, func(*Job) error { ran.Add(1); return nil })
	got, ok := b.Job(v.ID)
	if !ok || got.State != StateCompleted {
		t.Fatalf("terminal job after replay = %+v", got)
	}
	if _, ok := b.Job("j9"); ok {
		t.Fatal("torn record resurrected a job")
	}
	if ran.Load() != 0 {
		t.Fatalf("replay re-ran %d completed jobs, want 0", ran.Load())
	}
}

// TestResumeFailsUnresolvableSpec pins that a journaled spec that no longer
// validates (say the experiment was renamed) fails cleanly on restart
// instead of crashing the resume.
func TestResumeFailsUnresolvableSpec(t *testing.T) {
	cfg := testConfig(t)
	jl, err := openJournal(cfg.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	bad := Spec{Experiment: "retired-figure"}
	if err := jl.append(journalRec{Ev: "accept", ID: "j1", Hash: bad.Hash(), Spec: &bad}); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	s := newTestServer(t, cfg, func(*Job) error { return nil })
	v, ok := s.Job("j1")
	if !ok || v.State != StateFailed || v.Error == "" {
		t.Fatalf("unresolvable resumed job = %+v, want failed with an error", v)
	}
}

// TestDrainDefersQueuedJobs pins the shutdown contract: jobs still queued
// when the drain deadline hits stay unfinished in the journal and resume on
// the next start.
func TestDrainDefersQueuedJobs(t *testing.T) {
	cfg := testConfig(t)
	cfg.Workers = 1
	cfg.QueueDepth = 10
	cfg.TenantMax = 10
	block := make(chan struct{})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.execute = func(*Job) error { <-block; return nil }
	s.Start()
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := s.Submit(Spec{Experiment: "failover", Scale: "tiny", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	waitRunning(t, s, 1)
	go func() {
		// Let the running job finish once the drain has started.
		time.Sleep(20 * time.Millisecond)
		close(block)
	}()
	c, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(c); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if v, _ := s.Job(ids[0]); v.State != StateCompleted {
		t.Fatalf("running job after drain = %+v, want completed", v)
	}

	// Restart: the two never-started jobs come back and complete.
	b := newTestServer(t, cfg, func(*Job) error { return nil })
	for _, id := range ids[1:] {
		if v := waitState(t, b, id); v.State != StateCompleted {
			t.Fatalf("deferred job %s = %+v, want completed after restart", id, v)
		}
	}
}
