package arena

import "testing"

func TestGetReturnsRequestedCapacity(t *testing.T) {
	var a Pool[int]
	for _, n := range []int{1, 2, 3, 7, 8, 9, 100, 1 << 10, (1 << 10) + 1} {
		s := a.Get(n)
		if len(s) != 0 || cap(s) < n {
			t.Fatalf("Get(%d): len=%d cap=%d", n, len(s), cap(s))
		}
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	var a Pool[int]
	s := a.Get(100)
	s = append(s, 1, 2, 3)
	a.Put(s)
	r := a.Get(100)
	if cap(r) < 100 || len(r) != 0 {
		t.Fatalf("recycled: len=%d cap=%d", len(r), cap(r))
	}
	if a.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", a.Hits())
	}
	// Zeroed on Put: stale contents must not leak through a reslice.
	r = r[:3]
	if r[0] != 0 || r[1] != 0 || r[2] != 0 {
		t.Fatalf("recycled array not zeroed: %v", r)
	}
}

func TestPointerSlicesZeroedOnPut(t *testing.T) {
	var a Pool[*int]
	x := new(int)
	s := a.Get(8)
	s = append(s, x, x, x)
	a.Put(s)
	full := s[:cap(s)]
	for i, p := range full {
		if p != nil {
			t.Fatalf("element %d still pins pointer after Put", i)
		}
	}
}

func TestLooseFitOneClassUp(t *testing.T) {
	var a Pool[byte]
	a.Put(make([]byte, 0, 16))
	if s := a.Get(7); cap(s) < 16 {
		// class 3 empty; class 4's array is an acceptable loose fit
		t.Fatalf("Get(7) allocated fresh (cap=%d) with a class-up array available", cap(s))
	}
	if a.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", a.Hits())
	}
}

func TestClassRetentionBounded(t *testing.T) {
	var a Pool[int]
	for i := 0; i < 3*maxPerClass; i++ {
		a.Put(make([]int, 0, 64))
	}
	if got := len(a.classes[6]); got != maxPerClass {
		t.Fatalf("class retained %d arrays, want %d", got, maxPerClass)
	}
}

func TestDegenerateInputs(t *testing.T) {
	var a Pool[byte]
	a.Put(nil)             // no-op
	a.Put(make([]byte, 0)) // zero cap: no-op
	if s := a.Get(0); cap(s) < 1 {
		t.Fatalf("Get(0) returned cap %d", cap(s))
	}
	// Above the largest recyclable class: served exactly, never recycled.
	big := a.Get(1 << numClasses)
	if cap(big) < 1<<numClasses {
		t.Fatalf("oversized Get returned cap %d", cap(big))
	}
	a.Put(big)
	if a.Get(1<<numClasses) != nil && a.Hits() != 0 {
		t.Fatal("oversized array was recycled")
	}
}
