// Package arena recycles slice backing arrays across many short-lived
// owners. A million-flow run churns through reorder buffers, in-flight
// FIFOs and similar burst-grown scratch arrays whose peak size is set by a
// moment of congestion, not by the flow that happens to own them; holding
// every burst-grown array on its owner pins O(total owners) memory, while
// freeing them makes the next burst reallocate. A shared arena does
// neither: owners return oversized arrays when they quiesce and the next
// burst — wherever it lands — reuses them, keeping steady-state memory
// proportional to concurrent burstiness.
//
// Pools are not safe for concurrent use; each simulation engine owns its
// own (one engine == one goroutine, matching the rest of the simulator).
package arena

import "math/bits"

const (
	// numClasses bounds recyclable capacities at 2^(numClasses-1) elements;
	// anything larger is left to the garbage collector.
	numClasses = 24
	// maxPerClass bounds how many arrays one size class retains. Beyond it,
	// Put drops the array: the arena adapts down after a burst instead of
	// holding its high-water mark forever.
	maxPerClass = 16
)

// Pool recycles backing arrays of one element type, bucketed by
// power-of-two capacity class.
type Pool[T any] struct {
	classes [numClasses][][]T
	hits    uint64
	misses  uint64
}

// Get returns a zero-length slice with capacity at least n, reusing a
// recycled backing array when one is available. Elements are zeroed.
func (a *Pool[T]) Get(n int) []T {
	if n < 1 {
		n = 1
	}
	c := classFor(n)
	// The exact class always satisfies n; one class up avoids an allocation
	// when the fit is merely loose.
	for k := c; k <= c+1 && k < numClasses; k++ {
		if l := len(a.classes[k]); l > 0 {
			s := a.classes[k][l-1]
			a.classes[k][l-1] = nil
			a.classes[k] = a.classes[k][:l-1]
			a.hits++
			return s
		}
	}
	a.misses++
	if c >= numClasses {
		return make([]T, 0, n)
	}
	return make([]T, 0, 1<<c)
}

// Put recycles s's backing array for a future Get. The array is zeroed so
// recycled pointer slices do not pin their former contents. Oversized and
// zero-capacity arrays, and arrays landing in a full class, are dropped.
func (a *Pool[T]) Put(s []T) {
	n := cap(s)
	if n == 0 {
		return
	}
	c := bits.Len(uint(n)) - 1 // floor class: every array here has cap >= 1<<c
	if c >= numClasses || len(a.classes[c]) >= maxPerClass {
		return
	}
	s = s[:n]
	clear(s)
	a.classes[c] = append(a.classes[c], s[:0])
}

// Hits returns how many Gets were served from recycled arrays.
func (a *Pool[T]) Hits() uint64 { return a.hits }

// Misses returns how many Gets had to allocate.
func (a *Pool[T]) Misses() uint64 { return a.misses }

// classFor returns the smallest class c with 1<<c >= n.
func classFor(n int) int { return bits.Len(uint(n - 1)) }
