package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// Tracer is a fabric observer that writes one line per dataplane event —
// the simulator's analogue of a fleet-wide packet capture. Use a flow
// filter to keep traces tractable; an unfiltered trace of a busy run is
// gigabytes.
//
// Line format (space-separated):
//
//	<time_ns> <event> sw=<id> port=<p> flow=<f> seq=<s> rfs=<r> extra...
type Tracer struct {
	eng  *sim.Engine
	w    *bufio.Writer
	flow uint64 // 0 = trace everything
	// Lines counts emitted events.
	Lines int64
}

// NewTracer returns a tracer writing to w; flow filters to one flow ID
// (0 traces all flows — beware volume).
func NewTracer(eng *sim.Engine, w io.Writer, flow uint64) *Tracer {
	return &Tracer{eng: eng, w: bufio.NewWriter(w), flow: flow}
}

// Flush drains buffered trace lines; call at simulation end.
func (t *Tracer) Flush() error { return t.w.Flush() }

func (t *Tracer) want(p *packet.Packet) bool { return t.flow == 0 || p.Flow == t.flow }

func (t *Tracer) emit(event string, sw, port int, p *packet.Packet, extra string) {
	if !t.want(p) {
		return
	}
	t.Lines++
	fmt.Fprintf(t.w, "%d %s sw=%d port=%d kind=%s flow=%d seq=%d rfs=%d hops=%d defl=%d%s\n",
		int64(t.eng.Now()), event, sw, port, p.Kind, p.Flow, p.Seq,
		p.Rank(), p.Hops, p.Deflections, extra)
}

// Enqueue implements fabric.Observer.
func (t *Tracer) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	t.emit("enq", sw, port, p, fmt.Sprintf(" occ=%d", int64(occ)))
}

// Transmit implements fabric.Observer.
func (t *Tracer) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	t.emit("tx", sw, port, p, fmt.Sprintf(" busy=%d", int64(busy)))
}

// Deflect implements fabric.Observer.
func (t *Tracer) Deflect(sw, fromPort, toPort int, p *packet.Packet) {
	t.emit("deflect", sw, fromPort, p, fmt.Sprintf(" to=%d", toPort))
}

// Drop implements fabric.Observer.
func (t *Tracer) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	t.emit("drop", sw, port, p, " reason="+reason.String())
}

// Deliver implements fabric.Observer.
func (t *Tracer) Deliver(host int, p *packet.Packet) {
	t.emit("deliver", -1, host, p, "")
}

// Tee fans one fabric event stream out to several observers (e.g. a Monitor
// plus a Tracer).
type Tee []interface {
	Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize)
	Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize)
	Deflect(sw, fromPort, toPort int, p *packet.Packet)
	Drop(sw, port int, p *packet.Packet, reason metrics.DropReason)
	Deliver(host int, p *packet.Packet)
}

// Enqueue implements fabric.Observer.
func (t Tee) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	for _, o := range t {
		o.Enqueue(sw, port, p, occ)
	}
}

// Transmit implements fabric.Observer.
func (t Tee) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	for _, o := range t {
		o.Transmit(sw, port, p, busy, occ)
	}
}

// Deflect implements fabric.Observer.
func (t Tee) Deflect(sw, fromPort, toPort int, p *packet.Packet) {
	for _, o := range t {
		o.Deflect(sw, fromPort, toPort, p)
	}
}

// Drop implements fabric.Observer.
func (t Tee) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	for _, o := range t {
		o.Drop(sw, port, p, reason)
	}
}

// Deliver implements fabric.Observer.
func (t Tee) Deliver(host int, p *packet.Packet) {
	for _, o := range t {
		o.Deliver(host, p)
	}
}
