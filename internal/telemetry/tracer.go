package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// Tracer is a fabric observer that writes one line per dataplane event —
// the simulator's analogue of a fleet-wide packet capture. Use a flow
// filter to keep traces tractable; an unfiltered trace of a busy run is
// gigabytes.
//
// Text line format (space-separated):
//
//	<time_ns> <event> sw=<id> port=<p> flow=<f> seq=<s> rfs=<r> extra...
//
// JSONL mode (NewJSONTracer) writes the same events as one JSON object per
// line, the trace.jsonl artifact format:
//
//	{"t":<ns>,"ev":"enq","sw":1,"port":2,"kind":"data","flow":7,...,"occ":4500}
type Tracer struct {
	eng   *sim.Engine
	w     *bufio.Writer
	flow  uint64 // 0 = trace everything
	jsonl bool
	// Lines counts emitted events.
	Lines int64
}

// NewTracer returns a tracer writing text lines to w; flow filters to one
// flow ID (0 traces all flows — beware volume).
func NewTracer(eng *sim.Engine, w io.Writer, flow uint64) *Tracer {
	return &Tracer{eng: eng, w: bufio.NewWriter(w), flow: flow}
}

// NewJSONTracer is NewTracer emitting one JSON object per event (JSONL).
func NewJSONTracer(eng *sim.Engine, w io.Writer, flow uint64) *Tracer {
	t := NewTracer(eng, w, flow)
	t.jsonl = true
	return t
}

// Flush drains buffered trace lines; call at simulation end.
func (t *Tracer) Flush() error { return t.w.Flush() }

func (t *Tracer) want(p *packet.Packet) bool { return t.flow == 0 || p.Flow == t.flow }

// emit writes one event. extraKey/extraNum carry the event-specific numeric
// field (occ, busy, to); extraStr carries drop's reason. Event names, packet
// kinds and drop reasons are fixed identifier strings, so the hand-rolled
// JSON needs no escaping.
func (t *Tracer) emit(event string, sw, port int, p *packet.Packet, extraKey string, extraNum int64, extraStr string) {
	if !t.want(p) {
		return
	}
	t.Lines++
	if t.jsonl {
		fmt.Fprintf(t.w, `{"t":%d,"ev":"%s","sw":%d,"port":%d,"kind":"%s","flow":%d,"seq":%d,"rfs":%d,"hops":%d,"defl":%d`,
			int64(t.eng.Now()), event, sw, port, p.Kind, p.Flow, p.Seq,
			p.Rank(), p.Hops, p.Deflections)
		if extraStr != "" {
			fmt.Fprintf(t.w, `,"%s":"%s"`, extraKey, extraStr)
		} else if extraKey != "" {
			fmt.Fprintf(t.w, `,"%s":%d`, extraKey, extraNum)
		}
		t.w.WriteString("}\n")
		return
	}
	fmt.Fprintf(t.w, "%d %s sw=%d port=%d kind=%s flow=%d seq=%d rfs=%d hops=%d defl=%d",
		int64(t.eng.Now()), event, sw, port, p.Kind, p.Flow, p.Seq,
		p.Rank(), p.Hops, p.Deflections)
	if extraStr != "" {
		fmt.Fprintf(t.w, " %s=%s", extraKey, extraStr)
	} else if extraKey != "" {
		fmt.Fprintf(t.w, " %s=%d", extraKey, extraNum)
	}
	t.w.WriteByte('\n')
}

// Enqueue implements fabric.Observer.
func (t *Tracer) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	t.emit("enq", sw, port, p, "occ", int64(occ), "")
}

// Transmit implements fabric.Observer.
func (t *Tracer) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	t.emit("tx", sw, port, p, "busy", int64(busy), "")
}

// Deflect implements fabric.Observer.
func (t *Tracer) Deflect(sw, fromPort, toPort int, p *packet.Packet) {
	t.emit("deflect", sw, fromPort, p, "to", int64(toPort), "")
}

// Drop implements fabric.Observer.
func (t *Tracer) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	t.emit("drop", sw, port, p, "reason", 0, reason.String())
}

// Deliver implements fabric.Observer.
func (t *Tracer) Deliver(host int, p *packet.Packet) {
	t.emit("deliver", -1, host, p, "", 0, "")
}
