package telemetry

import (
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// Observer is the consumer side of the fabric's dataplane event stream: the
// method set of fabric.Observer restated here, so probes and the Multi mux
// compose without importing the fabric package. Any fabric.Observer value
// satisfies it (and vice versa) by Go's structural interface conversion.
type Observer interface {
	Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize)
	Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize)
	Deflect(sw, fromPort, toPort int, p *packet.Packet)
	Drop(sw, port int, p *packet.Packet, reason metrics.DropReason)
	Deliver(host int, p *packet.Packet)
}

// Multi fans one dataplane event stream out to several observers in
// attachment order, so a Monitor, a Tracer and a Sampler can all watch the
// same run. Allocation happens only at attach time; the fan-out itself is a
// plain slice walk with no per-event allocation. The zero value is an empty,
// usable mux.
//
// A Multi is not safe for concurrent mutation; attach every probe before the
// simulation starts, as all observer callbacks run on the simulator thread.
type Multi struct {
	obs []Observer
}

// NewMulti returns a mux over the given observers. Nil entries are skipped
// and nested Multis are flattened, so composing compositions never double-
// indirects the hot path.
func NewMulti(obs ...Observer) *Multi {
	m := &Multi{}
	for _, o := range obs {
		m.Add(o)
	}
	return m
}

// Add attaches one more observer (nil is a no-op, a *Multi is flattened).
func (m *Multi) Add(o Observer) {
	switch v := o.(type) {
	case nil:
	case *Multi:
		if v != nil {
			m.obs = append(m.obs, v.obs...)
		}
	default:
		m.obs = append(m.obs, o)
	}
}

// Len returns the number of attached observers.
func (m *Multi) Len() int { return len(m.obs) }

// Enqueue implements fabric.Observer.
func (m *Multi) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	for _, o := range m.obs {
		o.Enqueue(sw, port, p, occ)
	}
}

// Transmit implements fabric.Observer.
func (m *Multi) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	for _, o := range m.obs {
		o.Transmit(sw, port, p, busy, occ)
	}
}

// Deflect implements fabric.Observer.
func (m *Multi) Deflect(sw, fromPort, toPort int, p *packet.Packet) {
	for _, o := range m.obs {
		o.Deflect(sw, fromPort, toPort, p)
	}
}

// Drop implements fabric.Observer.
func (m *Multi) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	for _, o := range m.obs {
		o.Drop(sw, port, p, reason)
	}
}

// Deliver implements fabric.Observer.
func (m *Multi) Deliver(host int, p *packet.Packet) {
	for _, o := range m.obs {
		o.Deliver(host, p)
	}
}
