// Package telemetry implements the network-monitoring integration the paper
// leaves as future work (§5): with deflection in play, packet drops no
// longer reveal transient congestion, so a telemetry system must track link
// utilization, queue occupancy and per-packet deflection counts instead.
// The Monitor implements fabric.Observer and derives exactly those signals,
// including a microburst detector in the style of BurstRadar: episodes of
// high queue occupancy classified by duration (microbursts last under a
// millisecond, per the Facebook measurements the paper cites [76]).
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// Config parameterizes the monitor.
type Config struct {
	// BurstThreshold starts a congestion episode when a queue's occupancy
	// reaches this many bytes (default: half the paper's 300 KB buffer).
	BurstThreshold units.ByteSize
	// BurstClear ends the episode when occupancy falls back below this
	// (default: a quarter of the buffer), giving hysteresis.
	BurstClear units.ByteSize
	// MicroburstMax classifies episodes at most this long as microbursts
	// (default 1 ms, the paper's defining bound).
	MicroburstMax units.Time
}

// DefaultConfig returns thresholds matched to the paper's 300 KB ports.
func DefaultConfig() Config {
	return Config{
		BurstThreshold: 150 * units.KB,
		BurstClear:     75 * units.KB,
		MicroburstMax:  units.Millisecond,
	}
}

// PortKey identifies one egress port; Switch == -1 is a host NIC.
type PortKey struct {
	Switch, Port int
}

func (k PortKey) String() string {
	if k.Switch < 0 {
		return fmt.Sprintf("host%d.nic", k.Port)
	}
	return fmt.Sprintf("s%d.p%d", k.Switch, k.Port)
}

// Episode is one congestion event on a port.
type Episode struct {
	Port     PortKey
	Start    units.Time
	Duration units.Time
	Peak     units.ByteSize
}

// Microburst reports whether the episode is microburst-length.
func (e Episode) Microburst(max units.Time) bool { return e.Duration <= max }

// PortStats aggregates one port's counters.
type PortStats struct {
	Key         PortKey
	BusyTime    units.Time // cumulative serialization time
	TxPackets   int64
	TxBytes     int64
	HighWater   units.ByteSize // max queue occupancy seen
	Drops       int64
	Deflections int64 // deflections away from this port

	inEpisode    bool
	episodeStart units.Time
	episodePeak  units.ByteSize
}

// Utilization returns the port's link utilization over the elapsed time.
func (p *PortStats) Utilization(elapsed units.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(p.BusyTime) / float64(elapsed)
}

// Monitor collects fabric telemetry. Attach with fabric.Network.SetObserver.
type Monitor struct {
	eng   *sim.Engine
	cfg   Config
	ports map[PortKey]*PortStats

	episodes []Episode
	// Fault stream (see fault.go): every transition, plus the open carrier
	// losses and completed time-to-recover samples derived from it.
	faults     []FaultEvent
	linkDownAt map[int]units.Time
	ttrs       []units.Time
	// DeflectionHist[n] counts delivered data packets that were deflected
	// exactly n times (n capped at len-1).
	DeflectionHist [17]int64
	// DeflPerPacket is the same distribution as a log-bucketed
	// metrics.Histogram, uncapped and serializable into run artifacts.
	DeflPerPacket metrics.Histogram
	Delivered     int64
}

// NewMonitor returns a monitor reading simulated time from eng.
func NewMonitor(eng *sim.Engine, cfg Config) *Monitor {
	def := DefaultConfig()
	if cfg.BurstThreshold <= 0 {
		cfg.BurstThreshold = def.BurstThreshold
	}
	if cfg.BurstClear <= 0 || cfg.BurstClear >= cfg.BurstThreshold {
		cfg.BurstClear = cfg.BurstThreshold / 2
	}
	if cfg.MicroburstMax <= 0 {
		cfg.MicroburstMax = def.MicroburstMax
	}
	return &Monitor{eng: eng, cfg: cfg, ports: make(map[PortKey]*PortStats)}
}

func (m *Monitor) port(sw, port int) *PortStats {
	k := PortKey{sw, port}
	ps, ok := m.ports[k]
	if !ok {
		ps = &PortStats{Key: k}
		m.ports[k] = ps
	}
	return ps
}

// Enqueue implements fabric.Observer.
func (m *Monitor) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	ps := m.port(sw, port)
	if occ > ps.HighWater {
		ps.HighWater = occ
	}
	m.track(ps, occ)
}

// Transmit implements fabric.Observer.
func (m *Monitor) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	ps := m.port(sw, port)
	ps.BusyTime += busy
	ps.TxPackets++
	ps.TxBytes += int64(p.Size())
	m.track(ps, occ)
}

// Deflect implements fabric.Observer.
func (m *Monitor) Deflect(sw, fromPort, toPort int, p *packet.Packet) {
	m.port(sw, fromPort).Deflections++
}

// Drop implements fabric.Observer.
func (m *Monitor) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	if port < 0 {
		port = 0
	}
	m.port(sw, port).Drops++
}

// Deliver implements fabric.Observer.
func (m *Monitor) Deliver(host int, p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	m.Delivered++
	m.DeflPerPacket.Observe(int64(p.Deflections))
	n := p.Deflections
	if n >= len(m.DeflectionHist) {
		n = len(m.DeflectionHist) - 1
	}
	m.DeflectionHist[n]++
}

// track runs the occupancy episode state machine.
func (m *Monitor) track(ps *PortStats, occ units.ByteSize) {
	now := m.eng.Now()
	switch {
	case !ps.inEpisode && occ >= m.cfg.BurstThreshold:
		ps.inEpisode = true
		ps.episodeStart = now
		ps.episodePeak = occ
	case ps.inEpisode && occ > ps.episodePeak:
		ps.episodePeak = occ
	case ps.inEpisode && occ <= m.cfg.BurstClear:
		ps.inEpisode = false
		m.episodes = append(m.episodes, Episode{
			Port:     ps.Key,
			Start:    ps.episodeStart,
			Duration: now - ps.episodeStart,
			Peak:     ps.episodePeak,
		})
	}
}

// Finish closes episodes still open at simulation end.
func (m *Monitor) Finish() {
	now := m.eng.Now()
	for _, ps := range m.ports {
		if ps.inEpisode {
			ps.inEpisode = false
			m.episodes = append(m.episodes, Episode{
				Port:     ps.Key,
				Start:    ps.episodeStart,
				Duration: now - ps.episodeStart,
				Peak:     ps.episodePeak,
			})
		}
	}
}

// Episodes returns all recorded congestion episodes.
func (m *Monitor) Episodes() []Episode { return m.episodes }

// Microbursts returns the episodes short enough to be microbursts.
func (m *Monitor) Microbursts() []Episode {
	var out []Episode
	for _, e := range m.episodes {
		if e.Microburst(m.cfg.MicroburstMax) {
			out = append(out, e)
		}
	}
	return out
}

// Ports returns per-port stats sorted by descending utilization.
func (m *Monitor) Ports(elapsed units.Time) []*PortStats {
	out := make([]*PortStats, 0, len(m.ports))
	for _, ps := range m.ports {
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyTime != out[j].BusyTime {
			return out[i].BusyTime > out[j].BusyTime
		}
		return out[i].Key.String() < out[j].Key.String()
	})
	return out
}

// WriteReport renders a monitoring summary: hot ports, congestion episodes,
// and the deflections-per-delivered-packet histogram.
func (m *Monitor) WriteReport(w io.Writer, elapsed units.Time, topN int) {
	ports := m.Ports(elapsed)
	if topN > len(ports) {
		topN = len(ports)
	}
	fmt.Fprintf(w, "telemetry: %d ports observed over %v\n", len(ports), elapsed)
	fmt.Fprintf(w, "%-14s %-8s %-10s %-10s %-8s %-8s\n",
		"port", "util", "highwater", "txpkts", "drops", "defl")
	for _, ps := range ports[:topN] {
		fmt.Fprintf(w, "%-14s %-8s %-10v %-10d %-8d %-8d\n",
			ps.Key, fmt.Sprintf("%.1f%%", 100*ps.Utilization(elapsed)),
			ps.HighWater, ps.TxPackets, ps.Drops, ps.Deflections)
	}
	micro := m.Microbursts()
	fmt.Fprintf(w, "congestion episodes: %d total, %d microbursts (<= %v)\n",
		len(m.episodes), len(micro), m.cfg.MicroburstMax)
	if len(m.faults) > 0 {
		fmt.Fprintf(w, "fault events: %d", len(m.faults))
		if len(m.ttrs) > 0 {
			fmt.Fprintf(w, ", %d link recoveries (mean TTR %v)",
				len(m.ttrs), metrics.Mean(m.ttrs))
		}
		fmt.Fprintln(w)
	}
	var hist strings.Builder
	for n, c := range m.DeflectionHist {
		if c > 0 && n > 0 {
			fmt.Fprintf(&hist, " %dx:%d", n, c)
		}
	}
	if hist.Len() > 0 {
		fmt.Fprintf(w, "deflections per delivered packet:%s (of %d delivered)\n",
			hist.String(), m.Delivered)
	}
}
