package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// SamplerConfig parameterizes the time-series sampler.
type SamplerConfig struct {
	// Tick is the sampling period (default 100 µs: fine enough to resolve
	// the sub-millisecond episodes the paper is about, coarse enough that a
	// full run stays megabytes).
	Tick units.Time
	// MaxSamples caps retained samples (default 1<<20); once reached, later
	// samples are counted in Truncated and discarded. Negative = unlimited.
	MaxSamples int
}

// DefaultSamplerConfig returns the default sampling parameters.
func DefaultSamplerConfig() SamplerConfig {
	return SamplerConfig{Tick: 100 * units.Microsecond, MaxSamples: 1 << 20}
}

// Sample is one point of the per-port time series: queue occupancy at the
// tick instant and link utilization over the preceding tick.
type Sample struct {
	Time  units.Time
	Port  PortKey
	Queue units.ByteSize
	Util  float64
}

// Sampler records per-port queue occupancy and utilization on a fixed tick,
// the occupancy *time series* (not end-of-run aggregates) that buffer-sizing
// work says actually explains behaviour under bursts. It observes the fabric
// event stream to track instantaneous state and snapshots it from a
// self-rescheduling engine event; idle ports (empty queue, idle link over
// the whole tick) produce no sample, so quiet fabrics stay cheap.
//
// Attach with fabric.Network.AddObserver and call Start before the run.
type Sampler struct {
	eng  *sim.Engine
	cfg  SamplerConfig
	ends units.Time

	ports map[PortKey]*portState
	order []PortKey // first-seen order: deterministic iteration
	tick  func()    // prebuilt tick closure, scheduled once per period

	samples   []Sample
	truncated int64
	marks     []FaultEvent // fault annotations (see fault.go)

	// DepthHist is the log-bucketed distribution of queue occupancy (bytes)
	// observed at every enqueue — the queue-depth histogram of the run.
	DepthHist metrics.Histogram
}

// portState is one port's state accumulated since the last tick.
type portState struct {
	occ  units.ByteSize // occupancy after the most recent enqueue/dequeue
	busy units.Time     // serialization time started during this tick
}

// NewSampler returns a sampler reading simulated time from eng.
func NewSampler(eng *sim.Engine, cfg SamplerConfig) *Sampler {
	def := DefaultSamplerConfig()
	if cfg.Tick <= 0 {
		cfg.Tick = def.Tick
	}
	if cfg.MaxSamples == 0 {
		cfg.MaxSamples = def.MaxSamples
	}
	s := &Sampler{eng: eng, cfg: cfg, ports: make(map[PortKey]*portState)}
	s.tick = s.onTick
	return s
}

// Start schedules sampling ticks up to (and including) until.
func (s *Sampler) Start(until units.Time) {
	s.ends = until
	if s.cfg.Tick <= until {
		s.eng.SchedAfter(s.cfg.Tick, s.tick)
	}
}

func (s *Sampler) onTick() {
	now := s.eng.Now()
	for _, k := range s.order {
		ps := s.ports[k]
		if ps.occ == 0 && ps.busy == 0 {
			continue
		}
		util := float64(ps.busy) / float64(s.cfg.Tick)
		ps.busy = 0
		if s.cfg.MaxSamples >= 0 && len(s.samples) >= s.cfg.MaxSamples {
			s.truncated++
			continue
		}
		s.samples = append(s.samples, Sample{Time: now, Port: k, Queue: ps.occ, Util: util})
	}
	if now+s.cfg.Tick <= s.ends {
		// Self-rescheduling tick: the firing frame is reused in place.
		s.eng.SchedAfter(s.cfg.Tick, s.tick)
	}
}

func (s *Sampler) port(sw, port int) *portState {
	k := PortKey{sw, port}
	ps, ok := s.ports[k]
	if !ok {
		ps = &portState{}
		s.ports[k] = ps
		s.order = append(s.order, k)
	}
	return ps
}

// Enqueue implements fabric.Observer.
func (s *Sampler) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	s.port(sw, port).occ = occ
	s.DepthHist.Observe(int64(occ))
}

// Transmit implements fabric.Observer.
func (s *Sampler) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	ps := s.port(sw, port)
	ps.occ = occ
	ps.busy += busy
}

// Deflect implements fabric.Observer.
func (s *Sampler) Deflect(sw, fromPort, toPort int, p *packet.Packet) {}

// Drop implements fabric.Observer.
func (s *Sampler) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {}

// Deliver implements fabric.Observer.
func (s *Sampler) Deliver(host int, p *packet.Packet) {}

// Samples returns the recorded series in (time, first-seen port) order.
func (s *Sampler) Samples() []Sample { return s.samples }

// Truncated returns how many samples were discarded to the MaxSamples cap.
func (s *Sampler) Truncated() int64 { return s.truncated }

// Tick returns the effective sampling period.
func (s *Sampler) Tick() units.Time { return s.cfg.Tick }

// WriteCSV renders the series as samples.csv rows. A non-empty runLabel is
// prepended to every row so series from many runs can share one file.
func (s *Sampler) WriteCSV(w io.Writer, runLabel string, header bool) error {
	cw := csv.NewWriter(w)
	if header {
		if err := cw.Write(SamplesCSVHeader()); err != nil {
			return err
		}
	}
	for _, sm := range s.samples {
		rec := []string{
			runLabel,
			strconv.FormatInt(int64(sm.Time), 10),
			sm.Port.String(),
			strconv.FormatInt(int64(sm.Queue), 10),
			strconv.FormatFloat(sm.Util, 'f', 4, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	// Fault annotations share the schema: the port column carries the
	// transition (e.g. "fault:link-down:5"), queue/util are zero. Plotting
	// tools can split on the "fault:" prefix to draw the fault timeline.
	for _, ev := range s.marks {
		subject := ev.Link
		if ev.Switch >= 0 {
			subject = ev.Switch
		}
		rec := []string{
			runLabel,
			strconv.FormatInt(int64(ev.Time), 10),
			fmt.Sprintf("fault:%s:%d", ev.Kind, subject),
			"0",
			"0",
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("telemetry: writing samples: %w", err)
	}
	return nil
}

// SamplesCSVHeader returns the samples.csv column names.
func SamplesCSVHeader() []string {
	return []string{"run", "time_ns", "port", "queue_bytes", "util"}
}
