package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vertigo/internal/sim"
	"vertigo/internal/units"
)

func TestMultiFaultFanOut(t *testing.T) {
	eng := sim.NewEngine(1)
	mon := NewMonitor(eng, Config{})
	samp := NewSampler(eng, SamplerConfig{})
	var buf bytes.Buffer
	tr := NewJSONTracer(eng, &buf, 0)
	mux := NewMulti(mon, samp, tr)

	ev := FaultEvent{Time: units.Millisecond, Kind: FaultLinkDown, Link: 4, Switch: -1}
	mux.Fault(ev)
	mux.Fault(FaultEvent{Time: 3 * units.Millisecond, Kind: FaultLinkUp, Link: 4, Switch: -1})

	if got := mon.Faults(); len(got) != 2 || got[0] != ev {
		t.Fatalf("monitor recorded %v", got)
	}
	ttrs := mon.TimesToRecover()
	if len(ttrs) != 1 || ttrs[0] != 2*units.Millisecond {
		t.Fatalf("TTRs = %v, want one 2ms recovery", ttrs)
	}
	if marks := samp.FaultMarks(); len(marks) != 2 {
		t.Fatalf("sampler marks = %v", marks)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Ev   string `json:"ev"`
		Kind string `json:"kind"`
		Link int    `json:"link"`
	}
	first := strings.SplitN(buf.String(), "\n", 2)[0]
	if err := json.Unmarshal([]byte(first), &rec); err != nil {
		t.Fatalf("tracer line %q: %v", first, err)
	}
	if rec.Ev != "fault" || rec.Kind != "link-down" || rec.Link != 4 {
		t.Fatalf("tracer record = %+v", rec)
	}
}

func TestMonitorUnpairedDownHasNoTTR(t *testing.T) {
	mon := NewMonitor(sim.NewEngine(1), Config{})
	mon.Fault(FaultEvent{Time: units.Millisecond, Kind: FaultLinkDown, Link: 1, Switch: -1})
	// A second down on the same link must not restart the outage clock.
	mon.Fault(FaultEvent{Time: 2 * units.Millisecond, Kind: FaultLinkDown, Link: 1, Switch: -1})
	if len(mon.TimesToRecover()) != 0 {
		t.Fatal("TTR recorded without a recovery")
	}
	mon.Fault(FaultEvent{Time: 5 * units.Millisecond, Kind: FaultLinkUp, Link: 1, Switch: -1})
	ttrs := mon.TimesToRecover()
	if len(ttrs) != 1 || ttrs[0] != 4*units.Millisecond {
		t.Fatalf("TTRs = %v, want 4ms from the first down", ttrs)
	}
}

func TestSamplerCSVFaultAnnotations(t *testing.T) {
	eng := sim.NewEngine(1)
	samp := NewSampler(eng, SamplerConfig{})
	samp.Fault(FaultEvent{Time: units.Millisecond, Kind: FaultLinkDown, Link: 7, Switch: -1})
	samp.Fault(FaultEvent{Time: 2 * units.Millisecond, Kind: FaultSwitchDown, Link: -1, Switch: 3})
	var buf bytes.Buffer
	if err := samp.WriteCSV(&buf, "run1", true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fault:link-down:7") {
		t.Errorf("link fault annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "fault:switch-down:3") {
		t.Errorf("switch fault annotation subject should be the switch ID:\n%s", out)
	}
}
