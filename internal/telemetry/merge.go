package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// MergeSamplers folds the per-domain samplers of a sharded run into one
// series in canonical order: samples by (time, switch, port), fault marks by
// (time, kind, link, switch). The canonical order is a property of the
// scenario alone — which domain recorded a sample is an artifact of the
// partition — so merged samples.csv output is byte-identical for any shard
// count. Nil entries are skipped; the result is detached from any engine and
// only good for reading (Samples, WriteCSV and friends).
func MergeSamplers(parts []*Sampler) *Sampler {
	out := &Sampler{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		if out.cfg.Tick == 0 {
			out.cfg, out.ends = p.cfg, p.ends
		}
		out.samples = append(out.samples, p.samples...)
		out.marks = append(out.marks, p.marks...)
		out.truncated += p.truncated
		out.DepthHist.Merge(&p.DepthHist)
	}
	sort.SliceStable(out.samples, func(i, j int) bool {
		a, b := &out.samples[i], &out.samples[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Port.Switch != b.Port.Switch {
			return a.Port.Switch < b.Port.Switch
		}
		return a.Port.Port < b.Port.Port
	})
	sort.SliceStable(out.marks, func(i, j int) bool {
		a, b := &out.marks[i], &out.marks[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		return a.Switch < b.Switch
	})
	return out
}

// MergeJSONLTraces merges per-domain JSONL packet traces (as captured into
// per-domain buffers by a sharded run) and writes the merged stream to w.
// Every tracer line — dataplane events and fault annotations alike — leads
// with `{"t":<time>`, so lines sort canonically by (time, line bytes);
// like the sampler merge, the result is independent of the shard count.
func MergeJSONLTraces(w io.Writer, parts [][]byte) error {
	type line struct {
		t   int64
		raw []byte
	}
	var lines []line
	for _, part := range parts {
		for len(part) > 0 {
			nl := bytes.IndexByte(part, '\n')
			var raw []byte
			if nl < 0 {
				raw, part = part, nil
			} else {
				raw, part = part[:nl], part[nl+1:]
			}
			if len(raw) == 0 {
				continue
			}
			t, err := traceLineTime(raw)
			if err != nil {
				return err
			}
			lines = append(lines, line{t: t, raw: raw})
		}
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].t != lines[j].t {
			return lines[i].t < lines[j].t
		}
		return bytes.Compare(lines[i].raw, lines[j].raw) < 0
	})
	bw := bufio.NewWriter(w)
	for _, l := range lines {
		bw.Write(l.raw)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// traceLineTime extracts the timestamp from a tracer JSONL line's leading
// `{"t":<digits>` prefix.
func traceLineTime(raw []byte) (int64, error) {
	const pre = `{"t":`
	if len(raw) < len(pre) || string(raw[:len(pre)]) != pre {
		return 0, fmt.Errorf("telemetry: merge: trace line without %q prefix: %.40s", pre, raw)
	}
	rest := raw[len(pre):]
	end := 0
	for end < len(rest) && (rest[end] == '-' || (rest[end] >= '0' && rest[end] <= '9')) {
		end++
	}
	t, err := strconv.ParseInt(string(rest[:end]), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: merge: bad trace timestamp in %.40s: %w", raw, err)
	}
	return t, nil
}
