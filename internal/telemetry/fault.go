package telemetry

import (
	"fmt"

	"vertigo/internal/units"
)

// FaultKind classifies a fault-injection transition (see internal/faults).
type FaultKind int

// Fault kinds.
const (
	FaultLinkDown FaultKind = iota
	FaultLinkUp
	FaultSwitchDown
	FaultSwitchUp
	FaultCorrupt // per-link bit-error rate changed
	FaultDegrade // per-link rate factor changed (brownout)
	FaultFIBHeal // control plane installed recomputed routes
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultSwitchDown:
		return "switch-down"
	case FaultSwitchUp:
		return "switch-up"
	case FaultCorrupt:
		return "corrupt"
	case FaultDegrade:
		return "degrade"
	case FaultFIBHeal:
		return "fib-heal"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent is one fault transition applied to the running fabric. Link and
// Switch are -1 when not applicable; Value carries the kind-specific scalar
// (bit-error rate for FaultCorrupt, rate factor for FaultDegrade).
type FaultEvent struct {
	Time   units.Time
	Kind   FaultKind
	Link   int
	Switch int
	Value  float64
}

func (e FaultEvent) String() string {
	switch {
	case e.Kind == FaultCorrupt || e.Kind == FaultDegrade:
		return fmt.Sprintf("%v %s link=%d val=%g", e.Time, e.Kind, e.Link, e.Value)
	case e.Switch >= 0:
		return fmt.Sprintf("%v %s sw=%d", e.Time, e.Kind, e.Switch)
	case e.Link >= 0:
		return fmt.Sprintf("%v %s link=%d", e.Time, e.Kind, e.Link)
	}
	return fmt.Sprintf("%v %s", e.Time, e.Kind)
}

// FaultObserver is the optional extension of Observer for probes that want
// the fault-injection event stream alongside the dataplane one. The fabric
// type-asserts its attached observer, so plain Observers keep working
// unchanged.
type FaultObserver interface {
	Fault(ev FaultEvent)
}

// Fault implements FaultObserver for the mux: the event fans out to every
// attached observer that cares about faults.
func (m *Multi) Fault(ev FaultEvent) {
	for _, o := range m.obs {
		if fo, ok := o.(FaultObserver); ok {
			fo.Fault(ev)
		}
	}
}

// Fault implements FaultObserver for the Monitor: events are retained for
// reporting and carrier losses are paired with recoveries into per-link
// time-to-recover samples.
func (m *Monitor) Fault(ev FaultEvent) {
	m.faults = append(m.faults, ev)
	switch ev.Kind {
	case FaultLinkDown:
		if m.linkDownAt == nil {
			m.linkDownAt = make(map[int]units.Time)
		}
		if _, down := m.linkDownAt[ev.Link]; !down {
			m.linkDownAt[ev.Link] = ev.Time
		}
	case FaultLinkUp:
		if at, down := m.linkDownAt[ev.Link]; down {
			delete(m.linkDownAt, ev.Link)
			m.ttrs = append(m.ttrs, ev.Time-at)
		}
	}
}

// Faults returns every fault event observed, in injection order.
func (m *Monitor) Faults() []FaultEvent { return m.faults }

// TimesToRecover returns the carrier-loss durations of links that recovered.
func (m *Monitor) TimesToRecover() []units.Time { return m.ttrs }

// Fault implements FaultObserver for the Tracer: one "fault" record per
// transition, in the same text/JSONL stream as the dataplane events.
func (t *Tracer) Fault(ev FaultEvent) {
	t.Lines++
	if t.jsonl {
		fmt.Fprintf(t.w, `{"t":%d,"ev":"fault","kind":"%s","link":%d,"sw":%d,"val":%g}`+"\n",
			int64(ev.Time), ev.Kind, ev.Link, ev.Switch, ev.Value)
		return
	}
	fmt.Fprintf(t.w, "%d fault kind=%s link=%d sw=%d val=%g\n",
		int64(ev.Time), ev.Kind, ev.Link, ev.Switch, ev.Value)
}

// Fault implements FaultObserver for the Sampler: fault transitions become
// annotation marks that WriteCSV interleaves with the series, so plots of
// queue/utilization can draw the fault timeline without a second artifact.
func (s *Sampler) Fault(ev FaultEvent) {
	s.marks = append(s.marks, ev)
}

// FaultMarks returns the fault annotations recorded alongside the series.
func (s *Sampler) FaultMarks() []FaultEvent { return s.marks }
