package telemetry_test

import (
	"strings"
	"testing"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

func samplerRun(t *testing.T, tick units.Time) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.SimTime = 10 * units.Millisecond
	cfg.BGLoad = 0.3
	cfg.IncastScale = 8
	cfg.IncastFlowSize = 40000
	cfg.SetIncastLoad(0.4)
	cfg.SampleTick = tick
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSamplerRecordsTimeSeries(t *testing.T) {
	tick := 50 * units.Microsecond
	res := samplerRun(t, tick)
	s := res.Sampler
	if s == nil {
		t.Fatal("SampleTick set but Result.Sampler is nil")
	}
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("busy 16-host run produced no samples")
	}
	var lastT units.Time
	seenNIC, seenSwitch := false, false
	for _, sm := range samples {
		if sm.Time%tick != 0 {
			t.Fatalf("sample at %v not on the %v tick grid", sm.Time, tick)
		}
		if sm.Time < lastT {
			t.Fatal("samples not in time order")
		}
		lastT = sm.Time
		if sm.Util < 0 || sm.Util > 1.5 {
			t.Fatalf("implausible utilization %.3f at %v", sm.Util, sm.Time)
		}
		if sm.Queue < 0 {
			t.Fatalf("negative occupancy %v", sm.Queue)
		}
		if sm.Port.Switch < 0 {
			seenNIC = true
		} else {
			seenSwitch = true
		}
	}
	if !seenNIC || !seenSwitch {
		t.Errorf("series covers NICs=%v switches=%v, want both", seenNIC, seenSwitch)
	}
	if s.DepthHist.Count() == 0 {
		t.Error("queue-depth histogram empty despite traffic")
	}
	if s.Truncated() != 0 {
		t.Errorf("default cap truncated %d samples in a tiny run", s.Truncated())
	}
}

func TestSamplerDoesNotDisturbMetrics(t *testing.T) {
	// Observability must be read-only: the same scenario with and without
	// the sampler attached must produce identical summaries.
	with := samplerRun(t, 50*units.Microsecond).Summary
	without := samplerRun(t, 0).Summary
	if with.PacketsSent != without.PacketsSent || with.MeanFCT != without.MeanFCT ||
		with.Drops != without.Drops || with.Deflections != without.Deflections {
		t.Errorf("sampler perturbed the simulation:\nwith    %+v\nwithout %+v", with, without)
	}
}

func TestSamplerCSV(t *testing.T) {
	res := samplerRun(t, 100*units.Microsecond)
	var sb strings.Builder
	if err := res.Sampler.WriteCSV(&sb, "run-a", true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != strings.Join(telemetry.SamplesCSVHeader(), ",") {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != len(res.Sampler.Samples())+1 {
		t.Fatalf("%d lines for %d samples", len(lines), len(res.Sampler.Samples()))
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "run-a,") {
			t.Fatalf("row missing run label: %q", l)
		}
	}
}

func TestSamplerTruncationCap(t *testing.T) {
	eng := sim.NewEngine(1)
	s := telemetry.NewSampler(eng, telemetry.SamplerConfig{
		Tick: units.Microsecond, MaxSamples: 3,
	})
	s.Start(10 * units.Microsecond)
	// Keep one port visibly busy across every tick.
	for i := 0; i < 10; i++ {
		at := units.Time(i) * units.Microsecond
		eng.At(at, func() { s.Enqueue(0, 0, nil, 1000) })
	}
	eng.Run(10 * units.Microsecond)
	if got := len(s.Samples()); got != 3 {
		t.Fatalf("%d samples retained, want 3 (capped)", got)
	}
	if s.Truncated() != 7 {
		t.Fatalf("truncated %d, want 7", s.Truncated())
	}
}
