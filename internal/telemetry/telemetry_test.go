package telemetry_test

import (
	"strings"
	"testing"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

func telemetryRun(t *testing.T, policy fabric.Policy) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig(policy, transport.DCTCP)
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.SimTime = 30 * units.Millisecond
	cfg.BGLoad = 0.2
	cfg.IncastScale = 8
	cfg.IncastFlowSize = 40000
	cfg.SetIncastLoad(0.5)
	cfg.Telemetry = true
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMonitorObservesFabric(t *testing.T) {
	res := telemetryRun(t, fabric.Vertigo)
	mon := res.Telemetry
	if mon == nil {
		t.Fatal("no monitor attached")
	}
	ports := mon.Ports(res.Summary.Duration)
	if len(ports) == 0 {
		t.Fatal("no ports observed")
	}
	// The busiest port must show real utilization but never above 100%
	// (plus jitter slack).
	top := ports[0]
	util := top.Utilization(res.Summary.Duration)
	if util <= 0.05 || util > 1.1 {
		t.Fatalf("top port utilization %.3f implausible", util)
	}
	if top.TxPackets == 0 || top.HighWater == 0 {
		t.Fatalf("top port missing counters: %+v", top)
	}
	if mon.Delivered != res.Summary.PacketsRecv {
		t.Fatalf("monitor delivered %d, collector says %d", mon.Delivered, res.Summary.PacketsRecv)
	}
}

func TestMonitorSeesDeflectionsWithoutDrops(t *testing.T) {
	// The §5 scenario: deflection hides congestion from drop counters, but
	// the monitor still detects it via episodes and deflection histograms.
	res := telemetryRun(t, fabric.Vertigo)
	mon := res.Telemetry
	if res.Summary.Deflections == 0 {
		t.Skip("scenario produced no deflections; retune")
	}
	multi := int64(0)
	for n, c := range mon.DeflectionHist {
		if n > 0 {
			multi += c
		}
	}
	if multi == 0 {
		t.Fatal("deflections occurred but no delivered packet shows a deflection count")
	}
	if len(mon.Episodes()) == 0 {
		t.Fatal("congestion episodes not detected despite deflection activity")
	}
}

func TestMicroburstClassification(t *testing.T) {
	res := telemetryRun(t, fabric.ECMP)
	mon := res.Telemetry
	eps := mon.Episodes()
	if len(eps) == 0 {
		t.Fatal("no episodes under incast on ECMP")
	}
	micro := mon.Microbursts()
	for _, e := range micro {
		if e.Duration > units.Millisecond {
			t.Fatalf("microburst longer than 1ms: %+v", e)
		}
	}
	if len(micro) == 0 {
		t.Error("incast produced no sub-millisecond congestion episodes")
	}
}

func TestWriteReport(t *testing.T) {
	res := telemetryRun(t, fabric.Vertigo)
	var sb strings.Builder
	res.Telemetry.WriteReport(&sb, res.Summary.Duration, 5)
	out := sb.String()
	for _, want := range []string{"telemetry:", "port", "congestion episodes"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	t.Log("\n" + out)
}

func TestPortKeyString(t *testing.T) {
	if (telemetry.PortKey{Switch: -1, Port: 3}).String() != "host3.nic" {
		t.Error("host NIC key format")
	}
	if (telemetry.PortKey{Switch: 2, Port: 5}).String() != "s2.p5" {
		t.Error("switch port key format")
	}
}

func TestTracerEmitsLifecycle(t *testing.T) {
	var buf strings.Builder
	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.SimTime = 5 * units.Millisecond
	cfg.BGLoad = 0
	cfg.IncastQPS = 0
	cfg.Trace = traceOf(3)
	cfg.PacketTrace = &buf
	cfg.PacketTraceFlow = 1 // the first flow started gets ID 1
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.FlowsCompleted != 3 {
		t.Fatalf("flows %d, want 3", res.Summary.FlowsCompleted)
	}
	out := buf.String()
	for _, want := range []string{"enq", "tx", "deliver", "flow=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
	if strings.Contains(out, "flow=2 ") || strings.Contains(out, "flow=3 ") {
		t.Error("flow filter leaked other flows into the trace")
	}
}

func traceOf(n int) *workload.Trace {
	tr := &workload.Trace{}
	for i := 0; i < n; i++ {
		tr.Flows = append(tr.Flows, workload.TraceFlow{
			At: units.Time(i) * units.Microsecond, Src: i % 3, Dst: 3, Size: 30_000,
		})
	}
	return tr
}

// fatTreeRun exercises telemetry on the three-tier fat-tree k=8 (128 hosts)
// under Vertigo deflection — the prior tests above all ride the leaf-spine
// path. Incast over moderate background forces deflections at the edge.
func fatTreeRun(t *testing.T, trace *strings.Builder) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.Kind = core.FatTree
	cfg.FatTreeCfg = topo.FatTreeConfig{
		K: 8, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond,
	}
	cfg.SimTime = 4 * units.Millisecond
	cfg.BGLoad = 0.3
	cfg.IncastScale = 32
	cfg.IncastFlowSize = 40000
	cfg.SetIncastLoad(0.5)
	cfg.Telemetry = true
	if trace != nil {
		cfg.PacketTrace = trace
		cfg.PacketTraceFlow = 1
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMonitorOnFatTreeVertigo(t *testing.T) {
	if testing.Short() {
		t.Skip("128-host fat-tree simulation")
	}
	res := fatTreeRun(t, nil)
	mon := res.Telemetry
	if mon == nil {
		t.Fatal("no monitor attached")
	}
	if res.Summary.Deflections == 0 {
		t.Fatal("fat-tree incast scenario produced no deflections; retune")
	}
	ports := mon.Ports(res.Summary.Duration)
	if len(ports) == 0 {
		t.Fatal("no ports observed")
	}
	// A k=8 fat-tree has multi-port switches; telemetry must see beyond the
	// two-uplink leaf-spine shape: some observed switch port index >= 4.
	deepPort := false
	var deflSum int64
	for _, ps := range ports {
		if ps.Key.Switch >= 0 && ps.Key.Port >= 4 {
			deepPort = true
		}
		deflSum += ps.Deflections
	}
	if !deepPort {
		t.Error("no high-index switch ports observed; fat-tree radix not exercised")
	}
	if deflSum == 0 {
		t.Error("fabric deflected but no port shows Deflections")
	}
	if mon.DeflPerPacket.Count() != uint64(mon.Delivered) {
		t.Errorf("deflection histogram has %d observations, %d delivered",
			mon.DeflPerPacket.Count(), mon.Delivered)
	}
	if mon.DeflPerPacket.Max() == 0 {
		t.Error("no delivered packet records a deflection despite fabric deflections")
	}
	if len(mon.Episodes()) == 0 {
		t.Error("no congestion episodes under 32-way incast")
	}
	if top := ports[0]; top.Utilization(res.Summary.Duration) <= 0.05 {
		t.Errorf("top port utilization %.3f implausibly low", top.Utilization(res.Summary.Duration))
	}
}

func TestTracerOnFatTreeVertigo(t *testing.T) {
	if testing.Short() {
		t.Skip("128-host fat-tree simulation")
	}
	var trace strings.Builder
	res := fatTreeRun(t, &trace)
	if res.Summary.PacketsRecv == 0 {
		t.Fatal("nothing delivered")
	}
	out := trace.String()
	for _, want := range []string{"enq", "tx", "deliver", "flow=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("fat-tree trace missing %q", want)
		}
	}
	if strings.Contains(out, "flow=2 ") {
		t.Error("flow filter leaked other flows")
	}
	// On a three-tier fabric the traced flow's packets cross core switches:
	// hops beyond the leaf-spine maximum of 3 must appear... only if the
	// flow was routed upward; at minimum the trace shows multi-hop forwarding.
	if !strings.Contains(out, "hops=2") {
		t.Error("traced flow never forwarded beyond its ToR")
	}
}
