package telemetry

import (
	"reflect"
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// recordObserver logs which events it saw, tagged with its own name, into a
// shared log so fan-out order is checkable.
type recordObserver struct {
	name string
	log  *[]string
}

func (r *recordObserver) rec(ev string) { *r.log = append(*r.log, r.name+":"+ev) }

func (r *recordObserver) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) {
	r.rec("enq")
}
func (r *recordObserver) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	r.rec("tx")
}
func (r *recordObserver) Deflect(sw, fromPort, toPort int, p *packet.Packet) { r.rec("deflect") }
func (r *recordObserver) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	r.rec("drop")
}
func (r *recordObserver) Deliver(host int, p *packet.Packet) { r.rec("deliver") }

func TestMultiFansOutInOrder(t *testing.T) {
	var log []string
	a := &recordObserver{"a", &log}
	b := &recordObserver{"b", &log}
	m := NewMulti(a, b)
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	p := &packet.Packet{}
	m.Enqueue(0, 1, p, 1500)
	m.Transmit(0, 1, p, units.Microsecond, 0)
	m.Deflect(0, 1, 2, p)
	m.Drop(0, 1, p, metrics.DropOverflow)
	m.Deliver(3, p)
	want := []string{
		"a:enq", "b:enq", "a:tx", "b:tx", "a:deflect", "b:deflect",
		"a:drop", "b:drop", "a:deliver", "b:deliver",
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("fan-out log %v, want %v", log, want)
	}
}

func TestMultiAddFlattensAndSkipsNil(t *testing.T) {
	var log []string
	a := &recordObserver{"a", &log}
	b := &recordObserver{"b", &log}
	c := &recordObserver{"c", &log}
	inner := NewMulti(a, b)
	m := NewMulti(nil, inner)
	m.Add(nil)
	m.Add((*Multi)(nil))
	m.Add(c)
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (flattened, nils skipped)", m.Len())
	}
	m.Deliver(0, &packet.Packet{})
	if want := []string{"a:deliver", "b:deliver", "c:deliver"}; !reflect.DeepEqual(log, want) {
		t.Errorf("log %v, want %v", log, want)
	}
}

func TestMultiZeroValueUsable(t *testing.T) {
	var m Multi
	m.Enqueue(0, 0, &packet.Packet{}, 0) // must not panic
	if m.Len() != 0 {
		t.Fatal("zero Multi non-empty")
	}
}
