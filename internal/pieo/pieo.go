// Package pieo implements the PIEO (Push-In-Extract-Out) programmable
// scheduler abstraction (Shrivastav, SIGCOMM'19) that the paper's switch
// prototype builds on (§4.4, §A.3): an ordered list of elements that
// supports push-in at rank order and extract-out of the smallest-ranked
// *eligible* element, where eligibility is a per-element predicate evaluated
// at dequeue time. Vertigo's appendix extends PIEO with extraction from the
// tail of the priority list — the operation its overflow handling needs —
// and this package implements that extension too.
//
// The structure mirrors the hardware design: the list is divided into
// ordered sublists of bounded size (≈2√N in the FPGA), so every mutation
// touches one sublist plus the block directory. In software this gives
// O(√N) inserts and extractions with small constants, and it is the backing
// store the fabric's rank-sorted queues can be compared against (see the
// BenchmarkPIEO* benchmarks).
package pieo

// Item is one scheduled element.
type Item[T any] struct {
	Value T
	// Rank orders the list ascending; among equal ranks, insertion order.
	Rank uint32
	// EligibleAt gates extraction: the element is eligible once the
	// caller-supplied "current time" is >= EligibleAt. Use 0 for
	// always-eligible (plain priority-queue behaviour).
	EligibleAt uint64
}

// List is a PIEO list. The zero value is empty and ready to use.
type List[T any] struct {
	blocks    [][]Item[T] // each block sorted by rank; blocks ordered
	size      int
	blockSize int
}

// NewList returns a PIEO list tuned for about capacity elements.
func NewList[T any](capacity int) *List[T] {
	bs := 8
	for bs*bs < capacity {
		bs *= 2
	}
	return &List[T]{blockSize: bs}
}

func (l *List[T]) ensureBlockSize() {
	if l.blockSize == 0 {
		l.blockSize = 32
	}
}

// Len returns the number of stored elements.
func (l *List[T]) Len() int { return l.size }

// Insert pushes it in at rank order (after equal ranks: FIFO among ties).
func (l *List[T]) Insert(it Item[T]) {
	l.ensureBlockSize()
	if len(l.blocks) == 0 {
		l.blocks = append(l.blocks, make([]Item[T], 0, l.blockSize))
	}
	// Find the target block: the first whose last element has rank > it.Rank;
	// otherwise the final block.
	bi := len(l.blocks) - 1
	for i, b := range l.blocks {
		if len(b) > 0 && b[len(b)-1].Rank > it.Rank {
			bi = i
			break
		}
	}
	b := l.blocks[bi]
	// Position within block: after all ranks <= it.Rank.
	lo, hi := 0, len(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if b[mid].Rank <= it.Rank {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, Item[T]{})
	copy(b[lo+1:], b[lo:])
	b[lo] = it
	l.blocks[bi] = b
	l.size++
	if len(b) > 2*l.blockSize {
		l.split(bi)
	}
}

// split divides an oversized block in two.
func (l *List[T]) split(bi int) {
	b := l.blocks[bi]
	mid := len(b) / 2
	left := b[:mid:mid]
	right := append(make([]Item[T], 0, l.blockSize*2), b[mid:]...)
	l.blocks = append(l.blocks, nil)
	copy(l.blocks[bi+2:], l.blocks[bi+1:])
	l.blocks[bi] = left
	l.blocks[bi+1] = right
}

// dropBlock removes an empty block.
func (l *List[T]) dropBlock(bi int) {
	l.blocks = append(l.blocks[:bi], l.blocks[bi+1:]...)
}

// ExtractMin removes and returns the smallest-ranked element eligible at
// now. It reports false when no element is eligible.
func (l *List[T]) ExtractMin(now uint64) (Item[T], bool) {
	for bi := 0; bi < len(l.blocks); bi++ {
		b := l.blocks[bi]
		for i := range b {
			if b[i].EligibleAt <= now {
				it := b[i]
				l.blocks[bi] = append(b[:i], b[i+1:]...)
				if len(l.blocks[bi]) == 0 {
					l.dropBlock(bi)
				}
				l.size--
				return it, true
			}
		}
	}
	var zero Item[T]
	return zero, false
}

// PeekMin returns the smallest-ranked eligible element without removing it.
func (l *List[T]) PeekMin(now uint64) (Item[T], bool) {
	for _, b := range l.blocks {
		for i := range b {
			if b[i].EligibleAt <= now {
				return b[i], true
			}
		}
	}
	var zero Item[T]
	return zero, false
}

// ExtractTail removes and returns the largest-ranked element regardless of
// eligibility — Vertigo's extension (§A.3), used to evict the packet with
// the largest remaining flow size from a full buffer. Among equal maximal
// ranks the youngest is extracted.
func (l *List[T]) ExtractTail() (Item[T], bool) {
	if l.size == 0 {
		var zero Item[T]
		return zero, false
	}
	bi := len(l.blocks) - 1
	for len(l.blocks[bi]) == 0 {
		l.dropBlock(bi)
		bi--
	}
	b := l.blocks[bi]
	it := b[len(b)-1]
	l.blocks[bi] = b[:len(b)-1]
	if len(l.blocks[bi]) == 0 {
		l.dropBlock(bi)
	}
	l.size--
	return it, true
}

// PeekTail returns the largest-ranked element without removing it.
func (l *List[T]) PeekTail() (Item[T], bool) {
	if l.size == 0 {
		var zero Item[T]
		return zero, false
	}
	for bi := len(l.blocks) - 1; bi >= 0; bi-- {
		if b := l.blocks[bi]; len(b) > 0 {
			return b[len(b)-1], true
		}
	}
	var zero Item[T]
	return zero, false
}

// ExtractWhere removes and returns the first element (in rank order) for
// which pred returns true — PIEO's "extract-out by filter" generalization.
func (l *List[T]) ExtractWhere(pred func(Item[T]) bool) (Item[T], bool) {
	for bi := 0; bi < len(l.blocks); bi++ {
		b := l.blocks[bi]
		for i := range b {
			if pred(b[i]) {
				it := b[i]
				l.blocks[bi] = append(b[:i], b[i+1:]...)
				if len(l.blocks[bi]) == 0 {
					l.dropBlock(bi)
				}
				l.size--
				return it, true
			}
		}
	}
	var zero Item[T]
	return zero, false
}

// Items returns the elements in rank order (a copy; for tests and
// inspection).
func (l *List[T]) Items() []Item[T] {
	out := make([]Item[T], 0, l.size)
	for _, b := range l.blocks {
		out = append(out, b...)
	}
	return out
}
