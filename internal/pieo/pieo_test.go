package pieo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertExtractMinOrder(t *testing.T) {
	l := NewList[int](64)
	ranks := []uint32{50, 10, 90, 30, 70, 20, 60}
	for i, r := range ranks {
		l.Insert(Item[int]{Value: i, Rank: r})
	}
	if l.Len() != len(ranks) {
		t.Fatalf("len %d, want %d", l.Len(), len(ranks))
	}
	prev := uint32(0)
	for l.Len() > 0 {
		it, ok := l.ExtractMin(0)
		if !ok {
			t.Fatal("extract failed with elements present")
		}
		if it.Rank < prev {
			t.Fatalf("extraction not ascending: %d after %d", it.Rank, prev)
		}
		prev = it.Rank
	}
	if _, ok := l.ExtractMin(0); ok {
		t.Fatal("extract from empty list succeeded")
	}
}

func TestEligibilityGating(t *testing.T) {
	l := NewList[string](8)
	l.Insert(Item[string]{Value: "later", Rank: 1, EligibleAt: 100})
	l.Insert(Item[string]{Value: "now", Rank: 5, EligibleAt: 0})
	// At t=0 the rank-1 element is ineligible: rank-5 must come out first.
	it, ok := l.ExtractMin(0)
	if !ok || it.Value != "now" {
		t.Fatalf("got %+v, want the eligible rank-5 element", it)
	}
	if _, ok := l.ExtractMin(50); ok {
		t.Fatal("ineligible element extracted")
	}
	it, ok = l.ExtractMin(100)
	if !ok || it.Value != "later" {
		t.Fatalf("got %+v at t=100", it)
	}
}

func TestExtractTail(t *testing.T) {
	l := NewList[int](64)
	for i, r := range []uint32{5, 40, 20, 40} {
		l.Insert(Item[int]{Value: i, Rank: r})
	}
	it, ok := l.ExtractTail()
	if !ok || it.Rank != 40 || it.Value != 3 {
		t.Fatalf("tail %+v, want the youngest rank-40 element (value 3)", it)
	}
	it, _ = l.ExtractTail()
	if it.Rank != 40 || it.Value != 1 {
		t.Fatalf("second tail %+v, want value 1", it)
	}
	if pt, ok := l.PeekTail(); !ok || pt.Rank != 20 {
		t.Fatalf("peek tail %+v, want rank 20", pt)
	}
}

func TestExtractWhere(t *testing.T) {
	l := NewList[int](64)
	for i := 0; i < 10; i++ {
		l.Insert(Item[int]{Value: i, Rank: uint32(i)})
	}
	it, ok := l.ExtractWhere(func(it Item[int]) bool { return it.Value%2 == 1 })
	if !ok || it.Value != 1 {
		t.Fatalf("ExtractWhere got %+v, want the rank-1 odd element", it)
	}
	if l.Len() != 9 {
		t.Fatalf("len %d after extraction", l.Len())
	}
	if _, ok := l.ExtractWhere(func(Item[int]) bool { return false }); ok {
		t.Fatal("ExtractWhere matched nothing but succeeded")
	}
}

func TestFIFOAmongEqualRanks(t *testing.T) {
	l := NewList[int](256)
	for i := 0; i < 100; i++ {
		l.Insert(Item[int]{Value: i, Rank: 7})
	}
	for i := 0; i < 100; i++ {
		it, _ := l.ExtractMin(0)
		if it.Value != i {
			t.Fatalf("tie order broken: got %d at %d", it.Value, i)
		}
	}
}

func TestBlockSplitting(t *testing.T) {
	// Insert enough ascending and descending runs to force splits.
	l := NewList[int](4) // tiny blocks: splits early
	const n = 1000
	for i := 0; i < n; i++ {
		l.Insert(Item[int]{Value: i, Rank: uint32((i * 7919) % 104729)})
	}
	if l.Len() != n {
		t.Fatalf("len %d, want %d", l.Len(), n)
	}
	items := l.Items()
	if !sort.SliceIsSorted(items, func(i, j int) bool { return items[i].Rank < items[j].Rank }) {
		t.Fatal("internal order violated after splits")
	}
}

// Property: a PIEO list with always-eligible items behaves exactly like a
// stable sort by rank.
func TestPropertyMatchesStableSort(t *testing.T) {
	f := func(ranks []uint32) bool {
		l := NewList[int](len(ranks))
		type tagged struct {
			rank uint32
			idx  int
		}
		want := make([]tagged, len(ranks))
		for i, r := range ranks {
			l.Insert(Item[int]{Value: i, Rank: r})
			want[i] = tagged{r, i}
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].rank < want[j].rank })
		for _, w := range want {
			it, ok := l.ExtractMin(0)
			if !ok || it.Rank != w.rank || it.Value != w.idx {
				return false
			}
		}
		return l.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved ExtractMin/ExtractTail always return the current
// min/max rank and never lose or duplicate elements.
func TestPropertyMinTailInterleaved(t *testing.T) {
	f := func(ranks []uint32, seed int64) bool {
		l := NewList[int](len(ranks))
		rng := rand.New(rand.NewSource(seed))
		var reference []uint32
		for _, r := range ranks {
			l.Insert(Item[int]{Rank: r})
			reference = append(reference, r)
			sort.Slice(reference, func(i, j int) bool { return reference[i] < reference[j] })
			if rng.Intn(3) == 0 && len(reference) > 0 {
				if rng.Intn(2) == 0 {
					it, ok := l.ExtractMin(0)
					if !ok || it.Rank != reference[0] {
						return false
					}
					reference = reference[1:]
				} else {
					it, ok := l.ExtractTail()
					if !ok || it.Rank != reference[len(reference)-1] {
						return false
					}
					reference = reference[:len(reference)-1]
				}
			}
		}
		return l.Len() == len(reference)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPIEOInsertExtract(b *testing.B) {
	l := NewList[int](256)
	// Steady state around 200 elements, like a switch port queue.
	for i := 0; i < 200; i++ {
		l.Insert(Item[int]{Rank: uint32(i * 2654435761)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(Item[int]{Rank: uint32(i * 2654435761)})
		l.ExtractMin(0)
	}
}

func BenchmarkPIEOTailExtraction(b *testing.B) {
	l := NewList[int](256)
	for i := 0; i < 200; i++ {
		l.Insert(Item[int]{Rank: uint32(i * 2654435761)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(Item[int]{Rank: uint32(i * 2654435761)})
		l.ExtractTail()
	}
}
