// Package core assembles the substrates into runnable scenarios: it builds
// the topology, fabric, hosts, transports and workloads from one Config,
// runs the event loop to the simulated deadline, and returns the metrics
// digest. This is the simulator's equivalent of the paper's OMNeT++
// scenario files.
package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vertigo/internal/fabric"
	"vertigo/internal/faults"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

// TopoKind selects a topology family.
type TopoKind int

// Topology kinds.
const (
	LeafSpine TopoKind = iota
	FatTree
)

func (k TopoKind) String() string {
	if k == FatTree {
		return "fattree"
	}
	return "leafspine"
}

// Config describes one simulation scenario.
type Config struct {
	Seed    int64
	SimTime units.Time

	// Topology. Exactly one of LeafSpineCfg/FatTreeCfg is used per Kind.
	Kind         TopoKind
	LeafSpineCfg topo.LeafSpineConfig
	FatTreeCfg   topo.FatTreeConfig

	Fabric    fabric.Config
	Transport transport.Config

	// VertigoStack enables the host marking/ordering components. It is
	// forced on when the fabric policy is Vertigo.
	VertigoStack bool
	Marker       host.MarkerConfig
	Orderer      host.OrdererConfig

	// Background traffic.
	BGLoad float64 // fraction of aggregate host capacity
	BGDist *workload.SizeDist
	// Trace, when non-nil, replays an explicit flow schedule in addition to
	// (or instead of) the synthetic background load.
	Trace *workload.Trace

	// Incast application.
	IncastQPS      float64
	IncastScale    int
	IncastFlowSize int64
	IncastPeriodic bool // fixed-interval queries instead of Poisson (§2)
	RequestDelay   units.Time

	// Telemetry attaches a monitoring observer to the fabric (§5).
	Telemetry       bool
	TelemetryConfig telemetry.Config
	// PacketTrace, when non-nil, receives one line per dataplane event
	// (fleet-wide packet capture); PacketTraceFlow filters to one flow
	// (0 = all flows — beware volume). PacketTraceJSON selects JSONL
	// (trace.jsonl) instead of text lines.
	PacketTrace     io.Writer
	PacketTraceFlow uint64
	PacketTraceJSON bool

	// SampleTick, when positive, attaches a telemetry.Sampler recording
	// per-port queue occupancy and utilization on that tick; the series is
	// returned in Result.Sampler.
	SampleTick units.Time

	// LinkFailures schedules dataplane link failures (an extension beyond
	// the paper: deflection-capable schemes route around carrier loss in
	// place, while ECMP/DRILL blackhole until the control plane would heal).
	// These are permanent; for transient faults use Faults.
	LinkFailures []LinkFailure

	// Faults, when non-empty, replays a fault schedule into the fabric:
	// transient link flaps, switch failures, bit-error corruption and rate
	// brownouts (see internal/faults).
	Faults *faults.Schedule
	// HealDelay, when positive, enables control-plane healing: HealDelay
	// after each Faults topology change, freshly computed FIBs that route
	// around everything still failed are installed fabric-wide. Zero leaves
	// the static FIBs in place (dataplane-only recovery).
	HealDelay units.Time
	// WallTimeout, when positive, bounds the run's real elapsed time; a run
	// that exceeds it aborts with an error (wrapping ErrWallBudget) rather
	// than hanging its worker.
	WallTimeout time.Duration
	// MaxEvents, when positive, bounds the run's event count; a run that
	// fires this many events aborts with an error wrapping ErrMaxEvents.
	// Unlike WallTimeout the cap is deterministic — a runaway scenario
	// aborts at the same event on every machine — so callers can classify
	// a capped run as a permanent failure not worth retrying.
	MaxEvents uint64
	// ChaosPanicAt, when positive, panics deliberately once simulated time
	// reaches it — a crash-drill fixture for the crash-isolation machinery
	// (sweep recover paths, vertigo-serve job isolation, flight-recorder
	// dumps). The panic is deterministic: same config, same panic.
	ChaosPanicAt units.Time

	// Flight, when non-nil, attaches a crash flight recorder to the engine:
	// recent events, drops and fault transitions land in its ring, and the
	// crash-safe sweep runner dumps it to flight.jsonl when the run panics
	// or the watchdog kills it. The caller owns the recorder so its contents
	// survive a panic unwinding out of Run.
	Flight *obs.FlightRecorder

	// RawSeries controls whether the Summary keeps raw FCT/QCT slices next
	// to the histograms; the zero value (metrics.RawAuto) keeps them for
	// runs up to metrics.RawAutoMaxFlows started flows.
	RawSeries metrics.RawMode

	// Shards, when > 1, splits the run across that many topology domains
	// executing on separate cores under a conservative window protocol
	// (see parallel.go). Values <= 1, configurations a shard cannot carry
	// (live Monitor telemetry, text packet traces), and topologies without
	// usable lookahead all degrade to the serial engine. Sharded results
	// are deterministic per shard count but follow different random
	// interleavings than the serial engine, so -shards=N is statistically —
	// not bitwise — comparable to -shards=1.
	Shards int
}

// Budget sentinels. Run wraps these into its abort errors so callers can
// classify failures with errors.Is instead of string matching: a wall-budget
// kill depends on machine load (transient, retryable), a max-events kill is
// a deterministic property of the scenario (permanent).
var (
	ErrWallBudget = errors.New("wall-clock budget exceeded")
	ErrMaxEvents  = errors.New("event budget exceeded")
)

// LinkFailure kills one topology link at a point in simulated time.
type LinkFailure struct {
	Link int // index into the topology's Links
	At   units.Time
}

// DefaultConfig returns the paper's Table 1 defaults on the paper's
// leaf-spine topology for the given scheme/transport combination.
func DefaultConfig(policy fabric.Policy, proto transport.Protocol) Config {
	tc := transport.DefaultConfig(proto)
	if policy == fabric.DIBS {
		// DIBS disables fast retransmit to survive deflection reordering
		// (paper §2).
		tc.FastRetransmit = false
	}
	return Config{
		Seed:           1,
		SimTime:        5 * units.Second,
		Kind:           LeafSpine,
		LeafSpineCfg:   topo.PaperLeafSpine(),
		FatTreeCfg:     topo.PaperFatTree(),
		Fabric:         fabric.DefaultConfig(policy),
		Transport:      tc,
		VertigoStack:   policy == fabric.Vertigo,
		Marker:         host.DefaultMarkerConfig(),
		Orderer:        host.DefaultOrdererConfig(),
		BGLoad:         0.5,
		BGDist:         workload.CacheFollower,
		IncastQPS:      4000,
		IncastScale:    100,
		IncastFlowSize: 40 * 1000,
		RequestDelay:   5 * units.Microsecond,
	}
}

// HostRate returns the access-link rate of the configured topology.
func (c *Config) HostRate() units.BitRate {
	if c.Kind == FatTree {
		return c.FatTreeCfg.Rate
	}
	return c.LeafSpineCfg.HostRate
}

// NumHosts returns the host count of the configured topology.
func (c *Config) NumHosts() int {
	if c.Kind == FatTree {
		k := c.FatTreeCfg.K
		return k * k * k / 4
	}
	return c.LeafSpineCfg.Leaves * c.LeafSpineCfg.HostsPerLeaf
}

// SetIncastLoad sets IncastQPS so the incast traffic offers the given load
// fraction with the current scale and flow size.
func (c *Config) SetIncastLoad(load float64) {
	c.IncastQPS = workload.QPSForLoad(load, c.NumHosts(), c.IncastScale, c.IncastFlowSize, c.HostRate())
}

// Validate rejects configurations that cannot describe a runnable scenario:
// non-positive durations, empty topologies, negative loads, and fault events
// outside the simulated window. Index bounds that need the built topology
// (link and switch numbers) are checked in Run. Run calls Validate itself;
// call it directly to fail fast before committing a worker to the run.
func (c *Config) Validate() error {
	if c.SimTime <= 0 {
		return fmt.Errorf("core: non-positive sim time %v", c.SimTime)
	}
	if n := c.NumHosts(); n <= 0 {
		return fmt.Errorf("core: topology %q has %d hosts; need at least 1", c.Kind, n)
	}
	if c.BGLoad < 0 {
		return fmt.Errorf("core: negative background load %g", c.BGLoad)
	}
	if c.IncastQPS < 0 {
		return fmt.Errorf("core: negative incast rate %g qps", c.IncastQPS)
	}
	if c.IncastScale < 0 {
		return fmt.Errorf("core: negative incast scale %d", c.IncastScale)
	}
	if c.IncastFlowSize < 0 {
		return fmt.Errorf("core: negative incast flow size %d", c.IncastFlowSize)
	}
	if c.RequestDelay < 0 {
		return fmt.Errorf("core: negative request delay %v", c.RequestDelay)
	}
	if c.HealDelay < 0 {
		return fmt.Errorf("core: negative heal delay %v", c.HealDelay)
	}
	if c.ChaosPanicAt < 0 || c.ChaosPanicAt > c.SimTime {
		return fmt.Errorf("core: chaos panic at %v is outside the simulated window [0, %v]", c.ChaosPanicAt, c.SimTime)
	}
	if c.Fabric.TrainLen < 0 {
		return fmt.Errorf("core: negative packet-train length %d", c.Fabric.TrainLen)
	}
	if c.Fabric.TrainLen > 4096 {
		return fmt.Errorf("core: packet-train length %d exceeds the 4096 cap", c.Fabric.TrainLen)
	}
	for i, lf := range c.LinkFailures {
		if lf.Link < 0 {
			return fmt.Errorf("core: link failure %d has negative link index %d", i, lf.Link)
		}
		if lf.At < 0 || lf.At > c.SimTime {
			return fmt.Errorf("core: link failure %d at %v is outside the simulated window [0, %v]", i, lf.At, c.SimTime)
		}
	}
	// Link/switch index ranges are re-checked against the built topology in
	// Run; here only times and parameter ranges can be validated.
	if err := c.Faults.Validate(-1, -1, c.SimTime); err != nil {
		return err
	}
	return nil
}

// Result bundles a run's summary with the raw collector for deep analysis.
type Result struct {
	Summary   *metrics.Summary
	Collector *metrics.Collector
	Events    uint64
	// Engine and Pool snapshot the runtime's self-instrumentation: how much
	// work the run did and how well the event/packet free lists recycled.
	Engine sim.EngineStats
	Pool   packet.PoolStats
	// Trains reports packet-train coalescing activity on the dataplane.
	Trains fabric.TrainStats
	// Telemetry is non-nil when Config.Telemetry was set.
	Telemetry *telemetry.Monitor
	// Sampler is non-nil when Config.SampleTick was positive.
	Sampler *telemetry.Sampler
}

// Run executes the scenario and returns its results.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var (
		t   *topo.Topology
		err error
	)
	switch cfg.Kind {
	case LeafSpine:
		t, err = topo.NewLeafSpine(cfg.LeafSpineCfg)
	case FatTree:
		t, err = topo.NewFatTree(cfg.FatTreeCfg)
	default:
		err = fmt.Errorf("core: unknown topology kind %d", cfg.Kind)
	}
	if err != nil {
		return nil, err
	}

	if cfg.shardable() {
		part, perr := topo.NewPartition(t, cfg.Shards)
		if perr != nil {
			return nil, perr
		}
		if part.N > 1 {
			return runSharded(cfg, t, part)
		}
	}

	eng := sim.NewEngine(cfg.Seed)
	eng.SetFlight(cfg.Flight)
	met := metrics.NewCollector()
	met.RawSeries = cfg.RawSeries
	net := fabric.New(eng, t, met, cfg.Fabric)
	ids := &packet.IDGen{}

	// Probes attach independently; the fabric fans events out through a
	// telemetry.Multi when more than one is present.
	var mon *telemetry.Monitor
	var tracer *telemetry.Tracer
	var sampler *telemetry.Sampler
	if cfg.Telemetry {
		mon = telemetry.NewMonitor(eng, cfg.TelemetryConfig)
		net.AddObserver(mon)
	}
	if cfg.PacketTrace != nil {
		if cfg.PacketTraceJSON {
			tracer = telemetry.NewJSONTracer(eng, cfg.PacketTrace, cfg.PacketTraceFlow)
		} else {
			tracer = telemetry.NewTracer(eng, cfg.PacketTrace, cfg.PacketTraceFlow)
		}
		net.AddObserver(tracer)
	}
	if cfg.SampleTick > 0 {
		sampler = telemetry.NewSampler(eng, telemetry.SamplerConfig{Tick: cfg.SampleTick})
		sampler.Start(cfg.SimTime)
		net.AddObserver(sampler)
	}
	for _, lf := range cfg.LinkFailures {
		if err := net.FailLinkAt(lf.Link, lf.At); err != nil {
			return nil, err
		}
	}
	if !cfg.Faults.Empty() {
		if _, err := faults.Apply(eng, net, cfg.Faults, cfg.HealDelay); err != nil {
			return nil, err
		}
	}

	vertigoStack := cfg.VertigoStack || cfg.Fabric.Policy == fabric.Vertigo
	// Keep marker and orderer disciplines/boosting consistent.
	ocfg := cfg.Orderer
	ocfg.Discipline = cfg.Marker.Discipline
	ocfg.BoostFactorLog2 = cfg.Marker.BoostFactorLog2

	// Connection state lives in slab-backed pools: sender and receiver
	// slots recycle as flows complete, so a run's transport footprint is
	// O(peak concurrent flows), not O(flows started).
	senders := transport.NewSenderPool(cfg.Transport)
	receivers := transport.NewReceiverPool(eng, net, met, ids)

	hosts := make([]*host.Host, t.NumHosts)
	for i := 0; i < t.NumHosts; i++ {
		h := host.NewHost(i, eng, net, met, cfg.Marker, ocfg, vertigoStack)
		h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
			return receivers.Accept(h, first)
		})
		hosts[i] = h
	}

	starter := func(src, dst int, size int64, incast bool, query int) {
		spec := transport.FlowSpec{
			ID:     ids.Next(),
			Src:    src,
			Dst:    dst,
			Size:   size,
			Incast: incast,
			Query:  query,
		}
		senders.Get(hosts[src], met, ids, spec, nil).Start()
	}

	if cfg.BGLoad > 0 {
		dist := cfg.BGDist
		if dist == nil {
			dist = workload.CacheFollower
		}
		bg := &workload.Background{
			Eng:      eng,
			Hosts:    t.NumHosts,
			Dist:     dist,
			HostRate: cfg.HostRate(),
			Load:     cfg.BGLoad,
			Start:    starter,
		}
		bg.Run(cfg.SimTime)
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(t.NumHosts); err != nil {
			return nil, err
		}
		cfg.Trace.Run(eng, cfg.SimTime, starter)
	}
	if cfg.IncastQPS > 0 && cfg.IncastScale > 0 {
		ic := &workload.Incast{
			Eng:          eng,
			Met:          met,
			Hosts:        t.NumHosts,
			QPS:          cfg.IncastQPS,
			Scale:        cfg.IncastScale,
			FlowSize:     cfg.IncastFlowSize,
			Periodic:     cfg.IncastPeriodic,
			RequestDelay: cfg.RequestDelay,
			Start:        starter,
		}
		ic.Run(cfg.SimTime)
	}

	if cfg.ChaosPanicAt > 0 {
		at := cfg.ChaosPanicAt
		eng.At(at, func() {
			panic(fmt.Sprintf("core: deliberate chaos panic at t=%v (ChaosPanicAt)", at))
		})
	}

	if cfg.WallTimeout > 0 {
		eng.SetWallDeadline(cfg.WallTimeout)
	}
	if cfg.MaxEvents > 0 {
		eng.SetMaxEvents(cfg.MaxEvents)
	}
	end := eng.Run(cfg.SimTime)
	eng.FinishObs()
	net.Pool().PublishObs()
	if eng.DeadlineExceeded() {
		return nil, fmt.Errorf("core: run exceeded its %v wall-clock budget at t=%v (%d events fired): %w",
			cfg.WallTimeout, end, eng.Events(), ErrWallBudget)
	}
	if eng.MaxEventsExceeded() {
		return nil, fmt.Errorf("core: run exceeded its %d-event budget at t=%v: %w",
			cfg.MaxEvents, end, ErrMaxEvents)
	}
	if mon != nil {
		mon.Finish()
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return nil, fmt.Errorf("core: flushing packet trace: %w", err)
		}
	}
	return &Result{
		Summary:   met.Summarize(end),
		Collector: met,
		Events:    eng.Events(),
		Engine:    eng.Stats(),
		Pool:      net.Pool().Stats(),
		Trains:    net.TrainStats(),
		Telemetry: mon,
		Sampler:   sampler,
	}, nil
}
