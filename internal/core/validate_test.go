package core

import (
	"strings"
	"testing"
	"time"

	"vertigo/internal/fabric"
	"vertigo/internal/faults"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

func TestConfigValidateRejections(t *testing.T) {
	base := func() Config { return smallConfig(fabric.ECMP, transport.DCTCP) }
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantSub string
	}{
		{"zero sim time", func(c *Config) { c.SimTime = 0 }, "sim time"},
		{"negative sim time", func(c *Config) { c.SimTime = -units.Second }, "sim time"},
		{"zero hosts", func(c *Config) { c.LeafSpineCfg.HostsPerLeaf = 0 }, "hosts"},
		{"negative bg load", func(c *Config) { c.BGLoad = -0.1 }, "background load"},
		{"negative incast qps", func(c *Config) { c.IncastQPS = -1 }, "incast rate"},
		{"negative incast scale", func(c *Config) { c.IncastScale = -2 }, "incast scale"},
		{"negative flow size", func(c *Config) { c.IncastFlowSize = -5 }, "flow size"},
		{"negative heal delay", func(c *Config) { c.HealDelay = -units.Millisecond }, "heal delay"},
		{"negative train length", func(c *Config) { c.Fabric.TrainLen = -1 }, "packet-train length"},
		{"oversized train length", func(c *Config) { c.Fabric.TrainLen = 4097 }, "packet-train length"},
		{"negative failure link", func(c *Config) {
			c.LinkFailures = []LinkFailure{{Link: -1, At: 0}}
		}, "link index"},
		{"failure beyond sim end", func(c *Config) {
			c.LinkFailures = []LinkFailure{{Link: 0, At: c.SimTime + 1}}
		}, "outside the simulated window"},
		{"fault beyond sim end", func(c *Config) {
			c.Faults = (&faults.Schedule{}).Add(
				faults.Event{At: c.SimTime * 2, Kind: faults.LinkDown, Link: 0})
		}, "after the"},
		{"fault bad ber", func(c *Config) {
			c.Faults = (&faults.Schedule{}).Add(
				faults.Event{Kind: faults.Corrupt, Link: 0, BER: 2})
		}, "bit-error rate"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.wantSub)
		}
		// Run must reject it identically, before committing any work.
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted what Validate rejects", tc.name)
		}
	}
	good := base()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestRunRejectsOutOfRangeFaultIndices(t *testing.T) {
	// Indices pass the pre-topology Validate but must fail in Run against
	// the built topology.
	cfg := smallConfig(fabric.ECMP, transport.DCTCP)
	cfg.SimTime = units.Millisecond
	cfg.Faults = (&faults.Schedule{}).Add(
		faults.Event{Kind: faults.LinkDown, Link: 1 << 20})
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range fault link accepted by Run")
	}
	cfg.Faults = (&faults.Schedule{}).Add(
		faults.Event{Kind: faults.SwitchDown, Switch: 1 << 20})
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range fault switch accepted by Run")
	}
}

func TestRunWithFaultScheduleAccounts(t *testing.T) {
	// A short run with a flap and healing: fault counters must land in the
	// summary, and the run must complete normally.
	cfg := smallConfig(fabric.Vertigo, transport.DCTCP)
	cfg.SimTime = 5 * units.Millisecond
	uplink := cfg.NumHosts() // first leaf uplink
	cfg.Faults = (&faults.Schedule{}).Add(
		faults.Flap(uplink, units.Millisecond, 500*units.Microsecond, 2*units.Millisecond, 2)...)
	cfg.HealDelay = 100 * units.Microsecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.FaultEvents == 0 {
		t.Error("no fault events accounted")
	}
	if s.LinkRecoveries != 2 {
		t.Errorf("link recoveries = %d, want 2", s.LinkRecoveries)
	}
	if s.MTTR != 500*units.Microsecond {
		t.Errorf("MTTR = %v, want 500µs", s.MTTR)
	}
	if s.FIBInstalls != 4 {
		t.Errorf("FIB installs = %d, want 4 (one per transition)", s.FIBInstalls)
	}
}

func TestRunWallTimeout(t *testing.T) {
	// An already-expired wall budget must abort the run with an error, not
	// return truncated results.
	cfg := smallConfig(fabric.ECMP, transport.DCTCP)
	cfg.WallTimeout = time.Nanosecond
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "wall-clock") {
		t.Fatalf("Run with expired wall budget returned %v, want wall-clock error", err)
	}
}
