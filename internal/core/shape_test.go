package core

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

// TestShapeUnderHighLoad pins the paper's headline orderings at high load
// (§2, §4.2): random deflection breaks down while selective deflection keeps
// completing queries, and Vertigo beats the ECMP baseline on query
// completion. Absolute numbers differ from the paper (smaller fabric,
// shorter deadline); the orderings are what this test protects.
func TestShapeUnderHighLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression is slow")
	}
	run := func(policy fabric.Policy) *Result {
		cfg := smallConfig(policy, transport.DCTCP)
		cfg.BGLoad = 0.15
		cfg.IncastScale = 10
		cfg.IncastFlowSize = 40 * 1000
		cfg.SetIncastLoad(0.65) // 80% aggregate
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-8s: q %d/%d (%.0f%%) meanQCT %v drops %d defl %d",
			policy, res.Summary.QueriesCompleted, res.Summary.QueriesStarted,
			res.Summary.QueryCompletionP, res.Summary.MeanQCT,
			res.Summary.Drops, res.Summary.Deflections)
		return res
	}
	ecmp := run(fabric.ECMP)
	dibs := run(fabric.DIBS)
	vertigo := run(fabric.Vertigo)

	if v, d := vertigo.Summary.QueryCompletionP, dibs.Summary.QueryCompletionP; v <= d {
		t.Errorf("vertigo query completion %.1f%% not above DIBS %.1f%% at high load", v, d)
	}
	if v, e := vertigo.Summary.QueryCompletionP, ecmp.Summary.QueryCompletionP; v <= e {
		t.Errorf("vertigo query completion %.1f%% not above ECMP %.1f%% at high load", v, e)
	}
	// Mean QCT over completed queries suffers survivor bias (ECMP's mean
	// covers only the easy queries it finished), so compare the median over
	// all *started* queries with incomplete ones treated as worst-case.
	if v, e := censoredMedianQCT(vertigo), censoredMedianQCT(ecmp); v >= e {
		t.Errorf("vertigo censored-median QCT %v not below ECMP %v at high load", v, e)
	}
}

// censoredMedianQCT returns the median QCT over started queries, counting
// incomplete queries as infinitely slow. If fewer than half completed, the
// median is the full simulation duration (a pessimistic stand-in).
func censoredMedianQCT(r *Result) int64 {
	s := r.Summary
	rank := s.QueriesStarted / 2
	if rank >= len(s.QCTs) {
		return int64(s.Duration)
	}
	// The median of the censored distribution falls at rank `rank` within
	// the sorted completed QCTs.
	return int64(metrics.Percentile(s.QCTs, 100*float64(rank+1)/float64(len(s.QCTs))))
}
