// Sharded (multi-core) execution of one scenario: the topology is cut into
// domains (topo.Partition), each domain runs the full stack — its own
// sim.Engine, calendar queue, fabric replica, packet pool and metrics
// collector — on its own goroutine, and the domains advance in conservative
// time windows bounded by the minimum cross-domain link latency (lookahead).
// Cross-domain packets are exchanged between windows in canonical
// (time, source switch, source port) order, so a run's results are
// deterministic for a given shard count regardless of -j, GOMAXPROCS or
// goroutine scheduling.
package core

import (
	"bytes"
	"fmt"
	"sort"

	"vertigo/internal/fabric"
	"vertigo/internal/faults"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

// shardable reports whether the configuration can run sharded at all.
// The live Monitor and the text packet tracer are serial-only consumers
// (their output formats have no canonical merge); everything else shards.
func (c *Config) shardable() bool {
	if c.Shards <= 1 {
		return false
	}
	if c.Telemetry {
		return false
	}
	if c.PacketTrace != nil && !c.PacketTraceJSON {
		return false
	}
	return true
}

// flowOp is one pre-materialized flow arrival; rank order (the slice index)
// is the global arrival order and mints the flow's globally unique ID.
type flowOp struct {
	At       units.Time
	Src, Dst int
	Size     int64
	Incast   bool
	Query    int // rank into materialized.queries, or -1
	ID       uint64
}

// queryOp is one pre-materialized incast query. Client is -1 when none of
// the query's response flows landed inside the horizon (the query can then
// never complete, exactly as in a serial run, and is owned by domain 0).
type queryOp struct {
	At     units.Time
	Client int
	Scale  int
}

type materialized struct {
	flows   []flowOp
	queries []queryOp
}

// materializeWorkload replays the synthetic generators (Background, Trace,
// Incast) against a throwaway engine seeded identically to a serial run,
// recording every flow and query arrival instead of starting transports.
// The generators are the only workload-side consumers of the engine's
// global random stream, so the recorded schedule is a deterministic
// function of (Seed, workload config) alone — independent of shard count.
func materializeWorkload(cfg *Config, t *topo.Topology) *materialized {
	m := &materialized{}
	eng := sim.NewEngine(cfg.Seed)
	met := metrics.NewCollector()
	start := func(src, dst int, size int64, incast bool, query int) {
		m.flows = append(m.flows, flowOp{
			At: eng.Now(), Src: src, Dst: dst, Size: size,
			Incast: incast, Query: query, ID: uint64(len(m.flows) + 1),
		})
	}
	if cfg.BGLoad > 0 {
		dist := cfg.BGDist
		if dist == nil {
			dist = workload.CacheFollower
		}
		bg := &workload.Background{
			Eng: eng, Hosts: t.NumHosts, Dist: dist,
			HostRate: cfg.HostRate(), Load: cfg.BGLoad, Start: start,
		}
		bg.Run(cfg.SimTime)
	}
	if cfg.Trace != nil {
		cfg.Trace.Run(eng, cfg.SimTime, start)
	}
	if cfg.IncastQPS > 0 && cfg.IncastScale > 0 {
		ic := &workload.Incast{
			Eng: eng, Met: met, Hosts: t.NumHosts,
			QPS: cfg.IncastQPS, Scale: cfg.IncastScale, FlowSize: cfg.IncastFlowSize,
			Periodic: cfg.IncastPeriodic, RequestDelay: cfg.RequestDelay,
			Start: start,
		}
		ic.Run(cfg.SimTime)
	}
	eng.Run(cfg.SimTime)
	for _, q := range met.Queries {
		m.queries = append(m.queries, queryOp{At: q.Start, Client: -1, Scale: q.Scale})
	}
	for i := range m.flows {
		if q := m.flows[i].Query; q >= 0 && m.queries[q].Client < 0 {
			m.queries[q].Client = m.flows[i].Dst
		}
	}
	return m
}

// domOp is one entry of a domain's arrival cursor: a query registration or a
// flow start owned by that domain.
type domOp struct {
	at    units.Time
	query bool
	rank  int
}

// opPump replays a domain's share of the materialized workload through one
// self-rescheduling engine event, so the window barrier always sees the next
// arrival in PeekTime.
type opPump struct {
	eng  *sim.Engine
	ops  []domOp
	i    int
	exec func(domOp)
	fire func()
}

func (pp *opPump) arm() {
	if pp.i < len(pp.ops) {
		pp.eng.At(pp.ops[pp.i].at, pp.fire)
	}
}

func (pp *opPump) init() {
	pp.fire = func() {
		now := pp.eng.Now()
		for pp.i < len(pp.ops) && pp.ops[pp.i].at == now {
			pp.exec(pp.ops[pp.i])
			pp.i++
		}
		pp.arm()
	}
	pp.arm()
}

// domain is one shard: a full simulation stack owning a slice of the
// topology.
type domain struct {
	idx      int
	eng      *sim.Engine
	met      *metrics.Collector
	net      *fabric.Network
	sampler  *telemetry.Sampler
	tracer   *telemetry.Tracer
	traceBuf bytes.Buffer
	outbox   [][]fabric.CrossItem // per destination domain, drained each window
	pump     opPump

	cmd chan units.Time // window deadline; closed to stop the goroutine
	res chan any        // recovered panic value, nil on clean window
}

// runShard is the domain goroutine: advance to each commanded deadline,
// forwarding panics to the coordinator instead of crashing the process.
func (d *domain) runShard() {
	for until := range d.cmd {
		var pan any
		func() {
			defer func() { pan = recover() }()
			d.eng.Run(until)
		}()
		d.res <- pan
	}
}

// runSharded executes cfg split across part.N domains. Callers guarantee
// cfg validated, cfg.shardable() and part.N > 1.
func runSharded(cfg Config, t *topo.Topology, part *topo.Partition) (*Result, error) {
	nDom := part.N
	m := materializeWorkload(&cfg, t)

	vertigoStack := cfg.VertigoStack || cfg.Fabric.Policy == fabric.Vertigo
	ocfg := cfg.Orderer
	ocfg.Discipline = cfg.Marker.Discipline
	ocfg.BoostFactorLog2 = cfg.Marker.BoostFactorLog2

	doms := make([]*domain, nDom)
	for di := 0; di < nDom; di++ {
		d := &domain{
			idx:    di,
			eng:    sim.NewEngine(cfg.Seed),
			met:    metrics.NewCollector(),
			outbox: make([][]fabric.CrossItem, nDom),
			cmd:    make(chan units.Time),
			res:    make(chan any),
		}
		if di == 0 {
			d.eng.SetFlight(cfg.Flight)
		}
		d.met.RawSeries = cfg.RawSeries
		sd := &fabric.ShardCtx{
			Domain:       di,
			SwitchDomain: part.SwitchDomain,
			HostDomain:   part.HostDomain,
			Emit: func(dst int, it fabric.CrossItem) {
				d.outbox[dst] = append(d.outbox[dst], it)
			},
		}
		d.net = fabric.NewSharded(d.eng, t, d.met, cfg.Fabric, sd)
		if cfg.PacketTrace != nil {
			d.tracer = telemetry.NewJSONTracer(d.eng, &d.traceBuf, cfg.PacketTraceFlow)
			d.net.AddObserver(d.tracer)
		}
		if cfg.SampleTick > 0 {
			d.sampler = telemetry.NewSampler(d.eng, telemetry.SamplerConfig{Tick: cfg.SampleTick})
			d.sampler.Start(cfg.SimTime)
			d.net.AddObserver(d.sampler)
		}
		for _, lf := range cfg.LinkFailures {
			if err := d.net.FailLinkAt(lf.Link, lf.At); err != nil {
				return nil, err
			}
		}
		if !cfg.Faults.Empty() {
			if _, err := faults.Apply(d.eng, d.net, cfg.Faults, cfg.HealDelay); err != nil {
				return nil, err
			}
		}

		// Every domain instantiates all hosts (marker/orderer state is
		// cheap, and the fabric replica's NIC wiring expects them), but only
		// owned hosts ever see traffic.
		ids := &packet.IDGen{}
		senders := transport.NewSenderPool(cfg.Transport)
		receivers := transport.NewReceiverPool(d.eng, d.net, d.met, ids)
		hosts := make([]*host.Host, t.NumHosts)
		for i := 0; i < t.NumHosts; i++ {
			h := host.NewHost(i, d.eng, d.net, d.met, cfg.Marker, ocfg, vertigoStack)
			h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
				return receivers.Accept(h, first)
			})
			hosts[i] = h
		}

		// The domain's arrival cursor: queries registered where the client
		// lives, flows registered where they complete (the destination) and
		// started where they originate. qmap carries the destination
		// domain's local query IDs.
		qmap := make([]int, len(m.queries))
		var ops []domOp
		for rank, q := range m.queries {
			qd := 0
			if q.Client >= 0 {
				qd = part.HostDomain[q.Client]
			}
			if qd == di {
				ops = append(ops, domOp{at: q.At, query: true, rank: rank})
			}
		}
		for rank, f := range m.flows {
			if part.HostDomain[f.Src] == di || part.HostDomain[f.Dst] == di {
				ops = append(ops, domOp{at: f.At, rank: rank})
			}
		}
		sort.SliceStable(ops, func(i, j int) bool {
			if ops[i].at != ops[j].at {
				return ops[i].at < ops[j].at
			}
			// Queries registered before any same-instant flow referencing
			// them; rank order breaks the remaining ties.
			if ops[i].query != ops[j].query {
				return ops[i].query
			}
			return ops[i].rank < ops[j].rank
		})
		d.pump = opPump{eng: d.eng, ops: ops}
		d.pump.exec = func(op domOp) {
			if op.query {
				q := m.queries[op.rank]
				qmap[op.rank] = d.met.StartQuery(q.Scale, q.At)
				return
			}
			f := m.flows[op.rank]
			if part.HostDomain[f.Dst] == di {
				cls := metrics.Background
				if f.Incast {
					cls = metrics.Incast
				}
				localQ := -1
				if f.Query >= 0 {
					localQ = qmap[f.Query]
				}
				d.met.StartFlow(metrics.FlowRecord{
					ID: f.ID, Class: cls, Src: f.Src, Dst: f.Dst,
					Size: f.Size, Start: f.At, Query: localQ,
				})
			}
			if part.HostDomain[f.Src] == di {
				spec := transport.FlowSpec{
					ID: f.ID, Src: f.Src, Dst: f.Dst, Size: f.Size,
					Incast: f.Incast, Query: -1, Preregistered: true,
				}
				senders.Get(hosts[f.Src], d.met, ids, spec, nil).Start()
			}
		}
		d.pump.init()

		if di == 0 && cfg.ChaosPanicAt > 0 {
			at := cfg.ChaosPanicAt
			d.eng.At(at, func() {
				panic(fmt.Sprintf("core: deliberate chaos panic at t=%v (ChaosPanicAt)", at))
			})
		}
		if cfg.WallTimeout > 0 {
			d.eng.SetWallDeadline(cfg.WallTimeout)
		}
		if cfg.MaxEvents > 0 {
			// Per-domain budget: any single shard firing this many events
			// aborts the run, mirroring the serial cap's intent (bound
			// runaway scenarios deterministically).
			d.eng.SetMaxEvents(cfg.MaxEvents)
		}
		doms[di] = d
	}

	stopped := false
	stop := func() {
		if !stopped {
			stopped = true
			for _, d := range doms {
				close(d.cmd)
			}
		}
	}
	defer stop()
	for _, d := range doms {
		go d.runShard()
	}

	// advance runs every domain to `until` in parallel and re-raises the
	// first (lowest-domain) panic on this goroutine, preserving the serial
	// crash-isolation contract (exp's safeRun, flight dumps).
	advance := func(until units.Time) {
		for _, d := range doms {
			d.cmd <- until
		}
		var pan any
		for _, d := range doms {
			if r := <-d.res; r != nil && pan == nil {
				pan = r
			}
		}
		if pan != nil {
			stop()
			panic(pan)
		}
	}
	checkBudgets := func() error {
		for _, d := range doms {
			if d.eng.DeadlineExceeded() {
				return fmt.Errorf("core: shard %d exceeded its %v wall-clock budget at t=%v (%d events fired): %w",
					d.idx, cfg.WallTimeout, d.eng.Now(), d.eng.Events(), ErrWallBudget)
			}
			if d.eng.MaxEventsExceeded() {
				return fmt.Errorf("core: shard %d exceeded its %d-event budget at t=%v: %w",
					d.idx, cfg.MaxEvents, d.eng.Now(), ErrMaxEvents)
			}
		}
		return nil
	}

	// The conservative window loop. Every pending event sits at or after
	// tmin, so any packet committed during the window arrives no earlier
	// than tmin + lookahead = wEnd: running each domain to wEnd-1 inclusive
	// can never miss a cross-domain arrival.
	lookahead := part.Lookahead
	for {
		var tmin units.Time
		have := false
		for _, d := range doms {
			if at, ok := d.eng.PeekTime(); ok && (!have || at < tmin) {
				tmin, have = at, true
			}
		}
		if !have || tmin > cfg.SimTime {
			break
		}
		wEnd := tmin + lookahead
		if wEnd > cfg.SimTime+1 {
			wEnd = cfg.SimTime + 1
		}
		advance(wEnd - 1)
		if err := checkBudgets(); err != nil {
			return nil, err
		}
		// Exchange: gather each destination's arrivals across all source
		// outboxes, restore canonical order, inject.
		for dst, d := range doms {
			var batch []fabric.CrossItem
			for _, src := range doms {
				batch = append(batch, src.outbox[dst]...)
				src.outbox[dst] = src.outbox[dst][:0]
			}
			fabric.SortCross(batch)
			d.net.InjectCross(batch)
		}
	}
	// Settle every clock exactly at the horizon, as the serial engine does.
	advance(cfg.SimTime)
	stop()
	if err := checkBudgets(); err != nil {
		return nil, err
	}

	// Deterministic merge, domain 0 first.
	met := metrics.NewCollector()
	met.RawSeries = cfg.RawSeries
	res := &Result{Collector: met}
	var traces [][]byte
	var samplers []*telemetry.Sampler
	for _, d := range doms {
		d.eng.FinishObs()
		d.net.Pool().PublishObs()
		met.Merge(d.met)
		res.Events += d.eng.Events()
		es, ps, ts := d.eng.Stats(), d.net.Pool().Stats(), d.net.TrainStats()
		res.Engine.Events += es.Events
		res.Engine.Scheduled += es.Scheduled
		res.Engine.FreeListHits += es.FreeListHits
		res.Engine.TombstonedPops += es.TombstonedPops
		res.Engine.HeapSweeps += es.HeapSweeps
		if es.PeakPending > res.Engine.PeakPending {
			res.Engine.PeakPending = es.PeakPending
		}
		res.Pool.Gets += ps.Gets
		res.Pool.Hits += ps.Hits
		res.Pool.Puts += ps.Puts
		res.Pool.Slabs += ps.Slabs
		res.Trains.Trains += ts.Trains
		res.Trains.Segments += ts.Segments
		res.Trains.Invalidated += ts.Invalidated
		if d.tracer != nil {
			if err := d.tracer.Flush(); err != nil {
				return nil, fmt.Errorf("core: flushing shard %d packet trace: %w", d.idx, err)
			}
			traces = append(traces, d.traceBuf.Bytes())
		}
		if d.sampler != nil {
			samplers = append(samplers, d.sampler)
		}
	}
	if cfg.PacketTrace != nil {
		if err := telemetry.MergeJSONLTraces(cfg.PacketTrace, traces); err != nil {
			return nil, fmt.Errorf("core: merging packet traces: %w", err)
		}
	}
	if len(samplers) > 0 {
		res.Sampler = telemetry.MergeSamplers(samplers)
	}
	res.Summary = met.Summarize(cfg.SimTime)
	return res, nil
}
