package core

import (
	"reflect"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// shardTestConfig is a small leaf-spine scenario with enough ToRs to split
// four ways and enough incast traffic that every domain boundary carries
// packets in both directions.
func shardTestConfig() Config {
	cfg := DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.SimTime = 20 * units.Millisecond
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines: 4, Leaves: 8, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.IncastScale = 16
	cfg.SetIncastLoad(0.1)
	return cfg
}

// TestShardedDeterministic pins the sharded determinism contract: for a
// fixed shard count the run is exactly reproducible. (Different shard
// counts are distinct deterministic universes — same-instant event ordering
// is partition-dependent — so cross-count identity is deliberately NOT
// asserted; see DESIGN.md.)
func TestShardedDeterministic(t *testing.T) {
	for _, n := range []int{2, 4} {
		var first *Result
		for rep := 0; rep < 2; rep++ {
			cfg := shardTestConfig()
			cfg.Shards = n
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("shards=%d rep=%d: %v", n, rep, err)
			}
			if first == nil {
				first = r
				continue
			}
			if !reflect.DeepEqual(first.Summary, r.Summary) {
				t.Errorf("shards=%d: summaries differ between repetitions:\n%+v\nvs\n%+v",
					n, first.Summary, r.Summary)
			}
			if first.Events != r.Events {
				t.Errorf("shards=%d: event counts differ: %d vs %d", n, first.Events, r.Events)
			}
			if first.Collector.Drops != r.Collector.Drops {
				t.Errorf("shards=%d: drop counters differ: %v vs %v",
					n, first.Collector.Drops, r.Collector.Drops)
			}
		}
	}
}

// TestShardedConservation checks the merged result of a sharded run is
// internally consistent: work actually crossed domains, and the packet
// ledger balances (every sent packet is delivered, dropped, or still in
// flight at the horizon — never silently lost in a mailbox).
func TestShardedConservation(t *testing.T) {
	cfg := shardTestConfig()
	cfg.Shards = 4
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Summary
	if s.FlowsStarted == 0 || s.FlowsCompleted == 0 {
		t.Fatalf("no flow progress: started=%d completed=%d", s.FlowsStarted, s.FlowsCompleted)
	}
	if s.FlowsCompleted > s.FlowsStarted {
		t.Errorf("completed %d > started %d", s.FlowsCompleted, s.FlowsStarted)
	}
	if s.QueriesCompleted > s.QueriesStarted {
		t.Errorf("queries completed %d > started %d", s.QueriesCompleted, s.QueriesStarted)
	}
	var drops int64
	for _, d := range r.Collector.Drops {
		drops += d
	}
	if s.PacketsRecv+drops > s.PacketsSent {
		t.Errorf("ledger overflows: recv %d + drops %d > sent %d",
			s.PacketsRecv, drops, s.PacketsSent)
	}
	// In-flight at the horizon is bounded by the fabric's capacity; a large
	// residue would mean cross-domain packets leaked out of the mailboxes.
	if gap := s.PacketsSent - s.PacketsRecv - drops; gap > s.PacketsSent/10 {
		t.Errorf("suspiciously many packets unaccounted for: %d of %d sent", gap, s.PacketsSent)
	}
}

// TestShardedDegradesToSerial pins the degrade rules: shard counts <= 1,
// Monitor telemetry, and text packet traces all take the serial engine,
// byte-for-byte. (A sharded run cannot carry a Monitor or an ordered text
// trace, so Run falls back rather than changing semantics.)
func TestShardedDegradesToSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config) // applied to both runs; only Shards differs
	}{
		{"plain", func(c *Config) {}},
		{"telemetry", func(c *Config) { c.Telemetry = true }},
	} {
		serial := shardTestConfig()
		tc.mut(&serial)
		base, err := Run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", tc.name, err)
		}
		for _, n := range []int{1, 4} {
			if tc.name == "plain" && n == 4 {
				continue // genuinely sharded; covered by TestShardedDeterministic
			}
			cfg := shardTestConfig()
			tc.mut(&cfg)
			cfg.Shards = n
			r, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", tc.name, n, err)
			}
			if !reflect.DeepEqual(base.Summary, r.Summary) {
				t.Errorf("%s shards=%d: expected serial-identical summary, got:\n%+v\nvs serial\n%+v",
					tc.name, n, r.Summary, base.Summary)
			}
		}
	}
}
