package core

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

// The physics tests validate the simulator against first-principles bounds:
// if any of these fail, no experiment built on top can be trusted.

// physicsConfig is a quiet 16-host fabric for controlled flows.
func physicsConfig(policy fabric.Policy, proto transport.Protocol) Config {
	cfg := smallConfig(policy, proto)
	cfg.BGLoad = 0
	cfg.IncastQPS = 0
	cfg.SimTime = 2 * units.Second
	return cfg
}

func runTrace(t *testing.T, cfg Config, flows ...workload.TraceFlow) *Result {
	t.Helper()
	cfg.Trace = &workload.Trace{Flows: flows}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestPhysicsUncontendedFCT(t *testing.T) {
	// A lone 1 MB flow across the fabric: FCT must be at least the pure
	// serialization time at 10 Gb/s (800 µs) and, with slow start from
	// window 10 and ~7 µs RTTs, complete within a small multiple of it.
	for _, policy := range []fabric.Policy{fabric.ECMP, fabric.Vertigo} {
		res := runTrace(t, physicsConfig(policy, transport.DCTCP),
			workload.TraceFlow{At: 0, Src: 0, Dst: 15, Size: 1_000_000})
		f := res.Collector.Flow(1)
		if f == nil || !f.Completed {
			t.Fatalf("%v: flow incomplete", policy)
		}
		minFCT := 800 * units.Microsecond
		if f.FCT() < minFCT {
			t.Errorf("%v: FCT %v below the physical bound %v", policy, f.FCT(), minFCT)
		}
		if f.FCT() > 4*minFCT {
			t.Errorf("%v: FCT %v more than 4x the serialization bound (slow start broken?)",
				policy, f.FCT())
		}
	}
}

func TestPhysicsBottleneckGoodputAtLineRate(t *testing.T) {
	// Two senders saturating one 10 Gb/s downlink for a long transfer: the
	// aggregate goodput must come out near line rate (within 15%).
	res := runTrace(t, physicsConfig(fabric.ECMP, transport.DCTCP),
		workload.TraceFlow{At: 0, Src: 1, Dst: 0, Size: 40_000_000},
		workload.TraceFlow{At: 0, Src: 2, Dst: 0, Size: 40_000_000})
	s := res.Summary
	if s.FlowsCompleted != 2 {
		t.Fatalf("flows incomplete: %d/2", s.FlowsCompleted)
	}
	// 80 MB over a 10G link = 64 ms minimum. FCT of the later finisher
	// bounds the active period.
	var latest units.Time
	res.Collector.RangeFlows(func(f *metrics.FlowRecord) bool {
		if f.End > latest {
			latest = f.End
		}
		return true
	})
	goodput := 8 * 80_000_000 / latest.Seconds() // bits per second
	// DCTCP sustains ~80%+ here; the shortfall from 100% is the real cost of
	// synchronized loss cycles plus NewReno's one-hole-per-RTT recovery.
	if goodput < 0.78*10e9 {
		t.Errorf("bottleneck goodput %.2f Gbps, want >= 7.8 (utilization broken)", goodput/1e9)
	}
	if goodput > 10.1e9 {
		t.Errorf("bottleneck goodput %.2f Gbps exceeds the link rate", goodput/1e9)
	}
}

func TestPhysicsFairSharing(t *testing.T) {
	// Four equal long flows into one host under DCTCP: the mean Jain
	// fairness index of their completion times across a few seeds must stay
	// high. Any single seed can land an unlucky synchronized-loss phase
	// (DCTCP's coarse loss cycles at this scale put the per-seed index
	// anywhere from ~0.85 to ~1.0), so the assertion averages seeds rather
	// than gating on the worst draw: real starvation — one flow finishing
	// several times later than its peers — drags the index below 0.8 on
	// every seed and still fails loudly.
	var sum float64
	seeds := []int64{1, 2, 3}
	for _, seed := range seeds {
		cfg := physicsConfig(fabric.ECMP, transport.DCTCP)
		cfg.Seed = seed
		var flows []workload.TraceFlow
		for i := 1; i <= 4; i++ {
			flows = append(flows, workload.TraceFlow{At: 0, Src: i, Dst: 0, Size: 10_000_000})
		}
		res := runTrace(t, cfg, flows...)
		if res.Summary.FlowsCompleted != 4 {
			t.Fatalf("seed %d: flows incomplete: %d/4", seed, res.Summary.FlowsCompleted)
		}
		var s, sq float64
		var fcts []float64
		res.Collector.RangeFlows(func(f *metrics.FlowRecord) bool {
			v := f.FCT().Seconds()
			fcts = append(fcts, v)
			s += v
			sq += v * v
			return true
		})
		jain := s * s / (float64(len(fcts)) * sq)
		t.Logf("seed %d: FCTs %v Jain %.3f", seed, fcts, jain)
		sum += jain
	}
	if mean := sum / float64(len(seeds)); mean < 0.85 {
		t.Errorf("unfair sharing: mean Jain index %.3f over %d seeds, want >= 0.85", mean, len(seeds))
	}
}

func TestPhysicsIncastQCTLowerBound(t *testing.T) {
	// One 8-way incast of 40 KB responses into a 10 Gb/s host: the QCT can
	// never beat the serialization of 8x40 KB = 320 KB (256 µs), and with
	// Vertigo absorbing the burst it should land within ~4x of that bound.
	cfg := physicsConfig(fabric.Vertigo, transport.DCTCP)
	cfg.IncastQPS = 10 // one-ish query in the first 100ms
	cfg.IncastScale = 8
	cfg.IncastFlowSize = 40_000
	cfg.SimTime = 300 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.QueriesCompleted == 0 {
		t.Fatal("no queries completed")
	}
	bound := 256 * units.Microsecond
	min := res.Summary.QCTs[0]
	for _, q := range res.Summary.QCTs {
		if q < min {
			min = q
		}
	}
	if min < bound {
		t.Errorf("QCT %v beats the serialization bound %v: conservation broken", min, bound)
	}
	if min > 4*bound {
		t.Errorf("best QCT %v more than 4x the bound %v: burst absorption broken", min, 4*bound)
	}
}

func TestPhysicsConservation(t *testing.T) {
	// Over a finished run, every data packet sent was delivered, dropped,
	// or is a duplicate delivery; with zero drops, delivered == sent.
	cfg := physicsConfig(fabric.Vertigo, transport.DCTCP)
	res := runTrace(t, cfg,
		workload.TraceFlow{At: 0, Src: 3, Dst: 12, Size: 500_000},
		workload.TraceFlow{At: 0, Src: 4, Dst: 13, Size: 500_000})
	c := res.Collector
	if c.TotalDrops() != 0 {
		t.Fatalf("unexpected drops: %d", c.TotalDrops())
	}
	if c.PacketsSent != c.PacketsRecv {
		t.Errorf("conservation violated: sent %d, delivered %d, drops 0",
			c.PacketsSent, c.PacketsRecv)
	}
	if c.BytesGoodput != 1_000_000 {
		t.Errorf("goodput %d bytes, want exactly 1000000", c.BytesGoodput)
	}
}

func TestPhysicsNoSpuriousLoss(t *testing.T) {
	// A single uncontended flow must be lossless for every scheme. The FIFO
	// schemes must also be retransmission-free; Vertigo is allowed a tiny
	// spurious-retransmit rate — its ordering timeout deliberately fires
	// early enough to trigger fast retransmit on real loss (§3.3.2), so a
	// per-packet path-jitter inversion that outlives τ costs one spurious
	// fast retransmit. Anything above 0.5% means the orderer is broken.
	for _, policy := range []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo} {
		res := runTrace(t, physicsConfig(policy, transport.Reno),
			workload.TraceFlow{At: 0, Src: 5, Dst: 10, Size: 5_000_000})
		c := res.Collector
		if c.TotalDrops() != 0 {
			t.Errorf("%v: %d drops for a single uncontended flow", policy, c.TotalDrops())
		}
		limit := int64(0)
		if policy == fabric.Vertigo {
			limit = c.PacketsSent / 200 // 0.5%
		}
		if c.Retransmits > limit {
			t.Errorf("%v: %d retransmits (limit %d) for a single uncontended flow",
				policy, c.Retransmits, limit)
		}
		if c.RTOs != 0 {
			t.Errorf("%v: %d RTOs for a single uncontended flow", policy, c.RTOs)
		}
	}
}

// Guard: the physics tests rely on smallConfig's shape; pin it.
func TestPhysicsConfigShape(t *testing.T) {
	cfg := physicsConfig(fabric.ECMP, transport.DCTCP)
	if cfg.NumHosts() != 16 || cfg.HostRate() != 10*units.Gbps {
		t.Fatalf("physics config drifted: hosts=%d rate=%v", cfg.NumHosts(), cfg.HostRate())
	}
	if cfg.Fabric.BufferBytes != 300*units.KB {
		t.Fatalf("buffer drifted: %v", cfg.Fabric.BufferBytes)
	}
	_ = metrics.Background
}
