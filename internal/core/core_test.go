package core

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// smallConfig returns a fast scenario for functional tests: an 8-leaf,
// 2-spine fabric with 4 hosts per leaf and a short deadline.
func smallConfig(policy fabric.Policy, proto transport.Protocol) Config {
	cfg := DefaultConfig(policy, proto)
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines:       2,
		Leaves:       4,
		HostsPerLeaf: 4,
		HostRate:     10 * units.Gbps,
		FabricRate:   40 * units.Gbps,
		LinkDelay:    500 * units.Nanosecond,
	}
	cfg.SimTime = 50 * units.Millisecond
	cfg.BGLoad = 0.3
	cfg.IncastScale = 8
	cfg.IncastFlowSize = 20 * 1000
	cfg.SetIncastLoad(0.2)
	return cfg
}

func TestRunAllSchemes(t *testing.T) {
	for _, policy := range []fabric.Policy{fabric.ECMP, fabric.DRILL, fabric.DIBS, fabric.Vertigo} {
		for _, proto := range []transport.Protocol{transport.Reno, transport.DCTCP, transport.Swift} {
			policy, proto := policy, proto
			t.Run(policy.String()+"/"+proto.String(), func(t *testing.T) {
				res, err := Run(smallConfig(policy, proto))
				if err != nil {
					t.Fatal(err)
				}
				s := res.Summary
				if s.FlowsStarted == 0 {
					t.Fatal("no flows started")
				}
				if s.FlowsCompleted == 0 {
					t.Fatalf("no flows completed: %+v", s)
				}
				if s.QueriesStarted == 0 {
					t.Fatal("no queries started")
				}
				if s.PacketsRecv == 0 {
					t.Fatal("no packets delivered")
				}
				t.Logf("%s+%s: flows %d/%d queries %d/%d meanFCT %v meanQCT %v drops %d defl %d",
					policy, proto, s.FlowsCompleted, s.FlowsStarted,
					s.QueriesCompleted, s.QueriesStarted, s.MeanFCT, s.MeanQCT,
					s.Drops, s.Deflections)
			})
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := smallConfig(fabric.Vertigo, transport.DCTCP)
	cfg.SimTime = 20 * units.Millisecond
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events != b.Events {
		t.Fatalf("event counts differ: %d vs %d", a.Events, b.Events)
	}
	if a.Summary.MeanFCT != b.Summary.MeanFCT || a.Summary.Drops != b.Summary.Drops {
		t.Fatalf("summaries differ: %+v vs %+v", a.Summary, b.Summary)
	}
}
