package core

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/transport"
)

// TestDropBreakdown is a diagnostic: it prints per-reason drop counts for
// each scheme so shape regressions can be triaged quickly.
func TestDropBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, policy := range []fabric.Policy{fabric.DIBS, fabric.Vertigo} {
		for _, proto := range []transport.Protocol{transport.DCTCP, transport.Swift} {
			res, err := Run(smallConfig(policy, proto))
			if err != nil {
				t.Fatal(err)
			}
			c := res.Collector
			t.Logf("%s+%s: overflow=%d deflect-full=%d ttl=%d other=%d defl=%d sent=%d rto=%d fast=%d reorder=%d heldOOO-timeouts=%d",
				policy, proto,
				c.Drops[metrics.DropOverflow], c.Drops[metrics.DropDeflectFull],
				c.Drops[metrics.DropTTL], c.Drops[metrics.DropOther],
				c.Deflections, c.PacketsSent, c.RTOs, c.FastRetx, c.ReorderPkts, c.OrderTimeout)
		}
	}
}
