package core

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/transport"
	"vertigo/internal/units"
	"vertigo/internal/workload"
)

func TestDefaultConfigMatchesPaperTable1(t *testing.T) {
	cfg := DefaultConfig(fabric.Vertigo, transport.DCTCP)
	if cfg.SimTime != 5*units.Second {
		t.Errorf("sim time %v, want the paper's 5s deadline", cfg.SimTime)
	}
	if cfg.IncastQPS != 4000 || cfg.IncastScale != 100 || cfg.IncastFlowSize != 40000 {
		t.Errorf("incast defaults drifted: %+v", cfg)
	}
	if cfg.Fabric.BufferBytes != 300*units.KB || cfg.Fabric.ECNThreshold != 65 {
		t.Errorf("fabric defaults drifted: %+v", cfg.Fabric)
	}
	if cfg.Transport.InitRTO != units.Second || cfg.Transport.MinRTO != 10*units.Millisecond {
		t.Errorf("RTO defaults drifted: %+v", cfg.Transport)
	}
	if cfg.Orderer.Timeout != 360*units.Microsecond {
		t.Errorf("tau default %v, want 360µs", cfg.Orderer.Timeout)
	}
	if !cfg.VertigoStack {
		t.Error("Vertigo policy must enable the host stack")
	}
}

func TestDIBSDisablesFastRetransmit(t *testing.T) {
	if DefaultConfig(fabric.DIBS, transport.DCTCP).Transport.FastRetransmit {
		t.Error("DIBS default must disable fast retransmit (paper §2)")
	}
	if !DefaultConfig(fabric.ECMP, transport.DCTCP).Transport.FastRetransmit {
		t.Error("non-DIBS schemes must keep fast retransmit")
	}
}

func TestNumHostsAndHostRate(t *testing.T) {
	cfg := DefaultConfig(fabric.ECMP, transport.DCTCP)
	if cfg.NumHosts() != 320 {
		t.Errorf("leaf-spine hosts %d, want 320", cfg.NumHosts())
	}
	if cfg.HostRate() != 10*units.Gbps {
		t.Errorf("host rate %v", cfg.HostRate())
	}
	cfg.Kind = FatTree
	if cfg.NumHosts() != 128 {
		t.Errorf("fat-tree k=8 hosts %d, want 128", cfg.NumHosts())
	}
}

func TestSetIncastLoadRoundTrips(t *testing.T) {
	cfg := DefaultConfig(fabric.ECMP, transport.DCTCP)
	cfg.SetIncastLoad(0.40)
	got := cfg.IncastQPS * float64(cfg.IncastScale) * float64(cfg.IncastFlowSize) * 8 /
		(float64(cfg.HostRate()) * float64(cfg.NumHosts()))
	if got < 0.399 || got > 0.401 {
		t.Errorf("incast load %.4f, want 0.40", got)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	cfg := DefaultConfig(fabric.ECMP, transport.DCTCP)
	cfg.SimTime = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero sim time accepted")
	}
	cfg = DefaultConfig(fabric.ECMP, transport.DCTCP)
	cfg.Kind = TopoKind(42)
	if _, err := Run(cfg); err == nil {
		t.Error("bogus topology kind accepted")
	}
	cfg = DefaultConfig(fabric.ECMP, transport.DCTCP)
	cfg.LeafSpineCfg.Leaves = 0
	if _, err := Run(cfg); err == nil {
		t.Error("invalid leaf-spine accepted")
	}
}

func TestRunRejectsBadTrace(t *testing.T) {
	cfg := smallConfig(fabric.ECMP, transport.DCTCP)
	cfg.Trace = &workload.Trace{Flows: []workload.TraceFlow{{Src: 0, Dst: 9999, Size: 100}}}
	if _, err := Run(cfg); err == nil {
		t.Error("trace referencing unknown hosts accepted")
	}
}

func TestRunRejectsBadLinkFailure(t *testing.T) {
	cfg := smallConfig(fabric.ECMP, transport.DCTCP)
	cfg.LinkFailures = []LinkFailure{{Link: 1 << 20, At: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("out-of-range link failure accepted")
	}
}

func TestTraceOnlyRun(t *testing.T) {
	cfg := smallConfig(fabric.Vertigo, transport.DCTCP)
	cfg.BGLoad = 0
	cfg.IncastQPS = 0
	cfg.Trace = &workload.Trace{Flows: []workload.TraceFlow{
		{At: 0, Src: 0, Dst: 5, Size: 100_000},
		{At: 10 * units.Microsecond, Src: 1, Dst: 5, Size: 100_000},
		{At: 20 * units.Microsecond, Src: 2, Dst: 5, Size: 100_000},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.FlowsCompleted != 3 {
		t.Fatalf("completed %d trace flows, want 3", res.Summary.FlowsCompleted)
	}
	if res.Collector.BytesGoodput != 300_000 {
		t.Fatalf("goodput %d bytes, want 300000", res.Collector.BytesGoodput)
	}
}

func TestLinkFailureEndToEnd(t *testing.T) {
	// Kill every uplink of leaf 0 halfway: flows from leaf 0 to other
	// leaves cannot complete after the failure even with deflection.
	cfg := smallConfig(fabric.Vertigo, transport.DCTCP)
	cfg.BGLoad = 0
	cfg.IncastQPS = 0
	hosts := cfg.NumHosts()
	var fails []LinkFailure
	for i := 0; i < cfg.LeafSpineCfg.Spines; i++ {
		fails = append(fails, LinkFailure{Link: hosts + i, At: units.Millisecond})
	}
	cfg.LinkFailures = fails
	cfg.Trace = &workload.Trace{Flows: []workload.TraceFlow{
		{At: 0, Src: 0, Dst: hosts - 1, Size: 20_000},                     // finishes pre-failure
		{At: 2 * units.Millisecond, Src: 0, Dst: hosts - 1, Size: 20_000}, // doomed
	}}
	cfg.SimTime = 20 * units.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.FlowsCompleted != 1 {
		t.Fatalf("completed %d flows, want exactly the pre-failure one", res.Summary.FlowsCompleted)
	}
}
