package fabric

import "vertigo/internal/obs"

// Process-global fabric metrics. Drops, deflections, faults and train
// bookkeeping are rare relative to per-packet work, so they bump the
// registry directly at the event site; queue depth is the one per-packet
// signal and is a histogram observation (three atomic adds) at the two
// enqueue chokepoints — the occupancy *distribution* is what distinguishes
// buffer regimes, not its mean.
var (
	obsDrops = obs.NewCounterVec("vertigo_fabric_drops_total",
		"data packets dropped, by reason", "reason",
		"overflow", "deflect-full", "ttl", "link-down", "corrupt", "other")
	obsDeflections = obs.NewCounter("vertigo_fabric_deflections_total",
		"packets deflected to an alternate port")
	obsECNMarks = obs.NewCounter("vertigo_fabric_ecn_marks_total",
		"packets CE-marked at enqueue")
	obsQueueDepth = obs.NewHistogram("vertigo_fabric_queue_depth_bytes",
		"egress queue occupancy observed after each enqueue")
	obsTrains = obs.NewCounter("vertigo_fabric_trains_planned_total",
		"packet trains planned by egress ports")
	obsTrainSegs = obs.NewCounter("vertigo_fabric_train_segments_total",
		"segments committed into planned trains")
	obsTrainInvals = obs.NewCounter("vertigo_fabric_train_invalidations_total",
		"planned trains abandoned before their end event")
	obsFaultEvents = obs.NewCounter("vertigo_fault_events_total",
		"fault transitions applied to the fabric")
	obsFIBInstalls = obs.NewCounter("vertigo_fault_fib_installs_total",
		"control-plane healing FIB swaps")
	obsTTR = obs.NewHistogram("vertigo_fault_ttr_ns",
		"carrier-loss duration of recovered links")
)

// noteDeflect accounts one deflection in both the per-run collector and the
// process-global registry.
func (n *Network) noteDeflect() {
	n.Met.Deflections++
	obsDeflections.Inc()
}
