package fabric

import (
	"fmt"
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// arrivalLog runs a canned traffic pattern under cfg and returns every
// delivery as "host/id@time" in arrival order, plus the network for counter
// inspection. The pattern floods one ToR downlink from two senders while a
// third host trickles cross-leaf traffic, exercising backlogs (trains),
// lazy-busy continuations and deflection.
func arrivalLog(t *testing.T, cfg Config) ([]string, *Network) {
	t.Helper()
	eng, net, _, _ := testNet(t, cfg)
	var log []string
	for h := 0; h < net.Topo.NumHosts; h++ {
		h := h
		net.RegisterHost(h, recvFunc(func(p *packet.Packet) {
			log = append(log, fmt.Sprintf("%d/%d@%d", h, p.ID, eng.Now()))
		}))
	}
	var ids packet.IDGen
	for i := 0; i < 60; i++ {
		at := units.Time(i) * 300 * units.Nanosecond
		i := i
		eng.At(at, func() {
			net.Send(dataPkt(&ids, 1, 0, 1, uint32(1000+i)))
			net.Send(dataPkt(&ids, 2, 0, 2, uint32(2000+i)))
			if i%5 == 0 {
				net.Send(dataPkt(&ids, 3, 1, 3, uint32(3000+i)))
			}
		})
	}
	eng.Run(units.Second)
	return log, net
}

// TestTrainArrivalIdentity checks the tentpole exactness claim at unit
// scale: every delivery (host, packet, instant, order) is identical with
// coalescing off, moderate, and maxed, for every policy.
func TestTrainArrivalIdentity(t *testing.T) {
	for _, policy := range []Policy{ECMP, DRILL, DIBS, Vertigo} {
		var base []string
		for _, train := range []int{0, 4, 64} {
			cfg := DefaultConfig(policy)
			cfg.TrainLen = train
			log, net := arrivalLog(t, cfg)
			if train == 0 {
				base = log
				if ts := net.TrainStats(); ts.Trains != 0 {
					t.Errorf("%v: TrainLen=0 planned %d trains", policy, ts.Trains)
				}
				continue
			}
			if len(log) != len(base) {
				t.Errorf("%v train=%d: %d deliveries, want %d", policy, train, len(log), len(base))
				continue
			}
			for i := range log {
				if log[i] != base[i] {
					t.Errorf("%v train=%d: delivery %d = %s, want %s",
						policy, train, i, log[i], base[i])
					break
				}
			}
		}
	}
}

// TestTrainStatsActivity checks that a backlogged port actually coalesces:
// trains form and carry more than one segment each on average.
func TestTrainStatsActivity(t *testing.T) {
	cfg := DefaultConfig(DIBS)
	cfg.TrainLen = 64
	_, net := arrivalLog(t, cfg)
	ts := net.TrainStats()
	if ts.Trains == 0 {
		t.Fatal("no trains planned on a backlogged port")
	}
	if ts.Segments <= ts.Trains {
		t.Errorf("segments (%d) <= trains (%d): coalescing is not batching", ts.Segments, ts.Trains)
	}
}

// TestTrainObserverStandsDown checks the guard rail: with a telemetry
// observer attached, no trains may form (per-packet Transmit callbacks need
// exact now-stamps), silently and with unchanged results.
func TestTrainObserverStandsDown(t *testing.T) {
	cfg := DefaultConfig(DIBS)
	cfg.TrainLen = 64
	eng, net, _, got := testNet(t, cfg)
	net.SetObserver(countObserver{})
	var ids packet.IDGen
	for i := 0; i < 40; i++ {
		net.Send(dataPkt(&ids, 1, 0, 1, 100))
	}
	eng.Run(units.Second)
	if ts := net.TrainStats(); ts.Trains != 0 {
		t.Errorf("planned %d trains with an observer attached", ts.Trains)
	}
	if len(got[0]) != 40 {
		t.Errorf("delivered %d, want 40", len(got[0]))
	}
}

// countObserver is a minimal observer: attaching any observer must stand
// trains down regardless of what it does.
type countObserver struct{}

func (countObserver) Enqueue(int, int, *packet.Packet, units.ByteSize)              {}
func (countObserver) Transmit(int, int, *packet.Packet, units.Time, units.ByteSize) {}
func (countObserver) Deflect(int, int, int, *packet.Packet)                         {}
func (countObserver) Drop(int, int, *packet.Packet, metrics.DropReason)             {}
func (countObserver) Deliver(int, *packet.Packet)                                   {}

// TestTrainFaultStandsDown checks the other guard rail: the first fault
// injection permanently stops new trains from forming.
func TestTrainFaultStandsDown(t *testing.T) {
	cfg := DefaultConfig(DIBS)
	cfg.TrainLen = 64
	eng, net, _, _ := testNet(t, cfg)
	var ids packet.IDGen
	if err := net.FailLinkAt(0, 100*units.Microsecond); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		net.Send(dataPkt(&ids, 1, 0, 1, 100))
	}
	eng.Run(units.Second)
	if ts := net.TrainStats(); ts.Trains != 0 {
		t.Errorf("planned %d trains after fault injection", ts.Trains)
	}
}

// TestTrainInvalidationPreemption checks the replan path: a lower-rank
// insertion into a sorted queue mid-plan abandons the uncommitted tail, and
// results still match the per-packet engine exactly.
func TestTrainInvalidationPreemption(t *testing.T) {
	run := func(train int) ([]string, TrainStats) {
		cfg := DefaultConfig(Vertigo)
		cfg.TrainLen = train
		eng, net, _, _ := testNet(t, cfg)
		var log []string
		for h := 0; h < net.Topo.NumHosts; h++ {
			h := h
			net.RegisterHost(h, recvFunc(func(p *packet.Packet) {
				log = append(log, fmt.Sprintf("%d/%d@%d", h, p.ID, eng.Now()))
			}))
		}
		var ids packet.IDGen
		// Build a large-RFS backlog, then drip small-RFS packets that insert
		// at the head of the sorted queue while a train is planned.
		for i := 0; i < 30; i++ {
			net.Send(dataPkt(&ids, 1, 0, 1, 500_000))
		}
		for i := 0; i < 10; i++ {
			at := units.Time(i+1) * 2 * units.Microsecond
			eng.At(at, func() { net.Send(dataPkt(&ids, 2, 0, 2, 10)) })
		}
		eng.Run(units.Second)
		return log, net.TrainStats()
	}
	base, _ := run(0)
	got, ts := run(64)
	if ts.Invalidated == 0 {
		t.Error("no plan invalidations under rank preemption")
	}
	if len(got) != len(base) {
		t.Fatalf("%d deliveries, want %d", len(got), len(base))
	}
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("delivery %d = %s, want %s", i, got[i], base[i])
		}
	}
}
