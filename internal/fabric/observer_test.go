package fabric

import (
	"runtime"
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

// nopObserver is a probe that does nothing: it isolates the cost of the
// fabric's observer dispatch from any probe's own work.
type nopObserver struct{ events int64 }

func (o *nopObserver) Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize) { o.events++ }
func (o *nopObserver) Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize) {
	o.events++
}
func (o *nopObserver) Deflect(sw, fromPort, toPort int, p *packet.Packet) { o.events++ }
func (o *nopObserver) Drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	o.events++
}
func (o *nopObserver) Deliver(host int, p *packet.Packet) { o.events++ }

// observerRig is a 2-spine/2-leaf fabric whose receivers recycle every
// delivered packet, so the steady-state send path allocates nothing and
// observer overhead is the only variable.
func observerRig(tb testing.TB, attach func(n *Network)) (*sim.Engine, *Network, func(i int)) {
	tb.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		tb.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := New(eng, tp, met, DefaultConfig(Vertigo))
	for h := 0; h < tp.NumHosts; h++ {
		net.RegisterHost(h, recvFunc(func(p *packet.Packet) { net.Pool().Put(p) }))
	}
	if attach != nil {
		attach(net)
	}
	var ids packet.IDGen
	send := func(i int) {
		p := net.Pool().Get()
		*p = packet.Packet{
			ID: ids.Next(), Kind: packet.Data,
			Src: i % 2, Dst: 2 + i%2, Flow: uint64(i%8 + 1),
			PayloadLen: packet.MSS, Marked: true,
			Info: packet.FlowInfo{RFS: uint32(i%1000 + 1)},
		}
		net.Send(p)
		if i%64 == 63 {
			eng.Run(eng.Now() + 100*units.Microsecond)
		}
	}
	// Warm-up: size the packet pool, event free list, queues and in-flight
	// rings so the measured region is steady state.
	for i := 0; i < 4096; i++ {
		send(i)
	}
	eng.Run(eng.Now() + units.Second)
	return eng, net, send
}

// TestObserverNilPathAllocFree pins the PR-1 allocation wins: with no
// observer attached, the per-event observer check is a nil comparison and
// the steady-state dataplane allocates nothing.
func TestObserverNilPathAllocFree(t *testing.T) {
	eng, _, send := observerRig(t, nil)
	i := 4096
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const pkts = 64 * 200
	for n := 0; n < pkts; n++ {
		send(i)
		i++
	}
	eng.Run(eng.Now() + units.Second)
	runtime.ReadMemStats(&m1)
	perPkt := float64(m1.Mallocs-m0.Mallocs) / float64(pkts)
	t.Logf("%d packets, %d allocs (%.4f allocs/pkt)", pkts, m1.Mallocs-m0.Mallocs, perPkt)
	if perPkt > 0.01 {
		t.Errorf("nil-observer dataplane allocates %.4f objects/packet, want 0", perPkt)
	}
}

// TestMultiObserverAllocFree extends the same guarantee to the fan-out
// path: attaching probes must cost allocations only at attach time.
func TestMultiObserverAllocFree(t *testing.T) {
	probes := [3]nopObserver{}
	eng, net, send := observerRig(t, func(n *Network) {
		for i := range probes {
			n.AddObserver(&probes[i])
		}
	})
	if m, ok := net.Observer().(*telemetry.Multi); !ok || m.Len() != 3 {
		t.Fatalf("observer %T, want *telemetry.Multi with 3 probes", net.Observer())
	}
	i := 4096
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const pkts = 64 * 200
	for n := 0; n < pkts; n++ {
		send(i)
		i++
	}
	eng.Run(eng.Now() + units.Second)
	runtime.ReadMemStats(&m1)
	perPkt := float64(m1.Mallocs-m0.Mallocs) / float64(pkts)
	t.Logf("%d packets, %d allocs (%.4f allocs/pkt)", pkts, m1.Mallocs-m0.Mallocs, perPkt)
	if perPkt > 0.01 {
		t.Errorf("3-probe fan-out allocates %.4f objects/packet, want 0", perPkt)
	}
	if probes[0].events == 0 || probes[0].events != probes[2].events {
		t.Errorf("probes saw %d/%d/%d events, want equal and nonzero",
			probes[0].events, probes[1].events, probes[2].events)
	}
}

func TestAddObserverComposition(t *testing.T) {
	_, net, _ := observerRig(t, nil)
	if net.Observer() != nil {
		t.Fatal("fresh network has an observer")
	}
	net.AddObserver(nil)
	if net.Observer() != nil {
		t.Fatal("AddObserver(nil) attached something")
	}
	a, b, c := &nopObserver{}, &nopObserver{}, &nopObserver{}
	net.AddObserver(a)
	if net.Observer() != Observer(a) {
		t.Fatal("single observer should attach directly, not via a mux")
	}
	net.AddObserver(b)
	m, ok := net.Observer().(*telemetry.Multi)
	if !ok || m.Len() != 2 {
		t.Fatalf("two observers: got %T", net.Observer())
	}
	net.AddObserver(c)
	if m2, ok := net.Observer().(*telemetry.Multi); !ok || m2.Len() != 3 || m2 != m {
		t.Fatal("third observer should extend the existing mux in place")
	}
	net.SetObserver(a)
	if net.Observer() != Observer(a) {
		t.Fatal("SetObserver did not replace the mux")
	}
	net.SetObserver(nil)
	if net.Observer() != nil {
		t.Fatal("SetObserver(nil) did not detach")
	}
}

// benchObserver measures dataplane throughput with b.ReportAllocs, so the
// benchmark doubles as the allocs/op regression signal: the nil path must
// report 0 allocs/op.
func benchObserver(b *testing.B, attach func(n *Network)) {
	eng, _, send := observerRig(b, attach)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(4096 + i)
	}
	eng.Run(eng.Now() + units.Second)
}

func BenchmarkObserverOverhead(b *testing.B) {
	b.Run("nil", func(b *testing.B) { benchObserver(b, nil) })
	b.Run("single", func(b *testing.B) {
		var p nopObserver
		benchObserver(b, func(n *Network) { n.AddObserver(&p) })
	})
	b.Run("multi3", func(b *testing.B) {
		var ps [3]nopObserver
		benchObserver(b, func(n *Network) {
			for i := range ps {
				n.AddObserver(&ps[i])
			}
		})
	})
	b.Run("monitor", func(b *testing.B) {
		benchObserver(b, func(n *Network) {
			n.AddObserver(telemetry.NewMonitor(n.Eng, telemetry.Config{}))
		})
	})
}
