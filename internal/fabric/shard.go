package fabric

import (
	"sort"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
	"vertigo/internal/xrand"
)

// ShardCtx marks a Network as one domain replica of a sharded (conservative
// parallel) run. Every replica instantiates the full topology — switch IDs,
// FIBs and fault state stay globally consistent that way — but traffic only
// ever touches elements the replica owns: packets leaving an owned switch
// through a port whose peer lives in another domain are handed to Emit at
// commit time instead of riding the local wire, and arrive in the peer's
// replica through InjectCross.
//
// Randomness discipline: a sharded replica never touches the engine's
// global random stream. Policies draw from per-switch positional streams
// and bit-error corruption from per-port ones, so every draw is a pure
// function of (seed, element identity, draw index) — independent of the
// domain count and of event interleaving across domains.
type ShardCtx struct {
	Domain       int
	SwitchDomain []int
	HostDomain   []int
	// Emit hands a committed cross-domain packet to the coordinator. It is
	// called on the domain's own goroutine mid-window; implementations
	// append to a domain-local outbox without synchronization.
	Emit func(dstDomain int, item CrossItem)
}

// CrossItem is one packet crossing a domain boundary: the frame by value
// (the source replica's pool frame is recycled at emission) plus the wire
// arrival time and the emitting port's identity. (At, SrcSw, SrcPort) is
// unique — a port's arrival times are strictly increasing — and names the
// canonical injection order, independent of how domains are partitioned.
type CrossItem struct {
	At             units.Time
	SrcSw, SrcPort int32
	DstSw          int32
	Pkt            packet.Packet
}

// SortCross sorts a batch into the canonical injection order. The key is
// unique, so the result is independent of the batch's accumulation order.
func SortCross(items []CrossItem) {
	sort.Slice(items, func(i, j int) bool { return crossLess(&items[i], &items[j]) })
}

// crossLess orders items by the canonical (At, SrcSw, SrcPort) key.
func crossLess(a, b *CrossItem) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.SrcSw != b.SrcSw {
		return a.SrcSw < b.SrcSw
	}
	return a.SrcPort < b.SrcPort
}

// NewSharded builds one domain replica: a full Network decorated with the
// shard context, cross-domain port marks, and the positional random streams
// sharded execution substitutes for the engine's global one.
func NewSharded(eng *sim.Engine, t *topo.Topology, met *metrics.Collector, cfg Config, sd *ShardCtx) *Network {
	n := New(eng, t, met, cfg)
	n.shard = sd
	seed := xrand.Mix(uint64(eng.Seed()))
	for _, s := range n.switches {
		// Per-switch policy stream: stream selector disjoint from portIdent
		// (port indexes never reach 1<<31).
		s.rng = xrand.New(seed ^ xrand.Mix(uint64(uint32(s.id+1))<<32|1<<31))
		for _, pt := range s.ports {
			peer := t.PortPeer[s.id][pt.idx]
			if !peer.Host && sd.SwitchDomain[peer.Node] != sd.SwitchDomain[s.id] {
				pt.xdom = true
				pt.xdst = int32(sd.SwitchDomain[peer.Node])
				pt.xpeer = int32(peer.Node)
			}
			pt.berRNG = xrand.New(seed ^ xrand.Mix(portIdent(pt.sw, pt.idx)^berSalt))
		}
	}
	for _, pt := range n.hostNIC {
		pt.berRNG = xrand.New(seed ^ xrand.Mix(portIdent(pt.sw, pt.idx)^berSalt))
	}
	n.inbox.init(n)
	return n
}

// berSalt separates a port's bit-error stream from its jitter stream.
const berSalt = 0x9e3779b97f4a7c15

// Sharded reports whether this Network is a domain replica.
func (n *Network) Sharded() bool { return n.shard != nil }

// ownsSwitch reports whether this replica owns switch sw (always true when
// not sharded). Fault accounting is gated on ownership so merged shard
// metrics count each transition exactly once.
func (n *Network) ownsSwitch(sw int) bool {
	return n.shard == nil || n.shard.SwitchDomain[sw] == n.shard.Domain
}

// ownsLink reports whether this replica accounts for link li: the domain of
// the link's switch endpoint A (for host links, the switch side). Both
// replicas of a cross-domain link apply the state flip; exactly one counts
// it.
func (n *Network) ownsLink(li int) bool {
	if n.shard == nil {
		return true
	}
	e := n.Topo.Links[li].A
	if e.Host {
		e = n.Topo.Links[li].B
	}
	return n.shard.SwitchDomain[e.Node] == n.shard.Domain
}

// ownsControl reports whether this replica accounts for control-plane-wide
// transitions (FIB heals): domain 0, arbitrarily but consistently.
func (n *Network) ownsControl() bool {
	return n.shard == nil || n.shard.Domain == 0
}

// emitCross hands a committed packet on a cross-domain port to the
// coordinator and recycles the local frame. The arrival time is at least
// one cross-domain propagation delay in the future, so the conservative
// window protocol guarantees the destination replica has not advanced past
// it.
func (pt *Port) emitCross(p *packet.Packet, at units.Time) {
	pt.net.shard.Emit(int(pt.xdst), CrossItem{
		At:      at,
		SrcSw:   int32(pt.sw),
		SrcPort: int32(pt.idx),
		DstSw:   pt.xpeer,
		Pkt:     *p,
	})
	pt.net.pool.Put(p)
}

// intn draws a policy decision: the engine's global stream when serial, the
// switch's positional stream when sharded.
func (s *Switch) intn(n int) int {
	if s.net.shard != nil {
		return int(s.rng.Int63n(int64(n)))
	}
	return s.net.Eng.Rand().Intn(n)
}

// berHit draws one bit-error corruption decision for this port.
func (pt *Port) berHit() bool {
	if pt.net.shard != nil {
		return pt.berRNG.Float64() < pt.ber
	}
	return pt.net.Eng.Rand().Float64() < pt.ber
}

// crossInbox delivers injected cross-domain packets in canonical order
// through one self-rescheduling engine event, so PeekTime always sees the
// earliest pending injection and the window barrier cannot advance past it.
type crossInbox struct {
	n       *Network
	items   []CrossItem
	head    int
	armed   bool
	armedAt units.Time
	fire    func()
}

func (ib *crossInbox) init(n *Network) {
	ib.n = n
	ib.fire = func() {
		now := ib.n.Eng.Now()
		if !ib.armed || now != ib.armedAt {
			return // superseded by a re-arm at an earlier injection
		}
		ib.armed = false
		for ib.head < len(ib.items) && ib.items[ib.head].At == now {
			it := &ib.items[ib.head]
			ib.head++
			p := ib.n.pool.Get()
			*p = it.Pkt
			ib.n.switches[it.DstSw].Receive(p)
		}
		if ib.head < len(ib.items) {
			ib.armed = true
			ib.armedAt = ib.items[ib.head].At
			ib.n.Eng.Sched(ib.armedAt, ib.fire)
		} else {
			ib.items = ib.items[:0]
			ib.head = 0
		}
	}
}

// InjectCross merges a batch of cross-domain arrivals — already in
// canonical (At, SrcSw, SrcPort) order — into the replica's inbox and arms
// the delivery pump. Called by the shard coordinator between windows, never
// mid-window; every item's At lies beyond the window just completed.
func (n *Network) InjectCross(batch []CrossItem) {
	ib := &n.inbox
	if len(batch) == 0 {
		return
	}
	if rem := ib.items[ib.head:]; len(rem) == 0 {
		ib.items = append(ib.items[:0], batch...)
		ib.head = 0
	} else {
		merged := make([]CrossItem, 0, len(rem)+len(batch))
		i, j := 0, 0
		for i < len(rem) && j < len(batch) {
			if crossLess(&rem[i], &batch[j]) {
				merged = append(merged, rem[i])
				i++
			} else {
				merged = append(merged, batch[j])
				j++
			}
		}
		merged = append(merged, rem[i:]...)
		merged = append(merged, batch[j:]...)
		ib.items, ib.head = merged, 0
	}
	if at := ib.items[ib.head].At; !ib.armed || at < ib.armedAt {
		// A stale pump event armed at a later instant self-rejects on the
		// armedAt check when it eventually fires.
		ib.armed = true
		ib.armedAt = at
		n.Eng.Sched(at, ib.fire)
	}
}
