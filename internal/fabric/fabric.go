// Package fabric is the switching substrate: output-queued switches wired
// together by store-and-forward links, plus the four forwarding policies the
// paper evaluates — ECMP, DRILL micro load balancing, DIBS random deflection,
// and Vertigo selective deflection with SRPT-sorted queues.
package fabric

import (
	"fmt"

	"vertigo/internal/buffer"
	"vertigo/internal/flowtab"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

// Policy selects a forwarding scheme.
type Policy int

// Forwarding policies.
const (
	ECMP Policy = iota
	DRILL
	DIBS
	Vertigo
)

func (p Policy) String() string {
	switch p {
	case ECMP:
		return "ecmp"
	case DRILL:
		return "drill"
	case DIBS:
		return "dibs"
	case Vertigo:
		return "vertigo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "ecmp":
		return ECMP, nil
	case "drill":
		return DRILL, nil
	case "dibs":
		return DIBS, nil
	case "vertigo":
		return Vertigo, nil
	}
	return 0, fmt.Errorf("fabric: unknown policy %q", s)
}

// Config parameterizes the fabric. Defaults mirror the paper's Table 1 and
// §4.1 settings.
type Config struct {
	Policy Policy

	// BufferBytes is the per-port buffer capacity (paper: 300 KB).
	BufferBytes units.ByteSize
	// ECNThreshold marks CE when a queue holds at least this many packets at
	// enqueue time (DCTCP K; paper default 65). Zero disables marking.
	ECNThreshold int
	// MaxHops drops packets that traverse more switch hops (a TTL), bounding
	// deflection loops. Zero selects the default of 64.
	MaxHops int
	// MaxDeflections drops a packet once it has been deflected this many
	// times. For Vertigo, repeated eviction of the same large-RFS packet
	// means it keeps losing rank comparisons; dropping it promptly hands
	// recovery to the sender, whose retransmission is boosted past the
	// contention (paper §3.1.2). DIBS instead absorbs bursts by letting
	// packets circulate until the hot port drains, bounded only by MaxHops.
	// Zero selects the policy default (8 for Vertigo, unlimited otherwise);
	// negative means unlimited.
	MaxDeflections int

	// Jitter is the maximum uniform per-packet processing jitter added to
	// each transmission. Zero-jitter discrete simulation phase-locks
	// same-rate senders (one wins every queue slot of a full buffer, the
	// other loses its whole window), which real forwarding pipelines do not;
	// a sub-serialization-time jitter breaks the lock without changing
	// rates. Negative disables; zero selects the 100 ns default.
	Jitter units.Time
	// FwdChoices is Vertigo's power-of-n for forwarding (paper default 2;
	// 1 = purely random, Fig. 12's "1FW").
	FwdChoices int
	// DeflChoices is Vertigo's power-of-n for deflection (paper default 2;
	// 1 = purely random, Fig. 12's "1DEF").
	DeflChoices int
	// Scheduling enables SRPT-sorted output queues (Fig. 11a ablation).
	Scheduling bool
	// Deflection enables deflection on overflow (Fig. 11a ablation).
	Deflection bool
}

// DefaultConfig returns the paper's default fabric settings for a policy.
func DefaultConfig(p Policy) Config {
	cfg := Config{
		Policy:       p,
		BufferBytes:  300 * units.KB,
		ECNThreshold: 65,
		MaxHops:      64,
		Jitter:       100 * units.Nanosecond,
		FwdChoices:   2,
		DeflChoices:  2,
		Scheduling:   true,
		Deflection:   true,
	}
	if p == Vertigo {
		cfg.MaxDeflections = 8
	}
	return cfg
}

// Receiver consumes packets delivered to a host NIC.
type Receiver interface {
	Receive(p *packet.Packet)
}

// Observer receives dataplane events for telemetry (§5: utilization, queue
// occupancy, deflections and drops are what lets monitoring distinguish
// microbursts from persistent congestion once deflection hides drops).
// Switch -1 denotes a host NIC port. All methods are called synchronously
// on the simulator thread.
type Observer interface {
	// Enqueue fires after a packet is queued; occ is the queue occupancy
	// including the packet.
	Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize)
	// Transmit fires when a packet starts serializing; busy is the
	// serialization time and occ the occupancy after dequeue.
	Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize)
	// Deflect fires when a packet is detoured away from its preferred port.
	Deflect(sw, fromPort, toPort int, p *packet.Packet)
	// Drop fires when the fabric discards a packet.
	Drop(sw, port int, p *packet.Packet, reason metrics.DropReason)
	// Deliver fires when a packet reaches its destination host.
	Deliver(host int, p *packet.Packet)
}

// Network instantiates a topology: one Switch per topology switch, one
// egress Port per switch port, and one NIC egress Port per host.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology
	Met  *metrics.Collector
	Cfg  Config

	switches []*Switch
	hostNIC  []*Port      // host egress toward its ToR
	hostRecv []Receiver   // host ingress handlers
	obs      Observer     // optional telemetry observer
	pool     *packet.Pool // per-simulation packet free list

	// Live forwarding state, mutable by fault injection (see fault methods
	// below): the FIB consulted by every switch (initially Topo.FIB, swapped
	// by control-plane healing), per-switch health, and per-link carrier-loss
	// bookkeeping for time-to-recover accounting.
	fib           [][][]int
	swDown        []bool
	linkDownSince []units.Time // -1 while a link is up
}

// Pool returns the network's packet free list. Transports allocate packets
// from it and the fabric returns dropped packets to it, so the per-segment
// data/ACK churn recycles instead of allocating. Nil-safe: a nil Network
// yields a nil Pool, which degrades to plain allocation.
func (n *Network) Pool() *packet.Pool {
	if n == nil {
		return nil
	}
	return n.pool
}

// SetObserver installs o as the only telemetry observer, detaching any
// already attached (nil to disable). Use AddObserver to attach several.
func (n *Network) SetObserver(o Observer) { n.obs = o }

// AddObserver attaches one more telemetry probe alongside any already
// attached, fanning events out through a telemetry.Multi once more than one
// is present. The no-observer fast path stays a single nil check — and zero
// allocations — on every dataplane event; the mux allocates only here, at
// attach time. Nil is a no-op.
func (n *Network) AddObserver(o Observer) {
	switch {
	case o == nil:
	case n.obs == nil:
		n.obs = o
	default:
		if m, ok := n.obs.(*telemetry.Multi); ok {
			m.Add(o)
		} else {
			n.obs = telemetry.NewMulti(n.obs, o)
		}
	}
}

// Observer returns the attached observer (a *telemetry.Multi when several
// probes are attached), or nil.
func (n *Network) Observer() Observer { return n.obs }

// New builds the runtime network for t.
func New(eng *sim.Engine, t *topo.Topology, met *metrics.Collector, cfg Config) *Network {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 64
	}
	switch {
	case cfg.MaxDeflections < 0:
		cfg.MaxDeflections = int(^uint(0) >> 1) // unlimited
	case cfg.MaxDeflections == 0:
		if cfg.Policy == Vertigo {
			cfg.MaxDeflections = 8
		} else {
			cfg.MaxDeflections = int(^uint(0) >> 1)
		}
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 100 * units.Nanosecond
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.FwdChoices <= 0 {
		cfg.FwdChoices = 2
	}
	if cfg.DeflChoices <= 0 {
		cfg.DeflChoices = 2
	}
	n := &Network{
		Eng:           eng,
		Topo:          t,
		Met:           met,
		Cfg:           cfg,
		hostRecv:      make([]Receiver, t.NumHosts),
		pool:          &packet.Pool{},
		fib:           t.FIB,
		swDown:        make([]bool, t.NumSwitches),
		linkDownSince: make([]units.Time, len(t.Links)),
	}
	for i := range n.linkDownSince {
		n.linkDownSince[i] = -1
	}

	n.switches = make([]*Switch, t.NumSwitches)
	for sw := 0; sw < t.NumSwitches; sw++ {
		n.switches[sw] = newSwitch(n, sw)
	}
	// Wire switch port delivery functions.
	for sw := 0; sw < t.NumSwitches; sw++ {
		s := n.switches[sw]
		for p := range s.ports {
			peer := t.PortPeer[sw][p]
			link := t.Links[t.PortLink[sw][p]]
			port := s.ports[p]
			port.rate = link.Rate
			port.rate0 = link.Rate
			port.delay = link.Delay
			if peer.Host {
				h := peer.Node
				port.deliver = func(pkt *packet.Packet) { n.deliverToHost(h, pkt) }
			} else {
				dst := n.switches[peer.Node]
				port.deliver = dst.Receive
			}
		}
	}
	// Host NICs: effectively unbounded egress FIFO; transports self-limit.
	n.hostNIC = make([]*Port, t.NumHosts)
	for h := 0; h < t.NumHosts; h++ {
		link := t.Links[t.HostLink[h]]
		tor := n.switches[t.HostToR[h]]
		n.hostNIC[h] = &Port{
			net:     n,
			sw:      -1,
			idx:     h,
			q:       buffer.NewDropTail(1 << 30),
			rate:    link.Rate,
			rate0:   link.Rate,
			delay:   link.Delay,
			deliver: tor.Receive,
		}
		n.hostNIC[h].initTx()
	}
	return n
}

// RegisterHost installs the receive handler for host h.
func (n *Network) RegisterHost(h int, r Receiver) { n.hostRecv[h] = r }

// Send injects a packet from its source host's NIC.
func (n *Network) Send(p *packet.Packet) {
	nic := n.hostNIC[p.Src]
	nic.q.Push(p)
	if n.obs != nil {
		n.obs.Enqueue(nic.sw, nic.idx, p, nic.q.Bytes())
	}
	nic.maybeSend()
}

// Switch returns the runtime switch with the given ID (for tests and
// instrumentation).
func (n *Network) Switch(id int) *Switch { return n.switches[id] }

// FailLinkAt schedules both directions of topology link li to fail at time
// at. Unless a control-plane healer later installs recomputed routes
// (InstallFIB), FIBs keep pointing at the dead link, modelling the window
// between carrier loss and control-plane repair during which only
// in-dataplane reactions (deflection) can rescue traffic. Switches see
// carrier loss instantly, so the forwarding policies treat a dead port
// exactly like a full queue. The failure is permanent unless a matching
// SetLinkStateAt(li, t, true) restores carrier.
func (n *Network) FailLinkAt(li int, at units.Time) error {
	return n.SetLinkStateAt(li, at, false)
}

// SetLinkStateAt schedules a carrier transition for topology link li: up
// false fails the link (both directions), up true restores it. Transitions
// are idempotent — failing a dead link or restoring a live one is a no-op —
// and same-timestamp events apply in scheduling order, so a down scheduled
// before an up at the same instant leaves the link up.
func (n *Network) SetLinkStateAt(li int, at units.Time, up bool) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	n.Eng.At(at, func() { n.SetLinkState(li, up) })
	return nil
}

// SetLinkState applies a carrier transition immediately. It must only be
// called from the simulator thread (an engine event); external callers use
// SetLinkStateAt. Panics on an out-of-range link, as scheduled callers were
// validated and direct callers are modelling bugs.
func (n *Network) SetLinkState(li int, up bool) {
	n.setLinkState(li, up)
	kind := telemetry.FaultLinkDown
	if up {
		kind = telemetry.FaultLinkUp
	}
	n.emitFault(telemetry.FaultEvent{Time: n.Eng.Now(), Kind: kind, Link: li, Switch: -1})
}

// setLinkState flips both ports of link li without emitting a fault event
// (switch-level transitions reuse it per attached link).
func (n *Network) setLinkState(li int, up bool) {
	for _, pt := range n.linkPorts(li) {
		switch {
		case up && pt.down:
			pt.down = false
			pt.wasDown = true
			pt.maybeSend() // resume draining anything queued since recovery
		case !up && !pt.down:
			pt.down = true
			pt.maybeSend() // flush the queue into the void
		}
	}
	now := n.Eng.Now()
	if up {
		if since := n.linkDownSince[li]; since >= 0 {
			n.Met.Recovered(now - since)
			n.linkDownSince[li] = -1
		}
	} else if n.linkDownSince[li] < 0 {
		n.linkDownSince[li] = now
	}
}

// SetSwitchStateAt schedules whole-switch failure (up false: every attached
// link loses carrier and arriving packets are discarded) or recovery (up
// true) at time at. Recovery restores every attached link; compose link and
// switch faults on disjoint links, as overlapping transitions are
// last-write-wins.
func (n *Network) SetSwitchStateAt(sw int, at units.Time, up bool) error {
	if sw < 0 || sw >= n.Topo.NumSwitches {
		return fmt.Errorf("fabric: switch %d out of range [0,%d)", sw, n.Topo.NumSwitches)
	}
	n.Eng.At(at, func() { n.SetSwitchState(sw, up) })
	return nil
}

// SetSwitchState applies a whole-switch transition immediately (simulator
// thread only; see SetSwitchStateAt).
func (n *Network) SetSwitchState(sw int, up bool) {
	n.swDown[sw] = !up
	for _, li := range n.Topo.PortLink[sw] {
		n.setLinkState(li, up)
	}
	kind := telemetry.FaultSwitchDown
	if up {
		kind = telemetry.FaultSwitchUp
	}
	n.emitFault(telemetry.FaultEvent{Time: n.Eng.Now(), Kind: kind, Link: -1, Switch: sw})
}

// SetLinkBERAt schedules a bit-error rate change on link li at time at: each
// packet serialized onto the link is thereafter corrupted (dropped with
// DropCorrupt, still occupying the wire) with probability ber. Zero clears
// the fault; ber must be in [0,1].
func (n *Network) SetLinkBERAt(li int, at units.Time, ber float64) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	if ber < 0 || ber > 1 {
		return fmt.Errorf("fabric: link %d bit-error rate %g outside [0,1]", li, ber)
	}
	n.Eng.At(at, func() { n.SetLinkBER(li, ber) })
	return nil
}

// SetLinkBER applies a bit-error rate change immediately (simulator thread
// only; see SetLinkBERAt).
func (n *Network) SetLinkBER(li int, ber float64) {
	for _, pt := range n.linkPorts(li) {
		pt.ber = ber
	}
	n.emitFault(telemetry.FaultEvent{
		Time: n.Eng.Now(), Kind: telemetry.FaultCorrupt, Link: li, Switch: -1, Value: ber,
	})
}

// SetLinkRateFactorAt schedules a rate brownout on link li at time at: the
// link serializes at factor times its configured rate. Factor 1 restores
// full speed; factor must be positive (values above 1 model an upgrade).
func (n *Network) SetLinkRateFactorAt(li int, at units.Time, factor float64) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("fabric: link %d rate factor %g must be positive", li, factor)
	}
	n.Eng.At(at, func() { n.SetLinkRateFactor(li, factor) })
	return nil
}

// SetLinkRateFactor applies a rate brownout immediately (simulator thread
// only; see SetLinkRateFactorAt).
func (n *Network) SetLinkRateFactor(li int, factor float64) {
	for _, pt := range n.linkPorts(li) {
		pt.rate = units.BitRate(float64(pt.rate0) * factor)
		if pt.rate < 1 {
			pt.rate = 1
		}
	}
	n.emitFault(telemetry.FaultEvent{
		Time: n.Eng.Now(), Kind: telemetry.FaultDegrade, Link: li, Switch: -1, Value: factor,
	})
}

// InstallFIB swaps the forwarding tables every switch consults — the
// control-plane healing step: a healer computes Topo.FIBExcluding(dead) after
// its convergence delay and installs it here, restoring reachability that
// pure dataplane reactions could only approximate. Must run on the simulator
// thread (schedule via the engine).
func (n *Network) InstallFIB(fib [][][]int) {
	n.fib = fib
	n.Met.FIBInstalls++
	n.emitFault(telemetry.FaultEvent{
		Time: n.Eng.Now(), Kind: telemetry.FaultFIBHeal, Link: -1, Switch: -1,
	})
}

// LinkDown reports whether link li currently has no carrier.
func (n *Network) LinkDown(li int) bool {
	return li >= 0 && li < len(n.linkDownSince) && n.linkDownSince[li] >= 0
}

// SwitchDown reports whether switch sw is currently failed.
func (n *Network) SwitchDown(sw int) bool {
	return sw >= 0 && sw < len(n.swDown) && n.swDown[sw]
}

func (n *Network) checkLink(li int) error {
	if li < 0 || li >= len(n.Topo.Links) {
		return fmt.Errorf("fabric: link %d out of range [0,%d)", li, len(n.Topo.Links))
	}
	return nil
}

// linkPorts returns the egress ports driving the two directions of link li.
func (n *Network) linkPorts(li int) [2]*Port {
	l := n.Topo.Links[li]
	get := func(e topo.Endpoint) *Port {
		if e.Host {
			return n.hostNIC[e.Node]
		}
		return n.switches[e.Node].ports[e.Port]
	}
	return [2]*Port{get(l.A), get(l.B)}
}

// emitFault accounts a fault transition and fans it out to any attached
// observer that implements telemetry.FaultObserver.
func (n *Network) emitFault(ev telemetry.FaultEvent) {
	n.Met.FaultEvents++
	if fo, ok := n.obs.(telemetry.FaultObserver); ok {
		fo.Fault(ev)
	}
}

func (n *Network) deliverToHost(h int, p *packet.Packet) {
	if h != p.Dst {
		// A deflected packet can only reach a foreign host if it was
		// deflected into a host-facing port, which the policies avoid; a
		// misdelivery here is a routing bug, not a simulation outcome.
		panic(fmt.Sprintf("fabric: packet for host %d delivered to host %d", p.Dst, h))
	}
	if n.obs != nil {
		n.obs.Deliver(h, p)
	}
	if r := n.hostRecv[h]; r != nil {
		r.Receive(p)
	}
}

func (n *Network) drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	if p.Kind == packet.Data {
		cls := metrics.Background
		if p.Incast {
			cls = metrics.Incast
		}
		n.Met.Drop(reason, cls)
	}
	if n.obs != nil {
		n.obs.Drop(sw, port, p, reason)
	}
	// The fabric holds the last reference to a dropped packet.
	n.pool.Put(p)
}

// Port is one egress queue with an attached link. Transmission is
// store-and-forward: a popped packet occupies the link for its
// serialization time, then arrives at the peer after the propagation delay.
type Port struct {
	net     *Network
	sw, idx int // switch ID and port index (-1/hostID for host NICs)
	q       buffer.Queue
	rate    units.BitRate // current rate (degraded during brownouts)
	rate0   units.BitRate // configured rate, restored by factor-1 transitions
	delay   units.Time
	busy    bool
	down    bool    // link failed: no carrier
	wasDown bool    // carrier was lost and later restored at least once
	ber     float64 // bit-error corruption probability per transmitted packet
	deliver func(*packet.Packet)

	// Transmit-path machinery, allocated once per port instead of twice per
	// packet: serialization order plus a fixed propagation delay means the
	// link delivers strictly FIFO, so in-flight packets ride a small queue
	// drained by one prebuilt arrival handler, and the end-of-serialization
	// callback is likewise shared.
	inflight []*packet.Packet
	infHead  int
	txDone   func() // fires when serialization ends: free the line
	arrive   func() // fires at the peer: deliver the oldest in-flight packet
}

// initTx builds the port's shared transmit callbacks.
func (pt *Port) initTx() {
	pt.txDone = func() {
		pt.busy = false
		pt.maybeSend()
	}
	pt.arrive = func() {
		p := pt.inflight[pt.infHead]
		pt.inflight[pt.infHead] = nil
		pt.infHead++
		// Reclaim the consumed prefix so a continuously busy link cannot
		// grow the slice without bound (only a handful of packets fit in
		// one propagation delay, so the copy is tiny).
		if pt.infHead == len(pt.inflight) {
			pt.inflight = pt.inflight[:0]
			pt.infHead = 0
		} else if pt.infHead > 32 && pt.infHead*2 >= len(pt.inflight) {
			pt.inflight = append(pt.inflight[:0], pt.inflight[pt.infHead:]...)
			pt.infHead = 0
		}
		pt.deliver(p)
	}
}

// Queue exposes the port's queue (used by policies and tests).
func (pt *Port) Queue() buffer.Queue { return pt.q }

// Down reports whether the port's link has failed.
func (pt *Port) Down() bool { return pt.down }

func (pt *Port) maybeSend() {
	if pt.busy {
		return
	}
	if pt.down {
		// No carrier: anything queued is lost, as on a real unplugged cable.
		for p := pt.q.Pop(); p != nil; p = pt.q.Pop() {
			pt.net.drop(pt.sw, pt.idx, p, metrics.DropLinkDown)
		}
		return
	}
	p := pt.q.Pop()
	if p == nil {
		return
	}
	if pt.wasDown && p.Kind == packet.Data {
		pt.net.Met.PostRecoveryTx++
	}
	pt.busy = true
	tx := pt.rate.TxTime(p.Size())
	eng := pt.net.Eng
	if j := pt.net.Cfg.Jitter; j > 0 {
		tx += units.Time(eng.Rand().Int63n(int64(j) + 1))
	}
	if o := pt.net.obs; o != nil {
		o.Transmit(pt.sw, pt.idx, p, tx, pt.q.Bytes())
	}
	// Fire-and-forget scheduling: neither callback is ever cancelled, so no
	// Timer handle is needed, and when this runs inside txDone (back-to-back
	// transmissions) or arrive (receive-side forwarding), the firing frame
	// self-reschedules in place — a saturated port rides a single tx event
	// instead of cycling one through the free list per packet.
	eng.SchedAfter(tx, pt.txDone)
	if pt.ber > 0 && eng.Rand().Float64() < pt.ber {
		// Bit-error corruption: the bits occupy the wire for the full
		// serialization time, but the far end discards the frame on checksum.
		pt.net.drop(pt.sw, pt.idx, p, metrics.DropCorrupt)
		return
	}
	pt.inflight = append(pt.inflight, p)
	eng.SchedAfter(tx+pt.delay, pt.arrive)
}

// Switch is an output-queued switch running one forwarding policy.
type Switch struct {
	net   *Network
	id    int
	ports []*Port

	// DRILL memory: per candidate-group, the least-loaded port last seen.
	// A flowtab keeps the per-packet lookup off Go's map runtime; there are
	// only a handful of candidate groups per switch, so the last-hit cache
	// makes the common repeated lookup two loads.
	drillMem *flowtab.Table[int32]

	// deflScratch backs deflectionSet, rebuilt on every call; victimOne
	// backs the single-victim overflow case. Both avoid a per-packet
	// allocation on the deflection paths.
	deflScratch []int
	victimOne   [1]*packet.Packet
}

func newSwitch(n *Network, id int) *Switch {
	s := &Switch{net: n, id: id, drillMem: flowtab.New[int32](8)}
	nports := n.Topo.Ports(id)
	s.ports = make([]*Port, nports)
	for p := 0; p < nports; p++ {
		var q buffer.Queue
		if n.Cfg.Policy == Vertigo && n.Cfg.Scheduling {
			q = buffer.NewSorted(n.Cfg.BufferBytes)
		} else {
			q = buffer.NewDropTail(n.Cfg.BufferBytes)
		}
		s.ports[p] = &Port{net: n, sw: id, idx: p, q: q}
		s.ports[p].initTx()
	}
	return s
}

// ID returns the switch's topology ID.
func (s *Switch) ID() int { return s.id }

// Port returns the egress port with the given index.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Receive processes an arriving packet: TTL check, route, enqueue. A failed
// switch discards everything that was already on the wire toward it.
func (s *Switch) Receive(p *packet.Packet) {
	if s.net.swDown[s.id] {
		s.net.drop(s.id, -1, p, metrics.DropLinkDown)
		return
	}
	p.Hops++
	if p.Hops > s.net.Cfg.MaxHops {
		s.net.drop(s.id, -1, p, metrics.DropTTL)
		return
	}
	switch s.net.Cfg.Policy {
	case ECMP:
		s.routeECMP(p)
	case DRILL:
		s.routeDRILL(p)
	case DIBS:
		s.routeDIBS(p)
	case Vertigo:
		s.routeVertigo(p)
	}
}

// enqueue pushes p on port i with ECN marking; reports success. A port
// whose link is down behaves like a full queue, so deflection-capable
// policies route around failures in place.
func (s *Switch) enqueue(i int, p *packet.Packet) bool {
	port := s.ports[i]
	if port.down || !port.q.Push(p) {
		return false
	}
	s.markECN(port, p)
	if o := s.net.obs; o != nil {
		o.Enqueue(s.id, i, p, port.q.Bytes())
	}
	port.maybeSend()
	return true
}

func (s *Switch) markECN(port *Port, p *packet.Packet) {
	k := s.net.Cfg.ECNThreshold
	if k > 0 && p.ECNCapable && port.q.Len() >= k {
		p.CE = true
		s.net.Met.ECNMarks++
	}
}

// candidates returns the live FIB next-hop ports for p's destination (the
// network's installed table, which control-plane healing may have swapped).
func (s *Switch) candidates(p *packet.Packet) []int {
	return s.net.fib[s.id][p.Dst]
}
