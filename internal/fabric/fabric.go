// Package fabric is the switching substrate: output-queued switches wired
// together by store-and-forward links, plus the four forwarding policies the
// paper evaluates — ECMP, DRILL micro load balancing, DIBS random deflection,
// and Vertigo selective deflection with SRPT-sorted queues.
package fabric

import (
	"fmt"

	"vertigo/internal/arena"
	"vertigo/internal/buffer"
	"vertigo/internal/flowtab"
	"vertigo/internal/metrics"
	"vertigo/internal/obs"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/telemetry"
	"vertigo/internal/topo"
	"vertigo/internal/units"
	"vertigo/internal/xrand"
)

// Policy selects a forwarding scheme.
type Policy int

// Forwarding policies.
const (
	ECMP Policy = iota
	DRILL
	DIBS
	Vertigo
)

func (p Policy) String() string {
	switch p {
	case ECMP:
		return "ecmp"
	case DRILL:
		return "drill"
	case DIBS:
		return "dibs"
	case Vertigo:
		return "vertigo"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a name to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "ecmp":
		return ECMP, nil
	case "drill":
		return DRILL, nil
	case "dibs":
		return DIBS, nil
	case "vertigo":
		return Vertigo, nil
	}
	return 0, fmt.Errorf("fabric: unknown policy %q", s)
}

// Config parameterizes the fabric. Defaults mirror the paper's Table 1 and
// §4.1 settings.
type Config struct {
	Policy Policy

	// BufferBytes is the per-port buffer capacity (paper: 300 KB).
	BufferBytes units.ByteSize
	// ECNThreshold marks CE when a queue holds at least this many packets at
	// enqueue time (DCTCP K; paper default 65). Zero disables marking.
	ECNThreshold int
	// MaxHops drops packets that traverse more switch hops (a TTL), bounding
	// deflection loops. Zero selects the default of 64.
	MaxHops int
	// MaxDeflections drops a packet once it has been deflected this many
	// times. For Vertigo, repeated eviction of the same large-RFS packet
	// means it keeps losing rank comparisons; dropping it promptly hands
	// recovery to the sender, whose retransmission is boosted past the
	// contention (paper §3.1.2). DIBS instead absorbs bursts by letting
	// packets circulate until the hot port drains, bounded only by MaxHops.
	// Zero selects the policy default (8 for Vertigo, unlimited otherwise);
	// negative means unlimited.
	MaxDeflections int

	// Jitter is the maximum uniform per-packet processing jitter added to
	// each transmission. Zero-jitter discrete simulation phase-locks
	// same-rate senders (one wins every queue slot of a full buffer, the
	// other loses its whole window), which real forwarding pipelines do not;
	// a sub-serialization-time jitter breaks the lock without changing
	// rates. Negative disables; zero selects the 100 ns default.
	Jitter units.Time
	// FwdChoices is Vertigo's power-of-n for forwarding (paper default 2;
	// 1 = purely random, Fig. 12's "1FW").
	FwdChoices int
	// DeflChoices is Vertigo's power-of-n for deflection (paper default 2;
	// 1 = purely random, Fig. 12's "1DEF").
	DeflChoices int
	// Scheduling enables SRPT-sorted output queues (Fig. 11a ablation).
	Scheduling bool
	// Deflection enables deflection on overflow (Fig. 11a ablation).
	Deflection bool

	// TrainLen caps how many back-to-back segments a port may serialize
	// under a single transmit event (a packet train). Coalescing changes
	// event granularity only — per-packet departure and arrival times, drop
	// decisions and queue occupancy readings are bit-identical to the
	// per-packet engine — so any value here alters performance, never
	// results. Values below 2 disable coalescing; trains also stand down
	// automatically whenever exactness cannot be proven: while a telemetry
	// observer is attached (per-packet Transmit callbacks need exact
	// now-stamps) and as soon as any fault is injected (carrier loss, BER,
	// brownouts can interleave with a planned train).
	TrainLen int
}

// DefaultConfig returns the paper's default fabric settings for a policy.
func DefaultConfig(p Policy) Config {
	cfg := Config{
		Policy:       p,
		BufferBytes:  300 * units.KB,
		ECNThreshold: 65,
		MaxHops:      64,
		Jitter:       100 * units.Nanosecond,
		FwdChoices:   2,
		DeflChoices:  2,
		Scheduling:   true,
		Deflection:   true,
		TrainLen:     64,
	}
	if p == Vertigo {
		cfg.MaxDeflections = 8
	}
	return cfg
}

// Receiver consumes packets delivered to a host NIC.
type Receiver interface {
	Receive(p *packet.Packet)
}

// Observer receives dataplane events for telemetry (§5: utilization, queue
// occupancy, deflections and drops are what lets monitoring distinguish
// microbursts from persistent congestion once deflection hides drops).
// Switch -1 denotes a host NIC port. All methods are called synchronously
// on the simulator thread.
type Observer interface {
	// Enqueue fires after a packet is queued; occ is the queue occupancy
	// including the packet.
	Enqueue(sw, port int, p *packet.Packet, occ units.ByteSize)
	// Transmit fires when a packet starts serializing; busy is the
	// serialization time and occ the occupancy after dequeue.
	Transmit(sw, port int, p *packet.Packet, busy units.Time, occ units.ByteSize)
	// Deflect fires when a packet is detoured away from its preferred port.
	Deflect(sw, fromPort, toPort int, p *packet.Packet)
	// Drop fires when the fabric discards a packet.
	Drop(sw, port int, p *packet.Packet, reason metrics.DropReason)
	// Deliver fires when a packet reaches its destination host.
	Deliver(host int, p *packet.Packet)
}

// Network instantiates a topology: one Switch per topology switch, one
// egress Port per switch port, and one NIC egress Port per host.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology
	Met  *metrics.Collector
	Cfg  Config

	switches []*Switch
	hostNIC  []*Port      // host egress toward its ToR
	hostRecv []Receiver   // host ingress handlers
	obs      Observer     // optional telemetry observer
	pool     *packet.Pool // per-simulation packet free list

	// Shared arenas for burst-grown in-flight FIFOs: a port whose wire
	// drains empty returns oversized backing arrays here instead of pinning
	// them, so a large fabric's memory tracks concurrent wire occupancy, not
	// the historical worst burst of every port.
	infP arena.Pool[*packet.Packet]
	infT arena.Pool[units.Time]

	// Live forwarding state, mutable by fault injection (see fault methods
	// below): the FIB consulted by every switch (initially Topo.FIB, swapped
	// by control-plane healing), per-switch health, and per-link carrier-loss
	// bookkeeping for time-to-recover accounting.
	fib           [][][]int
	swDown        []bool
	linkDownSince []units.Time // -1 while a link is up

	// faultsSeen latches true at the first fault injection (scheduled or
	// immediate) and permanently stands packet trains down: a fault can
	// retime or destroy a link mid-train, and proving exactness across every
	// such interleaving is not worth the complexity for runs that are fault
	// experiments anyway.
	faultsSeen bool

	// Train accounting (see TrainStats).
	trainsPlanned uint64
	trainSegs     uint64
	trainInvals   uint64

	// Sharded execution (nil when serial — see shard.go): the domain
	// context this replica runs under, and the inbox delivering packets
	// injected from other domains.
	shard *ShardCtx
	inbox crossInbox
}

// TrainStats reports packet-train coalescing activity: how many trains were
// planned, how many segments rode them, and how many plans were invalidated
// (a competing higher-priority enqueue or queue rewrite forced a replan).
type TrainStats struct {
	Trains      uint64 `json:"trains"`
	Segments    uint64 `json:"segments"`
	Invalidated uint64 `json:"invalidated"`
}

// TrainStats returns coalescing counters for instrumentation and tests.
func (n *Network) TrainStats() TrainStats {
	return TrainStats{Trains: n.trainsPlanned, Segments: n.trainSegs, Invalidated: n.trainInvals}
}

// trainsOK reports whether new packet trains may form right now. Checked at
// plan time so mid-run observer attachment or fault injection takes effect
// immediately.
func (n *Network) trainsOK() bool {
	return n.Cfg.TrainLen > 1 && n.obs == nil && !n.faultsSeen
}

// settleAll commits and abandons every port's pending train plan, restoring
// plain per-packet state. Called before any transition that breaks the
// conditions plans were built under (observer attachment, fault injection).
func (n *Network) settleAll() {
	now := n.Eng.Now()
	for _, s := range n.switches {
		for _, pt := range s.ports {
			pt.sync(now)
			pt.invalidate()
		}
	}
	for _, pt := range n.hostNIC {
		pt.sync(now)
		pt.invalidate()
	}
}

// Pool returns the network's packet free list. Transports allocate packets
// from it and the fabric returns dropped packets to it, so the per-segment
// data/ACK churn recycles instead of allocating. Nil-safe: a nil Network
// yields a nil Pool, which degrades to plain allocation.
func (n *Network) Pool() *packet.Pool {
	if n == nil {
		return nil
	}
	return n.pool
}

// SetObserver installs o as the only telemetry observer, detaching any
// already attached (nil to disable). Use AddObserver to attach several.
func (n *Network) SetObserver(o Observer) {
	n.settleAll()
	n.obs = o
}

// AddObserver attaches one more telemetry probe alongside any already
// attached, fanning events out through a telemetry.Multi once more than one
// is present. The no-observer fast path stays a single nil check — and zero
// allocations — on every dataplane event; the mux allocates only here, at
// attach time. Nil is a no-op.
func (n *Network) AddObserver(o Observer) {
	if o != nil {
		n.settleAll()
	}
	switch {
	case o == nil:
	case n.obs == nil:
		n.obs = o
	default:
		if m, ok := n.obs.(*telemetry.Multi); ok {
			m.Add(o)
		} else {
			n.obs = telemetry.NewMulti(n.obs, o)
		}
	}
}

// Observer returns the attached observer (a *telemetry.Multi when several
// probes are attached), or nil.
func (n *Network) Observer() Observer { return n.obs }

// New builds the runtime network for t.
func New(eng *sim.Engine, t *topo.Topology, met *metrics.Collector, cfg Config) *Network {
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 64
	}
	switch {
	case cfg.MaxDeflections < 0:
		cfg.MaxDeflections = int(^uint(0) >> 1) // unlimited
	case cfg.MaxDeflections == 0:
		if cfg.Policy == Vertigo {
			cfg.MaxDeflections = 8
		} else {
			cfg.MaxDeflections = int(^uint(0) >> 1)
		}
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 100 * units.Nanosecond
	} else if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.FwdChoices <= 0 {
		cfg.FwdChoices = 2
	}
	if cfg.DeflChoices <= 0 {
		cfg.DeflChoices = 2
	}
	if cfg.TrainLen < 2 {
		cfg.TrainLen = 0
	}
	n := &Network{
		Eng:           eng,
		Topo:          t,
		Met:           met,
		Cfg:           cfg,
		hostRecv:      make([]Receiver, t.NumHosts),
		pool:          &packet.Pool{},
		fib:           t.FIB,
		swDown:        make([]bool, t.NumSwitches),
		linkDownSince: make([]units.Time, len(t.Links)),
	}
	for i := range n.linkDownSince {
		n.linkDownSince[i] = -1
	}

	n.switches = make([]*Switch, t.NumSwitches)
	for sw := 0; sw < t.NumSwitches; sw++ {
		n.switches[sw] = newSwitch(n, sw)
	}
	// Wire switch port delivery functions.
	for sw := 0; sw < t.NumSwitches; sw++ {
		s := n.switches[sw]
		for p := range s.ports {
			peer := t.PortPeer[sw][p]
			link := t.Links[t.PortLink[sw][p]]
			port := s.ports[p]
			port.rate = link.Rate
			port.rate0 = link.Rate
			port.delay = link.Delay
			if peer.Host {
				h := peer.Node
				port.deliver = func(pkt *packet.Packet) { n.deliverToHost(h, pkt) }
			} else {
				dst := n.switches[peer.Node]
				port.deliver = dst.Receive
			}
		}
	}
	// Host NICs: effectively unbounded egress FIFO; transports self-limit.
	// One slab for all NIC ports, same as switch ports.
	nicSlab := make([]Port, t.NumHosts)
	n.hostNIC = make([]*Port, t.NumHosts)
	for h := 0; h < t.NumHosts; h++ {
		link := t.Links[t.HostLink[h]]
		tor := n.switches[t.HostToR[h]]
		pt := &nicSlab[h]
		*pt = Port{
			net:     n,
			sw:      -1,
			idx:     h,
			q:       buffer.NewDropTail(1 << 30),
			rate:    link.Rate,
			rate0:   link.Rate,
			delay:   link.Delay,
			deliver: tor.Receive,
		}
		n.hostNIC[h] = pt
		pt.initTx()
	}
	// Seed each port's private positional jitter stream from the engine seed
	// and the port's identity. Per-port streams are what let train planning
	// batch jitter draws without perturbing any other consumer of randomness:
	// the k-th draw of a port is pinned by (seed, port, k) alone.
	seed := xrand.Mix(uint64(eng.Seed()))
	for _, s := range n.switches {
		for _, pt := range s.ports {
			pt.rng = xrand.New(seed ^ xrand.Mix(portIdent(pt.sw, pt.idx)))
		}
	}
	for _, pt := range n.hostNIC {
		pt.rng = xrand.New(seed ^ xrand.Mix(portIdent(pt.sw, pt.idx)))
	}
	return n
}

// portIdent packs a port's identity into a unique 64-bit stream selector.
// Host NICs carry sw == -1, so switch IDs are offset by one.
func portIdent(sw, idx int) uint64 {
	return uint64(uint32(sw+1))<<32 | uint64(uint32(idx))
}

// RegisterHost installs the receive handler for host h.
func (n *Network) RegisterHost(h int, r Receiver) { n.hostRecv[h] = r }

// Send injects a packet from its source host's NIC.
func (n *Network) Send(p *packet.Packet) {
	nic := n.hostNIC[p.Src]
	nic.sync(n.Eng.Now())
	nic.q.Push(p)
	obsQueueDepth.Observe(int64(nic.q.Bytes()))
	if n.obs != nil {
		n.obs.Enqueue(nic.sw, nic.idx, p, nic.q.Bytes())
	}
	nic.maybeSend()
}

// Switch returns the runtime switch with the given ID (for tests and
// instrumentation).
func (n *Network) Switch(id int) *Switch { return n.switches[id] }

// FailLinkAt schedules both directions of topology link li to fail at time
// at. Unless a control-plane healer later installs recomputed routes
// (InstallFIB), FIBs keep pointing at the dead link, modelling the window
// between carrier loss and control-plane repair during which only
// in-dataplane reactions (deflection) can rescue traffic. Switches see
// carrier loss instantly, so the forwarding policies treat a dead port
// exactly like a full queue. The failure is permanent unless a matching
// SetLinkStateAt(li, t, true) restores carrier.
func (n *Network) FailLinkAt(li int, at units.Time) error {
	return n.SetLinkStateAt(li, at, false)
}

// SetLinkStateAt schedules a carrier transition for topology link li: up
// false fails the link (both directions), up true restores it. Transitions
// are idempotent — failing a dead link or restoring a live one is a no-op —
// and same-timestamp events apply in scheduling order, so a down scheduled
// before an up at the same instant leaves the link up.
func (n *Network) SetLinkStateAt(li int, at units.Time, up bool) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	n.faultsSeen = true
	n.Eng.At(at, func() { n.SetLinkState(li, up) })
	return nil
}

// SetLinkState applies a carrier transition immediately. It must only be
// called from the simulator thread (an engine event); external callers use
// SetLinkStateAt. Panics on an out-of-range link, as scheduled callers were
// validated and direct callers are modelling bugs.
func (n *Network) SetLinkState(li int, up bool) {
	n.setLinkState(li, up)
	kind := telemetry.FaultLinkDown
	if up {
		kind = telemetry.FaultLinkUp
	}
	if n.ownsLink(li) {
		n.emitFault(telemetry.FaultEvent{Time: n.Eng.Now(), Kind: kind, Link: li, Switch: -1})
	}
}

// setLinkState flips both ports of link li without emitting a fault event
// (switch-level transitions reuse it per attached link).
func (n *Network) setLinkState(li int, up bool) {
	n.faultsSeen = true
	for _, pt := range n.linkPorts(li) {
		pt.sync(n.Eng.Now())
		pt.invalidate()
	}
	for _, pt := range n.linkPorts(li) {
		switch {
		case up && pt.down:
			pt.down = false
			pt.wasDown = true
			pt.maybeSend() // resume draining anything queued since recovery
		case !up && !pt.down:
			pt.down = true
			pt.maybeSend() // flush the queue into the void
		}
	}
	now := n.Eng.Now()
	if up {
		if since := n.linkDownSince[li]; since >= 0 {
			// Sharded runs replicate the state flip in every domain but
			// account for it once, in the owning domain.
			if n.ownsLink(li) {
				n.Met.Recovered(now - since)
				obsTTR.Observe(int64(now - since))
			}
			n.linkDownSince[li] = -1
		}
	} else if n.linkDownSince[li] < 0 {
		n.linkDownSince[li] = now
	}
}

// SetSwitchStateAt schedules whole-switch failure (up false: every attached
// link loses carrier and arriving packets are discarded) or recovery (up
// true) at time at. Recovery restores every attached link; compose link and
// switch faults on disjoint links, as overlapping transitions are
// last-write-wins.
func (n *Network) SetSwitchStateAt(sw int, at units.Time, up bool) error {
	if sw < 0 || sw >= n.Topo.NumSwitches {
		return fmt.Errorf("fabric: switch %d out of range [0,%d)", sw, n.Topo.NumSwitches)
	}
	n.faultsSeen = true
	n.Eng.At(at, func() { n.SetSwitchState(sw, up) })
	return nil
}

// SetSwitchState applies a whole-switch transition immediately (simulator
// thread only; see SetSwitchStateAt).
func (n *Network) SetSwitchState(sw int, up bool) {
	n.swDown[sw] = !up
	for _, li := range n.Topo.PortLink[sw] {
		n.setLinkState(li, up)
	}
	kind := telemetry.FaultSwitchDown
	if up {
		kind = telemetry.FaultSwitchUp
	}
	if n.ownsSwitch(sw) {
		n.emitFault(telemetry.FaultEvent{Time: n.Eng.Now(), Kind: kind, Link: -1, Switch: sw})
	}
}

// SetLinkBERAt schedules a bit-error rate change on link li at time at: each
// packet serialized onto the link is thereafter corrupted (dropped with
// DropCorrupt, still occupying the wire) with probability ber. Zero clears
// the fault; ber must be in [0,1].
func (n *Network) SetLinkBERAt(li int, at units.Time, ber float64) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	if ber < 0 || ber > 1 {
		return fmt.Errorf("fabric: link %d bit-error rate %g outside [0,1]", li, ber)
	}
	n.faultsSeen = true
	n.Eng.At(at, func() { n.SetLinkBER(li, ber) })
	return nil
}

// SetLinkBER applies a bit-error rate change immediately (simulator thread
// only; see SetLinkBERAt).
func (n *Network) SetLinkBER(li int, ber float64) {
	n.faultsSeen = true
	for _, pt := range n.linkPorts(li) {
		pt.sync(n.Eng.Now())
		pt.invalidate()
		pt.ber = ber
	}
	if n.ownsLink(li) {
		n.emitFault(telemetry.FaultEvent{
			Time: n.Eng.Now(), Kind: telemetry.FaultCorrupt, Link: li, Switch: -1, Value: ber,
		})
	}
}

// SetLinkRateFactorAt schedules a rate brownout on link li at time at: the
// link serializes at factor times its configured rate. Factor 1 restores
// full speed; factor must be positive (values above 1 model an upgrade).
func (n *Network) SetLinkRateFactorAt(li int, at units.Time, factor float64) error {
	if err := n.checkLink(li); err != nil {
		return err
	}
	if factor <= 0 {
		return fmt.Errorf("fabric: link %d rate factor %g must be positive", li, factor)
	}
	n.faultsSeen = true
	n.Eng.At(at, func() { n.SetLinkRateFactor(li, factor) })
	return nil
}

// SetLinkRateFactor applies a rate brownout immediately (simulator thread
// only; see SetLinkRateFactorAt).
func (n *Network) SetLinkRateFactor(li int, factor float64) {
	n.faultsSeen = true
	for _, pt := range n.linkPorts(li) {
		pt.sync(n.Eng.Now())
		pt.invalidate()
		pt.rate = units.BitRate(float64(pt.rate0) * factor)
		if pt.rate < 1 {
			pt.rate = 1
		}
	}
	if n.ownsLink(li) {
		n.emitFault(telemetry.FaultEvent{
			Time: n.Eng.Now(), Kind: telemetry.FaultDegrade, Link: li, Switch: -1, Value: factor,
		})
	}
}

// InstallFIB swaps the forwarding tables every switch consults — the
// control-plane healing step: a healer computes Topo.FIBExcluding(dead) after
// its convergence delay and installs it here, restoring reachability that
// pure dataplane reactions could only approximate. Must run on the simulator
// thread (schedule via the engine).
func (n *Network) InstallFIB(fib [][][]int) {
	n.fib = fib
	if n.ownsControl() {
		n.Met.FIBInstalls++
		obsFIBInstalls.Inc()
		n.emitFault(telemetry.FaultEvent{
			Time: n.Eng.Now(), Kind: telemetry.FaultFIBHeal, Link: -1, Switch: -1,
		})
	}
}

// LinkDown reports whether link li currently has no carrier.
func (n *Network) LinkDown(li int) bool {
	return li >= 0 && li < len(n.linkDownSince) && n.linkDownSince[li] >= 0
}

// SwitchDown reports whether switch sw is currently failed.
func (n *Network) SwitchDown(sw int) bool {
	return sw >= 0 && sw < len(n.swDown) && n.swDown[sw]
}

func (n *Network) checkLink(li int) error {
	if li < 0 || li >= len(n.Topo.Links) {
		return fmt.Errorf("fabric: link %d out of range [0,%d)", li, len(n.Topo.Links))
	}
	return nil
}

// linkPorts returns the egress ports driving the two directions of link li.
func (n *Network) linkPorts(li int) [2]*Port {
	l := n.Topo.Links[li]
	get := func(e topo.Endpoint) *Port {
		if e.Host {
			return n.hostNIC[e.Node]
		}
		return n.switches[e.Node].ports[e.Port]
	}
	return [2]*Port{get(l.A), get(l.B)}
}

// emitFault accounts a fault transition and fans it out to any attached
// observer that implements telemetry.FaultObserver.
func (n *Network) emitFault(ev telemetry.FaultEvent) {
	n.Met.FaultEvents++
	obsFaultEvents.Inc()
	n.Eng.Flight().Record(obs.FlightFault, int64(ev.Time), int64(ev.Kind), int64(ev.Link), int64(ev.Switch))
	if fo, ok := n.obs.(telemetry.FaultObserver); ok {
		fo.Fault(ev)
	}
}

func (n *Network) deliverToHost(h int, p *packet.Packet) {
	if h != p.Dst {
		// A deflected packet can only reach a foreign host if it was
		// deflected into a host-facing port, which the policies avoid; a
		// misdelivery here is a routing bug, not a simulation outcome.
		panic(fmt.Sprintf("fabric: packet for host %d delivered to host %d", p.Dst, h))
	}
	if n.obs != nil {
		n.obs.Deliver(h, p)
	}
	if r := n.hostRecv[h]; r != nil {
		r.Receive(p)
	}
}

func (n *Network) drop(sw, port int, p *packet.Packet, reason metrics.DropReason) {
	if p.Kind == packet.Data {
		cls := metrics.Background
		if p.Incast {
			cls = metrics.Incast
		}
		n.Met.Drop(reason, cls)
		obsDrops.At(int(reason)).Inc()
	}
	n.Eng.Flight().Record(obs.FlightDrop, int64(n.Eng.Now()), int64(reason), int64(sw), int64(port))
	if n.obs != nil {
		n.obs.Drop(sw, port, p, reason)
	}
	// The fabric holds the last reference to a dropped packet.
	n.pool.Put(p)
}

// Port is one egress queue with an attached link. Transmission is
// store-and-forward: a popped packet occupies the link for its
// serialization time, then arrives at the peer after the propagation delay.
//
// The transmit path is event-coalesced. Instead of one end-of-serialization
// event per packet, an idle port with a backlog plans a packet train: it
// computes the exact departure and arrival time of up to TrainLen queued
// segments in one pass (drawing each segment's jitter from the port's
// positional stream) and arms a single transmit event at the train's end.
// Planned segments stay in the queue — occupancy readings must match the
// per-packet engine at every instant — and are committed (popped onto the
// wire) lazily by sync() the moment anything observes the port: an enqueue,
// a policy occupancy probe, an arrival, or the train-end event itself.
// Rewrites that would reorder a planned pop (a lower-rank insertion into a
// sorted queue, overflow eviction, any fault) invalidate the uncommitted
// tail, returning its jitter draws for positional reuse, so results stay
// bit-identical to TrainLen=0 while a saturated port pays one transmit
// event per train instead of per packet.
type Port struct {
	net     *Network
	sw, idx int // switch ID and port index (-1/hostID for host NICs)
	q       buffer.Queue
	sorted  *buffer.SortedQueue // q, when rank-sorted (nil for drop-tail)
	rate    units.BitRate       // current rate (degraded during brownouts)
	rate0   units.BitRate       // configured rate, restored by factor-1 transitions
	delay   units.Time
	down    bool    // link failed: no carrier
	wasDown bool    // carrier was lost and later restored at least once
	ber     float64 // bit-error corruption probability per transmitted packet
	deliver func(*packet.Packet)

	// Cross-domain egress (sharded runs only): the peer switch lives in
	// another domain, so committed packets are emitted to the coordinator
	// instead of riding the local wire, and trains stand down (commit-time
	// emission must happen per packet). berRNG is the positional bit-error
	// stream substituting for the engine's global one.
	xdom   bool
	xdst   int32 // destination domain
	xpeer  int32 // peer switch ID in that domain
	berRNG xrand.Source

	// rng is the port's private jitter stream. Draw k is a pure function of
	// (engine seed, port identity, k), so planning a train draws the same
	// values per packet as popping one packet at a time would.
	rng xrand.Source

	// Wire state. busyUntil is when the last scheduled serialization ends;
	// the port is idle iff now >= busyUntil. txArmed records whether a
	// transmit event is pending at txAt — a port whose queue drains empty
	// leaves none armed (lazy-busy), and the next enqueue arms a
	// continuation at busyUntil if the wire is still occupied. A stale
	// transmit event (abandoned by an invalidation) identifies itself by
	// firing when !txArmed or at a time other than txAt.
	busyUntil units.Time
	txAt      units.Time
	txArmed   bool
	// txSched is the instant the pending transmit event was armed: a
	// superseded event also fails this check, so re-arming for the same
	// txAt cannot resurrect an abandoned firing. contSched is the VIRTUAL
	// schedule time of the pending pop — the instant per-packet mode would
	// have scheduled it (the previous pop's start). It differs from txSched
	// after an invalidation re-arms the continuation: the replacement event
	// carries a later sequence number than the per-packet pop it stands in
	// for, and sync's early-fire hook uses contSched to restore the exact
	// same-instant fire order. contCtx extends the comparison one level:
	// it is the virtual pop's schedule *context* — the schedule time of the
	// event that would have scheduled it (see sim.Engine.CurSchedCtx) — and
	// breaks the tie when the virtual pop and a touching event were both
	// scheduled within the same instant.
	txSched   units.Time
	contSched units.Time
	contCtx   units.Time

	// Train plan, struct-of-arrays: segment i of the plan serializes over
	// [planStart[i], planEnd[i]) with jitter planJit[i] folded in. Segments
	// planHead..planN-1 are uncommitted and still occupy the queue.
	// planMaxRank is the largest planned rank (sorted queues), the
	// planning-time bound deciding whether an insertion preempts the plan.
	// planTarget adapts the train length: it grows toward Cfg.TrainLen on
	// cleanly completed plans and halves on invalidation, so ports whose
	// plans keep getting preempted stop paying for long ones.
	planStart   []units.Time
	planEnd     []units.Time
	planJit     []units.Time
	planHead    int
	planN       int
	planMaxRank uint32
	planTarget  int
	// headSched/headCtx track the virtual schedule position — (schedule
	// time, scheduler's schedule time) — the per-packet engine would have
	// given the pending head segment's pop event. Each commit advances them
	// by the chain rule (the next pop is scheduled inside the current one);
	// an enqueue-triggered commit overrides the context with the enqueuing
	// event's own position, exactly as per-packet mode would.
	headSched units.Time
	headCtx   units.Time

	// vposAt/vposCtx, when vposSet, override the virtual position maybeSend
	// attributes to its caller. A continuation transmit event (or sync's
	// early-fire of one) stands in for a per-packet pop scheduled at an
	// earlier position (contSched, contCtx); pops it performs must chain
	// their virtual positions from there, not from the stand-in event's
	// real schedule position.
	vposAt  units.Time
	vposCtx units.Time
	vposSet bool

	// drawBuf holds jitter values reclaimed from invalidated plan tails, in
	// draw order; drawJitter consumes it before touching rng so the k-th
	// committed pop always carries the k-th drawn value.
	drawBuf  []units.Time
	drawHead int

	// In-flight (committed) packets riding the link, delivered strictly
	// FIFO by one self-rescheduling arrival event: inflightAt[i] is the
	// exact wire arrival time of inflight[i].
	inflight   []*packet.Packet
	inflightAt []units.Time
	infHead    int
	arrAt      units.Time
	arrArmed   bool

	txFire  func() // train end / continuation: settle the plan, send more
	arrFire func() // deliver the due in-flight packet to the peer
}

// initTx builds the port's two shared event callbacks. Neither is ever
// cancelled: superseded armings are recognized by flag/time mismatch and
// fall through, so no Timer handles are needed and a saturated port rides
// one chained frame per direction.
func (pt *Port) initTx() {
	pt.txFire = func() {
		eng := pt.net.Eng
		now := eng.Now()
		if !pt.txArmed || now != pt.txAt || eng.CurSchedAt() != pt.txSched {
			return // superseded or early-fired; a live arming has its own event
		}
		if cs, cc := eng.CurSchedAt(), eng.CurSchedCtx(); cs < pt.contSched ||
			(cs == pt.contSched && cc < pt.contCtx) {
			// Armed earlier than per-packet mode would have scheduled this
			// pop (a train end is armed at plan time, not at the last
			// segment's start): same-instant events scheduled before
			// (contSched, contCtx) must fire first. Requeue behind them; any
			// later-sequenced event touching the port meanwhile pops via
			// sync's early-fire hook instead.
			pt.txSched = now
			eng.Sched(now, pt.txFire)
			return
		}
		pt.txArmed = false
		vs, vc := pt.contSched, pt.contCtx
		pt.sync(now)
		pt.vposAt, pt.vposCtx, pt.vposSet = vs, vc, true
		pt.maybeSend()
	}
	pt.arrFire = func() {
		now := pt.net.Eng.Now()
		if !pt.arrArmed || now != pt.arrAt {
			return
		}
		// Commit any segment that started serializing before now; the due
		// arrival is always committed by its own firing (its start precedes
		// its arrival by at least the propagation delay).
		pt.sync(now)
		pt.arrArmed = false
		if pt.infHead >= len(pt.inflight) || pt.inflightAt[pt.infHead] != now {
			pt.rearmArrive() // arming referred to a since-invalidated segment
			return
		}
		p := pt.inflight[pt.infHead]
		pt.inflight[pt.infHead] = nil
		pt.infHead++
		// Reclaim the consumed prefix so a continuously busy link cannot
		// grow the slices without bound (only a handful of packets fit in
		// one propagation delay, so the copy is tiny).
		if pt.infHead == len(pt.inflight) {
			pt.releaseInflight()
		} else if pt.infHead > 32 && pt.infHead*2 >= len(pt.inflight) {
			pt.inflight = append(pt.inflight[:0], pt.inflight[pt.infHead:]...)
			pt.inflightAt = append(pt.inflightAt[:0], pt.inflightAt[pt.infHead:]...)
			pt.infHead = 0
		}
		pt.rearmArrive()
		pt.deliver(p)
	}
}

// Queue exposes the port's queue, settled to the current instant so
// policies and tests read exact occupancy.
func (pt *Port) Queue() buffer.Queue {
	pt.sync(pt.net.Eng.Now())
	return pt.q
}

// Down reports whether the port's link has failed.
func (pt *Port) Down() bool { return pt.down }

// occBytes returns the queue occupancy an external observer must see: lazy
// train state settled to now first.
func (pt *Port) occBytes() units.ByteSize {
	pt.sync(pt.net.Eng.Now())
	return pt.q.Bytes()
}

// fitsNow reports whether n more bytes fit, after settling to now.
func (pt *Port) fitsNow(n units.ByteSize) bool {
	pt.sync(pt.net.Eng.Now())
	return pt.q.Fits(n)
}

// settle commits everything due and abandons the rest of the plan; callers
// are about to rewrite the queue in ways planning cannot survive
// (ForceInsert's rank insertion plus tail eviction).
func (pt *Port) settle() {
	pt.sync(pt.net.Eng.Now())
	pt.invalidate()
}

// sync commits every planned segment whose serialization started strictly
// before now: the packet pops from the queue and joins the in-flight list
// exactly as the per-packet engine already did at its start time. Strict
// inequality mirrors per-packet event order at shared instants, where the
// touching event (an arrival's enqueue) carries an earlier sequence number
// than the pop it ties with.
func (pt *Port) sync(now units.Time) {
	if pt.planHead < pt.planN {
		for pt.planHead < pt.planN && pt.planStart[pt.planHead] < now {
			pt.commitHead()
		}
		// Tie at the head segment's exact start instant: per-packet mode
		// scheduled this pop at the previous segment's start (the transmit
		// chain arms the next event at pop time), so it has already fired
		// from the touching event's point of view exactly when its virtual
		// position (headSched, headCtx) precedes the toucher's.
		if pt.planHead < pt.planN && pt.planStart[pt.planHead] == now {
			vs, vc := pt.headSched, pt.headCtx
			cs, cc := pt.net.Eng.CurSchedAt(), pt.net.Eng.CurSchedCtx()
			if vs < cs || (vs == cs && vc < cc) {
				pt.commitHead()
			}
		}
		if pt.planHead == pt.planN {
			// Clean completion: the plan survived untouched, so trains on
			// this port can afford to grow.
			pt.planHead, pt.planN = 0, 0
			if t := pt.planTarget << 1; t <= pt.net.Cfg.TrainLen {
				pt.planTarget = t
			}
		}
	}
	// A continuation pop pending at this exact instant whose virtual
	// schedule position (time, then schedule context) precedes the touching
	// event's would have fired first in per-packet mode: run it before the
	// touch observes or mutates the queue. The real event then self-rejects
	// on txArmed.
	if pt.planN == 0 && pt.txArmed && pt.txAt == now && !pt.down && pt.q.Len() > 0 {
		cs, cc := pt.net.Eng.CurSchedAt(), pt.net.Eng.CurSchedCtx()
		if pt.contSched < cs || (pt.contSched == cs && pt.contCtx < cc) {
			pt.txArmed = false
			pt.vposAt, pt.vposCtx, pt.vposSet = pt.contSched, pt.contCtx, true
			pt.maybeSend()
		}
	}
}

// keepInflight is the largest in-flight FIFO capacity a drained port keeps;
// burst-grown backing arrays past it return to the network's shared arena.
const keepInflight = 64

// pushInflight appends a committed packet to the in-flight FIFO, growing
// the parallel arrays through the network's shared arena.
func (pt *Port) pushInflight(p *packet.Packet, at units.Time) {
	if pt.xdom {
		// The peer lives in another domain: the packet leaves this replica
		// at commit time and arrives through the peer domain's inbox.
		pt.emitCross(p, at)
		return
	}
	if n := len(pt.inflight); n == cap(pt.inflight) || n == cap(pt.inflightAt) {
		need := 2 * n
		if need < 8 {
			need = 8
		}
		np := pt.net.infP.Get(need)[:n]
		nt := pt.net.infT.Get(need)[:n]
		copy(np, pt.inflight)
		copy(nt, pt.inflightAt)
		pt.net.infP.Put(pt.inflight)
		pt.net.infT.Put(pt.inflightAt)
		pt.inflight, pt.inflightAt = np, nt
	}
	pt.inflight = append(pt.inflight, p)
	pt.inflightAt = append(pt.inflightAt, at)
}

// releaseInflight resets a fully drained FIFO — the port-quiesce moment —
// returning burst-grown backing arrays to the shared arena.
func (pt *Port) releaseInflight() {
	if cap(pt.inflight) > keepInflight || cap(pt.inflightAt) > keepInflight {
		pt.net.infP.Put(pt.inflight)
		pt.net.infT.Put(pt.inflightAt)
		pt.inflight, pt.inflightAt = nil, nil
	} else {
		pt.inflight = pt.inflight[:0]
		pt.inflightAt = pt.inflightAt[:0]
	}
	pt.infHead = 0
}

// commitHead pops the plan's first uncommitted segment from the queue and
// moves it to the in-flight list, exactly as the per-packet engine did at
// the segment's start time.
func (pt *Port) commitHead() {
	p := pt.q.Pop()
	if pt.wasDown && p.Kind == packet.Data {
		pt.net.Met.PostRecoveryTx++
	}
	pt.pushInflight(p, pt.planEnd[pt.planHead]+pt.delay)
	pt.planHead++
	// Chain rule: per-packet mode schedules the next pop inside this one,
	// so the new head's pop is scheduled at the committed segment's start
	// with the old head's schedule time as its context.
	pt.headCtx = pt.headSched
	pt.headSched = pt.planStart[pt.planHead-1]
}

// invalidate abandons the uncommitted tail of the plan. The packets never
// left the queue, so only plan metadata resets; their already-drawn jitter
// values are reclaimed in order for positional reuse by the next draws.
func (pt *Port) invalidate() {
	if pt.planHead >= pt.planN {
		return
	}
	// If the arrival chain is armed at a planned (uncommitted) segment's
	// arrival, that segment no longer exists: disarm, and let the pending
	// event reject itself on the flag/time check. A replan re-arms.
	if pt.arrArmed && pt.infHead >= len(pt.inflight) {
		pt.arrArmed = false
	}
	pt.unconsumeDraws(pt.planJit[pt.planHead:pt.planN])
	// The wire is only committed through the end of the last synced
	// segment, which is where the first uncommitted one would have started.
	pt.busyUntil = pt.planStart[pt.planHead]
	// Re-arm the continuation pop at the abandoned head's start. The event
	// just scheduled carries this instant's sequence number, but per-packet
	// mode scheduled that pop while popping the previous segment — keep the
	// virtual schedule position so sync can early-fire it ahead of
	// same-instant events that should have out-sequenced it.
	pt.contSched = pt.headSched
	pt.contCtx = pt.headCtx
	pt.planHead, pt.planN = 0, 0
	pt.txArmed = true
	pt.txAt = pt.busyUntil
	pt.txSched = pt.net.Eng.Now()
	pt.net.Eng.Sched(pt.txAt, pt.txFire)
	if pt.planTarget > 2 {
		pt.planTarget >>= 1
	}
	pt.net.trainInvals++
	obsTrainInvals.Inc()
}

// unconsumeDraws pushes jits — the plan's uncommitted jitter values, which
// are always the most recently consumed draws — back to the FRONT of the
// pending-draw queue, so the next pops see exactly the sequence they would
// have drawn one at a time. Appending instead would rotate the order the
// second time a port invalidates with reclaimed draws still pending.
func (pt *Port) unconsumeDraws(jits []units.Time) {
	if len(jits) == 0 {
		return
	}
	old := pt.drawBuf
	rest := len(old) - pt.drawHead
	need := len(jits) + rest
	if cap(old) < need {
		nb := make([]units.Time, need, 2*need)
		copy(nb, jits)
		copy(nb[len(jits):], old[pt.drawHead:])
		pt.drawBuf = nb
	} else {
		pt.drawBuf = old[:need]
		copy(pt.drawBuf[len(jits):], old[pt.drawHead:pt.drawHead+rest])
		copy(pt.drawBuf[:len(jits)], jits)
	}
	pt.drawHead = 0
}

// drawJitter returns the next positional jitter value in [0, jmax]:
// reclaimed draws first, then fresh ones from the port's stream.
func (pt *Port) drawJitter(jmax int64) units.Time {
	if pt.drawHead < len(pt.drawBuf) {
		v := pt.drawBuf[pt.drawHead]
		pt.drawHead++
		if pt.drawHead == len(pt.drawBuf) {
			pt.drawBuf = pt.drawBuf[:0]
			pt.drawHead = 0
		}
		return v
	}
	return units.Time(pt.rng.Int63n(jmax + 1))
}

// rearmArrive schedules the delivery chain for the earliest pending
// arrival, committed or still planned. No-op when already armed or nothing
// is pending. An arrival armed at a planned segment is safe: the segment's
// start precedes its arrival, so the firing's own sync commits it first.
func (pt *Port) rearmArrive() {
	if pt.arrArmed {
		return
	}
	var at units.Time
	switch {
	case pt.infHead < len(pt.inflight):
		at = pt.inflightAt[pt.infHead]
	case pt.planHead < pt.planN:
		at = pt.planEnd[pt.planHead] + pt.delay
	default:
		return
	}
	pt.arrArmed = true
	pt.arrAt = at
	pt.net.Eng.Sched(at, pt.arrFire)
}

// maybeSend puts the wire to work. Callers must have settled the port to
// now (enqueue and the event callbacks all do).
func (pt *Port) maybeSend() {
	now := pt.net.Eng.Now()
	// The virtual schedule position of the event driving this call: the real
	// firing event's, unless a continuation stand-in overrode it (see vposAt).
	// Pops performed here chain their virtual positions from it.
	vs, vc := pt.net.Eng.CurSchedAt(), pt.net.Eng.CurSchedCtx()
	if pt.vposSet {
		vs, vc, pt.vposSet = pt.vposAt, pt.vposCtx, false
	}
	if pt.down {
		// No carrier: anything queued is lost, as on a real unplugged cable.
		pt.sync(now)
		pt.invalidate()
		for p := pt.q.Pop(); p != nil; p = pt.q.Pop() {
			pt.net.drop(pt.sw, pt.idx, p, metrics.DropLinkDown)
		}
		return
	}
	if pt.planHead < pt.planN && pt.planStart[pt.planHead] == now {
		// Enqueue landing exactly when the head segment starts: per-packet
		// mode's wire went idle at this instant (planned segments are
		// back-to-back), so its maybeSend pops the head synchronously inside
		// the enqueuing event — regardless of the armed continuation's
		// sequence position, which then self-rejects. Commit the head here
		// and stamp its successor's virtual position with this event's own,
		// since per-packet mode scheduled the next pop from right here.
		pt.commitHead()
		pt.headCtx = vs
		if pt.planHead == pt.planN {
			pt.contCtx = pt.headCtx
			pt.planHead, pt.planN = 0, 0
			if t := pt.planTarget << 1; t <= pt.net.Cfg.TrainLen {
				pt.planTarget = t
			}
		}
	}
	if now < pt.busyUntil {
		// Wire busy. Lazy-busy: the port that went empty armed no trailing
		// event, so the enqueue that found it mid-serialization arms the
		// continuation.
		if !pt.txArmed {
			pt.txArmed = true
			pt.txAt = pt.busyUntil
			pt.txSched = now
			// Genuine lazy-busy: the queue had drained, so no earlier pop
			// event ever existed and this event's own sequencing is exact.
			pt.contSched = now
			pt.contCtx = vs
			pt.net.Eng.Sched(pt.txAt, pt.txFire)
		}
		return
	}
	if pt.net.trainsOK() && pt.ber == 0 && !pt.xdom && pt.q.Len() > 1 {
		pt.plan(now, vs, vc)
	} else {
		pt.sendOne(now, vs)
	}
}

// plan coalesces up to planTarget queued segments into one packet train:
// exact per-segment times now, one transmit event at the train's end.
// vs/vc is the caller's virtual schedule position (see maybeSend), from
// which segment 0's pop — performed per-packet inside that very event —
// chains the plan's virtual pop positions.
func (pt *Port) plan(now, vs, vc units.Time) {
	n := pt.q.Len()
	if pt.planTarget == 0 {
		pt.planTarget = 8
	}
	if pt.planTarget > pt.net.Cfg.TrainLen {
		pt.planTarget = pt.net.Cfg.TrainLen
	}
	if n > pt.planTarget {
		n = pt.planTarget
	}
	if pt.planStart == nil {
		l := pt.net.Cfg.TrainLen
		pt.planStart = make([]units.Time, l)
		pt.planEnd = make([]units.Time, l)
		pt.planJit = make([]units.Time, l)
	}
	jmax := int64(pt.net.Cfg.Jitter)
	t := now
	for i := 0; i < n; i++ {
		tx := pt.rate.TxTime(pt.q.PeekAt(i).Size())
		var jit units.Time
		if jmax > 0 {
			jit = pt.drawJitter(jmax)
			tx += jit
		}
		pt.planStart[i] = t
		pt.planJit[i] = jit
		t += tx
		pt.planEnd[i] = t
	}
	if t == now {
		// Degenerate zero-duration train (absurd rate, zero jitter): fall
		// back to one-at-a-time so the train-end event cannot spin in place.
		// The consumed draws go back for positional reuse.
		pt.unconsumeDraws(pt.planJit[:n])
		pt.sendOne(now, vs)
		return
	}
	if pt.sorted != nil {
		pt.planMaxRank = pt.sorted.MaxRankAt(n - 1)
	}
	pt.planHead, pt.planN = 0, n
	pt.busyUntil = t
	pt.txAt = t
	pt.txArmed = true
	pt.txSched = now
	// Per-packet mode would schedule the pop at the train's end while
	// popping the last segment, not now; its scheduler — the pop of the
	// last segment — would itself have been scheduled at the start of the
	// one before (n >= 2 always: plans need at least two queued packets).
	pt.contSched = pt.planStart[n-1]
	pt.contCtx = pt.planStart[n-2]
	// The first segment starts now: per-packet mode pops it inside this very
	// event, so commit it eagerly — a later read at this same instant must
	// not see it still queued. Its virtual pop position is the caller's
	// virtual position; the chain rule in commitHead advances from there.
	pt.headSched = vs
	pt.headCtx = vc
	pt.commitHead()
	pt.net.Eng.Sched(t, pt.txFire)
	pt.rearmArrive()
	pt.net.trainsPlanned++
	pt.net.trainSegs += uint64(n)
	obsTrains.Inc()
	obsTrainSegs.Add(uint64(n))
}

// sendOne is the per-packet path: used when trains are disabled or stood
// down, and for a lone queued packet, where lazy-busy already means zero
// trailing events. vs is the caller's virtual schedule time (see
// maybeSend): the continuation this pop arms is virtually scheduled by it.
func (pt *Port) sendOne(now, vs units.Time) {
	p := pt.q.Pop()
	if p == nil {
		return
	}
	if pt.wasDown && p.Kind == packet.Data {
		pt.net.Met.PostRecoveryTx++
	}
	tx := pt.rate.TxTime(p.Size())
	if j := int64(pt.net.Cfg.Jitter); j > 0 {
		tx += pt.drawJitter(j)
	}
	if o := pt.net.obs; o != nil {
		o.Transmit(pt.sw, pt.idx, p, tx, pt.q.Bytes())
	}
	end := now + tx
	pt.busyUntil = end
	eng := pt.net.Eng
	if pt.q.Len() > 0 {
		pt.txAt = end
		pt.txArmed = true
		pt.txSched = now
		pt.contSched = now
		pt.contCtx = vs
		eng.Sched(end, pt.txFire)
	} else {
		// Lazy-busy: nothing left to send at end-of-serialization, so no
		// event; an enqueue landing before then arms the continuation.
		pt.txArmed = false
	}
	if pt.ber > 0 && pt.berHit() {
		// Bit-error corruption: the bits occupy the wire for the full
		// serialization time, but the far end discards the frame on checksum.
		pt.net.drop(pt.sw, pt.idx, p, metrics.DropCorrupt)
		return
	}
	pt.pushInflight(p, end+pt.delay)
	pt.rearmArrive()
}

// Switch is an output-queued switch running one forwarding policy.
type Switch struct {
	net   *Network
	id    int
	ports []*Port

	// DRILL memory: per candidate-group, the least-loaded port last seen.
	// A flowtab keeps the per-packet lookup off Go's map runtime; there are
	// only a handful of candidate groups per switch, so the last-hit cache
	// makes the common repeated lookup two loads.
	drillMem *flowtab.Table[int32]

	// deflScratch backs deflectionSet, rebuilt on every call; victimOne
	// backs the single-victim overflow case. Both avoid a per-packet
	// allocation on the deflection paths.
	deflScratch []int
	victimOne   [1]*packet.Packet

	// rng is the switch's positional policy stream, consulted instead of
	// the engine's global one in sharded runs (see Switch.intn) so random
	// routing decisions are independent of cross-domain interleaving.
	rng xrand.Source
}

func newSwitch(n *Network, id int) *Switch {
	s := &Switch{net: n, id: id, drillMem: flowtab.New[int32](8)}
	nports := n.Topo.Ports(id)
	// One contiguous slab for the switch's ports: a k=32 fat-tree has ~41k
	// ports, and per-port allocations both fragment the heap and scatter the
	// hot per-port wire state.
	slab := make([]Port, nports)
	s.ports = make([]*Port, nports)
	for p := 0; p < nports; p++ {
		var q buffer.Queue
		var sq *buffer.SortedQueue
		if n.Cfg.Policy == Vertigo && n.Cfg.Scheduling {
			sq = buffer.NewSorted(n.Cfg.BufferBytes)
			q = sq
		} else {
			q = buffer.NewDropTail(n.Cfg.BufferBytes)
		}
		pt := &slab[p]
		pt.net, pt.sw, pt.idx, pt.q, pt.sorted = n, id, p, q, sq
		s.ports[p] = pt
		pt.initTx()
	}
	return s
}

// ID returns the switch's topology ID.
func (s *Switch) ID() int { return s.id }

// Port returns the egress port with the given index.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// Receive processes an arriving packet: TTL check, route, enqueue. A failed
// switch discards everything that was already on the wire toward it.
func (s *Switch) Receive(p *packet.Packet) {
	if s.net.swDown[s.id] {
		s.net.drop(s.id, -1, p, metrics.DropLinkDown)
		return
	}
	p.Hops++
	if p.Hops > s.net.Cfg.MaxHops {
		s.net.drop(s.id, -1, p, metrics.DropTTL)
		return
	}
	switch s.net.Cfg.Policy {
	case ECMP:
		s.routeECMP(p)
	case DRILL:
		s.routeDRILL(p)
	case DIBS:
		s.routeDIBS(p)
	case Vertigo:
		s.routeVertigo(p)
	}
}

// enqueue pushes p on port i with ECN marking; reports success. A port
// whose link is down behaves like a full queue, so deflection-capable
// policies route around failures in place.
func (s *Switch) enqueue(i int, p *packet.Packet) bool {
	port := s.ports[i]
	if port.down {
		return false
	}
	port.sync(s.net.Eng.Now())
	if !port.q.Push(p) {
		return false
	}
	// A rank-sorted insertion below the plan's largest rank would pop ahead
	// of a planned segment; abandon the plan's uncommitted tail.
	if port.planHead < port.planN && port.sorted != nil && p.Rank() < port.planMaxRank {
		port.invalidate()
	}
	obsQueueDepth.Observe(int64(port.q.Bytes()))
	s.markECN(port, p)
	if o := s.net.obs; o != nil {
		o.Enqueue(s.id, i, p, port.q.Bytes())
	}
	port.maybeSend()
	return true
}

func (s *Switch) markECN(port *Port, p *packet.Packet) {
	k := s.net.Cfg.ECNThreshold
	if k > 0 && p.ECNCapable && port.q.Len() >= k {
		p.CE = true
		s.net.Met.ECNMarks++
		obsECNMarks.Inc()
	}
}

// candidates returns the live FIB next-hop ports for p's destination (the
// network's installed table, which control-plane healing may have swapped).
func (s *Switch) candidates(p *packet.Packet) []int {
	return s.net.fib[s.id][p.Dst]
}
