package fabric

import (
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

// fatTreeNet builds a k=4 fat-tree fabric with capture receivers.
func fatTreeNet(t *testing.T, cfg Config) (*sim.Engine, *Network, *metrics.Collector, [][]*packet.Packet) {
	t.Helper()
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		K: 4, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := New(eng, tp, met, cfg)
	got := make([][]*packet.Packet, tp.NumHosts)
	for h := 0; h < tp.NumHosts; h++ {
		h := h
		net.RegisterHost(h, recvFunc(func(p *packet.Packet) { got[h] = append(got[h], p) }))
	}
	return eng, net, met, got
}

func TestFatTreeDeliveryAllPairs(t *testing.T) {
	for _, policy := range []Policy{ECMP, DRILL, DIBS, Vertigo} {
		eng, net, met, got := fatTreeNet(t, DefaultConfig(policy))
		var ids packet.IDGen
		sent := 0
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				if src == dst {
					continue
				}
				net.Send(dataPkt(&ids, src, dst, uint64(src*16+dst), 1000))
				sent++
			}
		}
		eng.Run(units.Second)
		total := 0
		for _, g := range got {
			total += len(g)
		}
		if total != sent || met.TotalDrops() != 0 {
			t.Fatalf("%v: delivered %d of %d, drops %d", policy, total, sent, met.TotalDrops())
		}
	}
}

func TestFatTreeHopCounts(t *testing.T) {
	eng, net, _, got := fatTreeNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	net.Send(dataPkt(&ids, 0, 1, 1, 10))  // same edge: 1 switch hop
	net.Send(dataPkt(&ids, 0, 2, 2, 10))  // same pod: 3 hops
	net.Send(dataPkt(&ids, 0, 15, 3, 10)) // cross-pod: 5 hops
	eng.Run(units.Second)
	if got[1][0].Hops != 1 || got[2][0].Hops != 3 || got[15][0].Hops != 5 {
		t.Fatalf("hops = %d/%d/%d, want 1/3/5",
			got[1][0].Hops, got[2][0].Hops, got[15][0].Hops)
	}
}

func TestJitterPreservesDeterminism(t *testing.T) {
	run := func() (uint64, int) {
		eng, net, _, got := fatTreeNet(t, DefaultConfig(Vertigo))
		var ids packet.IDGen
		for i := 0; i < 200; i++ {
			net.Send(dataPkt(&ids, i%8, 8+(i%8), uint64(i), uint32(1000+i)))
		}
		eng.Run(units.Second)
		total := 0
		for _, g := range got {
			total += len(g)
		}
		return eng.Events(), total
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("jittered runs diverged: %d/%d vs %d/%d", e1, t1, e2, t2)
	}
}

func TestJitterDisabledExactTiming(t *testing.T) {
	cfg := DefaultConfig(ECMP)
	cfg.Jitter = -1 // explicit off: store-and-forward timing is exact
	tp, err := topo.NewFatTree(topo.FatTreeConfig{
		K: 4, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := New(eng, tp, met, cfg)
	var arrived units.Time
	net.RegisterHost(1, recvFunc(func(p *packet.Packet) { arrived = eng.Now() }))
	var ids packet.IDGen
	p := dataPkt(&ids, 0, 1, 1, 10)
	p.Marked = false // exactly 1500 wire bytes
	net.Send(p)
	eng.Run(units.Second)
	// Same-edge path: NIC serialize (1500B @ 10G = 1200ns) + 500ns prop +
	// edge serialize 1200ns + 500ns prop = 3400ns exactly.
	if want := units.Time(3400); arrived != want {
		t.Fatalf("arrival at %v, want exactly %v with jitter off", arrived, want)
	}
}
