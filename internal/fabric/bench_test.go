package fabric

import (
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

// benchFabric measures raw dataplane throughput: wall time per simulated
// packet pushed through a 3-hop leaf-spine path, per policy. This is the
// substrate cost that bounds how much simulated traffic a core-second buys.
func benchFabric(b *testing.B, policy Policy) {
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := New(eng, tp, met, DefaultConfig(policy))
	delivered := 0
	for h := 0; h < tp.NumHosts; h++ {
		net.RegisterHost(h, recvFunc(func(p *packet.Packet) { delivered++ }))
	}
	var ids packet.IDGen
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(&packet.Packet{
			ID: ids.Next(), Kind: packet.Data,
			Src: i % 2, Dst: 2 + i%2, Flow: uint64(i % 8),
			PayloadLen: packet.MSS, Marked: policy == Vertigo,
			Info: packet.FlowInfo{RFS: uint32(i%1000 + 1)},
		})
		// Drain periodically so queues stay at realistic depth.
		if i%64 == 63 {
			eng.Run(eng.Now() + 100*units.Microsecond)
		}
	}
	eng.Run(eng.Now() + units.Second)
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

func BenchmarkFabricECMP(b *testing.B)    { benchFabric(b, ECMP) }
func BenchmarkFabricDRILL(b *testing.B)   { benchFabric(b, DRILL) }
func BenchmarkFabricDIBS(b *testing.B)    { benchFabric(b, DIBS) }
func BenchmarkFabricVertigo(b *testing.B) { benchFabric(b, Vertigo) }
