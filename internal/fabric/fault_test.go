package fabric

import (
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// Topology of testNet (2 spines, 2 leaves, 2 hosts/leaf): links 0-3 are host
// access links, link 4 is leaf 0's first uplink (to spine 0), link 5 its
// second; switch IDs 0,1 are leaves, 2,3 spines.

func TestFailLinkAtTimeZero(t *testing.T) {
	// Failing a link at t=0, before any event has run, must blackhole the
	// destination from the first packet on.
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	if err := net.FailLinkAt(1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(units.Second)
	if len(got[1]) != 0 {
		t.Fatalf("delivered %d packets over a link dead since t=0", len(got[1]))
	}
	if !net.LinkDown(1) {
		t.Fatal("LinkDown(1) = false after FailLinkAt(1, 0)")
	}
	if met.FaultEvents != 1 {
		t.Fatalf("FaultEvents = %d, want 1", met.FaultEvents)
	}
}

func TestDoubleFailSameLinkIsIdempotent(t *testing.T) {
	// Failing an already-dead link must not disturb downtime accounting: the
	// recovery still reports one outage spanning the first failure.
	eng, net, met, _ := testNet(t, DefaultConfig(ECMP))
	if err := net.FailLinkAt(4, 10*units.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := net.FailLinkAt(4, 20*units.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkStateAt(4, 30*units.Microsecond, true); err != nil {
		t.Fatal(err)
	}
	eng.Run(units.Millisecond)
	if net.LinkDown(4) {
		t.Fatal("link still down after recovery")
	}
	if met.RecoveryCount() != 1 {
		t.Fatalf("recorded %d recoveries, want 1", met.RecoveryCount())
	}
	if want := 20 * units.Microsecond; met.MTTR() != want {
		t.Fatalf("downtime = %v, want %v (from the first failure)", met.MTTR(), want)
	}
}

func TestLinkStateValidation(t *testing.T) {
	_, net, _, _ := testNet(t, DefaultConfig(ECMP))
	if err := net.SetLinkStateAt(-1, 0, false); err == nil {
		t.Error("negative link index accepted")
	}
	if err := net.SetLinkStateAt(len(net.Topo.Links), 0, true); err == nil {
		t.Error("out-of-range link index accepted")
	}
	if err := net.SetSwitchStateAt(-1, 0, false); err == nil {
		t.Error("negative switch index accepted")
	}
	if err := net.SetSwitchStateAt(net.Topo.NumSwitches, 0, false); err == nil {
		t.Error("out-of-range switch index accepted")
	}
	if err := net.SetLinkBERAt(0, 0, -0.1); err == nil {
		t.Error("negative BER accepted")
	}
	if err := net.SetLinkBERAt(0, 0, 1.5); err == nil {
		t.Error("BER above 1 accepted")
	}
	if err := net.SetLinkRateFactorAt(0, 0, 0); err == nil {
		t.Error("zero rate factor accepted")
	}
	if err := net.SetLinkRateFactorAt(1<<20, 0, 0.5); err == nil {
		t.Error("out-of-range link index accepted for rate factor")
	}
}

func TestFailThenRecoverSameTimestamp(t *testing.T) {
	// A down and an up scheduled for the same instant resolve in scheduling
	// order: down first, up second leaves the link usable.
	eng, net, _, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	const at = 10 * units.Microsecond
	if err := net.SetLinkStateAt(1, at, false); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkStateAt(1, at, true); err != nil {
		t.Fatal(err)
	}
	eng.Run(20 * units.Microsecond)
	if net.LinkDown(1) {
		t.Fatal("link down after same-timestamp fail-then-recover")
	}
	for i := 0; i < 10; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(units.Second)
	if len(got[1]) != 10 {
		t.Fatalf("delivered %d of 10 after recovery", len(got[1]))
	}
}

func TestRecoveredLinkCarriesTraffic(t *testing.T) {
	// Fail host 1's access link, let the blackhole happen, recover it, send
	// again: the new traffic must flow and be counted as post-recovery.
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	if err := net.FailLinkAt(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := net.SetLinkStateAt(1, 100*units.Microsecond, true); err != nil {
		t.Fatal(err)
	}
	eng.Run(50 * units.Microsecond)
	net.Send(dataPkt(&ids, 0, 1, 5, 100)) // dies on the dead link
	eng.Run(200 * units.Microsecond)
	const n = 10
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(units.Second)
	if len(got[1]) != n {
		t.Fatalf("delivered %d of %d after carrier recovery", len(got[1]), n)
	}
	if met.PostRecoveryTx == 0 {
		t.Fatal("PostRecoveryTx = 0: recovered link's traffic not accounted")
	}
	if met.RecoveryCount() != 1 || met.MTTR() != 100*units.Microsecond {
		t.Fatalf("recoveries = %d (MTTR %v), want one 100µs outage", met.RecoveryCount(), met.MTTR())
	}
}

func TestCorruptionDropsProbabilistically(t *testing.T) {
	// BER 1 corrupts every packet on the wire: nothing arrives, every loss is
	// classified DropCorrupt, and the wire still carries (and wastes) them.
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	if err := net.SetLinkBERAt(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(units.Second)
	if len(got[1]) != 0 {
		t.Fatalf("delivered %d packets through a BER=1 link", len(got[1]))
	}
	if met.Drops[metrics.DropCorrupt] != n {
		t.Fatalf("corrupt drops = %d, want %d", met.Drops[metrics.DropCorrupt], n)
	}
	// Clearing the fault restores delivery.
	net.SetLinkBER(1, 0)
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(2 * units.Second)
	if len(got[1]) != n {
		t.Fatalf("delivered %d of %d after clearing BER", len(got[1]), n)
	}
}

func TestDegradeSlowsDelivery(t *testing.T) {
	// The same transfer over a 10x-degraded access link must finish later.
	elapsed := func(factor float64) units.Time {
		eng, net, _, _ := testNet(t, DefaultConfig(ECMP))
		var ids packet.IDGen
		var last units.Time
		var delivered int
		net.RegisterHost(1, recvFunc(func(p *packet.Packet) {
			last = eng.Now()
			delivered++
		}))
		if factor != 1 {
			if err := net.SetLinkRateFactorAt(1, 0, factor); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			net.Send(dataPkt(&ids, 0, 1, 5, 100))
		}
		eng.Run(units.Second)
		if delivered != 20 {
			t.Fatalf("factor %g: delivered %d of 20", factor, delivered)
		}
		return last
	}
	full := elapsed(1)
	slow := elapsed(0.1)
	if slow <= full {
		t.Fatalf("degraded run finished at %v, full-rate at %v; want slower", slow, full)
	}
}

func TestSwitchDeathDropsArrivals(t *testing.T) {
	// Kill spine 0 (switch ID 2) and flood cross-leaf ECMP traffic: flows
	// hashed onto the dead spine blackhole, and any packet already in flight
	// toward it is discarded on arrival, never delivered.
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	// Kill mid-burst so packets are queued toward (and in flight to) the
	// spine when it dies.
	if err := net.SetSwitchStateAt(2, 5*units.Microsecond, false); err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 2, uint64(i), 100)) // many flows, both spines
	}
	eng.Run(units.Second)
	if !net.SwitchDown(2) {
		t.Fatal("SwitchDown(2) = false")
	}
	if len(got[2]) == n {
		t.Fatal("all packets delivered despite a dead spine")
	}
	// Losses at a dead port are carrier drops (flushed queues, discarded
	// arrivals) or tail drops, since a dead port behaves like a full queue.
	if met.Drops[metrics.DropLinkDown]+met.Drops[metrics.DropOverflow] == 0 {
		t.Fatal("no drops recorded for traffic into the dead spine")
	}
	// Recovery brings the whole switch back: new flows all complete.
	net.SetSwitchState(2, true)
	before := len(got[2])
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 2, uint64(100+i), 100))
	}
	eng.Run(2 * units.Second)
	if len(got[2])-before != n {
		t.Fatalf("delivered %d of %d after switch recovery", len(got[2])-before, n)
	}
}

func TestInstallFIBRoutesAroundFailure(t *testing.T) {
	// ECMP with leaf 0's uplink to spine 0 dead: half the cross-leaf flows
	// blackhole. Installing FIBs computed without the dead link (the healing
	// step) restores full delivery with no deflection needed.
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	if err := net.FailLinkAt(4, 0); err != nil {
		t.Fatal(err)
	}
	eng.At(10*units.Microsecond, func() {
		net.InstallFIB(net.Topo.FIBExcluding(func(li int) bool { return li == 4 }))
	})
	eng.Run(20 * units.Microsecond)
	const n = 40
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 2, uint64(i), 100))
	}
	eng.Run(units.Second)
	if len(got[2]) != n {
		t.Fatalf("delivered %d of %d after healing around the dead uplink", len(got[2]), n)
	}
	if met.FIBInstalls != 1 {
		t.Fatalf("FIBInstalls = %d, want 1", met.FIBInstalls)
	}
	if met.Deflections != 0 {
		t.Fatal("healed ECMP fabric should not deflect")
	}
}
