package fabric

import (
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

// testNet builds a 2-spine, 2-leaf, 2-hosts-per-leaf fabric with a capture
// receiver per host.
func testNet(t *testing.T, cfg Config) (*sim.Engine, *Network, *metrics.Collector, [][]*packet.Packet) {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := New(eng, tp, met, cfg)
	got := make([][]*packet.Packet, tp.NumHosts)
	for h := 0; h < tp.NumHosts; h++ {
		h := h
		net.RegisterHost(h, recvFunc(func(p *packet.Packet) { got[h] = append(got[h], p) }))
	}
	return eng, net, met, got
}

type recvFunc func(*packet.Packet)

func (f recvFunc) Receive(p *packet.Packet) { f(p) }

func dataPkt(ids *packet.IDGen, src, dst int, flow uint64, rfs uint32) *packet.Packet {
	return &packet.Packet{
		ID: ids.Next(), Kind: packet.Data, Src: src, Dst: dst, Flow: flow,
		PayloadLen: packet.MSS, Marked: true, Info: packet.FlowInfo{RFS: rfs},
	}
}

func TestDeliveryAcrossFabric(t *testing.T) {
	for _, policy := range []Policy{ECMP, DRILL, DIBS, Vertigo} {
		eng, net, _, got := testNet(t, DefaultConfig(policy))
		var ids packet.IDGen
		// Host 0 (leaf 0) to host 2 (leaf 1): 3 switch hops.
		p := dataPkt(&ids, 0, 2, 7, 1000)
		net.Send(p)
		eng.Run(units.Second)
		if len(got[2]) != 1 {
			t.Fatalf("%v: delivered %d packets, want 1", policy, len(got[2]))
		}
		if got[2][0].Hops != 3 {
			t.Errorf("%v: hops = %d, want 3 (leaf-spine-leaf)", policy, got[2][0].Hops)
		}
	}
}

func TestECMPFlowStickiness(t *testing.T) {
	eng, net, _, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	// Many packets of one flow: all must survive on the same path in FIFO
	// order (ECMP never reorders a flow).
	for i := 0; i < 50; i++ {
		net.Send(dataPkt(&ids, 0, 2, 9, uint32(5000-i)))
	}
	eng.Run(units.Second)
	if len(got[2]) != 50 {
		t.Fatalf("delivered %d, want 50", len(got[2]))
	}
	for i := 1; i < 50; i++ {
		if got[2][i].ID < got[2][i-1].ID {
			t.Fatal("ECMP reordered a single flow")
		}
	}
}

func TestVertigoSRPTDequeueOrder(t *testing.T) {
	eng, net, _, got := testNet(t, DefaultConfig(Vertigo))
	var ids packet.IDGen
	// Two senders at 10G into one 10G downlink: a queue builds at the ToR.
	// Host 1 sends a large-RFS flow, host 2 a tiny-RFS flow that must jump
	// the queue.
	for i := 0; i < 10; i++ {
		net.Send(dataPkt(&ids, 1, 0, 1, 100_000))
		net.Send(dataPkt(&ids, 2, 0, 2, 10))
	}
	eng.Run(units.Second)
	if len(got[0]) != 20 {
		t.Fatalf("delivered %d, want 20", len(got[0]))
	}
	// The first arrival entered an empty queue; after that the small-RFS
	// flow must overtake: packets of flow 2 finish before the last of flow 1.
	lastSmall, lastBig := -1, -1
	for i, p := range got[0] {
		if p.Flow == 2 {
			lastSmall = i
		} else {
			lastBig = i
		}
	}
	if lastSmall > lastBig {
		t.Fatalf("small-RFS flow finished at %d, after large-RFS at %d", lastSmall, lastBig)
	}
}

func TestVertigoDeflectionOnOverflow(t *testing.T) {
	cfg := DefaultConfig(Vertigo)
	cfg.BufferBytes = 5 * units.ByteSize(packet.MSS+packet.HeaderLen+packet.ShimHeaderLen)
	eng, net, met, got := testNet(t, cfg)
	var ids packet.IDGen
	// Burst from two hosts on leaf 1 into host 0: the ToR downlink floods.
	for i := 0; i < 40; i++ {
		net.Send(dataPkt(&ids, 2, 0, 3, 60_000))
		net.Send(dataPkt(&ids, 3, 0, 4, 60_000))
	}
	eng.Run(units.Second)
	if met.Deflections == 0 {
		t.Fatal("no deflections despite overflow")
	}
	deflected := 0
	for _, p := range got[0] {
		if p.Deflections > 0 {
			deflected++
			if p.Hops <= 3 {
				t.Errorf("deflected packet took %d hops, want > 3", p.Hops)
			}
		}
	}
	if deflected == 0 {
		t.Fatal("no deflected packet was ultimately delivered")
	}
}

func TestVertigoPrefersDeflectingLargeRFS(t *testing.T) {
	cfg := DefaultConfig(Vertigo)
	cfg.BufferBytes = 3 * units.ByteSize(packet.MSS+packet.HeaderLen+packet.ShimHeaderLen)
	eng, net, _, got := testNet(t, cfg)
	var ids packet.IDGen
	// Saturate with large-RFS, then send small-RFS: the small ones must be
	// delivered without deflection while large ones detour.
	for i := 0; i < 20; i++ {
		net.Send(dataPkt(&ids, 1, 0, 1, 1_000_000))
	}
	for i := 0; i < 5; i++ {
		net.Send(dataPkt(&ids, 1, 0, 2, 100))
	}
	eng.Run(units.Second)
	for _, p := range got[0] {
		if p.Flow == 2 && p.Deflections > 0 {
			t.Fatal("small-RFS packet was deflected while large-RFS packets were present")
		}
	}
}

func TestDIBSDeflectsArrivingPacket(t *testing.T) {
	cfg := DefaultConfig(DIBS)
	cfg.BufferBytes = 3 * units.ByteSize(packet.MSS+packet.HeaderLen+packet.ShimHeaderLen)
	eng, net, met, got := testNet(t, cfg)
	var ids packet.IDGen
	for i := 0; i < 30; i++ {
		net.Send(dataPkt(&ids, 2, 0, 3, 1000))
		net.Send(dataPkt(&ids, 3, 0, 4, 1000))
	}
	eng.Run(units.Second)
	if met.Deflections == 0 {
		t.Fatal("DIBS did not deflect on overflow")
	}
	if len(got[0]) == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestECMPDropsOnOverflow(t *testing.T) {
	cfg := DefaultConfig(ECMP)
	cfg.BufferBytes = 3 * units.ByteSize(packet.MSS+packet.HeaderLen)
	eng, net, met, _ := testNet(t, cfg)
	var ids packet.IDGen
	for i := 0; i < 30; i++ {
		p := dataPkt(&ids, 2, 0, 3, 1000)
		p.Marked = false
		net.Send(p)
		q := dataPkt(&ids, 3, 0, 4, 1000)
		q.Marked = false
		net.Send(q)
	}
	eng.Run(units.Second)
	if met.Drops[metrics.DropOverflow] == 0 {
		t.Fatal("ECMP did not tail-drop on overflow")
	}
	if met.Deflections != 0 {
		t.Fatal("ECMP deflected")
	}
}

func TestECNMarking(t *testing.T) {
	cfg := DefaultConfig(ECMP)
	cfg.ECNThreshold = 5
	eng, net, met, got := testNet(t, cfg)
	var ids packet.IDGen
	for i := 0; i < 50; i++ {
		p := dataPkt(&ids, 1, 0, 1, 1000)
		p.ECNCapable = true
		net.Send(p)
		q := dataPkt(&ids, 2, 0, 2, 1000)
		q.ECNCapable = true
		net.Send(q)
	}
	eng.Run(units.Second)
	if met.ECNMarks == 0 {
		t.Fatal("no ECN marks despite standing queue above threshold")
	}
	marked := 0
	for _, p := range got[0] {
		if p.CE {
			marked++
		}
	}
	if marked != int(met.ECNMarks) {
		t.Fatalf("delivered CE %d != marks %d", marked, met.ECNMarks)
	}
}

func TestECNNotMarkedWhenIncapable(t *testing.T) {
	cfg := DefaultConfig(ECMP)
	cfg.ECNThreshold = 2
	eng, net, met, _ := testNet(t, cfg)
	var ids packet.IDGen
	for i := 0; i < 50; i++ {
		net.Send(dataPkt(&ids, 1, 0, 1, 1000)) // ECNCapable false
		net.Send(dataPkt(&ids, 2, 0, 2, 1000))
	}
	eng.Run(units.Second)
	if met.ECNMarks != 0 {
		t.Fatal("marked non-ECT packets")
	}
}

func TestTTLDrop(t *testing.T) {
	cfg := DefaultConfig(Vertigo)
	cfg.MaxHops = 2 // any cross-leaf path needs 3
	eng, net, met, got := testNet(t, cfg)
	var ids packet.IDGen
	net.Send(dataPkt(&ids, 0, 2, 7, 100))
	eng.Run(units.Second)
	if met.Drops[metrics.DropTTL] != 1 {
		t.Fatalf("TTL drops = %d, want 1", met.Drops[metrics.DropTTL])
	}
	if len(got[2]) != 0 {
		t.Fatal("packet delivered despite TTL")
	}
}

func TestDeflectionSetExcludesHostPorts(t *testing.T) {
	_, net, _, _ := testNet(t, DefaultConfig(Vertigo))
	sw := net.Switch(0) // leaf 0: ports 0,1 hosts; 2,3 uplinks
	var ids packet.IDGen
	p := dataPkt(&ids, 2, 0, 1, 10)
	set := sw.deflectionSet(p, 2)
	for _, i := range set {
		if net.Topo.PortPeer[0][i].Host {
			t.Fatalf("deflection set contains host port %d", i)
		}
		if i == 2 {
			t.Fatal("deflection set contains the excluded origin")
		}
	}
	if len(set) == 0 {
		t.Fatal("empty deflection set on a leaf with uplinks")
	}
}

func TestMaxDeflectionsBudget(t *testing.T) {
	cfg := DefaultConfig(Vertigo)
	cfg.MaxDeflections = 1
	cfg.BufferBytes = 2 * units.ByteSize(packet.MSS+packet.HeaderLen+packet.ShimHeaderLen)
	eng, net, met, _ := testNet(t, cfg)
	var ids packet.IDGen
	for i := 0; i < 60; i++ {
		net.Send(dataPkt(&ids, 2, 0, 3, 50_000))
		net.Send(dataPkt(&ids, 3, 0, 4, 50_000))
	}
	eng.Run(units.Second)
	if met.Drops[metrics.DropDeflectFull] == 0 {
		t.Fatal("budget of 1 deflection never triggered a drop under sustained overflow")
	}
}

func TestVertigoNoSchedulingUsesFIFO(t *testing.T) {
	cfg := DefaultConfig(Vertigo)
	cfg.Scheduling = false
	_, net, _, _ := testNet(t, cfg)
	if _, ok := net.Switch(0).Port(0).Queue().(interface{ Tail() *packet.Packet }); ok {
		t.Fatal("scheduling disabled but port still uses a sorted queue")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"ecmp", "drill", "dibs", "vertigo"} {
		p, err := ParsePolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConservationNoLossScenario(t *testing.T) {
	// Below capacity every injected packet must be delivered exactly once.
	for _, policy := range []Policy{ECMP, DRILL, DIBS, Vertigo} {
		eng, net, met, got := testNet(t, DefaultConfig(policy))
		var ids packet.IDGen
		const n = 200
		for i := 0; i < n; i++ {
			net.Send(dataPkt(&ids, i%4, (i+1)%4, uint64(i%4), uint32(1000+i)))
		}
		eng.Run(units.Second)
		total := 0
		for h := range got {
			total += len(got[h])
		}
		if total != n || met.TotalDrops() != 0 {
			t.Errorf("%v: delivered %d of %d, drops %d", policy, total, n, met.TotalDrops())
		}
	}
}

func TestLinkFailureBlackholesECMP(t *testing.T) {
	eng, net, met, got := testNet(t, DefaultConfig(ECMP))
	var ids packet.IDGen
	// Host 0 -> host 1: same leaf, single path through leaf 0 port 1.
	// Failing the host-1 access link (topology link index 1) blackholes it.
	if err := net.FailLinkAt(1, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(units.Millisecond)
	for i := 0; i < 10; i++ {
		net.Send(dataPkt(&ids, 0, 1, 5, 100))
	}
	eng.Run(units.Second)
	if len(got[1]) != 0 {
		t.Fatalf("delivered %d packets over a dead link", len(got[1]))
	}
	if met.Drops[metrics.DropLinkDown] == 0 && met.Drops[metrics.DropOverflow] == 0 {
		t.Fatal("no drops recorded for blackholed traffic")
	}
}

func TestLinkFailureDeflectionRescuesVertigo(t *testing.T) {
	// Cross-leaf traffic with one of two uplinks dead: Vertigo must deflect
	// around the failure (a dead port behaves like a full queue), delivering
	// everything via the surviving spine.
	eng, net, met, got := testNet(t, DefaultConfig(Vertigo))
	var ids packet.IDGen
	// Leaf 0's first uplink is its port index 2 (after 2 host ports).
	// Its link index: 4 host links + first leaf-spine link = index 4.
	if err := net.FailLinkAt(4, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(units.Millisecond)
	const n = 50
	for i := 0; i < n; i++ {
		net.Send(dataPkt(&ids, 0, 2, 6, uint32(1000+i)))
	}
	eng.Run(2 * units.Second)
	if len(got[2]) != n {
		t.Fatalf("delivered %d of %d with one uplink dead (drops: ttl=%d down=%d defl-full=%d)",
			len(got[2]), n, met.Drops[metrics.DropTTL],
			met.Drops[metrics.DropLinkDown], met.Drops[metrics.DropDeflectFull])
	}
}

func TestLinkFailureFlushesQueuedPackets(t *testing.T) {
	cfg := DefaultConfig(ECMP)
	eng, net, met, _ := testNet(t, cfg)
	var ids packet.IDGen
	// Queue a burst toward host 0, then kill its access link mid-drain.
	for i := 0; i < 40; i++ {
		net.Send(dataPkt(&ids, 1, 0, 7, 100))
		net.Send(dataPkt(&ids, 2, 0, 8, 100))
	}
	if err := net.FailLinkAt(0, 10*units.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run(units.Second)
	if met.Drops[metrics.DropLinkDown] == 0 {
		t.Fatal("queued packets not flushed on carrier loss")
	}
}

func TestFailLinkAtValidation(t *testing.T) {
	_, net, _, _ := testNet(t, DefaultConfig(ECMP))
	if err := net.FailLinkAt(-1, 0); err == nil {
		t.Error("negative link index accepted")
	}
	if err := net.FailLinkAt(1<<20, 0); err == nil {
		t.Error("out-of-range link index accepted")
	}
}

func TestNoDuplicationUnderDeflection(t *testing.T) {
	// Heavy overflow with deflection: every injected packet is delivered at
	// most once (the fabric never clones), and delivered+dropped == sent.
	for _, policy := range []Policy{DIBS, Vertigo} {
		cfg := DefaultConfig(policy)
		cfg.BufferBytes = 4 * units.ByteSize(packet.MSS+packet.HeaderLen+packet.ShimHeaderLen)
		eng, net, met, got := testNet(t, cfg)
		var ids packet.IDGen
		const n = 600
		for i := 0; i < n; i++ {
			net.Send(dataPkt(&ids, 2, 0, uint64(i%7), uint32(1000+i)))
			net.Send(dataPkt(&ids, 3, 0, uint64(7+i%7), uint32(1000+i)))
		}
		eng.Run(5 * units.Second)
		seen := map[uint64]bool{}
		delivered := 0
		for _, g := range got {
			for _, p := range g {
				if seen[p.ID] {
					t.Fatalf("%v: packet %d delivered twice", policy, p.ID)
				}
				seen[p.ID] = true
				delivered++
			}
		}
		if int64(delivered)+met.TotalDrops() != 2*n {
			t.Fatalf("%v: conservation broken: %d delivered + %d dropped != %d sent",
				policy, delivered, met.TotalDrops(), 2*n)
		}
	}
}
