package fabric

import (
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// mix64 is a splitmix64 finalizer, used for flow hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// routeECMP picks the next hop by flow hash (salted per switch so different
// switches spread the same flow set differently) and tail-drops on overflow.
func (s *Switch) routeECMP(p *packet.Packet) {
	cands := s.candidates(p)
	if len(cands) == 0 {
		s.net.drop(s.id, -1, p, metrics.DropOther)
		return
	}
	i := cands[0]
	if len(cands) > 1 {
		h := mix64(p.Flow ^ (uint64(s.id)+1)*0x9e3779b97f4a7c15)
		i = cands[h%uint64(len(cands))]
	}
	if !s.enqueue(i, p) {
		s.net.drop(s.id, i, p, metrics.DropOverflow)
	}
}

// routeDRILL implements DRILL(d=2, m=1): per packet, sample two random
// candidate ports plus the remembered least-loaded port, and enqueue on the
// emptiest. Tail-drops on overflow.
func (s *Switch) routeDRILL(p *packet.Packet) {
	cands := s.candidates(p)
	if len(cands) == 0 {
		s.net.drop(s.id, -1, p, metrics.DropOther)
		return
	}
	best := -1
	var bestBytes units.ByteSize
	consider := func(i int) {
		if b := s.ports[i].occBytes(); best == -1 || b < bestBytes {
			best, bestBytes = i, b
		}
	}
	if len(cands) == 1 {
		best = cands[0]
	} else {
		consider(cands[s.intn(len(cands))])
		consider(cands[s.intn(len(cands))])
		mem, existed := s.drillMem.Put(drillKey(cands))
		if existed {
			consider(int(*mem))
		}
		*mem = int32(best)
	}
	if !s.enqueue(best, p) {
		s.net.drop(s.id, best, p, metrics.DropOverflow)
	}
}

// drillKey identifies a candidate group. FIB candidate slices are shared per
// destination-group, so the first element plus length is a stable identity.
func drillKey(cands []int) uint64 {
	return uint64(cands[0])<<32 | uint64(len(cands))
}

// routeDIBS forwards like ECMP but, when the chosen output queue is full,
// detours the arriving packet to a random port with buffer space (Zarifis et
// al., EuroSys'14). Only when no port has space is the packet dropped.
func (s *Switch) routeDIBS(p *packet.Packet) {
	cands := s.candidates(p)
	if len(cands) == 0 {
		s.net.drop(s.id, -1, p, metrics.DropOther)
		return
	}
	i := cands[0]
	if len(cands) > 1 {
		h := mix64(p.Flow ^ (uint64(s.id)+1)*0x9e3779b97f4a7c15)
		i = cands[h%uint64(len(cands))]
	}
	if s.enqueue(i, p) {
		return
	}
	// Deflect: scan the deflection set in random order for space.
	if p.Deflections >= s.net.Cfg.MaxDeflections {
		s.net.drop(s.id, i, p, metrics.DropOverflow)
		return
	}
	set := s.deflectionSet(p, i)
	for n := len(set); n > 0; n-- {
		j := s.intn(n)
		port := set[j]
		set[j] = set[n-1]
		if !s.ports[port].down && s.ports[port].fitsNow(p.Size()) {
			p.Deflections++
			s.net.noteDeflect()
			if o := s.net.obs; o != nil {
				o.Deflect(s.id, i, port, p)
			}
			s.enqueue(port, p)
			return
		}
	}
	s.net.drop(s.id, i, p, metrics.DropOverflow)
}

// deflectionSet returns the ports a packet may be deflected to: every
// fabric-facing port except the full one. Host-facing ports are excluded —
// deflecting into a foreign server's NIC is a guaranteed loss — except the
// packet's own destination port, which is the full port itself here.
// The returned slice is switch-owned scratch, rebuilt on every call; the
// caller may permute it but must not hold it across another routing step.
func (s *Switch) deflectionSet(p *packet.Packet, exclude int) []int {
	fab := s.net.Topo.FabricPorts[s.id]
	set := s.deflScratch[:0]
	for _, i := range fab {
		if i != exclude {
			set = append(set, i)
		}
	}
	s.deflScratch = set
	return set
}

// routeVertigo implements the paper's §3.2 pipeline:
//
//  1. Forwarding: power-of-FwdChoices among FIB candidates by occupancy.
//  2. Enqueue into the RFS-sorted queue. On overflow, insert by rank and
//     evict from the tail, so the largest-RFS packets (possibly the arriving
//     one) become deflection victims.
//  3. Deflection: power-of-DeflChoices among fabric ports; if every sampled
//     queue is full, force-insert into one at random, dropping its tail.
func (s *Switch) routeVertigo(p *packet.Packet) {
	cands := s.candidates(p)
	if len(cands) == 0 {
		s.net.drop(s.id, -1, p, metrics.DropOther)
		return
	}
	i := s.pickPowerOfN(cands, s.net.Cfg.FwdChoices)
	if s.enqueue(i, p) {
		return
	}
	if !s.net.Cfg.Deflection {
		// Ablation (Fig. 11a "No Deflection"): behave as a pure SRPT buffer,
		// keeping the smallest-RFS packets and dropping the largest.
		if sq := s.ports[i].sorted; sq != nil && !s.ports[i].down {
			s.ports[i].settle()
			s.markECN(s.ports[i], p)
			for _, ev := range sq.ForceInsert(p) {
				s.net.drop(s.id, i, ev, metrics.DropOverflow)
			}
			s.ports[i].maybeSend()
		} else {
			s.net.drop(s.id, i, p, metrics.DropOverflow)
		}
		return
	}
	for _, victim := range s.overflowVictims(i, p) {
		s.deflectVertigo(victim, i)
	}
}

// overflowVictims applies the overflow rule on port i for arriving packet p
// and returns the packets to deflect. With scheduling enabled the victims
// are the largest-RFS packets after inserting p by rank; without it
// (Fig. 11a "No Scheduling") the arriving packet itself is the victim,
// which is exactly random-deflection behaviour.
func (s *Switch) overflowVictims(i int, p *packet.Packet) []*packet.Packet {
	if sq := s.ports[i].sorted; sq != nil && !s.ports[i].down {
		// ForceInsert inserts by rank and evicts from the tail — possibly
		// planned segments — so the plan cannot survive it.
		s.ports[i].settle()
		s.markECN(s.ports[i], p)
		victims := sq.ForceInsert(p)
		s.ports[i].maybeSend()
		return victims
	}
	s.victimOne[0] = p
	return s.victimOne[:]
}

// deflectVertigo deflects one victim from full port origin.
func (s *Switch) deflectVertigo(victim *packet.Packet, origin int) {
	if victim.Deflections >= s.net.Cfg.MaxDeflections {
		s.net.drop(s.id, origin, victim, metrics.DropDeflectFull)
		return
	}
	set := s.deflectionSet(victim, origin)
	if len(set) == 0 {
		s.net.drop(s.id, origin, victim, metrics.DropDeflectFull)
		return
	}
	i := s.pickPowerOfN(set, s.net.Cfg.DeflChoices)
	if !s.ports[i].down && s.ports[i].fitsNow(victim.Size()) {
		victim.Deflections++
		s.net.noteDeflect()
		if o := s.net.obs; o != nil {
			o.Deflect(s.id, origin, i, victim)
		}
		s.enqueue(i, victim)
		return
	}
	// Both sampled queues full: severe congestion. Insert into the sampled
	// port by rank and drop from its tail (paper footnote 5).
	if sq := s.ports[i].sorted; sq != nil && !s.ports[i].down {
		s.ports[i].settle()
		victim.Deflections++
		s.net.noteDeflect()
		if o := s.net.obs; o != nil {
			o.Deflect(s.id, origin, i, victim)
		}
		for _, ev := range sq.ForceInsert(victim) {
			s.net.drop(s.id, i, ev, metrics.DropDeflectFull)
		}
		s.ports[i].maybeSend()
		return
	}
	s.net.drop(s.id, i, victim, metrics.DropDeflectFull)
}

// pickPowerOfN samples n (distinct where possible) ports from cands and
// returns the one with the lowest queue occupancy. n=1 is a uniform random
// pick; ties keep the first sample, matching hardware comparator behaviour.
func (s *Switch) pickPowerOfN(cands []int, n int) int {
	if len(cands) == 1 {
		return cands[0]
	}
	if n <= 1 {
		return cands[s.intn(len(cands))]
	}
	if n > len(cands) {
		n = len(cands)
	}
	best := -1
	var bestBytes units.ByteSize
	// Partial Fisher-Yates over a stack copy for distinct samples. The
	// fixed-size buffer keeps this zero-alloc for any realistic radix; only
	// pathological port counts fall back to the heap.
	var stack [64]int
	idx := stack[:0]
	if len(cands) > len(stack) {
		idx = make([]int, 0, len(cands))
	}
	idx = append(idx, cands...)
	for k := 0; k < n; k++ {
		j := k + s.intn(len(idx)-k)
		idx[k], idx[j] = idx[j], idx[k]
		c := idx[k]
		if b := s.ports[c].occBytes(); best == -1 || b < bestBytes {
			best, bestBytes = c, b
		}
	}
	return best
}
