package flowtab

import (
	"math/rand"
	"testing"
)

// TestTableBasics covers the single-key lifecycle.
func TestTableBasics(t *testing.T) {
	tb := New[int](0)
	if tb.Len() != 0 || tb.Get(7) != nil {
		t.Fatal("empty table not empty")
	}
	v, existed := tb.Put(7)
	if existed || v == nil || *v != 0 {
		t.Fatalf("Put(7) = %v, %v", v, existed)
	}
	*v = 42
	if g := tb.Get(7); g == nil || *g != 42 {
		t.Fatalf("Get(7) = %v", g)
	}
	v2, existed := tb.Put(7)
	if !existed || *v2 != 42 {
		t.Fatalf("second Put(7) = %v, %v", v2, existed)
	}
	if !tb.Delete(7) || tb.Delete(7) || tb.Get(7) != nil || tb.Len() != 0 {
		t.Fatal("Delete lifecycle broken")
	}
}

// TestTableZeroKey checks that key 0 is an ordinary key (many map-backed
// tables special-case it; flowtab must not, flow IDs can be anything).
func TestTableZeroKey(t *testing.T) {
	tb := New[string](4)
	v, _ := tb.Put(0)
	*v = "zero"
	if g := tb.Get(0); g == nil || *g != "zero" {
		t.Fatalf("Get(0) = %v", g)
	}
	if !tb.Delete(0) || tb.Get(0) != nil {
		t.Fatal("Delete(0) broken")
	}
}

// TestTableVsMap is the property test: a long random operation sequence
// applied to both a Table and a plain map must agree on every lookup,
// length, and membership answer, across enough churn to exercise slot
// recycling, growth, and backward-shift deletion.
func TestTableVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := New[int64](0)
	ref := make(map[uint64]int64)
	const keySpace = 512 // small: forces collisions and re-insertion of deleted keys
	for op := 0; op < 200000; op++ {
		key := uint64(rng.Intn(keySpace))
		switch rng.Intn(4) {
		case 0: // insert/overwrite
			val := rng.Int63()
			v, existed := tb.Put(key)
			if _, inRef := ref[key]; existed != inRef {
				t.Fatalf("op %d: Put(%d) existed=%v, map says %v", op, key, existed, inRef)
			}
			*v = val
			ref[key] = val
		case 1: // delete
			_, inRef := ref[key]
			if got := tb.Delete(key); got != inRef {
				t.Fatalf("op %d: Delete(%d) = %v, map says %v", op, key, got, inRef)
			}
			delete(ref, key)
		case 2: // lookup
			v := tb.Get(key)
			val, inRef := ref[key]
			if (v != nil) != inRef {
				t.Fatalf("op %d: Get(%d) present=%v, map says %v", op, key, v != nil, inRef)
			}
			if v != nil && *v != val {
				t.Fatalf("op %d: Get(%d) = %d, map says %d", op, key, *v, val)
			}
		case 3: // full iteration agrees with the map
			if tb.Len() != len(ref) {
				t.Fatalf("op %d: Len %d != map %d", op, tb.Len(), len(ref))
			}
			if op%1000 != 0 {
				continue
			}
			seen := make(map[uint64]int64)
			tb.Range(func(k uint64, v *int64) bool {
				if _, dup := seen[k]; dup {
					t.Fatalf("op %d: Range yielded %d twice", op, k)
				}
				seen[k] = *v
				return true
			})
			if len(seen) != len(ref) {
				t.Fatalf("op %d: Range yielded %d keys, want %d", op, len(seen), len(ref))
			}
			for k, v := range ref {
				if sv, ok := seen[k]; !ok || sv != v {
					t.Fatalf("op %d: Range missing/wrong key %d", op, k)
				}
			}
		}
	}
}

// TestTableRangeDeterministic runs the same operation sequence twice and
// requires Range to yield identical key orders — the sweeps-are-byte-
// identical guarantee depends on iteration order being a pure function
// of the operation history.
func TestTableRangeDeterministic(t *testing.T) {
	build := func() []uint64 {
		tb := New[int](3) // odd capacity: exercises growth mid-sequence
		rng := rand.New(rand.NewSource(7))
		for op := 0; op < 20000; op++ {
			key := uint64(rng.Intn(300))
			if rng.Intn(3) == 0 {
				tb.Delete(key)
			} else {
				v, _ := tb.Put(key)
				*v = op
			}
		}
		var order []uint64
		tb.Range(func(k uint64, _ *int) bool {
			order = append(order, k)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("runs disagree on length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestTableRangeInsertionOrder pins the order contract precisely for a
// churn-free history: slab order is first-insertion order.
func TestTableRangeInsertionOrder(t *testing.T) {
	tb := New[int](0)
	keys := []uint64{9, 2, 71, 33, 5, 1 << 40}
	for _, k := range keys {
		tb.Put(k)
	}
	var got []uint64
	tb.Range(func(k uint64, _ *int) bool { got = append(got, k); return true })
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("Range[%d] = %d, want insertion order %v", i, got[i], keys)
		}
	}
}

// TestTableRangeDeleteCurrent checks the one mutation Range supports:
// deleting the entry the callback was invoked with.
func TestTableRangeDeleteCurrent(t *testing.T) {
	tb := New[int](0)
	for k := uint64(0); k < 100; k++ {
		tb.Put(k)
	}
	tb.Range(func(k uint64, _ *int) bool {
		if k%2 == 0 {
			tb.Delete(k)
		}
		return true
	})
	if tb.Len() != 50 {
		t.Fatalf("Len = %d after deleting evens, want 50", tb.Len())
	}
	tb.Range(func(k uint64, _ *int) bool {
		if k%2 == 0 {
			t.Fatalf("even key %d survived", k)
		}
		return true
	})
}

// TestTableRefStability: refs survive slab growth and report staleness
// after delete / recycling to a different key.
func TestTableRefStability(t *testing.T) {
	tb := New[int](0)
	v, _ := tb.Put(10)
	*v = 1
	r := tb.Ref(10)
	if r < 0 {
		t.Fatal("Ref(10) < 0")
	}
	for k := uint64(100); k < 1100; k++ { // force several growths
		tb.Put(k)
	}
	if k, v, ok := tb.AtRef(r); !ok || k != 10 || *v != 1 {
		t.Fatalf("AtRef after growth = %d, %v, %v", k, v, ok)
	}
	tb.Delete(10)
	if _, _, ok := tb.AtRef(r); ok {
		t.Fatal("AtRef ok after delete")
	}
	// The freed slot is recycled LIFO: the next insert lands on it.
	tb.Put(9999)
	if k, _, ok := tb.AtRef(r); !ok || k != 9999 {
		t.Fatalf("recycled AtRef = %d, %v, want 9999", k, ok)
	}
	if tb.Ref(12345) != -1 {
		t.Fatal("Ref of absent key != -1")
	}
}

// TestTablePutReuse: a recycled slot keeps its value bytes with PutReuse
// and is zeroed with Put.
func TestTablePutReuse(t *testing.T) {
	type state struct{ buf []int }
	tb := New[state](0)
	v, _ := tb.Put(1)
	v.buf = append(v.buf, 1, 2, 3)
	tb.Delete(1)

	v2, existed := tb.PutReuse(2)
	if existed {
		t.Fatal("PutReuse(2) existed")
	}
	if cap(v2.buf) < 3 {
		t.Fatalf("PutReuse did not recycle buffer (cap %d)", cap(v2.buf))
	}
	tb.Delete(2)

	v3, _ := tb.Put(3)
	if v3.buf != nil {
		t.Fatal("Put handed out non-zero value")
	}
}

// TestTableReset keeps capacity but drops all entries.
func TestTableReset(t *testing.T) {
	tb := New[int](0)
	for k := uint64(0); k < 50; k++ {
		v, _ := tb.Put(k)
		*v = int(k)
	}
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	for k := uint64(0); k < 50; k++ {
		if tb.Get(k) != nil {
			t.Fatalf("key %d survived Reset", k)
		}
	}
	// Table still works and recycles slots lowest-first like a fresh one.
	v, existed := tb.Put(7)
	if existed || v == nil {
		t.Fatal("Put after Reset broken")
	}
	if r := tb.Ref(7); r != 0 {
		t.Fatalf("first slot after Reset = %d, want 0", r)
	}
}

// TestTableSteadyStateAllocs: the per-packet operations must not
// allocate once the table has reached its working size.
func TestTableSteadyStateAllocs(t *testing.T) {
	tb := New[[4]int64](256)
	for k := uint64(0); k < 128; k++ {
		tb.Put(k)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tb.Get(64)
		tb.Delete(64)
		tb.Put(64)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Delete/Put = %v allocs, want 0", allocs)
	}
}

// TestPagedU8 covers the sparse counter array incl. page reuse on Reset.
func TestPagedU8(t *testing.T) {
	var p PagedU8
	if p.Get(0) != 0 || p.Get(1<<20) != 0 {
		t.Fatal("zero value not zero")
	}
	p.Set(3, 7)
	p.Set(512, 9)  // second page
	p.Set(5000, 1) // later page, skipping some
	if p.Get(3) != 7 || p.Get(512) != 9 || p.Get(5000) != 1 || p.Get(4) != 0 {
		t.Fatal("Set/Get broken")
	}
	if p.pages[1] == nil || p.pages[3] != nil {
		t.Fatal("unexpected page allocation pattern")
	}
	p.Reset()
	if p.Get(3) != 0 || p.Get(512) != 0 || p.Get(5000) != 0 {
		t.Fatal("Reset left counters")
	}
	if p.pages[0] == nil {
		t.Fatal("Reset dropped pages")
	}
	allocs := testing.AllocsPerRun(100, func() { p.Set(3, 1); p.Set(5000, 2) })
	if allocs != 0 {
		t.Fatalf("Set on touched pages = %v allocs, want 0", allocs)
	}
}

// TestPagedU8Random cross-checks against a map over a clustered index
// distribution (like real retx offsets).
func TestPagedU8Random(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var p PagedU8
	ref := make(map[int64]uint8)
	for op := 0; op < 50000; op++ {
		i := int64(rng.Intn(1 << 14))
		if rng.Intn(2) == 0 {
			v := uint8(rng.Intn(256))
			p.Set(i, v)
			ref[i] = v
		} else if p.Get(i) != ref[i] {
			t.Fatalf("op %d: Get(%d) = %d, want %d", op, i, p.Get(i), ref[i])
		}
	}
}
