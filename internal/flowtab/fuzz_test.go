package flowtab

import "testing"

// FuzzTableVsMap drives a Table and a plain map with the same byte-coded
// operation stream and requires identical observable behavior — the same
// cross-validation style as the sim package's scheduler fuzz tests. Each
// input byte encodes one operation on a 64-key space: op = b>>6
// (0/1 put, 2 delete, 3 get+iterate), key = b&63. The tiny key space
// maximizes collision, recycling, and backward-shift coverage per input.
func FuzzTableVsMap(f *testing.F) {
	f.Add([]byte{0x01, 0x41, 0x81, 0xc1})
	f.Add([]byte("interleaved puts and deletes over colliding keys"))
	seed := make([]byte, 256)
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb := New[uint16](0)
		ref := make(map[uint64]uint16)
		for n, b := range ops {
			key := uint64(b & 63)
			switch b >> 6 {
			case 0, 1: // put, value derived from position
				val := uint16(n)
				v, existed := tb.Put(key)
				if _, inRef := ref[key]; existed != inRef {
					t.Fatalf("op %d: Put(%d) existed=%v, map says %v", n, key, existed, inRef)
				}
				*v = val
				ref[key] = val
			case 2:
				_, inRef := ref[key]
				if got := tb.Delete(key); got != inRef {
					t.Fatalf("op %d: Delete(%d)=%v, map says %v", n, key, got, inRef)
				}
				delete(ref, key)
			case 3:
				v := tb.Get(key)
				rv, inRef := ref[key]
				if (v != nil) != inRef || (v != nil && *v != rv) {
					t.Fatalf("op %d: Get(%d) disagrees with map", n, key)
				}
				if tb.Len() != len(ref) {
					t.Fatalf("op %d: Len %d != %d", n, tb.Len(), len(ref))
				}
				sum, cnt := uint64(0), 0
				tb.Range(func(k uint64, v *uint16) bool {
					sum += k + uint64(*v)
					cnt++
					return true
				})
				refSum := uint64(0)
				for k, v := range ref {
					refSum += k + uint64(v)
				}
				if cnt != len(ref) || sum != refSum {
					t.Fatalf("op %d: Range saw %d entries (sum %d), map has %d (sum %d)",
						n, cnt, sum, len(ref), refSum)
				}
			}
		}
	})
}
