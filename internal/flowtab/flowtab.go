// Package flowtab provides the flow-state tables used on the per-packet
// datapaths: an open-addressing hash table over uint64 flow keys with
// slab-allocated values and a one-entry last-hit cache, and a paged byte
// array for per-segment counters. Both are designed around the access
// pattern the simulator and the wire components share — long trains of
// packets hitting the same flow, bounded live-flow populations with heavy
// churn, and a hard determinism requirement (iteration order must not
// depend on hash seeds or allocation addresses).
//
// Compared with map[uint64]*T on these paths, Table[T] removes the pointer
// chase to a separately heap-allocated value (values live in one slab),
// the per-insert allocation (freed slots are recycled through a free
// list), and the repeated hashing of a hot key (the last-hit cache turns
// packet trains into two loads and a compare). None of the operations
// allocate in steady state.
//
// Tables are not safe for concurrent use; in the simulator each engine
// owns its tables, matching the one-goroutine-per-run sweep model.
package flowtab

// ref is an index into the value slab; -1 marks an empty probe slot.
type ref = int32

const noRef ref = -1

// Table is an open-addressing hash table from uint64 keys to values of
// type T stored in a contiguous slab. Lookups return stable pointers: a
// *T obtained from Get/Put remains valid until that key is deleted (the
// slab grows by append, but slots are addressed by index internally, so
// only the caller-visible pointer of the *current* call is guaranteed —
// callers must not hold *T across an insert, mirroring the
// metrics.Collector.Flow aliasing rule).
type Table[T any] struct {
	// index is the power-of-two probe array holding slab refs.
	index []ref
	mask  uint64
	// Parallel slab arrays: keys[i]/vals[i]/live[i] describe slot i.
	// Deleted slots keep their previous value bytes so PutReuse can hand
	// back warm state (buffers, pages) to the next occupant.
	keys []uint64
	vals []T
	live []bool
	// free is a LIFO of deleted slab slots awaiting reuse.
	free  []ref
	count int
	// last caches the slab slot of the most recent hit: packet trains on
	// one flow skip the probe loop entirely.
	last ref
}

// New returns a table pre-sized for about capacity live entries.
func New[T any](capacity int) *Table[T] {
	n := 16
	for n*3 < capacity*4 { // keep load factor under 3/4 at capacity
		n *= 2
	}
	t := &Table[T]{index: make([]ref, n), mask: uint64(n - 1), last: noRef}
	for i := range t.index {
		t.index[i] = noRef
	}
	if capacity > 0 {
		t.keys = make([]uint64, 0, capacity)
		t.vals = make([]T, 0, capacity)
		t.live = make([]bool, 0, capacity)
	}
	return t
}

// hash is the splitmix64 finalizer: full-avalanche, seedless (the same
// key hashes identically in every run, part of the determinism story).
func hash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len reports the number of live entries.
func (t *Table[T]) Len() int { return t.count }

// Get returns a pointer to key's value, or nil if absent.
func (t *Table[T]) Get(key uint64) *T {
	if r := t.last; r != noRef && t.keys[r] == key && t.live[r] {
		return &t.vals[r]
	}
	i := hash(key) & t.mask
	for {
		r := t.index[i]
		if r == noRef {
			return nil
		}
		if t.keys[r] == key {
			t.last = r
			return &t.vals[r]
		}
		i = (i + 1) & t.mask
	}
}

// Put returns a pointer to key's value, inserting a zeroed entry if
// absent. existed reports whether the key was already present.
func (t *Table[T]) Put(key uint64) (v *T, existed bool) {
	return t.put(key, true)
}

// PutReuse is Put, except that a freshly inserted entry occupying a
// recycled slot keeps the previous occupant's value bytes instead of
// being zeroed. Callers use it to hand grown buffers (orderer
// reorder buffers, retx pages) to the next flow; they must reset every
// semantic field themselves.
func (t *Table[T]) PutReuse(key uint64) (v *T, existed bool) {
	return t.put(key, false)
}

func (t *Table[T]) put(key uint64, zero bool) (*T, bool) {
	i := hash(key) & t.mask
	for {
		r := t.index[i]
		if r == noRef {
			break
		}
		if t.keys[r] == key {
			t.last = r
			return &t.vals[r], true
		}
		i = (i + 1) & t.mask
	}
	if (t.count+1)*4 > len(t.index)*3 {
		t.grow()
		i = hash(key) & t.mask
		for t.index[i] != noRef {
			i = (i + 1) & t.mask
		}
	}
	var r ref
	if n := len(t.free); n > 0 {
		r = t.free[n-1]
		t.free = t.free[:n-1]
		if zero {
			var z T
			t.vals[r] = z
		}
	} else {
		r = ref(len(t.vals))
		var z T
		t.keys = append(t.keys, 0)
		t.vals = append(t.vals, z)
		t.live = append(t.live, false)
	}
	t.keys[r] = key
	t.live[r] = true
	t.index[i] = r
	t.count++
	t.last = r
	return &t.vals[r], false
}

// grow doubles the probe array and reindexes the slab. Slab slots (and
// therefore iteration order and Ref values) are unchanged.
func (t *Table[T]) grow() {
	n := len(t.index) * 2
	t.index = make([]ref, n)
	t.mask = uint64(n - 1)
	for i := range t.index {
		t.index[i] = noRef
	}
	for r := range t.keys {
		if !t.live[r] {
			continue
		}
		i := hash(t.keys[r]) & t.mask
		for t.index[i] != noRef {
			i = (i + 1) & t.mask
		}
		t.index[i] = ref(r)
	}
}

// Delete removes key, reporting whether it was present. The slab slot is
// pushed on the free list; its value bytes are retained for PutReuse.
func (t *Table[T]) Delete(key uint64) bool {
	i := hash(key) & t.mask
	for {
		r := t.index[i]
		if r == noRef {
			return false
		}
		if t.keys[r] == key {
			t.live[r] = false
			t.free = append(t.free, r)
			t.count--
			t.unlink(i)
			return true
		}
		i = (i + 1) & t.mask
	}
}

// unlink removes probe slot i with backward-shift deletion, keeping every
// remaining entry reachable without tombstones.
func (t *Table[T]) unlink(i uint64) {
	j := i
	for {
		t.index[i] = noRef
		for {
			j = (j + 1) & t.mask
			r := t.index[j]
			if r == noRef {
				return
			}
			// Move r back to the freed slot unless its ideal position
			// lies cyclically between the freed slot and its current one
			// (in which case moving would break its probe chain).
			k := hash(t.keys[r]) & t.mask
			if (j-k)&t.mask >= (j-i)&t.mask {
				t.index[i] = r
				i = j
				break
			}
		}
	}
}

// Ref returns a stable handle for key, or -1 if absent. A ref stays
// valid for the lifetime of the table and survives slab growth; after
// the key is deleted, AtRef on it reports ok=false (and a slot recycled
// to a different key reports that key). Refs let per-entry callbacks
// (timer closures) be built once and reused across occupants.
func (t *Table[T]) Ref(key uint64) int32 {
	if r := t.last; r != noRef && t.keys[r] == key && t.live[r] {
		return r
	}
	i := hash(key) & t.mask
	for {
		r := t.index[i]
		if r == noRef {
			return noRef
		}
		if t.keys[r] == key {
			return r
		}
		i = (i + 1) & t.mask
	}
}

// AtRef resolves a handle from Ref to its current key and value.
func (t *Table[T]) AtRef(r int32) (key uint64, v *T, ok bool) {
	if r < 0 || int(r) >= len(t.keys) || !t.live[r] {
		return 0, nil, false
	}
	return t.keys[r], &t.vals[r], true
}

// Range calls f for each live entry in slab order — the order keys were
// first inserted, with freed slots reused LIFO — which is a pure
// function of the operation history, never of hash values or addresses:
// the determinism guarantee sweeps rely on. f may delete the entry it
// was called with; entries inserted during iteration into fresh slots
// are visited, into recycled slots behind the cursor are not. Returning
// false stops the walk.
func (t *Table[T]) Range(f func(key uint64, v *T) bool) {
	for r := 0; r < len(t.live); r++ {
		if t.live[r] && !f(t.keys[r], &t.vals[r]) {
			return
		}
	}
}

// Reset drops every entry while keeping the slab and probe array for
// reuse. Value bytes are retained (as with Delete).
func (t *Table[T]) Reset() {
	for i := range t.index {
		t.index[i] = noRef
	}
	t.free = t.free[:0]
	// Refill the free list so the lowest slots are handed out first,
	// matching a fresh table's allocation order.
	for r := len(t.live) - 1; r >= 0; r-- {
		t.live[r] = false
		t.free = append(t.free, ref(r))
	}
	t.count = 0
	t.last = noRef
}

// pageShift sizes PagedU8 pages: 512 counters (= 512 MSS segments,
// ~750 KB of flow) per 512-byte page.
const pageShift = 9

const pageMask = (1 << pageShift) - 1

// PagedU8 is a sparse []uint8 indexed by segment number, used for the
// per-flow retransmission counters that replaced map[int64]uint8: flows
// with no retransmissions never allocate a page, and pages are retained
// across Reset so a recycled flow slot reuses its predecessor's memory.
type PagedU8 struct {
	pages [][]uint8
}

// Get returns the counter at index i (0 if its page was never written).
func (p *PagedU8) Get(i int64) uint8 {
	pg := i >> pageShift
	if pg >= int64(len(p.pages)) || p.pages[pg] == nil {
		return 0
	}
	return p.pages[pg][i&pageMask]
}

// Set stores v at index i, allocating the page on first touch.
func (p *PagedU8) Set(i int64, v uint8) {
	pg := i >> pageShift
	for int64(len(p.pages)) <= pg {
		p.pages = append(p.pages, nil)
	}
	b := p.pages[pg]
	if b == nil {
		b = make([]uint8, 1<<pageShift)
		p.pages[pg] = b
	}
	b[i&pageMask] = v
}

// Reset zeroes all counters, keeping allocated pages for the next flow.
func (p *PagedU8) Reset() {
	for _, b := range p.pages {
		if b != nil {
			clear(b)
		}
	}
}
