package workload

import (
	"math"

	"vertigo/internal/metrics"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// FlowStarter launches one flow; the core wires it to a transport sender.
// query is the owning incast query ID, or -1 for background flows.
type FlowStarter func(src, dst int, size int64, incast bool, query int)

// expInterval draws an exponential inter-arrival for a Poisson process with
// the given mean rate (events per second).
func expInterval(eng *sim.Engine, perSecond float64) units.Time {
	if perSecond <= 0 {
		return units.Time(math.MaxInt64 / 4)
	}
	d := eng.Rand().ExpFloat64() / perSecond
	t := units.Time(d * float64(units.Second))
	if t < 1 {
		t = 1
	}
	return t
}

// Background generates all-to-all background flows: Poisson arrivals at an
// aggregate rate chosen so the expected offered load equals a fraction of
// the hosts' total access-link capacity, with sizes from an empirical
// distribution — the paper's background traffic model (§4.1).
type Background struct {
	Eng      *sim.Engine
	Hosts    int
	Dist     *SizeDist
	HostRate units.BitRate
	Load     float64 // fraction of aggregate host capacity, e.g. 0.5
	Start    FlowStarter

	rate float64 // flows per second
}

// Rate returns the aggregate flow arrival rate in flows per second.
func (b *Background) Rate() float64 { return b.rate }

// Run starts the arrival process; it self-perpetuates until the deadline.
func (b *Background) Run(until units.Time) {
	if b.Load <= 0 || b.Hosts < 2 {
		return
	}
	capacityBps := float64(b.HostRate) * float64(b.Hosts)
	b.rate = b.Load * capacityBps / (8 * b.Dist.MeanBytes())
	b.next(until)
}

func (b *Background) next(until units.Time) {
	at := b.Eng.Now() + expInterval(b.Eng, b.rate)
	if at > until {
		return
	}
	b.Eng.At(at, func() {
		rng := b.Eng.Rand()
		src := rng.Intn(b.Hosts)
		dst := rng.Intn(b.Hosts - 1)
		if dst >= src {
			dst++
		}
		b.Start(src, dst, b.Dist.Sample(rng), false, -1)
		b.next(until)
	})
}

// Incast generates the paper's microburst application: at rate QPS, a random
// client queries Scale random servers, each of which responds with FlowSize
// bytes; the query completes when every response flow finishes (§4.1).
type Incast struct {
	Eng      *sim.Engine
	Met      *metrics.Collector
	Hosts    int
	QPS      float64
	Scale    int
	FlowSize int64
	// Periodic fires queries at fixed 1/QPS intervals (the §2 incast app
	// sends "at predefined intervals"); the default is Poisson arrivals.
	Periodic bool
	// RequestDelay models the query packet's trip from client to servers.
	RequestDelay units.Time
	Start        FlowStarter
}

// Load returns the incast traffic's offered load as a fraction of aggregate
// host access capacity.
func (ic *Incast) Load(hostRate units.BitRate) float64 {
	return ic.QPS * float64(ic.Scale) * float64(ic.FlowSize) * 8 /
		(float64(hostRate) * float64(ic.Hosts))
}

// QPSForLoad returns the query rate that offers the given load fraction.
func QPSForLoad(load float64, hosts, scale int, flowSize int64, hostRate units.BitRate) float64 {
	if scale <= 0 || flowSize <= 0 {
		return 0
	}
	return load * float64(hostRate) * float64(hosts) / (float64(scale) * float64(flowSize) * 8)
}

// Run starts the query process; it self-perpetuates until the deadline.
func (ic *Incast) Run(until units.Time) {
	if ic.QPS <= 0 || ic.Scale <= 0 || ic.Hosts < 2 {
		return
	}
	ic.next(until)
}

func (ic *Incast) next(until units.Time) {
	var gap units.Time
	if ic.Periodic {
		gap = units.Time(float64(units.Second) / ic.QPS)
		if gap < 1 {
			gap = 1
		}
	} else {
		gap = expInterval(ic.Eng, ic.QPS)
	}
	at := ic.Eng.Now() + gap
	if at > until {
		return
	}
	ic.Eng.At(at, func() {
		ic.fire()
		ic.next(until)
	})
}

// fire launches one query now.
func (ic *Incast) fire() {
	rng := ic.Eng.Rand()
	client := rng.Intn(ic.Hosts)
	scale := ic.Scale
	if scale > ic.Hosts-1 {
		scale = ic.Hosts - 1
	}
	query := ic.Met.StartQuery(scale, ic.Eng.Now())
	// Sample `scale` distinct servers != client by partial Fisher-Yates over
	// the host range with the client swapped out.
	perm := rng.Perm(ic.Hosts)
	picked := 0
	for _, s := range perm {
		if s == client {
			continue
		}
		server := s
		ic.Eng.After(ic.RequestDelay, func() {
			ic.Start(server, client, ic.FlowSize, true, query)
		})
		picked++
		if picked == scale {
			break
		}
	}
}
