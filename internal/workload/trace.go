package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// TraceFlow is one flow in a replayable trace.
type TraceFlow struct {
	At   units.Time
	Src  int
	Dst  int
	Size int64
}

// Trace is a deterministic flow arrival schedule, as parsed from a trace
// file. It complements the synthetic generators: operators can replay their
// own measured traffic (the paper's background workloads are themselves
// distilled from such traces).
type Trace struct {
	Flows []TraceFlow
}

// ParseTrace reads a trace in CSV form, one flow per line:
//
//	start_us,src,dst,bytes
//
// start_us is the flow arrival time in microseconds from simulation start.
// Blank lines and lines starting with '#' are skipped. Flows need not be
// sorted; ParseTrace sorts them by arrival time (stable).
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("workload: trace line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		var vals [4]int64
		for i, f := range fields {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		if vals[0] < 0 || vals[1] < 0 || vals[2] < 0 || vals[3] <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: negative time/host or non-positive size", lineNo)
		}
		if vals[1] == vals[2] {
			return nil, fmt.Errorf("workload: trace line %d: src == dst", lineNo)
		}
		tr.Flows = append(tr.Flows, TraceFlow{
			At:   units.Time(vals[0]) * units.Microsecond,
			Src:  int(vals[1]),
			Dst:  int(vals[2]),
			Size: vals[3],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(tr.Flows, func(i, j int) bool { return tr.Flows[i].At < tr.Flows[j].At })
	return tr, nil
}

// Validate checks every flow against the host count.
func (tr *Trace) Validate(hosts int) error {
	for i, f := range tr.Flows {
		if f.Src >= hosts || f.Dst >= hosts {
			return fmt.Errorf("workload: trace flow %d references host %d/%d, topology has %d",
				i, f.Src, f.Dst, hosts)
		}
	}
	return nil
}

// TotalBytes sums the trace's flow sizes.
func (tr *Trace) TotalBytes() int64 {
	var n int64
	for _, f := range tr.Flows {
		n += f.Size
	}
	return n
}

// Run schedules every flow at its arrival time, up to the deadline.
func (tr *Trace) Run(eng *sim.Engine, until units.Time, start FlowStarter) {
	for _, f := range tr.Flows {
		if f.At > until {
			break
		}
		f := f
		eng.At(f.At, func() { start(f.Src, f.Dst, f.Size, false, -1) })
	}
}
