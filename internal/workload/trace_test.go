package workload

import (
	"strings"
	"testing"

	"vertigo/internal/sim"
	"vertigo/internal/units"
)

const sampleTrace = `# time_us,src,dst,bytes
0,0,1,1000
100,2,3,50000

50,1,0,200
`

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Flows) != 3 {
		t.Fatalf("%d flows, want 3", len(tr.Flows))
	}
	// Sorted by arrival.
	if tr.Flows[0].At != 0 || tr.Flows[1].At != 50*units.Microsecond || tr.Flows[2].At != 100*units.Microsecond {
		t.Fatalf("not sorted: %+v", tr.Flows)
	}
	if tr.TotalBytes() != 51200 {
		t.Fatalf("total bytes %d, want 51200", tr.TotalBytes())
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := map[string]string{
		"bad-fields": "1,2,3\n",
		"bad-number": "a,0,1,100\n",
		"self-flow":  "0,1,1,100\n",
		"neg-size":   "0,0,1,0\n",
		"neg-time":   "-5,0,1,100\n",
	}
	for name, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	tr, _ := ParseTrace(strings.NewReader("0,0,9,100\n"))
	if err := tr.Validate(4); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if err := tr.Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRunSchedulesFlows(t *testing.T) {
	tr, err := ParseTrace(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	type started struct {
		at       units.Time
		src, dst int
		size     int64
	}
	var got []started
	tr.Run(eng, units.Second, func(src, dst int, size int64, incast bool, query int) {
		if incast || query != -1 {
			t.Fatal("trace flows must be background class")
		}
		got = append(got, started{eng.Now(), src, dst, size})
	})
	eng.Run(units.Second)
	if len(got) != 3 {
		t.Fatalf("started %d flows, want 3", len(got))
	}
	if got[1].at != 50*units.Microsecond || got[1].size != 200 {
		t.Fatalf("flow 1 wrong: %+v", got[1])
	}
}

func TestTraceRunRespectsDeadline(t *testing.T) {
	tr, _ := ParseTrace(strings.NewReader("0,0,1,10\n900,0,1,10\n"))
	eng := sim.NewEngine(1)
	n := 0
	tr.Run(eng, 500*units.Microsecond, func(int, int, int64, bool, int) { n++ })
	eng.Run(units.Second)
	if n != 1 {
		t.Fatalf("started %d flows, want 1 (second is past deadline)", n)
	}
}
