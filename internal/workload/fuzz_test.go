package workload

import (
	"strings"
	"testing"
)

// FuzzParseTrace hardens the trace parser: arbitrary text must never panic,
// and accepted traces must be internally consistent (sorted, positive sizes,
// no self-flows).
func FuzzParseTrace(f *testing.F) {
	f.Add("0,0,1,100\n")
	f.Add("# comment\n\n5,2,3,999\n1,0,1,10\n")
	f.Add(",,,\n")
	f.Add("a,b,c,d\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseTrace(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, fl := range tr.Flows {
			if fl.Size <= 0 || fl.Src == fl.Dst || fl.At < 0 {
				t.Fatalf("accepted invalid flow %+v", fl)
			}
			if i > 0 && fl.At < tr.Flows[i-1].At {
				t.Fatal("accepted trace not sorted")
			}
		}
	})
}
