// Package workload generates the paper's traffic: background flows drawn
// from published datacenter flow-size distributions (Facebook cache
// follower, Facebook data mining, Google web search) with Poisson arrivals,
// and the incast query application that creates microbursts (§4.1).
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// SizeDist is an empirical flow-size distribution: a piecewise-linear CDF
// over bytes, sampled by inverse transform.
type SizeDist struct {
	Name  string
	sizes []float64 // ascending byte values
	cdf   []float64 // matching cumulative probabilities, ending at 1
	mean  float64
}

// NewSizeDist builds a distribution from (bytes, cumulative-probability)
// points. Points must be ascending in both coordinates and end with
// probability 1.
func NewSizeDist(name string, points [][2]float64) (*SizeDist, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: distribution %q needs at least 2 points", name)
	}
	d := &SizeDist{Name: name}
	for i, pt := range points {
		if i > 0 && (pt[0] < points[i-1][0] || pt[1] < points[i-1][1]) {
			return nil, fmt.Errorf("workload: distribution %q not monotone at point %d", name, i)
		}
		d.sizes = append(d.sizes, pt[0])
		d.cdf = append(d.cdf, pt[1])
	}
	if last := d.cdf[len(d.cdf)-1]; last != 1 {
		return nil, fmt.Errorf("workload: distribution %q CDF ends at %v, want 1", name, last)
	}
	// Mean of the piecewise-linear CDF: within each linear segment the mass
	// d.cdf[i+1]-d.cdf[i] is uniform over [sizes[i], sizes[i+1]].
	for i := 0; i+1 < len(d.sizes); i++ {
		mass := d.cdf[i+1] - d.cdf[i]
		d.mean += mass * (d.sizes[i] + d.sizes[i+1]) / 2
	}
	return d, nil
}

// MeanBytes returns the distribution mean in bytes.
func (d *SizeDist) MeanBytes() float64 { return d.mean }

// Sample draws one flow size (at least 1 byte).
func (d *SizeDist) Sample(rng *rand.Rand) int64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		i = 1
	}
	if i >= len(d.cdf) {
		i = len(d.cdf) - 1
	}
	lo, hi := d.sizes[i-1], d.sizes[i]
	clo, chi := d.cdf[i-1], d.cdf[i]
	v := lo
	if chi > clo {
		v = lo + (hi-lo)*(u-clo)/(chi-clo)
	}
	if v < 1 {
		v = 1
	}
	return int64(v)
}

// mustDist panics on construction errors in the package's own tables.
func mustDist(name string, points [][2]float64) *SizeDist {
	d, err := NewSizeDist(name, points)
	if err != nil {
		panic(err)
	}
	return d
}

// The three background workloads the paper samples ([6],[62]). The raw rack
// traces are proprietary; these piecewise CDFs follow the published
// distributions (see DESIGN.md, substitutions).
var (
	// CacheFollower is Facebook's cache-follower workload: mice-dominated,
	// with half of the flows under 24 KB (paper §4.2).
	CacheFollower = mustDist("cachefollower", [][2]float64{
		{70, 0},
		{150, 0.07},
		{350, 0.15},
		{1_000, 0.3},
		{3_000, 0.4},
		{10_000, 0.43},
		{24_000, 0.5},
		{100_000, 0.8},
		{300_000, 0.9},
		{1_000_000, 0.95},
		{5_000_000, 0.99},
		{30_000_000, 1},
	})

	// DataMining is Facebook's Hadoop/data-mining workload: heavy-tailed,
	// dominated by large flows.
	DataMining = mustDist("datamining", [][2]float64{
		{80, 0},
		{200, 0.05},
		{400, 0.15},
		{1_000, 0.3},
		{3_000, 0.45},
		{10_000, 0.55},
		{100_000, 0.65},
		{1_000_000, 0.75},
		{10_000_000, 0.85},
		{30_000_000, 0.95},
		{100_000_000, 1},
	})

	// WebSearch is Google's web-search workload (the DCTCP benchmark
	// distribution): bimodal with a substantial large-flow tail.
	WebSearch = mustDist("websearch", [][2]float64{
		{6_000, 0},
		{10_000, 0.15},
		{20_000, 0.2},
		{30_000, 0.3},
		{50_000, 0.4},
		{80_000, 0.53},
		{200_000, 0.6},
		{1_000_000, 0.7},
		{2_000_000, 0.8},
		{5_000_000, 0.9},
		{10_000_000, 0.97},
		{30_000_000, 1},
	})
)

// DistByName resolves a workload name.
func DistByName(name string) (*SizeDist, error) {
	switch name {
	case "cachefollower", "cache-follower":
		return CacheFollower, nil
	case "datamining", "data-mining":
		return DataMining, nil
	case "websearch", "web-search":
		return WebSearch, nil
	}
	return nil, fmt.Errorf("workload: unknown distribution %q", name)
}
