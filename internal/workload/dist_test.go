package workload

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuiltinDistributions(t *testing.T) {
	for _, d := range []*SizeDist{CacheFollower, DataMining, WebSearch} {
		if d.MeanBytes() <= 0 {
			t.Errorf("%s: non-positive mean", d.Name)
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10000; i++ {
			v := d.Sample(rng)
			if v < 1 {
				t.Fatalf("%s: sample %d < 1", d.Name, v)
			}
			if v > int64(d.sizes[len(d.sizes)-1])+1 {
				t.Fatalf("%s: sample %d beyond distribution max", d.Name, v)
			}
		}
	}
}

func TestCacheFollowerIsMiceDominated(t *testing.T) {
	// Paper §4.2: half the cache-follower flows are under 24 KB.
	rng := rand.New(rand.NewSource(2))
	small := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if CacheFollower.Sample(rng) <= 24_000 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("cache-follower P(size<=24KB) = %.3f, want ~0.5", frac)
	}
}

func TestSampleMeanMatchesAnalyticMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []*SizeDist{CacheFollower, WebSearch} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(d.Sample(rng))
		}
		got := sum / n
		want := d.MeanBytes()
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("%s: sample mean %.0f vs analytic %.0f", d.Name, got, want)
		}
	}
}

func TestNewSizeDistValidation(t *testing.T) {
	if _, err := NewSizeDist("x", [][2]float64{{1, 0}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewSizeDist("x", [][2]float64{{1, 0}, {2, 0.5}}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
	if _, err := NewSizeDist("x", [][2]float64{{5, 0}, {2, 1}}); err == nil {
		t.Error("non-monotone sizes accepted")
	}
	if _, err := NewSizeDist("x", [][2]float64{{1, 0.5}, {2, 0.2}, {3, 1}}); err == nil {
		t.Error("non-monotone CDF accepted")
	}
}

func TestDistByName(t *testing.T) {
	for _, name := range []string{"cachefollower", "datamining", "websearch", "web-search"} {
		if _, err := DistByName(name); err != nil {
			t.Errorf("DistByName(%q): %v", name, err)
		}
	}
	if _, err := DistByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// Property: samples are always within the distribution's support.
func TestPropertySampleInSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			v := WebSearch.Sample(rng)
			if v < 1 || float64(v) > WebSearch.sizes[len(WebSearch.sizes)-1]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
