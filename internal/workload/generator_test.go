package workload

import (
	"testing"

	"vertigo/internal/metrics"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

func TestBackgroundOffersConfiguredLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	var bytes int64
	flows := 0
	bg := &Background{
		Eng:      eng,
		Hosts:    64,
		Dist:     CacheFollower,
		HostRate: 10 * units.Gbps,
		Load:     0.5,
		Start: func(src, dst int, size int64, incast bool, query int) {
			if src == dst {
				t.Fatal("background flow to self")
			}
			if incast || query != -1 {
				t.Fatal("background flow marked as incast")
			}
			bytes += size
			flows++
		},
	}
	const horizon = 200 * units.Millisecond
	bg.Run(horizon)
	eng.Run(horizon)
	if flows == 0 {
		t.Fatal("no background flows generated")
	}
	offered := float64(bytes) * 8 / horizon.Seconds()
	want := 0.5 * float64(10*units.Gbps) * 64
	if offered < want*0.8 || offered > want*1.2 {
		t.Errorf("offered %.3g bps, want ~%.3g (50%% of 64x10G)", offered, want)
	}
}

func TestBackgroundZeroLoadGeneratesNothing(t *testing.T) {
	eng := sim.NewEngine(1)
	bg := &Background{
		Eng: eng, Hosts: 8, Dist: CacheFollower, HostRate: 10 * units.Gbps,
		Load:  0,
		Start: func(int, int, int64, bool, int) { t.Fatal("flow at zero load") },
	}
	bg.Run(units.Second)
	eng.Run(units.Second)
}

func TestIncastQueryStructure(t *testing.T) {
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	type flow struct{ src, dst int }
	flowsByQuery := make(map[int][]flow)
	ic := &Incast{
		Eng: eng, Met: met, Hosts: 32,
		QPS: 1000, Scale: 10, FlowSize: 40000,
		RequestDelay: 5 * units.Microsecond,
		Start: func(src, dst int, size int64, incast bool, query int) {
			if !incast || size != 40000 {
				t.Fatalf("bad incast flow: incast=%v size=%d", incast, size)
			}
			flowsByQuery[query] = append(flowsByQuery[query], flow{src, dst})
		},
	}
	const horizon = 100 * units.Millisecond
	ic.Run(horizon)
	eng.Run(horizon + units.Second)
	if len(met.Queries) == 0 {
		t.Fatal("no queries generated")
	}
	for q, fs := range flowsByQuery {
		if len(fs) != 10 {
			t.Fatalf("query %d has %d flows, want 10", q, len(fs))
		}
		client := fs[0].dst
		seen := map[int]bool{}
		for _, f := range fs {
			if f.dst != client {
				t.Fatalf("query %d has multiple clients", q)
			}
			if f.src == client {
				t.Fatalf("query %d: client is its own server", q)
			}
			if seen[f.src] {
				t.Fatalf("query %d: duplicate server %d", q, f.src)
			}
			seen[f.src] = true
		}
	}
}

func TestIncastScaleClampedToHosts(t *testing.T) {
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	count := 0
	ic := &Incast{
		Eng: eng, Met: met, Hosts: 4,
		QPS: 100, Scale: 100, FlowSize: 1000,
		Start: func(src, dst int, size int64, incast bool, query int) { count++ },
	}
	ic.Run(100 * units.Millisecond)
	eng.Run(200 * units.Millisecond)
	if len(met.Queries) == 0 {
		t.Fatal("no queries")
	}
	if count != len(met.Queries)*3 {
		t.Fatalf("flows %d, want %d (scale clamped to hosts-1=3)", count, len(met.Queries)*3)
	}
}

func TestQPSForLoadInvertsLoad(t *testing.T) {
	qps := QPSForLoad(0.4, 320, 100, 40_000, 10*units.Gbps)
	ic := &Incast{Hosts: 320, QPS: qps, Scale: 100, FlowSize: 40_000}
	if got := ic.Load(10 * units.Gbps); got < 0.399 || got > 0.401 {
		t.Fatalf("round-trip load %.4f, want 0.4", got)
	}
	if QPSForLoad(0.5, 10, 0, 100, units.Gbps) != 0 {
		t.Fatal("zero scale should yield zero QPS")
	}
}

func TestIncastRate(t *testing.T) {
	eng := sim.NewEngine(7)
	met := metrics.NewCollector()
	ic := &Incast{
		Eng: eng, Met: met, Hosts: 64,
		QPS: 4000, Scale: 5, FlowSize: 1000,
		Start: func(int, int, int64, bool, int) {},
	}
	const horizon = 500 * units.Millisecond
	ic.Run(horizon)
	eng.Run(horizon + units.Second)
	got := float64(len(met.Queries)) / horizon.Seconds()
	if got < 3200 || got > 4800 {
		t.Errorf("query rate %.0f/s, want ~4000", got)
	}
}

func TestIncastPeriodicIntervals(t *testing.T) {
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	var times []units.Time
	ic := &Incast{
		Eng: eng, Met: met, Hosts: 16,
		QPS: 1000, Scale: 2, FlowSize: 1000, Periodic: true,
		Start: func(int, int, int64, bool, int) {},
	}
	ic.Run(10 * units.Millisecond)
	eng.Run(20 * units.Millisecond)
	for _, q := range met.Queries {
		times = append(times, q.Start)
	}
	if len(times) != 10 {
		t.Fatalf("%d queries in 10ms at 1000 QPS periodic, want 10", len(times))
	}
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d != units.Millisecond {
			t.Fatalf("interval %v, want exactly 1ms", d)
		}
	}
}
