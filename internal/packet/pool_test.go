package packet

import "testing"

func TestPoolRecycles(t *testing.T) {
	pl := &Pool{}
	p := pl.Get()
	p.ID = 42
	pl.Put(p)
	if pl.Len() != 1 {
		t.Fatalf("Len = %d after Put, want 1", pl.Len())
	}
	q := pl.Get()
	if q != p {
		t.Fatal("Get did not return the recycled packet")
	}
	if pl.Len() != 0 {
		t.Fatalf("Len = %d after Get, want 0", pl.Len())
	}
}

func TestPoolNilSafe(t *testing.T) {
	var pl *Pool
	p := pl.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pl.Put(p) // must not panic
	if pl.Len() != 0 {
		t.Fatal("nil pool has nonzero Len")
	}
}

func TestPoolGetAllocatesWhenEmpty(t *testing.T) {
	pl := &Pool{}
	a, b := pl.Get(), pl.Get()
	if a == b {
		t.Fatal("empty pool handed out the same packet twice")
	}
	pl.Put(nil) // must not panic or enqueue
	if pl.Len() != 0 {
		t.Fatal("Put(nil) enqueued a nil packet")
	}
}

func TestPoolSteadyStateAllocFree(t *testing.T) {
	pl := &Pool{}
	pl.Put(&Packet{})
	avg := testing.AllocsPerRun(100, func() {
		p := pl.Get()
		pl.Put(p)
	})
	if avg > 0 {
		t.Fatalf("Get/Put cycle allocates %.2f, want 0", avg)
	}
}

// A recycled frame must never leak the previous tenant's memoized wire
// size: Put clears it so the next tenant's first Size() call re-derives
// from its own headers and payload.
func TestPoolRecycledSizeNotStale(t *testing.T) {
	pl := &Pool{}
	p := pl.Get()
	p.Kind = Data
	p.PayloadLen = 1000
	big := p.Size()
	pl.Put(p)
	q := pl.Get()
	if q != p {
		t.Fatal("expected the recycled frame back")
	}
	q.Kind = Ack
	q.PayloadLen = 0
	if got := q.Size(); got == big {
		t.Fatalf("recycled packet reports previous tenant's Size %v", got)
	}
}

func TestPoolStats(t *testing.T) {
	pl := &Pool{}
	a := pl.Get() // miss
	pl.Put(a)
	b := pl.Get() // hit
	_ = pl.Get()  // miss
	pl.Put(b)
	st := pl.Stats()
	// The first miss carves the one-and-only slab; the second miss carves
	// another frame from it.
	if st != (PoolStats{Gets: 3, Hits: 1, Puts: 2, Slabs: 1}) {
		t.Fatalf("stats %+v, want {3 1 2 1}", st)
	}
	if got := st.RecycleRate(); got != 1.0/3.0 {
		t.Fatalf("recycle rate %v, want 1/3", got)
	}
	var nilPool *Pool
	if nilPool.Stats() != (PoolStats{}) {
		t.Fatal("nil pool stats not zero")
	}
	nilPool.Get()
	if (PoolStats{}).RecycleRate() != 0 {
		t.Fatal("zero stats recycle rate not 0")
	}
}
