package packet

import (
	"testing"
	"testing/quick"
)

func TestBoostUnboostRoundTrip(t *testing.T) {
	f := func(rfs uint32, retcntRaw uint8, factorRaw uint8) bool {
		retcnt := retcntRaw % (MaxRetx + 1)
		factorLog2 := uint(factorRaw%3) + 1 // factors 2x, 4x, 8x
		boosted := rfs
		for i := uint8(0); i < retcnt; i++ {
			boosted = BoostRFS(boosted, factorLog2)
		}
		return UnboostRFS(boosted, retcnt, factorLog2) == rfs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoostHalvesEvenValues(t *testing.T) {
	// For even RFS values below 2^31, a 2x boost is exactly a halving, which
	// is the paper's "divide RFS by the boosting factor".
	cases := []uint32{20000, 1460, 40000, 2, 1 << 20}
	for _, rfs := range cases {
		if got := BoostRFS(rfs, 1); got != rfs/2 {
			t.Errorf("BoostRFS(%d, 1) = %d, want %d", rfs, got, rfs/2)
		}
	}
}

func TestOriginalRFS(t *testing.T) {
	fi := FlowInfo{RFS: BoostRFS(BoostRFS(40000, 1), 1), RetCnt: 2}
	if got := fi.OriginalRFS(1); got != 40000 {
		t.Fatalf("OriginalRFS = %d, want 40000", got)
	}
}

func TestPacketSize(t *testing.T) {
	data := &Packet{Kind: Data, PayloadLen: MSS}
	if got := data.Size(); got != MSS+HeaderLen {
		t.Fatalf("data size %v, want %d", got, MSS+HeaderLen)
	}
	// Size is memoized; mutating the marking requires an explicit
	// invalidation (Marker.Mark does this on the real path).
	data.Marked = true
	data.InvalidateSize()
	if got := data.Size(); got != MSS+HeaderLen+ShimHeaderLen {
		t.Fatalf("marked data size %v, want %d", got, MSS+HeaderLen+ShimHeaderLen)
	}
	ack := &Packet{Kind: Ack}
	if got := ack.Size(); got != AckLen {
		t.Fatalf("ack size %v, want %d", got, AckLen)
	}
}

func TestRank(t *testing.T) {
	p := &Packet{Kind: Data, Info: FlowInfo{RFS: 1234}}
	if p.Rank() != 0 {
		t.Fatal("unmarked packet must rank 0")
	}
	p.Marked = true
	if p.Rank() != 1234 {
		t.Fatalf("marked packet rank %d, want 1234", p.Rank())
	}
}

func TestEnd(t *testing.T) {
	p := &Packet{Seq: 1000, PayloadLen: 460}
	if p.End() != 1460 {
		t.Fatalf("End() = %d, want 1460", p.End())
	}
}

func TestIDGen(t *testing.T) {
	var g IDGen
	a, b := g.Next(), g.Next()
	if a == 0 || b == 0 || a == b {
		t.Fatalf("IDGen produced %d, %d; want distinct non-zero", a, b)
	}
}

func TestKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Fatal("Kind.String mismatch")
	}
}
