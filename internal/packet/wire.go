package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire encodings of the flowinfo header, per paper Fig. 3. Two encodings are
// provided:
//
//   - A shim layer-3 header that sits between the Ethernet header and the IP
//     header, identified by its own EtherType. 7 bytes of overhead: a 2-byte
//     encapsulated EtherType followed by the 5-byte flowinfo body.
//   - An IPv4 option (type/length + 6-byte body = 8 bytes, keeping the
//     options area 32-bit aligned as IPv4 requires).
//
// Both carry the same logical fields:
//
//	RFS     32 bits
//	RetCnt   4 bits
//	FlowID   3 bits
//	FLAGS    1 bit (first-packet marker under SRPT)

// Encoding sizes and identifiers.
const (
	ShimHeaderLen  = 7      // encapsulated EtherType (2) + body (5)
	ShimEtherType  = 0x88B6 // local experimental EtherType for the shim header
	OptionLen      = 8      // type (1) + length (1) + body (5) + pad (1)
	OptionType     = 0x9E   // copy=1, class=0, number=30 (experimental)
	flowInfoBodyLn = 5
)

// Errors returned by the decoders.
var (
	ErrShort     = errors.New("packet: buffer too short for flowinfo header")
	ErrBadOption = errors.New("packet: not a flowinfo IPv4 option")
)

// putBody encodes the 5-byte flowinfo body: RFS then the packed
// retcnt/flow-id/flags byte.
func putBody(b []byte, f FlowInfo) {
	binary.BigEndian.PutUint32(b[0:4], f.RFS)
	packed := (f.RetCnt&0x0F)<<4 | (f.FlowID&0x07)<<1
	if f.First {
		packed |= 1
	}
	b[4] = packed
}

// getBody decodes the 5-byte flowinfo body.
func getBody(b []byte) FlowInfo {
	packed := b[4]
	return FlowInfo{
		RFS:    binary.BigEndian.Uint32(b[0:4]),
		RetCnt: packed >> 4,
		FlowID: (packed >> 1) & 0x07,
		First:  packed&1 == 1,
	}
}

// EncodeShim writes the shim layer-3 encoding of f into b, which must have
// room for ShimHeaderLen bytes. innerEtherType is the EtherType of the
// encapsulated protocol (e.g. 0x0800 for IPv4). It returns ShimHeaderLen.
func EncodeShim(b []byte, f FlowInfo, innerEtherType uint16) (int, error) {
	if len(b) < ShimHeaderLen {
		return 0, ErrShort
	}
	binary.BigEndian.PutUint16(b[0:2], innerEtherType)
	putBody(b[2:ShimHeaderLen], f)
	return ShimHeaderLen, nil
}

// DecodeShim parses a shim header from b, returning the flowinfo fields and
// the encapsulated EtherType.
func DecodeShim(b []byte) (FlowInfo, uint16, error) {
	if len(b) < ShimHeaderLen {
		return FlowInfo{}, 0, ErrShort
	}
	inner := binary.BigEndian.Uint16(b[0:2])
	return getBody(b[2:ShimHeaderLen]), inner, nil
}

// EncodeOption writes the IPv4-option encoding of f into b, which must have
// room for OptionLen bytes. The final byte is an end-of-options pad so the
// option block stays 32-bit aligned. It returns OptionLen.
func EncodeOption(b []byte, f FlowInfo) (int, error) {
	if len(b) < OptionLen {
		return 0, ErrShort
	}
	b[0] = OptionType
	b[1] = OptionLen - 1 // option length excludes the trailing pad byte
	putBody(b[2:2+flowInfoBodyLn], f)
	b[7] = 0 // EOL pad
	return OptionLen, nil
}

// DecodeOption parses the IPv4-option encoding from b.
func DecodeOption(b []byte) (FlowInfo, error) {
	if len(b) < OptionLen {
		return FlowInfo{}, ErrShort
	}
	if b[0] != OptionType || b[1] != OptionLen-1 {
		return FlowInfo{}, fmt.Errorf("%w: type=%#x len=%d", ErrBadOption, b[0], b[1])
	}
	return getBody(b[2 : 2+flowInfoBodyLn]), nil
}
