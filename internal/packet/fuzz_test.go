package packet

import (
	"bytes"
	"testing"
)

// FuzzDecodeShim hardens the shim decoder against arbitrary wire bytes:
// it must never panic, and any successfully decoded header must re-encode
// to the identical bytes (canonical encoding).
func FuzzDecodeShim(f *testing.F) {
	var seed [ShimHeaderLen]byte
	EncodeShim(seed[:], FlowInfo{RFS: 12345, RetCnt: 3, FlowID: 2, First: true}, 0x0800)
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add([]byte{0x08, 0x00, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fi, inner, err := DecodeShim(data)
		if err != nil {
			return
		}
		var out [ShimHeaderLen]byte
		if _, err := EncodeShim(out[:], fi, inner); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(out[:], data[:ShimHeaderLen]) {
			t.Fatalf("decode/encode not canonical: %x vs %x", out, data[:ShimHeaderLen])
		}
	})
}

// FuzzDecodeOption does the same for the IPv4-option encoding.
func FuzzDecodeOption(f *testing.F) {
	var seed [OptionLen]byte
	EncodeOption(seed[:], FlowInfo{RFS: 999, RetCnt: 1, FlowID: 7})
	f.Add(seed[:])
	f.Add([]byte{OptionType, OptionLen - 1, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fi, err := DecodeOption(data)
		if err != nil {
			return
		}
		var out [OptionLen]byte
		if _, err := EncodeOption(out[:], fi); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		// Bytes 0..6 must round-trip; byte 7 is the pad we always write 0.
		if !bytes.Equal(out[:7], data[:7]) {
			t.Fatalf("decode/encode not canonical: %x vs %x", out[:7], data[:7])
		}
	})
}
