package packet

// Pool is a per-simulation free list of Packets. Data packets and ACKs are
// the simulator's dominant allocation churn (one of each per delivered
// segment); recycling them through a free list makes the send path
// allocation-free at steady state.
//
// Ownership rule: a packet is either in exactly one queue, in flight on one
// link, or being handled — whoever consumes it last (the transport handler
// on delivery, the fabric on a drop) returns it with Put. A packet must not
// be touched after Put.
//
// A Pool is not safe for concurrent use; every simulation (engine) owns its
// own. A nil *Pool is valid and degrades to plain allocation.
type Pool struct {
	free []*Packet

	gets uint64 // Get calls
	hits uint64 // Get calls served from the free list
	puts uint64 // Put calls
}

// Get returns a packet for the caller to initialize. The packet's fields are
// unspecified (it may be a recycled frame); callers must overwrite it
// wholesale with a composite-literal assignment.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.hits++
		return p
	}
	return &Packet{}
}

// Put recycles p. The caller must hold the last reference.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	pl.puts++
	pl.free = append(pl.free, p)
}

// Len returns the number of packets currently on the free list.
func (pl *Pool) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// PoolStats snapshots a pool's recycle counters: at steady state Hits/Gets
// approaches 1 and the send path stops allocating packets.
type PoolStats struct {
	Gets uint64 `json:"gets"` // packets handed out
	Hits uint64 `json:"hits"` // handed-out packets that were recycled frames
	Puts uint64 `json:"puts"` // packets returned
}

// RecycleRate returns Hits/Gets (0 when nothing was handed out).
func (s PoolStats) RecycleRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats returns the pool's counters. Nil-safe: a nil pool reports zeros.
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: pl.gets, Hits: pl.hits, Puts: pl.puts}
}
