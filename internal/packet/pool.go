package packet

import "vertigo/internal/obs"

// slabSize is the number of Packet frames carved from one backing
// allocation. 256 frames ≈ 40 KB: big enough to amortize the allocator to
// noise, small enough that a short run does not strand memory.
const slabSize = 256

// Process-global pool metrics, aggregated across every pool in the process.
// Each pool publishes counter deltas every obsPubMask+1 Gets (and on
// PublishObs), keeping the per-packet path free of atomic traffic.
var (
	obsGets  = obs.NewCounter("vertigo_packet_pool_gets_total", "packets handed out by pools")
	obsHits  = obs.NewCounter("vertigo_packet_pool_hits_total", "handed-out packets that were recycled frames")
	obsPuts  = obs.NewCounter("vertigo_packet_pool_puts_total", "packets returned to pools")
	obsSlabs = obs.NewCounter("vertigo_packet_pool_slabs_total", "backing slabs allocated by pools")
)

// obsPubMask throttles registry publishes to one per 4 Ki Gets.
const obsPubMask = 1<<12 - 1

// Pool is a per-simulation free list of Packets backed by slab allocation.
// Data packets and ACKs are the simulator's dominant allocation churn (one
// of each per delivered segment); recycling them through a free list makes
// the send path allocation-free at steady state, and carving fresh frames
// from contiguous slabs — rather than one heap object each — lays the
// population out struct-of-arrays-style in memory, so a packet train
// serialized back-to-back walks consecutive cache lines instead of chasing
// scattered allocations.
//
// Ownership rule: a packet is either in exactly one queue, in flight on one
// link, or being handled — whoever consumes it last (the transport handler
// on delivery, the fabric on a drop) returns it with Put. A packet must not
// be touched after Put.
//
// A Pool is not safe for concurrent use; every simulation (engine) owns its
// own. A nil *Pool is valid and degrades to plain allocation.
type Pool struct {
	free []*Packet
	slab []Packet // current slab's uncarved tail

	gets  uint64 // Get calls
	hits  uint64 // Get calls served from the free list
	puts  uint64 // Put calls
	slabs uint64 // backing slabs allocated

	// Last-published shadows for the throttled registry publish.
	pubGets, pubHits, pubPuts, pubSlabs uint64
}

// Get returns a packet for the caller to initialize. The packet's fields are
// unspecified (it may be a recycled frame); callers must overwrite it
// wholesale with a composite-literal assignment.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.gets++
	if pl.gets&obsPubMask == 0 {
		pl.PublishObs()
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		pl.hits++
		return p
	}
	if len(pl.slab) == 0 {
		pl.slab = make([]Packet, slabSize)
		pl.slabs++
	}
	p := &pl.slab[0]
	pl.slab = pl.slab[1:]
	return p
}

// Put recycles p. The caller must hold the last reference. The memoized
// wire size is invalidated here as well as by the composite-literal
// reinitialization rule, so a recycled frame can never report a previous
// tenant's size even to a caller that reinitializes field-by-field.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	p.wire = 0
	pl.puts++
	pl.free = append(pl.free, p)
}

// Len returns the number of packets currently on the free list.
func (pl *Pool) Len() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// PoolStats snapshots a pool's recycle counters: at steady state Hits/Gets
// approaches 1 and the send path stops allocating packets.
type PoolStats struct {
	Gets uint64 `json:"gets"` // packets handed out
	Hits uint64 `json:"hits"` // handed-out packets that were recycled frames
	Puts uint64 `json:"puts"` // packets returned
	// Slabs counts backing allocations: cold-start gets are amortized
	// slabSize frames per allocation instead of one.
	Slabs uint64 `json:"slabs"`
}

// RecycleRate returns Hits/Gets (0 when nothing was handed out).
func (s PoolStats) RecycleRate() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// Stats returns the pool's counters. Nil-safe: a nil pool reports zeros.
func (pl *Pool) Stats() PoolStats {
	if pl == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: pl.gets, Hits: pl.hits, Puts: pl.puts, Slabs: pl.slabs}
}

// PublishObs pushes the pool's counter growth since the last publish into
// the process-global registry. Get calls it every 4 Ki packets; run teardown
// (core.Run) calls it once more so short runs surface too. Nil-safe.
func (pl *Pool) PublishObs() {
	if pl == nil {
		return
	}
	if d := pl.gets - pl.pubGets; d > 0 {
		obsGets.Add(d)
		pl.pubGets = pl.gets
	}
	if d := pl.hits - pl.pubHits; d > 0 {
		obsHits.Add(d)
		pl.pubHits = pl.hits
	}
	if d := pl.puts - pl.pubPuts; d > 0 {
		obsPuts.Add(d)
		pl.pubPuts = pl.puts
	}
	if d := pl.slabs - pl.pubSlabs; d > 0 {
		obsSlabs.Add(d)
		pl.pubSlabs = pl.slabs
	}
}
