// Package packet defines the simulator's packet model and the on-the-wire
// encodings of Vertigo's flowinfo header (paper Fig. 3). The simulator
// manipulates Packet structs directly; the wire codecs exist so the host
// components (marking, ordering) can also operate on real byte frames, which
// is what a downstream user of the library deploys.
package packet

import (
	"math/bits"

	"vertigo/internal/units"
)

// Default frame geometry. Transports are packet-granular with a fixed MSS.
const (
	MSS        = 1460 // max transport payload bytes per packet
	HeaderLen  = 40   // IP + transport headers, before flowinfo
	AckLen     = 64   // total size of a pure ACK frame
	MaxRetx    = 16   // 32-bit RFS supports 16 boosting rotations (paper §3.1.2)
	FlowIDBits = 3    // width of the flowinfo flow-id field
)

// Kind discriminates data packets from control packets.
type Kind uint8

// Packet kinds.
const (
	Data Kind = iota
	Ack
)

func (k Kind) String() string {
	if k == Ack {
		return "ack"
	}
	return "data"
}

// FlowInfo is Vertigo's auxiliary header, carried by every marked packet
// (paper Fig. 3). RFS is the remaining flow size in bytes at the moment the
// packet was first transmitted; it doubles as a per-flow sequence number
// because it is strictly decreasing across a flow's packets.
type FlowInfo struct {
	RFS    uint32 // remaining flow size (possibly boosted)
	RetCnt uint8  // number of boosting rotations applied (4 bits)
	FlowID uint8  // 3-bit flow epoch, orders back-to-back flows
	First  bool   // FLAGS bit: first packet of the flow (SRPT discipline)
}

// OriginalRFS undoes the boosting rotations and returns the RFS the sender
// originally computed. factorLog2 is log2 of the boosting factor.
func (f FlowInfo) OriginalRFS(factorLog2 uint) uint32 {
	return UnboostRFS(f.RFS, f.RetCnt, factorLog2)
}

// BoostRFS applies one boosting step to rfs: a bitwise right rotation by
// factorLog2 bits (so factor 2 rotates by 1). Rotation keeps the operation
// reversible at the receiver (paper §3.1.2).
func BoostRFS(rfs uint32, factorLog2 uint) uint32 {
	return bits.RotateLeft32(rfs, -int(factorLog2))
}

// UnboostRFS reverses retCnt boosting steps.
func UnboostRFS(rfs uint32, retCnt uint8, factorLog2 uint) uint32 {
	return bits.RotateLeft32(rfs, int(retCnt)*int(factorLog2))
}

// Packet is a simulated frame. Fields are grouped by which subsystem owns
// them; everything travels by pointer through the fabric, so a packet is
// either in exactly one queue, in flight on one link, or delivered.
type Packet struct {
	ID   uint64 // unique per simulation
	Kind Kind

	// Addressing.
	Src, Dst int    // host IDs
	Flow     uint64 // transport flow identifier (unique per simulation)

	// Transport payload bookkeeping.
	Seq        int64 // byte offset of first payload byte within the flow
	PayloadLen int   // payload bytes (0 for pure ACKs)
	AckSeq     int64 // cumulative ACK: next expected byte (ACKs only)
	FlowSize   int64 // total flow size (receiver-side bookkeeping)
	Fin        bool  // last packet of the flow
	Retx       bool  // this transmission is a retransmission
	Incast     bool  // packet belongs to an incast response flow

	// ECN.
	ECNCapable bool // ECT set by sender
	CE         bool // congestion experienced, set by switches
	ECE        bool // congestion echo (ACKs only)

	// Receiver-to-sender echoes (ACKs only), standing in for the NIC
	// timestamps Swift relies on.
	EchoTx   units.Time // TxAt of the data packet being acknowledged
	EchoProc units.Time // receiver host processing time (NIC RX to ACK TX)
	EchoHops int        // fabric hops the acknowledged data packet took

	// Vertigo flowinfo header. Marked reports whether the header is present;
	// unmarked packets are scheduled FIFO with rank 0 by non-Vertigo fabrics.
	Marked bool
	Info   FlowInfo

	// Telemetry stamped by the fabric and hosts.
	SentAt      units.Time // first transmission time at the source host
	TxAt        units.Time // transmission time of this copy (Swift RTT echo)
	RxAt        units.Time // NIC arrival time at the destination host
	Hops        int        // switch hops traversed
	Deflections int        // times deflected

	// wire memoizes Size(): every hop consults the size several times
	// (admission, occupancy, serialization delay) and the inputs are
	// frozen once the packet enters the fabric. 0 means "not computed";
	// no real frame is 0 bytes. The composite-literal reinitialization
	// rule (see Pool.Get) clears it on recycle; Marker.Mark clears it
	// when adding the shim header changes the answer.
	wire int32
}

// InvalidateSize clears the memoized wire size after a mutation that
// changes it (marking a packet adds the shim header).
func (p *Packet) InvalidateSize() { p.wire = 0 }

// Size returns the total wire size of the packet in bytes, including the
// flowinfo overhead when the packet is marked (shim layer-3 encoding).
func (p *Packet) Size() units.ByteSize {
	if p.wire != 0 {
		return units.ByteSize(p.wire)
	}
	var n int
	if p.Kind == Ack {
		n = AckLen
	} else {
		n = HeaderLen + p.PayloadLen
	}
	if p.Marked {
		n += ShimHeaderLen
	}
	p.wire = int32(n)
	return units.ByteSize(n)
}

// Rank is the scheduling rank used by rank-sorted queues: the (possibly
// boosted) RFS for marked packets. Unmarked packets rank 0 so that control
// traffic and non-Vertigo traffic is never victimized by rank comparisons.
func (p *Packet) Rank() uint32 {
	if !p.Marked {
		return 0
	}
	return p.Info.RFS
}

// End returns the byte offset one past this packet's payload.
func (p *Packet) End() int64 { return p.Seq + int64(p.PayloadLen) }

// IDGen allocates simulation-unique packet and flow IDs. The zero value is
// ready to use; IDs start at 1 so 0 can mean "unset".
type IDGen struct{ n uint64 }

// Next returns the next ID.
func (g *IDGen) Next() uint64 { g.n++; return g.n }
