package packet

import (
	"testing"
	"testing/quick"
)

func normalize(f FlowInfo) FlowInfo {
	f.RetCnt &= 0x0F
	f.FlowID &= 0x07
	return f
}

func TestShimRoundTrip(t *testing.T) {
	f := func(rfs uint32, retcnt, flowID uint8, first bool, ethertype uint16) bool {
		in := normalize(FlowInfo{RFS: rfs, RetCnt: retcnt, FlowID: flowID, First: first})
		var buf [ShimHeaderLen]byte
		n, err := EncodeShim(buf[:], in, ethertype)
		if err != nil || n != ShimHeaderLen {
			return false
		}
		out, inner, err := DecodeShim(buf[:])
		return err == nil && out == in && inner == ethertype
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionRoundTrip(t *testing.T) {
	f := func(rfs uint32, retcnt, flowID uint8, first bool) bool {
		in := normalize(FlowInfo{RFS: rfs, RetCnt: retcnt, FlowID: flowID, First: first})
		var buf [OptionLen]byte
		n, err := EncodeOption(buf[:], in)
		if err != nil || n != OptionLen {
			return false
		}
		out, err := DecodeOption(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestShortBuffers(t *testing.T) {
	short := make([]byte, 3)
	if _, err := EncodeShim(short, FlowInfo{}, 0x0800); err == nil {
		t.Error("EncodeShim accepted short buffer")
	}
	if _, _, err := DecodeShim(short); err == nil {
		t.Error("DecodeShim accepted short buffer")
	}
	if _, err := EncodeOption(short, FlowInfo{}); err == nil {
		t.Error("EncodeOption accepted short buffer")
	}
	if _, err := DecodeOption(short); err == nil {
		t.Error("DecodeOption accepted short buffer")
	}
}

func TestDecodeOptionRejectsWrongType(t *testing.T) {
	var buf [OptionLen]byte
	if _, err := EncodeOption(buf[:], FlowInfo{RFS: 7}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 0x01 // NOP option, not flowinfo
	if _, err := DecodeOption(buf[:]); err == nil {
		t.Error("DecodeOption accepted wrong option type")
	}
}

func TestOptionAlignment(t *testing.T) {
	if OptionLen%4 != 0 {
		t.Fatalf("IPv4 option block must be 32-bit aligned, got %d bytes", OptionLen)
	}
}

func TestWireOverheadMatchesPaper(t *testing.T) {
	// Paper Fig. 3: 7 bytes as a layer-3 shim, 8 bytes as an IPv4 option.
	if ShimHeaderLen != 7 {
		t.Errorf("shim overhead %d bytes, paper says 7", ShimHeaderLen)
	}
	if OptionLen != 8 {
		t.Errorf("option overhead %d bytes, paper says 8", OptionLen)
	}
}
