package topo

import (
	"testing"

	"vertigo/internal/units"
)

func partitionTopologies(t *testing.T) map[string]*Topology {
	t.Helper()
	out := make(map[string]*Topology)
	ft, err := NewFatTree(FatTreeConfig{K: 8, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	out["fattree-k8"] = ft
	ls, err := NewLeafSpine(LeafSpineConfig{
		Spines: 4, Leaves: 8, HostsPerLeaf: 5,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out["leafspine"] = ls
	return out
}

// Every host lands in exactly one domain, every switch is assigned, and the
// domain index range is [0, N).
func TestPartitionCoversEveryHostOnce(t *testing.T) {
	for name, topo := range partitionTopologies(t) {
		for _, n := range []int{1, 2, 3, 4, 8} {
			p, err := NewPartition(topo, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if len(p.HostDomain) != topo.NumHosts {
				t.Fatalf("%s n=%d: %d host assignments for %d hosts", name, n, len(p.HostDomain), topo.NumHosts)
			}
			counts := make([]int, p.N)
			for h, d := range p.HostDomain {
				if d < 0 || d >= p.N {
					t.Fatalf("%s n=%d: host %d in out-of-range domain %d", name, n, h, d)
				}
				counts[d]++
			}
			for d, c := range counts {
				if c == 0 {
					t.Errorf("%s n=%d: domain %d owns no hosts", name, n, d)
				}
			}
			for sw, d := range p.SwitchDomain {
				if d < 0 || d >= p.N {
					t.Fatalf("%s n=%d: switch %d in out-of-range domain %d", name, n, sw, d)
				}
			}
			// Hosts must live in their ToR's domain: the host access link
			// is never a cross-domain edge.
			for h, tor := range topo.HostToR {
				if p.HostDomain[h] != p.SwitchDomain[tor] {
					t.Fatalf("%s n=%d: host %d in domain %d but its ToR s%d in %d",
						name, n, h, p.HostDomain[h], tor, p.SwitchDomain[tor])
				}
			}
		}
	}
}

// Every cross-domain edge must carry at least the computed lookahead of
// propagation delay — the conservative window protocol depends on it.
func TestPartitionLookaheadBoundsCrossEdges(t *testing.T) {
	for name, topo := range partitionTopologies(t) {
		for _, n := range []int{2, 4} {
			p, err := NewPartition(topo, n)
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if p.N != n {
				t.Fatalf("%s: wanted %d domains, got %d", name, n, p.N)
			}
			if p.Lookahead <= 0 {
				t.Fatalf("%s n=%d: nonpositive lookahead %v", name, n, p.Lookahead)
			}
			if len(p.CrossLinks) == 0 {
				t.Fatalf("%s n=%d: no cross-domain links in a connected fabric", name, n)
			}
			for _, li := range p.CrossLinks {
				l := &topo.Links[li]
				if p.Domain(l.A) == p.Domain(l.B) {
					t.Fatalf("%s n=%d: link %d listed as cross-domain but both ends in domain %d",
						name, n, li, p.Domain(l.A))
				}
				if l.Delay < p.Lookahead {
					t.Fatalf("%s n=%d: cross link %d delay %v below lookahead %v",
						name, n, li, l.Delay, p.Lookahead)
				}
			}
			// And the complement: links not listed must be intra-domain.
			cross := make(map[int]bool, len(p.CrossLinks))
			for _, li := range p.CrossLinks {
				cross[li] = true
			}
			for i := range topo.Links {
				l := &topo.Links[i]
				if !cross[i] && p.Domain(l.A) != p.Domain(l.B) {
					t.Fatalf("%s n=%d: link %d crosses domains but is not in CrossLinks", name, n, i)
				}
			}
		}
	}
}

// Degenerate inputs degrade to a serial (N=1) partition instead of failing.
func TestPartitionDegradesToSerial(t *testing.T) {
	topo := partitionTopologies(t)["leafspine"]
	for _, n := range []int{0, 1, -3} {
		p, err := NewPartition(topo, n)
		if err != nil {
			t.Fatal(err)
		}
		if p.N != 1 {
			t.Fatalf("n=%d: expected serial degrade, got N=%d", n, p.N)
		}
	}
	// More requested domains than ToRs: clamp, don't fail.
	p, err := NewPartition(topo, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 8 {
		t.Fatalf("expected clamp to 8 ToR domains, got %d", p.N)
	}

	// Zero-latency cross-domain links leave no lookahead: serial degrade.
	flat, err := NewLeafSpine(LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err = NewPartition(flat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 1 {
		t.Fatalf("zero-delay fabric: expected serial degrade, got N=%d", p.N)
	}
}

// The fat-tree cut is per-pod: all edges and aggs of one pod share a domain
// when n divides the pod count.
func TestPartitionFatTreePods(t *testing.T) {
	topo := partitionTopologies(t)["fattree-k8"]
	k, half := 8, 4
	p, err := NewPartition(topo, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 4 {
		t.Fatalf("got N=%d", p.N)
	}
	numEdge := k * half
	for pod := 0; pod < k; pod++ {
		want := p.SwitchDomain[pod*half] // pod's first edge switch
		for e := 0; e < half; e++ {
			if d := p.SwitchDomain[pod*half+e]; d != want {
				t.Fatalf("pod %d edge %d in domain %d, pod anchor in %d", pod, e, d, want)
			}
			if d := p.SwitchDomain[numEdge+pod*half+e]; d != want {
				t.Fatalf("pod %d agg %d in domain %d, pod anchor in %d", pod, e, d, want)
			}
		}
	}
}
