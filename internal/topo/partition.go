package topo

import (
	"fmt"

	"vertigo/internal/units"
)

// Partition cuts a topology into n domains for sharded (conservative
// parallel) execution. The cut follows the access layer: ToR switches are
// grouped into contiguous equal-size blocks, each host is pinned to its
// ToR's domain, and every other switch joins the domain that owns the
// majority of its directly attached ToRs (ties and ToR-less switches fall
// back to round-robin by switch ID). On a fat-tree this yields per-pod
// domains with the core layer dealt round-robin; on a leaf-spine it yields
// per-leaf-group domains with spines dealt round-robin.
//
// Lookahead is the minimum one-way propagation delay over links whose
// endpoints land in different domains — the conservative window slack.
// A partition is only usable when that minimum is positive.
type Partition struct {
	N            int   // number of domains (1 = serial)
	SwitchDomain []int // domain of each switch
	HostDomain   []int // domain of each host
	// Lookahead is the minimum cross-domain link delay; zero when N == 1.
	Lookahead units.Time
	// CrossLinks indexes into Topology.Links: every link whose two ends
	// live in different domains.
	CrossLinks []int
}

// Domain returns the owning domain of a link endpoint.
func (p *Partition) Domain(e Endpoint) int {
	if e.Host {
		return p.HostDomain[e.Node]
	}
	return p.SwitchDomain[e.Node]
}

// NewPartition computes an n-way domain partition of t. It degrades rather
// than fails: when n <= 1, when the topology has fewer ToRs than n asks
// for, or when any cross-domain link has zero propagation delay (no
// lookahead, so conservative windows cannot advance), the returned
// partition has N == 1 and everything in domain 0. Callers treat N == 1 as
// "run serial".
func NewPartition(t *Topology, n int) (*Partition, error) {
	if t.NumHosts == 0 || len(t.HostToR) != t.NumHosts {
		return nil, fmt.Errorf("topo: partition of unfinalized topology %q", t.Name)
	}
	p := &Partition{
		N:            1,
		SwitchDomain: make([]int, t.NumSwitches),
		HostDomain:   make([]int, t.NumHosts),
	}
	if n <= 1 {
		return p, nil
	}

	// ToRs in first-seen order (ordered by host ID, which constructors lay
	// out contiguously per rack). Contiguous equal blocks of this order are
	// the domain seeds.
	isToR := make([]bool, t.NumSwitches)
	tors := make([]int, 0, t.NumSwitches)
	for _, tor := range t.HostToR {
		if !isToR[tor] {
			isToR[tor] = true
			tors = append(tors, tor)
		}
	}
	if n > len(tors) {
		n = len(tors)
	}
	if n <= 1 {
		return p, nil
	}

	for i := range p.SwitchDomain {
		p.SwitchDomain[i] = -1
	}
	// Equal contiguous blocks; the first (len(tors) % n) blocks get one
	// extra ToR so every domain is within 1 of the others.
	base, extra := len(tors)/n, len(tors)%n
	for i, off := 0, 0; i < n; i++ {
		sz := base
		if i < extra {
			sz++
		}
		for _, tor := range tors[off : off+sz] {
			p.SwitchDomain[tor] = i
		}
		off += sz
	}
	for h, tor := range t.HostToR {
		p.HostDomain[h] = p.SwitchDomain[tor]
	}

	// Non-ToR switches: majority vote over directly attached ToRs. An agg
	// switch inside a fat-tree pod touches only that pod's ToRs, so the vote
	// is unanimous; cores and spines touch every domain equally and fall to
	// the round-robin tie-break.
	votes := make([]int, n)
	for sw := 0; sw < t.NumSwitches; sw++ {
		if p.SwitchDomain[sw] >= 0 {
			continue
		}
		for i := range votes {
			votes[i] = 0
		}
		seen := false
		for _, peer := range t.PortPeer[sw] {
			if peer.Host || !isToR[peer.Node] {
				continue
			}
			votes[p.SwitchDomain[peer.Node]]++
			seen = true
		}
		best, tied := 0, true
		if seen {
			for i := 1; i < n; i++ {
				if votes[i] > votes[best] {
					best, tied = i, false
				} else if votes[i] < votes[best] {
					tied = false
				}
			}
		}
		if !seen || tied {
			best = sw % n
		}
		p.SwitchDomain[sw] = best
	}

	p.N = n
	// Cross-domain links and the lookahead they admit.
	for i := range t.Links {
		l := &t.Links[i]
		if p.Domain(l.A) == p.Domain(l.B) {
			continue
		}
		p.CrossLinks = append(p.CrossLinks, i)
		if l.Delay <= 0 {
			// A zero-latency cross-domain link leaves no conservative
			// slack: degrade to serial rather than deadlock the windows.
			return &Partition{
				N:            1,
				SwitchDomain: make([]int, t.NumSwitches),
				HostDomain:   make([]int, t.NumHosts),
			}, nil
		}
		if p.Lookahead == 0 || l.Delay < p.Lookahead {
			p.Lookahead = l.Delay
		}
	}
	if len(p.CrossLinks) == 0 {
		// Disconnected domains can run in lockstep windows of any width;
		// pick something harmless and nonzero.
		p.Lookahead = units.Time(1)
	}
	return p, nil
}
