package topo

import (
	"testing"
	"testing/quick"

	"vertigo/internal/units"
)

func TestPaperLeafSpineDimensions(t *testing.T) {
	tp, err := NewLeafSpine(PaperLeafSpine())
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 320 {
		t.Errorf("hosts = %d, want 320", tp.NumHosts)
	}
	if tp.NumSwitches != 12 {
		t.Errorf("switches = %d, want 12 (8 leaves + 4 spines)", tp.NumSwitches)
	}
	// Each leaf: 40 host ports + 4 uplinks; each spine: 8 downlinks.
	for leaf := 0; leaf < 8; leaf++ {
		if got := tp.Ports(leaf); got != 44 {
			t.Errorf("leaf %d has %d ports, want 44", leaf, got)
		}
		if got := len(tp.FabricPorts[leaf]); got != 4 {
			t.Errorf("leaf %d has %d fabric ports, want 4", leaf, got)
		}
	}
	for s := 8; s < 12; s++ {
		if got := tp.Ports(s); got != 8 {
			t.Errorf("spine %d has %d ports, want 8", s, got)
		}
	}
}

func TestPaperFatTreeDimensions(t *testing.T) {
	tp, err := NewFatTree(PaperFatTree())
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumHosts != 128 {
		t.Errorf("hosts = %d, want 128", tp.NumHosts)
	}
	if tp.NumSwitches != 80 {
		t.Errorf("switches = %d, want 80", tp.NumSwitches)
	}
	// Every switch in a k=8 fat-tree has k=8 ports.
	for sw := 0; sw < tp.NumSwitches; sw++ {
		if got := tp.Ports(sw); got != 8 {
			t.Errorf("switch %d has %d ports, want 8", sw, got)
		}
	}
}

func TestLeafSpineFIB(t *testing.T) {
	tp, err := NewLeafSpine(LeafSpineConfig{
		Spines: 2, Leaves: 3, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	for sw := 0; sw < tp.NumSwitches; sw++ {
		for dst := 0; dst < tp.NumHosts; dst++ {
			ports := tp.FIB[sw][dst]
			if len(ports) == 0 {
				t.Fatalf("no next hop from switch %d to host %d", sw, dst)
			}
			tor := tp.HostToR[dst]
			switch {
			case sw == tor:
				if len(ports) != 1 || tp.PortPeer[sw][ports[0]] != (Endpoint{Host: true, Node: dst}) {
					t.Fatalf("ToR %d FIB for local host %d is %v", sw, dst, ports)
				}
			case sw < 3: // other leaf: all uplinks
				if len(ports) != 2 {
					t.Fatalf("leaf %d to remote host %d: %d paths, want 2", sw, dst, len(ports))
				}
			default: // spine: single downlink toward dst's ToR
				if len(ports) != 1 {
					t.Fatalf("spine %d to host %d: %d paths, want 1", sw, dst, len(ports))
				}
			}
		}
	}
}

func TestLeafSpineDistances(t *testing.T) {
	tp, err := NewLeafSpine(PaperLeafSpine())
	if err != nil {
		t.Fatal(err)
	}
	// From a host's own ToR the path is 1 hop (ToR->host); from another
	// leaf it is 3 (leaf->spine->ToR->host).
	if d := tp.Dist[tp.HostToR[0]][0]; d != 1 {
		t.Errorf("ToR->local host distance %d, want 1", d)
	}
	otherLeaf := tp.HostToR[319]
	if d := tp.Dist[otherLeaf][0]; d != 3 {
		t.Errorf("remote leaf distance %d, want 3", d)
	}
}

func TestFatTreeFIBMultipath(t *testing.T) {
	tp, err := NewFatTree(FatTreeConfig{K: 4, Rate: 10 * units.Gbps, LinkDelay: 500})
	if err != nil {
		t.Fatal(err)
	}
	// k=4: 16 hosts, 20 switches. Edge switch to a host in another pod:
	// 2 upward choices.
	edge0 := tp.HostToR[0]
	lastHost := tp.NumHosts - 1
	if got := len(tp.FIB[edge0][lastHost]); got != 2 {
		t.Errorf("edge uplink choices = %d, want 2", got)
	}
	// Within-pod, different edge: still 2 choices (via the 2 aggs).
	inPodOther := 2 // host under edge 1, pod 0
	if tp.HostToR[inPodOther] == edge0 {
		t.Fatal("test setup: host 2 shares edge with host 0")
	}
	if got := len(tp.FIB[edge0][inPodOther]); got != 2 {
		t.Errorf("within-pod choices = %d, want 2", got)
	}
	// Distances: same edge 1, same pod 3, cross-pod 5.
	if d := tp.Dist[edge0][1]; d != 1 {
		t.Errorf("same-edge dist %d, want 1", d)
	}
	if d := tp.Dist[edge0][inPodOther]; d != 3 {
		t.Errorf("same-pod dist %d, want 3", d)
	}
	if d := tp.Dist[edge0][lastHost]; d != 5 {
		t.Errorf("cross-pod dist %d, want 5", d)
	}
}

func TestFatTreeRejectsOddK(t *testing.T) {
	if _, err := NewFatTree(FatTreeConfig{K: 5, Rate: units.Gbps}); err == nil {
		t.Fatal("odd k accepted")
	}
	if _, err := NewFatTree(FatTreeConfig{K: 0, Rate: units.Gbps}); err == nil {
		t.Fatal("zero k accepted")
	}
}

func TestLeafSpineRejectsBadConfig(t *testing.T) {
	if _, err := NewLeafSpine(LeafSpineConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

// Property: in any valid leaf-spine, every (switch,dst) has at least one
// next hop, and next-hop distances strictly decrease toward the host.
func TestPropertyFIBProgress(t *testing.T) {
	f := func(spinesRaw, leavesRaw, hostsRaw uint8) bool {
		cfg := LeafSpineConfig{
			Spines:       int(spinesRaw%4) + 1,
			Leaves:       int(leavesRaw%4) + 2,
			HostsPerLeaf: int(hostsRaw%4) + 1,
			HostRate:     10 * units.Gbps,
			FabricRate:   40 * units.Gbps,
			LinkDelay:    100,
		}
		tp, err := NewLeafSpine(cfg)
		if err != nil {
			return false
		}
		for sw := 0; sw < tp.NumSwitches; sw++ {
			for dst := 0; dst < tp.NumHosts; dst++ {
				ports := tp.FIB[sw][dst]
				if len(ports) == 0 {
					return false
				}
				for _, p := range ports {
					peer := tp.PortPeer[sw][p]
					if peer.Host {
						if peer.Node != dst {
							return false
						}
						continue
					}
					if tp.Dist[peer.Node][dst] != tp.Dist[sw][dst]-1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFinalizeRejectsHostHostLink(t *testing.T) {
	tp := &Topology{
		NumHosts:    2,
		NumSwitches: 1,
		Links: []Link{
			{A: Endpoint{Host: true, Node: 0}, B: Endpoint{Host: true, Node: 1}},
		},
	}
	if err := tp.Finalize(); err == nil {
		t.Fatal("host-host link accepted")
	}
}

func TestFinalizeRejectsDisconnectedHost(t *testing.T) {
	tp := &Topology{
		NumHosts:    2,
		NumSwitches: 1,
		Links: []Link{
			{A: Endpoint{Host: true, Node: 0}, B: Endpoint{Node: 0}},
		},
	}
	if err := tp.Finalize(); err == nil {
		t.Fatal("disconnected host accepted")
	}
}

func TestEndpointString(t *testing.T) {
	if (Endpoint{Host: true, Node: 3}).String() != "h3" {
		t.Error("host endpoint string")
	}
	if (Endpoint{Node: 2, Port: 5}).String() != "s2.p5" {
		t.Error("switch endpoint string")
	}
}
