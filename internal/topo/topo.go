// Package topo describes datacenter topologies as hosts, switches, ports and
// links, and computes the static shortest-path forwarding tables (FIBs) that
// the fabric pre-populates into every switch, matching the paper's assumption
// of pre-installed next-hop state (§3.2).
package topo

import (
	"fmt"

	"vertigo/internal/units"
)

// Endpoint names one side of a link: a port on a host or a switch.
// Hosts have exactly one port (their NIC), so Port is always 0 for hosts.
type Endpoint struct {
	Host bool
	Node int // host ID or switch ID
	Port int // port index on the node
}

func (e Endpoint) String() string {
	if e.Host {
		return fmt.Sprintf("h%d", e.Node)
	}
	return fmt.Sprintf("s%d.p%d", e.Node, e.Port)
}

// Link is a full-duplex cable between two endpoints.
type Link struct {
	A, B  Endpoint
	Rate  units.BitRate
	Delay units.Time // one-way propagation delay
}

// Topology is an immutable description of a network. Build one with
// NewLeafSpine or NewFatTree (or assemble Links by hand and call Finalize).
type Topology struct {
	Name        string
	NumHosts    int
	NumSwitches int
	Links       []Link

	// Derived by Finalize:

	// PortPeer[sw][port] is the endpoint at the far side of each switch port.
	PortPeer [][]Endpoint
	// PortLink[sw][port] indexes into Links for rate/delay lookup.
	PortLink [][]int
	// HostPeer[h] is the switch endpoint the host NIC connects to.
	HostPeer []Endpoint
	// HostLink[h] indexes into Links for the host's access link.
	HostLink []int
	// HostToR[h] is the switch directly attached to host h.
	HostToR []int
	// FIB[sw][dst] lists the output ports on shortest paths from sw to host dst.
	FIB [][][]int
	// FabricPorts[sw] lists ports whose peer is another switch (the
	// deflection candidate set, host-destination ports excluded).
	FabricPorts [][]int
	// Dist[sw][dst] is the shortest-path hop count (switch hops) to host dst.
	Dist [][]int
}

// Ports returns the number of ports on switch sw.
func (t *Topology) Ports(sw int) int { return len(t.PortPeer[sw]) }

// Finalize assigns port numbers from the link list and computes FIBs.
// Constructors call it; call it yourself only for hand-built topologies.
func (t *Topology) Finalize() error {
	if t.NumHosts == 0 || t.NumSwitches == 0 {
		return fmt.Errorf("topo: %s has no hosts or no switches", t.Name)
	}
	t.PortPeer = make([][]Endpoint, t.NumSwitches)
	t.PortLink = make([][]int, t.NumSwitches)
	t.HostPeer = make([]Endpoint, t.NumHosts)
	t.HostLink = make([]int, t.NumHosts)
	t.HostToR = make([]int, t.NumHosts)
	for i := range t.HostLink {
		t.HostLink[i] = -1
	}

	// Counting pass: per-switch port counts, so every per-switch slice below
	// is an exact-capacity window into one backing array instead of a
	// separately grown allocation (large fat-trees have tens of thousands of
	// ports; growing each list by doubling would dominate build time).
	nport := make([]int, t.NumSwitches)
	for i := range t.Links {
		l := &t.Links[i]
		switch {
		case l.A.Host && l.B.Host:
			// reported with context by the main loop below
		case l.A.Host:
			nport[l.B.Node]++
		case l.B.Host:
			nport[l.A.Node]++
		default:
			nport[l.A.Node]++
			nport[l.B.Node]++
		}
	}
	totalPorts := 0
	for _, n := range nport {
		totalPorts += n
	}
	peerBack := make([]Endpoint, totalPorts)
	linkBack := make([]int, totalPorts)
	for sw, off := 0, 0; sw < t.NumSwitches; sw++ {
		end := off + nport[sw]
		t.PortPeer[sw] = peerBack[off:off:end]
		t.PortLink[sw] = linkBack[off:off:end]
		off = end
	}

	addSwitchPort := func(sw int, peer Endpoint, link int) int {
		t.PortPeer[sw] = append(t.PortPeer[sw], peer)
		t.PortLink[sw] = append(t.PortLink[sw], link)
		return len(t.PortPeer[sw]) - 1
	}

	for i := range t.Links {
		l := &t.Links[i]
		switch {
		case l.A.Host && l.B.Host:
			return fmt.Errorf("topo: link %d connects two hosts", i)
		case l.A.Host:
			l.B.Port = addSwitchPort(l.B.Node, l.A, i)
			if t.HostLink[l.A.Node] != -1 {
				return fmt.Errorf("topo: host %d has multiple links", l.A.Node)
			}
			t.HostPeer[l.A.Node] = l.B
			t.HostLink[l.A.Node] = i
			t.HostToR[l.A.Node] = l.B.Node
		case l.B.Host:
			l.A.Port = addSwitchPort(l.A.Node, l.B, i)
			if t.HostLink[l.B.Node] != -1 {
				return fmt.Errorf("topo: host %d has multiple links", l.B.Node)
			}
			t.HostPeer[l.B.Node] = l.A
			t.HostLink[l.B.Node] = i
			t.HostToR[l.B.Node] = l.A.Node
		default:
			// Switch-to-switch: assign both ports, then patch peers to carry
			// the assigned port numbers.
			pa := addSwitchPort(l.A.Node, l.B, i)
			pb := addSwitchPort(l.B.Node, l.A, i)
			l.A.Port, l.B.Port = pa, pb
			t.PortPeer[l.A.Node][pa] = Endpoint{Node: l.B.Node, Port: pb}
			t.PortPeer[l.B.Node][pb] = Endpoint{Node: l.A.Node, Port: pa}
		}
	}
	for h, li := range t.HostLink {
		if li == -1 {
			return fmt.Errorf("topo: host %d is not connected", h)
		}
	}

	t.FabricPorts = make([][]int, t.NumSwitches)
	nFabric := 0
	for sw := range t.PortPeer {
		for _, peer := range t.PortPeer[sw] {
			if !peer.Host {
				nFabric++
			}
		}
	}
	fabricBack := make([]int, 0, nFabric)
	for sw := range t.PortPeer {
		start := len(fabricBack)
		for p, peer := range t.PortPeer[sw] {
			if !peer.Host {
				fabricBack = append(fabricBack, p)
			}
		}
		if len(fabricBack) > start {
			t.FabricPorts[sw] = fabricBack[start:len(fabricBack):len(fabricBack)]
		}
	}

	t.buildFIB()
	return nil
}

// buildFIB runs a reverse BFS from every destination host across the switch
// graph and records, per switch, every port that lies on a shortest path.
func (t *Topology) buildFIB() {
	t.FIB, t.Dist = t.fibAndDist(nil)
}

// FIBExcluding recomputes the shortest-path forwarding tables over the
// subgraph that omits every link for which dead reports true — the table a
// converged control plane would install after routing around failures. The
// receiver is not modified; install the result with fabric.Network.InstallFIB.
// Destinations whose every path crosses a dead link get empty entries
// (traffic to them is unroutable until the links recover). A nil dead is
// equivalent to the full topology.
func (t *Topology) FIBExcluding(dead func(link int) bool) [][][]int {
	fib, _ := t.fibAndDist(dead)
	return fib
}

// fibAndDist computes the FIB and hop-distance tables, skipping links for
// which dead reports true (nil = keep all).
//
// The build is allocation-lean: every per-switch slice is an exact-capacity
// window into a shared backing array sized by a counting pass, and each
// destination's next-hop port lists are packed into one arena. A k-ary
// fat-tree FIB has NumSwitches x NumHosts entries averaging k/2 ports each;
// growing each entry individually is what used to dominate large-topology
// construction.
func (t *Topology) fibAndDist(dead func(link int) bool) ([][][]int, [][]int) {
	fibT := make([][][]int, t.NumSwitches)
	distT := make([][]int, t.NumSwitches)
	fibRows := make([][]int, t.NumSwitches*t.NumHosts)
	distBack := make([]int, t.NumSwitches*t.NumHosts)
	for sw := range fibT {
		lo, hi := sw*t.NumHosts, (sw+1)*t.NumHosts
		fibT[sw] = fibRows[lo:hi:hi]
		distT[sw] = distBack[lo:hi:hi]
	}

	// Switch adjacency: neighbor switch -> connecting ports, dead links
	// filtered out up front, packed into one backing array.
	type adj struct{ sw, port int }
	nAdj := 0
	for sw := range t.PortPeer {
		for p, peer := range t.PortPeer[sw] {
			if peer.Host || (dead != nil && dead(t.PortLink[sw][p])) {
				continue
			}
			nAdj++
		}
	}
	adjBack := make([]adj, 0, nAdj)
	neighbors := make([][]adj, t.NumSwitches)
	for sw := range t.PortPeer {
		start := len(adjBack)
		for p, peer := range t.PortPeer[sw] {
			if peer.Host || (dead != nil && dead(t.PortLink[sw][p])) {
				continue
			}
			adjBack = append(adjBack, adj{peer.Node, p})
		}
		neighbors[sw] = adjBack[start:len(adjBack):len(adjBack)]
	}

	dist := make([]int, t.NumSwitches)
	queue := make([]int, 0, t.NumSwitches)
	lastTor, prevDst := -1, -1
	for dst := 0; dst < t.NumHosts; dst++ {
		if dead != nil && dead(t.HostLink[dst]) {
			// The destination's access link is dead: no switch can reach it.
			continue
		}
		tor := t.HostToR[dst]
		if tor == lastTor {
			// Same ToR as the previously built destination: the BFS — and
			// therefore the distance column and every non-ToR next-hop list —
			// is identical. Alias the previous column (FIB entries are
			// read-only) and rebuild only the ToR's own entry, which names
			// this host's access port. With k/2 hosts per fat-tree edge
			// switch this skips all but one BFS per ToR and shares the
			// dominant share of FIB memory.
			for sw := 0; sw < t.NumSwitches; sw++ {
				distT[sw][dst] = distT[sw][prevDst]
				fibT[sw][dst] = fibT[sw][prevDst]
			}
			fibT[tor][dst] = []int{t.HostPeer[dst].Port}
			prevDst = dst
			continue
		}
		for i := range dist {
			dist[i] = -1
		}
		dist[tor] = 0
		queue = append(queue[:0], tor)
		for len(queue) > 0 {
			sw := queue[0]
			queue = queue[1:]
			for _, n := range neighbors[sw] {
				if dist[n.sw] == -1 {
					dist[n.sw] = dist[sw] + 1
					queue = append(queue, n.sw)
				}
			}
		}
		// Counting pass, then pack this destination's port lists into one
		// arena; each FIB entry is an exact window into it.
		need := 1 // the ToR's host port
		for sw := 0; sw < t.NumSwitches; sw++ {
			if sw == tor {
				continue
			}
			for _, n := range neighbors[sw] {
				if dist[n.sw] >= 0 && dist[n.sw] == dist[sw]-1 {
					need++
				}
			}
		}
		back := make([]int, 0, need)
		for sw := 0; sw < t.NumSwitches; sw++ {
			distT[sw][dst] = dist[sw] + 1 // +1 for the final host hop
			start := len(back)
			if sw == tor {
				back = append(back, t.HostPeer[dst].Port)
			} else {
				for _, n := range neighbors[sw] {
					if dist[n.sw] >= 0 && dist[n.sw] == dist[sw]-1 {
						back = append(back, n.port)
					}
				}
			}
			if len(back) > start {
				fibT[sw][dst] = back[start:len(back):len(back)]
			}
		}
		lastTor, prevDst = tor, dst
	}
	return fibT, distT
}
