package topo

import (
	"fmt"

	"vertigo/internal/units"
)

// FatTreeConfig parameterizes a canonical k-ary fat-tree (Al-Fares et al.):
// k pods, each with k/2 edge and k/2 aggregation switches; (k/2)^2 core
// switches; k/2 hosts per edge switch; all links at the same rate. The paper
// validates on k=8 (128 servers, 80 switches, 10 Gb/s links).
type FatTreeConfig struct {
	K         int // must be even, >= 2
	Rate      units.BitRate
	LinkDelay units.Time
}

// PaperFatTree returns the paper's fat-tree validation parameters.
func PaperFatTree() FatTreeConfig {
	return FatTreeConfig{K: 8, Rate: 10 * units.Gbps, LinkDelay: 500 * units.Nanosecond}
}

// NewFatTree builds and finalizes a k-ary fat-tree.
//
// Switch IDs: edges first (pod-major: pod p edge e is p*(k/2)+e), then
// aggregations (same pod-major layout), then cores. Host IDs follow the edge
// layout: host h sits under edge h/(k/2).
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	k := cfg.K
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree k must be even and >= 2, got %d", k)
	}
	half := k / 2
	numEdge := k * half
	numAgg := k * half
	numCore := half * half
	t := &Topology{
		Name:        fmt.Sprintf("fattree-k%d", k),
		NumHosts:    k * half * half,
		NumSwitches: numEdge + numAgg + numCore,
	}
	// Exact link count: one access link per host, plus the per-pod edge-agg
	// bipartite and the agg-core fan-out, each k*(k/2)^2.
	t.Links = make([]Link, 0, t.NumHosts+2*k*half*half)
	edgeID := func(pod, i int) int { return pod*half + i }
	aggID := func(pod, i int) int { return numEdge + pod*half + i }
	coreID := func(i int) int { return numEdge + numAgg + i }

	// Hosts to edge switches.
	for h := 0; h < t.NumHosts; h++ {
		t.Links = append(t.Links, Link{
			A:     Endpoint{Host: true, Node: h},
			B:     Endpoint{Node: h / half},
			Rate:  cfg.Rate,
			Delay: cfg.LinkDelay,
		})
	}
	// Edge to aggregation within each pod (full bipartite per pod).
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				t.Links = append(t.Links, Link{
					A:     Endpoint{Node: edgeID(pod, e)},
					B:     Endpoint{Node: aggID(pod, a)},
					Rate:  cfg.Rate,
					Delay: cfg.LinkDelay,
				})
			}
		}
	}
	// Aggregation to core: agg i of every pod connects to cores
	// i*half .. i*half+half-1.
	for pod := 0; pod < k; pod++ {
		for a := 0; a < half; a++ {
			for c := 0; c < half; c++ {
				t.Links = append(t.Links, Link{
					A:     Endpoint{Node: aggID(pod, a)},
					B:     Endpoint{Node: coreID(a*half + c)},
					Rate:  cfg.Rate,
					Delay: cfg.LinkDelay,
				})
			}
		}
	}
	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}
