package topo

import (
	"fmt"

	"vertigo/internal/units"
)

// LeafSpineConfig parameterizes a two-tier leaf-spine fabric: every leaf
// (ToR) switch connects to every spine (core) switch, and hosts hang off the
// leaves. The paper's large-scale topology is 4 spines, 8 leaves, 40 hosts
// per leaf (320 servers), 10 Gb/s host links and 40 Gb/s fabric links with
// 300 KB per-port buffers (§4.1).
type LeafSpineConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	HostRate     units.BitRate
	FabricRate   units.BitRate
	LinkDelay    units.Time
}

// PaperLeafSpine returns the paper's evaluation topology parameters.
func PaperLeafSpine() LeafSpineConfig {
	return LeafSpineConfig{
		Spines:       4,
		Leaves:       8,
		HostsPerLeaf: 40,
		HostRate:     10 * units.Gbps,
		FabricRate:   40 * units.Gbps,
		LinkDelay:    500 * units.Nanosecond,
	}
}

// NewLeafSpine builds and finalizes a leaf-spine topology.
// Switch IDs: leaves are 0..Leaves-1, spines follow.
func NewLeafSpine(cfg LeafSpineConfig) (*Topology, error) {
	if cfg.Spines <= 0 || cfg.Leaves <= 0 || cfg.HostsPerLeaf <= 0 {
		return nil, fmt.Errorf("topo: invalid leaf-spine config %+v", cfg)
	}
	t := &Topology{
		Name:        fmt.Sprintf("leafspine-%dx%dx%d", cfg.Spines, cfg.Leaves, cfg.HostsPerLeaf),
		NumHosts:    cfg.Leaves * cfg.HostsPerLeaf,
		NumSwitches: cfg.Leaves + cfg.Spines,
	}
	t.Links = make([]Link, 0, t.NumHosts+cfg.Leaves*cfg.Spines)
	// Host access links.
	for h := 0; h < t.NumHosts; h++ {
		leaf := h / cfg.HostsPerLeaf
		t.Links = append(t.Links, Link{
			A:     Endpoint{Host: true, Node: h},
			B:     Endpoint{Node: leaf},
			Rate:  cfg.HostRate,
			Delay: cfg.LinkDelay,
		})
	}
	// Full bipartite leaf-spine mesh.
	for leaf := 0; leaf < cfg.Leaves; leaf++ {
		for s := 0; s < cfg.Spines; s++ {
			t.Links = append(t.Links, Link{
				A:     Endpoint{Node: leaf},
				B:     Endpoint{Node: cfg.Leaves + s},
				Rate:  cfg.FabricRate,
				Delay: cfg.LinkDelay,
			})
		}
	}
	if err := t.Finalize(); err != nil {
		return nil, err
	}
	return t, nil
}
