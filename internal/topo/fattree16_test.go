package topo

import (
	"testing"

	"vertigo/internal/units"
)

// k16 builds the scale=huge fat-tree (1024 hosts, 320 switches) once per
// test binary; the allocation-lean Finalize makes this cheap enough to
// rebuild per test, but sharing keeps the suite snappy.
func k16(t *testing.T) *Topology {
	t.Helper()
	tp, err := NewFatTree(FatTreeConfig{K: 16, Rate: 10 * units.Gbps, LinkDelay: 500})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFatTreeK16Dimensions(t *testing.T) {
	tp := k16(t)
	if tp.NumHosts != 1024 {
		t.Errorf("hosts = %d, want 1024", tp.NumHosts)
	}
	// 128 edge + 128 aggregation + 64 core.
	if tp.NumSwitches != 320 {
		t.Errorf("switches = %d, want 320", tp.NumSwitches)
	}
	if got, want := len(tp.Links), 1024+2*1024; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	// Every switch in a k-ary fat-tree has exactly k ports; edges split
	// them half hosts / half fabric, aggs and cores are all-fabric.
	for sw := 0; sw < tp.NumSwitches; sw++ {
		if got := tp.Ports(sw); got != 16 {
			t.Fatalf("switch %d has %d ports, want 16", sw, got)
		}
		wantFabric := 16
		if sw < 128 { // edge
			wantFabric = 8
		}
		if got := len(tp.FabricPorts[sw]); got != wantFabric {
			t.Fatalf("switch %d has %d fabric ports, want %d", sw, got, wantFabric)
		}
	}
	// Hosts pack under edges in ID order, k/2 = 8 per edge.
	for h := 0; h < tp.NumHosts; h++ {
		if tp.HostToR[h] != h/8 {
			t.Fatalf("host %d ToR = %d, want %d", h, tp.HostToR[h], h/8)
		}
	}
}

func TestFatTreeK16FIBMultipath(t *testing.T) {
	tp := k16(t)
	edge0 := tp.HostToR[0]
	lastHost := tp.NumHosts - 1 // in the last pod
	inPodOther := 8             // under edge 1, pod 0

	// Edge to any non-local host: k/2 = 8 equal-cost uplinks, whether the
	// destination is in-pod (via the 8 aggs) or cross-pod.
	if got := len(tp.FIB[edge0][inPodOther]); got != 8 {
		t.Errorf("edge within-pod choices = %d, want 8", got)
	}
	if got := len(tp.FIB[edge0][lastHost]); got != 8 {
		t.Errorf("edge cross-pod choices = %d, want 8", got)
	}
	// Aggregation to a cross-pod host: all 8 core uplinks are shortest.
	agg0 := 128
	if got := len(tp.FIB[agg0][lastHost]); got != 8 {
		t.Errorf("agg cross-pod choices = %d, want 8", got)
	}
	// Core to any host: a single downlink (the destination pod's agg).
	for c := 256; c < 320; c++ {
		if got := len(tp.FIB[c][lastHost]); got != 1 {
			t.Fatalf("core %d choices = %d, want 1", c, got)
		}
	}
	// Hop distances: same edge 1, same pod 3, cross-pod 5.
	if d := tp.Dist[edge0][1]; d != 1 {
		t.Errorf("same-edge dist %d, want 1", d)
	}
	if d := tp.Dist[edge0][inPodOther]; d != 3 {
		t.Errorf("same-pod dist %d, want 3", d)
	}
	if d := tp.Dist[edge0][lastHost]; d != 5 {
		t.Errorf("cross-pod dist %d, want 5", d)
	}
}

// TestFatTreeK16FIBProgress is the leaf-spine FIB-progress property on the
// k=16 fat-tree: every (switch, dst) entry is non-empty and every listed
// port steps strictly closer to the destination. This sweeps all 320x1024
// entries, covering the same-ToR column aliasing in fibAndDist.
func TestFatTreeK16FIBProgress(t *testing.T) {
	tp := k16(t)
	for sw := 0; sw < tp.NumSwitches; sw++ {
		for dst := 0; dst < tp.NumHosts; dst++ {
			ports := tp.FIB[sw][dst]
			if len(ports) == 0 {
				t.Fatalf("no next hop from switch %d to host %d", sw, dst)
			}
			for _, p := range ports {
				peer := tp.PortPeer[sw][p]
				if peer.Host {
					if peer.Node != dst {
						t.Fatalf("switch %d FIB for host %d exits to host %d", sw, dst, peer.Node)
					}
					continue
				}
				if tp.Dist[peer.Node][dst] != tp.Dist[sw][dst]-1 {
					t.Fatalf("switch %d port %d to host %d does not make progress", sw, p, dst)
				}
			}
		}
	}
}

// TestFatTreeK16SameToRAliasing pins the FIB-build sharing contract: hosts
// under one edge switch have identical distance columns and share non-ToR
// FIB entries (the build aliases the previous host's backing arrays), while
// the ToR's own entry names each host's distinct access port.
func TestFatTreeK16SameToRAliasing(t *testing.T) {
	tp := k16(t)
	h0, h1 := 0, 1 // both under edge 0
	tor := tp.HostToR[h0]
	if tp.HostToR[h1] != tor {
		t.Fatal("test setup: hosts 0 and 1 do not share an edge")
	}
	for sw := 0; sw < tp.NumSwitches; sw++ {
		if tp.Dist[sw][h0] != tp.Dist[sw][h1] {
			t.Fatalf("switch %d: dist to h0 %d != dist to h1 %d",
				sw, tp.Dist[sw][h0], tp.Dist[sw][h1])
		}
		if sw == tor {
			continue
		}
		a, b := tp.FIB[sw][h0], tp.FIB[sw][h1]
		if len(a) == 0 || len(a) != len(b) || &a[0] != &b[0] {
			t.Fatalf("switch %d: non-ToR FIB entries for same-ToR hosts not aliased", sw)
		}
	}
	e0, e1 := tp.FIB[tor][h0], tp.FIB[tor][h1]
	if len(e0) != 1 || len(e1) != 1 || e0[0] == e1[0] {
		t.Fatalf("ToR entries %v / %v: want distinct single access ports", e0, e1)
	}
	if tp.PortPeer[tor][e0[0]] != (Endpoint{Host: true, Node: h0}) {
		t.Fatalf("ToR entry for h0 exits to %v", tp.PortPeer[tor][e0[0]])
	}
}
