package faults

import (
	"vertigo/internal/fabric"
	"vertigo/internal/obs"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// Process-global fault-injection metrics. The fabric accounts the resulting
// dataplane transitions (vertigo_fault_events_total, TTR); these count the
// injector's own activity so a scrape distinguishes scheduled faults from
// their fan-out.
var (
	obsInjected = obs.NewCounter("vertigo_faults_injected_total", "schedule events applied by injectors")
	obsHeals    = obs.NewCounter("vertigo_faults_heals_total", "control-plane heal recomputations installed")
)

// Injector replays a Schedule into a fabric and, when healing is enabled,
// models the control plane: after each topology-changing event it waits
// HealDelay (routing-protocol convergence) and then installs freshly
// computed FIBs that route around everything currently failed. A HealDelay
// of zero disables healing — the static FIBs stay installed and only
// dataplane mechanisms (deflection) route around failures.
type Injector struct {
	eng       *sim.Engine
	net       *fabric.Network
	healDelay units.Time

	// Current fault state, maintained as events fire. Healing consults these
	// sets, so a heal scheduled before a recovery but firing after it sees
	// the recovered topology (as a real control plane would).
	deadLinks    map[int]bool
	deadSwitches map[int]bool
}

// Apply validates sched against the fabric's topology, schedules every event
// on the engine, and returns the injector. healDelay <= 0 disables
// control-plane healing. Call before eng.Run; events beyond the run horizon
// simply never fire.
func Apply(eng *sim.Engine, net *fabric.Network, sched *Schedule, healDelay units.Time) (*Injector, error) {
	t := net.Topo
	if err := sched.Validate(len(t.Links), t.NumSwitches, 0); err != nil {
		return nil, err
	}
	inj := &Injector{
		eng:          eng,
		net:          net,
		healDelay:    healDelay,
		deadLinks:    make(map[int]bool),
		deadSwitches: make(map[int]bool),
	}
	if sched != nil {
		for _, ev := range sched.Events {
			ev := ev
			eng.At(ev.At, func() { inj.fire(ev) })
		}
	}
	return inj, nil
}

// fire applies one event to the fabric (on the simulator thread).
func (inj *Injector) fire(ev Event) {
	obsInjected.Inc()
	switch ev.Kind {
	case LinkDown:
		inj.deadLinks[ev.Link] = true
		inj.net.SetLinkState(ev.Link, false)
		inj.scheduleHeal()
	case LinkUp:
		delete(inj.deadLinks, ev.Link)
		inj.net.SetLinkState(ev.Link, true)
		inj.scheduleHeal()
	case SwitchDown:
		inj.deadSwitches[ev.Switch] = true
		inj.net.SetSwitchState(ev.Switch, false)
		inj.scheduleHeal()
	case SwitchUp:
		delete(inj.deadSwitches, ev.Switch)
		inj.net.SetSwitchState(ev.Switch, true)
		inj.scheduleHeal()
	case Corrupt:
		inj.net.SetLinkBER(ev.Link, ev.BER)
	case Degrade:
		inj.net.SetLinkRateFactor(ev.Link, ev.Factor)
	}
}

// scheduleHeal queues a FIB recomputation healDelay from now. Each topology
// event schedules its own heal; later heals supersede earlier ones simply by
// installing over them.
func (inj *Injector) scheduleHeal() {
	if inj.healDelay <= 0 {
		return
	}
	inj.eng.After(inj.healDelay, inj.heal)
}

// heal recomputes the FIBs over the currently-alive topology and installs
// them fabric-wide. With no standing faults the pristine tables go back in
// (no recompute needed).
func (inj *Injector) heal() {
	obsHeals.Inc()
	t := inj.net.Topo
	if len(inj.deadLinks) == 0 && len(inj.deadSwitches) == 0 {
		inj.net.InstallFIB(t.FIB)
		return
	}
	dead := func(li int) bool {
		if inj.deadLinks[li] {
			return true
		}
		l := t.Links[li]
		if !l.A.Host && inj.deadSwitches[l.A.Node] {
			return true
		}
		if !l.B.Host && inj.deadSwitches[l.B.Node] {
			return true
		}
		return false
	}
	inj.net.InstallFIB(t.FIBExcluding(dead))
}

// FailedLinks returns how many links the injector currently considers down
// (explicit link faults only, not links attached to failed switches).
func (inj *Injector) FailedLinks() int { return len(inj.deadLinks) }

// FailedSwitches returns how many switches are currently down.
func (inj *Injector) FailedSwitches() int { return len(inj.deadSwitches) }
