// Package faults is the deterministic fault-schedule engine: a Schedule is
// an ordered list of timed events — transient link down/up (flaps),
// whole-switch failure and recovery, per-link bit-error corruption, and link
// rate brownouts — that an Injector replays into a running fabric. All
// injection happens on the simulator thread from engine events, so identical
// (seed, schedule) pairs reproduce byte-identical runs.
//
// Schedules are written programmatically (Event literals, Flap) or parsed
// from the compact text form used by the -fault CLI flag:
//
//	down@10ms:link=5; up@14ms:link=5
//	flap@5ms:link=5,down=1ms,period=4ms,count=3
//	swdown@10ms:sw=2; swup@20ms:sw=2
//	corrupt@0s:link=5,ber=1e-3
//	degrade@10ms:link=5,factor=0.25; degrade@20ms:link=5,factor=1
//
// Events are semicolon-separated; each is kind@time[:key=value,...]. Times
// use Go duration syntax. Same-timestamp events apply in schedule order.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vertigo/internal/units"
)

// Kind is a fault-event type.
type Kind int

// Fault-event kinds.
const (
	// LinkDown fails both directions of a link (carrier loss).
	LinkDown Kind = iota
	// LinkUp restores a failed link.
	LinkUp
	// SwitchDown fails a whole switch: every attached link loses carrier and
	// packets already on the wire toward it are discarded on arrival.
	SwitchDown
	// SwitchUp recovers a failed switch and every attached link.
	SwitchUp
	// Corrupt sets a link's bit-error rate: each packet serialized onto the
	// link is dropped with probability BER. BER zero clears the fault.
	Corrupt
	// Degrade scales a link's rate by Factor (a brownout); Factor 1 restores
	// full speed.
	Degrade
)

func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "down"
	case LinkUp:
		return "up"
	case SwitchDown:
		return "swdown"
	case SwitchUp:
		return "swup"
	case Corrupt:
		return "corrupt"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault transition.
type Event struct {
	At     units.Time `json:"at_ns"`
	Kind   Kind       `json:"kind"`
	Link   int        `json:"link,omitempty"`   // LinkDown/LinkUp/Corrupt/Degrade
	Switch int        `json:"switch,omitempty"` // SwitchDown/SwitchUp
	BER    float64    `json:"ber,omitempty"`    // Corrupt
	Factor float64    `json:"factor,omitempty"` // Degrade
}

func (e Event) String() string {
	s := fmt.Sprintf("%s@%v", e.Kind, e.At.Duration())
	switch e.Kind {
	case SwitchDown, SwitchUp:
		s += fmt.Sprintf(":sw=%d", e.Switch)
	case Corrupt:
		s += fmt.Sprintf(":link=%d,ber=%g", e.Link, e.BER)
	case Degrade:
		s += fmt.Sprintf(":link=%d,factor=%g", e.Link, e.Factor)
	default:
		s += fmt.Sprintf(":link=%d", e.Link)
	}
	return s
}

// Schedule is an ordered fault program. Order matters only between events
// sharing a timestamp (they apply in slice order); otherwise events fire at
// their own times.
type Schedule struct {
	Events []Event `json:"events"`
}

// Add appends events and returns the schedule for chaining.
func (s *Schedule) Add(evs ...Event) *Schedule {
	s.Events = append(s.Events, evs...)
	return s
}

// Empty reports whether the schedule has no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// String renders the schedule in the Parse syntax (round-trippable).
func (s *Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Flap expands a link flap into alternating down/up events: count cycles
// starting at start, each holding the link down for downFor out of every
// period.
func Flap(link int, start, downFor, period units.Time, count int) []Event {
	evs := make([]Event, 0, 2*count)
	for i := 0; i < count; i++ {
		at := start + units.Time(i)*period
		evs = append(evs,
			Event{At: at, Kind: LinkDown, Link: link},
			Event{At: at + downFor, Kind: LinkUp, Link: link},
		)
	}
	return evs
}

// Validate checks every event against the deployment bounds: numLinks and
// numSwitches cap the index ranges (negative skips that check, for
// validation before the topology is built), and simTime caps event times
// (non-positive skips). Errors name the offending event.
func (s *Schedule) Validate(numLinks, numSwitches int, simTime units.Time) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("faults: event %d (%s) at negative time", i, e)
		}
		if simTime > 0 && e.At > simTime {
			return fmt.Errorf("faults: event %d (%s) fires after the %v simulation end", i, e, simTime)
		}
		switch e.Kind {
		case LinkDown, LinkUp, Corrupt, Degrade:
			if e.Link < 0 || (numLinks >= 0 && e.Link >= numLinks) {
				return fmt.Errorf("faults: event %d (%s) link %d out of range [0,%d)", i, e, e.Link, numLinks)
			}
		case SwitchDown, SwitchUp:
			if e.Switch < 0 || (numSwitches >= 0 && e.Switch >= numSwitches) {
				return fmt.Errorf("faults: event %d (%s) switch %d out of range [0,%d)", i, e, e.Switch, numSwitches)
			}
		default:
			return fmt.Errorf("faults: event %d has unknown kind %d", i, int(e.Kind))
		}
		if e.Kind == Corrupt && (e.BER < 0 || e.BER > 1) {
			return fmt.Errorf("faults: event %d (%s) bit-error rate %g outside [0,1]", i, e, e.BER)
		}
		if e.Kind == Degrade && e.Factor <= 0 {
			return fmt.Errorf("faults: event %d (%s) rate factor %g must be positive", i, e, e.Factor)
		}
	}
	return nil
}

// Parse reads the compact schedule syntax (see the package comment). Flap
// events expand into their down/up pairs, so the returned schedule contains
// only primitive transitions.
func Parse(src string) (*Schedule, error) {
	sched := &Schedule{}
	for _, item := range strings.Split(src, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("faults: event %q missing @time", item)
		}
		timeStr, argStr, _ := strings.Cut(rest, ":")
		at, err := parseTime(timeStr)
		if err != nil {
			return nil, fmt.Errorf("faults: event %q: %w", item, err)
		}
		args, err := parseArgs(argStr)
		if err != nil {
			return nil, fmt.Errorf("faults: event %q: %w", item, err)
		}
		switch kindStr {
		case "down", "up":
			link, err := args.intArg("link")
			if err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", item, err)
			}
			kind := LinkDown
			if kindStr == "up" {
				kind = LinkUp
			}
			sched.Add(Event{At: at, Kind: kind, Link: link})
		case "swdown", "swup":
			sw, err := args.intArg("sw")
			if err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", item, err)
			}
			kind := SwitchDown
			if kindStr == "swup" {
				kind = SwitchUp
			}
			sched.Add(Event{At: at, Kind: kind, Switch: sw})
		case "corrupt":
			link, err1 := args.intArg("link")
			ber, err2 := args.floatArg("ber")
			if err := firstErr(err1, err2); err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", item, err)
			}
			sched.Add(Event{At: at, Kind: Corrupt, Link: link, BER: ber})
		case "degrade":
			link, err1 := args.intArg("link")
			factor, err2 := args.floatArg("factor")
			if err := firstErr(err1, err2); err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", item, err)
			}
			sched.Add(Event{At: at, Kind: Degrade, Link: link, Factor: factor})
		case "flap":
			link, err1 := args.intArg("link")
			downFor, err2 := args.durArg("down")
			period, err3 := args.durArg("period")
			count, err4 := args.intArg("count")
			if err := firstErr(err1, err2, err3, err4); err != nil {
				return nil, fmt.Errorf("faults: event %q: %w", item, err)
			}
			if downFor <= 0 || period <= downFor || count < 1 {
				return nil, fmt.Errorf("faults: event %q needs 0 < down < period and count >= 1", item)
			}
			sched.Add(Flap(link, at, downFor, period, count)...)
		default:
			return nil, fmt.Errorf("faults: event %q has unknown kind %q (down|up|swdown|swup|corrupt|degrade|flap)", item, kindStr)
		}
	}
	return sched, nil
}

type eventArgs map[string]string

func parseArgs(s string) (eventArgs, error) {
	args := eventArgs{}
	if s == "" {
		return args, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed argument %q (want key=value)", kv)
		}
		args[k] = v
	}
	return args, nil
}

func (a eventArgs) intArg(key string) (int, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", key, v, err)
	}
	return n, nil
}

func (a eventArgs) floatArg(key string) (float64, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %w", key, v, err)
	}
	return f, nil
}

func (a eventArgs) durArg(key string) (units.Time, error) {
	v, ok := a[key]
	if !ok {
		return 0, fmt.Errorf("missing %s=", key)
	}
	return parseTime(v)
}

func parseTime(s string) (units.Time, error) {
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("bad duration %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return units.FromDuration(d), nil
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
