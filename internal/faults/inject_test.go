package faults

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

func testFabric(t *testing.T) (*sim.Engine, *fabric.Network, *metrics.Collector) {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	return eng, fabric.New(eng, tp, met, fabric.DefaultConfig(fabric.ECMP)), met
}

func TestInjectorLifecycle(t *testing.T) {
	eng, net, met := testFabric(t)
	sched := (&Schedule{}).Add(
		Event{At: 10 * units.Microsecond, Kind: LinkDown, Link: 4},
		Event{At: 100 * units.Microsecond, Kind: LinkUp, Link: 4},
	)
	inj, err := Apply(eng, net, sched, 20*units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}

	eng.Run(50 * units.Microsecond)
	if !net.LinkDown(4) {
		t.Fatal("link 4 not down after LinkDown event")
	}
	if inj.FailedLinks() != 1 {
		t.Fatalf("FailedLinks = %d, want 1", inj.FailedLinks())
	}
	if met.FIBInstalls != 1 {
		t.Fatalf("FIBInstalls after first heal = %d, want 1", met.FIBInstalls)
	}

	eng.Run(units.Millisecond)
	if net.LinkDown(4) {
		t.Fatal("link 4 still down after LinkUp event")
	}
	if inj.FailedLinks() != 0 {
		t.Fatalf("FailedLinks = %d, want 0 after recovery", inj.FailedLinks())
	}
	if met.FIBInstalls != 2 {
		t.Fatalf("FIBInstalls = %d, want 2 (one per transition)", met.FIBInstalls)
	}
	if met.RecoveryCount() != 1 || met.MTTR() != 90*units.Microsecond {
		t.Fatalf("recoveries = %d (MTTR %v), want one 90µs outage", met.RecoveryCount(), met.MTTR())
	}
}

func TestInjectorHealDisabled(t *testing.T) {
	eng, net, met := testFabric(t)
	sched := (&Schedule{}).Add(Event{At: 10 * units.Microsecond, Kind: LinkDown, Link: 4})
	if _, err := Apply(eng, net, sched, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(units.Millisecond)
	if met.FIBInstalls != 0 {
		t.Fatalf("FIBInstalls = %d with healing disabled, want 0", met.FIBInstalls)
	}
}

func TestInjectorSwitchFaultHealsAroundIt(t *testing.T) {
	eng, net, met := testFabric(t)
	// Spine 0 is switch 2 in the 2-leaf topology (leaves first).
	sched := (&Schedule{}).Add(
		Event{At: 10 * units.Microsecond, Kind: SwitchDown, Switch: 2},
		Event{At: 200 * units.Microsecond, Kind: SwitchUp, Switch: 2},
	)
	inj, err := Apply(eng, net, sched, 5*units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(50 * units.Microsecond)
	if !net.SwitchDown(2) || inj.FailedSwitches() != 1 {
		t.Fatal("spine not failed")
	}
	eng.Run(units.Millisecond)
	if net.SwitchDown(2) || inj.FailedSwitches() != 0 {
		t.Fatal("spine not recovered")
	}
	if met.FIBInstalls != 2 {
		t.Fatalf("FIBInstalls = %d, want 2", met.FIBInstalls)
	}
}

func TestApplyValidatesAgainstTopology(t *testing.T) {
	eng, net, _ := testFabric(t)
	bad := (&Schedule{}).Add(Event{Kind: LinkDown, Link: len(net.Topo.Links)})
	if _, err := Apply(eng, net, bad, 0); err == nil {
		t.Error("out-of-range link accepted")
	}
	worse := (&Schedule{}).Add(Event{Kind: SwitchDown, Switch: net.Topo.NumSwitches})
	if _, err := Apply(eng, net, worse, 0); err == nil {
		t.Error("out-of-range switch accepted")
	}
}
