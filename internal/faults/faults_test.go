package faults

import (
	"strings"
	"testing"

	"vertigo/internal/units"
)

func TestParseRoundTrip(t *testing.T) {
	src := "down@10ms:link=5; up@14ms:link=5; swdown@20ms:sw=2; swup@25ms:sw=2; " +
		"corrupt@0s:link=3,ber=0.001; degrade@5ms:link=4,factor=0.25"
	sched, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(sched.Events))
	}
	again, err := Parse(sched.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", sched.String(), err)
	}
	if len(again.Events) != len(sched.Events) {
		t.Fatalf("round trip changed event count: %d -> %d", len(sched.Events), len(again.Events))
	}
	for i := range sched.Events {
		if again.Events[i] != sched.Events[i] {
			t.Errorf("event %d changed in round trip: %v -> %v", i, sched.Events[i], again.Events[i])
		}
	}
}

func TestParseEventFields(t *testing.T) {
	sched, err := Parse("corrupt@2ms:link=7,ber=1e-4")
	if err != nil {
		t.Fatal(err)
	}
	e := sched.Events[0]
	if e.Kind != Corrupt || e.Link != 7 || e.BER != 1e-4 || e.At != 2*units.Millisecond {
		t.Fatalf("parsed %+v", e)
	}
}

func TestFlapExpansion(t *testing.T) {
	sched, err := Parse("flap@10ms:link=5,down=1ms,period=4ms,count=3")
	if err != nil {
		t.Fatal(err)
	}
	want := Flap(5, 10*units.Millisecond, units.Millisecond, 4*units.Millisecond, 3)
	if len(sched.Events) != 6 || len(want) != 6 {
		t.Fatalf("flap expanded to %d events, want 6", len(sched.Events))
	}
	for i, e := range sched.Events {
		if e != want[i] {
			t.Errorf("event %d = %v, want %v", i, e, want[i])
		}
	}
	// Cycles: down at 10, 14, 18 ms; each up 1 ms later.
	if sched.Events[4].At != 18*units.Millisecond || sched.Events[4].Kind != LinkDown {
		t.Errorf("third cycle starts at %v (%v)", sched.Events[4].At, sched.Events[4].Kind)
	}
	if sched.Events[5].At != 19*units.Millisecond || sched.Events[5].Kind != LinkUp {
		t.Errorf("third cycle ends at %v (%v)", sched.Events[5].At, sched.Events[5].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantSub string }{
		{"down", "missing @time"},
		{"down@xyz:link=1", "bad duration"},
		{"down@1ms", "missing link="},
		{"swdown@1ms:link=1", "missing sw="},
		{"corrupt@1ms:link=1", "missing ber="},
		{"degrade@1ms:link=1", "missing factor="},
		{"explode@1ms:link=1", "unknown kind"},
		{"down@1ms:link", "malformed argument"},
		{"flap@1ms:link=1,down=2ms,period=1ms,count=3", "0 < down < period"},
		{"flap@1ms:link=1,down=1ms,period=4ms,count=0", "count >= 1"},
		{"down@-5ms:link=1", "negative duration"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseEmptyAndSeparators(t *testing.T) {
	sched, err := Parse(" ; down@1ms:link=0 ; ; up@2ms:link=0 ; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(sched.Events))
	}
}

func TestValidate(t *testing.T) {
	ok := &Schedule{Events: []Event{
		{At: units.Millisecond, Kind: LinkDown, Link: 3},
		{At: 2 * units.Millisecond, Kind: SwitchDown, Switch: 1},
		{At: 0, Kind: Corrupt, Link: 0, BER: 0.5},
		{At: 0, Kind: Degrade, Link: 1, Factor: 2},
	}}
	if err := ok.Validate(4, 2, 10*units.Millisecond); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Unknown bounds are skipped.
	if err := ok.Validate(-1, -1, 0); err != nil {
		t.Fatalf("boundless validation rejected: %v", err)
	}

	bad := []Schedule{
		{Events: []Event{{At: -1, Kind: LinkDown, Link: 0}}},
		{Events: []Event{{At: 20 * units.Millisecond, Kind: LinkDown, Link: 0}}},
		{Events: []Event{{At: 0, Kind: LinkDown, Link: 4}}},
		{Events: []Event{{At: 0, Kind: LinkUp, Link: -1}}},
		{Events: []Event{{At: 0, Kind: SwitchDown, Switch: 2}}},
		{Events: []Event{{At: 0, Kind: Corrupt, Link: 0, BER: 1.5}}},
		{Events: []Event{{At: 0, Kind: Degrade, Link: 0, Factor: 0}}},
		{Events: []Event{{At: 0, Kind: Kind(99)}}},
	}
	for i := range bad {
		if err := bad[i].Validate(4, 2, 10*units.Millisecond); err == nil {
			t.Errorf("bad schedule %d accepted: %v", i, bad[i].Events)
		}
	}
}

func TestNilScheduleIsEmptyAndValid(t *testing.T) {
	var s *Schedule
	if !s.Empty() {
		t.Error("nil schedule not empty")
	}
	if err := s.Validate(1, 1, units.Second); err != nil {
		t.Errorf("nil schedule invalid: %v", err)
	}
	if (&Schedule{}).Empty() != true {
		t.Error("zero schedule not empty")
	}
}
