package transport_test

import (
	"runtime"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// TestSendPathAllocationFree pins the packet free list: once the pools are
// warm, a steady ACK-clocked flow must recycle every data packet, ACK and
// timer event rather than allocate. The budget of 0.1 allocations per packet
// leaves slack only for amortized growth of long-lived backing arrays.
func TestSendPathAllocationFree(t *testing.T) {
	r := newRig(t, fabric.DefaultConfig(fabric.ECMP), transport.DefaultConfig(transport.DCTCP), false)
	r.flow(0, 2, 100_000_000) // long enough to stay active for the whole test

	// Warm-up: exit slow start, size the pools, queues and event heap.
	r.eng.Run(5 * units.Millisecond)

	pkts0 := r.met.PacketsSent
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	r.eng.Run(25 * units.Millisecond)
	runtime.ReadMemStats(&m1)
	pkts := r.met.PacketsSent - pkts0

	if pkts < 1000 {
		t.Fatalf("only %d packets in measurement window, rig broken?", pkts)
	}
	perPkt := float64(m1.Mallocs-m0.Mallocs) / float64(pkts)
	t.Logf("%d packets, %d allocs (%.4f allocs/pkt)", pkts, m1.Mallocs-m0.Mallocs, perPkt)
	if perPkt > 0.1 {
		t.Errorf("steady-state send path allocates %.3f objects/packet, want ~0", perPkt)
	}
}
