package transport

import (
	"math"

	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// FlowSpec describes one flow to transmit.
type FlowSpec struct {
	ID       uint64
	Src, Dst int
	Size     int64
	Incast   bool
	Query    int // owning incast query, or -1
	// Preregistered marks a flow whose metrics record was already created
	// (sharded runs register every flow in its destination domain's
	// collector); Start then skips the duplicate StartFlow.
	Preregistered bool
}

// Sender is the transmit side of one connection. It is ACK-clocked; Swift
// additionally paces transmissions, which is what lets its congestion window
// drop below one packet under extreme incast (paper §4.2).
//
// Senders are designed to live in SenderPool slabs: the hot per-ACK state
// (sequence, congestion, RTT fields below) is grouped at the front of the
// struct so the ACK path touches a contiguous prefix of the slot, the
// config block is shared via pointer rather than copied per flow, and the
// method-value closures are built once per slot and reused by every flow
// the slot ever hosts.
type Sender struct {
	// Hot state, touched on every ACK.
	//
	// Sequence state (bytes). Retransmissions pending are exactly the range
	// [rtxNext, retxUntil); an RTO widens it to the whole outstanding window.
	sndUna    int64 // oldest unacknowledged byte
	nextSeq   int64 // next never-sent byte
	rtxNext   int64 // next byte to retransmit
	retxUntil int64 // end of the pending retransmission range

	// Congestion state.
	cwnd       float64
	ssthresh   float64
	dupAcks    int
	pipe       int // estimate of packets in flight (RFC 6675 spirit)
	inRecovery bool
	done       bool
	recoverSeq int64

	// RTT estimation and RTO.
	srtt, rttvar units.Time
	rto          units.Time
	rtoTimer     sim.Timer
	backoff      int

	// DCTCP.
	alpha       float64
	bytesAcked  int64
	bytesMarked int64
	windowEnd   int64

	// Swift.
	lastDecrease units.Time
	pacingTimer  sim.Timer
	nextSendAt   units.Time
	retxStreak   int // consecutive retransmission events without progress

	// Identity and environment (set per flow, read-mostly).
	h    *host.Host
	eng  *sim.Engine
	met  *metrics.Collector
	cfg  *Config // shared by every sender of a pool
	ids  *packet.IDGen
	pool *packet.Pool
	spec FlowSpec

	sp     *SenderPool // owning pool, nil for standalone senders
	onDone func()

	// Method-value closures are allocated once per slot and survive reuse;
	// taking s.onRTO at every arm site would allocate per ACK, and taking
	// s.onAck at every Start would allocate per flow.
	onRTOFn, trySendFn func()
	onAckFn            func(*packet.Packet)
}

// NewSender creates (but does not start) a standalone, non-pooled sender on
// host h (the SenderPool path is core's default; this remains for tests and
// single-flow tools).
func NewSender(h *host.Host, met *metrics.Collector, cfg Config, ids *packet.IDGen, spec FlowSpec, onDone func()) *Sender {
	s := &Sender{}
	c := cfg
	s.init(nil, &c, h, met, ids, spec, onDone)
	return s
}

// init resets a slot for a new flow, preserving the slot's prebuilt
// closures (and building them on first use).
func (s *Sender) init(sp *SenderPool, cfg *Config, h *host.Host, met *metrics.Collector,
	ids *packet.IDGen, spec FlowSpec, onDone func()) {
	onRTO, trySend, onAck := s.onRTOFn, s.trySendFn, s.onAckFn
	*s = Sender{
		h:    h,
		eng:  h.Eng,
		met:  met,
		cfg:  cfg,
		ids:  ids,
		pool: h.Pool(),
		spec: spec,
		sp:   sp,
		cwnd: cfg.InitWindow,
		// Effectively unbounded until the first loss event.
		ssthresh: math.MaxFloat64,
		rto:      cfg.InitRTO,
		onDone:   onDone,
	}
	if cfg.Protocol == Swift {
		s.cwnd = math.Min(cfg.InitWindow, cfg.Swift.MaxCwnd)
	}
	if onRTO == nil {
		onRTO = s.onRTO
		trySend = s.trySend
		onAck = s.onAck
	}
	s.onRTOFn, s.trySendFn, s.onAckFn = onRTO, trySend, onAck
}

// Start registers the flow and transmits the initial window.
func (s *Sender) Start() {
	if !s.spec.Preregistered {
		cls := metrics.Background
		if s.spec.Incast {
			cls = metrics.Incast
		}
		s.met.StartFlow(metrics.FlowRecord{
			ID:    s.spec.ID,
			Class: cls,
			Src:   s.spec.Src,
			Dst:   s.spec.Dst,
			Size:  s.spec.Size,
			Start: s.eng.Now(),
			Query: s.spec.Query,
		})
	}
	if s.h.Marker != nil {
		s.h.Marker.StartFlow(s.spec.ID, s.spec.Dst, s.spec.Size)
	}
	s.h.Bind(s.spec.ID, s.onAckFn)
	s.trySend()
}

// Done reports whether the flow is fully acknowledged.
func (s *Sender) Done() bool { return s.done }

// Cwnd returns the current congestion window in packets (for tests).
func (s *Sender) Cwnd() float64 { return s.cwnd }

// inflightPkts estimates the number of segments currently in the network.
// Unlike the raw sequence range nextSeq-sndUna, the pipe drains on duplicate
// ACKs and collapses to zero on an RTO, so the window check can admit
// retransmissions after losses (otherwise a post-RTO cwnd of 1 could never
// send into a 10-segment outstanding range: deadlock).
func (s *Sender) inflightPkts() int {
	return s.pipe
}

// segAt returns the segment starting at seq.
func (s *Sender) segAt(seq int64) (payload int, fin bool) {
	n := s.spec.Size - seq
	if n > packet.MSS {
		return packet.MSS, false
	}
	return int(n), true
}

// windowAllows reports whether congestion control admits one more segment.
func (s *Sender) windowAllows() bool {
	inflight := s.inflightPkts()
	if s.cfg.Protocol == Swift {
		if s.cwnd < 1 {
			// Fractional window: pacing gate only, one packet at a time.
			return inflight < 1
		}
		return float64(inflight) < math.Max(1, s.cwnd)
	}
	return inflight < int(math.Max(1, math.Floor(s.cwnd)))
}

// paceGate returns true when pacing admits a send now, otherwise arms the
// pacing timer and returns false. Non-Swift protocols are never paced.
func (s *Sender) paceGate() bool {
	if s.cfg.Protocol != Swift {
		return true
	}
	now := s.eng.Now()
	if now >= s.nextSendAt {
		return true
	}
	if !s.pacingTimer.Pending() {
		s.pacingTimer = s.eng.At(s.nextSendAt, s.trySendFn)
	}
	return false
}

// pacingDelay is the post-send gap Swift imposes: rtt/cwnd when cwnd < 1
// (i.e. cwnd=0.5 sends every 2 RTTs), negligible otherwise.
func (s *Sender) pacingDelay() units.Time {
	if s.cwnd >= 1 {
		return 0
	}
	rtt := s.srtt
	if rtt == 0 {
		rtt = 25 * units.Microsecond
	}
	return units.Time(float64(rtt) / s.cwnd)
}

// trySend transmits as many segments as the window and pacer admit.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	for {
		if s.rtxNext < s.sndUna {
			s.rtxNext = s.sndUna // acked in the meantime: skip
		}
		var seq int64
		var retx bool
		switch {
		case s.rtxNext < s.retxUntil:
			seq, retx = s.rtxNext, true
		case s.nextSeq < s.spec.Size:
			seq = s.nextSeq
		default:
			return // nothing left to send
		}
		if !s.windowAllows() || !s.paceGate() {
			return
		}
		payload, fin := s.segAt(seq)
		s.transmit(seq, payload, fin, retx)
		if retx {
			s.rtxNext = seq + int64(payload)
		} else {
			s.nextSeq = seq + int64(payload)
		}
	}
}

func (s *Sender) transmit(seq int64, payload int, fin, retx bool) {
	now := s.eng.Now()
	p := s.pool.Get()
	*p = packet.Packet{
		ID:         s.ids.Next(),
		Kind:       packet.Data,
		Src:        s.spec.Src,
		Dst:        s.spec.Dst,
		Flow:       s.spec.ID,
		Seq:        seq,
		PayloadLen: payload,
		FlowSize:   s.spec.Size,
		Fin:        fin,
		Retx:       retx,
		Incast:     s.spec.Incast,
		ECNCapable: s.cfg.Protocol == DCTCP,
		SentAt:     now,
		TxAt:       now,
	}
	if retx {
		s.met.Retransmits++
	}
	s.pipe++
	s.h.Send(p)
	if s.cfg.Protocol == Swift {
		s.nextSendAt = now + s.pacingDelay()
	}
	if !s.rtoTimer.Pending() {
		s.armRTO()
	}
}

func (s *Sender) armRTO() {
	s.rtoTimer.Cancel()
	s.rtoTimer = s.eng.After(s.rto, s.onRTOFn)
}

// onRTO handles a retransmission timeout: collapse the window, back off the
// timer, and go back to the oldest unacknowledged segment.
func (s *Sender) onRTO() {
	if s.done {
		return
	}
	s.met.RTOs++
	if debugRTO != nil {
		debugRTO(s.spec.ID, s.sndUna, s.nextSeq, s.eng.Now(), s.rto, s.dupAcks)
	}
	flight := math.Max(float64(s.inflightPkts()), 1)
	s.ssthresh = math.Max(flight/2, 2)
	if s.cfg.Protocol == Swift {
		s.retxStreak++
		if th := s.cfg.Swift.RetxResetThreshold; th > 0 && s.retxStreak >= th {
			// Swift Alg. 1: persistent retransmission means the path is
			// gone or hopeless; collapse to the minimum window.
			s.cwnd = s.cfg.Swift.MinCwnd
		} else {
			s.cwnd = math.Max(s.cfg.Swift.RetxResetCwnd, s.cfg.Swift.MinCwnd)
		}
	} else {
		s.cwnd = 1
	}
	s.dupAcks = 0
	s.inRecovery = false
	s.pipe = 0 // everything outstanding is presumed lost
	s.rtxNext = s.sndUna
	s.retxUntil = s.nextSeq // go-back-N over the outstanding window
	s.backoff++
	s.rto *= 2
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
	s.armRTO()
	s.trySend()
}

// debugRTO, when set by tests, observes every retransmission timeout.
var debugRTO func(flow uint64, sndUna, nextSeq int64, now units.Time, rto units.Time, dupAcks int)

// onAck consumes one acknowledgment: the sender is the packet's final owner,
// so the frame is recycled after processing. If the ACK completed the flow,
// the slot goes back to its pool — complete() has already unbound the flow,
// so nothing can reach this sender again.
func (s *Sender) onAck(p *packet.Packet) {
	s.handleAck(p)
	s.pool.Put(p)
	if s.done && s.sp != nil {
		s.sp.put(s)
	}
}

// handleAck processes one cumulative acknowledgment.
func (s *Sender) handleAck(p *packet.Packet) {
	if s.done || p.Kind != packet.Ack {
		return
	}
	now := s.eng.Now()

	if p.AckSeq > s.sndUna {
		ackedBytes := p.AckSeq - s.sndUna
		s.pipe -= int((ackedBytes + packet.MSS - 1) / packet.MSS)
		if s.pipe < 0 {
			s.pipe = 0
		}
		s.retxStreak = 0 // forward progress
		s.sndUna = p.AckSeq
		if s.rtxNext < s.sndUna {
			s.rtxNext = s.sndUna
		}
		s.dupAcks = 0
		if p.EchoTx > 0 {
			s.sampleRTT(now - p.EchoTx)
		}
		s.updateCwnd(p, ackedBytes)
		if s.inRecovery {
			if s.sndUna >= s.recoverSeq {
				s.inRecovery = false
				s.cwnd = math.Max(s.ssthresh, 1)
			} else {
				// NewReno partial ACK: retransmit the next hole immediately.
				payload, fin := s.segAt(s.sndUna)
				s.transmit(s.sndUna, payload, fin, true)
			}
		}
		if s.sndUna >= s.spec.Size {
			s.complete()
			return
		}
		s.armRTO()
	} else if p.AckSeq == s.sndUna && s.sndUna < s.nextSeq {
		s.dupAcks++
		if s.pipe > 0 {
			s.pipe-- // a duplicate ACK means one segment left the network
		}
		if s.cfg.FastRetransmit && !s.inRecovery && s.dupAcks == s.cfg.DupAckThreshold {
			s.fastRetransmit()
		}
	}
	s.trySend()
}

// fastRetransmit resends the segment at sndUna and halves the window
// (Swift applies its MaxMDF decrease instead).
func (s *Sender) fastRetransmit() {
	s.met.FastRetx++
	s.inRecovery = true
	s.recoverSeq = s.nextSeq
	flight := math.Max(float64(s.inflightPkts()), 1)
	switch s.cfg.Protocol {
	case Swift:
		s.retxStreak++
		if th := s.cfg.Swift.RetxResetThreshold; th > 0 && s.retxStreak >= th {
			s.cwnd = s.cfg.Swift.MinCwnd
		} else {
			s.cwnd = math.Max(s.cwnd*(1-s.cfg.Swift.MaxMDF), s.cfg.Swift.MinCwnd)
		}
	case DCTCP:
		// DCTCP reacts to loss like Reno (Alizadeh et al. §3.3).
		s.ssthresh = math.Max(flight/2, 2)
		s.cwnd = s.ssthresh
	default:
		s.ssthresh = math.Max(flight/2, 2)
		s.cwnd = s.ssthresh
	}
	payload, fin := s.segAt(s.sndUna)
	s.transmit(s.sndUna, payload, fin, true)
}

func (s *Sender) sampleRTT(rtt units.Time) {
	if rtt <= 0 {
		return
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.backoff = 0
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
	if s.rto > s.cfg.MaxRTO {
		s.rto = s.cfg.MaxRTO
	}
}

// updateCwnd applies per-protocol growth/decrease for newly acked bytes.
func (s *Sender) updateCwnd(p *packet.Packet, ackedBytes int64) {
	switch s.cfg.Protocol {
	case Reno:
		s.grow()
	case DCTCP:
		s.bytesAcked += ackedBytes
		if p.ECE {
			s.bytesMarked += ackedBytes
		}
		if s.sndUna >= s.windowEnd {
			// One window's worth of feedback: update alpha, cut if marked.
			f := 0.0
			if s.bytesAcked > 0 {
				f = float64(s.bytesMarked) / float64(s.bytesAcked)
			}
			s.alpha = (1-s.cfg.DCTCPGain)*s.alpha + s.cfg.DCTCPGain*f
			if s.bytesMarked > 0 {
				s.cwnd = math.Max(s.cwnd*(1-s.alpha/2), 1)
			}
			s.bytesAcked, s.bytesMarked = 0, 0
			s.windowEnd = s.nextSeq
		}
		s.grow()
	case Swift:
		s.updateSwift(p)
	}
}

// grow is Reno growth: slow start below ssthresh, else congestion
// avoidance, capped by the receive window.
func (s *Sender) grow() {
	if s.inRecovery {
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++
	} else {
		s.cwnd += 1 / s.cwnd
	}
	if s.cfg.MaxWindow > 0 && s.cwnd > s.cfg.MaxWindow {
		s.cwnd = s.cfg.MaxWindow
	}
}

// updateSwift applies Swift's target-delay AIMD (SIGCOMM'20 Algorithm 1).
func (s *Sender) updateSwift(p *packet.Packet) {
	if p.EchoTx == 0 {
		return
	}
	now := s.eng.Now()
	// Fabric delay only: NIC timestamps exclude receiver processing time
	// (notably the ordering layer's hold), as hardware-timestamped Swift
	// does in deployment.
	delay := now - p.EchoTx - p.EchoProc
	target := s.swiftTarget(p.EchoHops)
	sp := s.cfg.Swift
	if delay < target {
		if s.cwnd >= 1 {
			s.cwnd += sp.AI / s.cwnd
		} else {
			s.cwnd += sp.AI * s.cwnd // proportional creep back toward 1
		}
	} else if s.canDecrease(now) {
		f := 1 - sp.Beta*float64(delay-target)/float64(delay)
		if min := 1 - sp.MaxMDF; f < min {
			f = min
		}
		s.cwnd *= f
		s.lastDecrease = now
	}
	s.clampSwift()
}

func (s *Sender) swiftTarget(hops int) units.Time {
	sp := s.cfg.Swift
	t := sp.BaseTarget + units.Time(hops)*sp.PerHopScale
	// Flow scaling: smaller windows tolerate proportionally more delay, so
	// large incasts stabilize instead of oscillating (Swift §3.2).
	if s.cwnd < sp.MaxCwnd {
		den := 1/math.Sqrt(sp.FSMinCwnd) - 1/math.Sqrt(sp.MaxCwnd)
		if den > 0 {
			num := 1/math.Sqrt(math.Max(s.cwnd, sp.FSMinCwnd)) - 1/math.Sqrt(sp.MaxCwnd)
			fs := units.Time(float64(sp.FSRange) * math.Min(math.Max(num/den, 0), 1))
			t += fs
		}
	}
	return t
}

func (s *Sender) canDecrease(now units.Time) bool {
	rtt := s.srtt
	if rtt == 0 {
		rtt = 25 * units.Microsecond
	}
	return now-s.lastDecrease >= rtt
}

func (s *Sender) clampSwift() {
	sp := s.cfg.Swift
	if s.cwnd < sp.MinCwnd {
		s.cwnd = sp.MinCwnd
	}
	if s.cwnd > sp.MaxCwnd {
		s.cwnd = sp.MaxCwnd
	}
}

func (s *Sender) complete() {
	s.done = true
	s.rtoTimer.Cancel()
	s.pacingTimer.Cancel()
	s.h.Unbind(s.spec.ID)
	if s.h.Marker != nil {
		s.h.Marker.EndFlow(s.spec.ID)
	}
	if s.onDone != nil {
		s.onDone()
	}
}
