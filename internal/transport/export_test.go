package transport

import "vertigo/internal/units"

// SetDebugRTO installs a test observer for retransmission timeouts.
func SetDebugRTO(fn func(flow uint64, sndUna, nextSeq int64, now, rto units.Time, dupAcks int)) {
	debugRTO = fn
}

// Test hooks into unexported sender internals.
func (s *Sender) SwiftTargetForTest(hops int) units.Time { return s.swiftTarget(hops) }
func (s *Sender) SampleRTTForTest(rtt units.Time)        { s.sampleRTT(rtt) }
func (s *Sender) RTOForTest() units.Time                 { return s.rto }
func (s *Sender) SRTTForTest() units.Time                { return s.srtt }
func (s *Sender) AlphaForTest() float64                  { return s.alpha }
func (s *Sender) SetCwndForTest(w float64)               { s.cwnd = w }
