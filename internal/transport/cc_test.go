package transport_test

import (
	"math"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// mkSender builds an unstarted sender for white-box congestion tests.
func mkSender(t *testing.T, proto transport.Protocol) *transport.Sender {
	t.Helper()
	r := newRig(t, fabric.DefaultConfig(fabric.ECMP), transport.DefaultConfig(proto), false)
	spec := transport.FlowSpec{ID: r.ids.Next(), Src: 0, Dst: 2, Size: 1 << 20, Query: -1}
	return transport.NewSender(r.hosts[0], r.met, r.cfg, r.ids, spec, nil)
}

func TestSwiftTargetScaling(t *testing.T) {
	s := mkSender(t, transport.Swift)
	// More hops => larger target.
	if a, b := s.SwiftTargetForTest(3), s.SwiftTargetForTest(6); b <= a {
		t.Errorf("target not increasing in hops: %v vs %v", a, b)
	}
	// Smaller cwnd => larger flow-scaling term (Swift §3.2).
	s.SetCwndForTest(16)
	big := s.SwiftTargetForTest(3)
	s.SetCwndForTest(0.5)
	small := s.SwiftTargetForTest(3)
	if small <= big {
		t.Errorf("flow scaling missing: target(cwnd=0.5)=%v <= target(cwnd=16)=%v", small, big)
	}
	// The flow-scaling addition is bounded by FSRange.
	cfg := transport.DefaultSwiftParams()
	if small > big+cfg.FSRange {
		t.Errorf("flow scaling exceeds FSRange: %v vs %v + %v", small, big, cfg.FSRange)
	}
}

func TestRTTEstimator(t *testing.T) {
	s := mkSender(t, transport.Reno)
	s.SampleRTTForTest(100 * units.Microsecond)
	if s.SRTTForTest() != 100*units.Microsecond {
		t.Fatalf("first sample srtt %v", s.SRTTForTest())
	}
	// Jacobson smoothing: srtt moves 1/8 of the way to each new sample.
	s.SampleRTTForTest(200 * units.Microsecond)
	want := units.Time(112500) // 100µs*7/8 + 200µs/8
	if got := s.SRTTForTest(); got != want {
		t.Fatalf("srtt after second sample %v, want %v", got, want)
	}
	// RTO is clamped to minRTO for µs-scale RTTs.
	if got := s.RTOForTest(); got != 10*units.Millisecond {
		t.Fatalf("rto %v, want the 10ms floor", got)
	}
	// Huge samples push the RTO up but never above MaxRTO.
	for i := 0; i < 50; i++ {
		s.SampleRTTForTest(20 * units.Second)
	}
	if got := s.RTOForTest(); got != transport.DefaultConfig(transport.Reno).MaxRTO {
		t.Fatalf("rto %v, want the MaxRTO cap", got)
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	tcfg := transport.DefaultConfig(transport.Reno)
	tcfg.FastRetransmit = false
	r := newRig(t, fcfg, tcfg, false)
	// Kill the destination's access link so every transmission is lost:
	// pure RTO territory. Host 2 is on leaf 1; its access link index is 2.
	if err := r.net.FailLinkAt(2, 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(units.Millisecond)
	r.flow(0, 2, 10_000)
	r.eng.Run(20 * units.Second)
	// initRTO 1s, then 2s, 4s (capped): at least 3 RTOs within 20s, and the
	// flow must still be alive (not falsely completed).
	if r.met.RTOs < 3 {
		t.Fatalf("%d RTOs in 20s of blackhole, want >= 3 (backoff broken?)", r.met.RTOs)
	}
	if r.met.RTOs > 8 {
		t.Fatalf("%d RTOs in 20s: backoff not doubling", r.met.RTOs)
	}
}

func TestDCTCPAlphaTracksMarkingFraction(t *testing.T) {
	// Sustained 2:1 congestion with ECN: alpha must settle well above zero,
	// and the window must stay small enough to avoid drops almost entirely.
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	r := newRig(t, fcfg, transport.DefaultConfig(transport.DCTCP), false)
	spec := transport.FlowSpec{ID: r.ids.Next(), Src: 2, Dst: 0, Size: 4 << 20, Query: -1}
	s := transport.NewSender(r.hosts[2], r.met, r.cfg, r.ids, spec, nil)
	s.Start()
	r.flow(3, 0, 4<<20)
	r.eng.Run(3 * units.Millisecond) // mid-flight, ECN active
	if r.met.ECNMarks == 0 {
		t.Fatal("no ECN marks in a 2:1 DCTCP scenario")
	}
	if a := s.AlphaForTest(); a <= 0.01 || a > 1 {
		t.Fatalf("alpha %.4f, want settled in (0.01, 1]", a)
	}
	r.eng.Run(60 * units.Second)
	if !s.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestMaxWindowClamp(t *testing.T) {
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	tcfg := transport.DefaultConfig(transport.Reno)
	tcfg.MaxWindow = 16
	r := newRig(t, fcfg, tcfg, false)
	s := r.flow(0, 2, 8<<20) // uncontended: slow start would explode
	r.eng.Run(20 * units.Millisecond)
	if w := s.Cwnd(); w > 16 {
		t.Fatalf("cwnd %v exceeded MaxWindow 16", w)
	}
	if math.IsNaN(s.Cwnd()) {
		t.Fatal("cwnd NaN")
	}
}

func TestSwiftRecoversFromBlackout(t *testing.T) {
	// Swift's RTO path: collapse to RetxResetCwnd, then complete after the
	// link heals... links don't heal here, so instead: drop-heavy tiny
	// buffer, Swift must still finish.
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	fcfg.BufferBytes = 4 * 1500
	fcfg.ECNThreshold = 0
	r := newRig(t, fcfg, transport.DefaultConfig(transport.Swift), false)
	s1 := r.flow(2, 0, 200_000)
	s2 := r.flow(3, 0, 200_000)
	r.eng.Run(60 * units.Second)
	if !s1.Done() || !s2.Done() {
		t.Fatalf("swift flows incomplete under heavy loss (drops=%d)", r.met.TotalDrops())
	}
}
