package transport

import (
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// Receiver is the receive side of one connection: it reassembles the byte
// stream, generates a cumulative ACK for every data packet (echoing ECN
// marks, timestamps and hop counts), and reports flow completion to the
// metrics collector the moment the last byte arrives.
type Receiver struct {
	h    *host.Host
	met  *metrics.Collector
	ids  *packet.IDGen
	pool *packet.Pool

	flow     uint64
	peer     int // sending host
	self     int
	size     int64
	recvNext int64      // next in-order byte expected
	ooo      []interval // out-of-order received ranges, sorted, disjoint
	scratch  []interval // spare backing array for admit's merge pass
	maxEnd   int64      // highest byte offset seen (reordering detection)
	done     bool

	rp *ReceiverPool // owning pool, nil for standalone receivers
	// onDataFn is the slot's prebuilt handler closure, reused across flows.
	onDataFn func(*packet.Packet)
}

type interval struct{ lo, hi int64 }

// NewReceiver builds a standalone, non-pooled receiver from the first data
// packet of a flow and returns its packet handler, matching host.Acceptor's
// contract (the ReceiverPool path is core's default).
func NewReceiver(h *host.Host, met *metrics.Collector, ids *packet.IDGen, first *packet.Packet) func(*packet.Packet) {
	r := &Receiver{}
	r.init(nil, h, met, ids, first)
	return r.onDataFn
}

// init resets a slot for a new inbound flow, keeping the slot's prebuilt
// handler closure and burst-grown interval backing arrays.
func (r *Receiver) init(rp *ReceiverPool, h *host.Host, met *metrics.Collector, ids *packet.IDGen, first *packet.Packet) {
	onData := r.onDataFn
	ooo, scratch := r.ooo[:0], r.scratch[:0]
	*r = Receiver{
		h:       h,
		met:     met,
		ids:     ids,
		pool:    h.Pool(),
		flow:    first.Flow,
		peer:    first.Src,
		self:    first.Dst,
		size:    first.FlowSize,
		ooo:     ooo,
		scratch: scratch,
		rp:      rp,
	}
	if onData == nil {
		onData = r.onData
	}
	r.onDataFn = onData
}

// Received returns the count of in-order bytes received so far.
func (r *Receiver) Received() int64 { return r.recvNext }

// onData consumes one packet: the receiver is its final owner, so the frame
// is recycled after processing. Once the flow's last byte has arrived the
// slot quiesces back to its pool; the pool's shared fin handler takes over
// the binding for any straggling retransmissions.
func (r *Receiver) onData(p *packet.Packet) {
	r.handleData(p)
	r.pool.Put(p)
	if r.done && r.rp != nil {
		r.rp.release(r)
	}
}

func (r *Receiver) handleData(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	// Reordering at the transport: the packet arrived after bytes beyond it.
	if p.Seq < r.maxEnd {
		r.met.ReorderPkts++
	}
	if p.End() > r.maxEnd {
		r.maxEnd = p.End()
	}
	fresh := r.admit(p.Seq, p.End())
	r.met.BytesGoodput += fresh
	if !r.done && r.recvNext >= r.size {
		r.done = true
		r.met.EndFlow(r.flow, r.h.Eng.Now())
	}
	r.sendAck(p)
}

// admit merges [lo,hi) into the received set, advances recvNext across any
// now-contiguous ranges, and returns the number of newly covered bytes.
func (r *Receiver) admit(lo, hi int64) int64 {
	if lo < r.recvNext {
		lo = r.recvNext
	}
	if hi <= lo {
		return 0
	}
	// Fast path: in-order delivery with nothing buffered — the common case —
	// just advances the cumulative pointer, with no interval bookkeeping.
	if len(r.ooo) == 0 && lo == r.recvNext {
		r.recvNext = hi
		return hi - lo
	}
	// Count uncovered bytes: the span minus its intersection with each
	// existing (disjoint) interval.
	fresh := hi - lo
	for _, iv := range r.ooo {
		fresh -= overlap(interval{lo, hi}, iv)
	}
	// Merge [lo,hi) into the sorted disjoint set, writing into the spare
	// backing array so steady-state merges don't allocate.
	cur := interval{lo, hi}
	out := r.scratch[:0]
	inserted := false
	for _, iv := range r.ooo {
		switch {
		case iv.hi < cur.lo: // strictly before (adjacent ranges coalesce below)
			out = append(out, iv)
		case cur.hi < iv.lo:
			if !inserted {
				out = append(out, cur)
				inserted = true
			}
			out = append(out, iv)
		default: // overlapping or touching: fold into cur
			if iv.lo < cur.lo {
				cur.lo = iv.lo
			}
			if iv.hi > cur.hi {
				cur.hi = iv.hi
			}
		}
	}
	if !inserted {
		out = append(out, cur)
	}
	r.ooo, r.scratch = out, r.ooo
	// Advance the cumulative pointer over a now-contiguous prefix.
	for len(r.ooo) > 0 && r.ooo[0].lo <= r.recvNext {
		if r.ooo[0].hi > r.recvNext {
			r.recvNext = r.ooo[0].hi
		}
		r.ooo = r.ooo[1:]
	}
	return fresh
}

// overlap returns the byte overlap of two intervals.
func overlap(a, b interval) int64 {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	if hi > lo {
		return hi - lo
	}
	return 0
}

func (r *Receiver) sendAck(data *packet.Packet) {
	now := r.h.Eng.Now()
	var proc units.Time
	if data.RxAt > 0 {
		// Host processing time (dominated by any ordering-layer hold): the
		// NIC timestamps let Swift subtract it from the RTT, as deployed
		// Swift does with hardware timestamps.
		proc = now - data.RxAt
	}
	ack := r.pool.Get()
	*ack = packet.Packet{
		ID:       r.ids.Next(),
		Kind:     packet.Ack,
		Src:      r.self,
		Dst:      r.peer,
		Flow:     r.flow,
		AckSeq:   r.recvNext,
		ECE:      data.CE && data.ECNCapable,
		EchoTx:   data.TxAt,
		EchoProc: proc,
		EchoHops: data.Hops,
		Incast:   data.Incast,
		TxAt:     now,
	}
	r.h.Send(ack)
}
