package transport_test

import (
	"runtime"
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/packet"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// newPoolRig is the standard rig re-wired through SenderPool/ReceiverPool,
// the configuration core.Run uses.
func newPoolRig(t *testing.T) (*rig, *transport.SenderPool, *transport.ReceiverPool) {
	t.Helper()
	r := newRig(t, fabric.DefaultConfig(fabric.ECMP), transport.DefaultConfig(transport.DCTCP), false)
	rp := transport.NewReceiverPool(r.eng, r.net, r.met, r.ids)
	for _, h := range r.hosts {
		h := h
		h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
			return rp.Accept(h, first)
		})
	}
	return r, transport.NewSenderPool(r.cfg), rp
}

// TestPoolRecyclesConnections drives many sequential flows through pooled
// transports: every one must complete, and the pools must converge to a
// bounded population — one slab each — with zero slots leaked.
func TestPoolRecyclesConnections(t *testing.T) {
	r, sp, rp := newPoolRig(t)
	const flows = 1000
	for i := 0; i < flows; i++ {
		src, dst := i%4, (i+2)%4
		spec := transport.FlowSpec{ID: r.ids.Next(), Src: src, Dst: dst, Size: 20_000, Query: -1}
		sp.Get(r.hosts[src], r.met, r.ids, spec, nil).Start()
		r.eng.Run(r.eng.Now() + 300*units.Microsecond)
	}
	r.eng.Run(r.eng.Now() + 50*units.Millisecond)
	if got := r.met.FlowsCompleted(); got != flows {
		t.Fatalf("completed %d/%d flows", got, flows)
	}
	if sp.Live() != 0 || rp.Live() != 0 {
		t.Fatalf("leaked slots: %d senders, %d receivers still live", sp.Live(), rp.Live())
	}
	if sp.Allocated() > 256 || rp.Allocated() > 256 {
		t.Fatalf("pool grew past one slab: %d sender / %d receiver slots for %d sequential flows",
			sp.Allocated(), rp.Allocated(), flows)
	}
}

// TestPoolChurnAllocationFree pins the tentpole claim: once pools are warm,
// flow churn itself — start, transmit, complete, recycle — allocates
// (almost) nothing. The budget of ~2 allocs per flow leaves slack only for
// amortized growth of long-lived structures (event heap, metrics table),
// not per-flow sender/receiver/closure allocations, which cost 5+ each.
func TestPoolChurnAllocationFree(t *testing.T) {
	r, sp, _ := newPoolRig(t)
	flow := func(i int) {
		src, dst := i%4, (i+2)%4
		spec := transport.FlowSpec{ID: r.ids.Next(), Src: src, Dst: dst, Size: 20_000, Query: -1}
		sp.Get(r.hosts[src], r.met, r.ids, spec, nil).Start()
		r.eng.Run(r.eng.Now() + 300*units.Microsecond)
	}
	for i := 0; i < 200; i++ { // warm-up: size pools, tables, event heap
		flow(i)
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	const measured = 500
	for i := 0; i < measured; i++ {
		flow(200 + i)
	}
	runtime.ReadMemStats(&m1)
	perFlow := float64(m1.Mallocs-m0.Mallocs) / measured
	t.Logf("%d allocs over %d flows (%.3f allocs/flow)", m1.Mallocs-m0.Mallocs, measured, perFlow)
	if perFlow > 2 {
		t.Errorf("flow churn allocates %.2f objects/flow, want ~0", perFlow)
	}
}

// TestPoolStragglerAck exercises the fin-handler path: a data packet for an
// already-completed flow must still be ACKed with full coverage so the
// sender can finish, and must not double-count goodput.
func TestPoolStragglerAck(t *testing.T) {
	// Tiny buffer forces drops, so some flows complete at the receiver while
	// the sender still retransmits into the fin handler.
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	fcfg.BufferBytes = 5 * 1500
	fcfg.ECNThreshold = 0
	r := newRig(t, fcfg, transport.DefaultConfig(transport.Reno), false)
	rp := transport.NewReceiverPool(r.eng, r.net, r.met, r.ids)
	for _, h := range r.hosts {
		h := h
		h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
			return rp.Accept(h, first)
		})
	}
	sp := transport.NewSenderPool(r.cfg)
	const size = 400_000
	s1 := sp.Get(r.hosts[2], r.met, r.ids, transport.FlowSpec{ID: r.ids.Next(), Src: 2, Dst: 0, Size: size, Query: -1}, nil)
	s2 := sp.Get(r.hosts[3], r.met, r.ids, transport.FlowSpec{ID: r.ids.Next(), Src: 3, Dst: 0, Size: size, Query: -1}, nil)
	s1.Start()
	s2.Start()
	r.eng.Run(30 * units.Second)
	if !s1.Done() || !s2.Done() {
		t.Fatalf("senders incomplete under loss (drops=%d)", r.met.TotalDrops())
	}
	if r.met.TotalDrops() == 0 {
		t.Fatal("scenario produced no drops; straggler path not exercised")
	}
	if r.met.BytesGoodput != 2*size {
		t.Fatalf("goodput %d, want %d (stragglers double-counted?)", r.met.BytesGoodput, 2*size)
	}
	if sp.Live() != 0 || rp.Live() != 0 {
		t.Fatalf("slots leaked after recovery: %d senders, %d receivers", sp.Live(), rp.Live())
	}
}
