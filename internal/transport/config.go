// Package transport implements the packet-granular transport protocols the
// paper runs over each fabric: TCP Reno, DCTCP and Swift. Senders are
// ACK-clocked window-based state machines (Swift adds pacing and fractional
// windows); receivers generate per-packet cumulative ACKs with ECN echo.
package transport

import (
	"fmt"

	"vertigo/internal/units"
)

// Protocol selects the congestion control algorithm.
type Protocol int

// Protocols.
const (
	Reno Protocol = iota
	DCTCP
	Swift
)

func (p Protocol) String() string {
	switch p {
	case Reno:
		return "tcp"
	case DCTCP:
		return "dctcp"
	case Swift:
		return "swift"
	default:
		return fmt.Sprintf("protocol(%d)", int(p))
	}
}

// ParseProtocol converts a name ("tcp", "dctcp", "swift") to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "tcp", "reno":
		return Reno, nil
	case "dctcp":
		return DCTCP, nil
	case "swift":
		return Swift, nil
	}
	return 0, fmt.Errorf("transport: unknown protocol %q", s)
}

// SwiftParams are the delay-target knobs of Swift (Kumar et al., SIGCOMM'20
// Algorithm 1), scaled to this simulator's microsecond-RTT fabrics.
type SwiftParams struct {
	BaseTarget    units.Time // fixed component of the target delay
	PerHopScale   units.Time // per-switch-hop addition to the target
	AI            float64    // additive increase, packets per RTT
	Beta          float64    // multiplicative-decrease sensitivity
	MaxMDF        float64    // largest per-decision multiplicative decrease
	FSRange       units.Time // flow-scaling range added for tiny cwnds
	FSMinCwnd     float64    // cwnd at which flow scaling maxes out
	MinCwnd       float64    // floor (fractional: pacing below 1)
	MaxCwnd       float64
	RetxResetCwnd float64 // cwnd after an RTO
	// RetxResetThreshold collapses cwnd to MinCwnd after this many
	// consecutive retransmission events without forward progress
	// (Swift Algorithm 1's RETX_RESET_THRESHOLD).
	RetxResetThreshold int
}

// DefaultSwiftParams follows the paper's guidance ([47]) with targets sized
// for the ~10 µs base RTTs of the simulated fabrics.
func DefaultSwiftParams() SwiftParams {
	return SwiftParams{
		BaseTarget:         25 * units.Microsecond,
		PerHopScale:        time1µs(),
		AI:                 1.0,
		Beta:               0.8,
		MaxMDF:             0.5,
		FSRange:            100 * units.Microsecond,
		FSMinCwnd:          0.1,
		MinCwnd:            0.001,
		MaxCwnd:            256,
		RetxResetCwnd:      0.25,
		RetxResetThreshold: 5,
	}
}

func time1µs() units.Time { return units.Microsecond }

// Config parameterizes one connection. Defaults mirror the paper's §4.1:
// initial window 10, initial RTO 1 s, minRTO 10 ms.
type Config struct {
	Protocol Protocol

	InitWindow float64
	// MaxWindow caps the congestion window in packets, standing in for the
	// peer's advertised receive window.
	MaxWindow       float64
	InitRTO         units.Time
	MinRTO          units.Time
	MaxRTO          units.Time
	DupAckThreshold int
	// FastRetransmit may be disabled; DIBS runs DCTCP with fast retransmit
	// off to tolerate deflection-induced reordering (paper §2).
	FastRetransmit bool

	// DCTCPGain is DCTCP's alpha EWMA gain g (default 1/16).
	DCTCPGain float64

	Swift SwiftParams
}

// DefaultConfig returns the paper's default settings for a protocol.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:        p,
		InitWindow:      10,
		MaxWindow:       1024,
		InitRTO:         1 * units.Second,
		MinRTO:          10 * units.Millisecond,
		MaxRTO:          4 * units.Second,
		DupAckThreshold: 3,
		FastRetransmit:  true,
		DCTCPGain:       1.0 / 16,
		Swift:           DefaultSwiftParams(),
	}
}
