package transport

import (
	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// connSlab is how many connection states one backing array holds. Matches
// the packet pool's slab discipline: contiguous slabs keep live state dense
// while a LIFO free list hands the most recently quiesced — cache-warm —
// slot to the next flow.
const connSlab = 256

// SenderPool recycles Sender slots across flows. Every slot lives in a
// contiguous slab and carries its method-value closures (ACK handler, RTO,
// pacing) built on first use and reused for every flow the slot ever hosts,
// so steady-state flow churn allocates nothing: a million-flow run touches
// only O(peak concurrent flows) sender state.
//
// All pooled senders share one Config, held by the pool; the per-slot cfg
// pointer keeps the 100+ byte parameter block out of every slot.
type SenderPool struct {
	cfg   Config
	slabs [][]Sender
	free  []*Sender
	live  int
}

// NewSenderPool returns an empty pool whose senders run under cfg.
func NewSenderPool(cfg Config) *SenderPool {
	return &SenderPool{cfg: cfg}
}

// Get checks a sender out of the pool (growing it by a slab when empty) and
// initializes it for spec. The sender returns itself to the pool when the
// flow completes.
func (sp *SenderPool) Get(h *host.Host, met *metrics.Collector, ids *packet.IDGen, spec FlowSpec, onDone func()) *Sender {
	if len(sp.free) == 0 {
		slab := make([]Sender, connSlab)
		sp.slabs = append(sp.slabs, slab)
		for i := range slab {
			sp.free = append(sp.free, &slab[i])
		}
	}
	s := sp.free[len(sp.free)-1]
	sp.free = sp.free[:len(sp.free)-1]
	sp.live++
	s.init(sp, &sp.cfg, h, met, ids, spec, onDone)
	return s
}

// put returns a completed sender's slot to the free list.
func (sp *SenderPool) put(s *Sender) {
	sp.live--
	sp.free = append(sp.free, s)
}

// Live returns the number of checked-out senders.
func (sp *SenderPool) Live() int { return sp.live }

// Allocated returns the total sender slots ever carved.
func (sp *SenderPool) Allocated() int { return len(sp.slabs) * connSlab }

// maxKeepIntervals bounds the out-of-order interval backing arrays a
// recycled receiver slot keeps. A pathological reordering burst can grow
// them arbitrarily; past this they are dropped so one bad flow does not pin
// memory for the rest of the run.
const maxKeepIntervals = 1024

// ReceiverPool recycles Receiver slots the same way SenderPool recycles
// senders. A receiver quiesces when its last byte arrives; its flow stays
// bound — to the pool's shared fin handler rather than the receiver — so
// straggling retransmissions still get the full-coverage ACK they would
// have gotten from the live receiver, byte for byte, while the slot (and
// its out-of-order buffers) moves on to the next flow.
type ReceiverPool struct {
	met   *metrics.Collector
	ids   *packet.IDGen
	slabs [][]Receiver
	free  []*Receiver
	live  int
	fin   func(*packet.Packet)
}

// NewReceiverPool returns a receiver pool for one run. eng and net are the
// run's engine and fabric, used by the shared fin handler to ACK stragglers
// of already-completed flows.
func NewReceiverPool(eng *sim.Engine, net *fabric.Network, met *metrics.Collector, ids *packet.IDGen) *ReceiverPool {
	rp := &ReceiverPool{met: met, ids: ids}
	pool := net.Pool()
	// The fin handler replays exactly what a completed receiver does with a
	// straggling retransmission: count the reorder (the flow's last byte is
	// past every segment), regenerate the cumulative ACK from the packet's
	// own fields, and recycle the frame — same packet-pool order as the
	// live-receiver path (ACK allocated before the data frame is returned).
	rp.fin = func(p *packet.Packet) {
		if p.Kind != packet.Data {
			pool.Put(p)
			return
		}
		met.ReorderPkts++
		now := eng.Now()
		var proc units.Time
		if p.RxAt > 0 {
			proc = now - p.RxAt
		}
		ack := pool.Get()
		*ack = packet.Packet{
			ID:       ids.Next(),
			Kind:     packet.Ack,
			Src:      p.Dst,
			Dst:      p.Src,
			Flow:     p.Flow,
			AckSeq:   p.FlowSize,
			ECE:      p.CE && p.ECNCapable,
			EchoTx:   p.TxAt,
			EchoProc: proc,
			EchoHops: p.Hops,
			Incast:   p.Incast,
			TxAt:     now,
		}
		net.Send(ack)
		pool.Put(p)
	}
	return rp
}

// Accept checks a receiver out for the flow whose first data packet just
// arrived on h, and returns its prebuilt packet handler (the host.Acceptor
// contract).
func (rp *ReceiverPool) Accept(h *host.Host, first *packet.Packet) func(*packet.Packet) {
	if len(rp.free) == 0 {
		slab := make([]Receiver, connSlab)
		rp.slabs = append(rp.slabs, slab)
		for i := range slab {
			rp.free = append(rp.free, &slab[i])
		}
	}
	r := rp.free[len(rp.free)-1]
	rp.free = rp.free[:len(rp.free)-1]
	rp.live++
	r.init(rp, h, rp.met, rp.ids, first)
	return r.onDataFn
}

// release rebinds the finished flow to the shared fin handler and returns
// the slot to the free list, trimming burst-grown interval buffers.
func (rp *ReceiverPool) release(r *Receiver) {
	r.h.Bind(r.flow, rp.fin)
	if cap(r.ooo) > maxKeepIntervals {
		r.ooo = nil
	}
	if cap(r.scratch) > maxKeepIntervals {
		r.scratch = nil
	}
	rp.live--
	rp.free = append(rp.free, r)
}

// Live returns the number of checked-out receivers.
func (rp *ReceiverPool) Live() int { return rp.live }

// Allocated returns the total receiver slots ever carved.
func (rp *ReceiverPool) Allocated() int { return len(rp.slabs) * connSlab }
