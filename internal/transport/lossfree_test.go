package transport_test

import (
	"testing"

	"vertigo/internal/core"
	"vertigo/internal/fabric"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// TestLossFreeTransportInvariants pins the regression that once shipped a
// sender resending every segment: in a Vertigo run with zero drops and zero
// deflections, the transport must see no retransmissions, no RTOs, and —
// because the ordering layer hides SRPT queue inversion — no reordering.
func TestLossFreeTransportInvariants(t *testing.T) {
	transport.SetDebugRTO(func(flow uint64, sndUna, nextSeq int64, now, rto units.Time, dup int) {
		t.Errorf("unexpected RTO: t=%v flow=%d sndUna=%d nextSeq=%d rto=%v dupAcks=%d",
			now, flow, sndUna, nextSeq, rto, dup)
	})
	defer transport.SetDebugRTO(nil)

	cfg := core.DefaultConfig(fabric.Vertigo, transport.DCTCP)
	cfg.LeafSpineCfg = topo.LeafSpineConfig{
		Spines: 2, Leaves: 4, HostsPerLeaf: 4,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	}
	cfg.SimTime = 50 * units.Millisecond
	cfg.BGLoad = 0
	cfg.IncastQPS = 50 // sparse queries: bursts fit in the ToR buffer
	cfg.IncastScale = 8
	cfg.IncastFlowSize = 20000
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Collector
	if c.TotalDrops() != 0 || c.Deflections != 0 {
		t.Fatalf("scenario no longer loss-free: drops=%d deflections=%d (retune the test)",
			c.TotalDrops(), c.Deflections)
	}
	if c.Retransmits != 0 {
		t.Errorf("spurious retransmissions in a loss-free run: %d", c.Retransmits)
	}
	if c.ReorderPkts != 0 {
		t.Errorf("transport saw %d reordered packets despite the ordering layer", c.ReorderPkts)
	}
	if c.OrderTimeout != 0 {
		t.Errorf("ordering layer timed out %d times without loss", c.OrderTimeout)
	}
	if res.Summary.QueriesCompleted == 0 {
		t.Error("no queries completed")
	}
}
