package transport_test

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/host"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/transport"
	"vertigo/internal/units"
)

// rig is a minimal full-stack harness: a 2-leaf/2-spine fabric with four
// hosts, transports wired through the host layer.
type rig struct {
	eng   *sim.Engine
	met   *metrics.Collector
	net   *fabric.Network
	hosts []*host.Host
	ids   *packet.IDGen
	cfg   transport.Config
}

func newRig(t *testing.T, fcfg fabric.Config, tcfg transport.Config, vertigoStack bool) *rig {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 2, Leaves: 2, HostsPerLeaf: 2,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		eng: sim.NewEngine(1),
		met: metrics.NewCollector(),
		ids: &packet.IDGen{},
		cfg: tcfg,
	}
	r.net = fabric.New(r.eng, tp, r.met, fcfg)
	for i := 0; i < tp.NumHosts; i++ {
		h := host.NewHost(i, r.eng, r.net, r.met,
			host.DefaultMarkerConfig(), host.DefaultOrdererConfig(), vertigoStack)
		h.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
			return transport.NewReceiver(h, r.met, r.ids, first)
		})
		r.hosts = append(r.hosts, h)
	}
	return r
}

func (r *rig) flow(src, dst int, size int64) *transport.Sender {
	spec := transport.FlowSpec{ID: r.ids.Next(), Src: src, Dst: dst, Size: size, Query: -1}
	s := transport.NewSender(r.hosts[src], r.met, r.cfg, r.ids, spec, nil)
	s.Start()
	return s
}

func TestSingleFlowCompletes(t *testing.T) {
	for _, proto := range []transport.Protocol{transport.Reno, transport.DCTCP, transport.Swift} {
		r := newRig(t, fabric.DefaultConfig(fabric.ECMP), transport.DefaultConfig(proto), false)
		const size = 1_000_000
		s := r.flow(0, 2, size)
		r.eng.Run(units.Second)
		if !s.Done() {
			t.Fatalf("%v: flow not acknowledged", proto)
		}
		f := r.met.Flow(1)
		if f == nil || !f.Completed {
			t.Fatalf("%v: flow not completed at receiver", proto)
		}
		if r.met.BytesGoodput != size {
			t.Fatalf("%v: goodput %d bytes, want %d", proto, r.met.BytesGoodput, size)
		}
		// 1 MB at 10 Gb/s is 800 µs minimum; allow slow start overhead.
		if fct := f.FCT(); fct < 800*units.Microsecond || fct > 20*units.Millisecond {
			t.Errorf("%v: FCT %v outside sane range", proto, fct)
		}
	}
}

func TestTinyFlowSinglePacket(t *testing.T) {
	r := newRig(t, fabric.DefaultConfig(fabric.ECMP), transport.DefaultConfig(transport.DCTCP), false)
	s := r.flow(0, 1, 100)
	r.eng.Run(units.Second)
	if !s.Done() || r.met.BytesGoodput != 100 {
		t.Fatalf("tiny flow: done=%v goodput=%d", s.Done(), r.met.BytesGoodput)
	}
	if r.met.Retransmits != 0 {
		t.Fatalf("tiny flow retransmitted %d times", r.met.Retransmits)
	}
}

func TestLossRecovery(t *testing.T) {
	for _, proto := range []transport.Protocol{transport.Reno, transport.DCTCP, transport.Swift} {
		fcfg := fabric.DefaultConfig(fabric.ECMP)
		fcfg.BufferBytes = 5 * 1500 // tiny buffer: guaranteed drops
		fcfg.ECNThreshold = 0
		r := newRig(t, fcfg, transport.DefaultConfig(proto), false)
		// Two senders overload host 0's downlink.
		s1 := r.flow(2, 0, 400_000)
		s2 := r.flow(3, 0, 400_000)
		r.eng.Run(30 * units.Second)
		if r.met.TotalDrops() == 0 {
			t.Fatalf("%v: scenario produced no drops", proto)
		}
		if !s1.Done() || !s2.Done() {
			t.Fatalf("%v: flows not recovered after loss (done=%v,%v drops=%d rto=%d)",
				proto, s1.Done(), s2.Done(), r.met.TotalDrops(), r.met.RTOs)
		}
		if r.met.Retransmits == 0 {
			t.Fatalf("%v: no retransmissions despite drops", proto)
		}
	}
}

func TestFastRetransmitPreferredOverRTO(t *testing.T) {
	// Steady-state Reno sawtooth over a normal buffer: overflow losses land
	// mid-window, so duplicate ACKs (not RTOs) must drive most recoveries.
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	fcfg.ECNThreshold = 0
	tcfg := transport.DefaultConfig(transport.Reno)
	r := newRig(t, fcfg, tcfg, false)
	r.flow(2, 0, 5_000_000)
	r.flow(3, 0, 5_000_000)
	r.eng.Run(60 * units.Second)
	if r.met.TotalDrops() == 0 {
		t.Fatal("no drops: scenario does not exercise recovery")
	}
	if r.met.FastRetx == 0 {
		t.Fatalf("no fast retransmissions (drops=%d rtos=%d)", r.met.TotalDrops(), r.met.RTOs)
	}
	if r.met.FastRetx < r.met.RTOs {
		t.Errorf("fast retransmissions (%d) rarer than RTOs (%d) in steady state",
			r.met.FastRetx, r.met.RTOs)
	}
}

func TestFastRetransmitDisabledFallsBackToRTO(t *testing.T) {
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	fcfg.BufferBytes = 8 * 1500
	fcfg.ECNThreshold = 0
	tcfg := transport.DefaultConfig(transport.Reno)
	tcfg.FastRetransmit = false
	r := newRig(t, fcfg, tcfg, false)
	s1 := r.flow(2, 0, 300_000)
	s2 := r.flow(3, 0, 300_000)
	r.eng.Run(60 * units.Second)
	if r.met.FastRetx != 0 {
		t.Fatal("fast retransmit fired while disabled")
	}
	if r.met.RTOs == 0 {
		t.Fatal("no RTOs despite drops and disabled fast retransmit")
	}
	if !s1.Done() || !s2.Done() {
		t.Fatal("flows did not recover via RTO")
	}
}

func TestDCTCPKeepsQueuesShorterThanReno(t *testing.T) {
	run := func(proto transport.Protocol) int64 {
		fcfg := fabric.DefaultConfig(fabric.ECMP)
		r := newRig(t, fcfg, transport.DefaultConfig(proto), false)
		s1 := r.flow(2, 0, 3_000_000)
		s2 := r.flow(3, 0, 3_000_000)
		r.eng.Run(60 * units.Second)
		if !s1.Done() || !s2.Done() {
			t.Fatalf("%v: flows incomplete", proto)
		}
		return r.met.TotalDrops()
	}
	renoDrops := run(transport.Reno)
	dctcpDrops := run(transport.DCTCP)
	if dctcpDrops >= renoDrops {
		t.Errorf("DCTCP drops %d not below Reno drops %d", dctcpDrops, renoDrops)
	}
	if renoDrops == 0 {
		t.Error("Reno never filled the 300KB buffer with 2x10G into 10G")
	}
}

func TestSwiftThrottlesUnderFanIn(t *testing.T) {
	// 3:1 fan-in: Swift must shrink windows below the initial 10 to hold its
	// delay target (fractional sub-packet windows need far larger fan-in,
	// exercised by the incast experiments).
	fcfg := fabric.DefaultConfig(fabric.ECMP)
	r := newRig(t, fcfg, transport.DefaultConfig(transport.Swift), false)
	senders := []*transport.Sender{
		r.flow(1, 0, 2_000_000),
		r.flow(2, 0, 2_000_000),
		r.flow(3, 0, 2_000_000),
	}
	r.eng.Run(2 * units.Millisecond) // mid-flight
	below := 0
	for _, s := range senders {
		if s.Cwnd() < 10 { // throttled below the initial window
			below++
		}
	}
	if below == 0 {
		t.Error("no Swift sender throttled under 3:1 fan-in")
	}
	r.eng.Run(60 * units.Second)
	for i, s := range senders {
		if !s.Done() {
			t.Errorf("sender %d incomplete", i)
		}
	}
}

func TestVertigoStackEndToEnd(t *testing.T) {
	// Full Vertigo: marked packets, sorted queues, ordering layer.
	r := newRig(t, fabric.DefaultConfig(fabric.Vertigo), transport.DefaultConfig(transport.DCTCP), true)
	s1 := r.flow(1, 0, 500_000)
	s2 := r.flow(2, 0, 500_000)
	s3 := r.flow(3, 0, 500_000)
	r.eng.Run(30 * units.Second)
	if !s1.Done() || !s2.Done() || !s3.Done() {
		t.Fatal("flows incomplete under Vertigo stack")
	}
	if r.met.BytesGoodput != 1_500_000 {
		t.Fatalf("goodput %d, want 1500000", r.met.BytesGoodput)
	}
	if r.met.ReorderPkts != 0 && r.met.TotalDrops() == 0 && r.met.OrderTimeout == 0 {
		t.Errorf("transport reordering (%d pkts) without loss or ordering timeout", r.met.ReorderPkts)
	}
}

func TestReorderDetection(t *testing.T) {
	// DRILL's per-packet spraying across 2 uplinks reorders flows; the
	// bare stack (no ordering layer) must count it.
	fcfg := fabric.DefaultConfig(fabric.DRILL)
	r := newRig(t, fcfg, transport.DefaultConfig(transport.DCTCP), false)
	r.flow(0, 2, 2_000_000)
	r.flow(1, 3, 2_000_000)
	r.eng.Run(30 * units.Second)
	// Not asserting a count: spraying only reorders when queue depths
	// diverge. Just ensure the counter is wired (either zero or positive,
	// never panics) and flows completed.
	if r.met.BytesGoodput != 4_000_000 {
		t.Fatalf("goodput %d, want 4000000", r.met.BytesGoodput)
	}
}

func TestParseProtocol(t *testing.T) {
	for name, want := range map[string]transport.Protocol{
		"tcp": transport.Reno, "reno": transport.Reno,
		"dctcp": transport.DCTCP, "swift": transport.Swift,
	} {
		got, err := transport.ParseProtocol(name)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := transport.ParseProtocol("quic"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
