package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

// TestPositional is the property coalescing relies on: draws are a pure
// function of (seed, position), so batching draws cannot change their values.
func TestPositional(t *testing.T) {
	a := New(7)
	batch := make([]int64, 64)
	for i := range batch {
		batch[i] = a.Int63n(101)
	}
	b := New(7)
	for i := range batch {
		if got := b.Int63n(101); got != batch[i] {
			t.Fatalf("draw %d: batched %d != sequential %d", i, batch[i], got)
		}
	}
}

func TestStreamsDecorrelated(t *testing.T) {
	a, b := New(Mix(1)), New(Mix(2))
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Int63n(101) == b.Int63n(101) {
			same++
		}
	}
	// Two independent uniform streams over 101 values agree ~1% of the time;
	// flag gross correlation only.
	if same > 100 {
		t.Fatalf("adjacent seeds produced %d/1000 equal draws", same)
	}
}

func TestInt63nRanges(t *testing.T) {
	s := New(3)
	for _, n := range []int64{1, 2, 3, 100, 101, 1 << 40} {
		for i := 0; i < 2000; i++ {
			v := s.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
	// All residues of a small modulus should appear.
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		seen[s.Int63n(7)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Int63n(7) produced only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	s.Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}
