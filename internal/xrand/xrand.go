// Package xrand is a tiny deterministic PRNG for per-entity random streams.
//
// The simulator historically drew every random number from one engine-wide
// math/rand stream, which makes each draw's value depend on the global
// *order* of draws. That coupling is what forbids event coalescing: batching
// a port's per-packet jitter draws into one planning step would shift every
// other consumer's position in the shared stream. Giving each port its own
// stream makes draw order positional — the k-th draw of a port has the same
// value whether it is taken when the k-th packet starts serializing or all
// at once when a packet train is planned — which is the "RNG draw order
// provably preserved" condition packet-train coalescing relies on.
//
// The generator is splitmix64 (Steele et al., "Fast splittable pseudorandom
// number generators"): 8 bytes of state, one add and three xor-shifts per
// draw, full 2^64 period. A fleet of thousands of ports costs kilobytes,
// where per-port math/rand.Rand sources would cost ~5 KB each.
package xrand

// Source is a splitmix64 PRNG. The zero value is a valid stream (seed 0);
// distinct seeds give statistically independent streams. Not safe for
// concurrent use; values are meant to be embedded, one per entity.
type Source struct {
	state uint64
}

// New returns a source seeded with seed.
func New(seed uint64) Source { return Source{state: seed} }

// Seed resets the stream.
func (s *Source) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63n returns a uniform random int64 in [0, n). It panics if n <= 0.
// Like math/rand, it rejects the biased tail of the modulo so the
// distribution is exactly uniform.
func (s *Source) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return int64(s.Uint64() & uint64(n-1))
	}
	max := uint64(1)<<63 - 1 - (uint64(1)<<63)%uint64(n)
	v := s.Uint64() >> 1
	for v > max {
		v = s.Uint64() >> 1
	}
	return int64(v % uint64(n))
}

// Float64 returns a uniform random float64 in [0, 1), using the draw's top
// 53 bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Mix is a splitmix64 finalizer, exported for deriving stream seeds from
// structured identities (engine seed, switch ID, port index) so that nearby
// identities still yield decorrelated streams.
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
