package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vertigo/internal/packet"
	"vertigo/internal/units"
)

func dataPkt(rank uint32, payload int) *packet.Packet {
	return &packet.Packet{
		Kind:       packet.Data,
		PayloadLen: payload,
		Marked:     true,
		Info:       packet.FlowInfo{RFS: rank},
	}
}

func TestDropTailFIFOOrder(t *testing.T) {
	q := NewDropTail(1 << 20)
	for i := 0; i < 100; i++ {
		if !q.Push(dataPkt(uint32(100-i), 100)) {
			t.Fatal("push failed below capacity")
		}
	}
	for i := 0; i < 100; i++ {
		p := q.Pop()
		if p == nil || p.Info.RFS != uint32(100-i) {
			t.Fatalf("pop %d: got %v, want rank %d", i, p, 100-i)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop from empty queue returned a packet")
	}
}

func TestDropTailCapacity(t *testing.T) {
	q := NewDropTail(units.ByteSize(3 * (100 + packet.HeaderLen + packet.ShimHeaderLen)))
	for i := 0; i < 3; i++ {
		if !q.Push(dataPkt(1, 100)) {
			t.Fatalf("push %d failed within capacity", i)
		}
	}
	if q.Push(dataPkt(1, 100)) {
		t.Fatal("push succeeded beyond capacity")
	}
	q.Pop()
	if !q.Push(dataPkt(1, 100)) {
		t.Fatal("push failed after pop freed space")
	}
}

func TestDropTailByteAccounting(t *testing.T) {
	q := NewDropTail(1 << 20)
	p := dataPkt(1, 333)
	q.Push(p)
	if q.Bytes() != p.Size() {
		t.Fatalf("bytes %v, want %v", q.Bytes(), p.Size())
	}
	q.Pop()
	if q.Bytes() != 0 || q.Len() != 0 {
		t.Fatalf("after pop: bytes=%v len=%d, want zero", q.Bytes(), q.Len())
	}
}

func TestDropTailCompaction(t *testing.T) {
	// Exercise the prefix-reclaim path: many pushes and pops interleaved.
	q := NewDropTail(1 << 30)
	next := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			q.Push(dataPkt(uint32(round*40+i), 10))
		}
		for i := 0; i < 35; i++ {
			p := q.Pop()
			if p.Info.RFS != uint32(next) {
				t.Fatalf("FIFO violated after compaction: got %d, want %d", p.Info.RFS, next)
			}
			next++
		}
	}
}

func TestSortedPopAscending(t *testing.T) {
	q := NewSorted(1 << 20)
	ranks := []uint32{500, 100, 900, 300, 700, 200}
	for _, r := range ranks {
		q.Push(dataPkt(r, 100))
	}
	prev := uint32(0)
	for q.Len() > 0 {
		p := q.Pop()
		if p.Info.RFS < prev {
			t.Fatalf("pop order not ascending: %d after %d", p.Info.RFS, prev)
		}
		prev = p.Info.RFS
	}
}

func TestSortedFIFOAmongEqualRanks(t *testing.T) {
	q := NewSorted(1 << 20)
	for i := 0; i < 10; i++ {
		p := dataPkt(42, 100)
		p.ID = uint64(i + 1)
		q.Push(p)
	}
	for i := 0; i < 10; i++ {
		if p := q.Pop(); p.ID != uint64(i+1) {
			t.Fatalf("equal-rank order violated: got ID %d at %d", p.ID, i)
		}
	}
}

func TestSortedTailIsYoungestMaxRank(t *testing.T) {
	q := NewSorted(1 << 20)
	a := dataPkt(100, 100)
	a.ID = 1
	b := dataPkt(100, 100)
	b.ID = 2
	q.Push(a)
	q.Push(b)
	if q.Tail().ID != 2 {
		t.Fatalf("tail ID %d, want the youngest (2)", q.Tail().ID)
	}
	if got := q.ExtractTail(); got.ID != 2 {
		t.Fatalf("ExtractTail ID %d, want 2", got.ID)
	}
	if q.Tail().ID != 1 {
		t.Fatalf("tail after extraction ID %d, want 1", q.Tail().ID)
	}
}

func TestSortedUnmarkedRanksZero(t *testing.T) {
	q := NewSorted(1 << 20)
	q.Push(dataPkt(10, 100))
	ack := &packet.Packet{Kind: packet.Ack}
	q.Push(ack)
	if p := q.Pop(); p != ack {
		t.Fatal("unmarked packet did not jump to the head")
	}
}

func TestForceInsertEvictsLargestRanks(t *testing.T) {
	// Capacity for exactly 3 packets.
	one := dataPkt(1, 100).Size()
	q := NewSorted(3 * one)
	q.Push(dataPkt(10, 100))
	q.Push(dataPkt(20, 100))
	q.Push(dataPkt(30, 100))

	// Inserting rank 15 must evict rank 30 (the tail).
	ev := q.ForceInsert(dataPkt(15, 100))
	if len(ev) != 1 || ev[0].Info.RFS != 30 {
		t.Fatalf("evicted %v, want the rank-30 packet", ev)
	}
	// Inserting rank 99 must evict itself.
	big := dataPkt(99, 100)
	ev = q.ForceInsert(big)
	if len(ev) != 1 || ev[0] != big {
		t.Fatalf("evicted %v, want the arriving rank-99 packet itself", ev)
	}
	if q.Bytes() > q.Cap() {
		t.Fatal("queue exceeds capacity after ForceInsert")
	}
}

func TestForceInsertMayEvictMultiple(t *testing.T) {
	// A big low-rank arrival can push several small high-rank packets out
	// (paper footnote 4).
	small := dataPkt(50, 50)
	q := NewSorted(4 * small.Size())
	q.Push(dataPkt(50, 50))
	q.Push(dataPkt(60, 50))
	q.Push(dataPkt(70, 50))
	big := dataPkt(10, 150) // twice a small packet: evicting one is not enough
	ev := q.ForceInsert(big)
	if len(ev) < 2 {
		t.Fatalf("evicted %d packets, want at least 2 for the oversized arrival", len(ev))
	}
	for _, p := range ev {
		if p.Info.RFS < 50 {
			t.Fatalf("evicted rank %d, must only evict from the tail", p.Info.RFS)
		}
	}
	if q.Bytes() > q.Cap() {
		t.Fatal("queue exceeds capacity")
	}
}

// Property: for any sequence of pushes, pops drain in ascending rank and
// byte accounting is exact.
func TestPropertySortedInvariants(t *testing.T) {
	f := func(ranks []uint32, seed int64) bool {
		q := NewSorted(1 << 30)
		rng := rand.New(rand.NewSource(seed))
		var want units.ByteSize
		for _, r := range ranks {
			p := dataPkt(r, 1+rng.Intn(packet.MSS))
			want += p.Size()
			q.Push(p)
		}
		if q.Bytes() != want || q.Len() != len(ranks) {
			return false
		}
		prev := uint32(0)
		for q.Len() > 0 {
			p := q.Pop()
			if p.Info.RFS < prev {
				return false
			}
			prev = p.Info.RFS
			want -= p.Size()
			if q.Bytes() != want {
				return false
			}
		}
		return q.Bytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ExtractTail always removes a maximal-rank packet and never
// breaks the ascending pop order of the remainder.
func TestPropertyExtractTailMaximal(t *testing.T) {
	f := func(ranks []uint32) bool {
		if len(ranks) == 0 {
			return true
		}
		q := NewSorted(1 << 30)
		maxRank := uint32(0)
		for _, r := range ranks {
			q.Push(dataPkt(r, 100))
			if r > maxRank {
				maxRank = r
			}
		}
		tail := q.ExtractTail()
		if tail.Info.RFS != maxRank {
			return false
		}
		prev := uint32(0)
		for q.Len() > 0 {
			p := q.Pop()
			if p.Info.RFS < prev {
				return false
			}
			prev = p.Info.RFS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: ForceInsert never leaves the queue above capacity and only
// evicts ranks >= the minimum surviving rank.
func TestPropertyForceInsertBounded(t *testing.T) {
	f := func(ranks []uint32) bool {
		one := dataPkt(0, 100).Size()
		q := NewSorted(5 * one)
		for _, r := range ranks {
			evicted := q.ForceInsert(dataPkt(r, 100))
			if q.Bytes() > q.Cap() {
				return false
			}
			for _, e := range evicted {
				if tail := q.Tail(); tail != nil && e.Info.RFS < tail.Info.RFS {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFits(t *testing.T) {
	one := dataPkt(0, 100).Size()
	for _, q := range []Queue{NewDropTail(2 * one), NewSorted(2 * one)} {
		if !q.Fits(one) {
			t.Fatal("empty queue reports no room")
		}
		q.Push(dataPkt(1, 100))
		q.Push(dataPkt(2, 100))
		if q.Fits(1) {
			t.Fatal("full queue reports room")
		}
	}
}

// TestBurstCapacityReleased pins the deferred-compaction shrink: a deep
// burst grows the backing array, and once the queue drains the array must be
// released rather than pinning peak memory for the rest of the run.
func TestBurstCapacityReleased(t *testing.T) {
	const burst = 8192
	for _, tc := range []struct {
		name string
		mk   func() Queue
		pcap func(Queue) int
	}{
		{"droptail", func() Queue { return NewDropTail(1 << 40) },
			func(q Queue) int { return cap(q.(*DropTailQueue).pkts) }},
		{"sorted", func() Queue { return NewSorted(1 << 40) },
			func(q Queue) int { return cap(q.(*SortedQueue).pkts) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk()
			for i := 0; i < burst; i++ {
				if !q.Push(dataPkt(uint32(i), 100)) {
					t.Fatal("push failed below capacity")
				}
			}
			peak := tc.pcap(q)
			if peak < burst {
				t.Fatalf("backing array cap %d, want >= %d", peak, burst)
			}
			// Drain to a trickle, with light steady-state traffic so the
			// compaction path keeps running.
			for q.Len() > 16 {
				q.Pop()
				if q.Len()%512 == 0 {
					q.Push(dataPkt(1, 100))
					q.Pop()
				}
			}
			if got := tc.pcap(q); got*4 > peak {
				t.Fatalf("%s backing array cap %d after drain, want <= peak/4 (%d)",
					tc.name, got, peak/4)
			}
			if q.Len() != 16 {
				t.Fatalf("live packets %d, want 16", q.Len())
			}
		})
	}
}

// TestSortedTailFastPathOrder pins that the tail-append fast path preserves
// exactly the old insertion semantics: ascending and equal ranks append,
// FIFO among equals, and a smaller rank still finds its sorted slot.
func TestSortedTailFastPathOrder(t *testing.T) {
	q := NewSorted(1 << 30)
	a, b, c, d := dataPkt(5, 100), dataPkt(5, 100), dataPkt(9, 100), dataPkt(3, 100)
	for _, p := range []*packet.Packet{a, b, c, d} {
		q.Push(p)
	}
	want := []*packet.Packet{d, a, b, c}
	for i, w := range want {
		if got := q.Pop(); got != w {
			t.Fatalf("pop %d: got rank %d, want rank %d (FIFO-among-equals violated)",
				i, got.Info.RFS, w.Info.RFS)
		}
	}
}
