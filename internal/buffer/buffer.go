// Package buffer implements the switch output queues: a classic drop-tail
// FIFO and a rank-sorted queue modelled on hardware PIFO/PIEO schedulers,
// extended (as the paper's §A.3 extends PIEO) with extraction from the tail
// of the priority list. Capacities are byte-denominated, matching shallow-
// buffered datacenter switch ports.
package buffer

import (
	"vertigo/internal/packet"
	"vertigo/internal/units"
)

// compact reclaims the consumed prefix of a deferred-compaction queue slice
// once the head index dominates it, returning the live suffix moved to the
// front. When the backing array was grown by a deep burst and occupancy has
// fallen far below it, the array is released and the live packets move to a
// right-sized allocation — otherwise a single burst would pin peak memory
// for the rest of the run.
func compact[T any](pkts []T, head int) []T {
	live := pkts[head:]
	if c := cap(pkts); c > 1024 && len(live) <= c/4 {
		return append(make([]T, 0, 2*len(live)), live...)
	}
	return append(pkts[:0], live...)
}

// Queue is a bounded packet queue. Implementations track occupancy in bytes
// against a fixed capacity; admission control (what to do when a packet does
// not fit) is the forwarding policy's job, so Push on a queue without room
// reports failure rather than dropping silently.
type Queue interface {
	// Push enqueues p if it fits within capacity, reporting success.
	Push(p *packet.Packet) bool
	// Pop removes and returns the next packet to transmit, or nil.
	Pop() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns current occupancy in bytes.
	Bytes() units.ByteSize
	// Cap returns the byte capacity.
	Cap() units.ByteSize
	// Fits reports whether a packet of size n would currently fit.
	Fits(n units.ByteSize) bool
	// PeekAt returns the packet the i-th next Pop would return (0 = head)
	// without removing it, or nil when i >= Len. Train planning walks the
	// first few pop candidates through this to serialize them under one
	// event while they stay queued.
	PeekAt(i int) *packet.Packet
}

// DropTailQueue is a FIFO with byte-based admission: the queue used by the
// ECMP, DRILL and DIBS fabrics.
type DropTailQueue struct {
	pkts  []*packet.Packet
	head  int
	bytes units.ByteSize
	cap   units.ByteSize
}

// NewDropTail returns an empty FIFO with the given byte capacity.
func NewDropTail(capacity units.ByteSize) *DropTailQueue {
	return &DropTailQueue{cap: capacity}
}

// Push appends p if it fits.
func (q *DropTailQueue) Push(p *packet.Packet) bool {
	n := p.Size()
	if q.bytes+n > q.cap {
		return false
	}
	q.pkts = append(q.pkts, p)
	q.bytes += n
	return true
}

// Pop removes the head packet.
func (q *DropTailQueue) Pop() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size()
	// Reclaim the consumed prefix once it dominates the slice.
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		q.pkts = compact(q.pkts, q.head)
		q.head = 0
	}
	return p
}

// Len returns the queue length in packets.
func (q *DropTailQueue) Len() int { return len(q.pkts) - q.head }

// Bytes returns occupancy in bytes.
func (q *DropTailQueue) Bytes() units.ByteSize { return q.bytes }

// Cap returns the byte capacity.
func (q *DropTailQueue) Cap() units.ByteSize { return q.cap }

// Fits reports whether n more bytes fit.
func (q *DropTailQueue) Fits(n units.ByteSize) bool { return q.bytes+n <= q.cap }

// PeekAt returns the i-th next packet to pop without removing it.
func (q *DropTailQueue) PeekAt(i int) *packet.Packet {
	if i < 0 || q.head+i >= len(q.pkts) {
		return nil
	}
	return q.pkts[q.head+i]
}

// SortedQueue keeps packets ordered by ascending rank (Vertigo's RFS), with
// FIFO order among equal ranks. Pop returns the minimum-rank packet; the
// tail (maximum rank, youngest among ties) can be inspected and extracted,
// which is the PIEO extension Vertigo's overflow handling requires.
//
// The backing store is a sorted slice: datacenter ports hold at most a few
// hundred frames (300 KB / 1500 B = 200), so binary-search insertion with a
// memmove beats pointer-chasing tree structures at this scale. Pop advances a
// head index instead of shifting the whole slice (the same deferred-
// compaction scheme DropTailQueue uses), and the freed slot in front of the
// head is reused when an insertion lands there.
type SortedQueue struct {
	pkts []*packet.Packet
	// ranks mirrors pkts in lockstep: ranks[i] == pkts[i].Rank(). The rank
	// of a queued packet never changes, and keeping the sort keys in a
	// contiguous uint32 array lets the binary search and tail comparisons
	// run over cache lines instead of chasing a packet pointer per probe.
	ranks []uint32
	head  int
	bytes units.ByteSize
	cap   units.ByteSize
	// evScratch backs ForceInsert's eviction list, reused across calls so
	// the overflow path does not allocate per packet.
	evScratch []*packet.Packet
}

// NewSorted returns an empty rank-sorted queue with the given byte capacity.
func NewSorted(capacity units.ByteSize) *SortedQueue {
	return &SortedQueue{cap: capacity}
}

// insertionPoint returns the index (into q.pkts, so >= q.head) where a packet
// with the given rank is inserted: after all packets with rank <= r (FIFO
// among equals). The binary search is written out so the comparison inlines
// instead of going through a sort.Search closure.
func (q *SortedQueue) insertionPoint(r uint32) int {
	lo, hi := q.head, len(q.ranks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.ranks[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Push inserts p by rank if it fits.
func (q *SortedQueue) Push(p *packet.Packet) bool {
	n := p.Size()
	if q.bytes+n > q.cap {
		return false
	}
	q.insert(p)
	return true
}

func (q *SortedQueue) insert(p *packet.Packet) {
	r := p.Rank()
	// Tail fast path: a rank at or above the current maximum appends without
	// searching or shifting (FIFO among equals puts the newcomer last). This
	// is the common case — SRPT ranks grow as flows age, so steady arrivals
	// land at the tail.
	if n := len(q.pkts); n > q.head && q.ranks[n-1] <= r {
		q.pkts = append(q.pkts, p)
		q.ranks = append(q.ranks, r)
		q.bytes += p.Size()
		return
	}
	i := q.insertionPoint(r)
	if i == q.head && q.head > 0 {
		// New minimum: reuse the slot Pop just vacated instead of shifting.
		q.head--
		q.pkts[q.head] = p
		q.ranks[q.head] = r
	} else {
		q.pkts = append(q.pkts, nil)
		copy(q.pkts[i+1:], q.pkts[i:])
		q.pkts[i] = p
		q.ranks = append(q.ranks, 0)
		copy(q.ranks[i+1:], q.ranks[i:])
		q.ranks[i] = r
	}
	q.bytes += p.Size()
}

// Pop removes and returns the minimum-rank packet.
func (q *SortedQueue) Pop() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	q.bytes -= p.Size()
	// Reclaim the consumed prefix once it dominates the slice.
	if q.head > 64 && q.head*2 >= len(q.pkts) {
		q.pkts = compact(q.pkts, q.head)
		q.ranks = compact(q.ranks, q.head)
		q.head = 0
	}
	return p
}

// Tail returns the maximum-rank packet without removing it, or nil.
// Among equal maximal ranks the youngest (most recently inserted) packet is
// the tail, so repeated tail extraction under overflow evicts the packets
// that arrived during the burst first.
func (q *SortedQueue) Tail() *packet.Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	return q.pkts[len(q.pkts)-1]
}

// ExtractTail removes and returns the maximum-rank packet, or nil.
func (q *SortedQueue) ExtractTail() *packet.Packet {
	n := len(q.pkts)
	if q.head >= n {
		return nil
	}
	p := q.pkts[n-1]
	q.pkts[n-1] = nil
	q.pkts = q.pkts[:n-1]
	q.ranks = q.ranks[:n-1]
	q.bytes -= p.Size()
	return p
}

// ForceInsert inserts p by rank regardless of capacity, then evicts tail
// packets until occupancy is within capacity again. It returns the evicted
// packets (possibly including p itself, when p carries the largest rank).
// This implements the paper's "insert and drop from the tail" overflow rule.
// The returned slice is owned by the queue and is valid only until the next
// ForceInsert on the same queue.
func (q *SortedQueue) ForceInsert(p *packet.Packet) []*packet.Packet {
	q.insert(p)
	evicted := q.evScratch[:0]
	for q.bytes > q.cap {
		evicted = append(evicted, q.ExtractTail())
	}
	q.evScratch = evicted
	return evicted
}

// Len returns the queue length in packets.
func (q *SortedQueue) Len() int { return len(q.pkts) - q.head }

// Bytes returns occupancy in bytes.
func (q *SortedQueue) Bytes() units.ByteSize { return q.bytes }

// Cap returns the byte capacity.
func (q *SortedQueue) Cap() units.ByteSize { return q.cap }

// Fits reports whether n more bytes fit.
func (q *SortedQueue) Fits(n units.ByteSize) bool { return q.bytes+n <= q.cap }

// PeekAt returns the i-th next packet to pop (ascending rank, FIFO among
// equals) without removing it. Sorted order is pop order, so this is a
// direct index off the head.
func (q *SortedQueue) PeekAt(i int) *packet.Packet {
	if i < 0 || q.head+i >= len(q.pkts) {
		return nil
	}
	return q.pkts[q.head+i]
}

// MaxRankAt returns the rank of the i-th next packet to pop; it is the
// planning-time upper bound train coalescing uses to decide whether a later
// insertion can preempt a planned segment.
func (q *SortedQueue) MaxRankAt(i int) uint32 {
	return q.ranks[q.head+i]
}
