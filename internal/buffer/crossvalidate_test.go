package buffer

import (
	"math/rand"
	"testing"

	"vertigo/internal/packet"
	"vertigo/internal/pieo"
)

// TestSortedQueueMatchesPIEO cross-validates the fabric's SortedQueue
// against the independent PIEO implementation: driven by the same random
// operation sequence, both must release identical rank sequences. Two
// implementations agreeing under random interleavings of insert, pop-min
// and extract-tail is strong evidence neither has an ordering bug.
func TestSortedQueueMatchesPIEO(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sq := NewSorted(1 << 30)
		pl := pieo.NewList[*packet.Packet](256)
		live := 0
		for op := 0; op < 2000; op++ {
			switch r := rng.Intn(4); {
			case r <= 1 || live == 0: // insert (biased so queues stay busy)
				p := &packet.Packet{
					Kind: packet.Data, Marked: true,
					PayloadLen: 100,
					Info:       packet.FlowInfo{RFS: uint32(rng.Intn(50))}, // ties likely
				}
				p.ID = uint64(op + 1)
				sq.Push(p)
				pl.Insert(pieo.Item[*packet.Packet]{Value: p, Rank: p.Info.RFS})
				live++
			case r == 2: // pop min
				a := sq.Pop()
				b, ok := pl.ExtractMin(0)
				if a == nil || !ok {
					t.Fatalf("trial %d op %d: pop disagreement (nil=%v ok=%v)", trial, op, a == nil, ok)
				}
				if a.Info.RFS != b.Rank || a.ID != b.Value.ID {
					t.Fatalf("trial %d op %d: pop-min mismatch: sorted(%d,#%d) pieo(%d,#%d)",
						trial, op, a.Info.RFS, a.ID, b.Rank, b.Value.ID)
				}
				live--
			default: // extract tail
				a := sq.ExtractTail()
				b, ok := pl.ExtractTail()
				if a == nil || !ok {
					t.Fatalf("trial %d op %d: tail disagreement", trial, op)
				}
				if a.Info.RFS != b.Rank || a.ID != b.Value.ID {
					t.Fatalf("trial %d op %d: tail mismatch: sorted(%d,#%d) pieo(%d,#%d)",
						trial, op, a.Info.RFS, a.ID, b.Rank, b.Value.ID)
				}
				live--
			}
			if sq.Len() != pl.Len() {
				t.Fatalf("trial %d op %d: length mismatch %d vs %d", trial, op, sq.Len(), pl.Len())
			}
		}
	}
}
