package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vertigo/internal/units"
)

func TestEventsFireInOrder(t *testing.T) {
	eng := NewEngine(1)
	var got []units.Time
	for _, d := range []units.Time{50, 10, 30, 20, 40} {
		d := d
		eng.At(d, func() { got = append(got, d) })
	}
	eng.Run(units.Second)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		eng.At(42, func() { got = append(got, i) })
	}
	eng.Run(units.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order violated at %d: %v", i, got[:i+1])
		}
	}
}

func TestNowAdvances(t *testing.T) {
	eng := NewEngine(1)
	var at units.Time
	eng.At(100, func() { at = eng.Now() })
	end := eng.Run(500)
	if at != 100 {
		t.Fatalf("event saw Now()=%v, want 100", at)
	}
	if end != 500 {
		t.Fatalf("Run returned %v, want 500 (advance to deadline)", end)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.At(100, func() { fired++ })
	eng.At(200, func() { fired++ })
	eng.Run(150)
	if fired != 1 {
		t.Fatalf("fired %d events before deadline 150, want 1", fired)
	}
	if eng.Pending() != 1 {
		t.Fatalf("pending %d, want 1", eng.Pending())
	}
	eng.Run(300)
	if fired != 2 {
		t.Fatalf("fired %d after resume, want 2", fired)
	}
}

func TestSchedulingDuringEvent(t *testing.T) {
	eng := NewEngine(1)
	var got []units.Time
	eng.At(10, func() {
		got = append(got, eng.Now())
		eng.After(5, func() { got = append(got, eng.Now()) })
		eng.At(eng.Now(), func() { got = append(got, eng.Now()) }) // same instant
	})
	eng.Run(units.Second)
	want := []units.Time{10, 10, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	eng := NewEngine(1)
	eng.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(50, func() {})
	})
	eng.Run(units.Second)
}

func TestTimerCancel(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	tm := eng.At(100, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after scheduling")
	}
	if !tm.Cancel() {
		t.Fatal("first cancel reported not-pending")
	}
	if tm.Cancel() {
		t.Fatal("second cancel reported pending")
	}
	eng.Run(units.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelInsideEarlierEvent(t *testing.T) {
	eng := NewEngine(1)
	fired := false
	var tm Timer
	eng.At(10, func() { tm.Cancel() })
	tm = eng.At(20, func() { fired = true })
	eng.Run(units.Second)
	if fired {
		t.Fatal("timer fired despite cancellation at t=10")
	}
}

func TestZeroTimerSafe(t *testing.T) {
	var tm Timer
	if tm.Cancel() {
		t.Error("zero timer reported pending on Cancel")
	}
	if tm.Pending() {
		t.Error("zero timer reported Pending")
	}
	if tm.At() != 0 {
		t.Errorf("zero timer At() = %v, want 0", tm.At())
	}
}

func TestTimerAtAfterFire(t *testing.T) {
	eng := NewEngine(1)
	tm := eng.At(100, func() {})
	if tm.At() != 100 {
		t.Fatalf("At() = %v before firing, want 100", tm.At())
	}
	eng.Run(units.Second)
	// The event has fired and may have been recycled for another timer:
	// the stale handle must report an inert state, not the new tenant's.
	if tm.At() != 0 || tm.Pending() || tm.Cancel() {
		t.Fatalf("fired timer not inert: At=%v Pending=%v", tm.At(), tm.Pending())
	}
}

// TestRecycledEventDoesNotConfuseStaleTimer pins the generation check: a
// timer held across its event's recycling must not cancel the event's next
// incarnation.
func TestRecycledEventDoesNotConfuseStaleTimer(t *testing.T) {
	eng := NewEngine(1)
	var stale Timer
	fired := false
	stale = eng.At(10, func() {})
	eng.Run(20)
	// The event backing stale is now on the free list; this At reuses it.
	eng.At(30, func() { fired = true })
	if stale.Cancel() {
		t.Fatal("stale timer cancelled a recycled event")
	}
	eng.Run(units.Second)
	if !fired {
		t.Fatal("recycled event did not fire (stale handle interfered)")
	}
}

// TestEngineReusesEvents pins the free list: steady-state schedule/fire
// cycles must not allocate.
func TestEngineReusesEvents(t *testing.T) {
	eng := NewEngine(1)
	fn := func() {}
	// Warm up the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		eng.After(units.Time(i), fn)
	}
	eng.Run(1 << 20)
	avg := testing.AllocsPerRun(200, func() {
		eng.After(100, fn)
		eng.Run(eng.Now() + 200)
	})
	if avg > 0 {
		t.Fatalf("schedule/fire allocates %.2f per event, want 0", avg)
	}
}

func TestStop(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	eng.At(10, func() { fired++; eng.Stop() })
	eng.At(20, func() { fired++ })
	eng.Run(units.Second)
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (Stop should halt the loop)", fired)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := NewEngine(7), NewEngine(7)
	for i := 0; i < 1000; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

// Property: any set of scheduled times fires in sorted order.
func TestPropertyFiringOrderSorted(t *testing.T) {
	f := func(delays []uint16) bool {
		eng := NewEngine(3)
		var got []units.Time
		for _, d := range delays {
			d := units.Time(d)
			eng.At(d, func() { got = append(got, d) })
		}
		eng.Run(units.Time(1 << 20))
		if len(got) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestPropertyCancelSubset(t *testing.T) {
	f := func(delays []uint16, seed int64) bool {
		eng := NewEngine(5)
		rng := rand.New(rand.NewSource(seed))
		fired := make(map[int]bool)
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = eng.At(units.Time(d), func() { fired[i] = true })
		}
		cancelled := make(map[int]bool)
		for i := range timers {
			if rng.Intn(2) == 0 {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		eng.Run(units.Time(1 << 20))
		for i := range delays {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPendingExcludesCancelled pins the live-event counter: with lazy
// cancellation the tombstones stay in the heap, but Pending, PeakPending and
// the progress lines built on them must keep reporting real pending work.
func TestPendingExcludesCancelled(t *testing.T) {
	eng := NewEngine(1)
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = eng.At(units.Time(100+i), func() {})
	}
	if eng.Pending() != 10 {
		t.Fatalf("Pending() = %d after scheduling 10, want 10", eng.Pending())
	}
	for i := 0; i < 4; i++ {
		if !timers[i].Cancel() {
			t.Fatalf("cancel %d reported not-pending", i)
		}
	}
	if eng.Pending() != 6 {
		t.Fatalf("Pending() = %d after 4 cancels, want 6", eng.Pending())
	}
	eng.Run(units.Second)
	if eng.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", eng.Pending())
	}
	st := eng.Stats()
	if st.Events != 6 {
		t.Fatalf("Events = %d, want 6", st.Events)
	}
	if st.TombstonedPops != 4 {
		t.Fatalf("TombstonedPops = %d, want 4", st.TombstonedPops)
	}
	if st.PeakPending != 10 {
		t.Fatalf("PeakPending = %d, want 10", st.PeakPending)
	}
}

// TestCancelDuringOwnHandler pins the pre-rewrite semantics: by the time a
// handler runs, its own timer is already inert, so cancelling it reports
// false and does not disturb the (already recycled) frame.
func TestCancelDuringOwnHandler(t *testing.T) {
	eng := NewEngine(1)
	var tm Timer
	cancelled := true
	tm = eng.At(10, func() { cancelled = tm.Cancel() })
	eng.Run(units.Second)
	if cancelled {
		t.Fatal("cancelling a timer inside its own handler reported pending")
	}
}

// TestCancelledTimerInert pins the observable state of a lazily-cancelled
// timer while its tombstone is still sitting in the heap.
func TestCancelledTimerInert(t *testing.T) {
	eng := NewEngine(1)
	tm := eng.At(100, func() { t.Error("cancelled event fired") })
	tm.Cancel()
	// Tombstone not yet reaped: the handle must already read as dead.
	if tm.Pending() {
		t.Fatal("cancelled timer still Pending")
	}
	if tm.At() != 0 {
		t.Fatalf("cancelled timer At() = %v, want 0", tm.At())
	}
	if tm.Cancel() {
		t.Fatal("second cancel reported pending")
	}
	eng.Run(units.Second)
}

// TestSchedOrderingMatchesAt pins that Sched events share the (time, seq)
// tie-break sequence with At events: interleaved same-instant events fire in
// call order regardless of which API scheduled them.
func TestSchedOrderingMatchesAt(t *testing.T) {
	eng := NewEngine(1)
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		if i%2 == 0 {
			eng.Sched(42, func() { got = append(got, i) })
		} else {
			eng.At(42, func() { got = append(got, i) })
		}
	}
	eng.Run(units.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order violated at %d: %v", i, got[:i+1])
		}
	}
	if len(got) != 20 {
		t.Fatalf("fired %d events, want 20", len(got))
	}
}

// TestSchedChainReusesFrame pins the self-rescheduling fast path: a Sched
// handler rescheduling itself reuses its own frame, so a long chain touches
// neither the allocator nor the free list.
func TestSchedChainReusesFrame(t *testing.T) {
	eng := NewEngine(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < 1000 {
			eng.SchedAfter(10, tick)
		}
	}
	eng.Sched(0, tick)
	eng.Run(units.Second)
	if fired != 1000 {
		t.Fatalf("fired %d, want 1000", fired)
	}
	st := eng.Stats()
	if st.Scheduled != 1000 {
		t.Fatalf("Scheduled = %d, want 1000", st.Scheduled)
	}
	// Only the first Sched allocated a frame; 999 reschedules rode it in
	// place without a free-list round trip.
	if st.FreeListHits != 0 {
		t.Fatalf("FreeListHits = %d, want 0 (chain must bypass the free list)", st.FreeListHits)
	}
}

func TestSchedPastPanics(t *testing.T) {
	eng := NewEngine(1)
	eng.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("Sched in the past did not panic")
			}
		}()
		eng.Sched(50, func() {})
	})
	eng.Run(units.Second)
}

// TestStaleTimerAfterChainReuse pins gen safety across the chain fast path:
// a frame that once backed a Timer and is later recycled into a Sched chain
// must stay invisible to the stale handle for the chain's whole lifetime.
func TestStaleTimerAfterChainReuse(t *testing.T) {
	eng := NewEngine(1)
	stale := eng.At(10, func() {})
	eng.Run(20) // fires; frame now on the free list with gen bumped
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if stale.Cancel() || stale.Pending() || stale.At() != 0 {
			t.Fatal("stale timer observed a chained frame")
		}
		if hops < 10 {
			eng.SchedAfter(5, hop)
		}
	}
	eng.Sched(30, hop) // reuses the recycled frame from the free list
	eng.Run(units.Second)
	if hops != 10 {
		t.Fatalf("chain fired %d hops, want 10", hops)
	}
}

// TestCancelPathZeroAllocs pins the full schedule/cancel/reap cycle at zero
// allocations once the free list is warm.
func TestCancelPathZeroAllocs(t *testing.T) {
	eng := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(units.Time(i), fn)
	}
	eng.Run(1 << 20)
	avg := testing.AllocsPerRun(200, func() {
		tm := eng.After(50, fn)
		eng.After(100, fn)
		tm.Cancel()
		eng.Run(eng.Now() + 200)
	})
	if avg > 0 {
		t.Fatalf("schedule/cancel/fire allocates %.2f per cycle, want 0", avg)
	}
}

func TestEventCount(t *testing.T) {
	eng := NewEngine(1)
	for i := 0; i < 10; i++ {
		eng.At(units.Time(i), func() {})
	}
	eng.Run(units.Second)
	if eng.Events() != 10 {
		t.Fatalf("Events() = %d, want 10", eng.Events())
	}
}

func TestEngineStats(t *testing.T) {
	eng := NewEngine(1)
	// First wave: 10 fresh events, nothing recycled yet.
	for i := 0; i < 10; i++ {
		eng.At(units.Time(i), func() {})
	}
	eng.Run(units.Second)
	st := eng.Stats()
	if st.Events != 10 || st.Scheduled != 10 {
		t.Fatalf("after first wave: %+v", st)
	}
	if st.FreeListHits != 0 {
		t.Fatalf("fresh events reported free-list hits: %+v", st)
	}
	if st.PeakPending != 10 {
		t.Fatalf("peak pending %d, want 10", st.PeakPending)
	}
	// Second wave: 5 events, all served from the recycled 10.
	for i := 0; i < 5; i++ {
		eng.After(units.Time(i), func() {})
	}
	eng.Run(2 * units.Second)
	st = eng.Stats()
	if st.Events != 15 || st.Scheduled != 15 || st.FreeListHits != 5 {
		t.Fatalf("after second wave: %+v", st)
	}
	if st.PeakPending != 10 {
		t.Fatalf("peak pending %d, want 10 (second wave was smaller)", st.PeakPending)
	}
	if got := st.FreeListHitRate(); got != 5.0/15.0 {
		t.Fatalf("hit rate %v, want 1/3", got)
	}
}

func TestEngineStatsZero(t *testing.T) {
	var st EngineStats
	if st.FreeListHitRate() != 0 {
		t.Fatal("zero stats hit rate not 0")
	}
	if got := NewEngine(1).Stats(); got != (EngineStats{}) {
		t.Fatalf("fresh engine stats %+v, want zeros", got)
	}
}
