// Package sim implements the discrete-event simulation engine that drives
// every experiment in this repository. The engine is single-threaded and
// fully deterministic: events scheduled for the same instant fire in the
// order they were scheduled, and all randomness flows from one seeded
// source, so a (config, seed) pair always produces identical results.
//
// The scheduler is a calendar queue over recycled *event frames, ordered by
// (time, seq): a ring of fixed-width time buckets absorbs the near-future
// events that dominate a packet simulation (serialization, propagation and
// host-processing delays, all within tens of microseconds), making schedule
// and fire O(1) appends and short bucket scans instead of log-depth sift
// walks. Events beyond the ring's span — retransmit timers, sampler ticks —
// park in a hand-rolled 4-ary min-heap and migrate into the ring as the
// cursor approaches them. Every extraction selects the minimum (at, seq)
// key, so fire order is the same total order the heap produced and
// replacing the structure cannot perturb a run.
// Cancellation is lazy: Timer.Cancel tombstones the frame in place and the
// scheduler reaps it when its bucket is scanned (or sweeps the overflow
// heap once tombstones dominate), so the cancel path — which TCP
// retransmit timers hit on every ACK — is O(1).
package sim

import (
	"math/rand"
	"time"

	"vertigo/internal/obs"
	"vertigo/internal/units"
)

// Handler is a callback invoked when an event fires.
type Handler func()

// event is a scheduled callback. Events are recycled through the engine's
// free list once fired or reaped; gen distinguishes incarnations so that
// a Timer held across its event's recycling can never act on the new tenant.
// A tombstoned (dead) event stays in the heap until it surfaces at the root,
// where Run discards it without firing.
type event struct {
	at       units.Time
	seq      uint64 // schedule order, breaks timestamp ties deterministically
	fn       Handler
	gen      uint64     // incarnation counter, bumped on recycle
	schedAt  units.Time // sim time the event was scheduled, see CurSchedAt
	schedCtx units.Time // schedAt of the event that scheduled this one, see CurSchedCtx
	dead     bool       // tombstone: cancelled, reaped lazily at pop
	chain    bool       // fire-and-forget (Sched): frame may self-reschedule in place
}

// heapNode is one calendar/heap slot: the (at, seq) sort key inlined next
// to the frame pointer, so bucket scans and sift comparisons read
// consecutive memory instead of dereferencing a scattered *event per probe.
type heapNode struct {
	at  units.Time
	seq uint64
	ev  *event
}

// Calendar geometry. Bucket width is tuned to the simulator's event
// density (about one event per 6ns of simulated time in the leaf-spine
// benchmark scenario): 32ns buckets hold a handful of events each, and
// 2048 of them span 64µs — comfortably past every per-packet delay, so
// only long-deadline timers take the overflow-heap detour.
const (
	bucketShift = 5            // log2 bucket width in ns
	nBuckets    = 1 << 11      // ring size (power of two)
	ringMask    = nBuckets - 1 // bucket index mask
)

// Engine is a discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	// ring is the calendar: bucket i holds pending events whose bucket
	// number (at >> bucketShift) is congruent to i mod nBuckets. Buckets
	// are unordered — extraction scans the cursor's bucket for the
	// minimum (at, seq) — and may contain tombstones, which the scan
	// reaps, and far-wrap nodes (bucket number beyond the cursor's lap),
	// which it skips.
	ring    [][]heapNode
	ringCnt int   // nodes currently in the ring, tombstones included
	curB    int64 // cursor: no live node's bucket number is below curB
	// overflow is a 4-ary min-heap on (at, seq) holding events scheduled
	// at least a full ring span past the cursor; migrate moves them into
	// the ring as the cursor approaches.
	overflow    []heapNode
	now         units.Time
	curSched    units.Time // schedule time of the currently-firing event
	curSchedCtx units.Time // schedule time of the event that scheduled the firing one
	seq         uint64
	seed        int64
	rng         *rand.Rand
	stopped     bool
	fired       uint64
	live        int      // scheduled minus tombstoned: the real pending work
	free        []*event // recycled events: At/After/Sched allocate from here
	cur         *event   // firing chainable frame, reusable in place by Sched

	// Self-instrumentation (see Stats).
	freeHits    uint64 // alloc calls served from the free list
	tombPops    uint64 // tombstoned events reaped at scan or sweep
	sweeps      uint64 // amortized tombstone sweeps triggered by Cancel
	peakPending int    // high-water mark of live scheduled events

	// Wall-clock watchdog (see SetWallDeadline).
	wallDeadline time.Time
	deadlineHit  bool

	// Event-budget cap (see SetMaxEvents).
	maxEvents    uint64
	maxEventsHit bool

	// Introspection plane (see internal/obs). pub* shadow the counters
	// above at their last publish into the process-global registry, so the
	// throttled publish pushes deltas instead of re-reading totals.
	pubFired    uint64
	pubSeq      uint64
	pubTombPops uint64
	pubSweeps   uint64
	pubLive     int
	flight      *obs.FlightRecorder // crash flight recorder, nil when disabled
}

// bucketCap is each ring bucket's preallocated capacity. Carving all
// buckets from one backing array up front keeps steady-state scheduling
// allocation-free from the first event; a bucket that outgrows its slice
// reallocates independently and keeps the larger capacity.
const bucketCap = 4

// NewEngine returns an engine whose randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	ring := make([][]heapNode, nBuckets)
	backing := make([]heapNode, nBuckets*bucketCap)
	for i := range ring {
		ring[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return &Engine{seed: seed, rng: rand.New(rand.NewSource(seed)), ring: ring}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Seed returns the seed the engine was built with. Components that keep
// private positional random streams (per-port jitter, see internal/xrand)
// derive their stream seeds from it so a (config, seed) pair still pins
// every draw in the simulation.
func (e *Engine) Seed() int64 { return e.seed }

// CurSchedAt returns the simulated time at which the currently-firing event
// was scheduled (0 outside Run). Because the sequence counter increases
// monotonically through simulated time, an event scheduled at an earlier
// instant always carries a lower tie-break seq: comparing schedule times
// decides which of two events firing at the same instant runs first, except
// when both were scheduled within the same instant. Lazy components use this
// to replay the exact fire order their per-event counterparts would have had.
func (e *Engine) CurSchedAt() units.Time { return e.curSched }

// CurSchedCtx returns the schedule time of the event that scheduled the
// currently-firing event (0 outside Run or for events scheduled during
// setup). It resolves one more level of the tie CurSchedAt leaves open: when
// two events firing at the same instant were also scheduled at the same
// instant, their relative seq order is decided by which of their *parent*
// events ran first within that instant — and parents, firing at one instant,
// are themselves ordered by schedule time. Lazy components compare
// (CurSchedAt, CurSchedCtx) lexicographically to replay per-event fire order
// through two levels of same-instant scheduling.
func (e *Engine) CurSchedCtx() units.Time { return e.curSchedCtx }

// Rand returns the engine's deterministic random source. All simulation
// components must draw randomness from here and nowhere else.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of events currently scheduled and not
// cancelled. Tombstoned events still sitting in the heap are not counted.
func (e *Engine) Pending() int { return e.live }

// alloc takes an event off the free list, or makes a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.freeHits++
		return ev
	}
	return &event{}
}

// recycle returns a fired or reaped event to the free list. Bumping gen
// invalidates every Timer still pointing at the event.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.dead = false
	e.free = append(e.free, ev)
}

// pushOverflow inserts nd into the 4-ary overflow heap, sifting it up with
// inlined (at, seq) comparisons. seq values are unique, so ties cannot
// occur and strict comparisons suffice.
func (e *Engine) pushOverflow(nd heapNode) {
	at, seq := nd.at, nd.seq
	h := append(e.overflow, heapNode{})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		pn := h[p]
		if pn.at < at || (pn.at == at && pn.seq < seq) {
			break
		}
		h[i] = pn
		i = p
	}
	h[i] = nd
	e.overflow = h
}

// siftDown places node nd at index i of h[:n], sifting it down through the
// at-most-four children per level with inlined (at, seq) comparisons over
// the contiguous node array.
func siftDown(h []heapNode, nd heapNode, i, n int) {
	at, seq := nd.at, nd.seq
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		mAt, mSeq := h[c].at, h[c].seq
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if h[j].at < mAt || (h[j].at == mAt && h[j].seq < mSeq) {
				m, mAt, mSeq = j, h[j].at, h[j].seq
			}
		}
		if at < mAt || (at == mAt && seq < mSeq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = nd
}

// popOverflow removes and returns the minimum (at, seq) overflow node.
func (e *Engine) popOverflow() heapNode {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = heapNode{}
	h = h[:n]
	if n > 0 {
		siftDown(h, last, 0, n)
	}
	e.overflow = h
	return top
}

// migrate moves overflow events into the ring as long as their bucket lies
// within a ring span of the cursor. Called whenever the cursor advances, so
// the overflow invariant (bucket >= curB + nBuckets) holds between calls
// and the ring always contains the global minimum when it is non-empty.
func (e *Engine) migrate() {
	for len(e.overflow) > 0 && int64(e.overflow[0].at)>>bucketShift < e.curB+nBuckets {
		nd := e.popOverflow()
		s := (int64(nd.at) >> bucketShift) & ringMask
		e.ring[s] = append(e.ring[s], nd)
		e.ringCnt++
	}
}

// sweep filters every tombstone out of the overflow heap and the ring,
// recycles the frames, and re-heapifies the overflow survivors in place.
// Cancel triggers it once tombstones outnumber live events, so the cost is
// O(n) but amortized O(1) per cancel; without it, long-deadline timers
// re-armed at high rate (TCP RTOs reset on every ACK) would pile dead
// frames up in the overflow heap until their deadlines pass. Removal
// cannot change fire order: extraction selects by the (at, seq) total
// order, never by position.
func (e *Engine) sweep() {
	h := e.overflow
	kept := h[:0]
	for _, nd := range h {
		if nd.ev.dead {
			e.tombPops++
			e.recycle(nd.ev)
		} else {
			kept = append(kept, nd)
		}
	}
	for i := len(kept); i < len(h); i++ {
		h[i] = heapNode{}
	}
	n := len(kept)
	for i := (n - 2) >> 2; i >= 0; i-- {
		siftDown(kept, kept[i], i, n)
	}
	e.overflow = kept
	for s, b := range e.ring {
		kb := b[:0]
		for _, nd := range b {
			if nd.ev.dead {
				e.tombPops++
				e.recycle(nd.ev)
				e.ringCnt--
			} else {
				kb = append(kb, nd)
			}
		}
		for i := len(kb); i < len(b); i++ {
			b[i] = heapNode{}
		}
		e.ring[s] = kb
	}
	e.sweeps++
}

// schedule allocates (or reuses) a frame for (t, fn) and pushes it.
func (e *Engine) schedule(t units.Time, fn Handler, chain bool) *event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	var ev *event
	if chain && e.cur != nil {
		// Self-rescheduling fast path: the firing fire-and-forget frame is
		// reused in place, skipping the free-list round trip. No Timer can
		// reference a chainable frame, so gen need not move.
		ev = e.cur
		e.cur = nil
	} else {
		ev = e.alloc()
	}
	ev.at, ev.seq, ev.fn, ev.chain = t, e.seq, fn, chain
	ev.schedAt = e.now
	ev.schedCtx = e.curSched
	e.seq++
	b := int64(t) >> bucketShift
	if b < e.curB {
		// Run can park the cursor past now when it stops short of the next
		// event; a schedule landing between now and the cursor rewinds it.
		// Nodes already in the ring keep working — the scan skips buckets
		// whose lap the cursor has not reached.
		e.curB = b
	}
	if b-e.curB < nBuckets {
		s := b & ringMask
		e.ring[s] = append(e.ring[s], heapNode{at: t, seq: ev.seq, ev: ev})
		e.ringCnt++
	} else {
		e.pushOverflow(heapNode{at: t, seq: ev.seq, ev: ev})
	}
	e.live++
	if e.live > e.peakPending {
		e.peakPending = e.live
	}
	return ev
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug rather than a recoverable condition.
func (e *Engine) At(t units.Time, fn Handler) Timer {
	ev := e.schedule(t, fn, false)
	return Timer{engine: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Handler) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Sched schedules fn to run at absolute time t with no Timer handle: the
// event cannot be cancelled or observed. Ordering is identical to At — the
// same (time, seq) tie-break, drawn from the same sequence counter. When
// called from inside a handler that was itself scheduled by Sched, the
// firing event's frame is reused in place, so a saturated transmit chain
// rides a single self-rescheduling event. Like At, scheduling in the past
// panics.
func (e *Engine) Sched(t units.Time, fn Handler) {
	e.schedule(t, fn, true)
}

// SchedAfter schedules fn to run d after the current time; see Sched.
func (e *Engine) SchedAfter(d units.Time, fn Handler) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, fn, true)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetWallDeadline arms a wall-clock watchdog: Run aborts (as if Stop were
// called) once real time exceeds now+d, and DeadlineExceeded reports true.
// The check runs every few thousand events, so determinism of the executed
// prefix is unaffected — only where the run is truncated depends on the
// wall clock, and callers treat truncation as a failure, never as a result.
// A non-positive d disarms the watchdog.
func (e *Engine) SetWallDeadline(d time.Duration) {
	if d <= 0 {
		e.wallDeadline = time.Time{}
		return
	}
	e.wallDeadline = time.Now().Add(d)
}

// DeadlineExceeded reports whether a Run was aborted by the wall-clock
// watchdog armed with SetWallDeadline.
func (e *Engine) DeadlineExceeded() bool { return e.deadlineHit }

// SetMaxEvents arms an event-budget cap: Run aborts once at least n events
// have fired. Unlike the wall-clock watchdog the cap is a pure function of
// the event count, so where a capped run is truncated is deterministic —
// a runaway scenario aborts at the same event on every machine. The check
// shares the watchdog's once-per-16Ki-events cadence, so the abort lands on
// the first check at or past n, never mid-stride through the hot loop.
// Zero disarms the cap. Callers treat a capped run as a failure, never as
// a result.
func (e *Engine) SetMaxEvents(n uint64) {
	e.maxEvents = n
}

// MaxEventsExceeded reports whether a Run was aborted by the event-budget
// cap armed with SetMaxEvents.
func (e *Engine) MaxEventsExceeded() bool { return e.maxEventsHit }

// wallCheckMask throttles the watchdog to one clock read per 16 Ki events.
const wallCheckMask = 1<<14 - 1

// Run executes events in order until the queue is empty, until Stop is
// called, until the wall-clock watchdog fires, or until the next event would
// fire after the until deadline. It returns the time at which the run ended.
func (e *Engine) Run(until units.Time) units.Time {
	e.stopped = false
	watchdog := !e.wallDeadline.IsZero()
	for !e.stopped {
		// Locate the minimum (at, seq) pending node: jump or advance the
		// cursor to the next populated bucket, then scan it. The scan also
		// reaps tombstones on the spot (live was already decremented when
		// Cancel tombstoned them) and skips far-wrap nodes — ones whose
		// bucket number maps to this slot on a later lap of the ring.
		var b []heapNode
		var s int64
		minI := -1
		var mAt units.Time
		var mSeq uint64
		for {
			if e.ringCnt == 0 {
				if len(e.overflow) == 0 {
					break
				}
				e.curB = int64(e.overflow[0].at) >> bucketShift
				e.migrate()
			}
			s = e.curB & ringMask
			b = e.ring[s]
			for i := 0; i < len(b); {
				nd := b[i]
				if nd.ev.dead {
					e.tombPops++
					e.recycle(nd.ev)
					n := len(b) - 1
					b[i] = b[n]
					b[n] = heapNode{}
					b = b[:n]
					e.ringCnt--
					continue
				}
				if int64(nd.at)>>bucketShift == e.curB &&
					(minI < 0 || nd.at < mAt || (nd.at == mAt && nd.seq < mSeq)) {
					minI, mAt, mSeq = i, nd.at, nd.seq
				}
				i++
			}
			e.ring[s] = b
			if minI >= 0 {
				break
			}
			e.curB++
			e.migrate()
		}
		if minI < 0 {
			break // nothing pending anywhere
		}
		if mAt > until {
			break
		}
		if e.fired&wallCheckMask == 0 {
			// Piggyback the registry publish on the watchdog cadence: one
			// batch of atomic adds per 16 Ki events keeps /metrics live
			// without putting atomic traffic on the per-event path.
			e.publishObs()
			if watchdog && time.Now().After(e.wallDeadline) {
				e.deadlineHit = true
				e.flight.Record(obs.FlightWatchdog, int64(e.now), int64(e.fired), 0, 0)
				e.stopped = true
				break
			}
			if e.maxEvents > 0 && e.fired >= e.maxEvents {
				e.maxEventsHit = true
				e.flight.Record(obs.FlightWatchdog, int64(e.now), int64(e.fired), int64(e.maxEvents), 0)
				e.stopped = true
				break
			}
		}
		ev := b[minI].ev
		n := len(b) - 1
		b[minI] = b[n]
		b[n] = heapNode{}
		e.ring[s] = b[:n]
		e.ringCnt--
		e.live--
		e.now = mAt
		e.curSched = ev.schedAt
		e.curSchedCtx = ev.schedCtx
		e.fired++
		if e.flight != nil {
			e.flight.Record(obs.FlightEvent, int64(mAt), int64(ev.schedAt), int64(e.live), int64(ev.seq))
		}
		fn := ev.fn
		if ev.chain {
			// Fire-and-forget frame: leave it parked in cur so the handler's
			// first Sched can rearm it in place. Recycling is deferred — no
			// Timer exists that could observe the frame mid-fire.
			e.cur = ev
			fn()
			if e.cur != nil { // handler did not reschedule the frame
				e.recycle(ev)
				e.cur = nil
			}
		} else {
			// Timer-backed event: recycle before firing so the handle is
			// already inert (and the frame reusable) inside its own handler.
			e.recycle(ev)
			fn()
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.publishObs() // runs shorter than the publish cadence still surface
	return e.now
}

// PeekTime returns the fire time of the next pending event without running
// it, and false when nothing is scheduled. The sharded runner's window
// barrier calls this between rounds to compute the global minimum next-event
// time. The scan mirrors Run's min-locate pass — it reaps tombstones and
// advances the bucket cursor, both of which Run would do anyway, so a
// subsequent Run observes exactly the state it would have reached itself.
func (e *Engine) PeekTime() (units.Time, bool) {
	minI := -1
	var mAt units.Time
	var mSeq uint64
	for {
		if e.ringCnt == 0 {
			if len(e.overflow) == 0 {
				break
			}
			e.curB = int64(e.overflow[0].at) >> bucketShift
			e.migrate()
		}
		s := e.curB & ringMask
		b := e.ring[s]
		for i := 0; i < len(b); {
			nd := b[i]
			if nd.ev.dead {
				e.tombPops++
				e.recycle(nd.ev)
				n := len(b) - 1
				b[i] = b[n]
				b[n] = heapNode{}
				b = b[:n]
				e.ringCnt--
				continue
			}
			if int64(nd.at)>>bucketShift == e.curB &&
				(minI < 0 || nd.at < mAt || (nd.at == mAt && nd.seq < mSeq)) {
				minI, mAt, mSeq = i, nd.at, nd.seq
			}
			i++
		}
		e.ring[s] = b
		if minI >= 0 {
			return mAt, true
		}
		e.curB++
		e.migrate()
	}
	return 0, false
}

// EngineStats snapshots the engine's self-instrumentation: how much work a
// run did and how well the event free list recycled. Events/sec derived from
// Events and wall time is the simulator's standing throughput signal.
type EngineStats struct {
	Events         uint64 `json:"events"`          // handlers fired
	Scheduled      uint64 `json:"scheduled"`       // events scheduled via At/After/Sched
	FreeListHits   uint64 `json:"free_list_hits"`  // scheduled events reusing a recycled frame
	TombstonedPops uint64 `json:"tombstoned_pops"` // lazily-cancelled events reaped at pop or sweep
	HeapSweeps     uint64 `json:"heap_sweeps"`     // amortized tombstone sweeps triggered by Cancel
	PeakPending    int    `json:"peak_pending"`    // high-water mark of live pending events
}

// FreeListHitRate returns the fraction of scheduled events that reused a
// recycled frame rather than allocating (0 when nothing was scheduled).
func (s EngineStats) FreeListHitRate() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.FreeListHits) / float64(s.Scheduled)
}

// Stats returns the engine's instrumentation counters. The sequence counter
// doubles as the scheduled-event count: it increments once per At/After/Sched.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Events:         e.fired,
		Scheduled:      e.seq,
		FreeListHits:   e.freeHits,
		TombstonedPops: e.tombPops,
		HeapSweeps:     e.sweeps,
		PeakPending:    e.peakPending,
	}
}

// Timer is a handle to a scheduled event that can be cancelled. Timers are
// values: the zero Timer is valid and behaves like one whose event already
// fired (Cancel and Pending report false, At reports 0).
type Timer struct {
	engine *Engine
	ev     *event
	gen    uint64
}

// valid reports whether the timer still refers to its own event (the event
// has not been recycled for a later scheduling).
func (t Timer) valid() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the event from firing. Cancelling a zero, already-fired or
// already-cancelled timer is a no-op. Reports whether the event was pending.
//
// Cancellation is lazy: the event is tombstoned in place and reaped when it
// reaches the heap root, so Cancel is O(1) — no re-sift, no bookkeeping on
// the path retransmit timers hit on every ACK.
func (t Timer) Cancel() bool {
	ev := t.ev
	if ev == nil || ev.gen != t.gen || ev.dead {
		return false
	}
	ev.dead = true
	e := t.engine
	e.live--
	// Amortized garbage bound: once tombstones outnumber live events, sweep
	// them out so cancel-heavy workloads cannot inflate the overflow heap or
	// starve the free list while waiting for dead deadlines to pass. (Ring
	// tombstones are also reaped eagerly when their bucket is scanned.)
	if n := e.ringCnt + len(e.overflow); n >= 64 && e.live < n-e.live {
		e.sweep()
	}
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.valid() && !t.ev.dead
}

// At returns the time the timer is scheduled to fire, or 0 for a zero Timer
// or one whose event has already fired or been cancelled.
func (t Timer) At() units.Time {
	if !t.valid() || t.ev.dead {
		return 0
	}
	return t.ev.at
}
