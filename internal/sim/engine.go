// Package sim implements the discrete-event simulation engine that drives
// every experiment in this repository. The engine is single-threaded and
// fully deterministic: events scheduled for the same instant fire in the
// order they were scheduled, and all randomness flows from one seeded
// source, so a (config, seed) pair always produces identical results.
package sim

import (
	"container/heap"
	"math/rand"
	"time"

	"vertigo/internal/units"
)

// Handler is a callback invoked when an event fires.
type Handler func()

// event is a scheduled callback. Events are recycled through the engine's
// free list once fired or cancelled; gen distinguishes incarnations so that
// a Timer held across its event's recycling can never act on the new tenant.
type event struct {
	at    units.Time
	seq   uint64 // schedule order, breaks timestamp ties deterministically
	fn    Handler
	index int    // heap index, -1 once popped
	gen   uint64 // incarnation counter, bumped on recycle
	dead  bool
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	heap    eventHeap
	now     units.Time
	seq     uint64
	rng     *rand.Rand
	stopped bool
	fired   uint64
	free    []*event // recycled events: At/After allocate from here

	// Self-instrumentation (see Stats).
	freeHits    uint64 // alloc calls served from the free list
	peakPending int    // high-water mark of the event heap

	// Wall-clock watchdog (see SetWallDeadline).
	wallDeadline time.Time
	deadlineHit  bool
}

// NewEngine returns an engine whose randomness is derived from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Rand returns the engine's deterministic random source. All simulation
// components must draw randomness from here and nowhere else.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// alloc takes an event off the free list, or makes a fresh one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		e.freeHits++
		return ev
	}
	return &event{}
}

// recycle returns a fired or cancelled event to the free list. Bumping gen
// invalidates every Timer still pointing at the event.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	ev.dead = false
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a modelling bug rather than a recoverable condition.
func (e *Engine) At(t units.Time, fn Handler) Timer {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.heap, ev)
	if len(e.heap) > e.peakPending {
		e.peakPending = len(e.heap)
	}
	return Timer{engine: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Handler) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetWallDeadline arms a wall-clock watchdog: Run aborts (as if Stop were
// called) once real time exceeds now+d, and DeadlineExceeded reports true.
// The check runs every few thousand events, so determinism of the executed
// prefix is unaffected — only where the run is truncated depends on the
// wall clock, and callers treat truncation as a failure, never as a result.
// A non-positive d disarms the watchdog.
func (e *Engine) SetWallDeadline(d time.Duration) {
	if d <= 0 {
		e.wallDeadline = time.Time{}
		return
	}
	e.wallDeadline = time.Now().Add(d)
}

// DeadlineExceeded reports whether a Run was aborted by the wall-clock
// watchdog armed with SetWallDeadline.
func (e *Engine) DeadlineExceeded() bool { return e.deadlineHit }

// wallCheckMask throttles the watchdog to one clock read per 16 Ki events.
const wallCheckMask = 1<<14 - 1

// Run executes events in order until the queue is empty, until Stop is
// called, until the wall-clock watchdog fires, or until the next event would
// fire after the until deadline. It returns the time at which the run ended.
func (e *Engine) Run(until units.Time) units.Time {
	e.stopped = false
	watchdog := !e.wallDeadline.IsZero()
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > until {
			break
		}
		if watchdog && e.fired&wallCheckMask == 0 && time.Now().After(e.wallDeadline) {
			e.deadlineHit = true
			e.stopped = true
			break
		}
		ev := heap.Pop(&e.heap).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// EngineStats snapshots the engine's self-instrumentation: how much work a
// run did and how well the event free list recycled. Events/sec derived from
// Events and wall time is the simulator's standing throughput signal.
type EngineStats struct {
	Events       uint64 `json:"events"`         // handlers fired
	Scheduled    uint64 `json:"scheduled"`      // events scheduled via At/After
	FreeListHits uint64 `json:"free_list_hits"` // scheduled events reusing a recycled frame
	PeakPending  int    `json:"peak_pending"`   // high-water mark of the event heap
}

// FreeListHitRate returns the fraction of scheduled events that reused a
// recycled frame rather than allocating (0 when nothing was scheduled).
func (s EngineStats) FreeListHitRate() float64 {
	if s.Scheduled == 0 {
		return 0
	}
	return float64(s.FreeListHits) / float64(s.Scheduled)
}

// Stats returns the engine's instrumentation counters. The sequence counter
// doubles as the scheduled-event count: it increments once per At/After.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Events:       e.fired,
		Scheduled:    e.seq,
		FreeListHits: e.freeHits,
		PeakPending:  e.peakPending,
	}
}

// Timer is a handle to a scheduled event that can be cancelled. Timers are
// values: the zero Timer is valid and behaves like one whose event already
// fired (Cancel and Pending report false, At reports 0).
type Timer struct {
	engine *Engine
	ev     *event
	gen    uint64
}

// valid reports whether the timer still refers to its own event (the event
// has not been recycled for a later scheduling).
func (t Timer) valid() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the event from firing. Cancelling a zero, already-fired or
// already-cancelled timer is a no-op. Reports whether the event was pending.
func (t Timer) Cancel() bool {
	if !t.valid() || t.ev.dead {
		return false
	}
	if t.ev.index < 0 { // already popped (firing right now)
		t.ev.dead = true
		return false
	}
	ev := t.ev
	ev.dead = true
	heap.Remove(&t.engine.heap, ev.index)
	t.engine.recycle(ev)
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.valid() && !t.ev.dead && t.ev.index >= 0
}

// At returns the time the timer is scheduled to fire, or 0 for a zero Timer
// or one whose event has already fired or been cancelled.
func (t Timer) At() units.Time {
	if !t.valid() {
		return 0
	}
	return t.ev.at
}
