// Package baseline freezes the pre-rewrite event core: a container/heap
// binary heap with eager (heap.Remove) cancellation. It exists so that the
// standing `make bench-core` run can measure the current engine against the
// implementation it replaced in the same process and record the delta in
// BENCH_core.json, and so the cross-validation tests have a second,
// independently-written scheduler to agree with. It is not used by any
// simulation code path; do not "optimise" it — its value is staying exactly
// as slow as it was.
package baseline

import (
	"container/heap"

	"vertigo/internal/units"
)

// Handler is a callback invoked when an event fires.
type Handler func()

type event struct {
	at    units.Time
	seq   uint64
	fn    Handler
	index int
	gen   uint64
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the frozen pre-rewrite scheduler. Construct with NewEngine.
type Engine struct {
	heap    eventHeap
	now     units.Time
	seq     uint64
	stopped bool
	fired   uint64
	free    []*event
}

// NewEngine returns a baseline engine.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() units.Time { return e.now }

// Events returns the number of events executed so far.
func (e *Engine) Events() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.index = -1
	ev.dead = false
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t.
func (e *Engine) At(t units.Time, fn Handler) Timer {
	if t < e.now {
		panic("baseline: scheduling event in the past")
	}
	ev := e.alloc()
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	heap.Push(&e.heap, ev)
	return Timer{engine: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d units.Time, fn Handler) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty, Stop is called, or
// the next event would fire after the until deadline.
func (e *Engine) Run(until units.Time) units.Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > until {
			break
		}
		ev := heap.Pop(&e.heap).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		fn := ev.fn
		e.recycle(ev)
		fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	return e.now
}

// Timer is a cancellable handle to a scheduled event.
type Timer struct {
	engine *Engine
	ev     *event
	gen    uint64
}

func (t Timer) valid() bool {
	return t.ev != nil && t.ev.gen == t.gen
}

// Cancel prevents the event from firing, eagerly removing it from the heap
// (the O(log n) cancel path the rewrite made lazy). Reports whether the
// event was pending.
func (t Timer) Cancel() bool {
	if !t.valid() || t.ev.dead {
		return false
	}
	if t.ev.index < 0 {
		t.ev.dead = true
		return false
	}
	ev := t.ev
	ev.dead = true
	heap.Remove(&t.engine.heap, ev.index)
	t.engine.recycle(ev)
	return true
}

// Pending reports whether the timer is still scheduled to fire.
func (t Timer) Pending() bool {
	return t.valid() && !t.ev.dead && t.ev.index >= 0
}

// At returns the scheduled fire time, or 0 once fired or cancelled.
func (t Timer) At() units.Time {
	if !t.valid() {
		return 0
	}
	return t.ev.at
}
