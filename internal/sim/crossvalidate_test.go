package sim

import (
	"math/rand"
	"testing"

	"vertigo/internal/units"
)

// This file cross-validates the 4-ary lazy-cancellation heap against a
// deliberately naive reference scheduler: an unsorted slice scanned for the
// minimum (at, seq) on every step. The reference is too slow to simulate
// anything but transparently correct; random At/After/Cancel/Run
// interleavings must produce identical fire orders and identical Timer
// observations on both.

// refEvent is one scheduled callback in the reference scheduler.
type refEvent struct {
	at   units.Time
	seq  uint64
	fn   func()
	dead bool
	done bool
}

// refSched is the sorted-on-demand reference scheduler.
type refSched struct {
	now units.Time
	seq uint64
	evs []*refEvent
}

func (r *refSched) At(t units.Time, fn func()) *refEvent {
	if t < r.now {
		panic("refSched: scheduling event in the past")
	}
	ev := &refEvent{at: t, seq: r.seq, fn: fn}
	r.seq++
	r.evs = append(r.evs, ev)
	return ev
}

func (r *refSched) After(d units.Time, fn func()) *refEvent {
	if d < 0 {
		d = 0
	}
	return r.At(r.now+d, fn)
}

// Cancel tombstones ev, reporting whether it was still pending.
func (r *refSched) Cancel(ev *refEvent) bool {
	if ev == nil || ev.dead || ev.done {
		return false
	}
	ev.dead = true
	return true
}

func (r *refSched) Pending(ev *refEvent) bool {
	return ev != nil && !ev.dead && !ev.done
}

func (r *refSched) TimerAt(ev *refEvent) units.Time {
	if !r.Pending(ev) {
		return 0
	}
	return ev.at
}

func (r *refSched) pendingCount() int {
	n := 0
	for _, ev := range r.evs {
		if !ev.dead && !ev.done {
			n++
		}
	}
	return n
}

// Run fires events in (at, seq) order up to and including until, advancing
// now to until if nothing later remains, exactly as Engine.Run does.
func (r *refSched) Run(until units.Time) units.Time {
	for {
		var next *refEvent
		for _, ev := range r.evs {
			if ev.dead || ev.done {
				continue
			}
			if next == nil || ev.at < next.at || (ev.at == next.at && ev.seq < next.seq) {
				next = ev
			}
		}
		if next == nil || next.at > until {
			break
		}
		next.done = true
		r.now = next.at
		next.fn()
	}
	if r.now < until {
		r.now = until
	}
	return r.now
}

// runScript executes ops pseudo-random operations derived from seed on both
// schedulers and fails the test at the first observable divergence.
func runScript(t *testing.T, seed int64, ops int) {
	t.Helper()
	eng := NewEngine(1)
	ref := &refSched{}

	var engFired, refFired []int
	var engTimers []Timer
	var refTimers []*refEvent
	id := 0

	// Both sides must make the same choices, so all randomness comes from one
	// stream consumed identically for both.
	rng := rand.New(rand.NewSource(seed))

	schedule := func(d units.Time, nest bool) {
		myID := id
		id++
		engTimers = append(engTimers, eng.After(d, func() {
			engFired = append(engFired, myID)
			if nest {
				eng.After(d/2, func() { engFired = append(engFired, -myID-1) })
			}
		}))
		refTimers = append(refTimers, ref.After(d, func() {
			refFired = append(refFired, myID)
			if nest {
				ref.After(d/2, func() { refFired = append(refFired, -myID-1) })
			}
		}))
	}

	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // plain schedule, heavy tie density to stress seq order
			schedule(units.Time(rng.Intn(50)), false)
		case k < 5: // schedule with a nested in-handler schedule
			schedule(units.Time(rng.Intn(50)), true)
		case k < 6: // fire-and-forget on the engine, plain event on the ref
			myID := id
			id++
			d := units.Time(rng.Intn(50))
			eng.SchedAfter(d, func() { engFired = append(engFired, myID) })
			ref.After(d, func() { refFired = append(refFired, myID) })
		case k < 9: // cancel a random timer (often already fired or dead)
			if len(engTimers) == 0 {
				continue
			}
			i := rng.Intn(len(engTimers))
			gotE := engTimers[i].Cancel()
			gotR := ref.Cancel(refTimers[i])
			if gotE != gotR {
				t.Fatalf("seed %d op %d: Cancel(%d) engine=%v ref=%v", seed, op, i, gotE, gotR)
			}
		default: // advance time
			d := units.Time(rng.Intn(40))
			endE := eng.Run(eng.Now() + d)
			endR := ref.Run(ref.now + d)
			if endE != endR {
				t.Fatalf("seed %d op %d: Run end engine=%v ref=%v", seed, op, endE, endR)
			}
		}
		// Probe a random timer's observable state after every operation.
		if len(engTimers) > 0 {
			i := rng.Intn(len(engTimers))
			if p1, p2 := engTimers[i].Pending(), ref.Pending(refTimers[i]); p1 != p2 {
				t.Fatalf("seed %d op %d: Pending(%d) engine=%v ref=%v", seed, op, i, p1, p2)
			}
			if a1, a2 := engTimers[i].At(), ref.TimerAt(refTimers[i]); a1 != a2 {
				t.Fatalf("seed %d op %d: At(%d) engine=%v ref=%v", seed, op, i, a1, a2)
			}
		}
		if pe, pr := eng.Pending(), ref.pendingCount(); pe != pr {
			t.Fatalf("seed %d op %d: Pending() engine=%d ref=%d", seed, op, pe, pr)
		}
	}
	// Drain everything still scheduled.
	eng.Run(eng.Now() + units.Second)
	ref.Run(ref.now + units.Second)

	if len(engFired) != len(refFired) {
		t.Fatalf("seed %d: engine fired %d events, ref fired %d", seed, len(engFired), len(refFired))
	}
	for i := range engFired {
		if engFired[i] != refFired[i] {
			t.Fatalf("seed %d: fire order diverges at %d: engine=%d ref=%d",
				seed, i, engFired[i], refFired[i])
		}
	}
}

// TestCrossValidateAgainstReference runs many random interleavings. Each
// script mixes tie-heavy scheduling, nested in-handler scheduling,
// fire-and-forget events, cancellations of live, fired and dead timers, and
// incremental Run windows.
func TestCrossValidateAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		runScript(t, seed, 300)
	}
}

// TestCrossValidateDeep runs a few long scripts so tombstones pile up across
// many Run windows before being reaped.
func TestCrossValidateDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("long scripts")
	}
	for seed := int64(1000); seed < 1010; seed++ {
		runScript(t, seed, 5000)
	}
}

// FuzzCrossValidate lets the fuzzer hunt for interleavings the fixed seeds
// miss: the input bytes seed the same script generator.
func FuzzCrossValidate(f *testing.F) {
	for _, s := range []int64{0, 1, 42, 1 << 32} {
		f.Add(s, uint16(200))
	}
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		runScript(t, seed, int(ops)%2000)
	})
}
