package sim

import "vertigo/internal/obs"

// Process-global engine metrics, aggregated across every engine alive in the
// process (a parallel sweep's -j workers all publish here). Counters receive
// deltas on the watchdog cadence — one publish per 16 Ki events — so the
// per-event hot path stays free of atomic traffic; the pending gauge is the
// sum of live pending events across engines and is retired by FinishObs when
// a run completes.
var (
	obsEvents    = obs.NewCounter("vertigo_engine_events_total", "simulation events fired")
	obsScheduled = obs.NewCounter("vertigo_engine_scheduled_total", "events scheduled via At/After/Sched")
	obsTombPops  = obs.NewCounter("vertigo_engine_tombstone_pops_total", "lazily-cancelled events reaped at pop or sweep")
	obsSweeps    = obs.NewCounter("vertigo_engine_heap_sweeps_total", "amortized tombstone sweeps triggered by Cancel")
	obsPending   = obs.NewGauge("vertigo_engine_pending", "live pending events summed across running engines")
)

// publishObs pushes the engine's counter growth since the last publish into
// the process-global registry. Called on the watchdog cadence inside Run and
// from FinishObs; never on the per-event path.
func (e *Engine) publishObs() {
	if d := e.fired - e.pubFired; d > 0 {
		obsEvents.Add(d)
		e.pubFired = e.fired
	}
	if d := e.seq - e.pubSeq; d > 0 {
		obsScheduled.Add(d)
		e.pubSeq = e.seq
	}
	if d := e.tombPops - e.pubTombPops; d > 0 {
		obsTombPops.Add(d)
		e.pubTombPops = e.tombPops
	}
	if d := e.sweeps - e.pubSweeps; d > 0 {
		obsSweeps.Add(d)
		e.pubSweeps = e.sweeps
	}
	if d := e.live - e.pubLive; d != 0 {
		obsPending.Add(int64(d))
		e.pubLive = e.live
	}
}

// FinishObs publishes any unpublished counter growth and retires the
// engine's contribution to the pending gauge. Run callers (core.Run, tests
// that scrape) invoke it once the engine is done; afterwards the engine can
// still run and publish again.
func (e *Engine) FinishObs() {
	e.publishObs()
	if e.pubLive != 0 {
		obsPending.Add(int64(-e.pubLive))
		e.pubLive = 0
	}
}

// SetFlight attaches a crash flight recorder: every fired event, plus the
// watchdog abort, leaves a record in the ring. A nil recorder (the default)
// disables recording.
func (e *Engine) SetFlight(fr *obs.FlightRecorder) { e.flight = fr }

// Flight returns the engine's flight recorder (nil when none is attached),
// so co-located components (fabric drops, fault injection) can add their own
// records to the same ring.
func (e *Engine) Flight() *obs.FlightRecorder { return e.flight }
