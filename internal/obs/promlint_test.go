package obs

import (
	"bytes"
	"strings"
	"testing"
)

func lintErrs(t *testing.T, text string) []error {
	t.Helper()
	return LintProm(strings.NewReader(text))
}

func TestLintPromCleanRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("lint_events_total", "events").Add(7)
	r.Gauge("lint_pending", "pending").Set(-3)
	h := r.Histogram("lint_latency_ns", "latency")
	for _, v := range []int64{1, 5, 900, 1 << 20} {
		h.Observe(v)
	}
	v := r.CounterVec("lint_drops_total", "drops", "reason", "overflow", `odd"label\`)
	v.At(0).Inc()
	v.At(1).Add(2)

	var b bytes.Buffer
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if errs := LintProm(bytes.NewReader(b.Bytes())); len(errs) != 0 {
		t.Fatalf("registry output should lint clean, got:\n%v\noutput:\n%s", errs, b.String())
	}
}

func TestLintPromViolations(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"missing help",
			"# TYPE x_total counter\nx_total 1\n",
			"no # HELP"},
		{"missing type",
			"# HELP x_total help\nx_total 1\n",
			"no # TYPE"},
		{"bad type",
			"# HELP x help\n# TYPE x flurble\nx 1\n",
			"unknown metric type"},
		{"bad value",
			"# HELP x help\n# TYPE x gauge\nx banana\n",
			"not a float"},
		{"bad name",
			"# HELP 9x help\n# TYPE 9x counter\n9x 1\n",
			"invalid metric name"},
		{"headerless sample",
			"stray_total 4\n",
			"before its # HELP"},
		{"non-cumulative buckets",
			"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
			"not cumulative"},
		{"missing inf",
			"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
			"no le=\"+Inf\""},
		{"inf count mismatch",
			"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
			"!= _count"},
		{"missing sum",
			"# HELP h help\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
			"no _sum"},
		{"interleaved families",
			"# HELP a help\n# TYPE a counter\na 1\n# HELP b help\n# TYPE b counter\nb 1\n# HELP a help\n# TYPE a counter\na 2\n",
			"interleaved"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := lintErrs(t, tc.text)
			if len(errs) == 0 {
				t.Fatalf("expected a violation containing %q, got none", tc.want)
			}
			found := false
			for _, err := range errs {
				if strings.Contains(err.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no violation contains %q; got %v", tc.want, errs)
			}
		})
	}
}

func TestLintPromAllowsPlainComments(t *testing.T) {
	text := "# scraped at startup\n# HELP x_total help\n# TYPE x_total counter\nx_total{k=\"v,w=\\\"x\\\"\"} 1 1700000000\n"
	if errs := lintErrs(t, text); len(errs) != 0 {
		t.Fatalf("clean input flagged: %v", errs)
	}
}
