package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}

	h := r.Histogram("h_ns", "a histogram")
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	wantSum := int64(0 + 1 + 2 + 3 + 1000 + 1<<40)
	if h.Sum() != wantSum {
		t.Fatalf("hist sum = %d, want %d", h.Sum(), wantSum)
	}
	snap := h.Snapshot()
	var n uint64
	for _, b := range snap.Buckets {
		n += b.Count
	}
	if n != snap.Count {
		t.Fatalf("bucket counts sum to %d, snapshot count %d", n, snap.Count)
	}
	// p50 of {0,1,2,3,1000,1<<40}: nearest-rank 3 lands in the bucket
	// holding 2 and 3, whose upper edge is 3.
	if q := snap.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %d, want 3", q)
	}
	if q := snap.Quantile(1); q < 1<<40 {
		t.Fatalf("p100 = %d, want >= 2^40", q)
	}
}

func TestRegistryIdempotentAndKindMismatch(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "")
	c2 := r.Counter("x_total", "")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("drops_total", "", "reason", "overflow", "fault")
	v.At(0).Add(2)
	v.At(1).Inc()
	v2 := r.CounterVec("drops_total", "", "reason", "overflow", "fault")
	if v2.At(0).Value() != 2 || v2.At(1).Value() != 1 {
		t.Fatalf("vec values = %d,%d want 2,1", v2.At(0).Value(), v2.At(1).Value())
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "")
	r.Gauge("aaa", "")
	snaps := r.Snapshot()
	if len(snaps) != 2 || snaps[0].Name != "aaa" || snaps[1].Name != "zzz_total" {
		t.Fatalf("snapshot not sorted: %+v", snaps)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_events_total", "events\nwith newline").Add(3)
	r.Gauge("t_pending", "live").Set(-2)
	h := r.Histogram("t_fct_ns", "fct")
	h.Observe(1)
	h.Observe(5)
	v := r.CounterVec("t_drops_total", "", "reason", "overflow", `odd"label\`)
	v.At(1).Inc()

	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP t_events_total events\\nwith newline\n",
		"# TYPE t_events_total counter\n",
		"t_events_total 3\n",
		"t_pending -2\n",
		"# TYPE t_fct_ns histogram\n",
		"t_fct_ns_bucket{le=\"1\"} 1\n",
		"t_fct_ns_bucket{le=\"7\"} 2\n",
		"t_fct_ns_bucket{le=\"+Inf\"} 2\n",
		"t_fct_ns_sum 6\n",
		"t_fct_ns_count 2\n",
		"t_drops_total{reason=\"overflow\"} 0\n",
		"t_drops_total{reason=\"odd\\\"label\\\\\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q\n---\n%s", want, out)
		}
	}
	// Cumulative le buckets must be non-decreasing in both edge and count.
	if strings.Index(out, `le="1"`) > strings.Index(out, `le="7"`) {
		t.Error("histogram buckets out of order")
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "").Inc()
	srv := httptest.NewServer(Handler(r, func() any { return map[string]int{"runs": 7} }))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "e_total 1") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	var doc struct {
		Build   BuildInfo      `json:"build"`
		Status  map[string]int `json:"status"`
		Metrics []FamilySnap   `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc.Build.GoVersion == "" || doc.Status["runs"] != 7 || len(doc.Metrics) != 1 {
		t.Fatalf("/statusz content wrong: %+v", doc)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope = %d, want 404", code)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := int64(0); i < 10; i++ {
		fr.Record(FlightEvent, i, i*10, 0, 0)
	}
	if fr.Total() != 10 || fr.Len() != 4 {
		t.Fatalf("total=%d len=%d, want 10,4", fr.Total(), fr.Len())
	}
	recs := fr.Records()
	for i, want := range []int64{6, 7, 8, 9} {
		if recs[i].T != want {
			t.Fatalf("recs[%d].T = %d, want %d (oldest-first)", i, recs[i].T, want)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(FlightEvent, 1, 2, 3, 4) // must not panic
	if fr.Len() != 0 || fr.Total() != 0 || len(fr.Records()) != 0 {
		t.Fatal("nil recorder should be empty")
	}
	if NewFlightRecorder(0) != nil {
		t.Fatal("zero-size recorder should be nil")
	}
}

func TestFlightDumpJSONL(t *testing.T) {
	fr := NewFlightRecorder(8)
	fr.Record(FlightEvent, 100, 90, 5, 42)
	fr.Record(FlightDrop, 200, 1, 3, 2)
	fr.Record(FlightFault, 300, 0, 7, -1)
	fr.Record(FlightWatchdog, 400, 12345, 0, 0)

	var sb strings.Builder
	if err := fr.DumpJSONL(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (header + 4 records)\n%s", len(lines), sb.String())
	}
	// Every line must be valid JSON.
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
	}
	var hdr struct {
		Total int `json:"flight_total"`
		Kept  int `json:"flight_kept"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil || hdr.Total != 4 || hdr.Kept != 4 {
		t.Fatalf("header = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"event"`) || !strings.Contains(lines[1], `"sched_ns":90`) {
		t.Fatalf("event record = %s", lines[1])
	}
	if !strings.Contains(lines[2], `"reason":1`) {
		t.Fatalf("drop record = %s", lines[2])
	}
	if !strings.Contains(lines[4], `"events":12345`) || strings.Contains(lines[4], `"b"`) {
		t.Fatalf("watchdog record = %s", lines[4])
	}
}

func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("za_ns", "")
	c := NewRegistry().Counter("za_total", "")
	g := NewRegistry().Gauge("za", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot-path bumps allocate: %v allocs/op", allocs)
	}
}
