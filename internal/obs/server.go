package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies the running binary in /statusz.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision"`
	Modified  bool   `json:"vcs_modified,omitempty"`
	Main      string `json:"module,omitempty"`
}

// ReadBuildInfo extracts the toolchain and VCS stamp from the binary.
func ReadBuildInfo() BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		b.Main = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Modified = s.Value == "true"
			}
		}
	}
	return b
}

// statusz is the /statusz document: build identity, the caller's live status
// (per-run progress, invocation parameters — whatever the embedding binary
// supplies), and a full registry snapshot.
type statusz struct {
	Build   BuildInfo    `json:"build"`
	Uptime  string       `json:"uptime"`
	Status  any          `json:"status,omitempty"`
	Metrics []FamilySnap `json:"metrics"`
}

// Handler returns the debug mux over registry r:
//
//	/metrics     Prometheus text exposition
//	/statusz     JSON: build info + status() + registry snapshot
//	/healthz     "ok"
//	/debug/vars  expvar
//	/debug/pprof profiling endpoints
//
// status may be nil. Every endpoint reads snapshots — nothing is drained or
// reset by a scrape, so scraping cannot perturb a running simulation.
func Handler(r *Registry, status func() any) http.Handler {
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		doc := statusz{
			Build:   ReadBuildInfo(),
			Uptime:  time.Since(start).Round(time.Millisecond).String(),
			Metrics: r.Snapshot(),
		}
		if status != nil {
			doc.Status = status()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "vertigo debug server\n\n/metrics\n/statusz\n/healthz\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Serve starts the debug server on addr (e.g. "127.0.0.1:9464", or ":0" for
// an ephemeral port) and returns the bound address plus a Closer that shuts
// the server down and releases the listener. Callers that want the old
// "runs until process exit" behavior — the -debug-addr flag on the batch
// CLIs, where the whole point is scraping a warm process across runs —
// simply never call Close; long-running daemons (vertigo-serve) wire the
// Closer into their graceful-shutdown path so a drained process leaks
// neither the port nor the server goroutine.
func Serve(addr string, r *Registry, status func() any) (string, io.Closer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: Handler(r, status)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), &serverCloser{srv: srv}, nil
}

// serverCloser shuts down the debug server: in-flight scrapes get a short
// grace period, then the listener and all connections are torn down.
type serverCloser struct {
	srv  *http.Server
	once sync.Once
	err  error
}

func (c *serverCloser) Close() error {
	c.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		c.err = c.srv.Shutdown(ctx)
		if c.err != nil {
			_ = c.srv.Close()
		}
	})
	return c.err
}
