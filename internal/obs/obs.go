// Package obs is the simulator's live introspection plane: a process-global,
// zero-allocation metrics registry that subsystems register into once (at
// package init) and bump on hot paths with plain atomic operations, plus the
// debug HTTP surface (/metrics, /statusz, /healthz, expvar, pprof) that
// exposes it, and a crash flight recorder.
//
// The registry exists so a warm process — a long sweep, or eventually
// vertigo-serve — can be scraped mid-run instead of only reporting at run
// end. Two invariants make that safe:
//
//   - Bumps are wait-free atomic adds with no allocation and no locks, so
//     instrumenting a hot path cannot perturb simulation timing-determinism
//     (registry values never feed back into the model) and cannot trip the
//     race detector when many engines run concurrently.
//   - Reads are snapshots, never drains: scraping copies counter values and
//     resets nothing, so a concurrently-scraped run produces byte-identical
//     artifacts to an unscraped one.
//
// Metrics are process-global aggregates across every concurrently-running
// simulation (the -j workers of a sweep all bump the same cells); per-run
// numbers still come from the per-run EngineStats/PoolStats/Summary.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically-increasing atomic counter. The zero value is
// usable, but counters should be created through a Registry so they appear
// in scrapes.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// nHistBuckets mirrors metrics.Histogram's log-bucket grid: bucket i>0 holds
// values in [2^(i-1), 2^i), bucket 0 holds zero and negative values. The
// same grid means registry histograms and end-of-run Summary histograms are
// directly comparable (and mergeable by bucket index).
const nHistBuckets = 65

// Histogram is an atomic log-bucketed histogram of int64 observations
// (nanoseconds, bytes). Observe is three wait-free atomic adds — no locks,
// no allocation — so it is safe on per-packet paths bumped from many
// concurrent simulations. Unlike metrics.Histogram it carries no min/max
// (they would need CAS loops on the hot path); quantiles come from the
// bucket grid at scrape time.
type Histogram struct {
	counts [nHistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

// bucketOf returns the bucket index for v (metrics.Histogram's grid).
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// bucketHigh returns the inclusive upper bound of bucket i.
func bucketHigh(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Snapshot copies the histogram's state. The copy is not atomic across
// buckets — observations racing the snapshot may be partially visible — but
// every individual read is, which is all a monitoring scrape needs.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{High: bucketHigh(i), Count: c})
		}
	}
	return s
}

// BucketCount is one non-empty bucket of a histogram snapshot: Count
// observations at or below High (per-bucket, not cumulative).
type BucketCount struct {
	High  int64  `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// upper edge of the bucket holding the nearest-rank observation. Resolution
// is the bucket width (factor of two).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.High
		}
	}
	if n := len(s.Buckets); n > 0 {
		return s.Buckets[n-1].High
	}
	return 0
}

// series is one stored metric: the label value ("" for unlabeled families)
// plus exactly one live cell per the family's kind.
type series struct {
	labelValue string
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// family is one named metric family.
type family struct {
	name   string
	help   string
	kind   Kind
	label  string // label name for vec families, "" otherwise
	series []*series
}

// Registry holds metric families. Registration (Counter, Gauge, ...) takes a
// lock and may allocate; it happens once per process at package init.
// Registering the same name again returns the existing metric (so tests and
// re-imports are harmless) and panics only if the kind differs — that is
// always a programming error worth failing loudly on.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Default is the process-global registry: every package-level metric in the
// simulator registers here, and the debug server serves it.
var Default = NewRegistry()

// lookup finds or creates the named family, enforcing kind consistency.
func (r *Registry) lookup(name, help string, kind Kind, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label {
			panic("obs: metric " + name + " re-registered as a different kind")
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, label: label}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, KindCounter, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, &series{c: &Counter{}})
	}
	return f.series[0].c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, KindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, &series{g: &Gauge{}})
	}
	return f.series[0].g
}

// Histogram registers (or finds) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.lookup(name, help, KindHistogram, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(f.series) == 0 {
		f.series = append(f.series, &series{h: &Histogram{}})
	}
	return f.series[0].h
}

// CounterVec is a counter family with one label of fixed cardinality. At
// returns the counter for the i-th registered label value, so hot paths
// index by enum, never by string.
type CounterVec struct{ cs []*Counter }

// At returns the counter for the i-th label value.
func (v *CounterVec) At(i int) *Counter { return v.cs[i] }

// CounterVec registers (or finds) a labeled counter family with the given
// fixed label values. Re-registration must present the same values in the
// same order.
func (r *Registry) CounterVec(name, help, label string, values ...string) *CounterVec {
	f := r.lookup(name, help, KindCounter, label)
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(f.series) == 0 {
		for _, v := range values {
			f.series = append(f.series, &series{labelValue: v, c: &Counter{}})
		}
	} else if len(f.series) != len(values) {
		panic("obs: counter vec " + name + " re-registered with different label values")
	}
	vec := &CounterVec{cs: make([]*Counter, len(f.series))}
	for i, s := range f.series {
		vec.cs[i] = s.c
	}
	return vec
}

// NewCounter registers a counter on the Default registry.
func NewCounter(name, help string) *Counter { return Default.Counter(name, help) }

// NewGauge registers a gauge on the Default registry.
func NewGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// NewHistogram registers a histogram on the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.Histogram(name, help) }

// NewCounterVec registers a labeled counter family on the Default registry.
func NewCounterVec(name, help, label string, values ...string) *CounterVec {
	return Default.CounterVec(name, help, label, values...)
}

// SeriesSnap is one series of a family snapshot.
type SeriesSnap struct {
	Label string        `json:"label,omitempty"` // label value for vec families
	Value float64       `json:"value"`           // counter/gauge value; histogram count
	Hist  *HistSnapshot `json:"hist,omitempty"`
	P50   int64         `json:"p50,omitempty"` // histogram quantile estimates
	P99   int64         `json:"p99,omitempty"`
}

// FamilySnap is a point-in-time copy of one metric family, the JSON shape
// /statusz serves.
type FamilySnap struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Kind   string       `json:"kind"`
	Label  string       `json:"label,omitempty"`
	Series []SeriesSnap `json:"series"`
}

// Snapshot copies every family, sorted by name. It holds the registration
// lock only to copy the family index; cell reads are atomic loads, so a
// snapshot never blocks or perturbs writers.
func (r *Registry) Snapshot() []FamilySnap {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnap, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnap{Name: f.name, Help: f.help, Kind: f.kind.String(), Label: f.label}
		for _, s := range f.series {
			var ss SeriesSnap
			ss.Label = s.labelValue
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.c.Value())
			case KindGauge:
				ss.Value = float64(s.g.Value())
			case KindHistogram:
				snap := s.h.Snapshot()
				ss.Value = float64(snap.Count)
				ss.P50 = snap.Quantile(0.50)
				ss.P99 = snap.Quantile(0.99)
				ss.Hist = &snap
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
