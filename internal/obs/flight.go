package obs

import (
	"fmt"
	"io"
)

// FlightKind classifies flight-recorder records.
type FlightKind uint8

// Flight record kinds. Each kind names its three payload fields; see
// flightFields.
const (
	// FlightEvent is one fired simulation event: a=schedule time (ns),
	// b=live pending events after the pop, c=engine sequence number.
	FlightEvent FlightKind = iota
	// FlightDrop is one fabric packet drop: a=drop reason
	// (metrics.DropReason numbering), b=switch (-1 for a host NIC), c=port.
	FlightDrop
	// FlightFault is one injected fault transition: a=fault kind
	// (faults.Kind numbering), b=link (-1 if none), c=switch (-1 if none).
	FlightFault
	// FlightWatchdog marks the watchdog aborting the run: a=events fired so
	// far, b=the event-budget cap when the abort was a max-events kill
	// (0 for a wall-clock kill).
	FlightWatchdog
	// FlightNote is a free-form record.
	FlightNote
	numFlightKinds
)

var flightKindNames = [numFlightKinds]string{
	"event", "drop", "fault", "watchdog", "note",
}

// flightFields names each kind's a/b/c payload in the JSONL dump. An empty
// name suppresses the field.
var flightFields = [numFlightKinds][3]string{
	FlightEvent:    {"sched_ns", "pending", "seq"},
	FlightDrop:     {"reason", "switch", "port"},
	FlightFault:    {"fault_kind", "link", "switch"},
	FlightWatchdog: {"events", "max_events", ""},
	FlightNote:     {"a", "b", "c"},
}

// FlightRecord is one ring entry: a kind, the simulated time, and three
// kind-specific int payloads.
type FlightRecord struct {
	T       int64 // simulated time, ns
	A, B, C int64
	Kind    FlightKind
}

// FlightRecorder is a fixed-size ring buffer of recent records — a crash
// flight recorder. Recording is a single struct store into a preallocated
// ring (no allocation, no locking; each simulation owns its recorder and is
// single-threaded), so it is cheap enough to leave on for every run. The
// ring is only read after the run dies: the crash-safe sweep runner dumps
// it to flight.jsonl when it catches a panic or the wall-clock watchdog
// fires, turning "the run failed" into "and this is what it was doing".
//
// A nil *FlightRecorder is valid and records nothing.
type FlightRecorder struct {
	ring []FlightRecord
	n    uint64 // total records ever written
}

// NewFlightRecorder returns a recorder keeping the last n records.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		return nil
	}
	return &FlightRecorder{ring: make([]FlightRecord, n)}
}

// Record appends one record, overwriting the oldest once the ring is full.
func (fr *FlightRecorder) Record(kind FlightKind, t, a, b, c int64) {
	if fr == nil {
		return
	}
	fr.ring[fr.n%uint64(len(fr.ring))] = FlightRecord{T: t, A: a, B: b, C: c, Kind: kind}
	fr.n++
}

// Len returns the number of records currently held (at most the ring size).
func (fr *FlightRecorder) Len() int {
	if fr == nil {
		return 0
	}
	if fr.n < uint64(len(fr.ring)) {
		return int(fr.n)
	}
	return len(fr.ring)
}

// Total returns the number of records ever written (including overwritten).
func (fr *FlightRecorder) Total() uint64 {
	if fr == nil {
		return 0
	}
	return fr.n
}

// Records returns the held records, oldest first.
func (fr *FlightRecorder) Records() []FlightRecord {
	k := fr.Len()
	out := make([]FlightRecord, 0, k)
	if k == 0 {
		return out
	}
	start := fr.n - uint64(k)
	for i := 0; i < k; i++ {
		out = append(out, fr.ring[(start+uint64(i))%uint64(len(fr.ring))])
	}
	return out
}

// DumpJSONL writes a header line with the recorder's totals, then one JSON
// object per held record, oldest first. Field names are per-kind (see the
// FlightKind constants); enum-coded fields (reason, fault_kind) carry the
// producing package's numbering, documented there.
func (fr *FlightRecorder) DumpJSONL(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\"flight_total\":%d,\"flight_kept\":%d}\n",
		fr.Total(), fr.Len()); err != nil {
		return err
	}
	for _, rec := range fr.Records() {
		kind := FlightNote
		if rec.Kind < numFlightKinds {
			kind = rec.Kind
		}
		if _, err := fmt.Fprintf(w, "{\"kind\":%q,\"t_ns\":%d", flightKindNames[kind], rec.T); err != nil {
			return err
		}
		names := flightFields[kind]
		for i, v := range [3]int64{rec.A, rec.B, rec.C} {
			if names[i] == "" {
				continue
			}
			if _, err := fmt.Fprintf(w, ",%q:%d", names[i], v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}
