package obs

import (
	"fmt"
	"io"
	"strings"
)

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4): one # HELP and # TYPE line per family, then its samples.
// Families come out sorted by name, series in registration order, so the
// output is stable across scrapes modulo the values themselves.
//
// Histograms are rendered with cumulative le buckets on the registry's
// log-2 grid plus the mandatory +Inf bucket, _sum and _count. Empty buckets
// are elided; le edges are still strictly increasing, which is all the
// format requires.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	// Sorted copy, same order as Snapshot.
	for i := 1; i < len(fams); i++ {
		for j := i; j > 0 && fams[j-1].name > fams[j].name; j-- {
			fams[j-1], fams[j] = fams[j], fams[j-1]
		}
	}

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writePromSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSeries(w io.Writer, f *family, s *series) error {
	labels := ""
	if f.label != "" {
		// %q escapes quotes, backslashes and newlines exactly as the
		// exposition format requires.
		labels = fmt.Sprintf("{%s=%q}", f.label, s.labelValue)
	}
	switch f.kind {
	case KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.c.Value())
		return err
	case KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.g.Value())
		return err
	default:
		snap := s.h.Snapshot()
		var cum uint64
		for _, b := range snap.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", f.name, b.High, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, snap.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n", f.name, snap.Sum); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count %d\n", f.name, snap.Count)
		return err
	}
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
