package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// LintProm validates Prometheus text exposition format (version 0.0.4) and
// returns every violation found, or nil when the input is clean. It is the
// in-repo scrape validator: the CI smoke job and the scrape tests pipe
// /metrics output through it so a malformed family fails loudly instead of
// silently breaking a collector.
//
// Checked per family:
//   - # HELP and # TYPE precede the samples, TYPE names a known metric type
//   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
//   - sample values parse as Go floats (integers included)
//   - families are contiguous, never interleaved
//   - histograms carry _sum and _count, bucket counts are cumulative and
//     end with le="+Inf" equal to _count
func LintProm(r io.Reader) []error {
	l := &promLinter{seen: map[string]bool{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		l.line(n, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("reading input: %w", err))
	}
	l.closeFamily()
	return l.errs
}

type promLinter struct {
	errs []error
	seen map[string]bool // family base names already closed

	cur     string // family currently open ("" = none)
	typ     string // its TYPE
	hasHelp bool
	hasType bool

	// histogram state
	bucketPrev float64 // last cumulative bucket count
	infCount   float64 // count at le="+Inf", NaN until seen
	sumSeen    bool
	countSeen  bool
	countVal   float64
}

func (l *promLinter) errf(n int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: "+format, append([]any{n}, args...)...))
}

func (l *promLinter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.SplitN(s, " ", 4)
		if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
			// Plain comments are legal; only HELP/TYPE carry structure.
			return
		}
		name := fields[2]
		if !validMetricName(name) {
			l.errf(n, "invalid metric name %q in %s line", name, fields[1])
			return
		}
		if name != l.cur {
			l.openFamily(n, name)
		}
		switch fields[1] {
		case "HELP":
			if l.hasHelp {
				l.errf(n, "duplicate HELP for %s", name)
			}
			l.hasHelp = true
		case "TYPE":
			if l.hasType {
				l.errf(n, "duplicate TYPE for %s", name)
			}
			l.hasType = true
			if len(fields) < 4 {
				l.errf(n, "TYPE line for %s missing a type", name)
				return
			}
			switch fields[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
				l.typ = fields[3]
			default:
				l.errf(n, "unknown metric type %q for %s", fields[3], name)
			}
		}
		return
	}

	// Sample line: name[{labels}] value [timestamp]
	name, labels, rest, ok := splitSample(s)
	if !ok {
		l.errf(n, "malformed sample line %q", s)
		return
	}
	if !validMetricName(name) {
		l.errf(n, "invalid metric name %q", name)
		return
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		l.errf(n, "sample for %s needs a value (and at most a timestamp), got %q", name, rest)
		return
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		l.errf(n, "sample value %q for %s is not a float", fields[0], name)
		return
	}

	base := baseName(name)
	if base != l.cur {
		// Untyped samples without HELP/TYPE are legal per the format, but
		// this repo always emits headers — flag the stray family.
		l.openFamily(n, base)
		l.errf(n, "sample for %s before its # HELP/# TYPE header", name)
	}
	if l.typ == "histogram" {
		l.histogramSample(n, name, labels, val)
	}
}

// histogramSample tracks cumulative-bucket and _sum/_count invariants.
func (l *promLinter) histogramSample(n int, name, labels string, val float64) {
	switch {
	case strings.HasSuffix(name, "_bucket"):
		le := labelValue(labels, "le")
		if le == "" {
			l.errf(n, "%s missing le label", name)
			return
		}
		if val+1e-9 < l.bucketPrev {
			l.errf(n, "%s{le=%q} = %g not cumulative (previous bucket %g)", name, le, val, l.bucketPrev)
		}
		l.bucketPrev = val
		if le == "+Inf" {
			l.infCount = val
		}
	case strings.HasSuffix(name, "_sum"):
		l.sumSeen = true
	case strings.HasSuffix(name, "_count"):
		l.countSeen = true
		l.countVal = val
	default:
		l.errf(n, "unexpected histogram sample %s (want _bucket/_sum/_count)", name)
	}
}

func (l *promLinter) openFamily(n int, name string) {
	l.closeFamily()
	if l.seen[name] {
		l.errf(n, "family %s interleaved: already closed earlier in the stream", name)
	}
	l.cur, l.typ = name, ""
	l.hasHelp, l.hasType = false, false
	l.bucketPrev, l.infCount = 0, math.NaN()
	l.sumSeen, l.countSeen, l.countVal = false, false, 0
}

func (l *promLinter) closeFamily() {
	if l.cur == "" {
		return
	}
	if !l.hasHelp {
		l.errs = append(l.errs, fmt.Errorf("family %s has no # HELP", l.cur))
	}
	if !l.hasType {
		l.errs = append(l.errs, fmt.Errorf("family %s has no # TYPE", l.cur))
	}
	if l.typ == "histogram" {
		switch {
		case math.IsNaN(l.infCount):
			l.errs = append(l.errs, fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", l.cur))
		case !l.countSeen:
			l.errs = append(l.errs, fmt.Errorf("histogram %s has no _count", l.cur))
		case l.infCount != l.countVal:
			l.errs = append(l.errs, fmt.Errorf("histogram %s: le=\"+Inf\" bucket %g != _count %g", l.cur, l.infCount, l.countVal))
		}
		if !l.sumSeen {
			l.errs = append(l.errs, fmt.Errorf("histogram %s has no _sum", l.cur))
		}
	}
	l.seen[l.cur] = true
	l.cur = ""
}

// baseName strips the histogram sample suffixes so _bucket/_sum/_count
// samples group under their family's declared name.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitSample splits `name{labels} value` into its parts. The label block is
// returned raw (between the braces); quotes inside label values may contain
// escaped characters, so the closing brace is found quote-aware.
func splitSample(s string) (name, labels, rest string, ok bool) {
	brace := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '{' {
			brace = i
			break
		}
		if c == ' ' {
			return s[:i], "", s[i+1:], true
		}
	}
	if brace < 0 {
		return "", "", "", false
	}
	name = s[:brace]
	inQuote := false
	for i := brace + 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip escaped char
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return name, s[brace+1 : i], strings.TrimSpace(s[i+1:]), true
			}
		}
	}
	return "", "", "", false
}

// labelValue extracts one label's (unescaped) value from a raw label block.
func labelValue(labels, key string) string {
	for len(labels) > 0 {
		eq := strings.IndexByte(labels, '=')
		if eq < 0 || eq+1 >= len(labels) || labels[eq+1] != '"' {
			return ""
		}
		k := strings.TrimSpace(labels[:eq])
		// find closing quote, honouring escapes
		i := eq + 2
		var val strings.Builder
		for i < len(labels) {
			c := labels[i]
			if c == '\\' && i+1 < len(labels) {
				val.WriteByte(labels[i+1])
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		if k == key {
			return val.String()
		}
		labels = labels[i+1:]
		labels = strings.TrimPrefix(strings.TrimSpace(labels), ",")
	}
	return ""
}
