package metrics

import (
	"sort"
	"testing"
	"testing/quick"

	"vertigo/internal/units"
)

func TestFlowLifecycle(t *testing.T) {
	c := NewCollector()
	c.StartFlow(FlowRecord{ID: 1, Size: 1000, Start: 100, Query: -1})
	c.EndFlow(1, 500)
	f := c.Flow(1)
	if f == nil || !f.Completed || f.FCT() != 400 {
		t.Fatalf("flow record %+v, want completed with FCT 400", f)
	}
	// Double EndFlow is idempotent.
	c.EndFlow(1, 900)
	if c.Flow(1).End != 500 {
		t.Fatal("second EndFlow overwrote completion time")
	}
	// Unknown flow is ignored.
	c.EndFlow(42, 100)
}

func TestQueryCompletesWhenAllFlowsDo(t *testing.T) {
	c := NewCollector()
	q := c.StartQuery(3, 10)
	for i := uint64(1); i <= 3; i++ {
		c.StartFlow(FlowRecord{ID: i, Class: Incast, Start: 10, Query: q})
	}
	c.EndFlow(1, 20)
	c.EndFlow(2, 30)
	if c.Queries[q].Completed {
		t.Fatal("query completed with a flow outstanding")
	}
	c.EndFlow(3, 50)
	if !c.Queries[q].Completed || c.Queries[q].QCT() != 40 {
		t.Fatalf("query %+v, want completed with QCT 40", c.Queries[q])
	}
}

func TestDropAccounting(t *testing.T) {
	c := NewCollector()
	c.Drop(DropOverflow, Background)
	c.Drop(DropOverflow, Incast)
	c.Drop(DropTTL, Incast)
	if c.TotalDrops() != 3 {
		t.Fatalf("TotalDrops = %d, want 3", c.TotalDrops())
	}
	if c.Drops[DropOverflow] != 2 || c.Drops[DropTTL] != 1 {
		t.Fatal("per-reason counts wrong")
	}
	if c.DropsByClass[Incast] != 2 || c.DropsByClass[Background] != 1 {
		t.Fatal("per-class counts wrong")
	}
}

func TestMeanPercentile(t *testing.T) {
	ts := []units.Time{10, 20, 30, 40, 50}
	if m := Mean(ts); m != 30 {
		t.Fatalf("Mean = %v, want 30", m)
	}
	if p := Percentile(ts, 50); p != 30 {
		t.Fatalf("P50 = %v, want 30", p)
	}
	if p := Percentile(ts, 100); p != 50 {
		t.Fatalf("P100 = %v, want 50", p)
	}
	if Mean(nil) != 0 || Percentile(nil, 99) != 0 {
		t.Fatal("empty input must yield 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	ts := []units.Time{50, 10, 30}
	Percentile(ts, 99)
	if ts[0] != 50 || ts[1] != 10 || ts[2] != 30 {
		t.Fatal("Percentile mutated its input")
	}
}

// Property: the percentile of any series lies within [min, max] and P100 is
// the maximum.
func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []uint32, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ts := make([]units.Time, len(raw))
		lo, hi := units.Time(raw[0]), units.Time(raw[0])
		for i, v := range raw {
			ts[i] = units.Time(v)
			if ts[i] < lo {
				lo = ts[i]
			}
			if ts[i] > hi {
				hi = ts[i]
			}
		}
		p := 1 + float64(pRaw%100)
		got := Percentile(ts, p)
		return got >= lo && got <= hi && Percentile(ts, 100) == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	ts := make([]units.Time, 100)
	for i := range ts {
		ts[i] = units.Time(i + 1)
	}
	pts := CDF(ts, 10)
	if len(pts) != 10 {
		t.Fatalf("CDF points %d, want 10", len(pts))
	}
	if last := pts[len(pts)-1]; last.Fraction != 1 || last.Value != 100 {
		t.Fatalf("last CDF point %+v, want (100, 1)", last)
	}
	if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Value < pts[j].Value }) {
		t.Fatal("CDF values not sorted")
	}
	if CDF(nil, 10) != nil {
		t.Fatal("CDF of empty series should be nil")
	}
}

func TestSummarize(t *testing.T) {
	c := NewCollector()
	// Two completed background flows (one mouse, one elephant), one
	// incomplete, one completed incast query of two flows.
	c.StartFlow(FlowRecord{ID: 1, Size: 50_000, Start: 0, Query: -1})
	c.EndFlow(1, int64GoodTime(1))
	c.StartFlow(FlowRecord{ID: 2, Size: 20_000_000, Start: 0, Query: -1})
	c.EndFlow(2, int64GoodTime(16)) // 20MB in 16ms = 10Gbps
	c.StartFlow(FlowRecord{ID: 3, Size: 1000, Start: 0, Query: -1})

	q := c.StartQuery(2, 0)
	c.StartFlow(FlowRecord{ID: 4, Class: Incast, Size: 4000, Start: 0, Query: q})
	c.StartFlow(FlowRecord{ID: 5, Class: Incast, Size: 4000, Start: 0, Query: q})
	c.EndFlow(4, int64GoodTime(2))
	c.EndFlow(5, int64GoodTime(3))

	c.PacketsSent = 100
	c.PacketsRecv = 95
	c.HopSum = 95 * 3
	c.BytesGoodput = 1_000_000
	c.Drop(DropOverflow, Background)

	s := c.Summarize(100 * units.Millisecond)
	if s.FlowsStarted != 5 || s.FlowsCompleted != 4 {
		t.Fatalf("flows %d/%d, want 4/5", s.FlowsCompleted, s.FlowsStarted)
	}
	if s.FlowCompletionP != 80 {
		t.Fatalf("completion %.1f%%, want 80", s.FlowCompletionP)
	}
	if s.QueriesCompleted != 1 || s.MeanQCT != 3*units.Millisecond {
		t.Fatalf("QCT %v (completed %d), want 3ms", s.MeanQCT, s.QueriesCompleted)
	}
	if s.ElephantFlows != 1 {
		t.Fatalf("elephants %d, want 1", s.ElephantFlows)
	}
	// 20MB in 16ms = 10 Gbps.
	if s.ElephantGoodput < 9*units.Gbps || s.ElephantGoodput > 11*units.Gbps {
		t.Fatalf("elephant goodput %v, want ~10Gbps", s.ElephantGoodput)
	}
	if s.MeanHops != 3 {
		t.Fatalf("mean hops %.2f, want 3", s.MeanHops)
	}
	if s.DropRate != 0.01 {
		t.Fatalf("drop rate %v, want 0.01", s.DropRate)
	}
	// 1MB over 100ms = 80 Mbps.
	if s.OverallGoodput != 80*units.Mbps {
		t.Fatalf("overall goodput %v, want 80Mbps", s.OverallGoodput)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func int64GoodTime(ms int64) units.Time { return units.Time(ms) * units.Millisecond }

func TestDropReasonStrings(t *testing.T) {
	for r, want := range map[DropReason]string{
		DropOverflow:    "overflow",
		DropDeflectFull: "deflect-full",
		DropTTL:         "ttl",
		DropOther:       "other",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
	if Background.String() != "background" || Incast.String() != "incast" {
		t.Error("FlowClass strings")
	}
}

func TestGoodputNoOverflow(t *testing.T) {
	// 8 * 2GB * 1e9 overflows int64; the computation must not.
	c := NewCollector()
	c.BytesGoodput = 2 << 30
	s := c.Summarize(80 * units.Millisecond)
	if s.OverallGoodput <= 0 {
		t.Fatalf("goodput overflowed: %v", s.OverallGoodput)
	}
	// 2 GiB over 80 ms ≈ 214 Gbps.
	if s.OverallGoodput < 200*units.Gbps || s.OverallGoodput > 230*units.Gbps {
		t.Fatalf("goodput %v, want ~214Gbps", s.OverallGoodput)
	}
}

// TestFlowAliasingAcrossGrowth interleaves StartFlow with reads and writes
// through Flow pointers, forcing the Flows backing array to reallocate many
// times. It pins the documented aliasing rule: a *FlowRecord is valid until
// the next StartFlow, so a mutation applied before the append must survive
// the reallocation, and a fresh Flow lookup must always see current state.
func TestFlowAliasingAcrossGrowth(t *testing.T) {
	c := NewCollector()
	const n = 1000
	for i := uint64(1); i <= n; i++ {
		// Mutate an existing record through a fresh pointer, then append.
		// (Flow IDs are sparse in real runs; stride by 3 to mimic that.)
		if i > 1 {
			prev := c.Flow(3 * (i - 1))
			if prev == nil {
				t.Fatalf("flow %d vanished", 3*(i-1))
			}
			prev.End = units.Time(10 * i)
			prev.Completed = true
		}
		c.StartFlow(FlowRecord{ID: 3 * i, Size: int64(i), Start: units.Time(i), Query: -1})
	}
	// Every record must be intact by value: the writes through now-stale
	// pointers happened before the appends that moved the array.
	for i := uint64(1); i <= n; i++ {
		f := c.Flow(3 * i)
		if f == nil {
			t.Fatalf("flow %d missing after growth", 3*i)
		}
		got := *f
		want := FlowRecord{ID: 3 * i, Size: int64(i), Start: units.Time(i), Query: -1}
		if i < n {
			want.End = units.Time(10 * (i + 1))
			want.Completed = true
		}
		if got != want {
			t.Fatalf("flow %d: got %+v, want %+v", 3*i, got, want)
		}
	}
	if c.FlowsStarted() != n || c.LiveFlows() != n {
		t.Fatalf("started %d live %d, want %d of each", c.FlowsStarted(), c.LiveFlows(), n)
	}
}
