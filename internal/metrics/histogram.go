package metrics

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"strings"

	"vertigo/internal/units"
)

// Histogram is a log-bucketed histogram of non-negative int64 observations
// (nanoseconds, bytes, counts). Bucket i>0 holds values in [2^(i-1), 2^i);
// bucket 0 holds zero and negative values. Log bucketing keeps the whole
// distribution — from sub-microsecond queue blips to multi-second tails —
// in 65 counters with bounded (≤ 2×) relative error, which is what run
// artifacts need: end-of-run scalars hide exactly the transient behaviour
// the paper's evaluation is about.
//
// The zero value is an empty, usable histogram.
type Histogram struct {
	counts [65]uint64
	total  uint64
	sum    int64
	min    int64
	max    int64
}

// bucketOf returns the bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// BucketHigh returns the inclusive upper bound of bucket i.
func BucketHigh(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if h.total == 0 || v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest observation (0 for an empty histogram).
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 for an empty histogram).
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// inclusive upper edge of the bucket holding the nearest-rank observation,
// tightened to Min/Max at the extremes. Resolution is the bucket width
// (factor of two).
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	rank := uint64(q*float64(h.total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= h.total {
		return h.Max()
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			hi := BucketHigh(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.Max()
}

// CDF returns the histogram's cumulative distribution as one point per
// non-empty bucket (at most maxPoints, downsampled evenly when the grid has
// more), each point's Value being the bucket's inclusive upper bound clamped
// to the observed max. Nil-safe: a nil or empty histogram returns nil. This
// is the figure-path fallback when the raw series was dropped — resolution
// is the factor-of-two bucket width instead of per-sample.
func (h *Histogram) CDF(maxPoints int) []CDFPoint {
	if h == nil || h.total == 0 || maxPoints <= 0 {
		return nil
	}
	var pts []CDFPoint
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		v := BucketHigh(i)
		if v > h.max {
			v = h.max
		}
		pts = append(pts, CDFPoint{Value: units.Time(v), Fraction: float64(seen) / float64(h.total)})
	}
	if len(pts) <= maxPoints {
		return pts
	}
	// Downsample evenly, always keeping the final (fraction 1) point.
	out := make([]CDFPoint, 0, maxPoints)
	for i := 1; i <= maxPoints; i++ {
		out = append(out, pts[i*len(pts)/maxPoints-1])
	}
	return out
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.total == 0 || other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
}

// Bucket is one non-empty histogram bucket: Count observations in [Low, High].
type Bucket struct {
	Low   int64  `json:"low"`
	High  int64  `json:"high"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c > 0 {
			out = append(out, Bucket{Low: BucketLow(i), High: BucketHigh(i), Count: c})
		}
	}
	return out
}

// histogramJSON is the wire form: scalars plus only the non-empty buckets.
type histogramJSON struct {
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Count: h.total, Sum: h.sum, Min: h.Min(), Max: h.Max(), Buckets: h.Buckets(),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*h = Histogram{total: w.Count, sum: w.Sum, min: w.Min, max: w.Max}
	for _, b := range w.Buckets {
		i := bucketOf(b.High)
		if BucketLow(i) != b.Low {
			return fmt.Errorf("metrics: bucket [%d,%d] does not match the log-bucket grid", b.Low, b.High)
		}
		h.counts[i] = b.Count
	}
	return nil
}

// String renders a compact one-line digest.
func (h *Histogram) String() string {
	if h.total == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.1f min=%d max=%d", h.total, h.Mean(), h.Min(), h.Max())
	for _, bk := range h.Buckets() {
		fmt.Fprintf(&b, " [%d,%d]:%d", bk.Low, bk.High, bk.Count)
	}
	b.WriteString("}")
	return b.String()
}
