// Package metrics collects and summarizes simulation results: flow and
// query completion times, drop/deflection/reorder counters, goodput, and
// the percentile and CDF machinery the paper's figures are built from.
package metrics

import (
	"sort"

	"vertigo/internal/flowtab"
	"vertigo/internal/units"
)

// DropReason classifies packet drops for the §2 and Fig. 12 breakdowns.
type DropReason int

// Drop reasons.
const (
	DropOverflow    DropReason = iota // FIFO tail drop / no deflection room
	DropDeflectFull                   // deflection targets all full (Vertigo)
	DropTTL                           // hop budget exhausted
	DropLinkDown                      // transmitted into a failed link
	DropCorrupt                       // bit-error corruption on a faulty link
	DropOther
	numDropReasons
)

// NumDropReasons is the number of distinct drop classes (for per-class
// breakdown tables).
const NumDropReasons = int(numDropReasons)

func (r DropReason) String() string {
	switch r {
	case DropOverflow:
		return "overflow"
	case DropDeflectFull:
		return "deflect-full"
	case DropTTL:
		return "ttl"
	case DropLinkDown:
		return "link-down"
	case DropCorrupt:
		return "corrupt"
	default:
		return "other"
	}
}

// FlowClass separates background traffic from incast responses.
type FlowClass int

// Flow classes.
const (
	Background FlowClass = iota
	Incast
)

func (c FlowClass) String() string {
	if c == Incast {
		return "incast"
	}
	return "background"
}

// FlowRecord is one flow's lifetime.
type FlowRecord struct {
	ID        uint64
	Class     FlowClass
	Src, Dst  int
	Size      int64
	Start     units.Time
	End       units.Time // valid when Completed
	Completed bool
	Query     int // owning query ID for incast flows, else -1
}

// FCT returns the flow completion time.
func (f *FlowRecord) FCT() units.Time { return f.End - f.Start }

// QueryRecord is one incast query's lifetime: it completes when all of its
// member flows complete (paper §2).
type QueryRecord struct {
	ID        int
	Scale     int // number of responding servers
	Start     units.Time
	End       units.Time
	Completed bool
	Remaining int // flows not yet finished
}

// QCT returns the query completion time.
func (q *QueryRecord) QCT() units.Time { return q.End - q.Start }

// Collector accumulates events during a run. It is not safe for concurrent
// use; the simulator is single-threaded by design.
type Collector struct {
	// RawSeries controls whether Summarize keeps raw FCT/QCT slices on the
	// Summary (see RawMode); the zero value is RawAuto.
	RawSeries RawMode

	Flows   []FlowRecord
	Queries []QueryRecord
	// flowIdx maps flow ID -> index into Flows. Flow IDs come from the
	// shared packet.IDGen, so they are sparse (interleaved with packet
	// IDs), ruling out a dense slice; the flowtab keeps the lookup cheap.
	flowIdx *flowtab.Table[int32]

	Drops        [numDropReasons]int64
	DropsByClass [2]int64
	Deflections  int64
	ECNMarks     int64
	PacketsSent  int64 // data packets injected by hosts (incl. retransmissions)
	PacketsRecv  int64 // data packets delivered to their destination host
	BytesGoodput int64 // first-delivery payload bytes
	HopSum       int64 // hops over delivered data packets
	Retransmits  int64
	RTOs         int64
	FastRetx     int64
	ReorderPkts  int64 // data packets arriving out of order at the transport
	OrderingHeld int64 // packets buffered by the Vertigo ordering layer
	OrderTimeout int64 // ordering-layer timeouts fired
	Boosted      int64 // retransmitted packets whose RFS was boosted

	// Fault-injection accounting (see internal/faults).
	FaultEvents    int64        // fault transitions applied to the fabric
	FIBInstalls    int64        // control-plane healing FIB swaps
	Recoveries     []units.Time // carrier-loss durations of recovered links
	PostRecoveryTx int64        // packets transmitted on a once-failed, recovered port
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{flowIdx: flowtab.New[int32](256)}
}

// StartFlow registers a new flow and returns its record index.
func (c *Collector) StartFlow(rec FlowRecord) {
	v, _ := c.flowIdx.Put(rec.ID)
	*v = int32(len(c.Flows))
	c.Flows = append(c.Flows, rec)
	obsFlowsStarted.Inc()
}

// EndFlow marks a flow complete at time t.
func (c *Collector) EndFlow(id uint64, t units.Time) {
	ip := c.flowIdx.Get(id)
	if ip == nil {
		return
	}
	f := &c.Flows[*ip]
	if f.Completed {
		return
	}
	f.End = t
	f.Completed = true
	obsFlowsCompleted.Inc()
	obsFCT.Observe(int64(t - f.Start))
	if f.Query >= 0 {
		q := &c.Queries[f.Query]
		q.Remaining--
		if q.Remaining == 0 {
			q.End = t
			q.Completed = true
			obsQueriesCompleted.Inc()
			obsQCT.Observe(int64(t - q.Start))
		}
	}
}

// Flow returns the record for a flow ID, or nil.
//
// Aliasing rule: the pointer aims into the Flows slice, whose backing
// array moves when StartFlow appends. A *FlowRecord is therefore valid
// only until the next StartFlow — read or update it immediately; never
// hold it across anything that can register a flow.
func (c *Collector) Flow(id uint64) *FlowRecord {
	if ip := c.flowIdx.Get(id); ip != nil {
		return &c.Flows[*ip]
	}
	return nil
}

// StartQuery registers an incast query and returns its ID.
func (c *Collector) StartQuery(scale int, t units.Time) int {
	id := len(c.Queries)
	c.Queries = append(c.Queries, QueryRecord{ID: id, Scale: scale, Start: t, Remaining: scale})
	obsQueriesStarted.Inc()
	return id
}

// Drop records a dropped data packet.
func (c *Collector) Drop(reason DropReason, class FlowClass) {
	c.Drops[reason]++
	c.DropsByClass[class]++
}

// Recovered records one link's carrier-loss duration when it comes back up,
// the raw series behind the time-to-recover summary stats.
func (c *Collector) Recovered(down units.Time) {
	c.Recoveries = append(c.Recoveries, down)
}

// TotalDrops sums drops across reasons.
func (c *Collector) TotalDrops() int64 {
	var n int64
	for _, d := range c.Drops {
		n += d
	}
	return n
}

// Mean returns the arithmetic mean of ts, or 0 for empty input.
func Mean(ts []units.Time) units.Time {
	if len(ts) == 0 {
		return 0
	}
	var sum int64
	for _, t := range ts {
		sum += int64(t)
	}
	return units.Time(sum / int64(len(ts)))
}

// Percentile returns the p-th percentile (0 < p <= 100) of ts using
// nearest-rank on a sorted copy; 0 for empty input.
func Percentile(ts []units.Time, p float64) units.Time {
	if len(ts) == 0 {
		return 0
	}
	s := make([]units.Time, len(ts))
	copy(s, ts)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// CDFPoint is one (value, cumulative fraction) sample.
type CDFPoint struct {
	Value    units.Time
	Fraction float64
}

// CDF returns up to maxPoints evenly spaced points of the empirical CDF.
func CDF(ts []units.Time, maxPoints int) []CDFPoint {
	if len(ts) == 0 || maxPoints <= 0 {
		return nil
	}
	s := make([]units.Time, len(ts))
	copy(s, ts)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if maxPoints > len(s) {
		maxPoints = len(s)
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 1; i <= maxPoints; i++ {
		idx := i*len(s)/maxPoints - 1
		pts = append(pts, CDFPoint{Value: s[idx], Fraction: float64(idx+1) / float64(len(s))})
	}
	return pts
}
