// Package metrics collects and summarizes simulation results: flow and
// query completion times, drop/deflection/reorder counters, goodput, and
// the percentile and CDF machinery the paper's figures are built from.
package metrics

import (
	"sort"

	"vertigo/internal/flowtab"
	"vertigo/internal/units"
)

// DropReason classifies packet drops for the §2 and Fig. 12 breakdowns.
type DropReason int

// Drop reasons.
const (
	DropOverflow    DropReason = iota // FIFO tail drop / no deflection room
	DropDeflectFull                   // deflection targets all full (Vertigo)
	DropTTL                           // hop budget exhausted
	DropLinkDown                      // transmitted into a failed link
	DropCorrupt                       // bit-error corruption on a faulty link
	DropOther
	numDropReasons
)

// NumDropReasons is the number of distinct drop classes (for per-class
// breakdown tables).
const NumDropReasons = int(numDropReasons)

func (r DropReason) String() string {
	switch r {
	case DropOverflow:
		return "overflow"
	case DropDeflectFull:
		return "deflect-full"
	case DropTTL:
		return "ttl"
	case DropLinkDown:
		return "link-down"
	case DropCorrupt:
		return "corrupt"
	default:
		return "other"
	}
}

// FlowClass separates background traffic from incast responses.
type FlowClass int

// Flow classes.
const (
	Background FlowClass = iota
	Incast
	numFlowClasses
)

func (c FlowClass) String() string {
	if c == Incast {
		return "incast"
	}
	return "background"
}

// FlowRecord is one flow's lifetime.
type FlowRecord struct {
	ID        uint64
	Class     FlowClass
	Src, Dst  int
	Size      int64
	Start     units.Time
	End       units.Time // valid when Completed
	Completed bool
	Query     int // owning query ID for incast flows, else -1
}

// FCT returns the flow completion time.
func (f *FlowRecord) FCT() units.Time { return f.End - f.Start }

// QueryRecord is one incast query's lifetime: it completes when all of its
// member flows complete (paper §2).
type QueryRecord struct {
	ID        int
	Scale     int // number of responding servers
	Start     units.Time
	End       units.Time
	Completed bool
	Remaining int // flows not yet finished
}

// QCT returns the query completion time.
func (q *QueryRecord) QCT() units.Time { return q.End - q.Start }

// Collector accumulates events during a run. It is not safe for concurrent
// use; the simulator is single-threaded by design.
//
// Completion times are streamed: every scalar and distribution a Summary
// reports is folded in at EndFlow time (sums, counts, per-class log-bucketed
// histograms), so the collector's steady-state footprint is O(active flows),
// not O(total flows). FlowRecord slots live in a flowtab slab table; once
// the RawSeries mode stops keeping raw series (RawDrop, or RawAuto past its
// started-flows cutoff) completed records are deleted on completion and
// their slots recycled for the next flow.
type Collector struct {
	// RawSeries controls whether raw FCT/QCT series are accumulated and kept
	// on the Summary (see RawMode); the zero value is RawAuto. Set it before
	// the first StartFlow — the auto cutoff is applied as flows start.
	RawSeries RawMode

	Queries []QueryRecord
	// flows holds the live flow records, keyed by flow ID. Flow IDs come
	// from the shared packet.IDGen, so they are sparse (interleaved with
	// packet IDs), ruling out a dense slice; the flowtab keeps lookups cheap
	// and recycles record slots. Completed records are retained only while
	// the raw mode keeps per-flow series (small runs), so tests and tools
	// can still inspect them; past the cutoff they are deleted on completion.
	flows *flowtab.Table[FlowRecord]
	// recycling is set once raw series are dropped: from the first flow
	// under RawDrop, or at the RawAuto cutoff. From then on EndFlow deletes
	// the record and the slab slot is reused.
	recycling bool

	flowsStarted   int
	flowsCompleted int

	// Streaming FCT/QCT aggregates: the canonical completion-time store.
	// fctHist is per flow class; Summary merges the classes for the overall
	// distribution and keeps the per-class shapes.
	fctHist   [numFlowClasses]Histogram
	qctHist   Histogram
	fctSum    int64
	qctSum    int64
	miceCount int64
	miceSum   int64
	// Elephant goodput: per-flow goodput is truncated to an integer bit
	// rate before summing (matching the Summary arithmetic), so the running
	// sum is exact regardless of completion order.
	elephFlows   int
	elephGoodput units.BitRate

	// Raw completion-time series in completion order, accumulated only
	// while the RawSeries mode keeps them.
	fcts []units.Time
	qcts []units.Time

	Drops        [numDropReasons]int64
	DropsByClass [numFlowClasses]int64
	Deflections  int64
	ECNMarks     int64
	PacketsSent  int64 // data packets injected by hosts (incl. retransmissions)
	PacketsRecv  int64 // data packets delivered to their destination host
	BytesGoodput int64 // first-delivery payload bytes
	HopSum       int64 // hops over delivered data packets
	Retransmits  int64
	RTOs         int64
	FastRetx     int64
	ReorderPkts  int64 // data packets arriving out of order at the transport
	OrderingHeld int64 // packets buffered by the Vertigo ordering layer
	OrderTimeout int64 // ordering-layer timeouts fired
	Boosted      int64 // retransmitted packets whose RFS was boosted

	// Fault-injection accounting (see internal/faults). Recovery durations
	// are folded into a histogram + sum/count as links come back up, so flap
	// storms cost O(1) memory; the raw series is kept only under RawKeep.
	FaultEvents    int64 // fault transitions applied to the fabric
	FIBInstalls    int64 // control-plane healing FIB swaps
	PostRecoveryTx int64 // packets transmitted on a once-failed, recovered port
	ttrHist        Histogram
	ttrCount       int
	ttrSum         int64
	recoveries     []units.Time // raw carrier-loss durations, RawKeep only
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{flows: flowtab.New[FlowRecord](256)}
}

// StartFlow registers a new flow.
func (c *Collector) StartFlow(rec FlowRecord) {
	c.flowsStarted++
	if !c.recycling && !c.RawSeries.keepRaw(c.flowsStarted) {
		c.startRecycling()
	}
	v, _ := c.flows.Put(rec.ID)
	*v = rec
	obsFlowsStarted.Inc()
}

// startRecycling drops the raw series and every already-completed record,
// and switches EndFlow to delete-on-completion. The cut is on flows started
// — a configuration-time quantity — so it cannot flip on completion
// behaviour.
func (c *Collector) startRecycling() {
	c.recycling = true
	c.fcts, c.qcts = nil, nil
	var done []uint64
	c.flows.Range(func(key uint64, v *FlowRecord) bool {
		if v.Completed {
			done = append(done, key)
		}
		return true
	})
	for _, key := range done {
		c.flows.Delete(key)
	}
}

// EndFlow marks a flow complete at time t, streams its completion into the
// aggregate sums and histograms, and — once raw series are off — recycles
// the record slot.
func (c *Collector) EndFlow(id uint64, t units.Time) {
	f := c.flows.Get(id)
	if f == nil || f.Completed {
		return
	}
	f.End = t
	f.Completed = true
	c.flowsCompleted++
	fct := t - f.Start
	obsFlowsCompleted.Inc()
	obsFCT.Observe(int64(fct))
	c.fctHist[f.Class].Observe(int64(fct))
	c.fctSum += int64(fct)
	if !c.recycling {
		c.fcts = append(c.fcts, fct)
	}
	if f.Size < MiceMaxBytes {
		c.miceCount++
		c.miceSum += int64(fct)
	}
	if f.Size > ElephantMinBytes {
		c.elephFlows++
		if fct > 0 {
			c.elephGoodput += units.BitRate(8 * float64(f.Size) / fct.Seconds())
		}
	}
	if f.Query >= 0 {
		q := &c.Queries[f.Query]
		q.Remaining--
		if q.Remaining == 0 {
			q.End = t
			q.Completed = true
			qct := t - q.Start
			obsQueriesCompleted.Inc()
			obsQCT.Observe(int64(qct))
			c.qctHist.Observe(int64(qct))
			c.qctSum += int64(qct)
			if !c.recycling {
				c.qcts = append(c.qcts, qct)
			}
		}
	}
	if c.recycling {
		c.flows.Delete(id)
	}
}

// Flow returns the record for a flow ID, or nil. Completed flows are found
// only while the raw mode keeps per-flow state; once recycling is on their
// records are deleted at EndFlow.
//
// Aliasing rule: the pointer aims into the flow table's value slab, which
// can move when StartFlow grows the table. A *FlowRecord is therefore valid
// only until the next StartFlow — read or update it immediately; never
// hold it across anything that can register a flow.
func (c *Collector) Flow(id uint64) *FlowRecord {
	return c.flows.Get(id)
}

// FlowsStarted returns the number of flows registered so far.
func (c *Collector) FlowsStarted() int { return c.flowsStarted }

// FlowsCompleted returns the number of flows completed so far.
func (c *Collector) FlowsCompleted() int { return c.flowsCompleted }

// LiveFlows returns the number of flow records currently held. With
// recycling on this is the active-flow population — the collector's
// footprint is proportional to it, not to FlowsStarted.
func (c *Collector) LiveFlows() int { return c.flows.Len() }

// RangeFlows calls fn for every retained flow record in table order until
// fn returns false. The *FlowRecord follows the Flow aliasing rule.
func (c *Collector) RangeFlows(fn func(*FlowRecord) bool) {
	c.flows.Range(func(_ uint64, v *FlowRecord) bool { return fn(v) })
}

// ClassFCTHist returns the canonical completion-time histogram for one flow
// class. The histogram is live; callers must not mutate it mid-run.
func (c *Collector) ClassFCTHist(class FlowClass) *Histogram { return &c.fctHist[class] }

// StartQuery registers an incast query and returns its ID.
func (c *Collector) StartQuery(scale int, t units.Time) int {
	id := len(c.Queries)
	c.Queries = append(c.Queries, QueryRecord{ID: id, Scale: scale, Start: t, Remaining: scale})
	obsQueriesStarted.Inc()
	return id
}

// Drop records a dropped data packet.
func (c *Collector) Drop(reason DropReason, class FlowClass) {
	c.Drops[reason]++
	c.DropsByClass[class]++
}

// Recovered records one link's carrier-loss duration when it comes back up.
// The duration is streamed into the TTR histogram and sum, so a flapping
// link costs O(1) memory no matter how often it recovers; the raw series is
// kept only under RawKeep.
func (c *Collector) Recovered(down units.Time) {
	c.ttrCount++
	c.ttrSum += int64(down)
	c.ttrHist.Observe(int64(down))
	if c.RawSeries == RawKeep {
		c.recoveries = append(c.recoveries, down)
	}
}

// RecoveryCount returns the number of link recoveries recorded.
func (c *Collector) RecoveryCount() int { return c.ttrCount }

// MTTR returns the mean time-to-recover over recorded recoveries, or 0.
func (c *Collector) MTTR() units.Time {
	if c.ttrCount == 0 {
		return 0
	}
	return units.Time(c.ttrSum / int64(c.ttrCount))
}

// TTRHist returns the live time-to-recover histogram.
func (c *Collector) TTRHist() *Histogram { return &c.ttrHist }

// RecoveryTimes returns the raw recovery-duration series, non-nil only
// under RawKeep.
func (c *Collector) RecoveryTimes() []units.Time { return c.recoveries }

// TotalDrops sums drops across reasons.
func (c *Collector) TotalDrops() int64 {
	var n int64
	for _, d := range c.Drops {
		n += d
	}
	return n
}

// Merge folds the streaming aggregates of a completed shard into c, so
// sharded or resumed runs combine into one set of totals and distributions.
// It merges counters, sums and histograms — everything a Summary is built
// from — plus the raw series both sides kept. Live per-flow state (the flow
// table, open queries) is not migrated: merge collectors only after their
// runs have finished.
func (c *Collector) Merge(other *Collector) {
	c.flowsStarted += other.flowsStarted
	c.flowsCompleted += other.flowsCompleted
	for i := range c.fctHist {
		c.fctHist[i].Merge(&other.fctHist[i])
	}
	c.qctHist.Merge(&other.qctHist)
	c.fctSum += other.fctSum
	c.qctSum += other.qctSum
	c.miceCount += other.miceCount
	c.miceSum += other.miceSum
	c.elephFlows += other.elephFlows
	c.elephGoodput += other.elephGoodput
	c.fcts = append(c.fcts, other.fcts...)
	c.qcts = append(c.qcts, other.qcts...)
	for _, q := range other.Queries {
		q.ID = len(c.Queries)
		c.Queries = append(c.Queries, q)
	}
	for i := range c.Drops {
		c.Drops[i] += other.Drops[i]
	}
	for i := range c.DropsByClass {
		c.DropsByClass[i] += other.DropsByClass[i]
	}
	c.Deflections += other.Deflections
	c.ECNMarks += other.ECNMarks
	c.PacketsSent += other.PacketsSent
	c.PacketsRecv += other.PacketsRecv
	c.BytesGoodput += other.BytesGoodput
	c.HopSum += other.HopSum
	c.Retransmits += other.Retransmits
	c.RTOs += other.RTOs
	c.FastRetx += other.FastRetx
	c.ReorderPkts += other.ReorderPkts
	c.OrderingHeld += other.OrderingHeld
	c.OrderTimeout += other.OrderTimeout
	c.Boosted += other.Boosted
	c.FaultEvents += other.FaultEvents
	c.FIBInstalls += other.FIBInstalls
	c.PostRecoveryTx += other.PostRecoveryTx
	c.ttrHist.Merge(&other.ttrHist)
	c.ttrCount += other.ttrCount
	c.ttrSum += other.ttrSum
	c.recoveries = append(c.recoveries, other.recoveries...)
}

// Mean returns the arithmetic mean of ts, or 0 for empty input.
func Mean(ts []units.Time) units.Time {
	if len(ts) == 0 {
		return 0
	}
	var sum int64
	for _, t := range ts {
		sum += int64(t)
	}
	return units.Time(sum / int64(len(ts)))
}

// Percentile returns the p-th percentile (0 < p <= 100) of ts using
// nearest-rank on a sorted copy; 0 for empty input.
func Percentile(ts []units.Time, p float64) units.Time {
	if len(ts) == 0 {
		return 0
	}
	s := make([]units.Time, len(ts))
	copy(s, ts)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// CDFPoint is one (value, cumulative fraction) sample.
type CDFPoint struct {
	Value    units.Time
	Fraction float64
}

// CDF returns up to maxPoints evenly spaced points of the empirical CDF.
func CDF(ts []units.Time, maxPoints int) []CDFPoint {
	if len(ts) == 0 || maxPoints <= 0 {
		return nil
	}
	s := make([]units.Time, len(ts))
	copy(s, ts)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if maxPoints > len(s) {
		maxPoints = len(s)
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 1; i <= maxPoints; i++ {
		idx := i*len(s)/maxPoints - 1
		pts = append(pts, CDFPoint{Value: s[idx], Fraction: float64(idx+1) / float64(len(s))})
	}
	return pts
}
