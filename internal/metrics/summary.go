package metrics

import (
	"fmt"
	"strings"

	"vertigo/internal/units"
)

// Thresholds used by the paper's flow-size breakdowns (§2).
const (
	MiceMaxBytes     = 100 * 1000       // "mice" flows: < 100 KB
	ElephantMinBytes = 10 * 1000 * 1000 // "elephant" flows: > 10 MB
)

// Summary is the digest of one simulation run: every scalar the paper's
// tables and figures report.
type Summary struct {
	Duration units.Time

	// Flows (all classes).
	FlowsStarted    int
	FlowsCompleted  int
	FlowCompletionP float64 // percent
	MeanFCT         units.Time
	P99FCT          units.Time

	// Mice / elephant breakdown over completed flows.
	MeanMiceFCT     units.Time
	ElephantGoodput units.BitRate // mean per-elephant-flow goodput
	ElephantFlows   int

	// Incast queries.
	QueriesStarted   int
	QueriesCompleted int
	QueryCompletionP float64
	MeanQCT          units.Time
	P99QCT           units.Time

	// Network counters.
	PacketsSent    int64
	PacketsRecv    int64
	Drops          int64
	DropRate       float64 // drops / data packets sent
	Deflections    int64
	ECNMarks       int64
	MeanHops       float64
	Retransmits    int64
	RTOs           int64
	FastRetx       int64
	ReorderPkts    int64
	ReorderRate    float64 // reordered / delivered
	OverallGoodput units.BitRate

	// Raw series kept for CDF figures.
	FCTs []units.Time
	QCTs []units.Time
}

// Summarize digests the collector at simulation end time end.
func (c *Collector) Summarize(end units.Time) *Summary {
	s := &Summary{Duration: end, FlowsStarted: len(c.Flows), QueriesStarted: len(c.Queries)}

	var miceFCTs []units.Time
	for i := range c.Flows {
		f := &c.Flows[i]
		if !f.Completed {
			continue
		}
		s.FlowsCompleted++
		fct := f.FCT()
		s.FCTs = append(s.FCTs, fct)
		if f.Size < MiceMaxBytes {
			miceFCTs = append(miceFCTs, fct)
		}
		if f.Size > ElephantMinBytes {
			s.ElephantFlows++
			if fct > 0 {
				s.ElephantGoodput += units.BitRate(8 * float64(f.Size) / fct.Seconds())
			}
		}
	}
	if s.ElephantFlows > 0 {
		s.ElephantGoodput /= units.BitRate(s.ElephantFlows)
	}
	if s.FlowsStarted > 0 {
		s.FlowCompletionP = 100 * float64(s.FlowsCompleted) / float64(s.FlowsStarted)
	}
	s.MeanFCT = Mean(s.FCTs)
	s.P99FCT = Percentile(s.FCTs, 99)
	s.MeanMiceFCT = Mean(miceFCTs)

	for i := range c.Queries {
		q := &c.Queries[i]
		if !q.Completed {
			continue
		}
		s.QueriesCompleted++
		s.QCTs = append(s.QCTs, q.QCT())
	}
	if s.QueriesStarted > 0 {
		s.QueryCompletionP = 100 * float64(s.QueriesCompleted) / float64(s.QueriesStarted)
	}
	s.MeanQCT = Mean(s.QCTs)
	s.P99QCT = Percentile(s.QCTs, 99)

	s.PacketsSent = c.PacketsSent
	s.PacketsRecv = c.PacketsRecv
	s.Drops = c.TotalDrops()
	if c.PacketsSent > 0 {
		s.DropRate = float64(s.Drops) / float64(c.PacketsSent)
	}
	s.Deflections = c.Deflections
	s.ECNMarks = c.ECNMarks
	if c.PacketsRecv > 0 {
		s.MeanHops = float64(c.HopSum) / float64(c.PacketsRecv)
		s.ReorderRate = float64(c.ReorderPkts) / float64(c.PacketsRecv)
	}
	s.Retransmits = c.Retransmits
	s.RTOs = c.RTOs
	s.FastRetx = c.FastRetx
	s.ReorderPkts = c.ReorderPkts
	if end > 0 {
		// Computed in floating point: 8*bytes*1e9 overflows int64 beyond
		// ~1.1 GB of goodput.
		s.OverallGoodput = units.BitRate(8 * float64(c.BytesGoodput) / end.Seconds())
	}
	return s
}

// String renders a human-readable block, used by cmd/vertigo-sim.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration            %v\n", s.Duration)
	fmt.Fprintf(&b, "flows               %d started, %d completed (%.1f%%)\n",
		s.FlowsStarted, s.FlowsCompleted, s.FlowCompletionP)
	fmt.Fprintf(&b, "FCT                 mean %v  p99 %v  (mice mean %v)\n",
		s.MeanFCT, s.P99FCT, s.MeanMiceFCT)
	fmt.Fprintf(&b, "queries             %d started, %d completed (%.1f%%)\n",
		s.QueriesStarted, s.QueriesCompleted, s.QueryCompletionP)
	fmt.Fprintf(&b, "QCT                 mean %v  p99 %v\n", s.MeanQCT, s.P99QCT)
	fmt.Fprintf(&b, "packets             %d sent, %d delivered, %d dropped (%.4f%%)\n",
		s.PacketsSent, s.PacketsRecv, s.Drops, 100*s.DropRate)
	fmt.Fprintf(&b, "deflections         %d\n", s.Deflections)
	fmt.Fprintf(&b, "mean hops           %.2f\n", s.MeanHops)
	fmt.Fprintf(&b, "retransmits         %d (%d RTO, %d fast)\n", s.Retransmits, s.RTOs, s.FastRetx)
	fmt.Fprintf(&b, "reordered pkts      %d (%.4f%%)\n", s.ReorderPkts, 100*s.ReorderRate)
	fmt.Fprintf(&b, "goodput             %v overall, %v per elephant (%d flows)\n",
		s.OverallGoodput, s.ElephantGoodput, s.ElephantFlows)
	return b.String()
}
