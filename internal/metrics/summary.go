package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vertigo/internal/units"
)

// Thresholds used by the paper's flow-size breakdowns (§2).
const (
	MiceMaxBytes     = 100 * 1000       // "mice" flows: < 100 KB
	ElephantMinBytes = 10 * 1000 * 1000 // "elephant" flows: > 10 MB
)

// Summary is the digest of one simulation run: every scalar the paper's
// tables and figures report. The JSON tags are the one schema shared by
// results.json artifacts and any downstream tooling; time fields are
// nanoseconds, rates are bits per second.
type Summary struct {
	Duration units.Time `json:"duration_ns"`

	// Flows (all classes).
	FlowsStarted    int        `json:"flows_started"`
	FlowsCompleted  int        `json:"flows_completed"`
	FlowCompletionP float64    `json:"flow_completion_pct"` // percent
	MeanFCT         units.Time `json:"mean_fct_ns"`
	P99FCT          units.Time `json:"p99_fct_ns"`

	// Mice / elephant breakdown over completed flows.
	MeanMiceFCT     units.Time    `json:"mean_mice_fct_ns"`
	ElephantGoodput units.BitRate `json:"elephant_goodput_bps"` // mean per-elephant-flow goodput
	ElephantFlows   int           `json:"elephant_flows"`

	// Incast queries.
	QueriesStarted   int        `json:"queries_started"`
	QueriesCompleted int        `json:"queries_completed"`
	QueryCompletionP float64    `json:"query_completion_pct"`
	MeanQCT          units.Time `json:"mean_qct_ns"`
	P99QCT           units.Time `json:"p99_qct_ns"`

	// Network counters.
	PacketsSent    int64         `json:"packets_sent"`
	PacketsRecv    int64         `json:"packets_recv"`
	Drops          int64         `json:"drops"`
	DropRate       float64       `json:"drop_rate"` // drops / data packets sent
	Deflections    int64         `json:"deflections"`
	ECNMarks       int64         `json:"ecn_marks"`
	MeanHops       float64       `json:"mean_hops"`
	Retransmits    int64         `json:"retransmits"`
	RTOs           int64         `json:"rtos"`
	FastRetx       int64         `json:"fast_retx"`
	ReorderPkts    int64         `json:"reorder_pkts"`
	ReorderRate    float64       `json:"reorder_rate"` // reordered / delivered
	OverallGoodput units.BitRate `json:"overall_goodput_bps"`

	// Fault-injection accounting. DropsByReason breaks Drops down per class
	// (overflow, deflect-full, ttl, link-down, corrupt, other); MTTR is the
	// mean carrier-loss duration over links that recovered in-run.
	DropsByReason  map[string]int64 `json:"drops_by_reason,omitempty"`
	FaultEvents    int64            `json:"fault_events,omitempty"`
	FIBInstalls    int64            `json:"fib_installs,omitempty"`
	LinkRecoveries int              `json:"link_recoveries,omitempty"`
	MTTR           units.Time       `json:"mttr_ns,omitempty"`
	PostRecoveryTx int64            `json:"post_recovery_tx,omitempty"`

	// Log-bucketed completion-time distributions: the whole shape survives
	// serialization even when the raw series are stripped (Compact).
	// FCTHist merges the per-class histograms; the class-specific shapes
	// ride along so the incast/background split survives too.
	FCTHist           *Histogram `json:"fct_hist,omitempty"`
	QCTHist           *Histogram `json:"qct_hist,omitempty"`
	FCTHistBackground *Histogram `json:"fct_hist_background,omitempty"`
	FCTHistIncast     *Histogram `json:"fct_hist_incast,omitempty"`
	TTRHist           *Histogram `json:"ttr_hist,omitempty"`

	// Raw series kept for CDF figures. Optional: the collector's RawSeries
	// mode drops them for large runs (see RawMode), in which case
	// FCTPercentile/QCTPercentile and CDF figures read the histograms.
	FCTs []units.Time `json:"fcts_ns,omitempty"`
	QCTs []units.Time `json:"qcts_ns,omitempty"`
}

// FCTPercentile returns the p-th percentile (0 < p <= 100) of flow
// completion times: exact from the raw series when kept, otherwise the
// histogram's nearest-rank bucket bound (factor-of-two resolution).
func (s *Summary) FCTPercentile(p float64) units.Time {
	if len(s.FCTs) > 0 {
		return Percentile(s.FCTs, p)
	}
	if s.FCTHist != nil {
		return units.Time(s.FCTHist.Quantile(p / 100))
	}
	return 0
}

// QCTPercentile returns the p-th percentile of query completion times; see
// FCTPercentile for raw-vs-histogram resolution.
func (s *Summary) QCTPercentile(p float64) units.Time {
	if len(s.QCTs) > 0 {
		return Percentile(s.QCTs, p)
	}
	if s.QCTHist != nil {
		return units.Time(s.QCTHist.Quantile(p / 100))
	}
	return 0
}

// FCTCDF returns up to maxPoints of the flow-completion-time CDF: the
// empirical CDF when the raw series is kept, the histogram CDF otherwise.
func (s *Summary) FCTCDF(maxPoints int) []CDFPoint {
	if len(s.FCTs) > 0 {
		return CDF(s.FCTs, maxPoints)
	}
	return s.FCTHist.CDF(maxPoints)
}

// QCTCDF returns up to maxPoints of the query-completion-time CDF; see
// FCTCDF.
func (s *Summary) QCTCDF(maxPoints int) []CDFPoint {
	if len(s.QCTs) > 0 {
		return CDF(s.QCTs, maxPoints)
	}
	return s.QCTHist.CDF(maxPoints)
}

// Summarize digests the collector at simulation end time end. Every scalar
// is read from the streaming aggregates (exact integer sums and counts);
// percentiles and CDFs are exact while the raw series are kept and served
// from the log-bucketed histograms past the RawMode cutoff.
func (c *Collector) Summarize(end units.Time) *Summary {
	s := &Summary{Duration: end, FlowsStarted: c.flowsStarted, QueriesStarted: len(c.Queries)}

	s.FlowsCompleted = c.flowsCompleted
	s.ElephantFlows = c.elephFlows
	s.ElephantGoodput = c.elephGoodput
	if s.ElephantFlows > 0 {
		s.ElephantGoodput /= units.BitRate(s.ElephantFlows)
	}
	if s.FlowsStarted > 0 {
		s.FlowCompletionP = 100 * float64(s.FlowsCompleted) / float64(s.FlowsStarted)
	}
	if c.flowsCompleted > 0 {
		s.MeanFCT = units.Time(c.fctSum / int64(c.flowsCompleted))
	}
	if c.miceCount > 0 {
		s.MeanMiceFCT = units.Time(c.miceSum / c.miceCount)
	}
	s.FCTHist = mergedHist(&c.fctHist[Background], &c.fctHist[Incast])
	s.FCTHistBackground = histCopy(&c.fctHist[Background])
	s.FCTHistIncast = histCopy(&c.fctHist[Incast])
	if !c.recycling {
		s.FCTs = append([]units.Time(nil), c.fcts...)
		s.QCTs = append([]units.Time(nil), c.qcts...)
	}
	if len(s.FCTs) > 0 {
		s.P99FCT = Percentile(s.FCTs, 99)
	} else if s.FCTHist != nil {
		s.P99FCT = units.Time(s.FCTHist.Quantile(0.99))
	}

	for i := range c.Queries {
		if c.Queries[i].Completed {
			s.QueriesCompleted++
		}
	}
	if s.QueriesStarted > 0 {
		s.QueryCompletionP = 100 * float64(s.QueriesCompleted) / float64(s.QueriesStarted)
	}
	if s.QueriesCompleted > 0 {
		s.MeanQCT = units.Time(c.qctSum / int64(s.QueriesCompleted))
	}
	s.QCTHist = histCopy(&c.qctHist)
	if len(s.QCTs) > 0 {
		s.P99QCT = Percentile(s.QCTs, 99)
	} else if s.QCTHist != nil {
		s.P99QCT = units.Time(s.QCTHist.Quantile(0.99))
	}

	s.PacketsSent = c.PacketsSent
	s.PacketsRecv = c.PacketsRecv
	s.Drops = c.TotalDrops()
	if c.PacketsSent > 0 {
		s.DropRate = float64(s.Drops) / float64(c.PacketsSent)
	}
	s.Deflections = c.Deflections
	s.ECNMarks = c.ECNMarks
	if c.PacketsRecv > 0 {
		s.MeanHops = float64(c.HopSum) / float64(c.PacketsRecv)
		s.ReorderRate = float64(c.ReorderPkts) / float64(c.PacketsRecv)
	}
	s.Retransmits = c.Retransmits
	s.RTOs = c.RTOs
	s.FastRetx = c.FastRetx
	s.ReorderPkts = c.ReorderPkts
	for r := DropReason(0); r < numDropReasons; r++ {
		if c.Drops[r] > 0 {
			if s.DropsByReason == nil {
				s.DropsByReason = make(map[string]int64, NumDropReasons)
			}
			s.DropsByReason[r.String()] = c.Drops[r]
		}
	}
	s.FaultEvents = c.FaultEvents
	s.FIBInstalls = c.FIBInstalls
	s.LinkRecoveries = c.ttrCount
	s.MTTR = c.MTTR()
	s.TTRHist = histCopy(&c.ttrHist)
	s.PostRecoveryTx = c.PostRecoveryTx
	if end > 0 {
		// Computed in floating point: 8*bytes*1e9 overflows int64 beyond
		// ~1.1 GB of goodput.
		s.OverallGoodput = units.BitRate(8 * float64(c.BytesGoodput) / end.Seconds())
	}
	return s
}

// histCopy snapshots a live histogram, or nil for an empty one.
func histCopy(h *Histogram) *Histogram {
	if h.Count() == 0 {
		return nil
	}
	cp := *h
	return &cp
}

// mergedHist folds histograms into one snapshot, or nil if all are empty.
func mergedHist(hs ...*Histogram) *Histogram {
	out := &Histogram{}
	for _, h := range hs {
		out.Merge(h)
	}
	if out.Count() == 0 {
		return nil
	}
	return out
}

// Encode writes the summary as indented JSON. Together with DecodeSummary it
// is the round-trippable schema behind every results.json artifact.
func (s *Summary) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// DecodeSummary reads a summary previously written by Encode (or any JSON
// object in the same schema).
func DecodeSummary(r io.Reader) (*Summary, error) {
	s := &Summary{}
	if err := json.NewDecoder(r).Decode(s); err != nil {
		return nil, fmt.Errorf("metrics: decoding summary: %w", err)
	}
	return s, nil
}

// Compact returns a copy of the summary without the raw FCT/QCT series,
// suitable for per-run artifact records: the histograms preserve the
// distribution shape at a fraction of the bytes (a paper-scale run carries
// millions of raw samples).
func (s *Summary) Compact() *Summary {
	c := *s
	c.FCTs = nil
	c.QCTs = nil
	return &c
}

// String renders a human-readable block, used by cmd/vertigo-sim.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "duration            %v\n", s.Duration)
	fmt.Fprintf(&b, "flows               %d started, %d completed (%.1f%%)\n",
		s.FlowsStarted, s.FlowsCompleted, s.FlowCompletionP)
	fmt.Fprintf(&b, "FCT                 mean %v  p99 %v  (mice mean %v)\n",
		s.MeanFCT, s.P99FCT, s.MeanMiceFCT)
	fmt.Fprintf(&b, "queries             %d started, %d completed (%.1f%%)\n",
		s.QueriesStarted, s.QueriesCompleted, s.QueryCompletionP)
	fmt.Fprintf(&b, "QCT                 mean %v  p99 %v\n", s.MeanQCT, s.P99QCT)
	fmt.Fprintf(&b, "packets             %d sent, %d delivered, %d dropped (%.4f%%)\n",
		s.PacketsSent, s.PacketsRecv, s.Drops, 100*s.DropRate)
	fmt.Fprintf(&b, "deflections         %d\n", s.Deflections)
	fmt.Fprintf(&b, "mean hops           %.2f\n", s.MeanHops)
	fmt.Fprintf(&b, "retransmits         %d (%d RTO, %d fast)\n", s.Retransmits, s.RTOs, s.FastRetx)
	fmt.Fprintf(&b, "reordered pkts      %d (%.4f%%)\n", s.ReorderPkts, 100*s.ReorderRate)
	fmt.Fprintf(&b, "goodput             %v overall, %v per elephant (%d flows)\n",
		s.OverallGoodput, s.ElephantGoodput, s.ElephantFlows)
	if s.FaultEvents > 0 {
		fmt.Fprintf(&b, "faults              %d events, %d FIB heals, %d link recoveries (MTTR %v), %d post-recovery tx\n",
			s.FaultEvents, s.FIBInstalls, s.LinkRecoveries, s.MTTR, s.PostRecoveryTx)
	}
	return b.String()
}
