package metrics

import (
	"testing"

	"vertigo/internal/units"
)

// TestRecyclingBoundsLiveRecords pins the O(active flows) contract: under
// RawDrop every completed record's slot is recycled, so the live population
// tracks open flows, not total flows.
func TestRecyclingBoundsLiveRecords(t *testing.T) {
	c := NewCollector()
	c.RawSeries = RawDrop
	for i := uint64(1); i <= 10_000; i++ {
		c.StartFlow(FlowRecord{ID: i, Size: 1000, Start: 0, Query: -1})
		if i > 8 { // keep a window of 8 flows open
			c.EndFlow(i-8, units.Time(i)*units.Microsecond)
		}
	}
	if c.LiveFlows() != 8 {
		t.Fatalf("live records = %d, want the 8 still-open flows", c.LiveFlows())
	}
	if c.FlowsStarted() != 10_000 || c.FlowsCompleted() != 10_000-8 {
		t.Fatalf("started %d completed %d", c.FlowsStarted(), c.FlowsCompleted())
	}
	// Completed records are gone; open ones are still addressable.
	if c.Flow(1) != nil {
		t.Fatal("completed record survived recycling")
	}
	if c.Flow(10_000) == nil {
		t.Fatal("open flow lost")
	}
	s := c.Summarize(time(10_001))
	if s.FlowsCompleted != 10_000-8 || s.FCTHist == nil || s.FCTHist.Count() != 10_000-8 {
		t.Fatalf("summary lost streamed completions: %+v", s.FlowsCompleted)
	}
	if s.FCTs != nil {
		t.Fatal("RawDrop summary kept raw series")
	}
}

func time(us int) units.Time { return units.Time(us) * units.Microsecond }

// TestRawAutoCutoverPurges drives a collector past the RawAuto started-flows
// cutoff and checks the crossing: raw series dropped, already-completed
// records purged, and recycling on from then out.
func TestRawAutoCutoverPurges(t *testing.T) {
	c := NewCollector()
	n := RawAutoMaxFlows + 100
	for i := 1; i <= n; i++ {
		c.StartFlow(FlowRecord{ID: uint64(i), Size: 1000, Start: 0, Query: -1})
		c.EndFlow(uint64(i), time(i))
	}
	if c.LiveFlows() != 0 {
		t.Fatalf("live records = %d after cutover, want 0", c.LiveFlows())
	}
	s := c.Summarize(time(n + 1))
	if s.FCTs != nil {
		t.Fatal("raw series survived the RawAuto cutover")
	}
	if s.FlowsStarted != n || s.FlowsCompleted != n {
		t.Fatalf("counts %d/%d, want %d", s.FlowsCompleted, s.FlowsStarted, n)
	}
	if s.FCTHist == nil || s.FCTHist.Count() != uint64(n) {
		t.Fatal("histogram missing streamed completions")
	}
	// MeanFCT is exact: sum of 1..n µs over n = (n+1)*500 ns.
	want := units.Time(n+1) * 500
	if s.MeanFCT != want {
		t.Fatalf("MeanFCT = %v, want exact %v", s.MeanFCT, want)
	}
}

// TestCollectorMerge folds two shards and checks the combined summary
// matches a single collector fed both workloads.
func TestCollectorMerge(t *testing.T) {
	feed := func(c *Collector, base uint64, n int) {
		q := c.StartQuery(2, 0)
		c.StartFlow(FlowRecord{ID: base, Class: Incast, Size: 4000, Start: 0, Query: q})
		c.StartFlow(FlowRecord{ID: base + 1, Class: Incast, Size: 4000, Start: 0, Query: q})
		c.EndFlow(base, time(5))
		c.EndFlow(base+1, time(7))
		for i := 0; i < n; i++ {
			id := base + 2 + uint64(i)
			c.StartFlow(FlowRecord{ID: id, Size: 20_000_000, Start: 0, Query: -1})
			c.EndFlow(id, time(1000+i))
		}
		c.PacketsSent += int64(n) * 10
		c.Recovered(time(50))
	}
	a, b, whole := NewCollector(), NewCollector(), NewCollector()
	feed(a, 1000, 3)
	feed(b, 2000, 5)
	feed(whole, 1000, 3)
	feed(whole, 2000, 5)

	a.Merge(b)
	got, want := a.Summarize(time(10_000)), whole.Summarize(time(10_000))
	if got.FlowsStarted != want.FlowsStarted || got.FlowsCompleted != want.FlowsCompleted {
		t.Fatalf("flow counts %d/%d, want %d/%d",
			got.FlowsCompleted, got.FlowsStarted, want.FlowsCompleted, want.FlowsStarted)
	}
	if got.MeanFCT != want.MeanFCT || got.P99FCT != want.P99FCT {
		t.Fatalf("FCT scalars differ: mean %v/%v p99 %v/%v",
			got.MeanFCT, want.MeanFCT, got.P99FCT, want.P99FCT)
	}
	if got.MeanQCT != want.MeanQCT || got.QueriesCompleted != want.QueriesCompleted {
		t.Fatalf("QCT differs: %v/%v (%d/%d queries)",
			got.MeanQCT, want.MeanQCT, got.QueriesCompleted, want.QueriesCompleted)
	}
	if got.ElephantGoodput != want.ElephantGoodput || got.ElephantFlows != want.ElephantFlows {
		t.Fatalf("elephant goodput %v/%v", got.ElephantGoodput, want.ElephantGoodput)
	}
	if got.FCTHist.Count() != want.FCTHist.Count() || got.FCTHist.Sum() != want.FCTHist.Sum() {
		t.Fatal("merged histogram diverges from one-shot")
	}
	if got.PacketsSent != want.PacketsSent {
		t.Fatalf("counters not merged: %d vs %d", got.PacketsSent, want.PacketsSent)
	}
	if got.LinkRecoveries != 2 || got.MTTR != time(50) {
		t.Fatalf("recoveries %d MTTR %v, want 2 at 50µs", got.LinkRecoveries, got.MTTR)
	}
}

// TestRecoveriesBounded pins the flap-storm bound: recoveries stream into
// the TTR histogram, and the raw series exists only under RawKeep.
func TestRecoveriesBounded(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 100_000; i++ {
		c.Recovered(time(10))
	}
	if got := c.RecoveryTimes(); got != nil {
		t.Fatalf("raw recoveries kept without RawKeep: %d entries", len(got))
	}
	if c.RecoveryCount() != 100_000 || c.MTTR() != time(10) {
		t.Fatalf("count %d MTTR %v", c.RecoveryCount(), c.MTTR())
	}
	if c.TTRHist().Count() != 100_000 {
		t.Fatal("TTR histogram missed observations")
	}
	s := c.Summarize(time(1))
	if s.LinkRecoveries != 100_000 || s.MTTR != time(10) || s.TTRHist == nil {
		t.Fatalf("summary recoveries %d MTTR %v", s.LinkRecoveries, s.MTTR)
	}

	k := NewCollector()
	k.RawSeries = RawKeep
	k.Recovered(time(30))
	k.Recovered(time(10))
	if got := k.RecoveryTimes(); len(got) != 2 || got[0] != time(30) {
		t.Fatalf("RawKeep raw recoveries = %v", got)
	}
}
