package metrics

import (
	"reflect"
	"testing"

	"vertigo/internal/units"
)

func TestHistogramMergeAssociativity(t *testing.T) {
	mk := func(vals ...int64) *Histogram {
		h := &Histogram{}
		for _, v := range vals {
			h.Observe(v)
		}
		return h
	}
	parts := [][]int64{
		{1, 2, 3, 1000},
		{0, 7, 1 << 30},
		{5, 5, 5, 9999999},
	}
	// (a ⊕ b) ⊕ c
	left := mk(parts[0]...)
	left.Merge(mk(parts[1]...))
	left.Merge(mk(parts[2]...))
	// a ⊕ (b ⊕ c)
	bc := mk(parts[1]...)
	bc.Merge(mk(parts[2]...))
	right := mk(parts[0]...)
	right.Merge(bc)
	// one-shot over the concatenation
	var all []int64
	for _, p := range parts {
		all = append(all, p...)
	}
	direct := mk(all...)

	if !reflect.DeepEqual(left, right) {
		t.Errorf("merge not associative:\n(a+b)+c = %v\na+(b+c) = %v", left, right)
	}
	if !reflect.DeepEqual(left, direct) {
		t.Errorf("merged shards differ from one-shot histogram:\nmerged = %v\ndirect = %v", left, direct)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	pts := h.CDF(100)
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	last := pts[len(pts)-1]
	if last.Fraction != 1 || last.Value != 1000 {
		t.Errorf("final point = %+v, want fraction 1 at clamped max 1000", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value <= pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatalf("CDF not strictly increasing at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	// Each point's fraction must match the true empirical CDF at its value:
	// for uniform 1..1000, F(v) = v/1000.
	for _, p := range pts {
		want := float64(p.Value) / 1000
		if diff := p.Fraction - want; diff < -1e-9 || diff > 1e-9 {
			t.Errorf("CDF(%d) = %.4f, want %.4f", p.Value, p.Fraction, want)
		}
	}
	// Downsampling keeps the final point.
	if short := h.CDF(3); len(short) != 3 || short[2].Fraction != 1 {
		t.Errorf("CDF(3) = %+v, want 3 points ending at fraction 1", short)
	}
	var nilH *Histogram
	if nilH.CDF(10) != nil || (&Histogram{}).CDF(10) != nil {
		t.Error("nil/empty histogram CDF should be nil")
	}
}

func TestParseRawMode(t *testing.T) {
	for s, want := range map[string]RawMode{"auto": RawAuto, "": RawAuto, "keep": RawKeep, "drop": RawDrop} {
		got, err := ParseRawMode(s)
		if err != nil || got != want {
			t.Errorf("ParseRawMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRawMode("bogus"); err == nil {
		t.Error("ParseRawMode(bogus) should error")
	}
	if RawDrop.String() != "drop" || RawKeep.String() != "keep" || RawAuto.String() != "auto" {
		t.Error("RawMode String values wrong")
	}
}

// summarizeFlows builds a collector with n completed flows (FCT = i+1 µs)
// and digests it under mode m.
func summarizeFlows(n int, m RawMode) *Summary {
	c := NewCollector()
	c.RawSeries = m
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		c.StartFlow(FlowRecord{ID: id, Size: 1000, Start: 0, Query: -1})
		c.EndFlow(id, units.Time(i+1)*units.Microsecond)
	}
	return c.Summarize(units.Time(n+1) * units.Microsecond)
}

func TestSummarizeRawModes(t *testing.T) {
	// RawAuto keeps small runs byte-for-byte as before.
	s := summarizeFlows(100, RawAuto)
	if len(s.FCTs) != 100 {
		t.Errorf("RawAuto small run dropped raw series (%d kept)", len(s.FCTs))
	}
	// RawDrop strips the slices; sums and counts stream so the mean stays
	// exact, while percentiles are served from the histogram (factor-of-two
	// bucket bounds).
	d := summarizeFlows(100, RawDrop)
	if d.FCTs != nil || d.QCTs != nil {
		t.Error("RawDrop kept raw series")
	}
	if d.MeanFCT != s.MeanFCT {
		t.Errorf("RawDrop changed the exact mean: %v vs %v", d.MeanFCT, s.MeanFCT)
	}
	if want := units.Time(d.FCTHist.Quantile(0.99)); d.P99FCT != want {
		t.Errorf("RawDrop p99 = %v, want histogram quantile %v", d.P99FCT, want)
	}
	if d.FCTHist == nil || d.FCTHist.Count() != 100 {
		t.Fatal("RawDrop summary lacks the FCT histogram")
	}
	// Percentile fallback: histogram bound within a factor of two above the
	// exact raw value, never below it.
	for _, p := range []float64{50, 90, 99} {
		exact, approx := s.FCTPercentile(p), d.FCTPercentile(p)
		if approx < exact || approx > 2*exact {
			t.Errorf("p%.0f fallback %v outside [%v, %v]", p, approx, exact, 2*exact)
		}
	}
	// CDF fallback exists and terminates at the max.
	cdf := d.FCTCDF(64)
	if len(cdf) == 0 || cdf[len(cdf)-1].Fraction != 1 {
		t.Errorf("histogram CDF fallback wrong: %+v", cdf)
	}
}
