package metrics

import "fmt"

// RawMode controls whether Summarize keeps the raw per-flow FCT/QCT series
// on the Summary next to the log-bucketed histograms. The histograms carry
// the whole distribution in 65 counters and merge across sharded runs, so
// the raw series exist only for exact percentiles and fine-grained CDF
// figures — a luxury that stops scaling around a million flows.
type RawMode int

// Raw-series modes.
const (
	// RawAuto (the default) keeps the raw series while the run is small —
	// at most RawAutoMaxFlows started flows — and drops them beyond that.
	// The threshold is on flows *started*, which is fixed by the workload
	// configuration, so whether a run keeps its raw series never depends on
	// completion behaviour.
	RawAuto RawMode = iota
	// RawKeep always keeps the raw series.
	RawKeep
	// RawDrop always drops them; percentiles and CDFs fall back to the
	// histograms at factor-of-two resolution.
	RawDrop
)

// RawAutoMaxFlows is RawAuto's cutoff on flows started. 200k flows of raw
// int64 samples is ~1.6 MB per summary — past that the histograms take over.
const RawAutoMaxFlows = 200_000

func (m RawMode) String() string {
	switch m {
	case RawKeep:
		return "keep"
	case RawDrop:
		return "drop"
	default:
		return "auto"
	}
}

// ParseRawMode parses "auto", "keep" or "drop".
func ParseRawMode(s string) (RawMode, error) {
	switch s {
	case "auto", "":
		return RawAuto, nil
	case "keep":
		return RawKeep, nil
	case "drop":
		return RawDrop, nil
	}
	return RawAuto, fmt.Errorf("metrics: unknown raw-series mode %q (want auto, keep or drop)", s)
}

// keepRaw reports whether a summary with n started flows keeps raw series.
func (m RawMode) keepRaw(n int) bool {
	switch m {
	case RawKeep:
		return true
	case RawDrop:
		return false
	default:
		return n <= RawAutoMaxFlows
	}
}
