package metrics

import "vertigo/internal/obs"

// Process-global workload metrics, bumped by every collector in the process.
// Flow and query lifecycle events are rare next to per-packet work, so they
// hit the registry directly; the FCT/QCT histograms give a live scrape the
// same log-2 distribution shape the end-of-run Summary histograms carry.
var (
	obsFlowsStarted     = obs.NewCounter("vertigo_workload_flows_started_total", "flows registered by collectors")
	obsFlowsCompleted   = obs.NewCounter("vertigo_workload_flows_completed_total", "flows completed")
	obsQueriesStarted   = obs.NewCounter("vertigo_workload_queries_started_total", "incast queries started")
	obsQueriesCompleted = obs.NewCounter("vertigo_workload_queries_completed_total", "incast queries fully answered")
	obsFCT              = obs.NewHistogram("vertigo_workload_fct_ns", "flow completion times")
	obsQCT              = obs.NewHistogram("vertigo_workload_qct_ns", "query completion times")
)
