package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count %d, want 9", h.Count())
	}
	want := []Bucket{
		{0, 0, 1},       // 0
		{1, 1, 1},       // 1
		{2, 3, 2},       // 2, 3
		{4, 7, 2},       // 4, 7
		{8, 15, 1},      // 8
		{512, 1023, 1},  // 1023
		{1024, 2047, 1}, // 1024
	}
	if got := h.Buckets(); !reflect.DeepEqual(got, want) {
		t.Errorf("buckets %v, want %v", got, want)
	}
	if h.Min() != 0 || h.Max() != 1024 {
		t.Errorf("min/max %d/%d, want 0/1024", h.Min(), h.Max())
	}
	if h.Sum() != 2072 {
		t.Errorf("sum %d, want 2072", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	// Quantile returns the bucket's upper edge, so the estimate is within a
	// factor of two above the exact value.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		exact := q * 1000
		got := float64(h.Quantile(q))
		if got < exact || got > 2*exact+1 {
			t.Errorf("Quantile(%.2f) = %.0f, want within [%.0f, %.0f]", q, got, exact, 2*exact+1)
		}
	}
	if h.Quantile(1) != 1000 {
		t.Errorf("Quantile(1) = %d, want exact max 1000", h.Quantile(1))
	}
	if h.Quantile(0) != 1 {
		t.Errorf("Quantile(0) = %d, want exact min 1", h.Quantile(0))
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Errorf("mean %.3f, want 500.5", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := &Histogram{}
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram scalars not all zero")
	}
	if h.Buckets() != nil {
		t.Error("empty histogram has buckets")
	}
	if h.String() != "hist{empty}" {
		t.Errorf("String() = %q", h.String())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for v := int64(1); v <= 10; v++ {
		a.Observe(v)
		b.Observe(v * 100)
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(&Histogram{})
	if a.Count() != 20 || a.Min() != 1 || a.Max() != 1000 {
		t.Errorf("merged count/min/max = %d/%d/%d", a.Count(), a.Min(), a.Max())
	}
	if a.Sum() != 55+5500 {
		t.Errorf("merged sum %d, want %d", a.Sum(), 55+5500)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, 1, 5, 40_000, 2_000_000_000} {
		h.Observe(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	back := &Histogram{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, back) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back, h)
	}
	// Empty histogram round-trips too.
	data, err = json.Marshal(&Histogram{})
	if err != nil {
		t.Fatal(err)
	}
	back = &Histogram{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != 0 {
		t.Errorf("empty round trip has count %d", back.Count())
	}
}
