package metrics

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vertigo/internal/units"
)

// fullSummary builds a summary with every field populated, so the round
// trip exercises the whole schema.
func fullSummary() *Summary {
	c := NewCollector()
	c.StartFlow(FlowRecord{ID: 1, Size: 50_000, Start: 0, Query: -1})
	c.StartFlow(FlowRecord{ID: 2, Size: 20_000_000, Start: 0, Query: -1})
	c.StartFlow(FlowRecord{ID: 3, Size: 1000, Start: 0, Query: c.StartQuery(1, 0)})
	c.EndFlow(1, 2*units.Millisecond)
	c.EndFlow(2, 40*units.Millisecond)
	c.EndFlow(3, 500*units.Microsecond)
	c.Drop(DropOverflow, Background)
	c.Deflections = 7
	c.ECNMarks = 3
	c.PacketsSent = 1000
	c.PacketsRecv = 990
	c.BytesGoodput = 20_051_000
	c.HopSum = 2970
	c.Retransmits = 4
	c.RTOs = 1
	c.FastRetx = 3
	c.ReorderPkts = 12
	return c.Summarize(50 * units.Millisecond)
}

func TestSummaryEncodeDecodeRoundTrip(t *testing.T) {
	s := fullSummary()
	if s.FCTHist == nil || s.FCTHist.Count() != 3 {
		t.Fatalf("Summarize did not build the FCT histogram: %v", s.FCTHist)
	}
	if s.QCTHist == nil || s.QCTHist.Count() != 1 {
		t.Fatalf("Summarize did not build the QCT histogram: %v", s.QCTHist)
	}
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSummary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
}

func TestSummaryJSONFieldNames(t *testing.T) {
	// The schema is shared with external tooling: pin the key spelling.
	var buf bytes.Buffer
	if err := fullSummary().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, key := range []string{
		`"duration_ns"`, `"flows_completed"`, `"mean_fct_ns"`, `"p99_qct_ns"`,
		`"packets_sent"`, `"drop_rate"`, `"deflections"`, `"overall_goodput_bps"`,
		`"fct_hist"`, `"qct_hist"`, `"fcts_ns"`, `"qcts_ns"`,
	} {
		if !strings.Contains(out, key) {
			t.Errorf("encoded summary missing key %s", key)
		}
	}
	// No field may have escaped untagged: Go-style exported names would leak
	// PascalCase keys into the schema.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for key := range raw {
		if key[0] >= 'A' && key[0] <= 'Z' {
			t.Errorf("untagged field leaked into JSON: %q", key)
		}
	}
}

func TestSummaryCompact(t *testing.T) {
	s := fullSummary()
	c := s.Compact()
	if c.FCTs != nil || c.QCTs != nil {
		t.Error("Compact kept raw series")
	}
	if c.FCTHist == nil || c.MeanFCT != s.MeanFCT || c.PacketsSent != s.PacketsSent {
		t.Error("Compact dropped more than the raw series")
	}
	if s.FCTs == nil {
		t.Error("Compact mutated the original")
	}
}
