package host

import (
	"sort"

	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// OrdererConfig parameterizes the RX-path ordering component.
type OrdererConfig struct {
	// Timeout is τ, the maximum time to hold early packets while waiting for
	// a delayed (deflected) packet (paper default 360 µs).
	Timeout units.Time
	// Discipline must match the sender's marking discipline: it determines
	// whether the position value decreases (SRPT) or increases (LAS) along
	// the flow.
	Discipline Discipline
	// BoostFactorLog2 must match the marker's, so boosted RFS values can be
	// reverted with retcnt inverse rotations.
	BoostFactorLog2 uint
}

// DefaultOrdererConfig returns the paper's default ordering settings.
func DefaultOrdererConfig() OrdererConfig {
	return OrdererConfig{Timeout: 360 * units.Microsecond, Discipline: SRPT, BoostFactorLog2: 1}
}

// ooEntry is one buffered out-of-order packet.
type ooEntry struct {
	p       *packet.Packet
	v       uint32 // un-boosted position value
	arrived units.Time
}

// orderFlow is the per-flow state of the Fig. 4 state machine. The three
// paper states map onto the fields: Init ⇔ no state, In-order Receive ⇔
// empty buf, Out-of-order Receive ⇔ non-empty buf (timer armed).
type orderFlow struct {
	hasExpected bool
	expected    uint32 // position value of the next in-order packet
	finished    bool   // flow fully delivered; state lingers as a tombstone
	buf         []ooEntry
	timer       sim.Timer
}

// Orderer is the RX-path ordering component: the first software entity to
// see packets off the NIC. It detects out-of-order (deflected) packets,
// buffers them up to τ, and releases a correctly ordered stream to the
// transport, which therefore never observes deflection-induced reordering
// unless a packet was truly lost (§3.3). Not safe for concurrent use.
type Orderer struct {
	eng     *sim.Engine
	cfg     OrdererConfig
	deliver func(*packet.Packet)
	flows   map[uint64]*orderFlow
	met     *metrics.Collector // optional aggregate telemetry

	// Telemetry.
	Held     int64 // packets buffered at least once
	Timeouts int64 // τ expirations
	Releases int64 // packets released by a timeout (ahead of a gap)
}

// NewOrderer returns an ordering component delivering in-order packets via
// the deliver callback.
func NewOrderer(eng *sim.Engine, cfg OrdererConfig, deliver func(*packet.Packet)) *Orderer {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultOrdererConfig().Timeout
	}
	return &Orderer{eng: eng, cfg: cfg, deliver: deliver, flows: make(map[uint64]*orderFlow)}
}

// SetCollector mirrors the orderer's telemetry into a metrics collector.
func (o *Orderer) SetCollector(met *metrics.Collector) { o.met = met }

// ActiveFlows returns the number of flows with ordering state.
func (o *Orderer) ActiveFlows() int { return len(o.flows) }

// position returns the packet's un-boosted position value.
func (o *Orderer) position(p *packet.Packet) uint32 {
	return packet.UnboostRFS(p.Info.RFS, p.Info.RetCnt, o.cfg.BoostFactorLog2)
}

// before reports whether position a precedes position b in flow order:
// under SRPT the remaining size shrinks along the flow, under LAS the age
// grows.
func (o *Orderer) before(a, b uint32) bool {
	if o.cfg.Discipline == SRPT {
		return a > b
	}
	return a < b
}

// next returns the expected position after delivering p at position v.
func (o *Orderer) next(v uint32, p *packet.Packet) uint32 {
	if o.cfg.Discipline == SRPT {
		return v - uint32(p.PayloadLen)
	}
	return v + 1
}

// done reports whether delivering p (making nextExpected current) ends the
// flow: under SRPT the expected remaining size reaches zero; under LAS the
// FIN-marked packet has been delivered.
func (o *Orderer) done(nextExpected uint32, p *packet.Packet) bool {
	if o.cfg.Discipline == SRPT {
		return nextExpected == 0
	}
	return p.Fin
}

// Receive processes one marked data packet.
func (o *Orderer) Receive(p *packet.Packet) {
	v := o.position(p)
	st := o.flows[p.Flow]
	if st == nil {
		st = &orderFlow{}
		o.flows[p.Flow] = st
		if p.Info.First {
			st.hasExpected = true
			st.expected = v
		}
		// A flow whose first-seen packet is not flagged First started with
		// reordering; we buffer until the First packet or a timeout reveals
		// where to start.
	}

	switch {
	case st.finished:
		// Tombstone: the flow is fully delivered, so anything arriving now is
		// a straggling duplicate or retransmission. Forward it immediately;
		// the transport deduplicates (paper §3.3.2 case 3).
		o.deliver(p)
	case st.hasExpected && v == st.expected:
		o.deliverRun(p.Flow, st, p, v)
	case !st.hasExpected && p.Info.First:
		st.hasExpected = true
		st.expected = v
		o.deliverRun(p.Flow, st, p, v)
	case st.hasExpected && o.before(v, st.expected):
		// Position already passed: a delayed retransmission or duplicate
		// (paper case 3). Hand it straight up; the transport deduplicates.
		o.deliver(p)
	default:
		o.bufferEarly(st, p, v)
	}
}

// deliverRun delivers p, then drains every buffered packet that has become
// consecutive. It finishes or re-arms the flow's timer as appropriate.
func (o *Orderer) deliverRun(flow uint64, st *orderFlow, p *packet.Packet, v uint32) {
	o.deliver(p)
	st.expected = o.next(v, p)
	finished := o.done(st.expected, p)
	for len(st.buf) > 0 && st.buf[0].v == st.expected {
		e := st.buf[0]
		st.buf = st.buf[1:]
		o.deliver(e.p)
		st.expected = o.next(e.v, e.p)
		finished = o.done(st.expected, e.p)
	}
	if finished && len(st.buf) == 0 {
		o.finish(flow, st)
		return
	}
	o.rearm(flow, st)
}

// finish marks a flow fully delivered. The state lingers as a tombstone for
// one τ so that straggling duplicates (e.g. a retransmission that crossed
// paths with the original) pass straight through instead of being buffered,
// then is reclaimed.
func (o *Orderer) finish(flow uint64, st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	st.finished = true
	st.buf = nil
	o.eng.After(o.cfg.Timeout, func() {
		if cur := o.flows[flow]; cur == st {
			delete(o.flows, flow)
		}
	})
}

// bufferEarly inserts an early packet into the flow-ordered buffer,
// discarding duplicates, and arms the timer.
func (o *Orderer) bufferEarly(st *orderFlow, p *packet.Packet, v uint32) {
	i := sort.Search(len(st.buf), func(i int) bool { return !o.before(st.buf[i].v, v) })
	if i < len(st.buf) && st.buf[i].v == v {
		return // duplicate of an already-buffered packet
	}
	st.buf = append(st.buf, ooEntry{})
	copy(st.buf[i+1:], st.buf[i:])
	st.buf[i] = ooEntry{p: p, v: v, arrived: o.eng.Now()}
	o.Held++
	if o.met != nil {
		o.met.OrderingHeld++
	}
	if !st.timer.Pending() {
		o.armAt(flowOf(p), st, st.buf[0].arrived+o.cfg.Timeout)
	}
}

func flowOf(p *packet.Packet) uint64 { return p.Flow }

// debugTimeout, when set by tests, observes every ordering timeout.
var debugTimeout func(flow uint64, hasExp bool, expected, headV uint32, buflen int, now units.Time)

// rearm resets the timer to the head-of-buffer arrival plus τ (paper §3.3.2
// event 2), or disarms it when nothing is buffered.
func (o *Orderer) rearm(flow uint64, st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	if len(st.buf) > 0 {
		o.armAt(flow, st, st.buf[0].arrived+o.cfg.Timeout)
	}
}

func (o *Orderer) armAt(flow uint64, st *orderFlow, at units.Time) {
	if at < o.eng.Now() {
		at = o.eng.Now()
	}
	st.timer = o.eng.At(at, func() { o.timeout(flow) })
}

// timeout releases buffered packets up to the next gap (paper §3.3.2 event
// 4): the transport now sees the gap and can run its own loss recovery.
func (o *Orderer) timeout(flow uint64) {
	st := o.flows[flow]
	if st == nil {
		return
	}
	st.timer = sim.Timer{}
	if len(st.buf) == 0 {
		// Nothing held (state was idle): drop stale flow state.
		if !st.hasExpected {
			delete(o.flows, flow)
		}
		return
	}
	o.Timeouts++
	if o.met != nil {
		o.met.OrderTimeout++
	}
	if debugTimeout != nil {
		debugTimeout(flow, st.hasExpected, st.expected, st.buf[0].v, len(st.buf), o.eng.Now())
	}
	// Skip the gap: the next packet in flow order becomes the new expected.
	e := st.buf[0]
	st.buf = st.buf[1:]
	st.hasExpected = true
	st.expected = e.v
	o.Releases++
	o.deliverRun(flow, st, e.p, e.v)
}
