package host

import (
	"vertigo/internal/arena"
	"vertigo/internal/flowtab"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// OrdererConfig parameterizes the RX-path ordering component.
type OrdererConfig struct {
	// Timeout is τ, the maximum time to hold early packets while waiting for
	// a delayed (deflected) packet (paper default 360 µs).
	Timeout units.Time
	// Discipline must match the sender's marking discipline: it determines
	// whether the position value decreases (SRPT) or increases (LAS) along
	// the flow.
	Discipline Discipline
	// BoostFactorLog2 must match the marker's, so boosted RFS values can be
	// reverted with retcnt inverse rotations.
	BoostFactorLog2 uint
}

// DefaultOrdererConfig returns the paper's default ordering settings.
func DefaultOrdererConfig() OrdererConfig {
	return OrdererConfig{Timeout: 360 * units.Microsecond, Discipline: SRPT, BoostFactorLog2: 1}
}

// orderFlow is the per-flow state of the Fig. 4 state machine. The three
// paper states map onto the fields: Init ⇔ no state, In-order Receive ⇔
// empty buffer, Out-of-order Receive ⇔ non-empty buffer (timer armed).
//
// Entries live in the flow table's slab and are recycled: newFlow resets
// the semantic fields while the buffer keeps its backing arrays, and the
// timer callbacks — built once per slab slot around a stable table ref —
// are shared by every flow that ever occupies the slot.
//
// The reorder buffer is struct-of-arrays: held packet i of the live window
// [head, len) is (bufP[i], bufV[i], bufAt[i]). Splitting the former
// 24-byte entry struct keeps the position values bufferEarly binary-searches
// densely packed — sixteen uint32 per cache line instead of two entries —
// and lets each array recycle through the orderer's shared arena
// independently when a burst-grown flow quiesces.
type orderFlow struct {
	hasExpected bool
	finished    bool   // flow fully delivered; state lingers as a tombstone
	expected    uint32 // position value of the next in-order packet
	finishedAt  units.Time
	head        int              // index of the first live entry
	bufP        []*packet.Packet // held packets, flow order
	bufV        []uint32         // their un-boosted position values
	bufAt       []units.Time     // their arrival times (timer deadlines)
	timer       sim.Timer
	timeoutFn   func() // prebuilt o.timeoutRef(slot) closure
	reclaimFn   func() // prebuilt o.reclaimRef(slot) closure
}

// Orderer is the RX-path ordering component: the first software entity to
// see packets off the NIC. It detects out-of-order (deflected) packets,
// buffers them up to τ, and releases a correctly ordered stream to the
// transport, which therefore never observes deflection-induced reordering
// unless a packet was truly lost (§3.3). Not safe for concurrent use.
type Orderer struct {
	eng     *sim.Engine
	cfg     OrdererConfig
	deliver func(*packet.Packet)
	flows   *flowtab.Table[orderFlow]
	met     *metrics.Collector // optional aggregate telemetry

	// Shared arenas for burst-grown reorder buffers: a flow that quiesces
	// with oversized arrays returns them here and the next burst — on any
	// flow of this host — reuses them, so deflection storms size memory by
	// concurrent burstiness, not by how many flows ever saw one.
	arP arena.Pool[*packet.Packet]
	arV arena.Pool[uint32]
	arT arena.Pool[units.Time]

	// Telemetry.
	Held     int64 // packets buffered at least once
	Timeouts int64 // τ expirations
	Releases int64 // packets released by a timeout (ahead of a gap)
}

// NewOrderer returns an ordering component delivering in-order packets via
// the deliver callback.
func NewOrderer(eng *sim.Engine, cfg OrdererConfig, deliver func(*packet.Packet)) *Orderer {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultOrdererConfig().Timeout
	}
	return &Orderer{eng: eng, cfg: cfg, deliver: deliver, flows: flowtab.New[orderFlow](64)}
}

// SetCollector mirrors the orderer's telemetry into a metrics collector.
func (o *Orderer) SetCollector(met *metrics.Collector) { o.met = met }

// ActiveFlows returns the number of flows with ordering state.
func (o *Orderer) ActiveFlows() int { return o.flows.Len() }

// position returns the packet's un-boosted position value.
func (o *Orderer) position(p *packet.Packet) uint32 {
	return packet.UnboostRFS(p.Info.RFS, p.Info.RetCnt, o.cfg.BoostFactorLog2)
}

// before reports whether position a precedes position b in flow order:
// under SRPT the remaining size shrinks along the flow, under LAS the age
// grows.
func (o *Orderer) before(a, b uint32) bool {
	if o.cfg.Discipline == SRPT {
		return a > b
	}
	return a < b
}

// next returns the expected position after delivering p at position v.
func (o *Orderer) next(v uint32, p *packet.Packet) uint32 {
	if o.cfg.Discipline == SRPT {
		return v - uint32(p.PayloadLen)
	}
	return v + 1
}

// done reports whether delivering p (making nextExpected current) ends the
// flow: under SRPT the expected remaining size reaches zero; under LAS the
// FIN-marked packet has been delivered.
func (o *Orderer) done(nextExpected uint32, p *packet.Packet) bool {
	if o.cfg.Discipline == SRPT {
		return nextExpected == 0
	}
	return p.Fin
}

// newFlow creates ordering state for a first-seen flow, recycling a slab
// slot (and its buffer backing / timer closures) when one is free.
func (o *Orderer) newFlow(p *packet.Packet, v uint32) *orderFlow {
	st, _ := o.flows.PutReuse(p.Flow)
	st.hasExpected = false
	st.finished = false
	st.expected = 0
	st.finishedAt = 0
	st.head = 0
	st.bufP = st.bufP[:0]
	st.bufV = st.bufV[:0]
	st.bufAt = st.bufAt[:0]
	st.timer = sim.Timer{}
	if st.timeoutFn == nil {
		slot := o.flows.Ref(p.Flow)
		st.timeoutFn = func() { o.timeoutRef(slot) }
		st.reclaimFn = func() { o.reclaimRef(slot) }
	}
	if p.Info.First {
		st.hasExpected = true
		st.expected = v
	}
	// A flow whose first-seen packet is not flagged First started with
	// reordering; we buffer until the First packet or a timeout reveals
	// where to start.
	return st
}

// Receive processes one marked data packet.
func (o *Orderer) Receive(p *packet.Packet) {
	v := o.position(p)
	st := o.flows.Get(p.Flow)
	if st == nil {
		st = o.newFlow(p, v)
	}

	switch {
	case st.finished:
		// Tombstone: the flow is fully delivered, so anything arriving now is
		// a straggling duplicate or retransmission. Forward it immediately;
		// the transport deduplicates (paper §3.3.2 case 3).
		o.deliver(p)
	case st.hasExpected && v == st.expected:
		o.deliverRun(st, p, v)
	case !st.hasExpected && p.Info.First:
		st.hasExpected = true
		st.expected = v
		o.deliverRun(st, p, v)
	case st.hasExpected && o.before(v, st.expected):
		// Position already passed: a delayed retransmission or duplicate
		// (paper case 3). Hand it straight up; the transport deduplicates.
		o.deliver(p)
	default:
		o.bufferEarly(st, p, v)
	}
}

// buffered returns the number of held packets.
func (st *orderFlow) buffered() int { return len(st.bufV) - st.head }

// keepBuf is the largest reorder-buffer capacity a quiesced slot keeps for
// its next flow; burst-grown arrays past it go back to the shared arena.
const keepBuf = 1024

// clearBuf empties the reorder buffer, dropping packet references. Modestly
// sized backing arrays stay with the slot for its next flow; burst-grown
// ones return to the orderer's shared arena instead of pinning the slot.
func (o *Orderer) clearBuf(st *orderFlow) {
	for i := st.head; i < len(st.bufP); i++ {
		st.bufP[i] = nil
	}
	if cap(st.bufV) > keepBuf {
		o.arP.Put(st.bufP)
		o.arV.Put(st.bufV)
		o.arT.Put(st.bufAt)
		st.bufP, st.bufV, st.bufAt = nil, nil, nil
	} else {
		st.bufP = st.bufP[:0]
		st.bufV = st.bufV[:0]
		st.bufAt = st.bufAt[:0]
	}
	st.head = 0
}

// growBuf widens the reorder buffer through the shared arena, copying the
// full occupied prefix (entries before head are already zero).
func (o *Orderer) growBuf(st *orderFlow) {
	need := 2 * len(st.bufV)
	if need < 8 {
		need = 8
	}
	p := o.arP.Get(need)[:len(st.bufP)]
	v := o.arV.Get(need)[:len(st.bufV)]
	at := o.arT.Get(need)[:len(st.bufAt)]
	copy(p, st.bufP)
	copy(v, st.bufV)
	copy(at, st.bufAt)
	o.arP.Put(st.bufP)
	o.arV.Put(st.bufV)
	o.arT.Put(st.bufAt)
	st.bufP, st.bufV, st.bufAt = p, v, at
}

// bufCap is the capacity usable across all three parallel arrays.
func (st *orderFlow) bufCap() int {
	c := cap(st.bufP)
	if cv := cap(st.bufV); cv < c {
		c = cv
	}
	if ct := cap(st.bufAt); ct < c {
		c = ct
	}
	return c
}

// deliverRun delivers p, then drains every buffered packet that has become
// consecutive. It finishes or re-arms the flow's timer as appropriate.
func (o *Orderer) deliverRun(st *orderFlow, p *packet.Packet, v uint32) {
	o.deliver(p)
	st.expected = o.next(v, p)
	finished := o.done(st.expected, p)
	for st.head < len(st.bufV) && st.bufV[st.head] == st.expected {
		ep, ev := st.bufP[st.head], st.bufV[st.head]
		st.bufP[st.head] = nil
		st.head++
		o.deliver(ep)
		st.expected = o.next(ev, ep)
		finished = o.done(st.expected, ep)
	}
	if st.head == len(st.bufV) {
		st.bufP = st.bufP[:0]
		st.bufV = st.bufV[:0]
		st.bufAt = st.bufAt[:0]
		st.head = 0
	}
	if finished && st.buffered() == 0 {
		o.finish(st)
		return
	}
	o.rearm(st)
}

// finish marks a flow fully delivered. The state lingers as a tombstone for
// one τ so that straggling duplicates (e.g. a retransmission that crossed
// paths with the original) pass straight through instead of being buffered,
// then is reclaimed.
func (o *Orderer) finish(st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	st.finished = true
	st.finishedAt = o.eng.Now()
	o.clearBuf(st)
	o.eng.After(o.cfg.Timeout, st.reclaimFn)
}

// reclaimRef removes a tombstone a full τ after it finished. The age check
// stands in for the previous pointer-identity test: while the tombstone
// exists, Receive never recreates state for the flow, so a younger
// finishedAt on this slot always means a *newer* finish event is due.
func (o *Orderer) reclaimRef(slot int32) {
	flow, st, ok := o.flows.AtRef(slot)
	if !ok || !st.finished {
		return
	}
	if o.eng.Now() >= st.finishedAt+o.cfg.Timeout {
		o.flows.Delete(flow)
	}
}

// bufferEarly inserts an early packet into the flow-ordered buffer,
// discarding duplicates, and arms the timer.
func (o *Orderer) bufferEarly(st *orderFlow, p *packet.Packet, v uint32) {
	// Inlined sort.Search over the live window [head, len): first index
	// whose position does not precede v. Touches only the packed position
	// array — the struct-of-arrays payoff.
	lo, hi := st.head, len(st.bufV)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.before(st.bufV[mid], v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.bufV) && st.bufV[lo] == v {
		return // duplicate of an already-buffered packet
	}
	now := o.eng.Now()
	if lo == st.head && st.head > 0 {
		// New head-of-buffer: reuse the slack in front.
		st.head--
		st.bufP[st.head] = p
		st.bufV[st.head] = v
		st.bufAt[st.head] = now
	} else {
		if len(st.bufV) == st.bufCap() {
			o.growBuf(st)
		}
		st.bufP = append(st.bufP, nil)
		st.bufV = append(st.bufV, 0)
		st.bufAt = append(st.bufAt, 0)
		copy(st.bufP[lo+1:], st.bufP[lo:])
		copy(st.bufV[lo+1:], st.bufV[lo:])
		copy(st.bufAt[lo+1:], st.bufAt[lo:])
		st.bufP[lo] = p
		st.bufV[lo] = v
		st.bufAt[lo] = now
	}
	o.Held++
	if o.met != nil {
		o.met.OrderingHeld++
	}
	if !st.timer.Pending() {
		o.armAt(st, st.bufAt[st.head]+o.cfg.Timeout)
	}
}

// debugTimeout, when set by tests, observes every ordering timeout.
var debugTimeout func(flow uint64, hasExp bool, expected, headV uint32, buflen int, now units.Time)

// rearm resets the timer to the head-of-buffer arrival plus τ (paper §3.3.2
// event 2), or disarms it when nothing is buffered.
func (o *Orderer) rearm(st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	if st.buffered() > 0 {
		o.armAt(st, st.bufAt[st.head]+o.cfg.Timeout)
	}
}

func (o *Orderer) armAt(st *orderFlow, at units.Time) {
	if at < o.eng.Now() {
		at = o.eng.Now()
	}
	st.timer = o.eng.At(at, st.timeoutFn)
}

// timeoutRef resolves a slab slot back to its flow. A fired timer's state
// always still exists: every path that deletes ordering state cancels or
// has observed the timer first.
func (o *Orderer) timeoutRef(slot int32) {
	flow, st, ok := o.flows.AtRef(slot)
	if !ok {
		return
	}
	o.timeout(flow, st)
}

// timeout releases buffered packets up to the next gap (paper §3.3.2 event
// 4): the transport now sees the gap and can run its own loss recovery.
func (o *Orderer) timeout(flow uint64, st *orderFlow) {
	st.timer = sim.Timer{}
	if st.buffered() == 0 {
		// Nothing held (state was idle): drop stale flow state.
		if !st.hasExpected {
			o.flows.Delete(flow)
		}
		return
	}
	o.Timeouts++
	if o.met != nil {
		o.met.OrderTimeout++
	}
	if debugTimeout != nil {
		debugTimeout(flow, st.hasExpected, st.expected, st.bufV[st.head], st.buffered(), o.eng.Now())
	}
	// Skip the gap: the next packet in flow order becomes the new expected.
	ep, ev := st.bufP[st.head], st.bufV[st.head]
	st.bufP[st.head] = nil
	st.head++
	if st.head == len(st.bufV) {
		st.bufP = st.bufP[:0]
		st.bufV = st.bufV[:0]
		st.bufAt = st.bufAt[:0]
		st.head = 0
	}
	st.hasExpected = true
	st.expected = ev
	o.Releases++
	o.deliverRun(st, ep, ev)
}
