package host

import (
	"vertigo/internal/flowtab"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// OrdererConfig parameterizes the RX-path ordering component.
type OrdererConfig struct {
	// Timeout is τ, the maximum time to hold early packets while waiting for
	// a delayed (deflected) packet (paper default 360 µs).
	Timeout units.Time
	// Discipline must match the sender's marking discipline: it determines
	// whether the position value decreases (SRPT) or increases (LAS) along
	// the flow.
	Discipline Discipline
	// BoostFactorLog2 must match the marker's, so boosted RFS values can be
	// reverted with retcnt inverse rotations.
	BoostFactorLog2 uint
}

// DefaultOrdererConfig returns the paper's default ordering settings.
func DefaultOrdererConfig() OrdererConfig {
	return OrdererConfig{Timeout: 360 * units.Microsecond, Discipline: SRPT, BoostFactorLog2: 1}
}

// ooEntry is one buffered out-of-order packet.
type ooEntry struct {
	p       *packet.Packet
	v       uint32 // un-boosted position value
	arrived units.Time
}

// orderFlow is the per-flow state of the Fig. 4 state machine. The three
// paper states map onto the fields: Init ⇔ no state, In-order Receive ⇔
// empty buf, Out-of-order Receive ⇔ non-empty buf (timer armed).
//
// Entries live in the flow table's slab and are recycled: newFlow resets
// the semantic fields while buf keeps its backing array, and the timer
// callbacks — built once per slab slot around a stable table ref — are
// shared by every flow that ever occupies the slot.
type orderFlow struct {
	hasExpected bool
	finished    bool   // flow fully delivered; state lingers as a tombstone
	expected    uint32 // position value of the next in-order packet
	finishedAt  units.Time
	head        int // index of the first live entry in buf
	buf         []ooEntry
	timer       sim.Timer
	timeoutFn   func() // prebuilt o.timeoutRef(slot) closure
	reclaimFn   func() // prebuilt o.reclaimRef(slot) closure
}

// Orderer is the RX-path ordering component: the first software entity to
// see packets off the NIC. It detects out-of-order (deflected) packets,
// buffers them up to τ, and releases a correctly ordered stream to the
// transport, which therefore never observes deflection-induced reordering
// unless a packet was truly lost (§3.3). Not safe for concurrent use.
type Orderer struct {
	eng     *sim.Engine
	cfg     OrdererConfig
	deliver func(*packet.Packet)
	flows   *flowtab.Table[orderFlow]
	met     *metrics.Collector // optional aggregate telemetry

	// Telemetry.
	Held     int64 // packets buffered at least once
	Timeouts int64 // τ expirations
	Releases int64 // packets released by a timeout (ahead of a gap)
}

// NewOrderer returns an ordering component delivering in-order packets via
// the deliver callback.
func NewOrderer(eng *sim.Engine, cfg OrdererConfig, deliver func(*packet.Packet)) *Orderer {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultOrdererConfig().Timeout
	}
	return &Orderer{eng: eng, cfg: cfg, deliver: deliver, flows: flowtab.New[orderFlow](64)}
}

// SetCollector mirrors the orderer's telemetry into a metrics collector.
func (o *Orderer) SetCollector(met *metrics.Collector) { o.met = met }

// ActiveFlows returns the number of flows with ordering state.
func (o *Orderer) ActiveFlows() int { return o.flows.Len() }

// position returns the packet's un-boosted position value.
func (o *Orderer) position(p *packet.Packet) uint32 {
	return packet.UnboostRFS(p.Info.RFS, p.Info.RetCnt, o.cfg.BoostFactorLog2)
}

// before reports whether position a precedes position b in flow order:
// under SRPT the remaining size shrinks along the flow, under LAS the age
// grows.
func (o *Orderer) before(a, b uint32) bool {
	if o.cfg.Discipline == SRPT {
		return a > b
	}
	return a < b
}

// next returns the expected position after delivering p at position v.
func (o *Orderer) next(v uint32, p *packet.Packet) uint32 {
	if o.cfg.Discipline == SRPT {
		return v - uint32(p.PayloadLen)
	}
	return v + 1
}

// done reports whether delivering p (making nextExpected current) ends the
// flow: under SRPT the expected remaining size reaches zero; under LAS the
// FIN-marked packet has been delivered.
func (o *Orderer) done(nextExpected uint32, p *packet.Packet) bool {
	if o.cfg.Discipline == SRPT {
		return nextExpected == 0
	}
	return p.Fin
}

// newFlow creates ordering state for a first-seen flow, recycling a slab
// slot (and its buffer backing / timer closures) when one is free.
func (o *Orderer) newFlow(p *packet.Packet, v uint32) *orderFlow {
	st, _ := o.flows.PutReuse(p.Flow)
	st.hasExpected = false
	st.finished = false
	st.expected = 0
	st.finishedAt = 0
	st.head = 0
	st.buf = st.buf[:0]
	st.timer = sim.Timer{}
	if st.timeoutFn == nil {
		slot := o.flows.Ref(p.Flow)
		st.timeoutFn = func() { o.timeoutRef(slot) }
		st.reclaimFn = func() { o.reclaimRef(slot) }
	}
	if p.Info.First {
		st.hasExpected = true
		st.expected = v
	}
	// A flow whose first-seen packet is not flagged First started with
	// reordering; we buffer until the First packet or a timeout reveals
	// where to start.
	return st
}

// Receive processes one marked data packet.
func (o *Orderer) Receive(p *packet.Packet) {
	v := o.position(p)
	st := o.flows.Get(p.Flow)
	if st == nil {
		st = o.newFlow(p, v)
	}

	switch {
	case st.finished:
		// Tombstone: the flow is fully delivered, so anything arriving now is
		// a straggling duplicate or retransmission. Forward it immediately;
		// the transport deduplicates (paper §3.3.2 case 3).
		o.deliver(p)
	case st.hasExpected && v == st.expected:
		o.deliverRun(st, p, v)
	case !st.hasExpected && p.Info.First:
		st.hasExpected = true
		st.expected = v
		o.deliverRun(st, p, v)
	case st.hasExpected && o.before(v, st.expected):
		// Position already passed: a delayed retransmission or duplicate
		// (paper case 3). Hand it straight up; the transport deduplicates.
		o.deliver(p)
	default:
		o.bufferEarly(st, p, v)
	}
}

// buffered returns the number of held packets.
func (st *orderFlow) buffered() int { return len(st.buf) - st.head }

// clearBuf empties the reorder buffer, dropping packet references but
// keeping modestly sized backing arrays for the slot's next flow.
func (st *orderFlow) clearBuf() {
	for i := st.head; i < len(st.buf); i++ {
		st.buf[i] = ooEntry{}
	}
	if cap(st.buf) > 1024 {
		st.buf = nil // don't pin burst-grown arrays forever
	} else {
		st.buf = st.buf[:0]
	}
	st.head = 0
}

// deliverRun delivers p, then drains every buffered packet that has become
// consecutive. It finishes or re-arms the flow's timer as appropriate.
func (o *Orderer) deliverRun(st *orderFlow, p *packet.Packet, v uint32) {
	o.deliver(p)
	st.expected = o.next(v, p)
	finished := o.done(st.expected, p)
	for st.head < len(st.buf) && st.buf[st.head].v == st.expected {
		e := st.buf[st.head]
		st.buf[st.head] = ooEntry{}
		st.head++
		o.deliver(e.p)
		st.expected = o.next(e.v, e.p)
		finished = o.done(st.expected, e.p)
	}
	if st.head == len(st.buf) {
		st.buf = st.buf[:0]
		st.head = 0
	}
	if finished && st.buffered() == 0 {
		o.finish(st)
		return
	}
	o.rearm(st)
}

// finish marks a flow fully delivered. The state lingers as a tombstone for
// one τ so that straggling duplicates (e.g. a retransmission that crossed
// paths with the original) pass straight through instead of being buffered,
// then is reclaimed.
func (o *Orderer) finish(st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	st.finished = true
	st.finishedAt = o.eng.Now()
	st.clearBuf()
	o.eng.After(o.cfg.Timeout, st.reclaimFn)
}

// reclaimRef removes a tombstone a full τ after it finished. The age check
// stands in for the previous pointer-identity test: while the tombstone
// exists, Receive never recreates state for the flow, so a younger
// finishedAt on this slot always means a *newer* finish event is due.
func (o *Orderer) reclaimRef(slot int32) {
	flow, st, ok := o.flows.AtRef(slot)
	if !ok || !st.finished {
		return
	}
	if o.eng.Now() >= st.finishedAt+o.cfg.Timeout {
		o.flows.Delete(flow)
	}
}

// bufferEarly inserts an early packet into the flow-ordered buffer,
// discarding duplicates, and arms the timer.
func (o *Orderer) bufferEarly(st *orderFlow, p *packet.Packet, v uint32) {
	// Inlined sort.Search over the live window [head, len): first index
	// whose position does not precede v.
	lo, hi := st.head, len(st.buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if o.before(st.buf[mid].v, v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(st.buf) && st.buf[lo].v == v {
		return // duplicate of an already-buffered packet
	}
	e := ooEntry{p: p, v: v, arrived: o.eng.Now()}
	if lo == st.head && st.head > 0 {
		// New head-of-buffer: reuse the slack in front.
		st.head--
		st.buf[st.head] = e
	} else {
		st.buf = append(st.buf, ooEntry{})
		copy(st.buf[lo+1:], st.buf[lo:])
		st.buf[lo] = e
	}
	o.Held++
	if o.met != nil {
		o.met.OrderingHeld++
	}
	if !st.timer.Pending() {
		o.armAt(st, st.buf[st.head].arrived+o.cfg.Timeout)
	}
}

// debugTimeout, when set by tests, observes every ordering timeout.
var debugTimeout func(flow uint64, hasExp bool, expected, headV uint32, buflen int, now units.Time)

// rearm resets the timer to the head-of-buffer arrival plus τ (paper §3.3.2
// event 2), or disarms it when nothing is buffered.
func (o *Orderer) rearm(st *orderFlow) {
	st.timer.Cancel()
	st.timer = sim.Timer{}
	if st.buffered() > 0 {
		o.armAt(st, st.buf[st.head].arrived+o.cfg.Timeout)
	}
}

func (o *Orderer) armAt(st *orderFlow, at units.Time) {
	if at < o.eng.Now() {
		at = o.eng.Now()
	}
	st.timer = o.eng.At(at, st.timeoutFn)
}

// timeoutRef resolves a slab slot back to its flow. A fired timer's state
// always still exists: every path that deletes ordering state cancels or
// has observed the timer first.
func (o *Orderer) timeoutRef(slot int32) {
	flow, st, ok := o.flows.AtRef(slot)
	if !ok {
		return
	}
	o.timeout(flow, st)
}

// timeout releases buffered packets up to the next gap (paper §3.3.2 event
// 4): the transport now sees the gap and can run its own loss recovery.
func (o *Orderer) timeout(flow uint64, st *orderFlow) {
	st.timer = sim.Timer{}
	if st.buffered() == 0 {
		// Nothing held (state was idle): drop stale flow state.
		if !st.hasExpected {
			o.flows.Delete(flow)
		}
		return
	}
	o.Timeouts++
	if o.met != nil {
		o.met.OrderTimeout++
	}
	if debugTimeout != nil {
		debugTimeout(flow, st.hasExpected, st.expected, st.buf[st.head].v, st.buffered(), o.eng.Now())
	}
	// Skip the gap: the next packet in flow order becomes the new expected.
	e := st.buf[st.head]
	st.buf[st.head] = ooEntry{}
	st.head++
	if st.head == len(st.buf) {
		st.buf = st.buf[:0]
		st.head = 0
	}
	st.hasExpected = true
	st.expected = e.v
	o.Releases++
	o.deliverRun(st, e.p, e.v)
}
