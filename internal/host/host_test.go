package host

import (
	"testing"

	"vertigo/internal/fabric"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/topo"
	"vertigo/internal/units"
)

func hostPair(t *testing.T, vertigoStack bool) (*sim.Engine, *Host, *Host, *metrics.Collector) {
	t.Helper()
	tp, err := topo.NewLeafSpine(topo.LeafSpineConfig{
		Spines: 1, Leaves: 2, HostsPerLeaf: 1,
		HostRate: 10 * units.Gbps, FabricRate: 40 * units.Gbps,
		LinkDelay: 500 * units.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	met := metrics.NewCollector()
	net := fabric.New(eng, tp, met, fabric.DefaultConfig(fabric.Vertigo))
	a := NewHost(0, eng, net, met, DefaultMarkerConfig(), DefaultOrdererConfig(), vertigoStack)
	b := NewHost(1, eng, net, met, DefaultMarkerConfig(), DefaultOrdererConfig(), vertigoStack)
	return eng, a, b, met
}

func TestHostBindDispatch(t *testing.T) {
	eng, a, b, _ := hostPair(t, false)
	var got []*packet.Packet
	b.Bind(7, func(p *packet.Packet) { got = append(got, p) })
	a.Send(&packet.Packet{Kind: packet.Data, Src: 0, Dst: 1, Flow: 7, PayloadLen: 100})
	eng.Run(units.Second)
	if len(got) != 1 {
		t.Fatalf("handler got %d packets, want 1", len(got))
	}
	b.Unbind(7)
	a.Send(&packet.Packet{Kind: packet.Data, Src: 0, Dst: 1, Flow: 7, PayloadLen: 100})
	eng.Run(2 * units.Second)
	if len(got) != 1 {
		t.Fatal("unbound handler still invoked")
	}
}

func TestHostAcceptorCreatesHandlerOnce(t *testing.T) {
	eng, a, b, _ := hostPair(t, false)
	created, received := 0, 0
	b.SetAcceptor(func(first *packet.Packet) func(*packet.Packet) {
		created++
		return func(p *packet.Packet) { received++ }
	})
	for i := 0; i < 5; i++ {
		a.Send(&packet.Packet{Kind: packet.Data, Src: 0, Dst: 1, Flow: 9, PayloadLen: 100})
	}
	eng.Run(units.Second)
	if created != 1 {
		t.Fatalf("acceptor ran %d times, want 1", created)
	}
	if received != 5 {
		t.Fatalf("handler got %d packets, want 5", received)
	}
}

func TestHostMarksOutgoingData(t *testing.T) {
	eng, a, b, _ := hostPair(t, true)
	a.Marker.StartFlow(3, 1, 5000)
	var got *packet.Packet
	b.Bind(3, func(p *packet.Packet) { got = p })
	a.Send(&packet.Packet{
		Kind: packet.Data, Src: 0, Dst: 1, Flow: 3,
		Seq: 0, PayloadLen: 1460, FlowSize: 5000,
	})
	eng.Run(units.Second)
	if got == nil {
		t.Fatal("nothing delivered")
	}
	if !got.Marked || got.Info.RFS != 5000 || !got.Info.First {
		t.Fatalf("bad marking: %+v", got.Info)
	}
}

func TestHostAcksBypassMarkerAndOrderer(t *testing.T) {
	eng, a, b, _ := hostPair(t, true)
	var got *packet.Packet
	b.Bind(4, func(p *packet.Packet) { got = p })
	a.Send(&packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, Flow: 4, AckSeq: 100})
	eng.Run(units.Second)
	if got == nil {
		t.Fatal("ack not delivered")
	}
	if got.Marked {
		t.Fatal("ack was marked")
	}
}

func TestHostCountsReceives(t *testing.T) {
	eng, a, b, met := hostPair(t, false)
	b.Bind(5, func(*packet.Packet) {})
	a.Send(&packet.Packet{Kind: packet.Data, Src: 0, Dst: 1, Flow: 5, PayloadLen: 100})
	a.Send(&packet.Packet{Kind: packet.Ack, Src: 0, Dst: 1, Flow: 5})
	eng.Run(units.Second)
	if met.PacketsSent != 1 || met.PacketsRecv != 1 {
		t.Fatalf("sent=%d recv=%d, want 1/1 (ACKs excluded)", met.PacketsSent, met.PacketsRecv)
	}
	if met.HopSum == 0 {
		t.Fatal("hop accounting missing")
	}
}

func TestMarkerLASDiscipline(t *testing.T) {
	cfg := DefaultMarkerConfig()
	cfg.Discipline = LAS
	m := NewMarker(cfg)
	m.StartFlow(1, 0, 5*packet.MSS)
	for i := 0; i < 5; i++ {
		p := &packet.Packet{Flow: 1, Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS}
		m.Mark(p)
		if p.Info.RFS != uint32(i) {
			t.Fatalf("LAS age %d, want %d", p.Info.RFS, i)
		}
	}
}

func TestMarkerFlowIDWrapsAt8(t *testing.T) {
	m := NewMarker(DefaultMarkerConfig())
	ids := map[uint8]bool{}
	for i := 0; i < 8; i++ {
		m.StartFlow(uint64(i+1), 5, 1000)
		p := &packet.Packet{Flow: uint64(i + 1), PayloadLen: 100}
		m.Mark(p)
		ids[p.Info.FlowID] = true
	}
	if len(ids) != 8 {
		t.Fatalf("flow IDs not distinct across 8 flows: %v", ids)
	}
	// The ninth flow to the same destination reuses ID 0.
	m.StartFlow(100, 5, 1000)
	p := &packet.Packet{Flow: 100, PayloadLen: 100}
	m.Mark(p)
	if p.Info.FlowID != 0 {
		t.Fatalf("9th flow ID %d, want wraparound to 0", p.Info.FlowID)
	}
}

func TestMarkerPanicsOnUnknownFlow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("marking unregistered flow did not panic")
		}
	}()
	NewMarker(DefaultMarkerConfig()).Mark(&packet.Packet{Flow: 42})
}

func TestMarkerBoostCapsAtMaxRetx(t *testing.T) {
	m := NewMarker(DefaultMarkerConfig())
	m.StartFlow(1, 0, 100000)
	p := &packet.Packet{Flow: 1, Seq: 0, PayloadLen: packet.MSS}
	for i := 0; i < packet.MaxRetx+5; i++ {
		m.Mark(p)
	}
	if p.Info.RetCnt > packet.MaxRetx {
		t.Fatalf("retcnt %d exceeds cap %d", p.Info.RetCnt, packet.MaxRetx)
	}
}

func TestMarkerEndFlowEnablesFilterReuse(t *testing.T) {
	m := NewMarker(DefaultMarkerConfig())
	m.StartFlow(1, 0, 10*packet.MSS)
	for i := 0; i < 10; i++ {
		m.Mark(&packet.Packet{Flow: 1, Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS})
	}
	m.EndFlow(1)
	// Same flow key again: first transmissions must not look like retx.
	m.StartFlow(1, 0, 10*packet.MSS)
	p := &packet.Packet{Flow: 1, Seq: 0, PayloadLen: packet.MSS}
	m.Mark(p)
	if p.Info.RetCnt != 0 {
		t.Fatalf("stale signature: retcnt %d", p.Info.RetCnt)
	}
}
