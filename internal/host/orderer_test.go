package host

import (
	"math/rand"
	"testing"

	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// mkFlow builds the marked packets of one SRPT flow of n full segments.
func mkFlow(flow uint64, n int) []*packet.Packet {
	size := int64(n * packet.MSS)
	pkts := make([]*packet.Packet, n)
	for i := 0; i < n; i++ {
		seq := int64(i * packet.MSS)
		pkts[i] = &packet.Packet{
			Kind:       packet.Data,
			Flow:       flow,
			Seq:        seq,
			PayloadLen: packet.MSS,
			FlowSize:   size,
			Fin:        i == n-1,
			Marked:     true,
			Info: packet.FlowInfo{
				RFS:   uint32(size - seq),
				First: seq == 0,
			},
		}
	}
	return pkts
}

// collectDelivery runs the orderer over pkts in the given arrival order with
// the given inter-arrival gap and returns the delivered sequence offsets.
func collectDelivery(t *testing.T, pkts []*packet.Packet, gap units.Time) []int64 {
	t.Helper()
	eng := sim.NewEngine(1)
	var got []int64
	o := NewOrderer(eng, DefaultOrdererConfig(), func(p *packet.Packet) {
		got = append(got, p.Seq)
	})
	at := units.Time(0)
	for _, p := range pkts {
		p := p
		eng.At(at, func() { o.Receive(p) })
		at += gap
	}
	eng.Run(10 * units.Second)
	return got
}

func TestOrdererInOrderPassThrough(t *testing.T) {
	pkts := mkFlow(1, 10)
	got := collectDelivery(t, pkts, units.Microsecond)
	if len(got) != 10 {
		t.Fatalf("delivered %d packets, want 10", len(got))
	}
	for i, seq := range got {
		if seq != int64(i*packet.MSS) {
			t.Fatalf("delivery %d: seq %d, want %d", i, seq, i*packet.MSS)
		}
	}
}

func TestOrdererReversedWindow(t *testing.T) {
	// SRPT queues dequeue a flow's later packets first; the orderer must
	// invert that back before the transport sees it.
	pkts := mkFlow(2, 10)
	rev := make([]*packet.Packet, 10)
	for i := range pkts {
		rev[9-i] = pkts[i]
	}
	got := collectDelivery(t, rev, units.Microsecond)
	if len(got) != 10 {
		t.Fatalf("delivered %d packets, want 10", len(got))
	}
	for i, seq := range got {
		if seq != int64(i*packet.MSS) {
			t.Fatalf("delivery %d: seq %d, want %d (full order %v)", i, seq, i*packet.MSS, got)
		}
	}
}

func TestOrdererRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		pkts := mkFlow(uint64(100+trial), n)
		perm := rng.Perm(n)
		shuffled := make([]*packet.Packet, n)
		for i, j := range perm {
			shuffled[i] = pkts[j]
		}
		got := collectDelivery(t, shuffled, 500*units.Nanosecond)
		if len(got) != n {
			t.Fatalf("trial %d: delivered %d packets, want %d", trial, len(got), n)
		}
		for i, seq := range got {
			if seq != int64(i*packet.MSS) {
				t.Fatalf("trial %d: delivery %d is seq %d, want %d (perm %v, got %v)",
					trial, i, seq, i*packet.MSS, perm, got)
			}
		}
	}
}

func TestOrdererTimeoutReleasesGap(t *testing.T) {
	// Lose packet 2 of 5: the orderer must hold 3,4,5 for τ, then release.
	pkts := mkFlow(3, 5)
	arrive := []*packet.Packet{pkts[0], pkts[2], pkts[3], pkts[4]} // pkts[1] lost
	got := collectDelivery(t, arrive, units.Microsecond)
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want 4 (got %v)", len(got), got)
	}
	want := []int64{0, 2 * packet.MSS, 3 * packet.MSS, 4 * packet.MSS}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestOrdererHoldsUntilTimeout(t *testing.T) {
	pkts := mkFlow(4, 3)
	eng := sim.NewEngine(1)
	var got []int64
	cfg := DefaultOrdererConfig()
	o := NewOrderer(eng, cfg, func(p *packet.Packet) { got = append(got, p.Seq) })
	// First packet arrives, then a gap: packet 3 arrives without packet 2.
	eng.At(0, func() { o.Receive(pkts[0]) })
	eng.At(units.Microsecond, func() { o.Receive(pkts[2]) })
	eng.Run(cfg.Timeout / 2)
	if len(got) != 1 {
		t.Fatalf("before timeout: delivered %v, want only seq 0", got)
	}
	eng.Run(10 * units.Second)
	if len(got) != 2 {
		t.Fatalf("after timeout: delivered %v, want 2 packets", got)
	}
}
