package host

import "vertigo/internal/units"

// SetDebugTimeout installs a test observer for ordering timeouts.
func SetDebugTimeout(fn func(flow uint64, hasExp bool, expected, headV uint32, buflen int, now units.Time)) {
	debugTimeout = fn
}
