package host

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"vertigo/internal/packet"
)

func wireSegs(t *testing.T, m *WireMarker, key uint64, size int64) []WireSegment {
	t.Helper()
	m.StartFlow(key, size)
	var segs []WireSegment
	for off := int64(0); off < size; off += packet.MSS {
		n := packet.MSS
		if size-off < int64(n) {
			n = int(size - off)
		}
		var hdr [packet.ShimHeaderLen]byte
		fi, err := m.Mark(key, off, n, hdr[:], 0x0800)
		if err != nil {
			t.Fatal(err)
		}
		// Round-trip through the wire encoding, as a NIC would.
		decoded, inner, err := packet.DecodeShim(hdr[:])
		if err != nil || inner != 0x0800 || decoded != fi {
			t.Fatalf("shim round trip: %v %x %+v vs %+v", err, inner, decoded, fi)
		}
		segs = append(segs, WireSegment{
			Key: key, Info: fi, Len: n, Last: off+int64(n) == size,
		})
	}
	return segs
}

func TestWireMarkerSRPTValues(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	segs := wireSegs(t, m, 1, 4000)
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}
	wantRFS := []uint32{4000, 2540, 1080}
	for i, s := range segs {
		if s.Info.RFS != wantRFS[i] {
			t.Errorf("segment %d RFS %d, want %d", i, s.Info.RFS, wantRFS[i])
		}
		if s.Info.First != (i == 0) {
			t.Errorf("segment %d First=%v", i, s.Info.First)
		}
	}
}

func TestWireMarkerBoostsRetransmissions(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	m.StartFlow(1, 100_000)
	first, err := m.Mark(1, 0, packet.MSS, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.RetCnt != 0 {
		t.Fatalf("first transmission retcnt %d", first.RetCnt)
	}
	second, err := m.Mark(1, 0, packet.MSS, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if second.RetCnt != 1 {
		t.Fatalf("retransmission retcnt %d, want 1", second.RetCnt)
	}
	if got := packet.UnboostRFS(second.RFS, second.RetCnt, 1); got != first.RFS {
		t.Fatalf("unboosted RFS %d, want %d", got, first.RFS)
	}
	if second.RFS >= first.RFS {
		t.Fatalf("boosted RFS %d not below original %d", second.RFS, first.RFS)
	}
}

func TestWireMarkerErrors(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	if _, err := m.Mark(9, 0, 100, nil, 0); err == nil {
		t.Error("unknown flow accepted")
	}
	m.StartFlow(1, 1000)
	if _, err := m.Mark(1, 900, 200, nil, 0); err == nil {
		t.Error("segment past flow end accepted")
	}
	if _, err := m.Mark(1, -1, 10, nil, 0); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestWireMarkerEndFlowClearsState(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	m.StartFlow(1, 10_000)
	m.Mark(1, 0, packet.MSS, nil, 0)
	m.EndFlow(1)
	if m.ActiveFlows() != 0 {
		t.Fatal("flow table not cleared")
	}
	// Re-registering the same key must start fresh: no retransmission hit.
	m.StartFlow(1, 10_000)
	fi, err := m.Mark(1, 0, packet.MSS, nil, 0)
	if err != nil || fi.RetCnt != 0 {
		t.Fatalf("stale filter state: retcnt=%d err=%v", fi.RetCnt, err)
	}
}

func TestWireOrdererInOrder(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	o := NewWireOrderer(DefaultOrdererConfig())
	segs := wireSegs(t, m, 1, 20_000)
	now := time.Unix(0, 0)
	var got []uint32
	for _, s := range segs {
		for _, r := range o.Receive(now, s) {
			got = append(got, r.Info.RFS)
		}
		now = now.Add(time.Microsecond)
	}
	if len(got) != len(segs) {
		t.Fatalf("delivered %d, want %d", len(got), len(segs))
	}
	for i := 1; i < len(got); i++ {
		if got[i] >= got[i-1] {
			t.Fatal("delivery not in flow order")
		}
	}
	if o.Held != 0 {
		t.Fatalf("in-order stream buffered %d segments", o.Held)
	}
}

func TestWireOrdererPermuted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m := NewWireMarker(DefaultMarkerConfig())
		o := NewWireOrderer(DefaultOrdererConfig())
		n := 2 + rng.Intn(25)
		segs := wireSegs(t, m, uint64(trial+1), int64(n)*packet.MSS)
		perm := rng.Perm(n)
		now := time.Unix(0, 0)
		var got []WireSegment
		for _, j := range perm {
			got = append(got, o.Receive(now, segs[j])...)
			now = now.Add(time.Microsecond)
		}
		if len(got) != n {
			t.Fatalf("trial %d: delivered %d of %d", trial, len(got), n)
		}
		for i, g := range got {
			if g.Info.RFS != segs[i].Info.RFS {
				t.Fatalf("trial %d: out of order at %d", trial, i)
			}
		}
		if o.ActiveFlows() > 1 {
			t.Fatalf("trial %d: %d flows live, want tombstone only", trial, o.ActiveFlows())
		}
	}
}

func TestWireOrdererExpire(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	o := NewWireOrderer(DefaultOrdererConfig())
	segs := wireSegs(t, m, 1, 5*packet.MSS)
	now := time.Unix(0, 0)
	// Deliver 0, lose 1, deliver 2..4.
	if got := o.Receive(now, segs[0]); len(got) != 1 {
		t.Fatal("first segment not delivered")
	}
	for _, s := range segs[2:] {
		if got := o.Receive(now, s); got != nil {
			t.Fatal("early segment delivered before gap fill")
		}
	}
	dl, ok := o.NextDeadline()
	if !ok {
		t.Fatal("no deadline with buffered segments")
	}
	if got := o.Expire(dl.Add(-time.Nanosecond)); got != nil {
		t.Fatal("expired before deadline")
	}
	got := o.Expire(dl)
	if len(got) != 3 {
		t.Fatalf("timeout released %d segments, want 3", len(got))
	}
	if o.Timeouts != 1 {
		t.Fatalf("timeouts %d, want 1", o.Timeouts)
	}
	// The straggler now passes straight through.
	if late := o.Receive(dl.Add(time.Microsecond), segs[1]); len(late) != 1 {
		t.Fatal("late segment not passed through")
	}
}

func TestWireOrdererTombstoneReclaimed(t *testing.T) {
	m := NewWireMarker(DefaultMarkerConfig())
	o := NewWireOrderer(DefaultOrdererConfig())
	segs := wireSegs(t, m, 1, 2*packet.MSS)
	now := time.Unix(0, 0)
	o.Receive(now, segs[0])
	o.Receive(now, segs[1])
	if o.ActiveFlows() != 1 {
		t.Fatal("tombstone missing after completion")
	}
	dl, ok := o.NextDeadline()
	if !ok {
		t.Fatal("tombstone has no reclaim deadline")
	}
	o.Expire(dl)
	if o.ActiveFlows() != 0 {
		t.Fatal("tombstone not reclaimed")
	}
}

func TestWireOrdererLASDiscipline(t *testing.T) {
	mcfg := DefaultMarkerConfig()
	mcfg.Discipline = LAS
	ocfg := DefaultOrdererConfig()
	ocfg.Discipline = LAS
	m := NewWireMarker(mcfg)
	o := NewWireOrderer(ocfg)
	segs := wireSegs(t, m, 1, 6*packet.MSS)
	// LAS values are ages 0..5.
	for i, s := range segs {
		if s.Info.RFS != uint32(i) {
			t.Fatalf("LAS age %d, want %d", s.Info.RFS, i)
		}
	}
	now := time.Unix(0, 0)
	var got []WireSegment
	for _, j := range []int{2, 0, 1, 5, 3, 4} {
		got = append(got, o.Receive(now, segs[j])...)
		now = now.Add(time.Microsecond)
	}
	if len(got) != 6 {
		t.Fatalf("delivered %d of 6 under LAS", len(got))
	}
	for i, g := range got {
		if g.Info.RFS != uint32(i) {
			t.Fatalf("LAS order broken at %d", i)
		}
	}
}

// BenchmarkWireMarkerEndFlow times a full start/mark/teardown cycle with the
// flow's nominal size pinned at 1 GiB (~735k segments) while only `marked`
// segments are ever transmitted. EndFlow's filter walk is bounded by the
// per-flow high-water offset, so the cycle cost must scale with the marked
// count: a size-bounded walk would pay ~735k filter deletes (milliseconds)
// per op at every marked level, swamping the sub-microsecond marked=1 case.
func BenchmarkWireMarkerEndFlow(b *testing.B) {
	const flowSize = 1 << 30
	for _, marked := range []int{1, 64, 4096} {
		b.Run(fmt.Sprintf("marked=%d", marked), func(b *testing.B) {
			m := NewWireMarker(DefaultMarkerConfig())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.StartFlow(7, flowSize)
				for s := 0; s < marked; s++ {
					if _, err := m.Mark(7, int64(s)*packet.MSS, packet.MSS, nil, 0); err != nil {
						b.Fatal(err)
					}
				}
				m.EndFlow(7)
			}
			if m.ActiveFlows() != 0 {
				b.Fatalf("flow leaked: %d active", m.ActiveFlows())
			}
		})
	}
}
