package host

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vertigo/internal/packet"
	"vertigo/internal/sim"
	"vertigo/internal/units"
)

// TestMarkerOrdererRoundTrip drives the simulator-side marker and orderer
// together: marked packets (including boosted retransmissions) shuffled
// arbitrarily must come out in exact byte order.
func TestMarkerOrdererRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		m := NewMarker(DefaultMarkerConfig())
		flow := uint64(trial + 1)
		n := 2 + rng.Intn(20)
		size := int64(n) * packet.MSS
		m.StartFlow(flow, 0, size)

		// First transmission of every segment, plus duplicated transmissions
		// of a random subset (marked as boosted retransmissions).
		var pkts []*packet.Packet
		for i := 0; i < n; i++ {
			p := &packet.Packet{
				Kind: packet.Data, Flow: flow,
				Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS,
				FlowSize: size, Fin: i == n-1,
			}
			m.Mark(p)
			pkts = append(pkts, p)
		}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				p := &packet.Packet{
					Kind: packet.Data, Flow: flow,
					Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS,
					FlowSize: size, Fin: i == n-1, Retx: true,
				}
				m.Mark(p)
				if p.Info.RetCnt == 0 {
					t.Fatalf("trial %d: duplicate not detected by marker", trial)
				}
				pkts = append(pkts, p)
			}
		}

		rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })

		eng := sim.NewEngine(int64(trial))
		var delivered []int64
		o := NewOrderer(eng, DefaultOrdererConfig(), func(p *packet.Packet) {
			delivered = append(delivered, p.Seq)
		})
		at := units.Time(0)
		for _, p := range pkts {
			p := p
			eng.At(at, func() { o.Receive(p) })
			at += units.Microsecond
		}
		eng.Run(10 * units.Second)

		// Every segment delivered at least once; the first n distinct
		// deliveries are in exact order (duplicates may interleave later).
		seen := map[int64]bool{}
		var firstSeen []int64
		for _, seq := range delivered {
			if !seen[seq] {
				seen[seq] = true
				firstSeen = append(firstSeen, seq)
			}
		}
		if len(firstSeen) != n {
			t.Fatalf("trial %d: %d distinct segments delivered, want %d", trial, len(firstSeen), n)
		}
		for i, seq := range firstSeen {
			if seq != int64(i)*packet.MSS {
				t.Fatalf("trial %d: first-delivery order broken at %d: %v", trial, i, firstSeen)
			}
		}
	}
}

// Property: the ordering component never delivers a packet twice from its
// buffer, and always delivers everything it buffered.
func TestPropertyOrdererConservation(t *testing.T) {
	f := func(permSeed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%24)
		rng := rand.New(rand.NewSource(permSeed))
		size := int64(n) * packet.MSS

		var pkts []*packet.Packet
		for i := 0; i < n; i++ {
			pkts = append(pkts, &packet.Packet{
				Kind: packet.Data, Flow: 1, Marked: true,
				Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS,
				FlowSize: size, Fin: i == n-1,
				Info: packet.FlowInfo{
					RFS:   uint32(size - int64(i)*packet.MSS),
					First: i == 0,
				},
			})
		}
		rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })

		eng := sim.NewEngine(permSeed)
		counts := map[uint64]int{}
		o := NewOrderer(eng, DefaultOrdererConfig(), func(p *packet.Packet) {
			counts[p.ID]++
		})
		for i, p := range pkts {
			p := p
			p.ID = uint64(i + 1)
			eng.At(units.Time(i)*units.Microsecond, func() { o.Receive(p) })
		}
		eng.Run(10 * units.Second)
		if len(counts) != n {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOrdererLASSimVariant exercises the simulator-side orderer under the
// LAS discipline (ages instead of remaining sizes).
func TestOrdererLASSimVariant(t *testing.T) {
	cfg := DefaultOrdererConfig()
	cfg.Discipline = LAS
	eng := sim.NewEngine(1)
	var got []int64
	o := NewOrderer(eng, cfg, func(p *packet.Packet) { got = append(got, p.Seq) })
	const n = 8
	pkts := make([]*packet.Packet, n)
	for i := 0; i < n; i++ {
		pkts[i] = &packet.Packet{
			Kind: packet.Data, Flow: 1, Marked: true,
			Seq: int64(i) * packet.MSS, PayloadLen: packet.MSS,
			Fin:  i == n-1,
			Info: packet.FlowInfo{RFS: uint32(i), First: i == 0},
		}
	}
	order := []int{3, 0, 1, 2, 7, 5, 4, 6}
	for i, j := range order {
		p := pkts[j]
		eng.At(units.Time(i)*units.Microsecond, func() { o.Receive(p) })
	}
	eng.Run(10 * units.Second)
	if len(got) != n {
		t.Fatalf("delivered %d of %d under LAS", len(got), n)
	}
	for i, seq := range got {
		if seq != int64(i)*packet.MSS {
			t.Fatalf("LAS order broken: %v", got)
		}
	}
	if o.ActiveFlows() > 1 {
		t.Fatalf("LAS flow state not reclaimed: %d live", o.ActiveFlows())
	}
}
