package host

import (
	"errors"
	"fmt"
	"time"

	"vertigo/internal/cuckoo"
	"vertigo/internal/flowtab"
	"vertigo/internal/packet"
)

// This file contains the deployable, wall-clock variants of the marking and
// ordering components: they operate on real byte frames and caller-supplied
// timestamps (sans-IO), so they can sit in a userspace network stack the way
// the paper's DPDK prototype does (§4.4). The simulator twins (Marker,
// Orderer) share the same algorithms over simulated packets — and the same
// flowtab flow tables, which is where the DPDK prototype spends its
// engineering effort too (§4.4: flow-table lookups dominate per-packet cost).

// Wire errors.
var (
	ErrUnknownFlow = errors.New("host: unknown flow")
	ErrBadSegment  = errors.New("host: segment outside flow bounds")
)

// WireMarker is the TX-path marking component for real frames. Flows are
// identified by a caller-chosen 64-bit key (e.g. a 5-tuple hash); segments
// by their byte offset within the flow.
//
// Not safe for concurrent use: wrap it per TX queue, as a DPDK app would.
type WireMarker struct {
	cfg    MarkerConfig
	flows  *flowtab.Table[wireFlow]
	filter *cuckoo.Filter
	nextID uint8
}

type wireFlow struct {
	size int64
	hi   int64 // highest first-transmitted offset; -1 before any
	retx flowtab.PagedU8
	// flowID is the 3-bit epoch stamped into flowinfo headers.
	flowID uint8
}

// NewWireMarker returns a marking component for wire frames.
func NewWireMarker(cfg MarkerConfig) *WireMarker {
	capHint := cfg.FilterCapacity
	if capHint <= 0 {
		capHint = 1 << 16
	}
	return &WireMarker{
		cfg:    cfg,
		flows:  flowtab.New[wireFlow](64),
		filter: cuckoo.New(capHint),
	}
}

// StartFlow registers an outgoing flow of totalBytes under key.
func (m *WireMarker) StartFlow(key uint64, totalBytes int64) {
	id := m.nextID
	m.nextID = (m.nextID + 1) % (1 << packet.FlowIDBits)
	f, _ := m.flows.PutReuse(key)
	f.size = totalBytes
	f.hi = -1
	f.flowID = id
	f.retx.Reset()
}

// EndFlow drops the flow table entry and its filter signatures. The filter
// walk covers only segments actually marked — bounded by the per-flow
// high-water offset, not the flow's nominal size — so tearing down a huge
// flow that barely transmitted is cheap, and signatures of never-marked
// segments are not speculatively deleted (a speculative Delete can evict a
// colliding fingerprint some other flow still needs).
func (m *WireMarker) EndFlow(key uint64) {
	f := m.flows.Get(key)
	if f == nil {
		return
	}
	for seq := int64(0); seq <= f.hi; seq += packet.MSS {
		m.filter.Delete(sig(key, seq))
	}
	if f.size == 0 && f.hi < 0 {
		m.filter.Delete(sig(key, 0))
	}
	f.retx.Reset()
	m.flows.Delete(key)
}

// ActiveFlows returns the number of tracked flows.
func (m *WireMarker) ActiveFlows() int { return m.flows.Len() }

// Mark computes the flowinfo for the segment [offset, offset+n) of the flow
// under key, applying retransmission boosting, and writes the shim-header
// encoding into hdr (which needs packet.ShimHeaderLen bytes).
// innerEtherType is the encapsulated protocol (0x0800 for IPv4).
func (m *WireMarker) Mark(key uint64, offset int64, n int, hdr []byte, innerEtherType uint16) (packet.FlowInfo, error) {
	f := m.flows.Get(key)
	if f == nil {
		return packet.FlowInfo{}, fmt.Errorf("%w: %d", ErrUnknownFlow, key)
	}
	if offset < 0 || n <= 0 || offset+int64(n) > f.size {
		return packet.FlowInfo{}, fmt.Errorf("%w: [%d,%d) of %d", ErrBadSegment, offset, offset+int64(n), f.size)
	}

	var base uint32
	var first bool
	switch m.cfg.Discipline {
	case SRPT:
		base = uint32(f.size - offset)
		first = offset == 0
	case LAS:
		base = uint32(offset / packet.MSS)
		first = offset == 0
	}

	key2 := sig(key, offset)
	retcnt := uint8(0)
	if m.filter.ContainsOrAdd(key2) {
		seg := offset / packet.MSS
		c := f.retx.Get(seg)
		if m.cfg.Boosting && c < packet.MaxRetx {
			c++
			f.retx.Set(seg, c)
		}
		retcnt = c
	} else if offset > f.hi {
		f.hi = offset
	}

	rfs := base
	for i := uint8(0); i < retcnt; i++ {
		rfs = packet.BoostRFS(rfs, m.cfg.BoostFactorLog2)
	}
	fi := packet.FlowInfo{RFS: rfs, RetCnt: retcnt, FlowID: f.flowID, First: first}
	if hdr != nil {
		if _, err := packet.EncodeShim(hdr, fi, innerEtherType); err != nil {
			return packet.FlowInfo{}, err
		}
	}
	return fi, nil
}

// WireSegment is a frame handed to or released by the WireOrderer.
type WireSegment struct {
	Key     uint64 // flow key
	Info    packet.FlowInfo
	Len     int    // payload length in bytes (for SRPT position arithmetic)
	Last    bool   // last segment of the flow (needed under LAS)
	Payload []byte // opaque frame reference, passed through untouched
}

// WireOrderer is the RX-path ordering component for real frames, written
// sans-IO: the caller supplies timestamps and polls deadlines, so it plugs
// into any event loop or poll-mode driver.
//
//	ready := o.Receive(time.Now(), seg)
//	deliver(ready...)
//	if dl, ok := o.NextDeadline(); ok { armTimer(dl) }
//	// on timer: deliver(o.Expire(time.Now())...)
type WireOrderer struct {
	cfg   OrdererConfig
	flows *flowtab.Table[wireOrderFlow]

	// Telemetry.
	Held     int64
	Timeouts int64
}

type wireOrderFlow struct {
	hasExpected bool
	finished    bool
	expected    uint32
	finishedAt  time.Time
	head        int
	buf         []wireOOOEntry
	deadline    time.Time // zero when no timer armed
}

type wireOOOEntry struct {
	seg     WireSegment
	v       uint32
	arrived time.Time
}

// NewWireOrderer returns an ordering component for wire frames.
func NewWireOrderer(cfg OrdererConfig) *WireOrderer {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultOrdererConfig().Timeout
	}
	return &WireOrderer{cfg: cfg, flows: flowtab.New[wireOrderFlow](64)}
}

// ActiveFlows returns the number of flows with ordering state.
func (o *WireOrderer) ActiveFlows() int { return o.flows.Len() }

func (o *WireOrderer) position(seg WireSegment) uint32 {
	return packet.UnboostRFS(seg.Info.RFS, seg.Info.RetCnt, o.cfg.BoostFactorLog2)
}

func (o *WireOrderer) before(a, b uint32) bool {
	if o.cfg.Discipline == SRPT {
		return a > b
	}
	return a < b
}

func (o *WireOrderer) next(v uint32, seg WireSegment) uint32 {
	if o.cfg.Discipline == SRPT {
		return v - uint32(seg.Len)
	}
	return v + 1
}

func (o *WireOrderer) done(nextExpected uint32, seg WireSegment) bool {
	if o.cfg.Discipline == SRPT {
		return nextExpected == 0
	}
	return seg.Last
}

func (st *wireOrderFlow) buffered() int { return len(st.buf) - st.head }

// Receive processes one arriving segment and returns the segments that are
// now deliverable in flow order.
func (o *WireOrderer) Receive(now time.Time, seg WireSegment) []WireSegment {
	v := o.position(seg)
	st := o.flows.Get(seg.Key)
	if st == nil {
		st, _ = o.flows.PutReuse(seg.Key)
		st.hasExpected = false
		st.finished = false
		st.expected = 0
		st.finishedAt = time.Time{}
		st.head = 0
		st.buf = st.buf[:0]
		st.deadline = time.Time{}
		if seg.Info.First {
			st.hasExpected = true
			st.expected = v
		}
	}
	switch {
	case st.finished:
		return []WireSegment{seg} // straggler duplicate: pass through
	case st.hasExpected && v == st.expected:
		return o.deliverRun(now, st, seg, v)
	case !st.hasExpected && seg.Info.First:
		st.hasExpected = true
		st.expected = v
		return o.deliverRun(now, st, seg, v)
	case st.hasExpected && o.before(v, st.expected):
		return []WireSegment{seg} // late retransmission or duplicate
	default:
		o.bufferEarly(now, st, seg, v)
		return nil
	}
}

func (o *WireOrderer) deliverRun(now time.Time, st *wireOrderFlow, seg WireSegment, v uint32) []WireSegment {
	out := []WireSegment{seg}
	st.expected = o.next(v, seg)
	finished := o.done(st.expected, seg)
	for st.head < len(st.buf) && st.buf[st.head].v == st.expected {
		e := st.buf[st.head]
		st.buf[st.head] = wireOOOEntry{}
		st.head++
		out = append(out, e.seg)
		st.expected = o.next(e.v, e.seg)
		finished = o.done(st.expected, e.seg)
	}
	if st.head == len(st.buf) {
		st.buf = st.buf[:0]
		st.head = 0
	}
	switch {
	case finished && st.buffered() == 0:
		st.finished = true
		st.finishedAt = now
		st.deadline = now.Add(o.cfg.Timeout.Duration()) // tombstone linger
	case st.buffered() > 0:
		st.deadline = st.buf[st.head].arrived.Add(o.cfg.Timeout.Duration())
	default:
		st.deadline = time.Time{}
	}
	return out
}

func (o *WireOrderer) bufferEarly(now time.Time, st *wireOrderFlow, seg WireSegment, v uint32) {
	i := st.head
	for i < len(st.buf) && o.before(st.buf[i].v, v) {
		i++
	}
	if i < len(st.buf) && st.buf[i].v == v {
		return // duplicate
	}
	st.buf = append(st.buf, wireOOOEntry{})
	copy(st.buf[i+1:], st.buf[i:])
	st.buf[i] = wireOOOEntry{seg: seg, v: v, arrived: now}
	o.Held++
	if st.deadline.IsZero() {
		st.deadline = st.buf[st.head].arrived.Add(o.cfg.Timeout.Duration())
	}
}

// NextDeadline returns the earliest pending ordering deadline, if any.
func (o *WireOrderer) NextDeadline() (time.Time, bool) {
	var dl time.Time
	o.flows.Range(func(_ uint64, st *wireOrderFlow) bool {
		if !st.deadline.IsZero() && (dl.IsZero() || st.deadline.Before(dl)) {
			dl = st.deadline
		}
		return true
	})
	return dl, !dl.IsZero()
}

// Expire releases everything whose deadline has passed: for each timed-out
// flow, buffered segments up to the next gap (the transport sees the gap and
// runs its own recovery). Expired tombstones are reclaimed. Flows are
// visited in flow-table slab order, so the released sequence is
// deterministic for a given operation history (the old map-backed table
// released timed-out flows in random order).
func (o *WireOrderer) Expire(now time.Time) []WireSegment {
	var out []WireSegment
	o.flows.Range(func(key uint64, st *wireOrderFlow) bool {
		for !st.deadline.IsZero() && !now.Before(st.deadline) {
			if st.finished || st.buffered() == 0 {
				for i := st.head; i < len(st.buf); i++ {
					st.buf[i] = wireOOOEntry{}
				}
				st.buf = st.buf[:0]
				st.head = 0
				o.flows.Delete(key)
				break
			}
			o.Timeouts++
			e := st.buf[st.head]
			st.buf[st.head] = wireOOOEntry{}
			st.head++
			if st.head == len(st.buf) {
				st.buf = st.buf[:0]
				st.head = 0
			}
			st.hasExpected = true
			st.expected = e.v
			out = append(out, o.deliverRun(now, st, e.seg, e.v)...)
		}
		return true
	})
	return out
}
