package host

import (
	"vertigo/internal/fabric"
	"vertigo/internal/flowtab"
	"vertigo/internal/metrics"
	"vertigo/internal/packet"
	"vertigo/internal/sim"
)

// Acceptor creates the receive-side handler for a flow whose first packet
// just arrived (how transports accept incoming connections).
type Acceptor func(first *packet.Packet) func(*packet.Packet)

// Host is one end system: it owns the optional Vertigo TX/RX components and
// demultiplexes packets between the fabric and transport connections.
type Host struct {
	ID  int
	Eng *sim.Engine
	Net *fabric.Network
	Met *metrics.Collector

	// Marker and Orderer are non-nil only when the host runs the Vertigo
	// stack extensions.
	Marker  *Marker
	Orderer *Orderer

	handlers *flowtab.Table[func(*packet.Packet)]
	accept   Acceptor
}

// NewHost creates host id attached to net. vertigoStack enables the marking
// and ordering components.
func NewHost(id int, eng *sim.Engine, net *fabric.Network, met *metrics.Collector,
	mcfg MarkerConfig, ocfg OrdererConfig, vertigoStack bool) *Host {
	h := &Host{
		ID:       id,
		Eng:      eng,
		Net:      net,
		Met:      met,
		handlers: flowtab.New[func(*packet.Packet)](64),
	}
	if vertigoStack {
		h.Marker = NewMarker(mcfg)
		h.Orderer = NewOrderer(eng, ocfg, h.dispatch)
		h.Orderer.SetCollector(met)
	}
	net.RegisterHost(id, h)
	return h
}

// SetAcceptor installs the factory invoked for unknown inbound flows.
func (h *Host) SetAcceptor(a Acceptor) { h.accept = a }

// Pool returns the fabric's per-simulation packet free list, from which
// transports allocate and to which final consumers return packets.
func (h *Host) Pool() *packet.Pool { return h.Net.Pool() }

// Bind routes received packets of a flow to fn.
func (h *Host) Bind(flow uint64, fn func(*packet.Packet)) {
	v, _ := h.handlers.Put(flow)
	*v = fn
}

// Unbind removes a flow's handler.
func (h *Host) Unbind(flow uint64) { h.handlers.Delete(flow) }

// Send transmits p out of the host NIC, marking data packets when the
// Vertigo stack is enabled.
func (h *Host) Send(p *packet.Packet) {
	if p.Kind == packet.Data {
		h.Met.PacketsSent++
		if h.Marker != nil {
			h.Marker.Mark(p)
		}
	}
	h.Net.Send(p)
}

// Receive implements fabric.Receiver: marked data packets pass through the
// ordering component; everything else goes straight to the transport.
func (h *Host) Receive(p *packet.Packet) {
	if p.Kind == packet.Data {
		h.Met.PacketsRecv++
		h.Met.HopSum += int64(p.Hops)
		p.RxAt = h.Eng.Now() // NIC hardware RX timestamp
	}
	if h.Orderer != nil && p.Kind == packet.Data && p.Marked {
		h.Orderer.Receive(p)
		return
	}
	h.dispatch(p)
}

// dispatch hands p to its flow's handler, consulting the acceptor for new
// inbound flows.
func (h *Host) dispatch(p *packet.Packet) {
	if fnp := h.handlers.Get(p.Flow); fnp != nil {
		fn := *fnp // copy out: fn may Bind, moving the table slab under fnp
		fn(p)
		return
	}
	if p.Kind == packet.Data && h.accept != nil {
		if fn := h.accept(p); fn != nil {
			h.Bind(p.Flow, fn)
			fn(p)
			return
		}
	}
	// Packets for unknown flows (e.g. ACKs straggling in after the sender
	// finished) are silently consumed, as a NIC would; recycle the frame.
	h.Net.Pool().Put(p)
}
