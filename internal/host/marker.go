// Package host implements Vertigo's end-host components: the TX-path
// marking component that tags packets with remaining flow size (RFS) and
// boosts retransmissions (§3.1), the RX-path ordering component that
// re-sequences deflected packets before the transport sees them (§3.3),
// and the Host glue that binds transports to the fabric.
package host

import (
	"fmt"

	"vertigo/internal/cuckoo"
	"vertigo/internal/flowtab"
	"vertigo/internal/packet"
)

// Discipline selects the marking discipline (§4.3 "Alternative marking
// disciplines").
type Discipline int

// Marking disciplines.
const (
	// SRPT marks packets with the flow's remaining bytes; lower is better.
	SRPT Discipline = iota
	// LAS (least attained service / flow aging) marks packets with the
	// flow's age in packets, for when flow sizes are unknown in advance.
	LAS
)

func (d Discipline) String() string {
	if d == LAS {
		return "las"
	}
	return "srpt"
}

// MarkerConfig parameterizes the marking component.
type MarkerConfig struct {
	Discipline Discipline
	// BoostFactorLog2 is log2 of the boosting factor (paper default 2x =>
	// 1). Boosting halts at packet.MaxRetx rotations.
	BoostFactorLog2 uint
	// Boosting enables retransmission boosting (Fig. 11b ablation).
	Boosting bool
	// FilterCapacity sizes the duplicate-detection cuckoo filter; zero picks
	// a default suitable for a single host's in-flight packets.
	FilterCapacity int
}

// DefaultMarkerConfig returns the paper's default marking settings.
func DefaultMarkerConfig() MarkerConfig {
	return MarkerConfig{Discipline: SRPT, BoostFactorLog2: 1, Boosting: true}
}

// markerFlow is the per-flow entry in the marking component's flow table.
// Entries live in the flow table's slab and are recycled across flows:
// StartFlow resets every field, and the retx pages keep their backing.
type markerFlow struct {
	size   int64
	hi     int64           // highest first-transmitted seq; -1 before any
	pkts   int64           // packets first-transmitted so far (LAS age)
	retx   flowtab.PagedU8 // per-segment retransmission count (boost rotations)
	flowID uint8
}

// Marker is the TX-path marking component. It tracks outgoing flows in an
// open-addressing flow table, tags every data packet with a flowinfo
// header, and detects retransmissions with a cuckoo filter over
// (flow, seq) signatures so it can boost their priority (paper §3.1.2).
// Not safe for concurrent use.
type Marker struct {
	cfg    MarkerConfig
	flows  *flowtab.Table[markerFlow]
	filter *cuckoo.Filter
	nextID *flowtab.Table[uint8] // per-destination 3-bit flow epoch
	// Boosts counts boosting operations applied (telemetry).
	Boosts int64
}

// NewMarker returns a marking component.
func NewMarker(cfg MarkerConfig) *Marker {
	capHint := cfg.FilterCapacity
	if capHint <= 0 {
		capHint = 1 << 16
	}
	return &Marker{
		cfg:    cfg,
		flows:  flowtab.New[markerFlow](64),
		filter: cuckoo.New(capHint),
		nextID: flowtab.New[uint8](16),
	}
}

// StartFlow registers an outgoing flow of the given total size toward dst.
// It must be called before the flow's first packet is marked.
func (m *Marker) StartFlow(flow uint64, dst int, size int64) {
	idp, _ := m.nextID.Put(uint64(dst))
	id := *idp
	*idp = (id + 1) % (1 << packet.FlowIDBits)
	f, _ := m.flows.PutReuse(flow)
	f.size = size
	f.hi = -1
	f.pkts = 0
	f.flowID = id
	f.retx.Reset() // recycled slots must start with clean counters
}

// EndFlow removes a completed flow from the flow table and clears its
// signatures from the duplicate filter. Only first-transmitted segments
// ever entered the filter, so the walk is bounded by the high-water
// offset actually marked, not the flow's nominal size.
func (m *Marker) EndFlow(flow uint64) {
	f := m.flows.Get(flow)
	if f == nil {
		return
	}
	for seq := int64(0); seq <= f.hi; seq += packet.MSS {
		m.filter.Delete(sig(flow, seq))
	}
	if f.size == 0 && f.hi < 0 {
		// Zero-length flows mark exactly one (empty) segment at seq 0.
		m.filter.Delete(sig(flow, 0))
	}
	f.retx.Reset()
	m.flows.Delete(flow)
}

// ActiveFlows returns the number of tracked flows.
func (m *Marker) ActiveFlows() int { return m.flows.Len() }

// sig is the packet signature stored in the duplicate filter: in deployment
// a CRC of the packet headers, here a mix of the flow ID and byte offset.
func sig(flow uint64, seq int64) uint64 {
	return mix(flow ^ mix(uint64(seq)+0x9e3779b97f4a7c15))
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mark stamps p's flowinfo header. The flow must have been registered with
// StartFlow; marking an unknown flow panics, as it means the host stack
// wiring is broken. Retransmitted packets have their rank boosted by one
// rotation per retransmission, up to packet.MaxRetx.
func (m *Marker) Mark(p *packet.Packet) {
	f := m.flows.Get(p.Flow)
	if f == nil {
		panic(fmt.Sprintf("host: marking packet of unregistered flow %d", p.Flow))
	}

	var base uint32
	var first bool
	switch m.cfg.Discipline {
	case SRPT:
		base = uint32(f.size - p.Seq) // remaining bytes incl. this packet
		first = p.Seq == 0
	case LAS:
		// Age in packets at first transmission of this segment.
		base = uint32(p.Seq / packet.MSS)
		first = p.Seq == 0
	}

	key := sig(p.Flow, p.Seq)
	retcnt := uint8(0)
	if m.filter.ContainsOrAdd(key) {
		// Retransmission: bump this segment's boost count.
		seg := p.Seq / packet.MSS
		c := f.retx.Get(seg)
		if m.cfg.Boosting && c < packet.MaxRetx {
			c++
			f.retx.Set(seg, c)
			m.Boosts++
		}
		retcnt = c
	} else {
		f.pkts++
		if p.Seq > f.hi {
			f.hi = p.Seq
		}
	}

	rfs := base
	for i := uint8(0); i < retcnt; i++ {
		rfs = packet.BoostRFS(rfs, m.cfg.BoostFactorLog2)
	}
	p.Marked = true
	p.InvalidateSize() // marking adds the shim header to the wire size
	p.Info = packet.FlowInfo{RFS: rfs, RetCnt: retcnt, FlowID: f.flowID, First: first}
}
