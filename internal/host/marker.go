// Package host implements Vertigo's end-host components: the TX-path
// marking component that tags packets with remaining flow size (RFS) and
// boosts retransmissions (§3.1), the RX-path ordering component that
// re-sequences deflected packets before the transport sees them (§3.3),
// and the Host glue that binds transports to the fabric.
package host

import (
	"fmt"

	"vertigo/internal/cuckoo"
	"vertigo/internal/packet"
)

// Discipline selects the marking discipline (§4.3 "Alternative marking
// disciplines").
type Discipline int

// Marking disciplines.
const (
	// SRPT marks packets with the flow's remaining bytes; lower is better.
	SRPT Discipline = iota
	// LAS (least attained service / flow aging) marks packets with the
	// flow's age in packets, for when flow sizes are unknown in advance.
	LAS
)

func (d Discipline) String() string {
	if d == LAS {
		return "las"
	}
	return "srpt"
}

// MarkerConfig parameterizes the marking component.
type MarkerConfig struct {
	Discipline Discipline
	// BoostFactorLog2 is log2 of the boosting factor (paper default 2x =>
	// 1). Boosting halts at packet.MaxRetx rotations.
	BoostFactorLog2 uint
	// Boosting enables retransmission boosting (Fig. 11b ablation).
	Boosting bool
	// FilterCapacity sizes the duplicate-detection cuckoo filter; zero picks
	// a default suitable for a single host's in-flight packets.
	FilterCapacity int
}

// DefaultMarkerConfig returns the paper's default marking settings.
func DefaultMarkerConfig() MarkerConfig {
	return MarkerConfig{Discipline: SRPT, BoostFactorLog2: 1, Boosting: true}
}

// markerFlow is the per-flow entry in the marking component's flow table.
type markerFlow struct {
	size   int64
	flowID uint8
	retx   map[int64]uint8 // seq -> retransmission count (boost rotations)
	pkts   int64           // packets first-transmitted so far (LAS age)
}

// Marker is the TX-path marking component. It tracks outgoing flows in a
// hash table, tags every data packet with a flowinfo header, and detects
// retransmissions with a cuckoo filter over (flow, seq) signatures so it can
// boost their priority (paper §3.1.2). Not safe for concurrent use.
type Marker struct {
	cfg    MarkerConfig
	flows  map[uint64]*markerFlow
	filter *cuckoo.Filter
	nextID map[int]uint8 // per-destination 3-bit flow epoch
	// Boosts counts boosting operations applied (telemetry).
	Boosts int64
}

// NewMarker returns a marking component.
func NewMarker(cfg MarkerConfig) *Marker {
	capHint := cfg.FilterCapacity
	if capHint <= 0 {
		capHint = 1 << 16
	}
	return &Marker{
		cfg:    cfg,
		flows:  make(map[uint64]*markerFlow),
		filter: cuckoo.New(capHint),
		nextID: make(map[int]uint8),
	}
}

// StartFlow registers an outgoing flow of the given total size toward dst.
// It must be called before the flow's first packet is marked.
func (m *Marker) StartFlow(flow uint64, dst int, size int64) {
	id := m.nextID[dst]
	m.nextID[dst] = (id + 1) % (1 << packet.FlowIDBits)
	m.flows[flow] = &markerFlow{size: size, flowID: id}
}

// EndFlow removes a completed flow from the flow table and clears its
// signatures from the duplicate filter.
func (m *Marker) EndFlow(flow uint64) {
	f, ok := m.flows[flow]
	if !ok {
		return
	}
	for seq := int64(0); seq < f.size; seq += packet.MSS {
		m.filter.Delete(sig(flow, seq))
	}
	if f.size == 0 {
		m.filter.Delete(sig(flow, 0))
	}
	delete(m.flows, flow)
}

// ActiveFlows returns the number of tracked flows.
func (m *Marker) ActiveFlows() int { return len(m.flows) }

// sig is the packet signature stored in the duplicate filter: in deployment
// a CRC of the packet headers, here a mix of the flow ID and byte offset.
func sig(flow uint64, seq int64) uint64 {
	return mix(flow ^ mix(uint64(seq)+0x9e3779b97f4a7c15))
}

func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Mark stamps p's flowinfo header. The flow must have been registered with
// StartFlow; marking an unknown flow panics, as it means the host stack
// wiring is broken. Retransmitted packets have their rank boosted by one
// rotation per retransmission, up to packet.MaxRetx.
func (m *Marker) Mark(p *packet.Packet) {
	f, ok := m.flows[p.Flow]
	if !ok {
		panic(fmt.Sprintf("host: marking packet of unregistered flow %d", p.Flow))
	}

	var base uint32
	var first bool
	switch m.cfg.Discipline {
	case SRPT:
		base = uint32(f.size - p.Seq) // remaining bytes incl. this packet
		first = p.Seq == 0
	case LAS:
		// Age in packets at first transmission of this segment.
		base = uint32(p.Seq / packet.MSS)
		first = p.Seq == 0
	}

	key := sig(p.Flow, p.Seq)
	retcnt := uint8(0)
	if m.filter.Contains(key) {
		// Retransmission: bump this segment's boost count.
		if f.retx == nil {
			f.retx = make(map[int64]uint8)
		}
		c := f.retx[p.Seq]
		if m.cfg.Boosting && c < packet.MaxRetx {
			c++
			f.retx[p.Seq] = c
			m.Boosts++
		}
		retcnt = c
	} else {
		m.filter.Insert(key)
		f.pkts++
	}

	rfs := base
	for i := uint8(0); i < retcnt; i++ {
		rfs = packet.BoostRFS(rfs, m.cfg.BoostFactorLog2)
	}
	p.Marked = true
	p.Info = packet.FlowInfo{RFS: rfs, RetCnt: retcnt, FlowID: f.flowID, First: first}
}
