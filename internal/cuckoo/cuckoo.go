// Package cuckoo implements a bucketized cuckoo filter (Fan et al.,
// CoNEXT'14): an approximate set membership structure supporting insert,
// lookup and delete in O(1), used by Vertigo's marking component to detect
// retransmitted packets (paper §3.1.2, mirroring the DPDK cuckoo filter the
// authors used).
//
// The filter stores short fingerprints in 4-slot buckets; each item has two
// candidate buckets derived by partial-key cuckoo hashing, so an insertion
// that finds both buckets full relocates ("kicks") existing fingerprints.
// Lookups may return false positives at a rate governed by the fingerprint
// width, but never false negatives for items that were inserted and not
// deleted.
package cuckoo

import (
	"math/rand"
)

const (
	slotsPerBucket = 4
	maxKicks       = 500
)

// Filter is an approximate membership set over uint64 keys.
// It is not safe for concurrent use.
//
// Hashing is fully deterministic (no per-instance random seed): simulation
// runs must be reproducible, and a randomly seeded filter would make the
// rare false positive — and therefore the whole event sequence — differ
// between identically-configured runs.
type Filter struct {
	buckets [][slotsPerBucket]uint16
	mask    uint64
	count   int
	rng     *rand.Rand
}

// New returns a filter sized for at least capacity items. The filter keeps
// roughly 95% load factor headroom; inserts may start failing beyond that.
func New(capacity int) *Filter {
	if capacity < slotsPerBucket {
		capacity = slotsPerBucket
	}
	n := nextPow2((capacity + slotsPerBucket - 1) / slotsPerBucket * 21 / 20)
	return &Filter{
		buckets: make([][slotsPerBucket]uint16, n),
		mask:    uint64(n - 1),
		rng:     rand.New(rand.NewSource(int64(n))),
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fingerprint derives a non-zero 16-bit fingerprint and the primary bucket
// with a splitmix64-style finalizer (deterministic across runs).
func (f *Filter) fingerprint(key uint64) (fp uint16, i1 uint64) {
	h := key + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	fp = uint16(h >> 48)
	if fp == 0 {
		fp = 1
	}
	i1 = h & f.mask
	return fp, i1
}

// altIndex computes the partner bucket of (i, fp): i XOR hash(fp).
func (f *Filter) altIndex(i uint64, fp uint16) uint64 {
	// Multiplicative scramble of the fingerprint, per the cuckoo filter paper.
	return (i ^ (uint64(fp) * 0x5bd1e995)) & f.mask
}

// Insert adds key to the filter. It reports false only when the filter is
// too full to place the key even after relocation.
func (f *Filter) Insert(key uint64) bool {
	fp, i1 := f.fingerprint(key)
	return f.insert(fp, i1)
}

// insert places fingerprint fp whose primary bucket is i1, kicking as needed.
func (f *Filter) insert(fp uint16, i1 uint64) bool {
	i2 := f.altIndex(i1, fp)
	if f.place(i1, fp) || f.place(i2, fp) {
		f.count++
		return true
	}
	// Kick a random resident fingerprint to its alternate bucket.
	i := i1
	if f.rng.Intn(2) == 1 {
		i = i2
	}
	for k := 0; k < maxKicks; k++ {
		s := f.rng.Intn(slotsPerBucket)
		fp, f.buckets[i][s] = f.buckets[i][s], fp
		i = f.altIndex(i, fp)
		if f.place(i, fp) {
			f.count++
			return true
		}
	}
	return false
}

// ContainsOrAdd reports whether key may already be in the filter and, when
// it is not, inserts it — hashing the key once instead of the twice a
// Contains-then-Insert pair costs on the marking hot path. The observable
// filter state (and the kick RNG stream) evolves exactly as the separate
// calls would; as with Insert, an over-full filter silently fails to add.
func (f *Filter) ContainsOrAdd(key uint64) bool {
	fp, i1 := f.fingerprint(key)
	i2 := f.altIndex(i1, fp)
	if f.has(i1, fp) || f.has(i2, fp) {
		return true
	}
	f.insert(fp, i1)
	return false
}

func (f *Filter) place(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if b[s] == 0 {
			b[s] = fp
			return true
		}
	}
	return false
}

// Contains reports whether key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key uint64) bool {
	fp, i1 := f.fingerprint(key)
	i2 := f.altIndex(i1, fp)
	return f.has(i1, fp) || f.has(i2, fp)
}

func (f *Filter) has(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if b[s] == fp {
			return true
		}
	}
	return false
}

// Delete removes one copy of key, reporting whether a matching fingerprint
// was found. Deleting a key that was never inserted may remove a colliding
// entry, as with any cuckoo filter.
func (f *Filter) Delete(key uint64) bool {
	fp, i1 := f.fingerprint(key)
	if f.remove(i1, fp) {
		f.count--
		return true
	}
	i2 := f.altIndex(i1, fp)
	if f.remove(i2, fp) {
		f.count--
		return true
	}
	return false
}

func (f *Filter) remove(i uint64, fp uint16) bool {
	b := &f.buckets[i]
	for s := 0; s < slotsPerBucket; s++ {
		if b[s] == fp {
			b[s] = 0
			return true
		}
	}
	return false
}

// Len returns the number of items currently stored.
func (f *Filter) Len() int { return f.count }

// Reset empties the filter in place.
func (f *Filter) Reset() {
	for i := range f.buckets {
		f.buckets[i] = [slotsPerBucket]uint16{}
	}
	f.count = 0
}
